package incgraph_test

import (
	"testing"

	"incgraph"
)

func TestMaintainedUniformDriver(t *testing.T) {
	base := incgraph.NewGraph()
	for id, l := range map[incgraph.NodeID]string{1: "a", 2: "b", 3: "c", 4: "a"} {
		base.AddNode(id, l)
	}
	base.AddEdge(1, 2)
	base.AddEdge(2, 3)
	base.AddEdge(4, 2)

	kws, err := incgraph.NewKWS(base.Clone(), incgraph.KWSQuery{Keywords: []string{"b", "c"}, Bound: 2})
	if err != nil {
		t.Fatal(err)
	}
	rpq, err := incgraph.NewRPQ(base.Clone(), "a.b.c")
	if err != nil {
		t.Fatal(err)
	}
	pg := incgraph.NewGraph()
	pg.AddNode(0, "a")
	pg.AddNode(1, "b")
	pg.AddEdge(0, 1)
	pat, err := incgraph.NewPattern(pg)
	if err != nil {
		t.Fatal(err)
	}

	queries := []incgraph.Maintained{
		incgraph.MaintainKWS(kws),
		incgraph.MaintainRPQ(rpq),
		incgraph.MaintainSCC(incgraph.NewSCC(base.Clone())),
		incgraph.MaintainISO(incgraph.NewISO(base.Clone(), pat)),
	}
	classes := map[string]bool{}
	for _, q := range queries {
		classes[q.Class()] = true
		if q.Size() < 0 {
			t.Fatalf("%s: negative size", q.Class())
		}
		if q.Graph() == nil {
			t.Fatalf("%s: nil graph", q.Class())
		}
	}
	if len(classes) != 4 {
		t.Fatalf("classes = %v", classes)
	}

	batch := incgraph.Batch{incgraph.Del(2, 3), incgraph.Ins(1, 3)}
	for _, q := range queries {
		before := q.Size()
		d, err := q.Apply(batch)
		if err != nil {
			t.Fatalf("%s: %v", q.Class(), err)
		}
		expected := before + d.Added - d.Removed
		// Updated entries do not change cardinality.
		if q.Class() == "kws" || q.Class() == "rpq" || q.Class() == "iso" || q.Class() == "scc" {
			if q.Size() != expected {
				t.Fatalf("%s: size %d, summary says %d (%v)", q.Class(), q.Size(), expected, d)
			}
		}
	}

	// Errors propagate.
	if _, err := queries[0].Apply(incgraph.Batch{incgraph.Del(9, 9)}); err == nil {
		t.Fatalf("bad batch accepted")
	}
	if (incgraph.DeltaSummary{}).String() == "" || !(incgraph.DeltaSummary{}).Empty() {
		t.Fatalf("DeltaSummary basics broken")
	}
}
