package incgraph

import (
	"bytes"
	"net"
	"time"

	"incgraph/internal/cluster"
	"incgraph/internal/store"
)

// High availability. The cluster of cluster.go gains three HA layers, all
// re-exported here:
//
//   - Log shipping: a coordinator built with NewClusterWith and a
//     ReplAsync or ReplQuorum policy streams every committed batch's WAL
//     record to the workers owning the touched shards; each worker keeps a
//     per-shard replica log whose sequence chain detects missed records
//     and heals them by parcel resync.
//   - Standby failover: a ClusterHub next to the primary feeds committed
//     records to ClusterStandby processes (snapshot handshake + tail).
//     Heartbeats double as the primary's lease; on expiry or a severed
//     feed the standby's owner promotes by attaching a new coordinator at
//     a higher fencing term, which the workers enforce — a deposed
//     coordinator's late commits are rejected as fenced.
//   - Replica reads: ClusterReplStates asks any worker, without a
//     coordinator session, which generation each of its shards has proven
//     current — the currency check behind serving queries from replicas.
//
// A FaultScript wraps any of these connections in a seeded, scriptable
// frame shim (drop/delay/duplicate/sever) so every failure mode above is
// exercised deterministically in tests and chaos drills.

type (
	// ClusterOptions tunes NewClusterWith: fencing term, replication
	// policy, per-call deadline, commit hook.
	//
	// Deprecated: pass ClusterOption values (WithClusterTerm,
	// WithReplication, ...) to NewCluster instead.
	ClusterOptions = cluster.CoordinatorOptions
	// ReplPolicy selects how Apply waits on replica acknowledgements.
	ReplPolicy = cluster.ReplPolicy
	// ClusterHub feeds committed records to attached standbys.
	ClusterHub = cluster.Hub
	// ClusterHubOptions configures a hub: term, snapshot callback,
	// heartbeat interval.
	ClusterHubOptions = cluster.HubOptions
	// ClusterStandby tails a hub and tracks the primary's lease.
	ClusterStandby = cluster.Standby
	// ClusterStandbyOptions configures a standby: load/apply callbacks and
	// the lease TTL.
	ClusterStandbyOptions = cluster.StandbyOptions
	// ClusterDialer dials workers with per-attempt timeouts and capped
	// exponential backoff with jitter; its Retries counter surfaces in
	// Cluster.Stats.
	ClusterDialer = cluster.Dialer
	// ReplState is one shard's replication position on a worker: the last
	// replicated sequence and the generation it proves.
	ReplState = cluster.ReplState

	// FaultScript deterministically injects faults into wrapped
	// connections; FaultRule matches frames by direction, index, and
	// message type.
	FaultScript = cluster.FaultScript
	FaultRule   = cluster.FaultRule
	FaultDir    = cluster.FaultDir
	FaultAction = cluster.FaultAction
)

// Replication policies for ClusterOptions.Repl.
const (
	ReplOff    = cluster.ReplOff
	ReplAsync  = cluster.ReplAsync
	ReplQuorum = cluster.ReplQuorum
)

// Fault directions and actions for FaultRule.
const (
	FaultOut   = cluster.FaultOut
	FaultIn    = cluster.FaultIn
	FaultDrop  = cluster.FaultDrop
	FaultDelay = cluster.FaultDelay
	FaultDup   = cluster.FaultDup
	FaultSever = cluster.FaultSever
)

// ErrLeaseExpired reports a standby that outlived its primary's lease.
var ErrLeaseExpired = cluster.ErrLeaseExpired

// ErrClusterFenced matches (errors.Is) commits refused because a worker
// enforced a higher fencing term: this coordinator was deposed by a
// promoted standby. Nothing was applied; the caller should redirect
// clients to the new primary rather than retry.
var ErrClusterFenced = cluster.ErrFenced

// NewClusterWith is NewCluster with an explicit options struct.
//
// Deprecated: NewCluster is variadic — pass WithClusterTerm,
// WithReplication, WithCallTimeout, WithOnCommit options instead.
func NewClusterWith(g *Graph, links []ClusterLink, opts ClusterOptions) (*Cluster, error) {
	return cluster.NewCoordinatorWith(g, links, opts)
}

// NewClusterHub returns a hub ready to accept standby connections; serve
// each on ClusterHub.ServeConn and register Feed as the coordinator's
// OnCommit hook.
func NewClusterHub(opts ClusterHubOptions) *ClusterHub { return cluster.NewHub(opts) }

// NewClusterStandby returns a standby tail; drive it with Run over a
// connection to the primary's hub.
func NewClusterStandby(opts ClusterStandbyOptions) *ClusterStandby {
	return cluster.NewStandby(opts)
}

// NewFaultScript builds a deterministic fault-injection script from rules;
// wrap connections (or links) with Wrap/WrapLink.
func NewFaultScript(seed int64, rules ...FaultRule) *FaultScript {
	return cluster.NewFaultScript(seed, rules...)
}

// Fault message selectors for FaultRule.Msg.
const (
	FaultMsgHello     = cluster.FaultMsgHello
	FaultMsgPlace     = cluster.FaultMsgPlace
	FaultMsgApply     = cluster.FaultMsgApply
	FaultMsgReplicate = cluster.FaultMsgReplicate
	FaultMsgTail      = cluster.FaultMsgTail
	FaultMsgFeed      = cluster.FaultMsgFeed
	FaultMsgPing      = cluster.FaultMsgPing
)

// ClusterReplStates asks the worker on conn for its per-shard replication
// state. It needs no coordinator session, so any process can check which
// shards a worker has proven current — the gate for routing reads to
// replicas.
func ClusterReplStates(conn net.Conn, timeout time.Duration) (map[int]ReplState, error) {
	return cluster.FetchReplStates(conn, timeout)
}

// EncodeSnapshot serializes g to canonical snapshot bytes — the natural
// payload for ClusterHubOptions.Snapshot.
func EncodeSnapshot(g *Graph) ([]byte, error) {
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf, g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot reconstructs a graph from EncodeSnapshot bytes, exactly —
// slot allocator state included, so engines built on it behave
// byte-identically to ones built on the never-serialized graph.
func DecodeSnapshot(data []byte) (*Graph, error) {
	return store.ReadSnapshot(bytes.NewReader(data), int64(len(data)))
}
