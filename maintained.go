package incgraph

import (
	"fmt"
	"io"
)

// Maintained is the common surface of the four incrementally maintained
// query classes: apply a batch ΔG, learn how the answer moved. It lets
// callers drive heterogeneous standing queries uniformly (see
// examples/social_stream for the long-hand version).
//
// Concurrency: Apply requires exclusive access to the value and its graph
// (graph mutation is exclusive), but internally parallelizes both the
// mutation step — large batches apply shard-parallel via the two-phase
// protocol of the sharded substrate (Graph.SetShards) — and the repair
// work, across the graph's Parallelism() workers; deltas are merged
// deterministically, so results are identical at any worker or shard
// count. Between Apply calls the KWS, RPQ and ISO engines with
// Parallelism() > 1 leave the graph read-shareable, so their read-only
// methods (Size, Class, Graph and the concrete types' accessors) may be
// called from multiple goroutines. At Parallelism() == 1 — and for SCC,
// which repairs sequentially — the engines skip that housekeeping: call
// Graph().PrepareConcurrentReads() before sharing reads across
// goroutines.
type Maintained interface {
	// Apply applies ΔG to the underlying graph and repairs the answer,
	// returning a summary of ΔO. Class-specific deltas remain available on
	// the concrete types.
	Apply(batch Batch) (DeltaSummary, error)
	// Size returns the current answer cardinality (|Q(G)| — match roots,
	// match pairs, embeddings, or components).
	Size() int
	// Class names the query class ("kws", "rpq", "scc", "iso").
	Class() string
	// Graph returns the maintained graph (shared and mutated by Apply).
	Graph() *Graph
	// WriteAnswer serializes the current answer Q(G) in the class's
	// canonical text form: identical answers produce identical bytes,
	// whatever worker count, shard count, or recovery path computed them.
	// The durability layer's recovery-parity guarantee is stated — and
	// tested — in terms of these bytes.
	WriteAnswer(w io.Writer) error
}

// DeltaSummary is the class-agnostic view of an output change ΔO.
type DeltaSummary struct {
	Added, Removed, Updated int
}

// Empty reports whether the answer was unaffected.
func (d DeltaSummary) Empty() bool { return d.Added == 0 && d.Removed == 0 && d.Updated == 0 }

func (d DeltaSummary) String() string {
	return fmt.Sprintf("ΔO{+%d −%d ~%d}", d.Added, d.Removed, d.Updated)
}

// MaintainKWS adapts a keyword-search index.
func MaintainKWS(ix *KWSIndex) Maintained { return kwsAdapter{ix} }

// MaintainRPQ adapts a regular-path-query engine.
func MaintainRPQ(e *RPQEngine) Maintained { return rpqAdapter{e} }

// MaintainSCC adapts a strongly-connected-components state.
func MaintainSCC(s *SCCState) Maintained { return sccAdapter{s} }

// MaintainISO adapts a subgraph-isomorphism index.
func MaintainISO(ix *ISOIndex) Maintained { return isoAdapter{ix} }

type kwsAdapter struct{ ix *KWSIndex }

func (a kwsAdapter) Apply(batch Batch) (DeltaSummary, error) {
	d, err := a.ix.Apply(batch)
	if err != nil {
		return DeltaSummary{}, err
	}
	return DeltaSummary{Added: len(d.Added), Removed: len(d.Removed), Updated: len(d.Updated)}, nil
}
func (a kwsAdapter) Size() int                     { return a.ix.NumMatches() }
func (a kwsAdapter) Class() string                 { return "kws" }
func (a kwsAdapter) Graph() *Graph                 { return a.ix.Graph() }
func (a kwsAdapter) WriteAnswer(w io.Writer) error { return a.ix.WriteAnswer(w) }

type rpqAdapter struct{ e *RPQEngine }

func (a rpqAdapter) Apply(batch Batch) (DeltaSummary, error) {
	d, err := a.e.Apply(batch)
	if err != nil {
		return DeltaSummary{}, err
	}
	return DeltaSummary{Added: len(d.Added), Removed: len(d.Removed)}, nil
}
func (a rpqAdapter) Size() int                     { return a.e.NumMatches() }
func (a rpqAdapter) Class() string                 { return "rpq" }
func (a rpqAdapter) Graph() *Graph                 { return a.e.Graph() }
func (a rpqAdapter) WriteAnswer(w io.Writer) error { return a.e.WriteAnswer(w) }

type sccAdapter struct{ s *SCCState }

func (a sccAdapter) Apply(batch Batch) (DeltaSummary, error) {
	d, err := a.s.Apply(batch)
	if err != nil {
		return DeltaSummary{}, err
	}
	return DeltaSummary{Added: len(d.Added), Removed: len(d.Removed)}, nil
}
func (a sccAdapter) Size() int                     { return a.s.NumComponents() }
func (a sccAdapter) Class() string                 { return "scc" }
func (a sccAdapter) Graph() *Graph                 { return a.s.Graph() }
func (a sccAdapter) WriteAnswer(w io.Writer) error { return a.s.WriteAnswer(w) }

type isoAdapter struct{ ix *ISOIndex }

func (a isoAdapter) Apply(batch Batch) (DeltaSummary, error) {
	d, err := a.ix.Apply(batch)
	if err != nil {
		return DeltaSummary{}, err
	}
	return DeltaSummary{Added: len(d.Added), Removed: len(d.Removed)}, nil
}
func (a isoAdapter) Size() int                     { return a.ix.NumMatches() }
func (a isoAdapter) Class() string                 { return "iso" }
func (a isoAdapter) Graph() *Graph                 { return a.ix.Graph() }
func (a isoAdapter) WriteAnswer(w io.Writer) error { return a.ix.WriteAnswer(w) }
