package incgraph_test

// Differential test of the parallel engine: the same random update stream
// drives a workers=1 engine and a workers=8 engine for every query class,
// and after every batch the rendered (sorted) deltas and the final answers
// must be byte-identical. This pins the determinism contract — per-worker
// repair results merge into exactly the sequential output — under the
// scheduler's full nondeterminism. Run with -race for the memory-model
// half of the guarantee.

import (
	"fmt"
	"sort"
	"testing"

	"incgraph"
)

// diffWorkload builds one synthetic workload graph and a stream of update
// batches valid against it in sequence.
func diffWorkload(t *testing.T, seed int64) (*incgraph.Graph, []incgraph.Batch) {
	t.Helper()
	g := incgraph.SyntheticGraph(incgraph.GraphSpec{
		Nodes:        1200,
		Edges:        6000,
		Labels:       8,
		GiantSCCFrac: 0.5,
		Seed:         seed,
	})
	// Pre-generate the stream against a scratch copy so every batch is
	// valid for any engine replaying the same sequence.
	scratch := g.Clone()
	batches := make([]incgraph.Batch, 6)
	for i := range batches {
		b := incgraph.RandomUpdates(scratch, incgraph.UpdateSpec{
			Count:       60,
			InsertRatio: 0.5,
			Locality:    0.8,
			Seed:        seed + int64(100+i),
		})
		if err := scratch.ApplyBatch(b); err != nil {
			t.Fatalf("stream batch %d invalid: %v", i, err)
		}
		batches[i] = b
	}
	return g, batches
}

// classRun is one engine instance under test: apply a batch and render the
// sorted delta, or render the full current answer.
type classRun struct {
	apply  func(b incgraph.Batch) (string, error)
	answer func() string
}

func TestParallelMatchesSequential(t *testing.T) {
	g, batches := diffWorkload(t, 42)

	kwsQ, err := incgraph.RandomKWSQuery(g, 3, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	rpqQ, err := incgraph.RandomRPQQuery(g, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	isoQ, err := incgraph.RandomISOPattern(g, 3, 3, 2, 7)
	if err != nil {
		t.Fatal(err)
	}

	mkKWS := func(g *incgraph.Graph) (classRun, error) {
		ix, err := incgraph.NewKWS(g, kwsQ)
		if err != nil {
			return classRun{}, err
		}
		return classRun{
			apply: func(b incgraph.Batch) (string, error) {
				d, err := ix.Apply(b)
				return fmt.Sprintf("%+v", d), err
			},
			answer: func() string {
				var sb []string
				for _, r := range ix.MatchRoots() {
					m, _ := ix.MatchAt(r)
					sb = append(sb, fmt.Sprintf("%d:%v", r, m.Dists))
				}
				return fmt.Sprint(sb)
			},
		}, nil
	}
	mkRPQ := func(g *incgraph.Graph) (classRun, error) {
		e, err := incgraph.NewRPQFromAst(g, rpqQ)
		if err != nil {
			return classRun{}, err
		}
		return classRun{
			apply: func(b incgraph.Batch) (string, error) {
				d, err := e.Apply(b)
				return fmt.Sprintf("%+v", d), err
			},
			answer: func() string { return fmt.Sprint(e.Matches()) },
		}, nil
	}
	mkISO := func(g *incgraph.Graph) (classRun, error) {
		ix := incgraph.NewISO(g, isoQ)
		return classRun{
			apply: func(b incgraph.Batch) (string, error) {
				d, err := ix.Apply(b)
				return fmt.Sprintf("%+v", d), err
			},
			answer: func() string { return fmt.Sprint(ix.Matches()) },
		}, nil
	}
	mkSCC := func(g *incgraph.Graph) (classRun, error) {
		s := incgraph.NewSCC(g)
		canon := func(cs [][]incgraph.NodeID) [][]incgraph.NodeID {
			out := append([][]incgraph.NodeID(nil), cs...)
			sort.Slice(out, func(i, j int) bool {
				return fmt.Sprint(out[i]) < fmt.Sprint(out[j])
			})
			return out
		}
		return classRun{
			apply: func(b incgraph.Batch) (string, error) {
				d, err := s.Apply(b)
				if err != nil {
					return "", err
				}
				// SCC deltas are component lists in unspecified order:
				// canonicalize before comparing.
				return fmt.Sprintf("+%v -%v", canon(d.Added), canon(d.Removed)), nil
			},
			answer: func() string { return fmt.Sprint(s.ComponentsSorted()) },
		}, nil
	}

	classes := []struct {
		name string
		mk   func(g *incgraph.Graph) (classRun, error)
	}{
		{"kws", mkKWS},
		{"rpq", mkRPQ},
		{"iso", mkISO},
		{"scc", mkSCC},
	}

	for _, c := range classes {
		c := c
		t.Run(c.name, func(t *testing.T) {
			gs, gp := g.Clone(), g.Clone()
			gs.SetParallelism(1)
			gp.SetParallelism(8)
			seq, err := c.mk(gs)
			if err != nil {
				t.Fatalf("sequential build: %v", err)
			}
			par, err := c.mk(gp)
			if err != nil {
				t.Fatalf("parallel build: %v", err)
			}
			if a, b := seq.answer(), par.answer(); a != b {
				t.Fatalf("initial answers differ:\nworkers=1: %s\nworkers=8: %s", a, b)
			}
			for i, b := range batches {
				ds, err := seq.apply(b)
				if err != nil {
					t.Fatalf("batch %d sequential: %v", i, err)
				}
				dp, err := par.apply(b)
				if err != nil {
					t.Fatalf("batch %d parallel: %v", i, err)
				}
				if ds != dp {
					t.Fatalf("batch %d deltas differ:\nworkers=1: %s\nworkers=8: %s", i, ds, dp)
				}
				if a, bb := seq.answer(), par.answer(); a != bb {
					t.Fatalf("batch %d answers differ:\nworkers=1: %s\nworkers=8: %s", i, a, bb)
				}
			}
		})
	}
}
