// Pattern watching ("situation awareness", cf. Stotz et al. [42] in the
// paper): a standing subgraph-isomorphism query over an evolving graph.
// IncISO keeps the full match set current after every event, touching only
// the d_Q-neighborhood of each change — the localizability guarantee of
// Theorem 3 — while a naive engine would re-enumerate matches globally.
//
// The scenario: a transaction graph where analysts watch for a fan-in
// motif — two accounts both wiring into a mule account that forwards to a
// cash-out point.
//
// Run with: go run ./examples/pattern_watch
package main

import (
	"fmt"
	"log"
	"time"

	"incgraph"
)

func main() {
	// The watched motif: acct → mule ← acct, mule → cashout.
	pg := incgraph.NewGraph()
	pg.AddNode(0, "acct")
	pg.AddNode(1, "acct")
	pg.AddNode(2, "mule")
	pg.AddNode(3, "cashout")
	pg.AddEdge(0, 2)
	pg.AddEdge(1, 2)
	pg.AddEdge(2, 3)
	pattern, err := incgraph.NewPattern(pg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("watching motif: %d nodes, %d edges, diameter %d\n",
		len(pattern.Nodes()), 3, pattern.Diameter())

	// The transaction graph: mostly ordinary accounts, a few mules and
	// cash-out points.
	g := incgraph.NewGraph()
	n := incgraph.NodeID(0)
	newNode := func(label string) incgraph.NodeID {
		n++
		g.AddNode(n, label)
		return n
	}
	var accts, mules, outs []incgraph.NodeID
	for i := 0; i < 300; i++ {
		accts = append(accts, newNode("acct"))
	}
	for i := 0; i < 12; i++ {
		mules = append(mules, newNode("mule"))
	}
	for i := 0; i < 4; i++ {
		outs = append(outs, newNode("cashout"))
	}
	// Background wiring between ordinary accounts.
	for i := range accts {
		g.AddEdge(accts[i], accts[(i*7+13)%len(accts)])
	}

	ix := incgraph.NewISO(g, pattern)
	fmt.Printf("transaction graph: %d nodes, %d edges; initial alerts: %d\n\n",
		g.NumNodes(), g.NumEdges(), ix.NumMatches())

	// The event feed. Each event is one wire transfer (edge). Alerts fire
	// exactly when new motif embeddings appear.
	events := []struct {
		what string
		u    incgraph.Update
	}{
		{"acct#1 wires mule#1", incgraph.Ins(accts[0], mules[0])},
		{"acct#2 wires mule#1", incgraph.Ins(accts[1], mules[0])},
		{"mule#1 forwards to cashout#1", incgraph.Ins(mules[0], outs[0])},
		{"acct#3 wires mule#1", incgraph.Ins(accts[2], mules[0])},
		{"acct#2 recalls its wire", incgraph.Del(accts[1], mules[0])},
		{"mule#1 forwards to cashout#2", incgraph.Ins(mules[0], outs[1])},
	}
	start := time.Now()
	for _, ev := range events {
		d, err := ix.Apply(incgraph.Batch{ev.u})
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case len(d.Added) > 0:
			fmt.Printf("%-32s → ALERT: %d new embeddings (total %d)\n", ev.what, len(d.Added), ix.NumMatches())
		case len(d.Removed) > 0:
			fmt.Printf("%-32s → %d alerts retracted (total %d)\n", ev.what, len(d.Removed), ix.NumMatches())
		default:
			fmt.Printf("%-32s → no change\n", ev.what)
		}
	}
	fmt.Printf("\nfeed of %d events processed in %v\n", len(events), time.Since(start))

	// Bulk churn: background transfers do not disturb the watch.
	churn := incgraph.RandomUpdates(ix.Graph(), incgraph.UpdateSpec{
		Count: 500, InsertRatio: 0.5, Locality: 0.9, Seed: 99,
	})
	before := ix.NumMatches()
	start = time.Now()
	d, err := ix.Apply(churn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("500 background events in %v: %d → %d embeddings (+%d −%d)\n",
		time.Since(start), before, ix.NumMatches(), len(d.Added), len(d.Removed))
}
