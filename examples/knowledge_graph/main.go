// Knowledge-graph regular path queries: the motivating DBpedia-style
// workload of the paper. A synthetic knowledge graph is queried with RPQs,
// then a stream of edits (new facts, retracted facts) is answered
// incrementally by IncRPQ — including the two-chain gadget from the
// unboundedness proof of Theorem 1, showing a single edit exploding into
// many answer changes and still being handled correctly.
//
// Run with: go run ./examples/knowledge_graph
package main

import (
	"fmt"
	"log"

	"incgraph"
)

func main() {
	// A miniature curated knowledge graph. Labels play the role of entity
	// types; an RPQ over node labels describes a typed chain of hops.
	g := incgraph.NewGraph()
	type node struct {
		id    incgraph.NodeID
		label string
	}
	nodes := []node{
		{1, "person"}, {2, "person"}, {3, "person"},
		{10, "city"}, {11, "city"},
		{20, "country"}, {21, "country"},
		{30, "company"},
	}
	for _, n := range nodes {
		g.AddNode(n.id, n.label)
	}
	edges := [][2]incgraph.NodeID{
		{1, 10},  // person1 bornIn city10
		{2, 10},  // person2 bornIn city10
		{3, 11},  // person3 bornIn city11
		{10, 20}, // city10 locatedIn country20
		{11, 21}, // city11 locatedIn country21
		{1, 30},  // person1 worksFor company30
		{30, 11}, // company30 headquarteredIn city11
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}

	// Query 1: persons transitively located in a country via cities.
	q1, err := incgraph.NewRPQ(g.Clone(), "person.city.country")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("person.city.country        → %v\n", q1.Matches())

	// Query 2: persons connected to a country through any chain of cities
	// and companies.
	q2, err := incgraph.NewRPQ(g.Clone(), "person.(city+company)*.country")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("person.(city+company)*.country → %d matches\n", q2.NumMatches())

	// A stream of edits, answered incrementally.
	stream := []incgraph.Batch{
		{incgraph.Ins(2, 30)},                  // person2 joins company30
		{incgraph.Del(10, 20)},                 // city10's country link retracted
		{incgraph.InsNew(12, 20, "city", "")},  // new city12 in country20
		{incgraph.Ins(10, 20)},                 // the retraction is reverted
		{incgraph.InsNew(4, 12, "person", "")}, // person4 born in city12
	}
	for i, batch := range stream {
		d, err := q2.Apply(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("edit %d %-24v → +%d −%d (total %d)\n",
			i+1, batch, len(d.Added), len(d.Removed), q2.NumMatches())
	}

	// The Theorem 1 phenomenon: two single-edge edits, the first changing
	// nothing, the second changing Θ(n) answers at once. Boundedness in
	// |ΔG|+|ΔO| is impossible, yet the relatively bounded IncRPQ handles it.
	fmt.Println("\nunboundedness gadget (Fig. 9 flavor):")
	n := 50
	gad := incgraph.NewGraph()
	for i := 0; i < n; i++ {
		gad.AddNode(incgraph.NodeID(i), "a")
		if i > 0 {
			gad.AddEdge(incgraph.NodeID(i-1), incgraph.NodeID(i))
		}
	}
	for i := 0; i < n; i++ {
		gad.AddNode(incgraph.NodeID(100+i), "b")
		if i > 0 {
			gad.AddEdge(incgraph.NodeID(100+i-1), incgraph.NodeID(100+i))
		}
	}
	gad.AddNode(999, "c")
	qg, err := incgraph.NewRPQ(gad, "a.a*.b.b*.c")
	if err != nil {
		log.Fatal(err)
	}
	d1, _ := qg.Apply(incgraph.Batch{incgraph.Ins(incgraph.NodeID(n-1), 100)})
	fmt.Printf("  bridge 1: |ΔG|=1 → |ΔO|=%d\n", len(d1.Added))
	d2, _ := qg.Apply(incgraph.Batch{incgraph.Ins(incgraph.NodeID(100+n-1), 999)})
	fmt.Printf("  bridge 2: |ΔG|=1 → |ΔO|=%d (= n: one edit, Θ(n) new answers)\n", len(d2.Added))
}
