// Durable standing queries: the full durability cycle in one program.
// A synthetic social graph and two standing queries (SCC communities,
// keyword search) are made durable — every update burst is write-ahead
// logged before it is applied, a checkpoint folds the log into a binary
// per-shard snapshot, and a simulated crash (dropping all in-memory state)
// is recovered by snapshot-load + WAL replay through the engines' normal
// repair path. The final answers are compared byte for byte against an
// uninterrupted in-memory run: they must be identical, which is the
// durability subsystem's core guarantee.
//
// The long-lived network-facing version of this loop is cmd/incgraphd.
//
// Run with: go run ./examples/durable_server
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"incgraph"
)

func main() {
	dir, err := os.MkdirTemp("", "incgraph-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	g := incgraph.SyntheticGraph(incgraph.GraphSpec{
		Nodes: 3000, Edges: 15000, Labels: 30, GiantSCCFrac: 0.7, Seed: 11,
	})
	q := incgraph.KWSQuery{Keywords: []string{"l1", "l2"}, Bound: 2}

	// mkEngines builds the standing queries on clones of base — the same
	// constructor runs at first boot and at recovery.
	mkEngines := func(base *incgraph.Graph) []incgraph.Maintained {
		kws, err := incgraph.NewKWS(base.Clone(), q)
		if err != nil {
			log.Fatal(err)
		}
		return []incgraph.Maintained{
			incgraph.MaintainSCC(incgraph.NewSCC(base.Clone())),
			incgraph.MaintainKWS(kws),
		}
	}

	// The uninterrupted reference run, for the parity check at the end.
	reference := mkEngines(g)

	// Durable run: create the store, attach engines, stream update bursts.
	d, err := incgraph.CreateDurable(dir, g.Clone(), incgraph.DurableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Attach(mkEngines(d.Graph())...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store %s: %d members, %d follow edges\n", dir, g.NumNodes(), g.NumEdges())

	scratch := g.Clone()
	for burst := 0; burst < 8; burst++ {
		events := incgraph.RandomUpdates(scratch, incgraph.UpdateSpec{
			Count: 150, InsertRatio: 0.5, Locality: 1.0, Seed: int64(300 + burst),
		})
		if err := scratch.ApplyBatch(events); err != nil {
			log.Fatal(err)
		}
		sums, err := d.Commit(events, incgraph.ApplyOptions{}) // WAL append + apply to every engine
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range reference {
			if _, err := m.Apply(events); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("  burst %d: scc %s kws %s (WAL %d bytes)\n", burst+1, sums[0], sums[1], d.WALBytes())
		if burst == 3 {
			if err := d.Checkpoint(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  checkpoint: epoch %d, WAL reset to %d bytes\n", d.Epoch(), d.WALBytes())
		}
	}

	// Crash. Nothing survives but the store directory.
	d.Close()
	fmt.Println("crash (all in-memory state dropped)")

	// Recovery: snapshot load, engine rebuild, WAL replay through Apply.
	r, err := incgraph.OpenDurable(dir, incgraph.DurableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Attach(mkEngines(r.Graph())...); err != nil {
		log.Fatal(err)
	}
	if err := r.Recover(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d nodes, %d edges, WAL seq %d\n",
		r.Graph().NumNodes(), r.Graph().NumEdges(), r.WALSeq())

	// Byte-identical answers or bust.
	for i, m := range r.Engines() {
		var want, got bytes.Buffer
		if err := reference[i].WriteAnswer(&want); err != nil {
			log.Fatal(err)
		}
		if err := m.WriteAnswer(&got); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			log.Fatalf("%s: recovered answers differ from the uninterrupted run", m.Class())
		}
		fmt.Printf("  %s: %d answers, byte-identical to the uninterrupted run\n", m.Class(), m.Size())
	}
}
