// High availability end to end: a primary coordinator over two in-process
// shard workers with quorum log shipping, a hub feeding a live standby,
// a deterministic fault drill, and a failover. The primary commits half
// of an update stream (each batch is replicated to the workers' per-shard
// logs and fed to the standby), then dies without ceremony; the standby
// promotes at term+1 over the same workers — fencing the corpse, whose
// late commit bounces — and commits the rest. The final graph and the
// canonical snapshot bytes must equal an uninterrupted single-process
// run: failing over costs nothing in fidelity.
//
// The long-lived network-facing version of this topology is cmd/incgraphd
// (-repl/-term/-hub on the primary, "incgraphd standby" + "promote").
//
// Run with: go run ./examples/ha_cluster
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"incgraph"
)

func main() {
	g := incgraph.SyntheticGraph(incgraph.GraphSpec{
		Nodes: 2000, Edges: 10000, Labels: 20, GiantSCCFrac: 0.6, Seed: 7,
	})
	g.SetShards(8)

	// The update stream, fixed up front so the reference run and the HA
	// run apply literally the same batches.
	scratch := g.Clone()
	var batches []incgraph.Batch
	for i := 0; i < 8; i++ {
		b := incgraph.RandomUpdates(scratch, incgraph.UpdateSpec{
			Count: 200, InsertRatio: 0.5, Locality: 0.9, Seed: int64(100 + i),
		})
		if err := scratch.ApplyBatch(b); err != nil {
			log.Fatal(err)
		}
		batches = append(batches, b)
	}

	// Uninterrupted single-process reference.
	ref := g.Clone()
	for _, b := range batches {
		if err := ref.ApplyBatch(b); err != nil {
			log.Fatal(err)
		}
	}

	// Two shard workers, and a fault script on the coordinator's links: a
	// seeded, scriptable frame shim. This one drops the first phase-1
	// apply on the wire — the commit fails atomically, the coordinator
	// marks the planned shards dirty, and the retry heals them by parcel
	// resync. The event log is deterministic: same seed + same traffic =
	// same faults, which is how the CI chaos drills pin reproducibility.
	links, _, stopWorkers := incgraph.InProcessLinks(2)
	defer stopWorkers()
	faults := incgraph.NewFaultScript(42, incgraph.FaultRule{
		Dir: incgraph.FaultOut, Frame: -1, Msg: incgraph.FaultMsgApply,
		Action: incgraph.FaultDrop, Count: 1,
	})
	for i := range links {
		links[i] = faults.WrapLink(links[i])
	}

	// Primary: quorum log shipping, fencing term 1, and a hub whose Feed
	// hook streams every committed batch to attached standbys. The
	// snapshot callback and the commit path serialize over the same state,
	// so no committed batch can fall between a standby's snapshot and its
	// feed stream.
	primaryGraph := g.Clone()
	hub := incgraph.NewClusterHub(incgraph.ClusterHubOptions{
		Term:      1,
		Heartbeat: 50 * time.Millisecond,
		Snapshot: func() (uint64, uint64, []byte, error) {
			snap, err := incgraph.EncodeSnapshot(primaryGraph)
			return 0, primaryGraph.Generation(), snap, err
		},
	})

	// Standby: loads the handshake snapshot, applies every fed record,
	// and watches the heartbeat lease.
	var standbyGraph *incgraph.Graph
	standby := incgraph.NewClusterStandby(incgraph.ClusterStandbyOptions{
		TTL: 500 * time.Millisecond,
		Load: func(term, seq, gen uint64, snap []byte) error {
			var err error
			standbyGraph, err = incgraph.DecodeSnapshot(snap)
			return err
		},
		Apply: func(seq, postGen uint64, b incgraph.Batch) error {
			return standbyGraph.ApplyBatch(b)
		},
	})
	hubConn, standbyConn := net.Pipe()
	go hub.ServeConn(hubConn)
	tailDone := make(chan error, 1)
	go func() { tailDone <- standby.Run(standbyConn) }()
	for hub.Standbys() == 0 {
		time.Sleep(time.Millisecond)
	}

	primary, err := incgraph.NewCluster(primaryGraph, links,
		incgraph.WithClusterTerm(1),
		incgraph.WithReplication(incgraph.ReplQuorum),
		incgraph.WithCallTimeout(300*time.Millisecond), // fail dropped frames fast
		incgraph.WithOnCommit(hub.Feed),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary up: term 1, %d shards on 2 workers, quorum shipping, 1 standby\n",
		primaryGraph.NumShards())

	// First half of the stream. The faulted batch fails once (the drill)
	// and succeeds on retry after resync.
	commitTo := func(c *incgraph.Cluster, dst *incgraph.Graph, b incgraph.Batch) error {
		return c.Apply(b, func(bb incgraph.Batch) error { return dst.ApplyBatch(bb) })
	}
	for i := 0; i < 4; i++ {
		err := commitTo(primary, primaryGraph, batches[i])
		if err != nil {
			fmt.Printf("  batch %d: %v (injected fault; retrying)\n", i, err)
			err = commitTo(primary, primaryGraph, batches[i])
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("primary committed 4 batches (repl seq %d, %d resyncs); faults fired: %s\n",
		primary.ReplSeq(), primary.Resyncs(), strings.Join(faults.Events(), "; "))
	// Feeds are enqueued in commit order but acked asynchronously; wait
	// for the standby to catch up before killing the primary.
	for deadline := time.Now().Add(5 * time.Second); standby.LastSeq() != primary.ReplSeq(); {
		if time.Now().After(deadline) {
			log.Fatalf("standby at seq %d, primary at %d", standby.LastSeq(), primary.ReplSeq())
		}
		time.Sleep(time.Millisecond)
	}

	// The primary dies: feed severed, coordinator abandoned un-Closed —
	// exactly what SIGKILL leaves behind. The standby notices.
	hub.Close()
	hubConn.Close()
	if err := <-tailDone; err != nil {
		fmt.Printf("standby tail ended: %v\n", err)
	}

	// Promote: fresh sessions to the same workers at term 2. Every shard
	// is re-placed from the standby's graph; the workers fence term 1.
	promoted := make([]incgraph.ClusterLink, len(links))
	for i := range links {
		conn, err := links[i].Redial()
		if err != nil {
			log.Fatal(err)
		}
		promoted[i] = incgraph.ClusterLink{Conn: conn, Name: links[i].Name, Redial: links[i].Redial}
	}
	successor, err := incgraph.NewCluster(standbyGraph, promoted,
		incgraph.WithClusterTerm(standby.Term()+1),
		incgraph.WithReplication(incgraph.ReplQuorum),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer successor.Close()
	fmt.Printf("standby promoted: term %d\n", standby.Term()+1)

	// The deposed primary's late commit bounces off the fence.
	late := incgraph.RandomUpdates(primaryGraph.Clone(), incgraph.UpdateSpec{
		Count: 10, InsertRatio: 1.0, Seed: 99,
	})
	if err := commitTo(primary, primaryGraph, late); err != nil {
		fmt.Printf("deposed primary's late commit: %v\n", err)
	} else {
		log.Fatal("deposed primary was allowed to commit")
	}

	// The successor finishes the stream.
	for i := 4; i < len(batches); i++ {
		if err := commitTo(successor, standbyGraph, batches[i]); err != nil {
			log.Fatal(err)
		}
	}

	// Fidelity: graph, canonical snapshot bytes, and worker replicas all
	// match the uninterrupted run.
	if !standbyGraph.Equal(ref) {
		log.Fatal("failover graph diverged from the uninterrupted run")
	}
	got, err := incgraph.EncodeSnapshot(standbyGraph)
	if err != nil {
		log.Fatal(err)
	}
	want, err := incgraph.EncodeSnapshot(ref)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		log.Fatal("failover snapshot differs from the uninterrupted run's")
	}
	if err := successor.VerifyAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failover complete: %d nodes, %d edges, gen %d — byte-identical to the uninterrupted run\n",
		standbyGraph.NumNodes(), standbyGraph.NumEdges(), standbyGraph.Generation())
}
