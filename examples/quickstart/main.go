// Quickstart: build a small labeled graph, answer all four query classes of
// Fan, Hu & Tian (SIGMOD 2017), then apply one batch of updates and watch
// each incremental algorithm repair its answer without recomputation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"incgraph"
)

func main() {
	// A tiny bibliographic graph: papers cite papers, papers have authors
	// and venues.
	g := incgraph.NewGraph()
	add := func(id incgraph.NodeID, label string) { g.AddNode(id, label) }
	add(1, "paper")
	add(2, "paper")
	add(3, "paper")
	add(10, "author")
	add(11, "author")
	add(20, "venue")
	g.AddEdge(1, 2) // paper1 cites paper2
	g.AddEdge(2, 3) // paper2 cites paper3
	g.AddEdge(3, 1) // paper3 cites paper1 — a citation cycle
	g.AddEdge(1, 10)
	g.AddEdge(2, 10)
	g.AddEdge(2, 11)
	g.AddEdge(3, 20)

	// RPQ: which nodes are connected by a citation chain ending at a venue?
	rpq, err := incgraph.NewRPQ(g.Clone(), "paper.paper*.venue")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RPQ  paper.paper*.venue  → %d matches: %v\n", rpq.NumMatches(), rpq.Matches())

	// SCC: the citation cycle is one strongly connected component.
	scc := incgraph.NewSCC(g.Clone())
	fmt.Printf("SCC  → %d components\n", scc.NumComponents())

	// KWS: papers within 1 hop of both an author and a venue.
	kws, err := incgraph.NewKWS(g.Clone(), incgraph.KWSQuery{Keywords: []string{"author", "venue"}, Bound: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KWS  (author,venue) b=1 → roots %v\n", kws.MatchRoots())

	// ISO: the co-citation motif paper→author←paper.
	pg := incgraph.NewGraph()
	pg.AddNode(0, "paper")
	pg.AddNode(1, "author")
	pg.AddNode(2, "paper")
	pg.AddEdge(0, 1)
	pg.AddEdge(2, 1)
	pattern, err := incgraph.NewPattern(pg)
	if err != nil {
		log.Fatal(err)
	}
	iso := incgraph.NewISO(g.Clone(), pattern)
	fmt.Printf("ISO  co-citation motif  → %d matches\n", iso.NumMatches())

	// One batch of updates: a new paper appears citing paper1, the cycle is
	// broken, and paper3 gains an author.
	batch := incgraph.Batch{
		incgraph.InsNew(4, 1, "paper", ""), // new paper4 cites paper1
		incgraph.Del(3, 1),                 // paper3 no longer cites paper1
		incgraph.Ins(3, 10),                // paper3 gains author10
	}
	fmt.Printf("\napplying ΔG = %v\n\n", batch)

	// Each structure owns a clone of the base graph and repairs itself
	// incrementally; deltas report ΔO.
	d1, err := rpq.Apply(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RPQ  now %d matches (+%d −%d)\n", rpq.NumMatches(), len(d1.Added), len(d1.Removed))

	d2, err := scc.Apply(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SCC  now %d components (+%d −%d): cycle broken\n",
		scc.NumComponents(), len(d2.Added), len(d2.Removed))

	d3, err := kws.Apply(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KWS  now roots %v (+%d −%d ~%d)\n",
		kws.MatchRoots(), len(d3.Added), len(d3.Removed), len(d3.Updated))

	d4, err := iso.Apply(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ISO  now %d matches (+%d −%d)\n", iso.NumMatches(), len(d4.Added), len(d4.Removed))
}
