// Social-stream maintenance: a LiveJournal-style social graph receives a
// live stream of follow/unfollow events while two standing queries stay
// fresh incrementally — community structure via IncSCC and a keyword search
// via IncKWS. This is the "frequent small ΔG" regime the paper motivates:
// recomputation per event would be wasteful, incremental maintenance is
// nearly free.
//
// Run with: go run ./examples/social_stream [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"incgraph"
)

func main() {
	workers := flag.Int("workers", 0, "engine worker pool size (0 = all cores, 1 = sequential)")
	flag.Parse()

	// A synthetic social graph: 77% of members sit in one giant mutually-
	// reachable community, like LiveJournal's giant SCC (Exp-1(3) of the
	// paper).
	g := incgraph.SyntheticGraph(incgraph.GraphSpec{
		Nodes:        4000,
		Edges:        20000,
		Labels:       40,
		GiantSCCFrac: 0.77,
		Seed:         7,
	})
	// Clones inherit the setting, so both standing queries below repair
	// their answers on the parallel path.
	g.SetParallelism(*workers)
	fmt.Printf("social graph: %d members, %d follow edges (%d workers)\n",
		g.NumNodes(), g.NumEdges(), g.Parallelism())

	// Standing query 1: community structure.
	scc := incgraph.NewSCC(g.Clone())
	fmt.Printf("communities: %d strongly connected components\n", scc.NumComponents())

	// Standing query 2: members within 2 hops of both interest labels.
	q := incgraph.KWSQuery{Keywords: []string{"l1", "l2"}, Bound: 2}
	kws, err := incgraph.NewKWS(g.Clone(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("keyword roots (%v, b=%d): %d\n", q.Keywords, q.Bound, kws.NumMatches())

	// The event stream: bursts of follows/unfollows (ρ = 1, like the
	// paper's stable-size workloads).
	fmt.Println("\nprocessing 10 bursts of 200 events each:")
	var sccTotal, kwsTotal time.Duration
	for burst := 0; burst < 10; burst++ {
		events := incgraph.RandomUpdates(scc.Graph(), incgraph.UpdateSpec{
			Count:       200,
			InsertRatio: 0.5,
			Locality:    1.0,
			Seed:        int64(1000 + burst),
		})

		start := time.Now()
		ds, err := scc.Apply(events)
		if err != nil {
			log.Fatal(err)
		}
		sccTotal += time.Since(start)

		// The KWS index owns a different clone: rebuild the same events
		// against its graph state.
		kwsEvents := incgraph.RandomUpdates(kws.Graph(), incgraph.UpdateSpec{
			Count:       200,
			InsertRatio: 0.5,
			Locality:    1.0,
			Seed:        int64(1000 + burst),
		})
		start = time.Now()
		dk, err := kws.Apply(kwsEvents)
		if err != nil {
			log.Fatal(err)
		}
		kwsTotal += time.Since(start)

		fmt.Printf("  burst %2d: communities %5d (+%d −%d) | keyword roots %4d (+%d −%d)\n",
			burst+1, scc.NumComponents(), len(ds.Added), len(ds.Removed),
			kws.NumMatches(), len(dk.Added), len(dk.Removed))
	}
	fmt.Printf("\nincremental maintenance time over 2000 events: SCC %v, KWS %v\n", sccTotal, kwsTotal)

	// Contrast with the naive standing-query strategy: recomputing after
	// every event.
	start := time.Now()
	incgraph.SCCOf(scc.Graph())
	one := time.Since(start)
	fmt.Printf("one batch Tarjan recomputation: %v — per-event recomputation would cost ~%v\n",
		one, one*2000)
}
