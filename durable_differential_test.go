package incgraph_test

// Differential test of the durability subsystem: recovery parity. For
// every query class, at shards=1 and shards=8, the answers served after a
// crash — snapshot load plus WAL replay through the engines' normal Apply
// path — must be byte-identical (Maintained.WriteAnswer) to the answers of
// the uninterrupted in-memory run, and the recovered graph must equal the
// live one. A torn or corrupt WAL tail must truncate, not fail recovery.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"incgraph"
)

// durableQueries fixes one query per class for a workload graph.
type durableQueries struct {
	kws incgraph.KWSQuery
	rpq *incgraph.Regexp
	iso *incgraph.Pattern
}

func mkDurableQueries(t *testing.T, g *incgraph.Graph, seed int64) durableQueries {
	t.Helper()
	kwsQ, err := incgraph.RandomKWSQuery(g, 3, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	rpqQ, err := incgraph.RandomRPQQuery(g, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	isoQ, err := incgraph.RandomISOPattern(g, 3, 3, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	return durableQueries{kws: kwsQ, rpq: rpqQ, iso: isoQ}
}

// mkEngines builds all four maintained engines, each on its own clone of g.
func mkEngines(t *testing.T, g *incgraph.Graph, q durableQueries) []incgraph.Maintained {
	t.Helper()
	kws, err := incgraph.NewKWS(g.Clone(), q.kws)
	if err != nil {
		t.Fatal(err)
	}
	rpq, err := incgraph.NewRPQFromAst(g.Clone(), q.rpq)
	if err != nil {
		t.Fatal(err)
	}
	return []incgraph.Maintained{
		incgraph.MaintainKWS(kws),
		incgraph.MaintainRPQ(rpq),
		incgraph.MaintainSCC(incgraph.NewSCC(g.Clone())),
		incgraph.MaintainISO(incgraph.NewISO(g.Clone(), q.iso)),
	}
}

// answers renders every engine's canonical answer bytes, keyed by class.
func answers(t *testing.T, engines []incgraph.Maintained) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(engines))
	for _, m := range engines {
		var buf bytes.Buffer
		if err := m.WriteAnswer(&buf); err != nil {
			t.Fatalf("%s: WriteAnswer: %v", m.Class(), err)
		}
		out[m.Class()] = buf.Bytes()
	}
	return out
}

func compareAnswers(t *testing.T, label string, want, got map[string][]byte) {
	t.Helper()
	for class, w := range want {
		g, ok := got[class]
		if !ok {
			t.Fatalf("%s: class %s missing", label, class)
		}
		if !bytes.Equal(w, g) {
			t.Fatalf("%s: %s answers not byte-identical\nwant (%d bytes):\n%s\ngot (%d bytes):\n%s",
				label, class, len(w), w, len(g), g)
		}
	}
}

func TestRecoveryParity(t *testing.T) {
	for _, shards := range []int{1, 8} {
		for _, checkpointMid := range []bool{false, true} {
			name := fmt.Sprintf("shards=%d/checkpoint=%v", shards, checkpointMid)
			t.Run(name, func(t *testing.T) {
				base, batches := diffWorkload(t, 4242)
				q := mkDurableQueries(t, base, 23)
				tune := func(g *incgraph.Graph) *incgraph.Graph {
					g.SetShards(shards)
					g.SetParallelism(4)
					return g
				}

				// Uninterrupted in-memory run.
				live := mkEngines(t, tune(base.Clone()), q)
				for i, b := range batches {
					for _, m := range live {
						if _, err := m.Apply(b); err != nil {
							t.Fatalf("live batch %d %s: %v", i, m.Class(), err)
						}
					}
				}
				want := answers(t, live)

				// Durable run with the same stream, then a simulated crash:
				// the process state is dropped, only dir survives.
				dir := t.TempDir()
				d, err := incgraph.CreateDurable(dir, tune(base.Clone()), incgraph.DurableOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if err := d.Attach(mkEngines(t, d.Graph(), q)...); err != nil {
					t.Fatal(err)
				}
				for i, b := range batches {
					if _, err := d.Apply(b); err != nil {
						t.Fatalf("durable batch %d: %v", i, err)
					}
					if checkpointMid && i == len(batches)/2 {
						if err := d.Checkpoint(); err != nil {
							t.Fatalf("mid-stream checkpoint: %v", err)
						}
					}
				}
				compareAnswers(t, "pre-crash", want, answers(t, d.Engines()))
				liveGraph := d.Graph()
				d.Close()

				// Recovery: snapshot load + WAL replay through Apply.
				r, err := incgraph.OpenDurable(dir, incgraph.DurableOptions{})
				if err != nil {
					t.Fatalf("OpenDurable: %v", err)
				}
				if err := r.Attach(mkEngines(t, r.Graph(), q)...); err != nil {
					t.Fatal(err)
				}
				if err := r.Recover(); err != nil {
					t.Fatalf("Recover: %v", err)
				}
				compareAnswers(t, "post-recovery", want, answers(t, r.Engines()))
				if !r.Graph().Equal(liveGraph) {
					t.Fatal("recovered graph differs from live graph")
				}
				for _, m := range r.Engines() {
					if !m.Graph().Equal(liveGraph) {
						t.Fatalf("recovered %s engine graph differs", m.Class())
					}
				}

				// The recovered instance keeps serving: one more batch stays
				// in lockstep with the live engines.
				extra := incgraph.RandomUpdates(r.Graph(), incgraph.UpdateSpec{
					Count: 40, InsertRatio: 0.5, Locality: 0.8, Seed: 999,
				})
				if _, err := r.Apply(extra); err != nil {
					t.Fatalf("post-recovery apply: %v", err)
				}
				for _, m := range live {
					if _, err := m.Apply(extra); err != nil {
						t.Fatalf("live extra %s: %v", m.Class(), err)
					}
				}
				compareAnswers(t, "post-recovery apply", answers(t, live), answers(t, r.Engines()))
			})
		}
	}
}

// TestRecoveryTornTail crashes mid-append: the WAL's last record is torn
// (truncated) or corrupted (CRC flip). Recovery must succeed with the
// valid prefix and serve answers identical to a run that never saw the
// lost batch.
func TestRecoveryTornTail(t *testing.T) {
	for _, mode := range []string{"torn", "crc"} {
		t.Run(mode, func(t *testing.T) {
			base, batches := diffWorkload(t, 777)
			q := mkDurableQueries(t, base, 31)

			dir := t.TempDir()
			d, err := incgraph.CreateDurable(dir, base.Clone(), incgraph.DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Attach(mkEngines(t, d.Graph(), q)...); err != nil {
				t.Fatal(err)
			}
			for i, b := range batches {
				if _, err := d.Apply(b); err != nil {
					t.Fatalf("batch %d: %v", i, err)
				}
			}
			d.Close()

			// Reference: a run that saw every batch except the last.
			ref := mkEngines(t, base.Clone(), q)
			for _, b := range batches[:len(batches)-1] {
				for _, m := range ref {
					if _, err := m.Apply(b); err != nil {
						t.Fatal(err)
					}
				}
			}
			want := answers(t, ref)

			// Damage the tail of the WAL so the final record is lost.
			walPath := filepath.Join(dir, "wal-00000001.log")
			data, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "torn":
				data = data[:len(data)-7] // cut inside the last record
			case "crc":
				data[len(data)-1] ^= 0xFF // corrupt the last payload byte
			}
			if err := os.WriteFile(walPath, data, 0o644); err != nil {
				t.Fatal(err)
			}

			r, err := incgraph.OpenDurable(dir, incgraph.DurableOptions{})
			if err != nil {
				t.Fatalf("OpenDurable after %s tail: %v", mode, err)
			}
			if err := r.Attach(mkEngines(t, r.Graph(), q)...); err != nil {
				t.Fatal(err)
			}
			if err := r.Recover(); err != nil {
				t.Fatalf("Recover after %s tail: %v", mode, err)
			}
			compareAnswers(t, "torn-tail recovery", want, answers(t, r.Engines()))

			// The truncated log accepts new appends cleanly.
			redo := batches[len(batches)-1]
			if _, err := r.Apply(redo); err != nil {
				t.Fatalf("re-apply after truncation: %v", err)
			}
			for _, m := range ref {
				if _, err := m.Apply(redo); err != nil {
					t.Fatal(err)
				}
			}
			compareAnswers(t, "post-truncation apply", answers(t, ref), answers(t, r.Engines()))
		})
	}
}

// TestDurableGuards pins the misuse errors: attaching an engine that
// shares the base graph, and applying before recovery completed.
func TestDurableGuards(t *testing.T) {
	base, batches := diffWorkload(t, 99)
	q := mkDurableQueries(t, base, 7)
	dir := t.TempDir()
	d, err := incgraph.CreateDurable(dir, base.Clone(), incgraph.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	kws, err := incgraph.NewKWS(d.Graph(), q.kws) // wrong: shares base
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(incgraph.MaintainKWS(kws)); err == nil {
		t.Fatal("want error attaching engine on the base graph")
	}
	if _, err := d.Apply(batches[0]); err != nil {
		t.Fatal(err)
	}
	// Validation failures must not reach the WAL: re-applying the same
	// batch is invalid, and recovery must replay only the good record.
	if _, err := d.Apply(batches[0]); err == nil {
		t.Fatal("want validation error for duplicate batch")
	}
	d.Close()

	r, err := incgraph.OpenDurable(dir, incgraph.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Apply(batches[1]); err == nil {
		t.Fatal("want error applying before Recover")
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Apply(batches[1]); err != nil {
		t.Fatalf("apply after Recover: %v", err)
	}
	r.Close()
}
