package incgraph

import (
	"net"
	"time"

	"incgraph/internal/cluster"
)

// Distribution. A Cluster runs the sharded substrate across processes:
// shard worker processes each hold authoritative replicas of a subset of
// the graph's shards, and the coordinator drives ApplyBatch's two-phase
// protocol over a length+CRC-framed RPC — phase 1 ships each shard's
// slice of the validated batch plan to the worker owning it, in parallel;
// phase 2 (the commit callback) merges deltas in shard order locally — so
// the distributed application is byte-identical to the single-process
// one. Shard placement and rebalancing ship the per-shard snapshot
// segments of internal/store. Batches with disjoint TouchedShards are
// routed concurrently. See internal/cluster for the protocol contract and
// doc.go "Distribution" for what is and is not replicated yet.

type (
	// Cluster is the coordinator side of a shard-worker deployment.
	Cluster = cluster.Coordinator
	// ClusterWorker owns a subset of shards behind the RPC protocol.
	ClusterWorker = cluster.Worker
	// ClusterLink is one worker connection handed to NewCluster.
	ClusterLink = cluster.Link
	// ClusterStat is one worker's entry in Cluster.Stats.
	ClusterStat = cluster.Stat
	// ClusterScrubReport summarizes one anti-entropy pass (Cluster.Scrub).
	ClusterScrubReport = cluster.ScrubReport
	// ClusterScrubStats are the lifetime anti-entropy counters
	// (Cluster.ScrubCounters).
	ClusterScrubStats = cluster.ScrubStats
	// ClusterCommit is the split commit callback of Cluster.ApplyCommit:
	// the log and apply halves of a batch's local commit, pipelined by
	// the coordinator around the remote phase 1. Durable.Commit builds it
	// for you; it is exported for callers driving a cluster without a
	// Durable.
	ClusterCommit = cluster.Commit
)

// ClusterOption configures NewCluster.
type ClusterOption func(*cluster.CoordinatorOptions)

// WithClusterTerm sets the coordinator's fencing term. Workers remember
// the highest term seen; a promoted standby attaches at a higher term,
// fencing every session of the coordinator it replaced.
func WithClusterTerm(term uint64) ClusterOption {
	return func(o *cluster.CoordinatorOptions) { o.Term = term }
}

// WithReplication sets the log-shipping policy (default ReplOff).
func WithReplication(p ReplPolicy) ClusterOption {
	return func(o *cluster.CoordinatorOptions) { o.Repl = p }
}

// WithCallTimeout overrides the per-RPC base deadline (default 60s); it
// still scales with request size.
func WithCallTimeout(d time.Duration) ClusterOption {
	return func(o *cluster.CoordinatorOptions) { o.CallTimeout = d }
}

// WithOnCommit observes every committed batch in sequence order — wire a
// ClusterHub's Feed here to drive standbys.
func WithOnCommit(fn func(seq, preGen, postGen uint64, b Batch)) ClusterOption {
	return func(o *cluster.CoordinatorOptions) { o.OnCommit = fn }
}

// WithSerialLog reverts the coordinator's pipelined WAL append: the log
// step runs inside the serialized commit section instead of overlapping
// phase 1. Differential-testing and debugging switch; results and WAL
// bytes are identical either way.
func WithSerialLog() ClusterOption {
	return func(o *cluster.CoordinatorOptions) { o.SerialLog = true }
}

// WithNoCoalesce disables phase-1 group commit on the worker links: each
// batch's share travels as its own request. Differential-testing and
// debugging switch.
func WithNoCoalesce() ClusterOption {
	return func(o *cluster.CoordinatorOptions) { o.NoCoalesce = true }
}

// ErrClusterOverloaded reports a Cluster.ApplyDeadline that was shed at
// shard admission: its per-op deadline expired while conflicting batches
// held its shards. Nothing was applied anywhere; the batch is safe to
// retry. Serving layers surface it as an explicit backpressure reply.
var ErrClusterOverloaded = cluster.ErrOverloaded

// NewCluster attaches the linked workers as shard workers of g,
// handshaking each and placing every shard round-robin. Options select
// the HA behaviors (fencing term, replication, commit hook) and the
// commit-pipeline switches. While the cluster is attached, the cluster
// commit path (Durable.Commit with ApplyOptions.Via, or Cluster.Apply
// directly) must be the only mutation path of g.
func NewCluster(g *Graph, links []ClusterLink, opts ...ClusterOption) (*Cluster, error) {
	var o cluster.CoordinatorOptions
	for _, opt := range opts {
		opt(&o)
	}
	return cluster.NewCoordinatorWith(g, links, o)
}

// NewClusterWorker returns an empty shard worker; serve it with
// ClusterWorker.Serve on a listener (or ServeConn on any connection). The
// coordinator's handshake sizes and populates it.
func NewClusterWorker() *ClusterWorker { return cluster.NewWorker() }

// DialClusterWorker connects to a worker's TCP address, returning a
// redialable link: a worker that crashes and restarts on the same address
// is reattached and rebuilt from shipped segments automatically.
func DialClusterWorker(addr string) (ClusterLink, error) { return cluster.Dial(addr) }

// InProcessLinks starts n workers over synchronous in-memory pipes — the
// deterministic transport used by tests and benchmarks — and returns
// links ready for NewCluster. stop tears the serving goroutines down.
func InProcessLinks(n int) (links []ClusterLink, workers []*ClusterWorker, stop func()) {
	return cluster.InProcess(n)
}

// InProcessCluster starts n workers over synchronous in-memory pipes.
//
// Deprecated: renamed InProcessLinks (it builds links, not a Cluster).
func InProcessCluster(n int) (links []ClusterLink, workers []*ClusterWorker, stop func()) {
	return cluster.InProcess(n)
}

// ApplyVia applies b through the cluster's distributed two-phase protocol
// with the Durable as the commit step.
//
// Deprecated: ApplyVia is Commit(b, ApplyOptions{Via: c}); use Commit.
func (d *Durable) ApplyVia(c *Cluster, b Batch) ([]DeltaSummary, error) {
	return d.Commit(b, ApplyOptions{Via: c})
}

// ListenCluster is a convenience for worker processes: listen on addr and
// return the listener (so the caller can log the bound address) for
// ClusterWorker.Serve.
func ListenCluster(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }
