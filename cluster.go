package incgraph

import (
	"net"

	"incgraph/internal/cluster"
)

// Distribution. A Cluster runs the sharded substrate across processes:
// shard worker processes each hold authoritative replicas of a subset of
// the graph's shards, and the coordinator drives ApplyBatch's two-phase
// protocol over a length+CRC-framed RPC — phase 1 ships each shard's
// slice of the validated batch plan to the worker owning it, in parallel;
// phase 2 (the commit callback) merges deltas in shard order locally — so
// the distributed application is byte-identical to the single-process
// one. Shard placement and rebalancing ship the per-shard snapshot
// segments of internal/store. Batches with disjoint TouchedShards are
// routed concurrently. See internal/cluster for the protocol contract and
// doc.go "Distribution" for what is and is not replicated yet.

type (
	// Cluster is the coordinator side of a shard-worker deployment.
	Cluster = cluster.Coordinator
	// ClusterWorker owns a subset of shards behind the RPC protocol.
	ClusterWorker = cluster.Worker
	// ClusterLink is one worker connection handed to NewCluster.
	ClusterLink = cluster.Link
	// ClusterStat is one worker's entry in Cluster.Stats.
	ClusterStat = cluster.Stat
	// ClusterScrubReport summarizes one anti-entropy pass (Cluster.Scrub).
	ClusterScrubReport = cluster.ScrubReport
	// ClusterScrubStats are the lifetime anti-entropy counters
	// (Cluster.ScrubCounters).
	ClusterScrubStats = cluster.ScrubStats
)

// ErrClusterOverloaded reports a Cluster.ApplyDeadline that was shed at
// shard admission: its per-op deadline expired while conflicting batches
// held its shards. Nothing was applied anywhere; the batch is safe to
// retry. Serving layers surface it as an explicit backpressure reply.
var ErrClusterOverloaded = cluster.ErrOverloaded

// NewCluster attaches the linked workers as shard workers of g,
// handshaking each and placing every shard round-robin. While the cluster
// is attached, Cluster.Apply (or Durable.ApplyVia) must be the only
// mutation path of g.
func NewCluster(g *Graph, links []ClusterLink) (*Cluster, error) {
	return cluster.NewCoordinator(g, links)
}

// NewClusterWorker returns an empty shard worker; serve it with
// ClusterWorker.Serve on a listener (or ServeConn on any connection). The
// coordinator's handshake sizes and populates it.
func NewClusterWorker() *ClusterWorker { return cluster.NewWorker() }

// DialClusterWorker connects to a worker's TCP address, returning a
// redialable link: a worker that crashes and restarts on the same address
// is reattached and rebuilt from shipped segments automatically.
func DialClusterWorker(addr string) (ClusterLink, error) { return cluster.Dial(addr) }

// InProcessCluster starts n workers over synchronous in-memory pipes —
// the deterministic transport used by tests and benchmarks. stop tears
// the serving goroutines down.
func InProcessCluster(n int) (links []ClusterLink, workers []*ClusterWorker, stop func()) {
	return cluster.InProcess(n)
}

// ApplyVia applies b through the cluster's distributed two-phase protocol
// with the Durable as the commit step: phase 1 fans out to the shard
// workers, and only after every worker acknowledged does the usual
// durable path run — validate, WAL-append, apply to the base graph and
// every attached engine. A worker failure aborts the batch atomically
// (nothing is logged or applied locally) and the affected shards are
// re-shipped from the authoritative graph before their next use.
func (d *Durable) ApplyVia(c *Cluster, b Batch) ([]DeltaSummary, error) {
	var sums []DeltaSummary
	err := c.Apply(b, func(bb Batch) error {
		var aerr error
		sums, aerr = d.Apply(bb)
		return aerr
	})
	if err != nil {
		return nil, err
	}
	return sums, nil
}

// ListenCluster is a convenience for worker processes: listen on addr and
// return the listener (so the caller can log the bound address) for
// ClusterWorker.Serve.
func ListenCluster(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }
