package incgraph_test

// Tests of the Log/ApplyLogged split of Durable.Apply (the serving path
// uses it to keep the WAL fsync outside its read-exclusion window): the
// split path must be byte-identical to plain Apply, and a crash between
// Log and ApplyLogged must replay the logged batch on recovery exactly
// like a crash mid-Apply would.

import (
	"math/rand"
	"path/filepath"
	"testing"

	"incgraph"
)

func TestLogApplyLoggedMatchesApply(t *testing.T) {
	g := incgraph.SyntheticGraph(incgraph.GraphSpec{
		Nodes: 300, Edges: 1500, Labels: 6, GiantSCCFrac: 0.4, Seed: 21,
	})
	q := mkDurableQueries(t, g, 21)

	dir := t.TempDir()
	split, err := incgraph.CreateDurable(filepath.Join(dir, "split"), g.Clone(), incgraph.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := split.Attach(mkEngines(t, split.Graph(), q)...); err != nil {
		t.Fatal(err)
	}
	plain, err := incgraph.CreateDurable(filepath.Join(dir, "plain"), g.Clone(), incgraph.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Attach(mkEngines(t, plain.Graph(), q)...); err != nil {
		t.Fatal(err)
	}

	scratch := g.Clone()
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 6; i++ {
		b := incgraph.RandomUpdates(scratch, incgraph.UpdateSpec{
			Count: 40, InsertRatio: 0.6, Locality: 0.5, Seed: rng.Int63(),
		})
		if err := scratch.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		if err := split.Log(b); err != nil {
			t.Fatalf("Log batch %d: %v", i, err)
		}
		if _, err := split.ApplyLogged(b); err != nil {
			t.Fatalf("ApplyLogged batch %d: %v", i, err)
		}
		if _, err := plain.Apply(b); err != nil {
			t.Fatalf("Apply batch %d: %v", i, err)
		}
	}
	compareAnswers(t, "split vs plain", answers(t, plain.Engines()), answers(t, split.Engines()))
	if sg, pg := split.Generation(), plain.Generation(); sg != pg {
		t.Fatalf("generation diverged: split %d, plain %d", sg, pg)
	}
	split.Close()
	plain.Close()
}

func TestCrashBetweenLogAndApplyLoggedReplays(t *testing.T) {
	g := incgraph.SyntheticGraph(incgraph.GraphSpec{
		Nodes: 200, Edges: 900, Labels: 5, GiantSCCFrac: 0.4, Seed: 31,
	})
	q := mkDurableQueries(t, g, 31)

	dir := t.TempDir()
	d, err := incgraph.CreateDurable(dir, g.Clone(), incgraph.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(mkEngines(t, d.Graph(), q)...); err != nil {
		t.Fatal(err)
	}
	scratch := g.Clone()
	b1 := incgraph.RandomUpdates(scratch, incgraph.UpdateSpec{Count: 30, InsertRatio: 0.7, Locality: 0.5, Seed: 7})
	if err := scratch.ApplyBatch(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(b1); err != nil {
		t.Fatal(err)
	}
	// Log b2 but "crash" before ApplyLogged: close the WAL with the record
	// durable and the in-memory state behind it.
	b2 := incgraph.RandomUpdates(scratch, incgraph.UpdateSpec{Count: 30, InsertRatio: 0.7, Locality: 0.5, Seed: 8})
	if err := scratch.ApplyBatch(b2); err != nil {
		t.Fatal(err)
	}
	if err := d.Log(b2); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// The uninterrupted twin applies both batches fully.
	want := mkEngines(t, g, q)
	for _, m := range want {
		for _, b := range []incgraph.Batch{b1, b2} {
			if _, err := m.Apply(b); err != nil {
				t.Fatal(err)
			}
		}
	}

	re, err := incgraph.OpenDurable(dir, incgraph.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Attach(mkEngines(t, re.Graph(), q)...); err != nil {
		t.Fatal(err)
	}
	if err := re.Recover(); err != nil {
		t.Fatal(err)
	}
	compareAnswers(t, "recovered vs uninterrupted", answers(t, want), answers(t, re.Engines()))
	re.Close()
}
