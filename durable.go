package incgraph

import (
	"fmt"
	"io"
	"time"

	"incgraph/internal/store"
)

// Durability. A Durable couples one graph's on-disk store — a per-shard
// binary snapshot plus a write-ahead log of every batch applied since (see
// internal/store for the formats) — with the maintained engines serving
// answers over that graph. The contract:
//
//   - Apply is write-ahead: the batch is validated, appended to the WAL
//     (fsynced per the SyncPolicy), and only then applied to the base
//     graph and every attached engine. A crash after the append replays
//     the batch on recovery; a crash during it leaves a torn tail that
//     recovery truncates. Acknowledged batches are never lost under
//     SyncAlways.
//   - Checkpoint folds the WAL into a fresh snapshot (written atomically,
//     manifest-committed) and starts an empty log.
//   - OpenDurable + Recover rebuilds everything: the snapshot loads into
//     an identical graph (slot assignment included), engines are built on
//     clones of it exactly as on first boot, and the WAL's batches replay
//     through the engines' normal Apply path — so every maintained answer
//     comes back byte-identical (WriteAnswer) to the uninterrupted run, at
//     any worker or shard count.
//
// Concurrency: Apply, Checkpoint, Recover and Close require exclusive
// access (they mutate). Between them the attached engines are
// read-shareable per the usual contract — Apply runs
// PrepareConcurrentReads on every engine graph before returning, so
// concurrent readers (e.g. incgraphd query handlers) can start
// immediately.

// SyncPolicy selects when the write-ahead log fsyncs; see the constants.
type SyncPolicy = store.SyncPolicy

const (
	// SyncAlways fsyncs the WAL after every Apply: acknowledged batches
	// survive OS and power failure. The default.
	SyncAlways = store.SyncAlways
	// SyncNone leaves WAL flushing to the OS: bounded loss on power
	// failure, much higher ingest throughput.
	SyncNone = store.SyncNone
)

// DurableOptions tunes a Durable.
type DurableOptions struct {
	// Sync is the WAL fsync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// FS routes the store's write-path file operations; nil means the
	// real filesystem. Set a *FaultFS to drill disk failures.
	FS FS
}

// Durable is a graph store plus the engines maintained in lockstep with it.
type Durable struct {
	st      *store.Store
	base    *Graph
	engines []Maintained
	// pending holds WAL records recovered by OpenDurable until Recover
	// replays them; non-nil means Apply must refuse (recovery incomplete).
	pending  []store.ReplayRecord
	replayed bool
}

// CreateDurable initializes a new store at dir from the current state of
// g and returns a Durable owning g as its base graph. Engines built on
// clones of g (NewKWS(g.Clone(), ...) etc.) should be attached with
// Attach before the first Apply.
func CreateDurable(dir string, g *Graph, opts DurableOptions) (*Durable, error) {
	st, err := store.Create(dir, g, store.Options{Sync: opts.Sync, FS: opts.FS})
	if err != nil {
		return nil, err
	}
	return &Durable{st: st, base: g, replayed: true}, nil
}

// OpenDurable opens the store at dir and loads its snapshot. The returned
// Durable is mid-recovery: build engines on clones of Graph() (which is
// the snapshot-time graph), Attach them, then call Recover to replay the
// WAL through every engine's normal Apply path. Apply refuses until
// Recover has run.
func OpenDurable(dir string, opts DurableOptions) (*Durable, error) {
	st, g, records, err := store.Open(dir, store.Options{Sync: opts.Sync, FS: opts.FS})
	if err != nil {
		return nil, err
	}
	return &Durable{st: st, base: g, pending: records}, nil
}

// DurableExists reports whether dir holds a store a previous run created.
func DurableExists(dir string) bool { return store.Exists(dir) }

// Graph returns the base graph: after CreateDurable, the graph the store
// was created from; after OpenDurable (before Recover), the snapshot-time
// graph engines should be built on.
func (d *Durable) Graph() *Graph { return d.base }

// Attach registers an engine to be kept in lockstep: Apply will apply
// every batch to it, and Recover will replay the WAL through it. The
// engine must have been built on a clone of Graph() (sharing the base
// graph itself would double-apply every batch).
func (d *Durable) Attach(ms ...Maintained) error {
	for _, m := range ms {
		if m.Graph() == d.base {
			return fmt.Errorf("incgraph: Attach(%s): engine shares the base graph; build it on Graph().Clone()", m.Class())
		}
		d.engines = append(d.engines, m)
	}
	return nil
}

// Engines returns the attached engines, in attach order.
func (d *Durable) Engines() []Maintained { return d.engines }

// Recover replays the WAL records recovered by OpenDurable through the
// base graph and every attached engine, in log order, completing crash
// recovery. It is a no-op on a freshly created store. Engines attached
// after Recover has run would miss the replayed batches, so attach first.
func (d *Durable) Recover() error {
	if d.replayed {
		return nil
	}
	for _, rec := range d.pending {
		if err := d.applyAll(rec.Batch); err != nil {
			return fmt.Errorf("incgraph: recovery replay of WAL record %d: %w", rec.Seq, err)
		}
	}
	d.pending = nil
	d.replayed = true
	return nil
}

// applyAll applies b to the base graph and every engine, then flushes the
// sorted caches so readers can fan out immediately.
func (d *Durable) applyAll(b Batch) error {
	if err := d.base.ApplyBatch(b); err != nil {
		return err
	}
	for _, m := range d.engines {
		if _, err := m.Apply(b); err != nil {
			return fmt.Errorf("%s: %w", m.Class(), err)
		}
		m.Graph().PrepareConcurrentReads()
	}
	d.base.PrepareConcurrentReads()
	return nil
}

// ApplyOptions routes one Commit. The zero value is the plain local
// durable apply: validate, WAL-append, apply to the base graph and every
// attached engine.
type ApplyOptions struct {
	// Via, when non-nil, runs the batch through the cluster's distributed
	// two-phase protocol: phase 1 fans the planned effects out to the
	// shard workers, the WAL append overlaps those round trips (pipelined
	// by the coordinator, which keeps log order equal to commit order and
	// the WAL bytes identical to the local path), and only after every
	// worker acknowledged does the local application run. A worker
	// failure aborts atomically — the logged record is durably taken back
	// and nothing is applied.
	Via *Cluster
	// Deadline is the serving layer's per-op budget, used by the cluster
	// path: it bounds the shard-admission wait (expiry sheds the batch
	// with ErrClusterOverloaded, nothing applied anywhere) and caps every
	// phase-1 round trip. Zero means no budget; ignored without Via.
	Deadline time.Time
	// Log, when set, replaces the WAL-append step. It receives the batch
	// (already validated) and the generation stamp the record should
	// carry, and must append exactly one record per successful return —
	// d.LogPlanned is the default it replaces. Serving layers hook their
	// disk-degradation retry loops here.
	Log func(b Batch, gen uint64) error
	// Exclusive, when set, wraps the in-memory application: Commit calls
	// it with the apply step, and it must run that function under
	// whatever write-exclusion the caller's readers respect. The WAL
	// append stays outside it, so a stalled fsync backs up writers, never
	// readers. Nil applies directly.
	Exclusive func(apply func() error) error
}

// Commit is the single write path: it validates b, appends it to the
// write-ahead log, and applies it to the base graph and every attached
// engine, returning the per-engine summaries in attach order — locally,
// or through a cluster when opts.Via is set, with identical results and
// identical WAL bytes. Validation happens before the append, so a logged
// batch is always replayable and a rejected batch changes nothing.
func (d *Durable) Commit(b Batch, opts ApplyOptions) ([]DeltaSummary, error) {
	logFn := opts.Log
	if logFn == nil {
		logFn = d.LogPlanned
	}
	runExclusive := func(apply func() error) error {
		if opts.Exclusive != nil {
			return opts.Exclusive(apply)
		}
		return apply()
	}
	var sums []DeltaSummary
	applyFn := func(bb Batch) error {
		return runExclusive(func() error {
			var aerr error
			sums, aerr = d.ApplyLogged(bb)
			return aerr
		})
	}
	if opts.Via != nil {
		// The coordinator validates by planning, orders the pipelined log
		// appends, and supplies the generation stamp.
		err := opts.Via.ApplyCommit(b, opts.Deadline, ClusterCommit{
			Log:   logFn,
			Unlog: d.Unlog,
			Apply: applyFn,
		})
		if err != nil {
			return nil, err
		}
		return sums, nil
	}
	if !d.replayed {
		return nil, fmt.Errorf("incgraph: Apply before Recover: WAL replay pending")
	}
	if err := d.base.ValidateBatch(b); err != nil {
		return nil, err
	}
	if err := logFn(b, d.base.Generation()); err != nil {
		return nil, err
	}
	if err := applyFn(b); err != nil {
		return nil, err
	}
	return sums, nil
}

// Apply validates b, appends it to the write-ahead log, and applies it to
// the base graph and every attached engine, returning the per-engine
// summaries in attach order.
//
// Deprecated: Apply is Commit(b, ApplyOptions{}); use Commit.
func (d *Durable) Apply(b Batch) ([]DeltaSummary, error) {
	return d.Commit(b, ApplyOptions{})
}

// LogPlanned appends one already-validated batch to the write-ahead log
// (fsynced per the SyncPolicy), stamped with gen — the default log step
// of Commit. Callers are the coordinator's pipelined commit and serving
// layers' ApplyOptions.Log hooks; both guarantee the batch was validated
// against the state the stamp describes. For a standalone append with
// validation, use Log.
func (d *Durable) LogPlanned(b Batch, gen uint64) error {
	if !d.replayed {
		return fmt.Errorf("incgraph: Apply before Recover: WAL replay pending")
	}
	if err := d.st.Append(b, gen); err != nil {
		return fmt.Errorf("incgraph: WAL append: %w", err)
	}
	return nil
}

// Unlog durably rolls back the latest LogPlanned/Log before any further
// append: the record comes off the WAL's end as if never written. It is
// the abort half of the cluster's pipelined commit — a batch whose
// phase 1 fails after its record was logged must take the record back,
// or recovery would replay a batch that never committed.
func (d *Durable) Unlog() error {
	return d.st.Unappend()
}

// Log validates b and appends it to the write-ahead log (fsynced per the
// SyncPolicy) without applying it. The caller must serialize Log and the
// following ApplyLogged against other writers and Checkpoint; readers
// may run concurrently with Log, since it only reads the graph. A crash
// between Log and ApplyLogged is safe: recovery replays the logged batch
// exactly as if the crash had hit mid-Apply.
//
// Deprecated: use Commit — its ApplyOptions.Exclusive hook keeps the
// disk wait outside the caller's read-exclusion window (the reason this
// split existed), and ApplyOptions.Log replaces the append step itself.
func (d *Durable) Log(b Batch) error {
	if !d.replayed {
		return fmt.Errorf("incgraph: Apply before Recover: WAL replay pending")
	}
	if err := d.base.ValidateBatch(b); err != nil {
		return err
	}
	if err := d.st.Append(b, d.base.Generation()); err != nil {
		return fmt.Errorf("incgraph: WAL append: %w", err)
	}
	return nil
}

// ApplyLogged applies a batch Log (or LogPlanned) just appended to the
// base graph and every attached engine, returning the per-engine
// summaries in attach order. See Log for the serialization contract. It
// is the apply step Commit wraps in ApplyOptions.Exclusive; prefer
// Commit unless you are building such a hook yourself.
func (d *Durable) ApplyLogged(b Batch) ([]DeltaSummary, error) {
	if err := d.base.ApplyBatch(b); err != nil {
		// Unreachable after validation; surface loudly if it ever happens.
		return nil, fmt.Errorf("incgraph: validated batch failed to apply: %w", err)
	}
	sums := make([]DeltaSummary, len(d.engines))
	for i, m := range d.engines {
		sum, err := m.Apply(b)
		if err != nil {
			return nil, fmt.Errorf("incgraph: engine %s diverged on validated batch: %w", m.Class(), err)
		}
		sums[i] = sum
		m.Graph().PrepareConcurrentReads()
	}
	d.base.PrepareConcurrentReads()
	return sums, nil
}

// Checkpoint makes the current state the durable baseline: a fresh
// per-shard snapshot of the base graph, an empty WAL, and removal of the
// superseded files. Recovery time drops to a snapshot load.
func (d *Durable) Checkpoint() error {
	if !d.replayed {
		return fmt.Errorf("incgraph: Checkpoint before Recover: WAL replay pending")
	}
	return d.st.Checkpoint(d.base)
}

// WALBytes returns the write-ahead log's current size: the natural
// auto-checkpoint threshold signal.
func (d *Durable) WALBytes() int64 { return d.st.WALSize() }

// WALSeq returns the sequence number of the last logged batch.
func (d *Durable) WALSeq() uint64 { return d.st.WALSeq() }

// Epoch returns the checkpoint epoch (1 on a fresh store, +1 per
// Checkpoint).
func (d *Durable) Epoch() uint64 { return d.st.Epoch() }

// Generation returns the base graph's mutation generation.
func (d *Durable) Generation() uint64 { return d.base.Generation() }

// Close closes the write-ahead log. The store remains openable.
func (d *Durable) Close() error { return d.st.Close() }

// WALBroken returns the wedging error of a WAL whose failed append could
// not be rolled back, or nil while appends can still be acknowledged. A
// broken log heals through Checkpoint, which starts a fresh one — the
// probe a serving layer's disk-degradation recovery loop keys off.
func (d *Durable) WALBroken() error { return d.st.WALBroken() }

// SyncWAL forces a WAL fsync regardless of policy: a cheap disk-health
// probe for deciding when a degraded daemon may leave read-only mode.
func (d *Durable) SyncWAL() error { return d.st.Sync() }

// Snapshot I/O, re-exported for callers that want graph persistence
// without a store directory (the CLI tools accept .snap files anywhere a
// text graph is accepted).

// WriteSnapshot serializes g in the versioned per-shard binary snapshot
// format (see internal/store). Deterministic: identical graphs produce
// identical bytes.
func WriteSnapshot(w io.Writer, g *Graph) error { return store.WriteSnapshot(w, g) }

// WriteSnapshotFile writes a snapshot atomically (temp file + rename).
func WriteSnapshotFile(path string, g *Graph) error { return store.WriteSnapshotFile(path, g) }

// ReadSnapshotFile loads a snapshot file into an identical graph — shard
// count, slot assignment and mutation generation included — loading
// segments in parallel.
func ReadSnapshotFile(path string) (*Graph, error) { return store.ReadSnapshotFile(path) }

// LoadGraphFile loads a graph from path in either supported format,
// sniffing the snapshot magic: .snap files load via ReadSnapshotFile,
// anything else parses as the line-oriented text format.
func LoadGraphFile(path string) (*Graph, error) { return store.ReadGraphFile(path) }

// ValidateBatch reports whether ApplyBatch(b) would succeed on g, without
// mutating anything; see graph.ValidateBatch.
func ValidateBatch(g *Graph, b Batch) error { return g.ValidateBatch(b) }

// Disk-fault injection, re-exported from internal/store. A FaultFS wraps
// the real filesystem and fails chosen syscalls deterministically — the
// storage counterpart of the cluster FaultScript — so disk drills
// (ENOSPC mid-append, lying fsync, power loss at write K) run seeded and
// reproducible through DurableOptions.FS; see store.FaultFS.
type (
	// FS is the filesystem seam every store write goes through.
	FS = store.FS
	// FaultFS is a seeded fault-injecting FS.
	FaultFS = store.FaultFS
	// FSRule matches filesystem operations for fault injection.
	FSRule = store.FSRule
	// FaultKind is the failure a fired FSRule injects.
	FaultKind = store.FaultKind
)

// Disk-fault kinds for FSRule.Kind; see the store package constants.
const (
	FaultEIO        = store.FaultEIO
	FaultENOSPC     = store.FaultENOSPC
	FaultShortWrite = store.FaultShortWrite
	FaultTornWrite  = store.FaultTornWrite
	FaultSyncFail   = store.FaultSyncFail
	FaultSyncLie    = store.FaultSyncLie
	FaultCrash      = store.FaultCrash
	FaultPowerFail  = store.FaultPowerFail
)

// ErrDiskCrashed reports a filesystem operation attempted after an
// injected crash or power failure.
var ErrDiskCrashed = store.ErrCrashed

// NewFaultFS builds a seeded fault-injecting filesystem from rules.
func NewFaultFS(seed int64, rules ...FSRule) *FaultFS { return store.NewFaultFS(seed, rules...) }
