package incgraph

import (
	"io"

	"incgraph/internal/cost"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/iso"
	"incgraph/internal/kws"
	"incgraph/internal/reach"
	"incgraph/internal/rex"
	"incgraph/internal/rpq"
	"incgraph/internal/scc"
)

// Graph model. Aliases re-export the internal implementations so callers
// outside this module can use them without importing internal paths.
type (
	// Graph is a directed graph with string-labeled nodes.
	Graph = graph.Graph
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// Edge is a directed edge.
	Edge = graph.Edge
	// Update is a unit update: an edge insertion (possibly with new nodes)
	// or an edge deletion.
	Update = graph.Update
	// Batch is a batch update ΔG: a sequence of unit updates.
	Batch = graph.Batch
	// Meter accumulates the abstract work counters used to verify the
	// paper's localizability and relative-boundedness claims empirically.
	Meter = cost.Meter
	// Op is the kind of a unit update.
	Op = graph.Op
	// LabelID is the interned (process-wide) form of a node label; hot
	// loops compare LabelIDs instead of strings.
	LabelID = graph.LabelID
)

// NoLabel is the LabelID of nodes that do not exist.
const NoLabel = graph.NoLabel

// ErrBadUpdate reports an update that cannot be applied to the current
// graph (insertion of an existing edge, deletion of a missing one):
// client input error, not an operational failure. Apply/ApplyBatch and
// the durable/cluster paths wrap it; test with errors.Is.
var ErrBadUpdate = graph.ErrBadUpdate

// InternLabel returns the process-wide interned ID of label, assigning one
// on first sight.
func InternLabel(label string) LabelID { return graph.InternLabel(label) }

// LabelIDOf returns the interned ID of label without assigning one,
// reporting whether the label has ever been interned.
func LabelIDOf(label string) (LabelID, bool) { return graph.LabelIDOf(label) }

// LabelOf returns the string form of an interned label.
func LabelOf(id LabelID) string { return graph.LabelOf(id) }

// Unit update kinds.
const (
	// OpInsert is an edge insertion (possibly with new nodes).
	OpInsert = graph.Insert
	// OpDelete is an edge deletion.
	OpDelete = graph.Delete
)

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// ReadGraph parses the line-oriented text format ("n id label" / "e v w").
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph serializes g in the text format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// Ins returns an edge insertion between existing nodes.
func Ins(v, w NodeID) Update { return graph.Ins(v, w) }

// InsNew returns an edge insertion carrying labels for possibly-new nodes.
func InsNew(v, w NodeID, vl, wl string) Update { return graph.InsNew(v, w, vl, wl) }

// Del returns an edge deletion.
func Del(v, w NodeID) Update { return graph.Del(v, w) }

// Keyword search (KWS): localizable incremental algorithms of Section 4.2.
type (
	// KWSQuery is a keyword query (k1,…,km) with distance bound b.
	KWSQuery = kws.Query
	// KWSIndex maintains kdist(·) lists and Q(G) under updates.
	KWSIndex = kws.Index
	// KWSMatch is a match root with its per-keyword distances.
	KWSMatch = kws.Match
	// KWSDelta is the output change ΔO of a KWS update.
	KWSDelta = kws.Delta
)

// NewKWS builds the keyword-search index (the batch step) on g.
// The index shares g: subsequent Apply* calls mutate it.
func NewKWS(g *Graph, q KWSQuery) (*KWSIndex, error) { return kws.Build(g, q, nil) }

// NewKWSMetered is NewKWS with a work meter attached.
func NewKWSMetered(g *Graph, q KWSQuery, m *Meter) (*KWSIndex, error) { return kws.Build(g, q, m) }

// Regular path queries (RPQ): relatively bounded incrementalization of
// RPQ_NFA (Section 5.2).
type (
	// RPQEngine maintains pmark_e markings and Q(G) under updates.
	RPQEngine = rpq.Engine
	// RPQPair is one match (source, destination).
	RPQPair = rpq.Pair
	// RPQDelta is the output change ΔO of an RPQ update.
	RPQDelta = rpq.Delta
	// Regexp is a parsed regular path expression.
	Regexp = rex.Ast
)

// ParseRPQ parses a regular path expression such as "c.(b.a+c)*.c".
func ParseRPQ(query string) (*Regexp, error) { return rex.Parse(query) }

// NewRPQ compiles the query and evaluates it on g (the batch step).
func NewRPQ(g *Graph, query string) (*RPQEngine, error) { return rpq.Parse(g, query, nil) }

// NewRPQFromAst is NewRPQ for an already-parsed expression.
func NewRPQFromAst(g *Graph, q *Regexp) (*RPQEngine, error) { return rpq.NewEngine(g, q, nil) }

// Strongly connected components (SCC): relatively bounded
// incrementalization of Tarjan (Section 5.3).
type (
	// SCCState maintains the component partition, the contracted graph and
	// topological ranks under updates.
	SCCState = scc.State
	// SCCDelta lists components that appeared and disappeared.
	SCCDelta = scc.Delta
)

// NewSCC runs Tarjan on g and builds the maintained state.
func NewSCC(g *Graph) *SCCState { return scc.Build(g, nil) }

// SCCOf computes SCC(G) from scratch (the Tarjan batch baseline).
func SCCOf(g *Graph) [][]NodeID { return scc.Components(g) }

// Subgraph isomorphism (ISO): localizable incremental matching
// (Section 4 and the Appendix).
type (
	// Pattern is a subgraph-isomorphism query graph.
	Pattern = iso.Pattern
	// ISOIndex maintains the match set under updates.
	ISOIndex = iso.Index
	// ISOMatch is one embedding, aligned with Pattern.Nodes().
	ISOMatch = iso.Match
	// ISODelta is the output change ΔO of an ISO update.
	ISODelta = iso.Delta
)

// NewPattern validates a pattern graph.
func NewPattern(q *Graph) (*Pattern, error) { return iso.NewPattern(q) }

// NewISO enumerates Q(G) with VF2 and builds the maintained index.
func NewISO(g *Graph, p *Pattern) *ISOIndex { return iso.Build(g, p, nil) }

// FindMatches runs the VF2 batch algorithm without retaining an index.
// limit ≤ 0 means unlimited.
func FindMatches(g *Graph, p *Pattern, limit int) []ISOMatch { return iso.FindAll(g, p, limit, nil) }

// Single-source reachability (SSRP), the anchor of the paper's
// unboundedness reductions.
type SSRP = reach.SSRP

// NewSSRP builds single-source reachability from src.
func NewSSRP(g *Graph, src NodeID) (*SSRP, error) { return reach.Build(g, src, nil) }

// Workload generation (the experimental-study machinery of Section 6).
type (
	// GraphSpec parameterizes the synthetic graph generator.
	GraphSpec = gen.GraphSpec
	// UpdateSpec parameterizes the random update-stream generator.
	UpdateSpec = gen.UpdateSpec
)

// SyntheticGraph generates a random labeled graph.
func SyntheticGraph(spec GraphSpec) *Graph { return gen.Synthetic(spec) }

// Dataset returns a named workload graph ("dbpedia", "livej", "synthetic")
// at the given scale; see DESIGN.md §5(1) for the simulation rationale.
func Dataset(name string, scale float64, seed int64) (*Graph, error) {
	return gen.Dataset(name, scale, seed)
}

// RandomUpdates generates a batch ΔG valid against g.
func RandomUpdates(g *Graph, spec UpdateSpec) Batch { return gen.Updates(g, spec) }

// RandomKWSQuery samples a keyword query with m keywords from g's frequent
// labels and bound b.
func RandomKWSQuery(g *Graph, m, b int, seed int64) (KWSQuery, error) {
	return gen.KWSQuery(g, m, b, seed)
}

// RandomRPQQuery builds a random regular path expression with exactly size
// label occurrences over g's frequent labels.
func RandomRPQQuery(g *Graph, size int, seed int64) (*Regexp, error) {
	return gen.RPQQuery(g, size, seed)
}

// RandomISOPattern generates a weakly connected pattern with vq nodes, eq
// edges and backbone diameter dq, labeled from g's frequent labels.
func RandomISOPattern(g *Graph, vq, eq, dq int, seed int64) (*Pattern, error) {
	return gen.ISOQuery(g, vq, eq, dq, seed)
}
