package incgraph_test

// Differential test of the distributed substrate: the same update stream
// drives a cluster deployment — coordinator with shards=8 and two shard
// workers over the deterministic in-process transport — and a plain
// single-process engine at shards=8, for every query class. After every
// batch the rendered ΔO summaries, the canonical answers (WriteAnswer,
// the byte-identity currency of the whole system), and the graphs must be
// identical; mid-stream the coordinator rebalances shards between the
// workers by re-shipping segments, and at the end every worker's shard
// replica must export byte-identical to the coordinator's authoritative
// segment. This pins the tentpole guarantee: a distributed apply is
// byte-identical to the single-process one, rebalancing included.

import (
	"bytes"
	"fmt"
	"testing"

	"incgraph"
)

// maintEngines builds one engine per query class on clones of g.
func maintEngines(t *testing.T, g *incgraph.Graph, seed int64) []incgraph.Maintained {
	t.Helper()
	kwsQ, err := incgraph.RandomKWSQuery(g, 3, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	rpqQ, err := incgraph.RandomRPQQuery(g, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	isoQ, err := incgraph.RandomISOPattern(g, 3, 3, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	kws, err := incgraph.NewKWS(g.Clone(), kwsQ)
	if err != nil {
		t.Fatal(err)
	}
	rpq, err := incgraph.NewRPQFromAst(g.Clone(), rpqQ)
	if err != nil {
		t.Fatal(err)
	}
	return []incgraph.Maintained{
		incgraph.MaintainKWS(kws),
		incgraph.MaintainRPQ(rpq),
		incgraph.MaintainSCC(incgraph.NewSCC(g.Clone())),
		incgraph.MaintainISO(incgraph.NewISO(g.Clone(), isoQ)),
	}
}

func answerOf(t *testing.T, m incgraph.Maintained) string {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteAnswer(&buf); err != nil {
		t.Fatalf("%s: WriteAnswer: %v", m.Class(), err)
	}
	return buf.String()
}

func TestClusterMatchesSingleProcess(t *testing.T) {
	g, batches := diffWorkload(t, 4242)
	g.SetShards(8)

	// Cluster side: authoritative graph + engines at the coordinator, two
	// shard workers over in-process pipes.
	cg := g.Clone()
	links, _, stopWorkers := incgraph.InProcessCluster(2)
	defer stopWorkers()
	cl, err := incgraph.NewCluster(cg, links)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	clusterEngines := maintEngines(t, cg, 99)

	// Single-process reference at the same shard count.
	sg := g.Clone()
	singleEngines := maintEngines(t, sg, 99)

	for i := range clusterEngines {
		if a, b := answerOf(t, clusterEngines[i]), answerOf(t, singleEngines[i]); a != b {
			t.Fatalf("%s: initial answers differ", clusterEngines[i].Class())
		}
	}

	for bi, b := range batches {
		// Cluster: the distributed two-phase apply; commit applies the
		// batch to the authoritative graph and every engine, exactly like
		// the durable path does.
		var clusterSums []string
		err := cl.Apply(b, func(bb incgraph.Batch) error {
			if err := cg.ApplyBatch(bb); err != nil {
				return err
			}
			for _, m := range clusterEngines {
				sum, err := m.Apply(bb)
				if err != nil {
					return fmt.Errorf("%s: %w", m.Class(), err)
				}
				clusterSums = append(clusterSums, fmt.Sprintf("%s:%s", m.Class(), sum))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("batch %d: cluster apply: %v", bi, err)
		}

		// Single-process reference.
		var singleSums []string
		if err := sg.ApplyBatch(b); err != nil {
			t.Fatalf("batch %d: reference apply: %v", bi, err)
		}
		for _, m := range singleEngines {
			sum, err := m.Apply(b)
			if err != nil {
				t.Fatalf("batch %d: %s: %v", bi, m.Class(), err)
			}
			singleSums = append(singleSums, fmt.Sprintf("%s:%s", m.Class(), sum))
		}

		if a, b := fmt.Sprint(clusterSums), fmt.Sprint(singleSums); a != b {
			t.Fatalf("batch %d deltas differ:\ncluster: %s\nsingle:  %s", bi, a, b)
		}
		for i := range clusterEngines {
			if a, b := answerOf(t, clusterEngines[i]), answerOf(t, singleEngines[i]); a != b {
				t.Fatalf("batch %d: %s answers differ:\ncluster:\n%s\nsingle:\n%s",
					bi, clusterEngines[i].Class(), a, b)
			}
		}
		if !cg.Equal(sg) || !sg.Equal(cg) {
			t.Fatalf("batch %d: graphs diverged", bi)
		}

		// Mid-stream segment rebalance: move half the shards to the other
		// worker and keep streaming. Placement must not perturb answers.
		if bi == len(batches)/2 {
			for s := 0; s < cg.NumShards(); s += 2 {
				to := 1 - cl.WorkerOf(s)
				if err := cl.MoveShard(s, to); err != nil {
					t.Fatalf("rebalance shard %d: %v", s, err)
				}
			}
			if err := cl.VerifyAll(); err != nil {
				t.Fatalf("replicas diverged after rebalance: %v", err)
			}
		}
	}

	// Distributed state parity: every worker replica must export
	// byte-identical to the coordinator's authoritative segment.
	if err := cl.VerifyAll(); err != nil {
		t.Fatalf("final replica verification: %v", err)
	}
	if cl.RemoteErrors() != 0 {
		t.Fatalf("stream recorded %d remote errors", cl.RemoteErrors())
	}
}

// TestClusterDurableApplyVia pins the durable composition: commits routed
// through Durable.ApplyVia recover to the same bytes as a single-process
// durable run, and the WAL sees nothing from aborted batches.
func TestClusterDurableApplyVia(t *testing.T) {
	g, batches := diffWorkload(t, 777)
	g.SetShards(8)

	dir := t.TempDir()
	cg := g.Clone()
	d, err := incgraph.CreateDurable(dir, cg, incgraph.DurableOptions{Sync: incgraph.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	kwsQ, err := incgraph.RandomKWSQuery(g, 2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := incgraph.NewKWS(cg.Clone(), kwsQ)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(incgraph.MaintainKWS(ix)); err != nil {
		t.Fatal(err)
	}
	links, _, stopWorkers := incgraph.InProcessCluster(2)
	defer stopWorkers()
	cl, err := incgraph.NewCluster(cg, links)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i, b := range batches {
		if _, err := d.ApplyVia(cl, b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	walSeq := d.WALSeq()
	if walSeq != uint64(len(batches)) {
		t.Fatalf("WAL seq %d, want %d", walSeq, len(batches))
	}
	want := answerOf(t, d.Engines()[0])
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover as a fresh process would and require byte-identical answers.
	d2, err := incgraph.OpenDurable(dir, incgraph.DurableOptions{Sync: incgraph.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	ix2, err := incgraph.NewKWS(d2.Graph().Clone(), kwsQ)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Attach(incgraph.MaintainKWS(ix2)); err != nil {
		t.Fatal(err)
	}
	if err := d2.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := answerOf(t, d2.Engines()[0]); got != want {
		t.Fatalf("recovered answers differ from cluster run:\nbefore:\n%s\nafter:\n%s", want, got)
	}
}
