module incgraph

go 1.22
