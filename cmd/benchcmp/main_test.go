package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testGates uses a zero time floor so the tiny fixture timings are gated.
var testGates = gates{timeRatio: 2.5, timeFloor: 0, allocRatio: 1.15, allocSlack: 256}

func parseLines(t *testing.T, lines string) map[string]experiment {
	t.Helper()
	out, err := parse(strings.NewReader(lines), "test")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

const baseJSON = `{"id":"8a","points":["5%","10%"],"series":[{"name":"IncKWS","ns_per_op":[1000,2000],"allocs":[500,900]}]}
{"id":"store","points":["50k"],"series":[{"name":"snap-load","ns_per_op":[5000]}]}
`

func TestCompareClean(t *testing.T) {
	base := parseLines(t, baseJSON)
	cur := parseLines(t, `{"id":"8a","points":["5%","10%"],"series":[{"name":"IncKWS","ns_per_op":[1100,1900],"allocs":[510,880]}]}
{"id":"store","points":["50k"],"series":[{"name":"snap-load","ns_per_op":[7000]}]}
{"id":"cluster","points":["5%"],"series":[{"name":"Cluster2w","ns_per_op":[100],"allocs":[10]}]}
`)
	rows, regressed := compare(base, cur, testGates)
	if regressed {
		t.Fatalf("clean run flagged as regression: %+v", rows)
	}
	var sawNew bool
	for _, r := range rows {
		if r.id == "cluster" && strings.Contains(r.status, "new") {
			sawNew = true
		}
	}
	if !sawNew {
		t.Fatalf("new experiment not reported: %+v", rows)
	}
}

func TestCompareTimeRegression(t *testing.T) {
	base := parseLines(t, baseJSON)
	// Consistent 4x slowdown: past the generous geomean threshold.
	cur := parseLines(t, `{"id":"8a","points":["5%","10%"],"series":[{"name":"IncKWS","ns_per_op":[4000,8000],"allocs":[500,900]}]}
{"id":"store","points":["50k"],"series":[{"name":"snap-load","ns_per_op":[5000]}]}
`)
	_, regressed := compare(base, cur, testGates)
	if !regressed {
		t.Fatal("4x slowdown passed the gate")
	}
	// One noisy point among steady ones must NOT fail the geomean gate.
	cur = parseLines(t, `{"id":"8a","points":["5%","10%"],"series":[{"name":"IncKWS","ns_per_op":[4000,2000],"allocs":[500,900]}]}
{"id":"store","points":["50k"],"series":[{"name":"snap-load","ns_per_op":[5000]}]}
`)
	if _, regressed := compare(base, cur, testGates); regressed {
		t.Fatal("single noisy point failed the geomean gate")
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := parseLines(t, baseJSON)
	// Allocations up 2x with identical wall clock: the strict gate fires.
	cur := parseLines(t, `{"id":"8a","points":["5%","10%"],"series":[{"name":"IncKWS","ns_per_op":[1000,2000],"allocs":[500,1800]}]}
{"id":"store","points":["50k"],"series":[{"name":"snap-load","ns_per_op":[5000]}]}
`)
	rows, regressed := compare(base, cur, testGates)
	if !regressed {
		t.Fatal("2x alloc growth passed the gate")
	}
	found := false
	for _, r := range rows {
		if r.id == "8a" && strings.Contains(r.status, "ALLOC REGRESSION") {
			found = true
		}
	}
	if !found {
		t.Fatalf("alloc regression not named in status: %+v", rows)
	}
	// Within ratio+slack passes: 500*1.15+256 ≈ 831.
	cur = parseLines(t, `{"id":"8a","points":["5%","10%"],"series":[{"name":"IncKWS","ns_per_op":[1000,2000],"allocs":[800,1000]}]}
{"id":"store","points":["50k"],"series":[{"name":"snap-load","ns_per_op":[5000]}]}
`)
	if _, regressed := compare(base, cur, testGates); regressed {
		t.Fatal("allocs within tolerance failed the gate")
	}
	// A baseline without alloc counts (pre-PR 5) skips the alloc gate.
	for _, r := range rows {
		if r.id == "store" && r.allocGated {
			t.Fatal("alloc gate armed without baseline alloc counts")
		}
	}
}

func TestCompareMissingExperimentFails(t *testing.T) {
	base := parseLines(t, baseJSON)
	cur := parseLines(t, `{"id":"8a","points":["5%","10%"],"series":[{"name":"IncKWS","ns_per_op":[1000,2000],"allocs":[500,900]}]}
`)
	rows, regressed := compare(base, cur, testGates)
	if !regressed {
		t.Fatal("dropped experiment passed the gate")
	}
	found := false
	for _, r := range rows {
		if r.id == "store" && strings.Contains(r.status, "missing") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing experiment not reported: %+v", rows)
	}
	// A dropped series inside a surviving experiment also fails.
	cur = parseLines(t, `{"id":"8a","points":["5%","10%"],"series":[{"name":"Renamed","ns_per_op":[1000,2000]}]}
{"id":"store","points":["50k"],"series":[{"name":"snap-load","ns_per_op":[5000]}]}
`)
	if _, regressed := compare(base, cur, testGates); !regressed {
		t.Fatal("dropped series passed the gate")
	}
}

func TestTimeFloorExemptsMicroPoints(t *testing.T) {
	base := parseLines(t, baseJSON)
	// 4x slowdown on ns-scale points: below the 1ms floor the time gate
	// must stay quiet (the alloc gate still covers them).
	cur := parseLines(t, `{"id":"8a","points":["5%","10%"],"series":[{"name":"IncKWS","ns_per_op":[4000,8000],"allocs":[500,900]}]}
{"id":"store","points":["50k"],"series":[{"name":"snap-load","ns_per_op":[20000]}]}
`)
	floored := testGates
	floored.timeFloor = 1e6
	if _, regressed := compare(base, cur, floored); regressed {
		t.Fatal("micro-point slowdown failed the gate despite the time floor")
	}
	// Alloc regressions on the same micro-points still fail.
	cur = parseLines(t, `{"id":"8a","points":["5%","10%"],"series":[{"name":"IncKWS","ns_per_op":[1000,2000],"allocs":[5000,900]}]}
{"id":"store","points":["50k"],"series":[{"name":"snap-load","ns_per_op":[5000]}]}
`)
	if _, regressed := compare(base, cur, floored); !regressed {
		t.Fatal("alloc regression on a micro-point passed the gate")
	}
}

func TestCompareDroppedPointsFail(t *testing.T) {
	base := parseLines(t, baseJSON)
	cur := parseLines(t, `{"id":"8a","points":["5%"],"series":[{"name":"IncKWS","ns_per_op":[1000],"allocs":[500]}]}
{"id":"store","points":["50k"],"series":[{"name":"snap-load","ns_per_op":[5000]}]}
`)
	rows, regressed := compare(base, cur, testGates)
	if !regressed {
		t.Fatal("shrunken point coverage passed the gate")
	}
	found := false
	for _, r := range rows {
		if r.id == "8a" && strings.Contains(r.status, "POINTS DROPPED") {
			found = true
		}
	}
	if !found {
		t.Fatalf("dropped points not named in status: %+v", rows)
	}
}

func TestCompareEmptySeriesAndLostAllocsFail(t *testing.T) {
	base := parseLines(t, baseJSON)
	// A series emptied of every point must fail, not report 'no
	// comparable points' and pass.
	cur := parseLines(t, `{"id":"8a","points":[],"series":[{"name":"IncKWS","ns_per_op":[]}]}
{"id":"store","points":["50k"],"series":[{"name":"snap-load","ns_per_op":[5000]}]}
`)
	rows, regressed := compare(base, cur, testGates)
	if !regressed {
		t.Fatalf("emptied series passed the gate: %+v", rows)
	}
	// A current run that lost its alloc counts (baseline has them) fails
	// rather than silently disarming the strict gate.
	cur = parseLines(t, `{"id":"8a","points":["5%","10%"],"series":[{"name":"IncKWS","ns_per_op":[1000,2000]}]}
{"id":"store","points":["50k"],"series":[{"name":"snap-load","ns_per_op":[5000]}]}
`)
	rows, regressed = compare(base, cur, testGates)
	if !regressed {
		t.Fatal("lost alloc coverage passed the gate")
	}
	found := false
	for _, r := range rows {
		if r.id == "8a" && strings.Contains(r.status, "ALLOC COVERAGE DROPPED") {
			found = true
		}
	}
	if !found {
		t.Fatalf("lost alloc coverage not named in status: %+v", rows)
	}
}

func TestCompareZeroedTimingsFail(t *testing.T) {
	base := parseLines(t, baseJSON)
	// Current run with timings zeroed out (broken emission) must fail the
	// time gate as dropped coverage, not be exempted point by point.
	cur := parseLines(t, `{"id":"8a","points":["5%","10%"],"series":[{"name":"IncKWS","ns_per_op":[0,0],"allocs":[500,900]}]}
{"id":"store","points":["50k"],"series":[{"name":"snap-load","ns_per_op":[5000]}]}
`)
	rows, regressed := compare(base, cur, testGates)
	if !regressed {
		t.Fatalf("zeroed timings passed the gate: %+v", rows)
	}
	found := false
	for _, r := range rows {
		if r.id == "8a" && strings.Contains(r.status, "TIME COVERAGE DROPPED") {
			found = true
		}
	}
	if !found {
		t.Fatalf("zeroed timings not named in status: %+v", rows)
	}
}

func TestClusterOverheadGate(t *testing.T) {
	// Within budget: 2x overhead at every point against a 2.5x limit.
	cur := parseLines(t, `{"id":"cluster","points":["5%","10%"],"series":[{"name":"SingleProc","ns_per_op":[1000,2000]},{"name":"Cluster2w","ns_per_op":[2000,4000]}]}
`)
	r, ok := clusterOverheadGate(cur, 2.5)
	if !ok || r.regressed {
		t.Fatalf("2x overhead failed the 2.5x gate: ok=%v %+v", ok, r)
	}
	if r.timeRatio < 1.99 || r.timeRatio > 2.01 {
		t.Fatalf("geomean overhead %v, want ~2.0", r.timeRatio)
	}
	// Over budget: the pre-pipelining 5.35x world must fail loudly.
	cur = parseLines(t, `{"id":"cluster","points":["5%","10%"],"series":[{"name":"SingleProc","ns_per_op":[1000,2000]},{"name":"Cluster2w","ns_per_op":[5300,10800]}]}
`)
	r, ok = clusterOverheadGate(cur, 2.5)
	if !ok || !r.regressed || !strings.Contains(r.status, "CLUSTER OVERHEAD REGRESSION") {
		t.Fatalf("5.4x overhead passed the 2.5x gate: ok=%v %+v", ok, r)
	}
	// The gate is absolute, not differential: one blown point is absorbed
	// by the geomean the same way the wall-clock gate absorbs noise.
	cur = parseLines(t, `{"id":"cluster","points":["5%","10%"],"series":[{"name":"SingleProc","ns_per_op":[1000,2000]},{"name":"Cluster2w","ns_per_op":[5000,2000]}]}
`)
	if r, _ := clusterOverheadGate(cur, 2.5); r.regressed {
		t.Fatalf("single noisy point failed the geomean overhead gate: %+v", r)
	}
	// No cluster experiment in the run: the gate stays silent (the
	// baseline-coverage check is compare()'s job, not this one's).
	if _, ok := clusterOverheadGate(parseLines(t, baseJSON), 2.5); ok {
		t.Fatal("overhead gate fired without a cluster experiment")
	}
	// Zero limit disables.
	if _, ok := clusterOverheadGate(cur, 0); ok {
		t.Fatal("overhead gate fired with a zero limit")
	}
	// A cluster experiment that lost one of the two series is dropped
	// coverage of this gate, not an exemption.
	cur = parseLines(t, `{"id":"cluster","points":["5%"],"series":[{"name":"Cluster2w","ns_per_op":[2000]}]}
`)
	if r, ok := clusterOverheadGate(cur, 2.5); !ok || !r.regressed {
		t.Fatalf("cluster run without SingleProc passed the overhead gate: ok=%v %+v", ok, r)
	}
}

func TestRenderMarkdown(t *testing.T) {
	base := parseLines(t, baseJSON)
	cur := parseLines(t, baseJSON)
	rows, regressed := compare(base, cur, testGates)
	if regressed {
		t.Fatal("identical runs regressed")
	}
	var sb strings.Builder
	render(&sb, rows, true, 2.5, 1.15)
	out := sb.String()
	for _, want := range []string{"| experiment |", "| 8a | IncKWS |", "1.00x", "ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown output missing %q:\n%s", want, out)
		}
	}
}

// A missing baseline must explain how to record one, not leak a bare
// open(2) error from the middle of a CI log.
func TestMissingBaselineMessageIsActionable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_9.json")
	_, err := load(path)
	if err == nil {
		t.Fatal("loaded a baseline that does not exist")
	}
	msg := describeLoadError("baseline", path, err)
	for _, want := range []string{
		"cannot load baseline",
		path,
		"go run ./cmd/benchmark -json",
		"re-baselining",
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message missing %q:\n%s", want, msg)
		}
	}

	// Unreadable (corrupt) baselines point at regeneration too.
	bad := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = load(bad)
	if err == nil {
		t.Fatal("loaded corrupt JSON")
	}
	if msg := describeLoadError("baseline", bad, err); !strings.Contains(msg, "regenerate") {
		t.Fatalf("corrupt-baseline message not actionable:\n%s", msg)
	}

	// The current-run side stays terse: its fix is rerunning the bench,
	// and the hint would be misleading there.
	if msg := describeLoadError("current", path, err); strings.Contains(msg, "re-baselining") {
		t.Fatalf("current-run message carries the baseline hint:\n%s", msg)
	}
}
