// Command benchcmp is the CI bench-regression gate: it diffs a fresh
// cmd/benchmark -json run against a committed BENCH_*.json baseline and
// fails (exit 1) on regression, printing a comparison table (markdown
// with -md, for $GITHUB_STEP_SUMMARY).
//
// Two signals, two thresholds, because they behave differently on a
// noisy single-core CI runner:
//
//   - Allocation counts are near-deterministic run to run, so they are
//     gated strictly: a point regresses when
//     current > baseline·allocRatio + allocSlack (the slack absorbs the
//     runtime's own incidental allocations around tiny phases).
//     Baselines recorded before allocs existed skip this gate.
//   - Wall clock swings with the runner, so it is gated generously and on
//     the geometric mean of per-point ratios across a series, not on any
//     single point; only a consistent slowdown fails the gate.
//
// Experiments present in the baseline but missing from the fresh run fail
// the gate (a silently dropped benchmark is a regression of coverage);
// new experiments in the fresh run are reported and pass.
//
// A third gate is absolute rather than differential: when the fresh run
// carries the "cluster" experiment, the geometric mean of the per-point
// Cluster2w/SingleProc overhead must stay under -cluster-overhead
// (default 2.5x). This pins the pipelined-commit budget — the distributed
// two-phase apply must cost less than 2.5x the single-process apply on
// the same sweep — against the run's own measurements, so a slow runner
// cannot mask protocol bloat the way it can mask a wall-clock diff.
//
// Usage:
//
//	benchcmp -baseline BENCH_5.json -current fresh.json
//	         [-time-ratio 2.5] [-alloc-ratio 1.15] [-alloc-slack 256]
//	         [-cluster-overhead 2.5] [-md]
//
// # Re-baselining
//
// The baseline is a committed artifact, so an intentional performance
// change (or a new benchmark shape) is recorded by regenerating it, not
// by loosening the gates:
//
//	go run ./cmd/benchmark -json > BENCH_N.json   # on a quiet machine
//	git add BENCH_N.json                          # commit alongside the change
//
// and pointing CI's -baseline at the new file. Record the baseline on
// the same hardware class CI uses where possible; the wall-clock gate is
// generous precisely so a baseline from a faster machine doesn't fail
// every run, but allocation counts must come from the same code revision
// you intend to gate against.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// series mirrors the jsonSeries half of cmd/benchmark's output.
type series struct {
	Name    string    `json:"name"`
	NsPerOp []float64 `json:"ns_per_op"`
	Allocs  []uint64  `json:"allocs"`
}

// experiment mirrors one cmd/benchmark -json line.
type experiment struct {
	ID     string   `json:"id"`
	Points []string `json:"points"`
	Series []series `json:"series"`
}

// row is one (experiment, series) comparison in the report.
type row struct {
	id, name   string
	timeRatio  float64 // geometric mean current/baseline ns_per_op
	allocRatio float64 // worst per-point current/baseline alloc ratio
	allocGated bool    // baseline had alloc counts
	points     int
	status     string
	regressed  bool
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed BENCH_*.json baseline (required)")
		currentPath  = flag.String("current", "", "fresh cmd/benchmark -json output (required)")
		timeRatio    = flag.Float64("time-ratio", 2.5, "fail when a series' geomean wall-clock ratio exceeds this (generous: CI runners are noisy)")
		timeFloor    = flag.Float64("time-floor-ns", 1e6, "exclude points whose baseline is below this from the wall-clock geomean (micro-phases are scheduler noise; their allocs are still gated)")
		allocRatio   = flag.Float64("alloc-ratio", 1.15, "fail when any point's alloc count exceeds baseline*ratio+slack (strict: allocs are near-deterministic)")
		allocSlack   = flag.Int64("alloc-slack", 256, "absolute alloc headroom per point, absorbing runtime noise around tiny phases")
		overhead     = flag.Float64("cluster-overhead", 2.5, "fail when the cluster experiment's Cluster2w/SingleProc geomean exceeds this (0 disables)")
		md           = flag.Bool("md", false, "emit a markdown table (for the CI job summary)")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -baseline and -current are required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, describeLoadError("baseline", *baselinePath, err))
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, describeLoadError("current", *currentPath, err))
		os.Exit(2)
	}
	rows, regressed := compare(base, cur, gates{
		timeRatio:  *timeRatio,
		timeFloor:  *timeFloor,
		allocRatio: *allocRatio,
		allocSlack: *allocSlack,
	})
	if r, ok := clusterOverheadGate(cur, *overhead); ok {
		rows = append(rows, r)
		regressed = regressed || r.regressed
	}
	render(os.Stdout, rows, *md, *timeRatio, *allocRatio)
	if regressed {
		fmt.Fprintln(os.Stderr, "benchcmp: REGRESSION against baseline")
		os.Exit(1)
	}
}

// describeLoadError turns a load failure into an actionable message. A
// missing or unreadable baseline is the common operational mistake (new
// checkout, renamed BENCH_*.json, forgotten re-baseline after adding a
// benchmark), so that case spells out how to record one instead of
// leaking a bare open error from the middle of a CI log.
func describeLoadError(role, path string, err error) string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchcmp: cannot load %s %s: %v", role, path, err)
	if role == "baseline" {
		if os.IsNotExist(err) {
			fmt.Fprintf(&b, "\n\nNo baseline exists at that path. Record one on a quiet machine:\n\n"+
				"\tgo run ./cmd/benchmark -json > %s\n\n"+
				"commit it, and point -baseline at the committed file. See the\n"+
				"re-baselining section in 'go doc ./cmd/benchcmp'.", path)
		} else {
			fmt.Fprintf(&b, "\n\nThe baseline is unreadable. If it is stale or corrupt, regenerate it\n"+
				"(go run ./cmd/benchmark -json > %s) and commit the result; see the\n"+
				"re-baselining section in 'go doc ./cmd/benchcmp'.", path)
		}
	}
	return b.String()
}

// load parses a JSON-lines benchmark file into id-keyed experiments.
func load(path string) (map[string]experiment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f, path)
}

func parse(r io.Reader, name string) (map[string]experiment, error) {
	out := make(map[string]experiment)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e experiment
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, line, err)
		}
		if e.ID == "" {
			return nil, fmt.Errorf("%s:%d: experiment without id", name, line)
		}
		out[e.ID] = e
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no experiments", name)
	}
	return out, nil
}

// gates bundles the regression thresholds.
type gates struct {
	timeRatio  float64
	timeFloor  float64
	allocRatio float64
	allocSlack int64
}

// compare builds the report rows and the overall verdict.
func compare(base, cur map[string]experiment, g gates) ([]row, bool) {
	ids := make([]string, 0, len(base)+len(cur))
	for id := range base {
		ids = append(ids, id)
	}
	for id := range cur {
		if _, ok := base[id]; !ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	var rows []row
	regressed := false
	for _, id := range ids {
		b, inBase := base[id]
		c, inCur := cur[id]
		switch {
		case !inCur:
			rows = append(rows, row{id: id, status: "missing from current run", regressed: true})
			regressed = true
			continue
		case !inBase:
			rows = append(rows, row{id: id, status: "new (no baseline)"})
			continue
		}
		curSeries := make(map[string]series, len(c.Series))
		for _, s := range c.Series {
			curSeries[s.Name] = s
		}
		baseNames := make(map[string]bool, len(b.Series))
		for _, bs := range b.Series {
			baseNames[bs.Name] = true
			cs, ok := curSeries[bs.Name]
			if !ok {
				rows = append(rows, row{id: id, name: bs.Name, status: "series missing from current run", regressed: true})
				regressed = true
				continue
			}
			r := compareSeries(id, bs, cs, g)
			if r.regressed {
				regressed = true
			}
			rows = append(rows, r)
		}
		// Series present only in the current run (renames, additions) get
		// their own row, like new experiments do — so a rename shows up as
		// one missing and one new series, not a silent disappearance.
		for _, cs := range c.Series {
			if !baseNames[cs.Name] {
				rows = append(rows, row{id: id, name: cs.Name, status: "new series (no baseline)"})
			}
		}
	}
	return rows, regressed
}

// compareSeries gates one series: strict allocs per point, generous
// geomean wall clock over the points above the time floor.
func compareSeries(id string, base, cur series, g gates) row {
	r := row{id: id, name: base.Name, timeRatio: math.NaN(), allocRatio: math.NaN()}
	n := len(base.NsPerOp)
	if len(cur.NsPerOp) < n {
		n = len(cur.NsPerOp)
	}
	r.points = n
	var statuses []string
	if len(cur.NsPerOp) < len(base.NsPerOp) {
		// Fewer points than the baseline is dropped coverage, the same
		// regression class as a missing series — including dropping every
		// point.
		statuses = append(statuses, fmt.Sprintf("POINTS DROPPED (%d vs %d)", len(cur.NsPerOp), len(base.NsPerOp)))
		r.regressed = true
	} else if len(cur.NsPerOp) > len(base.NsPerOp) {
		statuses = append(statuses, fmt.Sprintf("shape grew (%d vs %d points)", len(cur.NsPerOp), len(base.NsPerOp)))
	}
	if n == 0 {
		if len(statuses) == 0 {
			statuses = append(statuses, "no comparable points")
		}
		r.status = strings.Join(statuses, "; ")
		return r
	}
	// Wall clock: geometric mean of per-point ratios over points whose
	// baseline clears the floor — micro-phases measure the scheduler, not
	// the code, and their real signal (allocs) is gated below anyway.
	logSum, counted := 0.0, 0
	for i := 0; i < n; i++ {
		if base.NsPerOp[i] < g.timeFloor || base.NsPerOp[i] <= 0 {
			continue
		}
		if cur.NsPerOp[i] <= 0 {
			// A gated point whose fresh timing vanished is dropped
			// coverage of the wall-clock signal, not an exemption.
			statuses = append(statuses, fmt.Sprintf("TIME COVERAGE DROPPED (point %d reports %v ns)", i, cur.NsPerOp[i]))
			r.regressed = true
			break
		}
		logSum += math.Log(cur.NsPerOp[i] / base.NsPerOp[i])
		counted++
	}
	if counted > 0 {
		r.timeRatio = math.Exp(logSum / float64(counted))
		if r.timeRatio > g.timeRatio {
			statuses = append(statuses, fmt.Sprintf("TIME REGRESSION (%.2fx > %.2fx)", r.timeRatio, g.timeRatio))
			r.regressed = true
		}
	}
	// Allocations: every point individually, when the baseline has them.
	// A current run that LOST its alloc counts while the baseline has them
	// is dropped coverage of the gate's strictest signal — fail, don't
	// silently disarm (only a pre-alloc baseline legitimately skips).
	if len(base.Allocs) >= n && len(cur.Allocs) < n {
		statuses = append(statuses, fmt.Sprintf("ALLOC COVERAGE DROPPED (%d of %d points)", len(cur.Allocs), n))
		r.regressed = true
	}
	if len(base.Allocs) >= n && len(cur.Allocs) >= n {
		r.allocGated = true
		worst := 0.0
		for i := 0; i < n; i++ {
			limit := float64(base.Allocs[i])*g.allocRatio + float64(g.allocSlack)
			ratio := 1.0
			if base.Allocs[i] > 0 {
				ratio = float64(cur.Allocs[i]) / float64(base.Allocs[i])
			}
			if ratio > worst {
				worst = ratio
			}
			if float64(cur.Allocs[i]) > limit {
				statuses = append(statuses, fmt.Sprintf("ALLOC REGRESSION at point %d (%d > %d·%.2f+%d)",
					i, cur.Allocs[i], base.Allocs[i], g.allocRatio, g.allocSlack))
				r.regressed = true
				break
			}
		}
		r.allocRatio = worst
	}
	if len(statuses) == 0 {
		statuses = append(statuses, "ok")
	}
	r.status = strings.Join(statuses, "; ")
	return r
}

// clusterOverheadGate checks the absolute distributed-apply budget: the
// geometric mean over the fresh run's cluster sweep of Cluster2w's cost
// relative to SingleProc's must stay under limit. Both series come from
// the SAME run on the same host, so the ratio is immune to runner-speed
// drift; it moves only when the protocol itself gets cheaper or dearer.
// Returns ok=false when the gate has nothing to say (disabled, or the run
// didn't include the cluster experiment); a cluster experiment that LOST
// one of the two series fails — that's the gate's coverage disappearing.
func clusterOverheadGate(cur map[string]experiment, limit float64) (row, bool) {
	if limit <= 0 {
		return row{}, false
	}
	c, ok := cur["cluster"]
	if !ok {
		return row{}, false
	}
	r := row{id: "cluster", name: "Cluster2w/SingleProc", timeRatio: math.NaN(), allocRatio: math.NaN()}
	var single, dist *series
	for i := range c.Series {
		switch c.Series[i].Name {
		case "SingleProc":
			single = &c.Series[i]
		case "Cluster2w":
			dist = &c.Series[i]
		}
	}
	if single == nil || dist == nil {
		r.status = "OVERHEAD GATE LOST ITS SERIES (need SingleProc and Cluster2w)"
		r.regressed = true
		return r, true
	}
	logSum, counted := 0.0, 0
	for i := 0; i < len(single.NsPerOp) && i < len(dist.NsPerOp); i++ {
		if single.NsPerOp[i] <= 0 || dist.NsPerOp[i] <= 0 {
			continue
		}
		logSum += math.Log(dist.NsPerOp[i] / single.NsPerOp[i])
		counted++
	}
	if counted == 0 {
		r.status = "OVERHEAD GATE HAS NO COMPARABLE POINTS"
		r.regressed = true
		return r, true
	}
	r.points = counted
	r.timeRatio = math.Exp(logSum / float64(counted))
	if r.timeRatio > limit {
		r.status = fmt.Sprintf("CLUSTER OVERHEAD REGRESSION (%.2fx > %.2fx geomean)", r.timeRatio, limit)
		r.regressed = true
	} else {
		r.status = fmt.Sprintf("overhead ok (%.2fx ≤ %.2fx geomean)", r.timeRatio, limit)
	}
	return r, true
}

// render prints the comparison table.
func render(w io.Writer, rows []row, md bool, timeRatio, allocRatio float64) {
	fmtRatio := func(v float64, gated bool) string {
		if math.IsNaN(v) {
			if gated {
				return "—"
			}
			return "n/a"
		}
		return fmt.Sprintf("%.2fx", v)
	}
	if md {
		fmt.Fprintf(w, "### Bench regression gate (time ≤ %.2fx geomean, allocs ≤ %.2fx/point)\n\n", timeRatio, allocRatio)
		fmt.Fprintln(w, "| experiment | series | time (geomean) | allocs (worst) | status |")
		fmt.Fprintln(w, "|---|---|---|---|---|")
		for _, r := range rows {
			fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n",
				r.id, r.name, fmtRatio(r.timeRatio, true), fmtRatio(r.allocRatio, r.allocGated), r.status)
		}
		return
	}
	tw := 0
	for _, r := range rows {
		if l := len(r.id + "/" + r.name); l > tw {
			tw = l
		}
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-*s  time %-7s  allocs %-7s  %s\n",
			tw, r.id+"/"+r.name, fmtRatio(r.timeRatio, true), fmtRatio(r.allocRatio, r.allocGated), r.status)
	}
}
