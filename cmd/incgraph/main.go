// Command incgraph evaluates a query on a graph file, optionally applies an
// update file incrementally, and prints the answer and the delta.
//
// Graph files use the library text format ("n <id> <label>", "e <v> <w>")
// or the binary snapshot format (.snap, as written by cmd/datagen,
// incgraph.WriteSnapshotFile, or an incgraphd checkpoint); the format is
// sniffed, so a .snap file works anywhere a text graph does. Update files
// use one update per line: "+ <v> <w> [vlabel wlabel]" for an insertion,
// "- <v> <w>" for a deletion.
//
// Usage:
//
//	incgraph -graph g.txt -class rpq -query "a.b*.c" [-updates du.txt]
//	incgraph -graph g.snap -class kws -query "author,venue" -bound 2
//	incgraph -graph g.txt -class scc [-shards 8] [-workers 8]
//	incgraph -graph g.txt -class iso -pattern p.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"incgraph"
)

func main() {
	graphPath := flag.String("graph", "", "graph file (required)")
	class := flag.String("class", "", "query class: rpq, kws, scc, iso (required)")
	query := flag.String("query", "", "rpq expression or comma-separated kws keywords")
	bound := flag.Int("bound", 2, "kws distance bound b")
	patternPath := flag.String("pattern", "", "iso pattern graph file")
	updatesPath := flag.String("updates", "", "optional update file applied incrementally")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = all cores, 1 = sequential)")
	shards := flag.Int("shards", 0, "graph shard count, rounded to a power of two (0 = default, 1 = unsharded)")
	verbose := flag.Bool("v", false, "print full answers, not just counts")
	flag.Parse()

	if err := run(*graphPath, *class, *query, *bound, *patternPath, *updatesPath, *workers, *shards, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "incgraph: %v\n", err)
		os.Exit(1)
	}
}

func run(graphPath, class, query string, bound int, patternPath, updatesPath string, workers, shards int, verbose bool) error {
	if graphPath == "" || class == "" {
		return fmt.Errorf("-graph and -class are required")
	}
	g, err := loadGraph(graphPath)
	if err != nil {
		return err
	}
	g.SetParallelism(workers)
	if shards != 0 {
		g.SetShards(shards)
	}
	fmt.Printf("graph: %d nodes, %d edges (%d workers, %d shards)\n",
		g.NumNodes(), g.NumEdges(), g.Parallelism(), g.NumShards())

	var batch incgraph.Batch
	if updatesPath != "" {
		batch, err = loadUpdates(updatesPath)
		if err != nil {
			return err
		}
	}

	switch strings.ToLower(class) {
	case "rpq":
		if query == "" {
			return fmt.Errorf("rpq needs -query")
		}
		e, err := incgraph.NewRPQ(g, query)
		if err != nil {
			return err
		}
		fmt.Printf("rpq %q: %d matches\n", query, e.NumMatches())
		if verbose {
			for _, p := range e.Matches() {
				fmt.Printf("  (%d,%d)\n", p.Src, p.Dst)
			}
		}
		if batch != nil {
			d, err := e.Apply(batch)
			if err != nil {
				return err
			}
			fmt.Printf("after %d updates: %d matches (+%d −%d)\n",
				len(batch), e.NumMatches(), len(d.Added), len(d.Removed))
		}
	case "kws":
		if query == "" {
			return fmt.Errorf("kws needs -query (comma-separated keywords)")
		}
		q := incgraph.KWSQuery{Keywords: strings.Split(query, ","), Bound: bound}
		ix, err := incgraph.NewKWS(g, q)
		if err != nil {
			return err
		}
		fmt.Printf("kws %v b=%d: %d match roots\n", q.Keywords, q.Bound, ix.NumMatches())
		if verbose {
			for _, r := range ix.MatchRoots() {
				m, _ := ix.MatchAt(r)
				fmt.Printf("  root %d dists %v\n", r, m.Dists)
			}
		}
		if batch != nil {
			d, err := ix.Apply(batch)
			if err != nil {
				return err
			}
			fmt.Printf("after %d updates: %d roots (+%d −%d ~%d)\n",
				len(batch), ix.NumMatches(), len(d.Added), len(d.Removed), len(d.Updated))
		}
	case "scc":
		s := incgraph.NewSCC(g)
		fmt.Printf("scc: %d components\n", s.NumComponents())
		if verbose {
			for _, c := range s.ComponentsSorted() {
				if len(c) > 1 {
					fmt.Printf("  %v\n", c)
				}
			}
		}
		if batch != nil {
			d, err := s.Apply(batch)
			if err != nil {
				return err
			}
			fmt.Printf("after %d updates: %d components (+%d −%d)\n",
				len(batch), s.NumComponents(), len(d.Added), len(d.Removed))
		}
	case "iso":
		if patternPath == "" {
			return fmt.Errorf("iso needs -pattern")
		}
		pg, err := loadGraph(patternPath)
		if err != nil {
			return err
		}
		p, err := incgraph.NewPattern(pg)
		if err != nil {
			return err
		}
		ix := incgraph.NewISO(g, p)
		fmt.Printf("iso pattern (%d nodes, diameter %d): %d matches\n",
			len(p.Nodes()), p.Diameter(), ix.NumMatches())
		if verbose {
			for _, m := range ix.Matches() {
				fmt.Printf("  %v\n", m)
			}
		}
		if batch != nil {
			d, err := ix.Apply(batch)
			if err != nil {
				return err
			}
			fmt.Printf("after %d updates: %d matches (+%d −%d)\n",
				len(batch), ix.NumMatches(), len(d.Added), len(d.Removed))
		}
	default:
		return fmt.Errorf("unknown class %q", class)
	}
	return nil
}

// loadGraph accepts both graph formats: binary snapshots load via the
// parallel per-shard path, anything else parses as text.
func loadGraph(path string) (*incgraph.Graph, error) {
	return incgraph.LoadGraphFile(path)
}

func loadUpdates(path string) (incgraph.Batch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var batch incgraph.Batch
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("%s:%d: want '+|- v w [vlabel wlabel]'", path, line)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		w, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		switch fields[0] {
		case "+":
			vl, wl := "", ""
			if len(fields) > 3 {
				vl = fields[3]
			}
			if len(fields) > 4 {
				wl = fields[4]
			}
			batch = append(batch, incgraph.InsNew(incgraph.NodeID(v), incgraph.NodeID(w), vl, wl))
		case "-":
			batch = append(batch, incgraph.Del(incgraph.NodeID(v), incgraph.NodeID(w)))
		default:
			return nil, fmt.Errorf("%s:%d: unknown op %q", path, line, fields[0])
		}
	}
	return batch, sc.Err()
}
