package main

// Disk-degradation drills for the serving layer: the -disk-fault spec
// parser, and the full retrying → read-only → probe → healed cycle of
// doc.go's disk column, driven end-to-end over the line protocol against
// an in-process server whose store runs on a seeded FaultFS.

import (
	"strings"
	"testing"
	"time"

	"incgraph"
)

func TestParseDiskFault(t *testing.T) {
	ffs, err := parseDiskFault("seed=7;op=sync,path=wal,index=2,count=3,kind=syncfail;op=write,keep=10,prob=0.5,kind=enospc")
	if err != nil {
		t.Fatal(err)
	}
	if ffs.Seed != 7 {
		t.Fatalf("seed = %d, want 7", ffs.Seed)
	}
	if len(ffs.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(ffs.Rules))
	}
	r0, r1 := ffs.Rules[0], ffs.Rules[1]
	if r0.Op != "sync" || r0.Path != "wal" || r0.Index != 2 || r0.Count != 3 || r0.Kind != incgraph.FaultSyncFail {
		t.Fatalf("rule 0 = %+v", r0)
	}
	if r1.Op != "write" || r1.Keep != 10 || r1.Prob != 0.5 || r1.Kind != incgraph.FaultENOSPC {
		t.Fatalf("rule 1 = %+v", r1)
	}
	if r1.Index != -1 {
		t.Fatalf("rule 1 index = %d, want -1 (every match) by default", r1.Index)
	}

	kinds := map[string]incgraph.FaultKind{
		"eio": incgraph.FaultEIO, "enospc": incgraph.FaultENOSPC,
		"short": incgraph.FaultShortWrite, "shortwrite": incgraph.FaultShortWrite,
		"torn": incgraph.FaultTornWrite, "tornwrite": incgraph.FaultTornWrite,
		"syncfail": incgraph.FaultSyncFail, "synclie": incgraph.FaultSyncLie,
		"crash": incgraph.FaultCrash, "POWERFAIL": incgraph.FaultPowerFail,
	}
	for name, want := range kinds {
		got, err := parseFaultKind(name)
		if err != nil || got != want {
			t.Fatalf("parseFaultKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}

	for _, bad := range []string{
		"",                     // no rules
		"seed=7",               // seed alone arms nothing
		"seed=x;op=sync",       // unparsable seed
		"op=sync,kind=bogus",   // unknown kind
		"op=sync,volume=11",    // unknown key
		"nonsense",             // not key=value
		"op=sync,index=twelve", // unparsable int
		"op=write,prob=lots",   // unparsable float
	} {
		if _, err := parseDiskFault(bad); err == nil {
			t.Fatalf("parseDiskFault(%q) accepted", bad)
		}
	}
}

// diskTestServer is testServer over a store running on the given FaultFS,
// with the disk-degradation knobs tightened for test speed.
func diskTestServer(t *testing.T, ffs *incgraph.FaultFS) (*server, string) {
	t.Helper()
	g := incgraph.SyntheticGraph(incgraph.GraphSpec{
		Nodes: 120, Edges: 600, Labels: 4, GiantSCCFrac: 0.5, Seed: 9,
	})
	d, err := incgraph.CreateDurable(t.TempDir(), g, incgraph.DurableOptions{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(incgraph.MaintainSCC(incgraph.NewSCC(g.Clone()))); err != nil {
		t.Fatal(err)
	}
	srv := newServer(d, nil, 0, limits{})
	srv.diskBackoff = time.Millisecond
	srv.diskProbeEvery = 10 * time.Millisecond
	addr := pickAddr(t)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- srv.serve(addr, stop) }()
	if err := waitForAddr(addr, 10*time.Second); err != nil {
		t.Fatalf("test server on %s never came up: %v", addr, err)
	}
	t.Cleanup(func() {
		close(stop)
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, addr
}

// TestDiskDegradationReadOnlyCycle pins the daemon's disk contract under
// a burst of injected fsync failures: the commit is retried, the retries
// exhaust, the daemon flips to advertised read-only mode — commits shed
// with an explicit reply, reads keep answering, health says so — and
// when the disk recovers the probe flips it back and the same staged
// batch commits. WAL sync #0 is store creation, so the per-index rules
// start at 1: the fault window opens only once the daemon is serving.
func TestDiskDegradationReadOnlyCycle(t *testing.T) {
	rules := make([]incgraph.FSRule, 6)
	for i := range rules {
		rules[i] = incgraph.FSRule{Op: "sync", Path: "wal", Index: i + 1, Kind: incgraph.FaultSyncFail}
	}
	srv, addr := diskTestServer(t, incgraph.NewFaultFS(7, rules...))

	c := dialLine(t, addr)
	defer c.close()
	c.cmd(t, "+ 9000 9001 z z")
	reply := c.raw(t, "commit")
	if !strings.HasPrefix(reply, "err disk: degraded; read-only") {
		t.Fatalf("commit under dead disk replied %q, want disk-degraded shed", reply)
	}
	if got := srv.diskState.Load(); got != diskReadOnly {
		t.Fatalf("disk state = %s, want read-only", diskName(got))
	}
	if health := c.cmd(t, "health"); !strings.Contains(health, "disk=read-only") {
		t.Fatalf("health = %q, want disk=read-only advertised", health)
	}

	// Reads answer while commits are shed: the degradation is partial.
	c.cmd(t, "query scc")
	c.answer(t, "scc")

	// The probe heals the disk once the fault window closes; no operator,
	// no restart.
	waitFor(t, "disk recovery", func() bool {
		return srv.diskState.Load() == diskHealthy
	})
	if health := c.cmd(t, "health"); !strings.Contains(health, "disk=healthy") {
		t.Fatalf("health after heal = %q, want disk=healthy", health)
	}

	// The shed kept the staged batch: the same connection commits it now
	// (possibly through a few more retries as the tail rules burn off).
	reply = c.cmd(t, "commit")
	if !strings.Contains(reply, "applied 1 ") {
		t.Fatalf("post-heal commit replied %q, want the staged batch applied", reply)
	}

	if enters, exits := srv.diskROEnters.Load(), srv.diskROExits.Load(); enters != 1 || exits != 1 {
		t.Fatalf("read-only transitions = %d in / %d out, want exactly one cycle", enters, exits)
	}
	if shed := srv.diskShed.Load(); shed != 1 {
		t.Fatalf("disk_shed = %d, want 1", shed)
	}
	stat := c.cmd(t, "stat")
	for _, want := range []string{"disk=healthy", "disk_ro_enters=1", "disk_ro_exits=1", "disk_shed=1"} {
		if !strings.Contains(stat, want) {
			t.Fatalf("stat = %q, missing %q", stat, want)
		}
	}
}

// TestDiskFaultTransientRetryStaysWritable: a single failed fsync never
// escalates to read-only — the capped-backoff retry absorbs it and the
// commit is acknowledged, with the retry surfaced in stat.
func TestDiskFaultTransientRetryStaysWritable(t *testing.T) {
	srv, addr := diskTestServer(t, incgraph.NewFaultFS(7,
		incgraph.FSRule{Op: "sync", Path: "wal", Index: 1, Kind: incgraph.FaultSyncFail}))

	c := dialLine(t, addr)
	defer c.close()
	c.cmd(t, "+ 9000 9001 z z")
	reply := c.cmd(t, "commit")
	if !strings.Contains(reply, "applied 1 ") {
		t.Fatalf("commit replied %q, want success through the retry", reply)
	}
	if got := srv.diskState.Load(); got != diskHealthy {
		t.Fatalf("disk state = %s, want healthy (one flake is not degradation)", diskName(got))
	}
	if srv.diskRetries.Load() == 0 {
		t.Fatal("retry counter never moved; the fault missed")
	}
	if srv.diskROEnters.Load() != 0 {
		t.Fatal("a single transient fsync failure escalated to read-only")
	}
}
