package main

// Overload-protection tests for the serving layer, run against in-process
// servers (package main constructs them directly, so limits are exact and
// counters are inspectable). The contract under test is the degradation
// matrix of doc.go "Overload & admission control": every refusal is an
// explicit reply, every drop is a counter, and misbehaving clients never
// degrade the healthy ones past a small constant factor.

import (
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"incgraph"
)

// testServer starts an in-process server with the given limits over a
// fresh single-shard-topology durable store (SCC standing query attached,
// so query/answer have a class to hit). Cleanup stops the serve loop.
func testServer(t *testing.T, lim limits) (*server, string) {
	t.Helper()
	g := incgraph.SyntheticGraph(incgraph.GraphSpec{
		Nodes: 120, Edges: 600, Labels: 4, GiantSCCFrac: 0.5, Seed: 9,
	})
	d, err := incgraph.CreateDurable(t.TempDir(), g, incgraph.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(incgraph.MaintainSCC(incgraph.NewSCC(g.Clone()))); err != nil {
		t.Fatal(err)
	}
	srv := newServer(d, nil, 0, lim)
	addr := pickAddr(t)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- srv.serve(addr, stop) }()
	if err := waitForAddr(addr, 10*time.Second); err != nil {
		t.Fatalf("test server on %s never came up: %v", addr, err)
	}
	t.Cleanup(func() {
		close(stop)
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, addr
}

func TestConnCapShedsWithExplicitReply(t *testing.T) {
	srv, addr := testServer(t, limits{maxConns: 2})
	c1 := dialLine(t, addr)
	defer c1.close()
	c1.cmd(t, "health") // round trip ⇒ the connection is tracked
	c2 := dialLine(t, addr)
	defer c2.close()
	c2.cmd(t, "health")

	c3 := dialLine(t, addr)
	defer c3.close()
	reply, err := c3.r.ReadString('\n')
	if err != nil {
		t.Fatalf("shed connection: want an explicit overload reply, got %v", err)
	}
	if !strings.Contains(reply, "err overloaded: connection limit 2") {
		t.Fatalf("shed reply = %q, want connection-limit overload error", reply)
	}
	if _, err := c3.r.ReadString('\n'); err != io.EOF {
		t.Fatalf("shed connection stayed open: %v", err)
	}
	if got := srv.connsShed.Load(); got != 1 {
		t.Fatalf("conns_shed = %d, want 1", got)
	}

	// Capacity freed ⇒ new connections are served again.
	c1.cmd(t, "quit")
	c1.close()
	waitFor(t, "conn slot freed", func() bool { return srv.nconns.Load() < 2 })
	c4 := dialLine(t, addr)
	defer c4.close()
	c4.cmd(t, "health")
}

func TestStagedCapRefusesWithoutCorruptingBatch(t *testing.T) {
	srv, addr := testServer(t, limits{maxStaged: 3})
	c := dialLine(t, addr)
	defer c.close()
	for i := 0; i < 3; i++ {
		c.cmd(t, fmt.Sprintf("+ %d %d a a", 9000+2*i, 9001+2*i))
	}
	reply := c.raw(t, "+ 9100 9101 a a")
	if !strings.Contains(reply, "err staged: limit 3") {
		t.Fatalf("over-cap stage reply = %q, want staged-limit error", reply)
	}
	if got := srv.stagedShed.Load(); got != 1 {
		t.Fatalf("staged_shed = %d, want 1", got)
	}
	// The refused update is not in the batch: exactly the 3 staged apply.
	reply = c.cmd(t, "commit")
	if !strings.Contains(reply, "ok applied 3 ") {
		t.Fatalf("commit reply = %q, want 3 applied", reply)
	}
}

func TestOversizedLineRepliedBeforeCut(t *testing.T) {
	srv, addr := testServer(t, limits{})
	c := dialLine(t, addr)
	defer c.close()
	c.cmd(t, "health")

	// One line past the scanner cap, no newline needed: the scanner
	// refuses once the buffer fills.
	junk := make([]byte, 64<<10)
	for i := range junk {
		junk[i] = 'a'
	}
	for sent := 0; sent <= maxLineBytes; sent += len(junk) {
		if _, err := c.conn.Write(junk); err != nil {
			t.Fatalf("send oversized line: %v", err)
		}
	}
	reply, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("oversized line: want an explicit reply before the cut, got %v", err)
	}
	if !strings.Contains(reply, "err proto: line too long") {
		t.Fatalf("oversized-line reply = %q, want 'err line too long'", reply)
	}
	// EOF or RST (the server closes with our junk still unread), never
	// another protocol line: the stream is unresynchronizable.
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection survived an unresynchronizable stream")
	}
	if got := srv.linesTooLong.Load(); got != 1 {
		t.Fatalf("lines_too_long = %d, want 1", got)
	}
	// And the counter is operator-visible.
	c2 := dialLine(t, addr)
	defer c2.close()
	if stat := c2.cmd(t, "stat"); !strings.Contains(stat, "lines_too_long=1") {
		t.Fatalf("stat %q missing lines_too_long=1", stat)
	}
}

func TestCommitGateShedsWhenQueueFull(t *testing.T) {
	srv, addr := testServer(t, limits{commitSlots: 1})
	// Wedge the durable half of commits: the gate's single slot will be
	// held by the first committer, and with a zero-length queue the second
	// is shed immediately with an explicit reply.
	srv.commitMu.Lock()
	unwedge := sync.OnceFunc(srv.commitMu.Unlock)
	defer unwedge()

	c1 := dialLine(t, addr)
	defer c1.close()
	c1.cmd(t, "+ 9200 9201 a a")
	if _, err := fmt.Fprintln(c1.conn, "commit"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first commit admitted", func() bool {
		admitted, _, _ := srv.commitGate.stats()
		return admitted == 1
	})

	c2 := dialLine(t, addr)
	defer c2.close()
	c2.cmd(t, "+ 9300 9301 a a")
	reply := c2.raw(t, "commit")
	if !strings.Contains(reply, "err overloaded: commit queue full") {
		t.Fatalf("gated commit reply = %q, want queue-full overload error", reply)
	}
	_, shed, _ := srv.commitGate.stats()
	if shed != 1 {
		t.Fatalf("commit_shed = %d, want 1", shed)
	}

	// Reads answer while every commit is wedged: the stalled "disk" holds
	// commitMu, never the read lock.
	start := time.Now()
	c2.cmd(t, "query scc")
	c2.cmd(t, "stat")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("reads took %v behind a wedged commit path", elapsed)
	}

	unwedge()
	reply, err := c1.r.ReadString('\n')
	if err != nil {
		t.Fatalf("wedged commit after release: %v", err)
	}
	if !strings.Contains(reply, "ok applied 1 ") {
		t.Fatalf("wedged commit reply = %q, want success after release", reply)
	}
	// The retry hint is honest: a shed committer succeeds once load drops.
	c2.cmd(t, "commit")
}

// TestSlowLorisCut drives a byte-at-a-time client against a primary and a
// standby: the per-line deadline must cut it, the connection count must
// return to zero, and concurrent healthy clients' query latency must stay
// within 2x of their unloaded baseline (plus scheduler slack).
func TestSlowLorisCut(t *testing.T) {
	lim := limits{idle: 400 * time.Millisecond, opTimeout: 5 * time.Second}
	for _, role := range []string{rolePrimary, roleStandby} {
		t.Run(role, func(t *testing.T) {
			srv, addr := testServer(t, lim)
			if role == roleStandby {
				srv.role = roleStandby
				srv.tail.Store(tailDegraded) // serving reads, primary gone
			}

			// Unloaded baseline: one healthy client, cache-hit queries.
			h := dialLine(t, addr)
			baseline := queryP99(t, h, 50)

			// The attack: three slow-loris connections trickling one byte
			// per 50ms, never completing a line.
			var wg sync.WaitGroup
			for i := 0; i < 3; i++ {
				conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				defer conn.Close()
				wg.Add(1)
				go func(conn net.Conn) {
					defer wg.Done()
					for {
						if _, err := conn.Write([]byte("x")); err != nil {
							return // cut by the server
						}
						time.Sleep(50 * time.Millisecond)
					}
				}(conn)
			}

			// Healthy client keeps its service level during the attack.
			during := queryP99(t, h, 50)
			if floor := 100 * time.Millisecond; during > 2*baseline && during > floor {
				t.Fatalf("healthy p99 %v under attack, baseline %v: degraded past 2x", during, baseline)
			}

			// Hang the healthy client up cleanly before the deadline can
			// cut it too, then require every loris dropped and counted and
			// the connection count drained to zero.
			h.cmd(t, "quit")
			h.close()
			wg.Wait()
			waitFor(t, "connection count drains to zero", func() bool { return srv.nconns.Load() == 0 })
			if got := srv.idleDrops.Load(); got != 3 {
				t.Fatalf("idle_drops = %d, want 3", got)
			}
		})
	}
}

// queryP99 runs n cache-hit queries and returns the p99 round-trip time.
func queryP99(t *testing.T, c *lineClient, n int) time.Duration {
	t.Helper()
	lat := make([]time.Duration, n)
	for i := range lat {
		start := time.Now()
		c.cmd(t, "query scc")
		lat[i] = time.Since(start)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[n*99/100]
}

// waitFor polls cond for up to 10s — state transitions driven by server
// goroutines (deadline cuts, connection teardown) land asynchronously.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
