package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"incgraph"
)

// runStandby is the "incgraphd standby" subcommand: a warm replica that
// tails a primary's hub. The handshake snapshot seeds a fresh durable
// store; every fed record then runs the normal durable apply — WAL
// append, graph mutation, engine maintenance — so the standby is itself
// crash-safe and its engines serve the same answers the primary's do.
//
// The standby serves the read side of the line protocol the whole time
// (query/answer/stat/health); commits are rejected until "promote" flips
// it into a primary — cutting the tail, and attaching a coordinator at
// the deposed primary's term+1 over the -cluster workers (fencing the
// old coordinator's sessions). When the primary dies the tail ends with
// a lease expiry or a severed connection; the standby keeps serving
// reads from its last durable generation and waits for the operator's
// promote. A tail that ends because the replica itself diverged (an
// apply error against a live primary) flips reads to redirect instead —
// a stale replica must not answer.
func runStandby(args []string) error {
	fs := flag.NewFlagSet("standby", flag.ExitOnError)
	var (
		primary   = fs.String("primary", "", "primary hub address to tail (required)")
		storeDir  = fs.String("store", "", "replica store directory (required; must be fresh — the handshake snapshot seeds it)")
		addr      = fs.String("addr", ":7422", "TCP listen address for the read-only line protocol")
		kwsQuery  = fs.String("kws", "", "standing KWS query: comma-separated keywords")
		bound     = fs.Int("bound", 2, "KWS distance bound b")
		rpqQuery  = fs.String("rpq", "", "standing RPQ query expression")
		isoPath   = fs.String("iso", "", "standing ISO pattern graph file")
		scc       = fs.Bool("scc", false, "maintain strongly connected components")
		workers   = fs.Int("workers", 0, "engine worker pool size (0 = all cores)")
		fsync     = fs.String("fsync", "always", "WAL fsync policy: always|none")
		ckptBytes = fs.Int64("checkpoint-bytes", 64<<20, "auto-checkpoint when the WAL exceeds this size (0 = manual only)")
		ttl       = fs.Duration("ttl", 2*time.Second, "primary lease TTL (a small multiple of the hub's heartbeat)")
		cluster   = fs.String("cluster", "", "comma-separated shard-worker addresses a promote attaches at term+1")
		repl      = fs.String("repl", "quorum", "log-shipping policy after promote: off|async|quorum")
	)
	lim := limitFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *primary == "" {
		return fmt.Errorf("-primary is required")
	}
	if *storeDir == "" {
		return fmt.Errorf("-store is required")
	}
	if incgraph.DurableExists(*storeDir) {
		return fmt.Errorf("-store %s already holds a durable store; a standby seeds a fresh one from the primary's snapshot", *storeDir)
	}
	sync, err := parseSync(*fsync)
	if err != nil {
		return err
	}
	replPolicy, err := parseRepl(*repl)
	if err != nil {
		return err
	}
	cfg := config{
		kwsQuery: *kwsQuery, bound: *bound, rpqQuery: *rpqQuery,
		isoPath: *isoPath, scc: *scc,
	}

	conn, err := net.DialTimeout("tcp", *primary, 10*time.Second)
	if err != nil {
		return fmt.Errorf("dial primary hub %s: %w", *primary, err)
	}
	defer conn.Close()

	// The tail's Load callback builds the whole serving state: decode the
	// snapshot, seed the store, attach engines, recover (a no-op replay on
	// a fresh store), and construct the server the listener below serves.
	// The hub guarantees Load completes before the first fed record, and
	// the feed applies strictly after loaded is signaled.
	var srv *server
	loaded := make(chan struct{})
	st := incgraph.NewClusterStandby(incgraph.ClusterStandbyOptions{
		TTL: *ttl,
		Load: func(term, seq, gen uint64, snap []byte) error {
			g, err := incgraph.DecodeSnapshot(snap)
			if err != nil {
				return err
			}
			d, err := incgraph.CreateDurable(*storeDir, g, incgraph.DurableOptions{Sync: sync})
			if err != nil {
				return err
			}
			if err := attachEngines(d, cfg); err != nil {
				return err
			}
			if err := d.Recover(); err != nil {
				return err
			}
			d.Graph().SetParallelism(*workers)
			srv = newServer(d, nil, *ckptBytes, *lim)
			srv.role = roleStandby
			srv.primaryAddr = *primary
			srv.workerAddrs = splitAddrs(*cluster)
			srv.repl = replPolicy
			srv.tailConn = conn
			srv.tail.Store(tailLive)
			log.Printf("seeded from %s: term %d, seq %d, gen %d, %d nodes, %d edges",
				*primary, term, seq, gen, g.NumNodes(), g.NumEdges())
			close(loaded)
			return nil
		},
		Apply: func(seq, postGen uint64, b incgraph.Batch) error {
			// commitMu orders the feed against the checkpoint verb and a
			// racing promote (which also takes it), and keeps the WAL fsync
			// outside the read lock so replica reads never stall on disk.
			srv.commitMu.Lock()
			defer srv.commitMu.Unlock()
			srv.mu.RLock()
			promoted := srv.role != roleStandby
			srv.mu.RUnlock()
			if promoted {
				// Promoted between the hub's push and this apply: the
				// replica is authoritative now, the old feed is history.
				return fmt.Errorf("promoted; feed rejected")
			}
			// Commit with the default log step (validate + append) and the
			// read lock around the in-memory apply; commitMu above covers
			// the whole call, so the WAL fsync stays off the read lock.
			var gen uint64
			_, err := srv.d.Commit(b, incgraph.ApplyOptions{
				Exclusive: func(apply func() error) error {
					srv.mu.Lock()
					defer srv.mu.Unlock()
					aerr := apply()
					gen = srv.d.Generation()
					return aerr
				},
			})
			srv.syncDurableMeta()
			if err != nil {
				return err
			}
			if gen != postGen {
				return fmt.Errorf("replica at gen %d, primary said %d", gen, postGen)
			}
			return nil
		},
	})

	runErr := make(chan error, 1)
	go func() { runErr <- st.Run(conn) }()
	select {
	case <-loaded:
	case err := <-runErr:
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("handshake with %s: %w", *primary, err)
	}
	srv.standby = st

	// Watch the tail: when it ends, classify for the read path. Lease
	// expiry and transport deaths mean the primary is gone — keep serving
	// reads from the last durable generation (degraded). Anything else
	// (an apply failure, a protocol violation against a live primary)
	// means this replica diverged — reads must redirect, not answer.
	go func() {
		err := <-runErr
		state := tailStale
		var ne net.Error
		if err == nil || errors.Is(err, incgraph.ErrLeaseExpired) ||
			errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) ||
			errors.As(err, &ne) {
			state = tailDegraded
		}
		// A promote cut the tail itself; don't downgrade the new primary.
		srv.mu.RLock()
		promoted := srv.role != roleStandby
		srv.mu.RUnlock()
		if promoted {
			return
		}
		srv.tail.Store(state)
		log.Printf("tail ended (%s): %v — serving reads at gen %d seq %d; \"promote\" to take over",
			tailName(state), err, st.Gen(), st.LastSeq())
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		<-sig
		close(stop)
	}()
	return srv.serve(*addr, stop)
}
