package main

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"incgraph"
)

// TestCrashRecoverySmoke is the end-to-end crash drill CI runs: build the
// real binary, start it on a store, ingest update bursts over the wire,
// capture every class's full answer, SIGKILL the process mid-flight,
// restart it on the same store, and require byte-identical answers. This
// exercises the whole stack — line protocol, WAL, snapshot, recovery
// replay — exactly as a production crash would.
func TestCrashRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exec-based smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "incgraphd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Seed graph + ISO pattern files.
	g := incgraph.SyntheticGraph(incgraph.GraphSpec{
		Nodes: 400, Edges: 2000, Labels: 6, GiantSCCFrac: 0.5, Seed: 3,
	})
	graphPath := filepath.Join(dir, "seed.snap")
	if err := incgraph.WriteSnapshotFile(graphPath, g); err != nil {
		t.Fatal(err)
	}
	pat, err := incgraph.RandomISOPattern(g, 3, 3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	patPath := filepath.Join(dir, "pattern.txt")
	pf, err := os.Create(patPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := incgraph.WriteGraph(pf, pat.Graph()); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	kwsQ, err := incgraph.RandomKWSQuery(g, 2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	storeDir := filepath.Join(dir, "store")
	addr := pickAddr(t)
	args := []string{
		"-store", storeDir, "-graph", graphPath, "-addr", addr,
		"-kws", strings.Join(kwsQ.Keywords, ","), "-bound", fmt.Sprint(kwsQ.Bound),
		"-rpq", "l1.l2*.l3", "-iso", patPath, "-scc",
		"-shards", "4", "-checkpoint-bytes", "0",
	}

	daemon := startDaemon(t, bin, args, addr)

	// Ingest bursts of random updates through the protocol.
	c := dialLine(t, addr)
	scratch := g.Clone()
	rng := rand.New(rand.NewSource(11))
	for burst := 0; burst < 5; burst++ {
		b := incgraph.RandomUpdates(scratch, incgraph.UpdateSpec{
			Count: 50, InsertRatio: 0.6, Locality: 0.7, Seed: rng.Int63(),
		})
		if err := scratch.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		for _, u := range b {
			if u.Op == incgraph.OpInsert {
				c.cmd(t, fmt.Sprintf("+ %d %d %s %s", u.From, u.To, u.FromLabel, u.ToLabel))
			} else {
				c.cmd(t, fmt.Sprintf("- %d %d", u.From, u.To))
			}
		}
		c.cmd(t, "commit")
		if burst == 2 {
			c.cmd(t, "checkpoint") // mid-stream checkpoint: recovery = snapshot + partial WAL
		}
	}
	classes := []string{"kws", "rpq", "scc", "iso"}
	want := make(map[string]string, len(classes))
	for _, class := range classes {
		want[class] = c.answer(t, class)
	}
	c.close()

	// Crash: SIGKILL, no shutdown path runs.
	if err := daemon.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()

	// Restart on the same store and compare every answer byte for byte.
	daemon = startDaemon(t, bin, args, addr)
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()
	c = dialLine(t, addr)
	defer c.close()
	for _, class := range classes {
		if got := c.answer(t, class); got != want[class] {
			t.Fatalf("%s answers differ after crash recovery\nbefore:\n%s\nafter:\n%s", class, want[class], got)
		}
	}
	// And the recovered daemon still ingests.
	c.cmd(t, fmt.Sprintf("+ %d %d fresh fresh", scratch.MaxNodeID()+1, scratch.MaxNodeID()+2))
	c.cmd(t, "commit")

	// The operational error counters the accept loop and commit path log
	// are exposed as stat fields (zero on this healthy restart).
	statLine := c.cmd(t, "stat")
	for _, field := range []string{"accept_errs=0", "commit_errs=0"} {
		if !strings.Contains(statLine, field) {
			t.Fatalf("stat %q missing %q", statLine, field)
		}
	}
}

// startDaemon launches the binary and waits until its port accepts.
func startDaemon(t *testing.T, bin string, args []string, addr string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return cmd
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatalf("daemon on %s never came up", addr)
	return nil
}

// pickAddr reserves a free localhost port.
func pickAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// lineClient drives the daemon's line protocol.
type lineClient struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialLine(t *testing.T, addr string) *lineClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return &lineClient{conn: conn, r: bufio.NewReader(conn)}
}

func (c *lineClient) close() { c.conn.Close() }

// cmd sends one command and requires an "ok" reply.
func (c *lineClient) cmd(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		t.Fatalf("send %q: %v", line, err)
	}
	reply, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("reply to %q: %v", line, err)
	}
	reply = strings.TrimSpace(reply)
	if !strings.HasPrefix(reply, "ok") {
		t.Fatalf("command %q failed: %s", line, reply)
	}
	return reply
}

// answer fetches the dot-terminated canonical answer dump of one class.
func (c *lineClient) answer(t *testing.T, class string) string {
	t.Helper()
	c.cmd(t, "answer "+class)
	var sb strings.Builder
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatalf("answer %s: %v", class, err)
		}
		if strings.TrimSpace(line) == "." {
			return sb.String()
		}
		sb.WriteString(line)
	}
}
