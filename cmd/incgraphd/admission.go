package main

// Overload protection for the serving path. Three layers, outermost
// first:
//
//   - Accept-time shedding: past -max-conns the daemon accepts, replies
//     "err overloaded ..." and closes, so the kernel backlog never grows
//     unboundedly and a healthy client gets an explicit answer instead of
//     a hang.
//   - Per-connection deadlines: a full line must arrive within
//     -idle-timeout (the deadline is armed when the wait starts and NOT
//     refreshed per byte, so a byte-at-a-time slow-loris is cut exactly
//     like an idle one), every reply flush must complete within the op
//     timeout, and a connection can stage at most -max-staged updates.
//   - Admission gates in front of commit and query: a bounded number of
//     ops in flight, a bounded queue behind them, and a per-op budget on
//     the queue wait. Excess load is shed as "err overloaded: ...; retry"
//     the moment the queue is full — the degradation contract is an
//     explicit reply in bounded time, never an unbounded queue.
//
// Every shed, timeout, oversized line and deadline disconnect is counted
// and surfaced by "stat".

import (
	"errors"
	"flag"
	"sync/atomic"
	"time"
)

// limits bundles the serving path's overload-protection knobs. The zero
// value disables everything (tests construct servers directly); the flag
// defaults are the production posture.
type limits struct {
	// maxConns caps concurrently served connections; excess connections
	// are shed at accept time (0 = unlimited).
	maxConns int
	// idle is the per-line read deadline: a full command line must arrive
	// within it, however slowly the bytes trickle (0 = none).
	idle time.Duration
	// opTimeout is the per-op budget: the admission queue wait, the
	// remote phase of a cluster commit, and each reply flush (0 = none).
	opTimeout time.Duration
	// maxStaged caps updates staged on one connection (0 = unlimited).
	maxStaged int
	// Commit and read admission gates: slots in flight, queue behind them
	// (slots 0 = ungated).
	commitSlots, commitQueue int
	readSlots, readQueue     int
}

// defaultLimits is the production posture: generous enough that a sane
// interactive client never notices, bounded enough that nothing is
// unbounded.
func defaultLimits() limits {
	return limits{
		maxConns:    4096,
		idle:        5 * time.Minute,
		opTimeout:   10 * time.Second,
		maxStaged:   1 << 20,
		commitSlots: 4, commitQueue: 64,
		readSlots: 64, readQueue: 256,
	}
}

// limitFlags registers the overload-protection flags on fs and returns
// the limits they fill (shared by the primary and standby subcommands).
func limitFlags(fs *flag.FlagSet) *limits {
	lim := defaultLimits()
	fs.IntVar(&lim.maxConns, "max-conns", lim.maxConns, "max concurrent connections; excess are shed at accept with an explicit error (0 = unlimited)")
	fs.DurationVar(&lim.idle, "idle-timeout", lim.idle, "per-line read deadline: a full command line must arrive within this, however slowly bytes trickle (0 = none)")
	fs.DurationVar(&lim.opTimeout, "op-timeout", lim.opTimeout, "per-op budget: admission queue wait, cluster remote phase, reply flush (0 = none)")
	fs.IntVar(&lim.maxStaged, "max-staged", lim.maxStaged, "max updates staged per connection (0 = unlimited)")
	fs.IntVar(&lim.commitSlots, "commit-inflight", lim.commitSlots, "max commits in flight; more queue, then shed (0 = ungated)")
	fs.IntVar(&lim.commitQueue, "commit-queue", lim.commitQueue, "max commits queued behind the in-flight ones before shedding")
	fs.IntVar(&lim.readSlots, "read-inflight", lim.readSlots, "max query/answer renders in flight; more queue, then shed (0 = ungated)")
	fs.IntVar(&lim.readQueue, "read-queue", lim.readQueue, "max reads queued behind the in-flight ones before shedding")
	return &lim
}

// errOverloaded is the gate's shed verdict; the caller renders the
// "err overloaded: ...; retry" reply with the op-class context.
var errOverloaded = errors.New("overloaded")

// gate is a bounded admission queue: up to cap(slots) ops in flight, up
// to maxQueue more waiting at most `wait` each. Anything past that is
// shed immediately — the queue is how overload stays an explicit, bounded
// reply instead of memory growth and collapse.
type gate struct {
	slots    chan struct{}
	waiters  atomic.Int64
	maxQueue int64
	wait     time.Duration

	admitted atomic.Uint64 // ops that got a slot
	shed     atomic.Uint64 // rejected: queue full
	timeouts atomic.Uint64 // rejected: queued past the op budget
}

// newGate builds a gate; slots <= 0 returns nil (an ungated nil gate
// admits everything).
func newGate(slots, queue int, wait time.Duration) *gate {
	if slots <= 0 {
		return nil
	}
	if wait <= 0 {
		wait = time.Hour // effectively unbounded, but never infinite
	}
	return &gate{
		slots:    make(chan struct{}, slots),
		maxQueue: int64(queue),
		wait:     wait,
	}
}

// enter admits the op or sheds it with errOverloaded. Callers must exit()
// after a nil return.
func (g *gate) enter() error {
	if g == nil {
		return nil
	}
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return nil
	default:
	}
	if g.waiters.Add(1) > g.maxQueue {
		g.waiters.Add(-1)
		g.shed.Add(1)
		return errOverloaded
	}
	defer g.waiters.Add(-1)
	t := time.NewTimer(g.wait)
	defer t.Stop()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return nil
	case <-t.C:
		g.timeouts.Add(1)
		return errOverloaded
	}
}

// exit releases the slot enter acquired.
func (g *gate) exit() {
	if g != nil {
		<-g.slots
	}
}

// counters renders the gate's counters for "stat" (zeros when ungated).
func (g *gate) stats() (admitted, shed, timeouts uint64) {
	if g == nil {
		return 0, 0, 0
	}
	return g.admitted.Load(), g.shed.Load(), g.timeouts.Load()
}

// retryHintMS is the client-facing retry hint on a shed: long enough for
// a queue drain to make progress, short enough that a retrying client
// converges quickly once load drops.
const retryHintMS = 100
