package main

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"incgraph"
)

// raw sends one command and returns the reply line without requiring an
// "ok" prefix (for asserting error replies).
func (c *lineClient) raw(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		t.Fatalf("send %q: %v", line, err)
	}
	reply, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("reply to %q: %v", line, err)
	}
	return strings.TrimSpace(reply)
}

// TestClusterCrashRecovery is the distributed crash drill CI runs: build
// the real binary, start a coordinator daemon plus two shard-worker
// processes, ingest update bursts over the line protocol, SIGKILL one
// worker mid-stream (the in-flight commit must fail atomically), restart
// the worker on the same address (the coordinator reattaches it and
// re-ships its shards from authoritative segments), and require the final
// answers of every query class to be byte-identical to a single-process
// daemon fed the same stream. This mirrors the PR 4 crash drill one level
// up: there the serving process died; here a shard worker does.
func TestClusterCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("exec-based smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "incgraphd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Seed graph + standing queries, shared by both daemons.
	g := incgraph.SyntheticGraph(incgraph.GraphSpec{
		Nodes: 300, Edges: 1500, Labels: 6, GiantSCCFrac: 0.5, Seed: 13,
	})
	graphPath := filepath.Join(dir, "seed.snap")
	if err := incgraph.WriteSnapshotFile(graphPath, g); err != nil {
		t.Fatal(err)
	}
	pat, err := incgraph.RandomISOPattern(g, 3, 3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	patPath := filepath.Join(dir, "pattern.txt")
	pf, err := os.Create(patPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := incgraph.WriteGraph(pf, pat.Graph()); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	kwsQ, err := incgraph.RandomKWSQuery(g, 2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	engineArgs := []string{
		"-kws", strings.Join(kwsQ.Keywords, ","), "-bound", fmt.Sprint(kwsQ.Bound),
		"-rpq", "l1.l2*.l3", "-iso", patPath, "-scc",
		"-shards", "8", "-checkpoint-bytes", "0", "-fsync", "none",
	}

	// Two shard workers on reserved loopback ports.
	w1Addr, w2Addr := pickAddr(t), pickAddr(t)
	startWorker := func(addr string) *exec.Cmd {
		cmd := exec.Command(bin, "worker", "-addr", addr)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		if err := waitForAddr(addr, 15*time.Second); err != nil {
			t.Fatalf("worker on %s never came up: %v", addr, err)
		}
		return cmd
	}
	w1 := startWorker(w1Addr)
	defer func() { w1.Process.Kill(); w1.Wait() }()
	w2 := startWorker(w2Addr)
	defer func() { w2.Process.Kill(); w2.Wait() }()

	// Coordinator daemon (cluster) and single-process reference daemon.
	clusterAddr, singleAddr := pickAddr(t), pickAddr(t)
	clusterDaemon := startDaemon(t, bin,
		append([]string{"-store", filepath.Join(dir, "store-cluster"), "-graph", graphPath,
			"-addr", clusterAddr, "-cluster", w1Addr + "," + w2Addr}, engineArgs...), clusterAddr)
	defer func() { clusterDaemon.Process.Kill(); clusterDaemon.Wait() }()
	singleDaemon := startDaemon(t, bin,
		append([]string{"-store", filepath.Join(dir, "store-single"), "-graph", graphPath,
			"-addr", singleAddr}, engineArgs...), singleAddr)
	defer func() { singleDaemon.Process.Kill(); singleDaemon.Wait() }()

	cc := dialLine(t, clusterAddr)
	defer cc.close()
	sc := dialLine(t, singleAddr)
	defer sc.close()

	// stage sends one burst to a connection without committing.
	stage := func(c *lineClient, b incgraph.Batch) {
		for _, u := range b {
			if u.Op == incgraph.OpInsert {
				c.cmd(t, fmt.Sprintf("+ %d %d %s %s", u.From, u.To, u.FromLabel, u.ToLabel))
			} else {
				c.cmd(t, fmt.Sprintf("- %d %d", u.From, u.To))
			}
		}
	}

	scratch := g.Clone()
	rng := rand.New(rand.NewSource(31))
	nextBurst := func() incgraph.Batch {
		b := incgraph.RandomUpdates(scratch, incgraph.UpdateSpec{
			Count: 40, InsertRatio: 0.6, Locality: 0.7, Seed: rng.Int63(),
		})
		if err := scratch.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Normal streaming: both daemons get the same bursts.
	for burst := 0; burst < 3; burst++ {
		b := nextBurst()
		stage(cc, b)
		cc.cmd(t, "commit")
		stage(sc, b)
		sc.cmd(t, "commit")
	}

	// Crash a shard worker. The staged commit must fail atomically — the
	// reply is an error, nothing is logged or applied — so the same burst
	// can be restaged once the worker is back.
	if err := w1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	w1.Wait()
	killed := nextBurst()
	stage(cc, killed)
	if reply := cc.raw(t, "commit"); !strings.HasPrefix(reply, "err staged: commit failed") {
		t.Fatalf("commit with a dead worker replied %q, want err", reply)
	}

	// The stat line must expose the failure counters the logs recorded.
	statLine := cc.cmd(t, "stat")
	for _, field := range []string{"accept_errs=0", "commit_errs=1", "cluster_workers=1/2"} {
		if !strings.Contains(statLine, field) {
			t.Fatalf("stat %q missing %q", statLine, field)
		}
	}
	if !strings.Contains(statLine, "cluster_remote_errs=") {
		t.Fatalf("stat %q missing cluster_remote_errs", statLine)
	}

	// Restart the worker on the same address: the next commit reattaches
	// it and re-ships its shards from the coordinator's segments.
	w1 = startWorker(w1Addr)
	stage(cc, killed)
	cc.cmd(t, "commit")
	stage(sc, killed)
	sc.cmd(t, "commit")

	// Post-recovery streaming still works.
	for burst := 0; burst < 2; burst++ {
		b := nextBurst()
		stage(cc, b)
		cc.cmd(t, "commit")
		stage(sc, b)
		sc.cmd(t, "commit")
	}

	// Byte-identical answers: the distributed run through a worker crash
	// and segment re-shipping equals the single-process run.
	for _, class := range []string{"kws", "rpq", "scc", "iso"} {
		clusterAns := cc.answer(t, class)
		singleAns := sc.answer(t, class)
		if clusterAns != singleAns {
			t.Fatalf("%s answers differ between cluster and single-process runs\ncluster:\n%s\nsingle:\n%s",
				class, clusterAns, singleAns)
		}
	}
	// Worker liveness in stat is served from a bounded-staleness cache
	// (statTTL), so the reattach may take one TTL to show up.
	deadline := time.Now().Add(5 * statTTL)
	for {
		statLine = cc.cmd(t, "stat")
		if strings.Contains(statLine, "cluster_workers=2/2") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stat %q does not show the restarted worker reattached", statLine)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !strings.Contains(statLine, "cluster_resyncs=") {
		t.Fatalf("stat %q missing cluster_resyncs", statLine)
	}
}
