package main

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"incgraph"
)

// TestStandbyFailoverSmoke is the daemon-level HA drill: a primary with
// two shard workers, quorum log shipping, and a feed hub; a standby
// daemon tailing the hub into its own fresh store. The primary is
// SIGKILLed mid-stream, the standby notices the dead feed (degraded
// reads keep working), an operator "promote" attaches it to the same
// workers at term+1, and the remaining stream goes through the promoted
// daemon. Every query class's final answer must be byte-identical to a
// single-process daemon fed the same stream — the cmd-level version of
// TestHAFailoverMatchesUninterruptedRun.
func TestStandbyFailoverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exec-based smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "incgraphd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Seed graph + standing queries, shared by every daemon.
	g := incgraph.SyntheticGraph(incgraph.GraphSpec{
		Nodes: 300, Edges: 1500, Labels: 6, GiantSCCFrac: 0.5, Seed: 17,
	})
	graphPath := filepath.Join(dir, "seed.snap")
	if err := incgraph.WriteSnapshotFile(graphPath, g); err != nil {
		t.Fatal(err)
	}
	pat, err := incgraph.RandomISOPattern(g, 3, 3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	patPath := filepath.Join(dir, "pattern.txt")
	pf, err := os.Create(patPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := incgraph.WriteGraph(pf, pat.Graph()); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	kwsQ, err := incgraph.RandomKWSQuery(g, 2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	engineArgs := []string{
		"-kws", strings.Join(kwsQ.Keywords, ","), "-bound", fmt.Sprint(kwsQ.Bound),
		"-rpq", "l1.l2*.l3", "-iso", patPath, "-scc",
	}

	w1Addr, w2Addr := pickAddr(t), pickAddr(t)
	startWorker := func(addr string) *exec.Cmd {
		cmd := exec.Command(bin, "worker", "-addr", addr)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		if err := waitForAddr(addr, 15*time.Second); err != nil {
			t.Fatalf("worker on %s never came up: %v", addr, err)
		}
		return cmd
	}
	w1 := startWorker(w1Addr)
	defer func() { w1.Process.Kill(); w1.Wait() }()
	w2 := startWorker(w2Addr)
	defer func() { w2.Process.Kill(); w2.Wait() }()

	primaryAddr, hubAddr, standbyAddr, singleAddr := pickAddr(t), pickAddr(t), pickAddr(t), pickAddr(t)
	clusterArgs := []string{"-cluster", w1Addr + "," + w2Addr, "-repl", "quorum", "-term", "1"}
	primary := startDaemon(t, bin,
		append(append([]string{"-store", filepath.Join(dir, "store-primary"), "-graph", graphPath,
			"-addr", primaryAddr, "-hub", hubAddr,
			"-shards", "8", "-checkpoint-bytes", "0", "-fsync", "none"}, clusterArgs...), engineArgs...),
		primaryAddr)
	defer func() { primary.Process.Kill(); primary.Wait() }()
	single := startDaemon(t, bin,
		append([]string{"-store", filepath.Join(dir, "store-single"), "-graph", graphPath,
			"-addr", singleAddr, "-shards", "8", "-checkpoint-bytes", "0", "-fsync", "none"}, engineArgs...),
		singleAddr)
	defer func() { single.Process.Kill(); single.Wait() }()

	standby := startDaemon(t, bin,
		append([]string{"standby", "-primary", hubAddr,
			"-store", filepath.Join(dir, "store-standby"), "-addr", standbyAddr,
			"-ttl", "1s", "-fsync", "none", "-checkpoint-bytes", "0",
			"-cluster", w1Addr + "," + w2Addr, "-repl", "quorum"}, engineArgs...),
		standbyAddr)
	defer func() { standby.Process.Kill(); standby.Wait() }()

	pc := dialLine(t, primaryAddr)
	defer pc.close()
	sc := dialLine(t, singleAddr)
	defer sc.close()
	bc := dialLine(t, standbyAddr)
	defer bc.close()

	stage := func(c *lineClient, b incgraph.Batch) {
		for _, u := range b {
			if u.Op == incgraph.OpInsert {
				c.cmd(t, fmt.Sprintf("+ %d %d %s %s", u.From, u.To, u.FromLabel, u.ToLabel))
			} else {
				c.cmd(t, fmt.Sprintf("- %d %d", u.From, u.To))
			}
		}
	}
	scratch := g.Clone()
	rng := rand.New(rand.NewSource(23))
	nextBurst := func() incgraph.Batch {
		b := incgraph.RandomUpdates(scratch, incgraph.UpdateSpec{
			Count: 40, InsertRatio: 0.6, Locality: 0.7, Seed: rng.Int63(),
		})
		if err := scratch.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		return b
	}

	// First half of the stream through the primary.
	for burst := 0; burst < 3; burst++ {
		b := nextBurst()
		stage(pc, b)
		pc.cmd(t, "commit")
		stage(sc, b)
		sc.cmd(t, "commit")
	}

	// The hub feeds in commit order but acks asynchronously: wait for the
	// standby to drain the stream, then check it serves current reads and
	// refuses writes.
	var health string
	for deadline := time.Now().Add(10 * time.Second); ; {
		health = bc.cmd(t, "health")
		if strings.Contains(health, "tail_seq=3") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby health %q never reached tail_seq=3", health)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, field := range []string{"role=standby", "tail=live"} {
		if !strings.Contains(health, field) {
			t.Fatalf("standby health %q missing %q", health, field)
		}
	}
	if got, want := bc.answer(t, "scc"), sc.answer(t, "scc"); got != want {
		t.Fatalf("standby replica read diverged mid-stream\nstandby:\n%s\nsingle:\n%s", got, want)
	}
	bc.cmd(t, fmt.Sprintf("+ %d %d x y", scratch.MaxNodeID()+1, scratch.MaxNodeID()+2))
	if reply := bc.raw(t, "commit"); !strings.HasPrefix(reply, "err fenced: standby is read-only") {
		t.Fatalf("standby accepted a commit: %q", reply)
	}
	bc.cmd(t, "abort")

	// Kill the primary without ceremony. The standby's lease expires and
	// it degrades to serving its last durable generation.
	if err := primary.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	primary.Wait()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if h := bc.cmd(t, "health"); strings.Contains(h, "tail=degraded") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby never noticed the dead primary: %s", bc.cmd(t, "health"))
		}
		time.Sleep(100 * time.Millisecond)
	}
	if got, want := bc.answer(t, "kws"), sc.answer(t, "kws"); got != want {
		t.Fatal("degraded standby reads diverged from the last durable generation")
	}

	// Promote: the standby attaches to the same workers at term 2 and the
	// rest of the stream goes through it.
	reply := bc.cmd(t, "promote")
	for _, field := range []string{"term=2", "workers=2"} {
		if !strings.Contains(reply, field) {
			t.Fatalf("promote reply %q missing %q", reply, field)
		}
	}
	if reply := bc.raw(t, "promote"); !strings.HasPrefix(reply, "err fenced: already primary") {
		t.Fatalf("second promote replied %q", reply)
	}
	for burst := 0; burst < 3; burst++ {
		b := nextBurst()
		stage(bc, b)
		bc.cmd(t, "commit")
		stage(sc, b)
		sc.cmd(t, "commit")
	}

	// Byte-identical answers across the failover, and the promoted daemon
	// reports its new role and fencing term.
	for _, class := range []string{"kws", "rpq", "scc", "iso"} {
		if got, want := bc.answer(t, class), sc.answer(t, class); got != want {
			t.Fatalf("%s answers differ after failover\npromoted:\n%s\nsingle:\n%s", class, got, want)
		}
	}
	statLine := bc.cmd(t, "stat")
	for _, field := range []string{"role=primary", "cluster_workers=2/2", "cluster_term=2", "repl=quorum"} {
		if !strings.Contains(statLine, field) {
			t.Fatalf("promoted stat %q missing %q", statLine, field)
		}
	}
}
