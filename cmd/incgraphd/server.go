package main

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incgraph"
)

// server multiplexes the line protocol over one Durable. Locking follows
// the substrate's read-parallel contract: commit and checkpoint take the
// write lock (mutation is exclusive), queries take the read lock and are
// served from the engines' generation-stamped answer caches, so
// connections read concurrently between commits. In cluster mode the
// remote phase 1 of a commit runs before the write lock is taken, so the
// wire round trips of one commit overlap with reads (and with the remote
// phase of other commits on disjoint shards); only the local durable
// apply is exclusive.
type server struct {
	mu sync.RWMutex
	d  *incgraph.Durable
	// cl, when non-nil, routes commits through the distributed two-phase
	// protocol (phase 1 on the shard workers, commit under s.mu). Guarded
	// by mu because promote installs one at runtime.
	cl *incgraph.Cluster
	// ckptBytes auto-checkpoints after a commit grows the WAL past it.
	ckptBytes int64
	byClass   map[string]incgraph.Maintained

	// HA primary state. hub, when non-nil, feeds every committed batch to
	// attached standbys; feedSeq numbers the feed stream and is updated
	// inside the same mu critical section as the graph mutation, so the
	// hub's snapshot callback reads a (seq, state) pair no committed batch
	// can fall between. feedMu orders single-process feeds (cluster-mode
	// feeds ride the coordinator's OnCommit hook, which is already
	// ordered).
	hub     *incgraph.ClusterHub
	feedMu  sync.Mutex
	feedSeq uint64

	// HA standby state (role == roleStandby until promote). tail tracks
	// the feed's liveness for the read path's staleness gate; standby,
	// tailConn, workerAddrs, and repl are what promote needs to attach a
	// coordinator at term+1. primaryAddr is where stale reads redirect.
	role        string
	standby     *incgraph.ClusterStandby
	tailConn    net.Conn
	tail        atomic.Int32
	primaryAddr string
	workerAddrs []string
	repl        incgraph.ReplPolicy
	// connMu/conns track live connections so shutdown can cut idle
	// readers instead of waiting for clients to hang up.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	// Operational counters, exposed by "stat" so operators can see what
	// the logs saw: transient accept failures, and commits that failed
	// for operational reasons (cluster phase-1 failure, WAL trouble) —
	// batch-validation rejections are client input errors and are only
	// replied to, not counted or logged.
	acceptErrs atomic.Uint64
	commitErrs atomic.Uint64
}

// Serving roles. A standby is read-only until "promote" flips it.
const (
	rolePrimary = "primary"
	roleStandby = "standby"
)

// Standby tail states, for the read path's staleness gate.
const (
	tailNone     int32 = iota // not a standby
	tailLive                  // feed attached, replica current
	tailDegraded              // primary gone; serving last durable generation
	tailStale                 // replica diverged from a live primary; redirect
)

func tailName(s int32) string {
	switch s {
	case tailLive:
		return "live"
	case tailDegraded:
		return "degraded"
	case tailStale:
		return "stale"
	default:
		return "none"
	}
}

func newServer(d *incgraph.Durable, cl *incgraph.Cluster, ckptBytes int64) *server {
	byClass := make(map[string]incgraph.Maintained, len(d.Engines()))
	for _, m := range d.Engines() {
		byClass[m.Class()] = m
	}
	return &server{d: d, cl: cl, ckptBytes: ckptBytes, byClass: byClass,
		role: rolePrimary, conns: make(map[net.Conn]struct{})}
}

// cluster returns the current coordinator (promote installs one late).
func (s *server) cluster() *incgraph.Cluster {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cl
}

// track registers or unregisters a live connection.
func (s *server) track(conn net.Conn, add bool) {
	s.connMu.Lock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
	s.connMu.Unlock()
}

// closeConns cuts every live connection (shutdown path).
func (s *server) closeConns() {
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
}

// serve accepts connections until a signal arrives, then closes the
// listener and the WAL. In-flight connections are cut; every acknowledged
// commit is already on disk, so an abrupt stop is as safe as a crash.
func (s *server) serve(addr string, stop <-chan struct{}) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("listening on %s", ln.Addr())
	done := make(chan struct{})
	go func() {
		<-stop
		close(done)
		ln.Close()
		// Abort any in-flight remote phase 1 before cutting connections:
		// closing the coordinator tears down its worker sessions, so a
		// commit blocked on a slow or dead worker fails immediately
		// instead of pinning the drain below for the full RPC deadline.
		// The commit was not acknowledged, so failing it is as safe as a
		// crash; the aborted shards resync on the next start.
		if cl := s.cluster(); cl != nil {
			cl.Close()
		}
		s.closeConns()
	}()
	var wg sync.WaitGroup
	backoff := 5 * time.Millisecond
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-done:
				wg.Wait()
				s.mu.Lock()
				defer s.mu.Unlock()
				log.Printf("shutting down (gen %d, WAL seq %d)", s.d.Generation(), s.d.WALSeq())
				if s.cl != nil {
					s.cl.Close()
				}
				return s.d.Close()
			default:
			}
			// Transient accept failures (ECONNABORTED, EMFILE under a
			// connection burst) must not kill a long-lived daemon: back
			// off and retry; the condition clears as connections close.
			// Counted so "stat" exposes what the log line saw.
			s.acceptErrs.Add(1)
			log.Printf("accept: %v (retrying in %v)", err, backoff)
			select {
			case <-done:
				continue // drain via the shutdown branch above
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = 5 * time.Millisecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *server) handle(conn net.Conn) {
	s.track(conn, true)
	defer func() {
		s.track(conn, false)
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	out := bufio.NewWriter(conn)
	reply := func(format string, args ...any) bool {
		fmt.Fprintf(out, format+"\n", args...)
		return out.Flush() == nil
	}
	var pending incgraph.Batch
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "+", "-":
			u, err := parseUpdate(fields)
			if err != nil {
				if !reply("err %v", err) {
					return
				}
				continue
			}
			pending = append(pending, u)
			if !reply("ok staged %d", len(pending)) {
				return
			}
		case "abort":
			n := len(pending)
			pending = nil
			if !reply("ok aborted %d", n) {
				return
			}
		case "commit":
			batch := pending
			pending = nil
			if !s.commit(batch, reply) {
				return
			}
		case "query", "answer":
			if len(fields) != 2 {
				if !reply("err usage: %s CLASS", fields[0]) {
					return
				}
				continue
			}
			if !s.read(fields[0], fields[1], out, reply) {
				return
			}
		case "stat":
			if !s.stat(reply) {
				return
			}
		case "health":
			if !s.health(reply) {
				return
			}
		case "promote":
			if !s.promote(reply) {
				return
			}
		case "checkpoint":
			s.mu.Lock()
			err := s.d.Checkpoint()
			epoch := s.d.Epoch()
			s.mu.Unlock()
			if err != nil {
				if !reply("err checkpoint: %v", err) {
					return
				}
				continue
			}
			if !reply("ok checkpoint epoch=%d", epoch) {
				return
			}
		case "quit":
			reply("ok bye")
			return
		default:
			if !reply("err unknown command %q", fields[0]) {
				return
			}
		}
	}
}

// commit applies one staged batch and reports ΔO per class, then
// auto-checkpoints past the WAL threshold. Single-process commits run
// entirely under the write lock; cluster commits run phase 1 over the
// wire first (the coordinator serializes conflicting batches by shard)
// and take the write lock only for the local durable apply.
func (s *server) commit(batch incgraph.Batch, reply func(string, ...any) bool) bool {
	if len(batch) == 0 {
		return reply("err nothing staged")
	}
	s.mu.RLock()
	role, cl, hub := s.role, s.cl, s.hub
	s.mu.RUnlock()
	if role == roleStandby {
		return reply("err standby is read-only: promote to accept commits")
	}
	var (
		sums []incgraph.DeltaSummary
		err  error
	)
	var preGen, gen, seq uint64
	durableApply := func(b incgraph.Batch) ([]incgraph.DeltaSummary, uint64, int64, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		preGen = s.d.Generation()
		sums, aerr := s.d.Apply(b)
		if aerr == nil && hub != nil {
			// Numbered inside the critical section so the hub's snapshot
			// callback sees seq and graph state move together.
			s.feedSeq++
			seq = s.feedSeq
		}
		gen, walBytes := s.d.Generation(), s.d.WALBytes()
		if aerr == nil && s.ckptBytes > 0 && walBytes > s.ckptBytes {
			if cerr := s.d.Checkpoint(); cerr != nil {
				log.Printf("auto-checkpoint failed: %v", cerr)
			} else {
				log.Printf("auto-checkpoint at WAL %d bytes (epoch %d)", walBytes, s.d.Epoch())
			}
		}
		return sums, gen, walBytes, aerr
	}
	switch {
	case cl != nil:
		// Cluster mode: the coordinator's OnCommit hook (wired to the
		// hub's Feed in main) runs the standby feed in commit order while
		// the batch's shards are still held.
		err = cl.Apply(batch, func(b incgraph.Batch) error {
			var aerr error
			sums, gen, _, aerr = durableApply(b)
			return aerr
		})
	case hub != nil:
		// Single-process primary with standbys: feed after the apply, in
		// commit order (feedMu — s.mu alone would let two committers'
		// post-unlock feeds invert).
		s.feedMu.Lock()
		sums, gen, _, err = durableApply(batch)
		if err == nil {
			hub.Feed(seq, preGen, gen, batch)
		}
		s.feedMu.Unlock()
	default:
		sums, gen, _, err = durableApply(batch)
	}
	if err != nil {
		if !errors.Is(err, incgraph.ErrBadUpdate) {
			s.commitErrs.Add(1)
			log.Printf("commit failed: %v", err)
		}
		return reply("err commit: %v", err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "ok applied %d gen=%d", len(batch), gen)
	for i, m := range s.d.Engines() {
		fmt.Fprintf(&sb, " %s=%s", m.Class(), sums[i])
	}
	return reply("%s", sb.String())
}

// read serves "query" (cardinality) and "answer" (full canonical dump).
// The read lock covers only the in-memory render — never the socket
// writes, so a stalled client can't hold the lock and wedge commits (and,
// through the RWMutex writer queue, every other reader).
func (s *server) read(cmd, class string, out *bufio.Writer, reply func(string, ...any) bool) bool {
	// Replica-read gate: a standby serves reads while its feed is live
	// (the replica is provably current) and keeps serving from the last
	// durable generation when the primary is gone — but a replica that
	// diverged from a live primary redirects instead of answering wrong.
	if s.tail.Load() == tailStale {
		return reply("err stale replica: redirect %s", s.primaryAddr)
	}
	m, ok := s.byClass[class]
	if !ok {
		return reply("err no standing query for class %q", class)
	}
	s.mu.RLock()
	size := m.Size()
	var dump bytes.Buffer
	var err error
	if cmd == "answer" {
		err = m.WriteAnswer(&dump)
	}
	s.mu.RUnlock()
	if err != nil {
		return reply("err answer %s: %v", class, err)
	}
	if !reply("ok %s %d", class, size) {
		return false
	}
	if cmd == "query" {
		return true
	}
	if _, err := out.Write(dump.Bytes()); err != nil {
		return false
	}
	fmt.Fprintln(out, ".")
	return out.Flush() == nil
}

func (s *server) stat(reply func(string, ...any) bool) bool {
	classes := make([]string, 0, len(s.d.Engines()))
	for _, m := range s.d.Engines() {
		classes = append(classes, m.Class())
	}
	// Render under the read lock, write to the socket after (see read).
	s.mu.RLock()
	g := s.d.Graph()
	role, cl, hub := s.role, s.cl, s.hub
	line := fmt.Sprintf("ok role=%s nodes=%d edges=%d gen=%d shards=%d epoch=%d walseq=%d walbytes=%d classes=%s",
		role, g.NumNodes(), g.NumEdges(), g.Generation(), g.NumShards(),
		s.d.Epoch(), s.d.WALSeq(), s.d.WALBytes(), strings.Join(classes, ","))
	s.mu.RUnlock()
	// Error counters: what the accept-loop and commit-path logs saw, as
	// machine-readable fields (the crash drill asserts their presence).
	line += fmt.Sprintf(" accept_errs=%d commit_errs=%d", s.acceptErrs.Load(), s.commitErrs.Load())
	if cl != nil {
		up, retries := 0, uint64(0)
		var replicated, gaps uint64
		for _, st := range cl.Stats() {
			if !st.Down {
				up++
			}
			retries += st.Retries
			replicated += st.Remote.Replicated
			gaps += st.Remote.ReplGaps
		}
		line += fmt.Sprintf(" cluster_workers=%d/%d cluster_applied=%d cluster_remote_errs=%d cluster_resyncs=%d cluster_retries=%d cluster_term=%d",
			up, cl.NumWorkers(), cl.Applied(), cl.RemoteErrors(), cl.Resyncs(), retries, cl.Term())
		line += fmt.Sprintf(" repl=%s repl_seq=%d repl_shipped=%d repl_degraded=%d repl_replicated=%d repl_gaps=%d",
			s.repl, cl.ReplSeq(), cl.ReplShipped(), cl.ReplDegraded(), replicated, gaps)
	}
	if hub != nil {
		line += fmt.Sprintf(" standbys=%d", hub.Standbys())
	}
	if st := s.standby; st != nil {
		line += fmt.Sprintf(" tail=%s tail_term=%d tail_seq=%d tail_gen=%d",
			tailName(s.tail.Load()), st.Term(), st.LastSeq(), st.Gen())
	}
	return reply("%s", line)
}

// health is the cheap liveness probe: one line of role and position, no
// worker polling (stat's per-worker poll can take seconds during an
// incident, exactly when probes must not).
func (s *server) health(reply func(string, ...any) bool) bool {
	s.mu.RLock()
	role, cl, hub := s.role, s.cl, s.hub
	gen, walSeq := s.d.Generation(), s.d.WALSeq()
	s.mu.RUnlock()
	line := fmt.Sprintf("ok role=%s gen=%d walseq=%d", role, gen, walSeq)
	if cl != nil {
		line += fmt.Sprintf(" term=%d", cl.Term())
	}
	if hub != nil {
		line += fmt.Sprintf(" standbys=%d", hub.Standbys())
	}
	if s.standby != nil {
		line += fmt.Sprintf(" tail=%s tail_seq=%d", tailName(s.tail.Load()), s.standby.LastSeq())
	}
	return reply("%s", line)
}

// promote flips a standby into a primary: the replica's durable state
// becomes authoritative, and if shard-worker addresses were configured a
// coordinator is attached over them at the deposed primary's term+1 —
// re-placing every shard and fencing the old coordinator's sessions.
// Reads block for the attach (it ships shard segments); promotion is a
// failover moment, not a steady-state operation.
func (s *server) promote(reply func(string, ...any) bool) bool {
	s.mu.Lock()
	if s.role != roleStandby {
		s.mu.Unlock()
		return reply("err already primary")
	}
	// Cut the tail first so a live feed cannot race the role flip; the
	// apply callback also rejects feeds once the role is primary.
	if s.tailConn != nil {
		s.tailConn.Close()
	}
	term := s.standby.Term() + 1
	var links []incgraph.ClusterLink
	for _, a := range s.workerAddrs {
		link, err := incgraph.DialClusterWorker(a)
		if err != nil {
			s.mu.Unlock()
			return reply("err promote: worker %s: %v", a, err)
		}
		links = append(links, link)
	}
	if len(links) > 0 {
		cl, err := incgraph.NewClusterWith(s.d.Graph(), links, incgraph.ClusterOptions{
			Term: term, Repl: s.repl,
		})
		if err != nil {
			for _, l := range links {
				l.Conn.Close()
			}
			s.mu.Unlock()
			return reply("err promote: %v", err)
		}
		s.cl = cl
	}
	s.role = rolePrimary
	s.tail.Store(tailNone)
	s.mu.Unlock()
	log.Printf("promoted to primary at term %d (%d workers)", term, len(links))
	return reply("ok promoted term=%d workers=%d", term, len(links))
}

// parseUpdate decodes "+ v w [vlabel wlabel]" / "- v w" (the update-file
// format of cmd/incgraph).
func parseUpdate(fields []string) (incgraph.Update, error) {
	if len(fields) < 3 {
		return incgraph.Update{}, fmt.Errorf("want '+|- v w [vlabel wlabel]'")
	}
	v, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return incgraph.Update{}, fmt.Errorf("bad source id: %v", err)
	}
	w, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return incgraph.Update{}, fmt.Errorf("bad target id: %v", err)
	}
	if fields[0] == "-" {
		return incgraph.Del(incgraph.NodeID(v), incgraph.NodeID(w)), nil
	}
	vl, wl := "", ""
	if len(fields) > 3 {
		vl = fields[3]
	}
	if len(fields) > 4 {
		wl = fields[4]
	}
	return incgraph.InsNew(incgraph.NodeID(v), incgraph.NodeID(w), vl, wl), nil
}
