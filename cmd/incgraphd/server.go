package main

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"log"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incgraph"
)

// server multiplexes the line protocol over one Durable. Locking follows
// the substrate's read-parallel contract: commit and checkpoint take the
// write lock (mutation is exclusive), queries take the read lock and are
// served from the engines' generation-stamped answer caches, so
// connections read concurrently between commits. In cluster mode the
// remote phase 1 of a commit runs before the write lock is taken, so the
// wire round trips of one commit overlap with reads (and with the remote
// phase of other commits on disjoint shards); only the local durable
// apply is exclusive.
type server struct {
	mu sync.RWMutex
	d  *incgraph.Durable
	// cl, when non-nil, routes commits through the distributed two-phase
	// protocol (phase 1 on the shard workers, commit under s.mu). Guarded
	// by mu because promote installs one at runtime.
	cl *incgraph.Cluster
	// ckptBytes auto-checkpoints after a commit grows the WAL past it.
	ckptBytes int64
	byClass   map[string]incgraph.Maintained

	// lim is the overload posture; commitGate/readGate are its admission
	// gates (nil when ungated). See admission.go for the layer contract.
	lim        limits
	commitGate *gate
	readGate   *gate
	// commitMu serializes the durable half of every commit (WAL append +
	// in-memory apply + auto-checkpoint + standby feed) and the checkpoint
	// verb. The WAL fsync and checkpoint I/O run under it but OUTSIDE mu,
	// so a stalled disk backs up writers — who shed at the gate — while
	// readers keep answering. Lock order: commitMu before mu, always.
	commitMu sync.Mutex

	// HA primary state. hub, when non-nil, feeds every committed batch to
	// attached standbys; feedSeq numbers the feed stream and is updated
	// inside the same mu critical section as the graph mutation, so the
	// hub's snapshot callback reads a (seq, state) pair no committed batch
	// can fall between. commitMu orders single-process feeds (cluster-mode
	// feeds ride the coordinator's OnCommit hook, which is already
	// ordered).
	hub     *incgraph.ClusterHub
	feedSeq uint64

	// Cluster-stat cache: "stat" must answer in bounded time even with a
	// dead or stalled worker, so worker polls run at most once per statTTL,
	// in the background once a first result exists, and with a short
	// parallel poll timeout. Guarded by statMu.
	statMu    sync.Mutex
	statCache []incgraph.ClusterStat
	statAt    time.Time
	statBusy  bool

	// Durable-metadata mirror for stat/health. With the WAL fsync running
	// under commitMu outside mu, the store's counters mutate outside the
	// read lock; readers load these mirrors (refreshed by syncDurableMeta
	// after every durable mutation) instead of racing the store.
	walBytes atomic.Int64
	walSeq   atomic.Uint64
	epoch    atomic.Uint64

	// HA standby state (role == roleStandby until promote). tail tracks
	// the feed's liveness for the read path's staleness gate; standby,
	// tailConn, workerAddrs, and repl are what promote needs to attach a
	// coordinator at term+1. primaryAddr is where stale reads redirect.
	role        string
	standby     *incgraph.ClusterStandby
	tailConn    net.Conn
	tail        atomic.Int32
	primaryAddr string
	workerAddrs []string
	repl        incgraph.ReplPolicy
	// connMu/conns track live connections so shutdown can cut idle
	// readers instead of waiting for clients to hang up; nconns mirrors
	// len(conns) for the accept-time cap and "stat".
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	nconns atomic.Int64
	// Operational counters, exposed by "stat" so operators can see what
	// the logs saw: transient accept failures, and commits that failed
	// for operational reasons (cluster phase-1 failure, WAL trouble) —
	// batch-validation rejections are client input errors and are only
	// replied to, not counted or logged. The overload counters below track
	// every shed and deadline drop so graceful degradation is observable,
	// not silent.
	acceptErrs   atomic.Uint64
	commitErrs   atomic.Uint64
	connsShed    atomic.Uint64 // connections shed at accept (max-conns)
	stagedShed   atomic.Uint64 // stage commands refused at max-staged
	linesTooLong atomic.Uint64 // oversized protocol lines (replied, then cut)
	idleDrops    atomic.Uint64 // connections cut by the per-line read deadline
	clusterShed  atomic.Uint64 // commits shed by the cluster's shard-admission deadline

	// Disk-degradation state (doc.go "Overload & admission control" has
	// the matrix row). The commit path moves diskState healthy→retrying
	// when a WAL append fails and retries with capped backoff; a
	// persistently failing disk flips the daemon read-only — commits shed
	// with "err disk: degraded; read-only" while reads keep answering from
	// the in-memory state — and a background probe flips it back to
	// healthy the moment the append path works again. Retry and probe
	// tuning are fields, not constants, so drills run in milliseconds.
	diskState      atomic.Int32
	diskRetries    atomic.Uint64 // WAL appends retried after a disk error
	diskROEnters   atomic.Uint64 // transitions into read-only mode
	diskROExits    atomic.Uint64 // probe-healed transitions back to healthy
	diskShed       atomic.Uint64 // commits shed while read-only
	diskProbing    atomic.Bool   // the probe goroutine exists (started lazily, once)
	diskRetryMax   int           // WAL append attempts before going read-only
	diskBackoff    time.Duration // first retry delay (doubles, capped)
	diskProbeEvery time.Duration // read-only recovery probe interval
	diskQuit       chan struct{} // closed at shutdown; stops the probe
}

// maxLineBytes caps one protocol line (the scanner buffer limit). A line
// past it is answered with "err proto: line too long" and the connection
// is cut: the stream cannot be resynchronized mid-line.
const maxLineBytes = 1 << 20

// Error-reply grammar. Every error reply is one line of the form
//
//	err <category>: <detail>
//
// where <category> is a closed enum clients dispatch on; the detail text
// is human-oriented and may change between releases, the categories do
// not. Each category implies one recovery action:
//
//	overloaded  shed by admission control; nothing changed; retry after
//	            the hinted delay
//	disk        durability degraded (read-only mode, or a disk operation
//	            failed); nothing changed; retry after the hinted delay
//	fenced      this node's role or authority cannot serve the request
//	            (standby, deposed or stale replica, failed promotion) —
//	            redirect to the primary or promote, retrying here is
//	            useless
//	staged      the staging area refused the request, or the staged
//	            batch was rejected at commit and dropped — fix the batch
//	            and re-stage
//	idle        the per-line read deadline expired; the connection is cut
//	proto       the request could not be served as issued — malformed,
//	            unknown, inapplicable to this deployment, or an admin
//	            operation that failed without tripping the disk or
//	            admission machinery
type errCategory string

const (
	catOverloaded errCategory = "overloaded"
	catDisk       errCategory = "disk"
	catFenced     errCategory = "fenced"
	catStaged     errCategory = "staged"
	catIdle       errCategory = "idle"
	catProto      errCategory = "proto"
)

// replyErr sends one grammar-conformant error reply.
func replyErr(reply func(string, ...any) bool, cat errCategory, format string, args ...any) bool {
	return reply("err %s: %s", cat, fmt.Sprintf(format, args...))
}

// Cluster-stat cache tuning: results are fresh for statTTL; refresh polls
// run in parallel across workers with statPollTimeout each.
const (
	statTTL         = time.Second
	statPollTimeout = time.Second
)

// Serving roles. A standby is read-only until "promote" flips it.
const (
	rolePrimary = "primary"
	roleStandby = "standby"
)

// Disk states, for the degradation contract above.
const (
	diskHealthy int32 = iota
	diskRetrying
	diskReadOnly
)

// diskBackoffCap bounds the doubling retry backoff of logWithRetry.
const diskBackoffCap = 200 * time.Millisecond

// errDiskDegraded marks a commit refused because the disk went
// read-only: nothing was logged or applied, so the staged batch is kept
// and the client may simply retry "commit".
var errDiskDegraded = errors.New("disk degraded")

func diskName(s int32) string {
	switch s {
	case diskRetrying:
		return "retrying"
	case diskReadOnly:
		return "read-only"
	default:
		return "healthy"
	}
}

// Standby tail states, for the read path's staleness gate.
const (
	tailNone     int32 = iota // not a standby
	tailLive                  // feed attached, replica current
	tailDegraded              // primary gone; serving last durable generation
	tailStale                 // replica diverged from a live primary; redirect
)

func tailName(s int32) string {
	switch s {
	case tailLive:
		return "live"
	case tailDegraded:
		return "degraded"
	case tailStale:
		return "stale"
	default:
		return "none"
	}
}

func newServer(d *incgraph.Durable, cl *incgraph.Cluster, ckptBytes int64, lim limits) *server {
	byClass := make(map[string]incgraph.Maintained, len(d.Engines()))
	for _, m := range d.Engines() {
		byClass[m.Class()] = m
	}
	s := &server{d: d, cl: cl, ckptBytes: ckptBytes, byClass: byClass,
		lim:        lim,
		commitGate: newGate(lim.commitSlots, lim.commitQueue, lim.opTimeout),
		readGate:   newGate(lim.readSlots, lim.readQueue, lim.opTimeout),
		role:       rolePrimary, conns: make(map[net.Conn]struct{}),
		diskRetryMax:   3,
		diskBackoff:    5 * time.Millisecond,
		diskProbeEvery: 250 * time.Millisecond,
		diskQuit:       make(chan struct{})}
	s.syncDurableMeta()
	return s
}

// syncDurableMeta refreshes the durable-metadata mirror stat and health
// read. Call after any durable mutation, holding commitMu.
func (s *server) syncDurableMeta() {
	s.walBytes.Store(s.d.WALBytes())
	s.walSeq.Store(s.d.WALSeq())
	s.epoch.Store(s.d.Epoch())
}

// cluster returns the current coordinator (promote installs one late).
func (s *server) cluster() *incgraph.Cluster {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cl
}

// track registers or unregisters a live connection.
func (s *server) track(conn net.Conn, add bool) {
	s.connMu.Lock()
	if add {
		s.conns[conn] = struct{}{}
		s.nconns.Add(1)
	} else if _, ok := s.conns[conn]; ok {
		delete(s.conns, conn)
		s.nconns.Add(-1)
	}
	s.connMu.Unlock()
}

// closeConns cuts every live connection (shutdown path).
func (s *server) closeConns() {
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
}

// serve accepts connections until a signal arrives, then closes the
// listener and the WAL. In-flight connections are cut; every acknowledged
// commit is already on disk, so an abrupt stop is as safe as a crash.
func (s *server) serve(addr string, stop <-chan struct{}) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("listening on %s", ln.Addr())
	done := make(chan struct{})
	go func() {
		<-stop
		close(done)
		ln.Close()
		// Abort any in-flight remote phase 1 before cutting connections:
		// closing the coordinator tears down its worker sessions, so a
		// commit blocked on a slow or dead worker fails immediately
		// instead of pinning the drain below for the full RPC deadline.
		// The commit was not acknowledged, so failing it is as safe as a
		// crash; the aborted shards resync on the next start.
		if cl := s.cluster(); cl != nil {
			cl.Close()
		}
		s.closeConns()
	}()
	var wg sync.WaitGroup
	backoff := 5 * time.Millisecond
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-done:
				wg.Wait()
				// The disk probe (not in wg) takes commitMu per tick; stop
				// it before the WAL closes under it.
				close(s.diskQuit)
				// commitMu too: a standby's feed goroutine (not in wg) may
				// be mid-apply; the WAL must not close under it.
				s.commitMu.Lock()
				defer s.commitMu.Unlock()
				s.mu.Lock()
				defer s.mu.Unlock()
				log.Printf("shutting down (gen %d, WAL seq %d)", s.d.Generation(), s.d.WALSeq())
				if s.cl != nil {
					s.cl.Close()
				}
				return s.d.Close()
			default:
			}
			// Transient accept failures (ECONNABORTED, EMFILE under a
			// connection burst) must not kill a long-lived daemon: back
			// off and retry; the condition clears as connections close.
			// Counted so "stat" exposes what the log line saw.
			s.acceptErrs.Add(1)
			log.Printf("accept: %v (retrying in %v)", err, backoff)
			select {
			case <-done:
				continue // drain via the shutdown branch above
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = 5 * time.Millisecond
		// Accept-time shedding: past the connection cap, answer with an
		// explicit overload error instead of serving (or letting the
		// backlog grow). The check is racy by a handful of connections
		// under a burst — the cap is a defense, not an invariant.
		if s.lim.maxConns > 0 && int(s.nconns.Load()) >= s.lim.maxConns {
			s.connsShed.Add(1)
			go func(c net.Conn) {
				c.SetWriteDeadline(time.Now().Add(2 * time.Second))
				fmt.Fprintf(c, "err overloaded: connection limit %d reached; retry in %dms\n",
					s.lim.maxConns, retryHintMS)
				c.Close()
			}(conn)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *server) handle(conn net.Conn) {
	s.track(conn, true)
	defer func() {
		s.track(conn, false)
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<16), maxLineBytes)
	out := bufio.NewWriter(conn)
	// Every flush runs under a write deadline: a client that stops
	// draining its socket is cut at the op timeout instead of holding the
	// handler goroutine (and whatever it has admitted) forever.
	flush := func() bool {
		if s.lim.opTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.lim.opTimeout))
			defer conn.SetWriteDeadline(time.Time{})
		}
		return out.Flush() == nil
	}
	reply := func(format string, args ...any) bool {
		fmt.Fprintf(out, format+"\n", args...)
		return flush()
	}
	var pending incgraph.Batch
	for {
		// Arm the per-line deadline when the wait for a line STARTS and do
		// not refresh it per byte: a byte-at-a-time slow-loris client hits
		// it exactly like an idle one.
		if s.lim.idle > 0 {
			conn.SetReadDeadline(time.Now().Add(s.lim.idle))
		}
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "+", "-":
			u, err := parseUpdate(fields)
			if err != nil {
				if !replyErr(reply, catProto, "%v", err) {
					return
				}
				continue
			}
			if s.lim.maxStaged > 0 && len(pending) >= s.lim.maxStaged {
				s.stagedShed.Add(1)
				if !replyErr(reply, catStaged, "limit %d reached; commit or abort first", s.lim.maxStaged) {
					return
				}
				continue
			}
			pending = append(pending, u)
			if !reply("ok staged %d", len(pending)) {
				return
			}
		case "abort":
			n := len(pending)
			pending = nil
			if !reply("ok aborted %d", n) {
				return
			}
		case "commit":
			// A shed keeps the staged batch: "retry in 100ms" must mean
			// re-sending "commit", not re-staging everything.
			shed, alive := s.commit(pending, reply)
			if !alive {
				return
			}
			if !shed {
				pending = nil
			}
		case "query", "answer":
			if len(fields) != 2 {
				if !replyErr(reply, catProto, "usage: %s CLASS", fields[0]) {
					return
				}
				continue
			}
			if !s.read(fields[0], fields[1], conn, out, reply) {
				return
			}
		case "stat":
			if !s.stat(reply) {
				return
			}
		case "health":
			if !s.health(reply) {
				return
			}
		case "promote":
			if !s.promote(reply) {
				return
			}
		case "scrub":
			if !s.scrub(reply) {
				return
			}
		case "move":
			if !s.move(fields, reply) {
				return
			}
		case "checkpoint":
			// commitMu, not mu: snapshot writing only reads the graph (no
			// mutator runs without commitMu), so readers keep answering
			// while the checkpoint's I/O drains.
			s.commitMu.Lock()
			err := s.d.Checkpoint()
			s.syncDurableMeta()
			epoch := s.epoch.Load()
			s.commitMu.Unlock()
			if err != nil {
				if !replyErr(reply, catDisk, "checkpoint failed: %v", err) {
					return
				}
				continue
			}
			if !reply("ok checkpoint epoch=%d", epoch) {
				return
			}
		case "quit":
			reply("ok bye")
			return
		default:
			if !replyErr(reply, catProto, "unknown command %q", fields[0]) {
				return
			}
		}
	}
	// The scan ended without a clean quit: tell the client why before the
	// deferred close when we can, and count what happened.
	switch err := sc.Err(); {
	case err == nil:
		// EOF: client hung up.
	case errors.Is(err, bufio.ErrTooLong):
		// The stream cannot be resynchronized mid-line, so the connection
		// must die — but with an explicit reply first, not a silent cut.
		s.linesTooLong.Add(1)
		replyErr(reply, catProto, "line too long; max %d bytes per line", maxLineBytes)
	default:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			// Per-line read deadline: idle or slow-loris. The read side is
			// dead but the write side usually is not; say why we hung up.
			s.idleDrops.Add(1)
			replyErr(reply, catIdle, "no complete line in %v", s.lim.idle)
		}
	}
}

// commit applies one staged batch and reports ΔO per class, then
// auto-checkpoints past the WAL threshold. The path is gated (bounded
// commits in flight, bounded queue, bounded wait — excess load is shed
// with an explicit overload reply) and split so the WAL fsync runs under
// commitMu but outside the write lock: a stalled disk backs up committers,
// who shed at the gate, while readers keep answering from the caches.
// Cluster commits additionally run phase 1 over the wire before any lock
// (the coordinator serializes conflicting batches by shard, shedding at
// the per-op deadline) and take the write lock only for the in-memory
// apply.
//
// The returned shed is true when the batch was refused by admission
// control (nothing was applied; the caller keeps it staged so a bare
// retry works); alive is false when the connection died mid-reply.
func (s *server) commit(batch incgraph.Batch, reply func(string, ...any) bool) (shed, alive bool) {
	if len(batch) == 0 {
		return false, replyErr(reply, catStaged, "nothing staged")
	}
	s.mu.RLock()
	role, cl, hub := s.role, s.cl, s.hub
	s.mu.RUnlock()
	if role == roleStandby {
		return false, replyErr(reply, catFenced, "standby is read-only; promote to accept commits")
	}
	// Read-only disk mode sheds before admission: the batch stays staged
	// (a bare "commit" retry works once the probe heals the disk) and the
	// gate's slots stay free for the probe-driven recovery.
	if s.diskState.Load() == diskReadOnly {
		s.diskShed.Add(1)
		return true, replyErr(reply, catDisk, "degraded; read-only; retry in %dms", retryHintMS)
	}
	if s.commitGate.enter() != nil {
		return true, replyErr(reply, catOverloaded, "commit queue full; retry in %dms", retryHintMS)
	}
	defer s.commitGate.exit()
	var deadline time.Time
	if s.lim.opTimeout > 0 {
		deadline = time.Now().Add(s.lim.opTimeout)
	}
	var (
		sums []incgraph.DeltaSummary
		err  error
	)
	var preGen, gen, seq uint64
	// Both deployment shapes drive Durable.Commit through the same two
	// hooks. logHook swaps the bare WAL append for the disk-degradation
	// retry loop; applyHook wraps the in-memory apply with the read lock,
	// the hub's feed numbering, and the auto-checkpoint. Neither takes
	// commitMu itself: the cluster case wraps each in it (the coordinator
	// calls them at separate points of its pipelined schedule), the local
	// case holds it around the whole Commit call.
	logHook := func(b incgraph.Batch, genAt uint64) error {
		preGen = genAt
		if lerr := s.logWithRetry(b, genAt); lerr != nil {
			s.syncDurableMeta()
			return lerr
		}
		return nil
	}
	applyHook := func(apply func() error) error {
		s.mu.Lock()
		aerr := apply()
		if aerr == nil && hub != nil {
			// Numbered inside the critical section so the hub's snapshot
			// callback sees seq and graph state move together.
			s.feedSeq++
			seq = s.feedSeq
		}
		var walBytes int64
		gen, walBytes = s.d.Generation(), s.d.WALBytes()
		s.mu.Unlock()
		if aerr == nil && s.ckptBytes > 0 && walBytes > s.ckptBytes {
			// Checkpoint I/O under commitMu only: snapshot writing reads
			// the graph, which is safe alongside concurrent readers.
			if cerr := s.d.Checkpoint(); cerr != nil {
				log.Printf("auto-checkpoint failed: %v", cerr)
			} else {
				log.Printf("auto-checkpoint at WAL %d bytes (epoch %d)", walBytes, s.d.Epoch())
			}
		}
		s.syncDurableMeta()
		return aerr
	}
	switch {
	case cl != nil:
		// Cluster mode: the coordinator plans and validates the batch,
		// pipelines the WAL append (logHook) alongside phase 1, and calls
		// the apply hook inside its serialized commit section — where its
		// OnCommit hook (wired to the hub's Feed in main) runs the standby
		// feed in commit order while the batch's shards are still held.
		// The coordinator's log mutex serializes logHook-through-applyHook
		// windows across batches, so taking commitMu separately in each
		// hook cannot invert WAL order against commit order. The per-op
		// deadline caps both the shard-admission wait and the phase-1
		// remote round trips.
		sums, err = s.d.Commit(batch, incgraph.ApplyOptions{
			Via:      cl,
			Deadline: deadline,
			Log: func(b incgraph.Batch, genAt uint64) error {
				s.commitMu.Lock()
				defer s.commitMu.Unlock()
				return logHook(b, genAt)
			},
			Exclusive: func(apply func() error) error {
				s.commitMu.Lock()
				defer s.commitMu.Unlock()
				return applyHook(apply)
			},
		})
		if errors.Is(err, incgraph.ErrClusterOverloaded) {
			s.clusterShed.Add(1)
			return true, replyErr(reply, catOverloaded, "shards busy past the op deadline; retry in %dms", retryHintMS)
		}
	default:
		// Single process: commitMu around the whole validate+log+apply
		// keeps WAL order equal to commit order, and (with standbys) the
		// post-apply feed in commit order too — s.mu alone would let two
		// committers' post-unlock feeds invert.
		s.commitMu.Lock()
		sums, err = s.d.Commit(batch, incgraph.ApplyOptions{
			Log:       logHook,
			Exclusive: applyHook,
		})
		if err == nil && hub != nil {
			hub.Feed(seq, preGen, gen, batch)
		}
		s.commitMu.Unlock()
	}
	if err != nil {
		if errors.Is(err, errDiskDegraded) {
			// The append retries were exhausted and the daemon just went
			// read-only. Nothing was logged or applied, so this commit is a
			// shed like the ones the read-only check above refuses: the
			// batch stays staged and the same reply tells the client why.
			s.diskShed.Add(1)
			return true, replyErr(reply, catDisk, "degraded; read-only; retry in %dms", retryHintMS)
		}
		if errors.Is(err, incgraph.ErrClusterFenced) {
			// A worker at a higher fencing term refused phase 1: this
			// coordinator was deposed. The batch was not applied anywhere.
			return false, replyErr(reply, catFenced, "commit rejected: %v", err)
		}
		if !errors.Is(err, incgraph.ErrBadUpdate) {
			s.commitErrs.Add(1)
			log.Printf("commit failed: %v", err)
		}
		return false, replyErr(reply, catStaged, "commit failed: %v", err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "ok applied %d gen=%d", len(batch), gen)
	for i, m := range s.d.Engines() {
		fmt.Fprintf(&sb, " %s=%s", m.Class(), sums[i])
	}
	return false, reply("%s", sb.String())
}

// logWithRetry is the WAL append under the disk-degradation contract:
// a failed append is retried with capped exponential backoff (a wedged
// WAL is first healed by a checkpoint, which starts a fresh log), and
// exhausting the retries flips the daemon into read-only mode and
// returns errDiskDegraded. Nothing is acknowledged unless the append
// truly succeeded — the WAL itself rolls back seq and truncates on
// failure, so "acked ⇒ durable" holds across every retry. The caller
// holds commitMu and has already validated the batch (Durable.Commit
// plans or validates before its Log hook runs), so the append is
// LogPlanned with the caller's generation stamp.
func (s *server) logWithRetry(b incgraph.Batch, gen uint64) error {
	err := s.d.LogPlanned(b, gen)
	if err == nil {
		return nil
	}
	backoff := s.diskBackoff
	for attempt := 1; attempt < s.diskRetryMax; attempt++ {
		s.diskState.CompareAndSwap(diskHealthy, diskRetrying)
		s.diskRetries.Add(1)
		log.Printf("WAL append failed (attempt %d/%d, retrying in %v): %v",
			attempt, s.diskRetryMax, backoff, err)
		time.Sleep(backoff)
		if backoff *= 2; backoff > diskBackoffCap {
			backoff = diskBackoffCap
		}
		if s.d.WALBroken() != nil {
			// A mid-append failure wedges the WAL (its tail is suspect);
			// only a checkpoint — snapshot plus fresh log — clears it.
			// commitMu is held, so the checkpoint cannot race a commit.
			if cerr := s.d.Checkpoint(); cerr != nil {
				err = cerr
				continue
			}
		}
		if err = s.d.LogPlanned(b, gen); err == nil {
			s.diskState.CompareAndSwap(diskRetrying, diskHealthy)
			return nil
		}
	}
	s.enterReadOnly(err)
	return fmt.Errorf("%w: %v", errDiskDegraded, err)
}

// enterReadOnly flips the daemon into read-only mode and makes sure the
// recovery probe is running. Reads keep answering from the in-memory
// state (it is consistent: failed appends were rolled back, nothing
// unacknowledged was applied); commits shed until the probe heals.
func (s *server) enterReadOnly(cause error) {
	s.diskState.Store(diskReadOnly)
	s.diskROEnters.Add(1)
	log.Printf("disk degraded; entering read-only mode: %v", cause)
	if s.diskProbing.CompareAndSwap(false, true) {
		go s.probeDisk()
	}
}

// probeDisk is the read-only recovery loop: while the daemon is
// read-only it exercises the WAL append path (checkpoint if the WAL is
// wedged, fsync otherwise) once per diskProbeEvery, and the first
// success flips the daemon back to healthy — recovery is automatic, no
// restart and no operator action. The goroutine is started once, on the
// first degradation, and idles between incidents until shutdown.
func (s *server) probeDisk() {
	t := time.NewTicker(s.diskProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-s.diskQuit:
			return
		case <-t.C:
		}
		if s.diskState.Load() != diskReadOnly {
			continue
		}
		s.commitMu.Lock()
		var err error
		if s.d.WALBroken() != nil {
			err = s.d.Checkpoint()
		} else {
			err = s.d.SyncWAL()
		}
		s.syncDurableMeta()
		s.commitMu.Unlock()
		if err == nil && s.diskState.CompareAndSwap(diskReadOnly, diskHealthy) {
			s.diskROExits.Add(1)
			log.Printf("disk recovered; leaving read-only mode")
		}
	}
}

// read serves "query" (cardinality) and "answer" (full canonical dump).
// The read gate and the read lock cover only the in-memory render — never
// the socket writes, so a stalled client can't hold a slot or the lock
// and wedge commits (and, through the RWMutex writer queue, every other
// reader).
func (s *server) read(cmd, class string, conn net.Conn, out *bufio.Writer, reply func(string, ...any) bool) bool {
	// Replica-read gate: a standby serves reads while its feed is live
	// (the replica is provably current) and keeps serving from the last
	// durable generation when the primary is gone — but a replica that
	// diverged from a live primary redirects instead of answering wrong.
	if s.tail.Load() == tailStale {
		return replyErr(reply, catFenced, "stale replica; redirect %s", s.primaryAddr)
	}
	m, ok := s.byClass[class]
	if !ok {
		return replyErr(reply, catProto, "no standing query for class %q", class)
	}
	if s.readGate.enter() != nil {
		return replyErr(reply, catOverloaded, "read queue full; retry in %dms", retryHintMS)
	}
	s.mu.RLock()
	size := m.Size()
	var dump bytes.Buffer
	var err error
	if cmd == "answer" {
		err = m.WriteAnswer(&dump)
	}
	s.mu.RUnlock()
	s.readGate.exit()
	if err != nil {
		return reply("err answer %s: %v", class, err)
	}
	if !reply("ok %s %d", class, size) {
		return false
	}
	if cmd == "query" {
		return true
	}
	// The dump can be many buffer-fulls; the whole drain runs under one
	// write deadline so a stalled client is cut at the op timeout.
	if s.lim.opTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.lim.opTimeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	if _, err := out.Write(dump.Bytes()); err != nil {
		return false
	}
	fmt.Fprintln(out, ".")
	return out.Flush() == nil
}

func (s *server) stat(reply func(string, ...any) bool) bool {
	classes := make([]string, 0, len(s.d.Engines()))
	for _, m := range s.d.Engines() {
		classes = append(classes, m.Class())
	}
	// Render under the read lock, write to the socket after (see read).
	// Durable metadata comes from the mirror: the WAL mutates under
	// commitMu, not mu, so the store itself must not be read here.
	s.mu.RLock()
	g := s.d.Graph()
	role, cl, hub := s.role, s.cl, s.hub
	line := fmt.Sprintf("ok role=%s nodes=%d edges=%d gen=%d shards=%d epoch=%d walseq=%d walbytes=%d classes=%s",
		role, g.NumNodes(), g.NumEdges(), g.Generation(), g.NumShards(),
		s.epoch.Load(), s.walSeq.Load(), s.walBytes.Load(), strings.Join(classes, ","))
	s.mu.RUnlock()
	// Error counters: what the accept-loop and commit-path logs saw, as
	// machine-readable fields (the crash drill asserts their presence).
	line += fmt.Sprintf(" accept_errs=%d commit_errs=%d", s.acceptErrs.Load(), s.commitErrs.Load())
	// Overload counters: every shed, refused stage, oversized line and
	// deadline drop, so graceful degradation is observable, not silent.
	line += fmt.Sprintf(" conns=%d conns_shed=%d staged_shed=%d lines_too_long=%d idle_drops=%d",
		s.nconns.Load(), s.connsShed.Load(), s.stagedShed.Load(),
		s.linesTooLong.Load(), s.idleDrops.Load())
	ca, cs, ct := s.commitGate.stats()
	ra, rs, rt := s.readGate.stats()
	line += fmt.Sprintf(" commit_admitted=%d commit_shed=%d commit_timeouts=%d commit_cluster_shed=%d read_admitted=%d read_shed=%d read_timeouts=%d",
		ca, cs, ct, s.clusterShed.Load(), ra, rs, rt)
	// Disk-degradation state and counters: every retried append and every
	// read-only transition is observable, not just logged.
	line += fmt.Sprintf(" disk=%s disk_retries=%d disk_ro_enters=%d disk_ro_exits=%d disk_shed=%d",
		diskName(s.diskState.Load()), s.diskRetries.Load(),
		s.diskROEnters.Load(), s.diskROExits.Load(), s.diskShed.Load())
	// Process runtime gauges, for the load generator's soak sampler.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	line += fmt.Sprintf(" goroutines=%d heap_bytes=%d", runtime.NumGoroutine(), ms.HeapAlloc)
	if cl != nil {
		sts, age := s.cachedClusterStats(cl)
		up, retries := 0, uint64(0)
		var replicated, gaps uint64
		for _, st := range sts {
			if !st.Down {
				up++
			}
			retries += st.Retries
			replicated += st.Remote.Replicated
			gaps += st.Remote.ReplGaps
		}
		line += fmt.Sprintf(" cluster_workers=%d/%d cluster_applied=%d cluster_remote_errs=%d cluster_resyncs=%d cluster_retries=%d cluster_term=%d stat_age_ms=%d",
			up, cl.NumWorkers(), cl.Applied(), cl.RemoteErrors(), cl.Resyncs(), retries, cl.Term(), age.Milliseconds())
		line += fmt.Sprintf(" repl=%s repl_seq=%d repl_shipped=%d repl_degraded=%d repl_replicated=%d repl_gaps=%d",
			s.repl, cl.ReplSeq(), cl.ReplShipped(), cl.ReplDegraded(), replicated, gaps)
		sc := cl.ScrubCounters()
		line += fmt.Sprintf(" scrub_passes=%d scrub_checked=%d scrub_mismatches=%d scrub_heals=%d scrub_skips=%d",
			sc.Passes, sc.Checked, sc.Mismatches, sc.Heals, sc.Skips)
	}
	if hub != nil {
		line += fmt.Sprintf(" standbys=%d", hub.Standbys())
	}
	if st := s.standby; st != nil {
		line += fmt.Sprintf(" tail=%s tail_term=%d tail_seq=%d tail_gen=%d",
			tailName(s.tail.Load()), st.Term(), st.LastSeq(), st.Gen())
	}
	return reply("%s", line)
}

// cachedClusterStats answers stat's worker section from a bounded-
// staleness cache: polls run at most once per statTTL, in parallel across
// workers with statPollTimeout each, and in the background once a first
// result exists — so "stat" stays cheap and bounded even while a worker
// is dead or stalled (exactly when operators run it in a tight loop).
func (s *server) cachedClusterStats(cl *incgraph.Cluster) ([]incgraph.ClusterStat, time.Duration) {
	s.statMu.Lock()
	if s.statCache != nil && time.Since(s.statAt) < statTTL {
		st, age := s.statCache, time.Since(s.statAt)
		s.statMu.Unlock()
		return st, age
	}
	if s.statBusy {
		// A refresh is already in flight; serve the stale cache rather
		// than stack a second poll (or a wait) on top of it.
		st, age := s.statCache, time.Since(s.statAt)
		s.statMu.Unlock()
		return st, age
	}
	s.statBusy = true
	first := s.statCache == nil
	s.statMu.Unlock()
	refresh := func() []incgraph.ClusterStat {
		st := cl.StatsWithin(statPollTimeout)
		s.statMu.Lock()
		s.statCache, s.statAt, s.statBusy = st, time.Now(), false
		s.statMu.Unlock()
		return st
	}
	if first {
		// No result yet: poll synchronously — still bounded by the poll
		// timeout — so the very first stat is not empty.
		return refresh(), 0
	}
	go refresh()
	s.statMu.Lock()
	st, age := s.statCache, time.Since(s.statAt)
	s.statMu.Unlock()
	return st, age
}

// health is the cheap liveness probe: one line of role and position, no
// worker polling (stat's per-worker poll can take seconds during an
// incident, exactly when probes must not).
func (s *server) health(reply func(string, ...any) bool) bool {
	s.mu.RLock()
	role, cl, hub := s.role, s.cl, s.hub
	gen, walSeq := s.d.Generation(), s.walSeq.Load()
	s.mu.RUnlock()
	line := fmt.Sprintf("ok role=%s gen=%d walseq=%d disk=%s",
		role, gen, walSeq, diskName(s.diskState.Load()))
	if cl != nil {
		line += fmt.Sprintf(" term=%d", cl.Term())
	}
	if hub != nil {
		line += fmt.Sprintf(" standbys=%d", hub.Standbys())
	}
	if s.standby != nil {
		line += fmt.Sprintf(" tail=%s tail_seq=%d", tailName(s.tail.Load()), s.standby.LastSeq())
	}
	return reply("%s", line)
}

// scrub runs one anti-entropy pass over every shard (cluster mode only):
// each worker replica is verified byte-for-byte against the
// coordinator-authoritative state — parcel bytes and the on-disk replica
// log — and any divergent shard is re-placed from the authoritative
// parcel. Busy shards are skipped, not waited for, so the pass is
// bounded even under commit load.
func (s *server) scrub(reply func(string, ...any) bool) bool {
	cl := s.cluster()
	if cl == nil {
		return replyErr(reply, catProto, "scrub: not in cluster mode")
	}
	rep, err := cl.Scrub()
	if err != nil {
		return replyErr(reply, catProto, "scrub failed: %v", err)
	}
	return reply("ok scrub checked=%d skipped=%d mismatches=%d heals=%d",
		rep.Checked, rep.Skipped, rep.Mismatches, rep.Heals)
}

// move re-places one shard onto another worker by shipping its snapshot
// segment (cluster mode only) — the rebalance drills drive it under
// live commit traffic.
func (s *server) move(fields []string, reply func(string, ...any) bool) bool {
	cl := s.cluster()
	if cl == nil {
		return replyErr(reply, catProto, "move: not in cluster mode")
	}
	if len(fields) != 3 {
		return replyErr(reply, catProto, "usage: move SHARD WORKER")
	}
	shard, err1 := strconv.Atoi(fields[1])
	w, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil {
		return replyErr(reply, catProto, "usage: move SHARD WORKER")
	}
	if err := cl.MoveShard(shard, w); err != nil {
		return replyErr(reply, catProto, "move failed: %v", err)
	}
	return reply("ok moved shard=%d worker=%d", shard, w)
}

// promote flips a standby into a primary: the replica's durable state
// becomes authoritative, and if shard-worker addresses were configured a
// coordinator is attached over them at the deposed primary's term+1 —
// re-placing every shard and fencing the old coordinator's sessions.
// Reads block for the attach (it ships shard segments); promotion is a
// failover moment, not a steady-state operation.
func (s *server) promote(reply func(string, ...any) bool) bool {
	// commitMu first: a feed apply holds it for its whole body, so once we
	// have it no fed batch can slip in after the role check below.
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.mu.Lock()
	if s.role != roleStandby {
		s.mu.Unlock()
		return replyErr(reply, catFenced, "already primary")
	}
	// Cut the tail first so a live feed cannot race the role flip; the
	// apply callback also rejects feeds once the role is primary.
	if s.tailConn != nil {
		s.tailConn.Close()
	}
	term := s.standby.Term() + 1
	var links []incgraph.ClusterLink
	for _, a := range s.workerAddrs {
		link, err := incgraph.DialClusterWorker(a)
		if err != nil {
			s.mu.Unlock()
			return replyErr(reply, catFenced, "promote failed: worker %s: %v", a, err)
		}
		links = append(links, link)
	}
	if len(links) > 0 {
		cl, err := incgraph.NewCluster(s.d.Graph(), links,
			incgraph.WithClusterTerm(term), incgraph.WithReplication(s.repl))
		if err != nil {
			for _, l := range links {
				l.Conn.Close()
			}
			s.mu.Unlock()
			return replyErr(reply, catFenced, "promote failed: %v", err)
		}
		s.cl = cl
	}
	s.role = rolePrimary
	s.tail.Store(tailNone)
	s.mu.Unlock()
	log.Printf("promoted to primary at term %d (%d workers)", term, len(links))
	return reply("ok promoted term=%d workers=%d", term, len(links))
}

// parseUpdate decodes "+ v w [vlabel wlabel]" / "- v w" (the update-file
// format of cmd/incgraph).
func parseUpdate(fields []string) (incgraph.Update, error) {
	if len(fields) < 3 {
		return incgraph.Update{}, fmt.Errorf("want '+|- v w [vlabel wlabel]'")
	}
	v, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return incgraph.Update{}, fmt.Errorf("bad source id: %v", err)
	}
	w, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return incgraph.Update{}, fmt.Errorf("bad target id: %v", err)
	}
	if fields[0] == "-" {
		return incgraph.Del(incgraph.NodeID(v), incgraph.NodeID(w)), nil
	}
	vl, wl := "", ""
	if len(fields) > 3 {
		vl = fields[3]
	}
	if len(fields) > 4 {
		wl = fields[4]
	}
	return incgraph.InsNew(incgraph.NodeID(v), incgraph.NodeID(w), vl, wl), nil
}
