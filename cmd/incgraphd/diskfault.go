package main

import (
	"fmt"
	"strconv"
	"strings"

	"incgraph"
)

// parseDiskFault builds the seeded FaultFS the -disk-fault flag
// describes. The grammar is "seed=N;RULE;RULE;...", each RULE a
// comma-separated list of key=value pairs:
//
//	op=open|create|write|sync|truncate|rename|remove|syncdir
//	path=SUBSTR      match against the normalized base name
//	index=N          0-based Nth selector match (-1, the default: every)
//	count=N          fire at most N times (0: unlimited)
//	prob=F           fire with probability F from the seeded source
//	keep=N           bytes landed before a partial-write kind fails
//	kind=eio|enospc|short|torn|syncfail|synclie|crash|powerfail
//
// Example: "seed=7;op=sync,path=wal,count=3,kind=syncfail" fails the
// next three WAL fsyncs. The seed pins rule order AND the prob draws, so
// the same spec over the same traffic fires identically run to run.
func parseDiskFault(spec string) (*incgraph.FaultFS, error) {
	var seed int64
	var rules []incgraph.FSRule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok && !strings.Contains(part, ",") {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("-disk-fault: bad seed %q", v)
			}
			seed = n
			continue
		}
		r := incgraph.FSRule{Index: -1}
		for _, kv := range strings.Split(part, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("-disk-fault: want key=value, got %q", kv)
			}
			var err error
			switch k {
			case "op":
				r.Op = v
			case "path":
				r.Path = v
			case "index":
				r.Index, err = strconv.Atoi(v)
			case "count":
				r.Count, err = strconv.Atoi(v)
			case "keep":
				r.Keep, err = strconv.Atoi(v)
			case "prob":
				r.Prob, err = strconv.ParseFloat(v, 64)
			case "kind":
				r.Kind, err = parseFaultKind(v)
			default:
				return nil, fmt.Errorf("-disk-fault: unknown key %q in %q", k, part)
			}
			if err != nil {
				return nil, fmt.Errorf("-disk-fault: bad %s=%q: %v", k, v, err)
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("-disk-fault: no rules in %q", spec)
	}
	return incgraph.NewFaultFS(seed, rules...), nil
}

// parseFaultKind maps a -disk-fault kind name to its FaultKind.
func parseFaultKind(name string) (incgraph.FaultKind, error) {
	switch strings.ToLower(name) {
	case "eio":
		return incgraph.FaultEIO, nil
	case "enospc":
		return incgraph.FaultENOSPC, nil
	case "short", "shortwrite":
		return incgraph.FaultShortWrite, nil
	case "torn", "tornwrite":
		return incgraph.FaultTornWrite, nil
	case "syncfail":
		return incgraph.FaultSyncFail, nil
	case "synclie":
		return incgraph.FaultSyncLie, nil
	case "crash":
		return incgraph.FaultCrash, nil
	case "powerfail":
		return incgraph.FaultPowerFail, nil
	}
	return 0, fmt.Errorf("unknown kind (want eio|enospc|short|torn|syncfail|synclie|crash|powerfail)")
}
