// Command incgraphd is the long-lived serving daemon: it keeps a graph
// and a set of standing queries (KWS, RPQ, SCC, ISO) maintained
// incrementally under a continuous update stream, durably.
//
// Every committed batch is appended to a write-ahead log before it is
// applied (fsync policy via -fsync), checkpoints fold the log into a
// per-shard binary snapshot (on demand or past -checkpoint-bytes), and on
// restart the daemon recovers by snapshot-load + WAL replay through the
// engines' normal repair path — answers come back byte-identical to the
// uninterrupted run, so a SIGKILL costs recovery time, never correctness.
//
// Usage:
//
//	incgraphd -store DIR [-graph g.txt|g.snap] [-addr :7421]
//	          [-kws "a,b" -bound 2] [-rpq "a.b*.c"] [-iso pattern.txt] [-scc]
//	          [-shards N] [-workers N] [-fsync always|none]
//	          [-checkpoint-bytes N]
//	          [-cluster addr1,addr2 | -cluster-spawn N]
//	          [-repl off|async|quorum] [-term N] [-hub :7423]
//	          [-scrub-every D] [-disk-fault SPEC]
//	          [-max-conns N] [-idle-timeout D] [-op-timeout D]
//	          [-max-staged N] [-commit-inflight N] [-commit-queue N]
//	          [-read-inflight N] [-read-queue N]
//	incgraphd worker [-addr :7431] [-logdir DIR [-fsync always|none]]
//	incgraphd standby -primary HOST:7423 -store DIR [-addr :7422]
//	          [engine flags] [-ttl 2s] [-cluster addr1,addr2]
//	          [-repl off|async|quorum] [overload flags as above]
//
// On first start -graph seeds the store (text or .snap format, sniffed);
// later starts recover from the store and ignore -graph. The standing
// queries must be configured on every start (they are compiled state, not
// stored state; the store holds the graph and its update history).
//
// # Cluster mode
//
// "incgraphd worker" runs a shard worker: a process that owns a subset of
// the graph's shards behind the framed RPC protocol of internal/cluster
// and applies phase 1 of every committed batch for them. The serving
// daemon attaches workers with -cluster (comma-separated addresses of
// already-running workers) or -cluster-spawn N (N worker child processes
// on loopback ports); shards are placed round-robin by shipping snapshot
// segments. Commits then run the distributed two-phase protocol: phase 1
// fans out to the workers in parallel, and only after every worker
// acknowledged does the usual durable path run, so answers are
// byte-identical to a single-process daemon. A worker crash fails the
// in-flight commit atomically ("err staged: commit failed: ..."); once
// the worker is back on its address, the next commit reattaches it and
// re-ships its shards from the authoritative graph.
//
// # High availability
//
// -repl async|quorum ships every committed batch's WAL record to the
// workers owning its shards (per-shard replica logs; file-backed with the
// worker's -logdir); -term sets the coordinator's fencing term; -hub
// exposes a feed address for standbys. "incgraphd standby" tails that
// feed into its own fresh store: the handshake snapshot seeds the store,
// every fed record runs the normal durable apply, and the standby serves
// the read side of the line protocol the whole time — current reads while
// the feed is live, last-durable-generation reads once the primary dies,
// and a redirect (never a stale answer) if the replica diverged from a
// live primary. When the primary is gone, "promote" on the standby
// attaches a coordinator at term+1 over its -cluster workers: every shard
// is re-placed, the deposed primary's sessions are fenced ("err fenced:
// commit rejected: ..."), and answers continue byte-identical to an
// uninterrupted run. "health" reports role, term, and tail state without
// polling workers.
//
// The protocol is line-oriented over TCP — one command per line, one
// "ok ..."/"err ..." reply line (answer dumps are multi-line, dot-
// terminated). Error replies follow a fixed grammar, "err <category>:
// <detail>", with a closed category enum clients dispatch on —
// overloaded, disk, fenced, staged, idle, proto (see the server's
// errCategory documentation for the recovery action each implies).
// Updates are staged per connection and applied atomically on commit:
//
//	"+ v w [vlabel wlabel]"  stage an edge insertion (labels for new nodes)
//	"- v w"                  stage an edge deletion
//	commit                   validate, log, apply the staged batch; report ΔO
//	abort                    drop the staged batch
//	query CLASS              answer cardinality for kws|rpq|scc|iso
//	answer CLASS             full canonical answer, dot-terminated
//	stat                     graph/WAL/engine/cluster/replication counters
//	health                   cheap probe: role, term, tail, disk state
//	promote                  standby only: take over as primary at term+1
//	scrub                    cluster only: one anti-entropy pass, heal divergence
//	move S W                 cluster only: re-place shard S onto worker W
//	checkpoint               force a snapshot + fresh WAL
//	quit                     close the connection
//
// Reads are served under the read-parallel contract: queries take a read
// lock and hit the engines' generation-stamped caches, so any number of
// connections read concurrently between commits; commits and checkpoints
// are exclusive.
//
// # Overload behavior
//
// The daemon degrades explicitly, never silently: past -max-conns new
// connections get "err overloaded" at accept; a connection that cannot
// deliver a full line within -idle-timeout (however slowly it trickles
// bytes) or drain a reply within -op-timeout is cut; staging past
// -max-staged is refused; and commit/query admission is gated (bounded in
// flight, bounded queue, bounded wait) with excess load shed as
// "err overloaded: ...; retry in 100ms". Every shed, refused stage,
// oversized line and deadline drop is a counter in "stat". See the
// package documentation's "Overload & admission control" section for the
// degradation contract.
//
// # Disk degradation & anti-entropy
//
// A failing disk degrades the daemon the same way overload does:
// explicitly. A failed WAL append is retried with capped backoff (the
// WAL rolls back on failure, so nothing is acknowledged that is not
// durable); a disk that keeps failing flips the daemon into advertised
// read-only mode — commits shed with "err disk: degraded; read-only"
// while reads keep answering — and a background probe flips it back to
// healthy the moment appends work again, with no restart. "stat" and
// "health" expose disk=healthy|retrying|read-only plus retry and
// transition counters. -disk-fault arms a seeded fault-injection layer
// under the store (EIO, ENOSPC, torn writes, failed or lying fsync,
// crash) for reproducible drills: same seed, same traffic, same faults.
//
// In cluster mode -scrub-every starts the anti-entropy scrubber: each
// tick verifies one shard's worker replica byte-for-byte against the
// coordinator-authoritative state (including the worker's on-disk
// replica log) and re-places any shard that diverged — bit rot is found
// and healed in the background, not on the next unlucky read. "scrub"
// runs one full pass on demand; scrub_* counters appear in "stat".
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"incgraph"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		if err := runWorker(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "incgraphd worker: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "standby" {
		if err := runStandby(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "incgraphd standby: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var (
		storeDir     = flag.String("store", "", "store directory (required; created on first start)")
		graphPath    = flag.String("graph", "", "initial graph file, text or .snap (first start only)")
		addr         = flag.String("addr", ":7421", "TCP listen address")
		kwsQuery     = flag.String("kws", "", "standing KWS query: comma-separated keywords")
		bound        = flag.Int("bound", 2, "KWS distance bound b")
		rpqQuery     = flag.String("rpq", "", "standing RPQ query expression")
		isoPath      = flag.String("iso", "", "standing ISO pattern graph file")
		scc          = flag.Bool("scc", false, "maintain strongly connected components")
		shards       = flag.Int("shards", 0, "graph shard count (0 = default; first start only)")
		workers      = flag.Int("workers", 0, "engine worker pool size (0 = all cores)")
		fsync        = flag.String("fsync", "always", "WAL fsync policy: always|none")
		ckptBytes    = flag.Int64("checkpoint-bytes", 64<<20, "auto-checkpoint when the WAL exceeds this size (0 = manual only)")
		clusterAddrs = flag.String("cluster", "", "comma-separated shard-worker addresses to attach (cluster mode)")
		clusterSpawn = flag.Int("cluster-spawn", 0, "spawn N shard-worker child processes on loopback ports (cluster mode)")
		term         = flag.Uint64("term", 1, "coordinator fencing term (a promoted standby attaches at its primary's term+1)")
		repl         = flag.String("repl", "off", "cluster log-shipping policy: off|async|quorum")
		hubAddr      = flag.String("hub", "", "listen address for standby feed connections (HA primary)")
		scrubEvery   = flag.Duration("scrub-every", 0, "background anti-entropy interval: verify one shard replica per tick (0 = off; cluster mode)")
		diskFault    = flag.String("disk-fault", "", "seeded disk-fault injection spec for drills, e.g. \"seed=7;op=sync,path=wal,count=3,kind=syncfail\"")
	)
	lim := limitFlags(flag.CommandLine)
	flag.Parse()

	if err := run(config{
		storeDir:     *storeDir,
		graphPath:    *graphPath,
		addr:         *addr,
		kwsQuery:     *kwsQuery,
		bound:        *bound,
		rpqQuery:     *rpqQuery,
		isoPath:      *isoPath,
		scc:          *scc,
		shards:       *shards,
		workers:      *workers,
		fsync:        *fsync,
		ckptBytes:    *ckptBytes,
		clusterAddrs: *clusterAddrs,
		clusterSpawn: *clusterSpawn,
		term:         *term,
		repl:         *repl,
		hubAddr:      *hubAddr,
		scrubEvery:   *scrubEvery,
		diskFault:    *diskFault,
		lim:          *lim,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "incgraphd: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	storeDir, graphPath, addr   string
	kwsQuery, rpqQuery, isoPath string
	bound, shards, workers      int
	scc                         bool
	fsync                       string
	ckptBytes                   int64
	clusterAddrs                string
	clusterSpawn                int
	term                        uint64
	repl                        string
	hubAddr                     string
	scrubEvery                  time.Duration
	diskFault                   string
	lim                         limits
}

// parseSync maps the -fsync flag to a WAL sync policy.
func parseSync(name string) (incgraph.SyncPolicy, error) {
	switch strings.ToLower(name) {
	case "always":
		return incgraph.SyncAlways, nil
	case "none":
		return incgraph.SyncNone, nil
	default:
		return 0, fmt.Errorf("unknown -fsync policy %q (want always|none)", name)
	}
}

// parseRepl maps the -repl flag to a log-shipping policy.
func parseRepl(name string) (incgraph.ReplPolicy, error) {
	switch strings.ToLower(name) {
	case "", "off":
		return incgraph.ReplOff, nil
	case "async":
		return incgraph.ReplAsync, nil
	case "quorum":
		return incgraph.ReplQuorum, nil
	default:
		return 0, fmt.Errorf("unknown -repl policy %q (want off|async|quorum)", name)
	}
}

// runWorker is the "incgraphd worker" subcommand: a shard worker serving
// the cluster RPC protocol until SIGTERM/SIGINT.
func runWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	addr := fs.String("addr", ":7431", "TCP listen address for the cluster RPC protocol")
	logDir := fs.String("logdir", "", "directory for file-backed per-shard replica logs (empty = in-memory)")
	fsync := fs.String("fsync", "none", "replica-log fsync policy: always|none")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ln, err := incgraph.ListenCluster(*addr)
	if err != nil {
		return err
	}
	log.Printf("worker listening on %s", ln.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		ln.Close()
	}()
	w := incgraph.NewClusterWorker()
	if *logDir != "" {
		sync, err := parseSync(*fsync)
		if err != nil {
			return err
		}
		if err := w.SetLogDir(*logDir, sync); err != nil {
			return err
		}
		log.Printf("replica logs in %s (fsync %s)", *logDir, strings.ToLower(*fsync))
	}
	if err := w.Serve(ln); err != nil && !isClosed(err) {
		return err
	}
	log.Printf("worker shutting down")
	return nil
}

// isClosed reports the listener-closed error a clean shutdown produces.
func isClosed(err error) bool { return errors.Is(err, net.ErrClosed) }

// spawnWorkers launches n "incgraphd worker" child processes on loopback
// ports and waits for each to accept. The returned stop kills them.
func spawnWorkers(n int) (addrs []string, stop func(), err error) {
	self, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	var procs []*exec.Cmd
	stop = func() {
		for _, p := range procs {
			p.Process.Kill()
			p.Wait()
		}
	}
	for i := 0; i < n; i++ {
		// Reserve a free loopback port, release it, hand it to the child.
		// The tiny window is acceptable for a local dev topology.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		addr := ln.Addr().String()
		ln.Close()
		cmd := exec.Command(self, "worker", "-addr", addr)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			stop()
			return nil, nil, err
		}
		procs = append(procs, cmd)
		if err := waitForAddr(addr, 10*time.Second); err != nil {
			stop()
			return nil, nil, fmt.Errorf("spawned worker on %s never came up: %w", addr, err)
		}
		addrs = append(addrs, addr)
	}
	return addrs, stop, nil
}

// waitForAddr polls until a TCP dial to addr succeeds.
func waitForAddr(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// attachEngines builds the standing-query engines the flags describe on
// clones of the durable's (snapshot-time) graph and attaches them, ready
// for Recover to replay the WAL through. Shared by the primary and
// standby paths — a standby must run the same engines to serve the same
// answers.
func attachEngines(d *incgraph.Durable, cfg config) error {
	if cfg.kwsQuery != "" {
		q := incgraph.KWSQuery{Keywords: strings.Split(cfg.kwsQuery, ","), Bound: cfg.bound}
		ix, err := incgraph.NewKWS(d.Graph().Clone(), q)
		if err != nil {
			return fmt.Errorf("kws: %w", err)
		}
		if err := d.Attach(incgraph.MaintainKWS(ix)); err != nil {
			return err
		}
	}
	if cfg.rpqQuery != "" {
		e, err := incgraph.NewRPQ(d.Graph().Clone(), cfg.rpqQuery)
		if err != nil {
			return fmt.Errorf("rpq: %w", err)
		}
		if err := d.Attach(incgraph.MaintainRPQ(e)); err != nil {
			return err
		}
	}
	if cfg.isoPath != "" {
		pg, err := incgraph.LoadGraphFile(cfg.isoPath)
		if err != nil {
			return fmt.Errorf("iso: %w", err)
		}
		p, err := incgraph.NewPattern(pg)
		if err != nil {
			return fmt.Errorf("iso: %w", err)
		}
		if err := d.Attach(incgraph.MaintainISO(incgraph.NewISO(d.Graph().Clone(), p))); err != nil {
			return err
		}
	}
	if cfg.scc {
		if err := d.Attach(incgraph.MaintainSCC(incgraph.NewSCC(d.Graph().Clone()))); err != nil {
			return err
		}
	}
	return nil
}

// splitAddrs splits a comma-separated address list, tolerating stray
// commas ("a,b," / "a,,b"): an empty element would otherwise abort
// startup with a confusing dial error.
func splitAddrs(list string) []string {
	var addrs []string
	for _, a := range strings.Split(list, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

func run(cfg config) error {
	if cfg.storeDir == "" {
		return fmt.Errorf("-store is required")
	}
	sync, err := parseSync(cfg.fsync)
	if err != nil {
		return err
	}
	repl, err := parseRepl(cfg.repl)
	if err != nil {
		return err
	}
	opts := incgraph.DurableOptions{Sync: sync}
	// Disk-fault drills: route the store's write path (WAL, snapshots,
	// MANIFEST rotation) through a seeded FaultFS. The injected failures
	// exercise the degradation contract — retry, read-only, heal — while
	// the event log keeps the drill reproducible.
	var faultFS *incgraph.FaultFS
	if cfg.diskFault != "" {
		faultFS, err = parseDiskFault(cfg.diskFault)
		if err != nil {
			return err
		}
		opts.FS = faultFS
		log.Printf("disk-fault injection armed: seed %d, %d rule(s)", faultFS.Seed, len(faultFS.Rules))
	}

	// Open-or-create the durable state.
	var d *incgraph.Durable
	recovered := false
	if incgraph.DurableExists(cfg.storeDir) {
		var err error
		d, err = incgraph.OpenDurable(cfg.storeDir, opts)
		if err != nil {
			return err
		}
		recovered = true
	} else {
		g := incgraph.NewGraph()
		if cfg.graphPath != "" {
			var err error
			g, err = incgraph.LoadGraphFile(cfg.graphPath)
			if err != nil {
				return err
			}
		}
		if cfg.shards != 0 {
			g.SetShards(cfg.shards)
		}
		var err error
		d, err = incgraph.CreateDurable(cfg.storeDir, g, opts)
		if err != nil {
			return err
		}
	}
	d.Graph().SetParallelism(cfg.workers)

	// Standing queries: build engines on clones of the (snapshot-time)
	// graph, attach, then replay the WAL through them.
	if err := attachEngines(d, cfg); err != nil {
		return err
	}
	if err := d.Recover(); err != nil {
		return err
	}
	if recovered {
		log.Printf("recovered store %s: %d nodes, %d edges, gen %d, WAL seq %d",
			cfg.storeDir, d.Graph().NumNodes(), d.Graph().NumEdges(), d.Generation(), d.WALSeq())
	} else {
		log.Printf("created store %s: %d nodes, %d edges (%d shards)",
			cfg.storeDir, d.Graph().NumNodes(), d.Graph().NumEdges(), d.Graph().NumShards())
	}
	for _, m := range d.Engines() {
		log.Printf("standing query %s: %d answers", m.Class(), m.Size())
	}

	// The server is built before the cluster so the HA hub's snapshot
	// callback can serialize against its lock; the coordinator (if any)
	// is installed below, before serving starts.
	srv := newServer(d, nil, cfg.ckptBytes, cfg.lim)
	srv.repl = repl

	// HA hub: standbys connect here, handshake a snapshot, and tail every
	// committed batch. The snapshot callback reads (feedSeq, graph) under
	// the server's lock — the same critical section commits mutate them
	// in — so no committed batch can fall between a standby's snapshot
	// and its feed stream.
	var hub *incgraph.ClusterHub
	var hubLn net.Listener
	if cfg.hubAddr != "" {
		hub = incgraph.NewClusterHub(incgraph.ClusterHubOptions{
			Term: cfg.term,
			Snapshot: func() (uint64, uint64, []byte, error) {
				srv.mu.RLock()
				defer srv.mu.RUnlock()
				snap, err := incgraph.EncodeSnapshot(d.Graph())
				return srv.feedSeq, d.Generation(), snap, err
			},
		})
		srv.hub = hub
		var err error
		hubLn, err = net.Listen("tcp", cfg.hubAddr)
		if err != nil {
			return err
		}
		log.Printf("hub listening on %s (term %d)", hubLn.Addr(), cfg.term)
		go func() {
			for {
				conn, err := hubLn.Accept()
				if err != nil {
					return
				}
				go func() {
					if err := hub.ServeConn(conn); err != nil && !isClosed(err) {
						log.Printf("standby feed: %v", err)
					}
					conn.Close()
				}()
			}
		}()
	}

	// Cluster mode: attach (or spawn) shard workers and place every shard
	// by shipping its snapshot segment.
	stopSpawned := func() {}
	if cfg.clusterAddrs != "" || cfg.clusterSpawn > 0 {
		addrs := splitAddrs(cfg.clusterAddrs)
		if cfg.clusterSpawn > 0 {
			spawned, stop, err := spawnWorkers(cfg.clusterSpawn)
			if err != nil {
				return err
			}
			stopSpawned = stop
			addrs = append(addrs, spawned...)
		}
		links := make([]incgraph.ClusterLink, 0, len(addrs))
		for _, a := range addrs {
			link, err := incgraph.DialClusterWorker(a)
			if err != nil {
				stopSpawned()
				return err
			}
			links = append(links, link)
		}
		clOpts := []incgraph.ClusterOption{
			incgraph.WithClusterTerm(cfg.term),
			incgraph.WithReplication(repl),
		}
		if hub != nil {
			// In cluster mode the coordinator's post-commit hook runs the
			// standby feed in commit order while the batch's shards are
			// still held; its sequence numbering matches feedSeq (both
			// count exactly the successful commits).
			clOpts = append(clOpts, incgraph.WithOnCommit(hub.Feed))
		}
		cl, err := incgraph.NewCluster(d.Graph(), links, clOpts...)
		if err != nil {
			stopSpawned()
			return err
		}
		srv.cl = cl
		log.Printf("cluster: %d shards placed across %d workers (term %d, repl %s)",
			d.Graph().NumShards(), cl.NumWorkers(), cfg.term, repl)
		if cfg.scrubEvery > 0 {
			// Background anti-entropy: one shard replica verified (and
			// healed if divergent) per tick, round-robin — the whole
			// cluster is re-verified every shards×interval.
			cl.StartScrubber(cfg.scrubEvery)
			log.Printf("scrubber: verifying one shard replica every %v", cfg.scrubEvery)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		<-sig
		close(stop)
	}()
	serveErr := srv.serve(cfg.addr, stop)
	if hubLn != nil {
		hubLn.Close()
	}
	if hub != nil {
		hub.Close()
	}
	stopSpawned()
	return serveErr
}
