// Command datagen writes workload graphs and update streams in the library
// text formats, for use with cmd/incgraph or external tooling.
//
// Usage:
//
//	datagen -dataset dbpedia -scale 0.1 -seed 1 -out graph.txt
//	datagen -dataset dbpedia -scale 0.1 -seed 1 -out graph.snap
//	datagen -graph graph.txt -updates 500 -ratio 0.5 -out du.txt
//
// A -out path ending in .snap writes the binary per-shard snapshot format
// instead of text; -graph accepts either format.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"incgraph"
)

func main() {
	dataset := flag.String("dataset", "", "generate a graph: dbpedia, livej or synthetic")
	scale := flag.Float64("scale", 1.0, "dataset scale")
	graphPath := flag.String("graph", "", "generate updates against this graph file instead")
	updates := flag.Int("updates", 0, "number of unit updates to generate")
	ratio := flag.Float64("ratio", 0.5, "insertion fraction (0.5 = paper's ρ=1)")
	locality := flag.Float64("locality", 0.9, "fraction of insertions that are 2-hop shortcuts")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	if err := run(*dataset, *scale, *graphPath, *updates, *ratio, *locality, *seed, *out); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, graphPath string, updates int, ratio, locality float64, seed int64, out string) error {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch {
	case dataset != "":
		g, err := incgraph.Dataset(dataset, scale, seed)
		if err != nil {
			return err
		}
		// An .snap output selects the binary snapshot format, which
		// cmd/incgraph and cmd/incgraphd load in parallel per shard.
		if strings.HasSuffix(out, ".snap") {
			return incgraph.WriteSnapshot(w, g)
		}
		return incgraph.WriteGraph(w, g)
	case graphPath != "":
		if updates <= 0 {
			return fmt.Errorf("-updates must be positive")
		}
		g, err := incgraph.LoadGraphFile(graphPath)
		if err != nil {
			return err
		}
		batch := incgraph.RandomUpdates(g, incgraph.UpdateSpec{
			Count: updates, InsertRatio: ratio, Locality: locality, Seed: seed,
		})
		for _, u := range batch {
			var err error
			if u.Op == incgraph.OpInsert {
				_, err = fmt.Fprintf(w, "+ %d %d %s %s\n", u.From, u.To, u.FromLabel, u.ToLabel)
			} else {
				_, err = fmt.Fprintf(w, "- %d %d\n", u.From, u.To)
			}
			if err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("need -dataset or -graph; see -h")
	}
}
