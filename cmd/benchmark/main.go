// Command benchmark regenerates the paper's experimental figures and
// tables. See DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	benchmark [-fig 8a,8b,... | -fig all] [-scale 1.0] [-seed 1] [-points 0] [-workers 0] [-shards 0] [-json]
//	benchmark -store [-json]        # durability: snapshot-load vs text-rebuild
//	benchmark -cluster [-json]      # distribution: coordinator+2 workers vs single process
//	benchmark -replication [-json]  # HA: distributed apply under off/async/quorum log shipping
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"incgraph/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "comma-separated experiment IDs (8a..8p, unit, opt) or 'all'")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier (1.0 = default bench size)")
	seed := flag.Int64("seed", 1, "workload seed")
	points := flag.Int("points", 0, "truncate each sweep to N points (0 = full sweep)")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = all cores, 1 = sequential baseline)")
	shards := flag.Int("shards", 0, "graph shard count, rounded to a power of two (0 = default, 1 = unsharded baseline)")
	storeMode := flag.Bool("store", false, "run only the durability experiment: snapshot-load vs text-rebuild timings")
	clusterMode := flag.Bool("cluster", false, "run only the distribution experiment: distributed vs single-process ΔG apply")
	replMode := flag.Bool("replication", false, "run only the HA experiment: distributed apply under off/async/quorum log shipping")
	list := flag.Bool("list", false, "list available experiments and exit")
	asJSON := flag.Bool("json", false, "emit one JSON object per experiment (id, points, ns/op) instead of tables")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Figures(), "\n"))
		return
	}
	cfg := bench.Config{Scale: *scale, Seed: *seed, MaxPoints: *points, Workers: *workers, Shards: *shards}
	ids := bench.Figures()
	if *fig != "all" {
		ids = strings.Split(*fig, ",")
	}
	if *storeMode {
		ids = []string{"store"}
	}
	if *clusterMode {
		ids = []string{"cluster"}
	}
	if *replMode {
		ids = []string{"replication"}
	}
	for _, id := range ids {
		res, err := bench.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchmark: %v\n", err)
			os.Exit(1)
		}
		emit := res.Format
		if *asJSON {
			emit = res.FormatJSON
		}
		if err := emit(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchmark: %v\n", err)
			os.Exit(1)
		}
	}
}
