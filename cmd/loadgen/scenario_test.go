package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseYAMLNestingAndComments(t *testing.T) {
	doc, err := parseYAML([]byte(`
# a comment
name: demo          # trailing comment
clients: 4
mix:
  query: 70
  commit: 30
spike:
  at: 1s
  multiplier: "2"
`))
	if err != nil {
		t.Fatal(err)
	}
	if doc["name"] != "demo" || doc["clients"] != "4" {
		t.Fatalf("scalars misparsed: %v", doc)
	}
	mix, ok := doc["mix"].(map[string]any)
	if !ok || mix["query"] != "70" || mix["commit"] != "30" {
		t.Fatalf("nested map misparsed: %v", doc["mix"])
	}
	spike := doc["spike"].(map[string]any)
	if spike["multiplier"] != "2" {
		t.Fatalf("quoted scalar misparsed: %v", spike)
	}
}

func TestParseYAMLRejectsUnsupportedConstructs(t *testing.T) {
	cases := map[string]string{
		"list":       "items:\n  - a\n",
		"odd indent": "a:\n   b: 1\n",
		"no colon":   "just a line\n",
		"dup key":    "a: 1\na: 2\n",
		"bad nest":   "a: 1\n    b: 2\n",
	}
	for name, in := range cases {
		if _, err := parseYAML([]byte(in)); err == nil {
			t.Errorf("%s: parsed without error, want loud rejection", name)
		}
	}
}

func TestParseScenarioValidation(t *testing.T) {
	cases := map[string]string{
		"missing name":     "clients: 2\nduration: 1s\nmix:\n  query: 1\n",
		"no clients":       "name: x\nduration: 1s\nmix:\n  query: 1\n",
		"no duration":      "name: x\nclients: 2\nmix:\n  query: 1\n",
		"no mix":           "name: x\nclients: 2\nduration: 1s\n",
		"unknown op":       "name: x\nclients: 2\nduration: 1s\nmix:\n  frobnicate: 1\n",
		"unknown key":      "name: x\nclients: 2\nduration: 1s\nmix:\n  query: 1\nbogus: 7\n",
		"spike past end":   "name: x\nclients: 2\nduration: 1s\nmix:\n  query: 1\nspike:\n  at: 900ms\n  duration: 500ms\n  multiplier: 2\n",
		"non-numeric int":  "name: x\nclients: two\nduration: 1s\nmix:\n  query: 1\n",
		"non-duration dur": "name: x\nclients: 2\nduration: soon\nmix:\n  query: 1\n",
		"bad fault action": "name: x\nclients: 2\nduration: 1s\nmix:\n  query: 1\nfault:\n  action: explode\n  at: 500ms\n",
		"fault past end":   "name: x\nclients: 2\nduration: 1s\nmix:\n  query: 1\nfault:\n  action: failover\n  at: 2s\n",
	}
	for name, in := range cases {
		if _, err := parseScenario([]byte(in)); err == nil {
			t.Errorf("%s: validated without error", name)
		}
	}
	sc, err := parseScenario([]byte("name: ok\nclients: 2\nduration: 1s\nmix:\n  query: 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Batch != 8 || sc.Check.P99Max != 2*time.Second {
		t.Fatalf("defaults not applied: %+v", sc)
	}
}

// Every embedded scenario must load; they are the CLI's public surface.
func TestBuiltinScenariosLoad(t *testing.T) {
	names := builtinScenarios()
	if len(names) != 8 {
		t.Fatalf("want 8 built-in scenarios, have %v", names)
	}
	for _, name := range names {
		sc, err := loadScenario(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if sc.Name != name {
			t.Errorf("file %s declares name %q", name, sc.Name)
		}
		if sc.Description == "" {
			t.Errorf("%s: no description", name)
		}
	}
	if _, err := loadScenario("no-such-scenario"); err == nil ||
		!strings.Contains(err.Error(), "not a built-in") {
		t.Fatalf("unknown scenario: err = %v, want the built-in listing", err)
	}
}
