package main

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"time"

	"incgraph"
)

// sample is one completed op: its class, when it started (relative to the
// measurement epoch; negative during warmup), how long it took, and how
// it ended. A shed is an explicit "err overloaded" reply — the daemon
// keeping its degradation contract, not a failure. err is anything else
// that isn't "ok". A hang (no reply within the op budget) is recorded
// separately: it is the one outcome the contract forbids outright.
type sample struct {
	class string
	at    time.Duration
	dur   time.Duration
	shed  bool
	err   bool
}

// admittedCommit is one acked commit: the post-commit generation from the
// "ok applied N gen=G" reply and the batch it covered. Generations are
// strictly monotone across commits (they serialize), so sorting by gen
// recovers the daemon's apply order for the parity replay.
type admittedCommit struct {
	gen   uint64
	batch incgraph.Batch
}

// worker is one load-generating connection.
type worker struct {
	id       int
	sc       *Scenario
	env      *runEnv
	opBudget time.Duration
	epoch    time.Time // measurement start (end of warmup)

	conn net.Conn
	r    *bufio.Reader
	rng  *rand.Rand

	nextID int64             // private fresh-node allocator
	own    []incgraph.Update // own committed inserts, eligible for delete

	samples    []sample
	admitted   []admittedCommit
	hangs      int
	reconnects int  // fault-scenario redials after a transport error
	dead       bool // connection lost (shed at accept, cut, transport error)
}

// Private node-ID ranges: each worker inserts edges between nodes only it
// allocates, so insert-of-existing-edge and delete-of-missing-edge
// rejections cannot happen by construction. Hot-key inserts point fresh
// sources at the shared hot nodes instead.
const (
	idBase   = int64(10_000_000)
	idStride = int64(1 << 20)
	hotKeys  = 8
)

// answerClass is the standing query every scenario exercises and the
// parity replay recomputes. SCC needs no query configuration, so any
// daemon started with -scc can serve every built-in scenario.
const answerClass = "scc"

func newWorker(id int, env *runEnv, sc *Scenario, seed int64) (*worker, error) {
	conn, err := net.DialTimeout("tcp", env.book.get(), 10*time.Second)
	if err != nil {
		return nil, err
	}
	w := &worker{
		id: id, sc: sc, env: env, opBudget: env.opBudget, epoch: env.epoch,
		conn: conn, r: bufio.NewReader(conn),
		rng:    rand.New(rand.NewSource(seed)),
		nextID: idBase + int64(id)*idStride,
	}
	return w, nil
}

// run executes the scenario mix until stop closes, then hangs up.
func (w *worker) run(stop <-chan struct{}) {
	defer w.conn.Close()
	var ops []string
	var weights []int
	total := 0
	for _, op := range []string{"query", "answer", "commit"} { // stable order
		if n := w.sc.Mix[op]; n > 0 {
			ops = append(ops, op)
			weights = append(weights, n)
			total += n
		}
	}
	for {
		select {
		case <-stop:
			fmt.Fprintln(w.conn, "quit")
			return
		default:
		}
		// The failover driver pauses traffic while it drains the standby
		// and switches the shared address; wait it out, then continue.
		if w.env.paused.Load() {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			continue
		}
		pick := w.rng.Intn(total)
		op := ops[len(ops)-1]
		for i, we := range weights {
			if pick -= we; pick < 0 {
				op = ops[i]
				break
			}
		}
		start := time.Now()
		shed, err := w.op(op)
		s := sample{class: op, at: start.Sub(w.epoch), dur: time.Since(start), shed: shed}
		if err != nil {
			if isHang(err) {
				w.hangs++
				s.err = true
				w.samples = append(w.samples, s)
				w.dead = true
				return // a hang is a contract violation even mid-failover
			}
			if w.env.faulty {
				// Fault scenarios kill the primary under us: a transport
				// error is the drill working, not a violation. Drop the op
				// (nothing was acked), redial the current address, go on.
				w.reconnects++
				if !w.reconnect(stop) {
					w.dead = true
					return
				}
				continue
			}
			s.err = true
			w.samples = append(w.samples, s)
			w.dead = true
			return // the connection state is unknown; stop rather than skew
		}
		w.samples = append(w.samples, s)
		if w.env.soak != nil {
			w.env.soak.record(s)
		}
		if w.sc.Think > 0 {
			select {
			case <-stop:
				fmt.Fprintln(w.conn, "quit")
				return
			case <-time.After(w.sc.Think):
			}
		}
	}
}

// reconnect redials the shared address (which the failover driver may
// have just swapped to the promoted standby) with capped backoff until
// it succeeds or the run stops.
func (w *worker) reconnect(stop <-chan struct{}) bool {
	w.conn.Close()
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-stop:
			return false
		default:
		}
		conn, err := net.DialTimeout("tcp", w.env.book.get(), 2*time.Second)
		if err == nil {
			w.conn, w.r = conn, bufio.NewReader(conn)
			return true
		}
		select {
		case <-stop:
			return false
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// hangError marks a reply that never arrived within the op budget.
type hangError struct{ op string }

func (e hangError) Error() string { return fmt.Sprintf("%s: no reply within the op budget", e.op) }

func isHang(err error) bool {
	_, ok := err.(hangError)
	return ok
}

// readReply reads one reply line under the op budget.
func (w *worker) readReply(op string) (string, error) {
	w.conn.SetReadDeadline(time.Now().Add(w.opBudget))
	line, err := w.r.ReadString('\n')
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return "", hangError{op}
		}
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// replyCategory extracts <category> from the daemon's machine-parseable
// error grammar, "err <category>: <detail>"; non-error and malformed
// replies yield "".
func replyCategory(reply string) string {
	rest, ok := strings.CutPrefix(reply, "err ")
	if !ok {
		return ""
	}
	cat, _, ok := strings.Cut(rest, ":")
	if !ok {
		return ""
	}
	return strings.TrimSpace(cat)
}

// isShed recognizes the daemon's explicit degradation replies by
// category: overload shedding and disk-degraded read-only mode. Both
// keep a staged batch and both mean "the contract held", never a
// failure.
func isShed(reply string) bool {
	switch replyCategory(reply) {
	case "overloaded", "disk":
		return true
	}
	return false
}

// op runs one operation of the given class. It returns shed=true when the
// daemon refused it with an explicit overload reply (the batch, if any,
// was aborted cleanly), and err for hangs, transport failures, and
// non-overload error replies.
func (w *worker) op(op string) (shed bool, err error) {
	switch op {
	case "query":
		if _, err := fmt.Fprintf(w.conn, "query %s\n", answerClass); err != nil {
			return false, err
		}
		reply, err := w.readReply(op)
		if err != nil {
			return false, err
		}
		if isShed(reply) {
			return true, nil
		}
		if !strings.HasPrefix(reply, "ok") {
			return false, fmt.Errorf("query: %s", reply)
		}
		return false, nil
	case "answer":
		if _, err := fmt.Fprintf(w.conn, "answer %s\n", answerClass); err != nil {
			return false, err
		}
		reply, err := w.readReply(op)
		if err != nil {
			return false, err
		}
		if isShed(reply) {
			return true, nil
		}
		if !strings.HasPrefix(reply, "ok") {
			return false, fmt.Errorf("answer: %s", reply)
		}
		// Drain the dot-terminated dump under the same budget.
		w.conn.SetReadDeadline(time.Now().Add(w.opBudget))
		for {
			line, err := w.r.ReadString('\n')
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					return false, hangError{op}
				}
				return false, err
			}
			if strings.TrimSpace(line) == "." {
				return false, nil
			}
		}
	case "commit":
		return w.commit()
	}
	return false, fmt.Errorf("unknown op %q", op)
}

// commit stages one batch and commits it, retrying a shed commit (the
// daemon keeps the staged batch) a few times before aborting. The acked
// batch and its generation are kept for the parity replay.
func (w *worker) commit() (shed bool, err error) {
	batch := w.makeBatch()
	// Pipeline the stage lines, then read all their acks.
	var sb strings.Builder
	for _, u := range batch {
		if u.Op == incgraph.OpInsert {
			fmt.Fprintf(&sb, "+ %d %d %s %s\n", u.From, u.To, u.FromLabel, u.ToLabel)
		} else {
			fmt.Fprintf(&sb, "- %d %d\n", u.From, u.To)
		}
	}
	if _, err := w.conn.Write([]byte(sb.String())); err != nil {
		return false, err
	}
	for range batch {
		reply, err := w.readReply("stage")
		if err != nil {
			return false, err
		}
		if !strings.HasPrefix(reply, "ok staged") {
			return false, fmt.Errorf("stage: %s", reply)
		}
	}
	for attempt := 0; ; attempt++ {
		if _, err := fmt.Fprintln(w.conn, "commit"); err != nil {
			return false, err
		}
		reply, err := w.readReply("commit")
		if err != nil {
			return false, err
		}
		switch {
		case strings.HasPrefix(reply, "ok applied"):
			gen, err := parseGen(reply)
			if err != nil {
				return false, err
			}
			w.admitted = append(w.admitted, admittedCommit{gen: gen, batch: batch})
			for _, u := range batch {
				if u.Op == incgraph.OpInsert {
					w.own = append(w.own, u)
				}
			}
			return false, nil
		case isShed(reply):
			if attempt < 2 {
				time.Sleep(100 * time.Millisecond) // the reply's retry hint
				continue
			}
			// Still overloaded: abort so the staged batch doesn't leak
			// into a later unrelated commit.
			if _, err := fmt.Fprintln(w.conn, "abort"); err != nil {
				return false, err
			}
			if _, err := w.readReply("abort"); err != nil {
				return false, err
			}
			return true, nil
		default:
			return false, fmt.Errorf("commit: %s", reply)
		}
	}
}

// parseGen extracts G from "ok applied N gen=G ...".
func parseGen(reply string) (uint64, error) {
	for _, f := range strings.Fields(reply) {
		if v, ok := strings.CutPrefix(f, "gen="); ok {
			return strconv.ParseUint(v, 10, 64)
		}
	}
	return 0, fmt.Errorf("commit ack %q carries no gen=", reply)
}

// makeBatch builds one batch from the worker's private ID range: fresh
// insertions (aimed at shared hot keys per the scenario's hotspot
// fraction), plus deletions of its own previously committed inserts.
func (w *worker) makeBatch() incgraph.Batch {
	b := make(incgraph.Batch, 0, w.sc.Batch)
	for i := 0; i < w.sc.Batch; i++ {
		if len(w.own) > 16 && w.rng.Float64() < 0.2 {
			j := w.rng.Intn(len(w.own))
			u := w.own[j]
			w.own = append(w.own[:j], w.own[j+1:]...)
			b = append(b, incgraph.Del(u.From, u.To))
			continue
		}
		from := w.fresh()
		to := w.fresh()
		if w.rng.Float64() < w.sc.Hotspot {
			to = incgraph.NodeID(idBase - 1 - int64(w.rng.Intn(hotKeys)))
		}
		b = append(b, incgraph.InsNew(from, to, "lg", "lg"))
	}
	return b
}

func (w *worker) fresh() incgraph.NodeID {
	id := w.nextID
	w.nextID++
	return incgraph.NodeID(id)
}

// slowClient trickles one byte at a time without ever completing a line,
// and reports how long the server took to cut it (0 if never cut before
// stop closed). A reader goroutine detects the cut promptly — the write
// side can lag a close by a buffered write or two.
func slowClient(addr string, stop <-chan struct{}) (cut time.Duration, err error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	start := time.Now()
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		buf := make([]byte, 256)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-closed:
			return time.Since(start), nil
		case <-stop:
			return 0, nil
		case <-tick.C:
			conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
			conn.Write([]byte("x")) // errors surface via the reader
		}
	}
}
