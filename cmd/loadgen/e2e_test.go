package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestLoadgenSmoke is the end-to-end drill CI runs scaled down: build the
// real daemon, start it on a fresh empty store with tight admission gates
// and a short idle timeout, drive a mixed scenario with a spike and a
// slow client through the public runScenario path, and assert the
// degradation contract plus recovery parity — the post-storm graph must
// be byte-identical to a serial replay of exactly the acked commits.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exec-based smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "incgraphd")
	build := exec.Command("go", "build", "-o", bin, "../incgraphd")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	addr := pickAddr(t)
	daemon := exec.Command(bin,
		"-store", filepath.Join(dir, "store"), "-addr", addr, "-scc",
		"-checkpoint-bytes", "0", "-fsync", "none",
		"-commit-inflight", "1", "-commit-queue", "2",
		"-read-inflight", "2", "-read-queue", "4",
		"-idle-timeout", "500ms",
	)
	daemon.Stdout = os.Stderr
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()
	waitAccept(t, addr)

	sc, err := parseScenario([]byte(`
name: smoke
description: scaled-down mixed run for the test suite
clients: 4
duration: 2500ms
warmup: 300ms
batch: 6
slow_clients: 1
expect_cut_within: 2s
mix:
  query: 50
  commit: 45
  answer: 5
spike:
  at: 800ms
  duration: 1s
  multiplier: 2
check:
  p99_max: 5s
  min_spike_throughput_frac: 0.1
`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := runScenario(addr, sc, runOpts{opBudget: 10 * time.Second, parity: true}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("contract violation: %s", v)
	}
	if !res.ParityChecked {
		t.Fatal("parity was not checked")
	}
	var admitted int
	for _, ph := range res.Phases {
		for _, cs := range ph.Classes {
			admitted += cs.Admitted
		}
	}
	if admitted == 0 {
		t.Fatal("no ops admitted: the run measured nothing")
	}
	if res.SlowCuts[0] == 0 {
		t.Fatal("slow client was never cut despite -idle-timeout 500ms")
	}
	t.Logf("admitted %d ops; slow client cut after %v", admitted, res.SlowCuts[0])
}

func pickAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitAccept(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			fmt.Fprintln(c, "quit")
			c.Close()
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon never accepted on %s", addr)
}
