package main

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incgraph"
)

// runResult is the merged outcome of one scenario run, ready for
// reporting, JSON output, and contract checks.
type runResult struct {
	Scenario string        `json:"scenario"`
	Clients  int           `json:"clients"`
	Duration time.Duration `json:"duration"`

	Phases []phaseStats `json:"phases"`

	Hangs       int             `json:"hangs"`
	DeadWorkers int             `json:"dead_workers"`
	Reconnects  int             `json:"reconnects,omitempty"`   // fault-scenario redials
	FaultDetail string          `json:"fault_detail,omitempty"` // what the fault driver did
	SlowCuts    []time.Duration `json:"slow_cuts,omitempty"`    // per slow client; 0 = never cut

	ParityChecked bool   `json:"parity_checked"`
	ParityDetail  string `json:"parity_detail,omitempty"`

	Violations []string `json:"violations,omitempty"`
}

// phaseStats aggregates one phase (steady / spike / post) per op class.
type phaseStats struct {
	Name    string       `json:"name"`
	Seconds float64      `json:"seconds"`
	Classes []classStats `json:"classes"`
	Sheds   int          `json:"sheds"`
	hists   map[string]*hist
}

type classStats struct {
	Class    string        `json:"class"`
	Admitted int           `json:"admitted"`
	Shed     int           `json:"shed"`
	Errs     int           `json:"errs"`
	PerSec   float64       `json:"per_sec"`
	P50      time.Duration `json:"p50"`
	P99      time.Duration `json:"p99"`
	P999     time.Duration `json:"p999"`
	Mean     time.Duration `json:"mean"`
}

// addrBook is the shared daemon address. The failover driver swaps it
// to the promoted standby mid-run; reconnecting workers, the soak
// sampler, and the parity check all dial whatever is current.
type addrBook struct {
	mu   sync.Mutex
	addr string
}

func (a *addrBook) get() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.addr
}

func (a *addrBook) set(addr string) {
	a.mu.Lock()
	a.addr = addr
	a.mu.Unlock()
}

// runEnv is the state one scenario run shares across its workers and
// drivers: the (swappable) daemon address, the failover pause flag, and
// the optional soak sampler.
type runEnv struct {
	book     *addrBook
	paused   atomic.Bool
	soak     *soakSampler
	faulty   bool // fault scenario: reconnect through transport errors
	opBudget time.Duration
	epoch    time.Time
}

// runOpts is the CLI side of a run: budgets, the parity check, the
// fault-drill endpoints, and soak sampling.
type runOpts struct {
	opBudget     time.Duration
	parity       bool
	failoverAddr string // standby to promote on fault.action=failover
	faultExec    string // shell command that kills the primary
	soakEvery    time.Duration
}

// runScenario drives sc against addr and returns the merged result.
// opts.parity additionally replays every admitted commit serially onto an
// empty graph and requires the daemon's post-storm graph and answers to
// match byte for byte — valid only when the daemon started empty and
// loadgen is its only client.
func runScenario(addr string, sc *Scenario, opts runOpts, logf func(string, ...any)) (*runResult, error) {
	epoch := time.Now().Add(sc.Warmup)
	stop := make(chan struct{})
	spikeStop := make(chan struct{})

	env := &runEnv{
		book:     &addrBook{addr: addr},
		faulty:   sc.Fault.Action != "",
		opBudget: opts.opBudget,
		epoch:    epoch,
	}
	if opts.soakEvery > 0 {
		env.soak = newSoakSampler(env.book)
	}

	var wg sync.WaitGroup
	workers := make([]*worker, 0, sc.Clients)
	var werr error
	for i := 0; i < sc.Clients; i++ {
		w, err := newWorker(i, env, sc, int64(1000+i))
		if err != nil {
			werr = err
			break
		}
		workers = append(workers, w)
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(stop)
		}(w)
	}
	if werr != nil {
		close(stop)
		wg.Wait()
		return nil, fmt.Errorf("connect workers: %w", werr)
	}

	// Slow clients run for the whole scenario.
	slowCuts := make([]time.Duration, sc.SlowClients)
	slowErrs := make([]error, sc.SlowClients)
	for i := 0; i < sc.SlowClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			slowCuts[i], slowErrs[i] = slowClient(addr, stop)
		}(i)
	}

	// The spike: Clients*Multiplier extra workers join for the window.
	var spikeWorkers []*worker
	var spikeMu sync.Mutex
	if sc.Spike.Multiplier > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-stop:
				return
			case <-time.After(time.Until(epoch.Add(sc.Spike.At))):
			}
			logf("spike: +%d clients for %v", sc.Clients*sc.Spike.Multiplier, sc.Spike.Duration)
			var swg sync.WaitGroup
			for i := 0; i < sc.Clients*sc.Spike.Multiplier; i++ {
				w, err := newWorker(10_000+i, env, sc, int64(20_000+i))
				if err != nil {
					continue // accept-shed during overload is the contract working
				}
				spikeMu.Lock()
				spikeWorkers = append(spikeWorkers, w)
				spikeMu.Unlock()
				swg.Add(1)
				go func(w *worker) {
					defer swg.Done()
					w.run(spikeStop)
				}(w)
			}
			select {
			case <-stop:
			case <-time.After(time.Until(epoch.Add(sc.Spike.At + sc.Spike.Duration))):
			}
			close(spikeStop)
			swg.Wait()
		}()
	}

	// The soak sampler emits periodic time-series lines; the fault driver
	// runs the scenario's failover or rebalance mid-storm.
	if env.soak != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			env.soak.run(stop, opts.soakEvery, epoch)
		}()
	}
	var faultErr error
	var faultDetail string
	if sc.Fault.Action != "" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			faultDetail, faultErr = runFault(sc, env, opts, stop, logf)
		}()
	}

	time.Sleep(time.Until(epoch.Add(sc.Duration)))
	close(stop)
	wg.Wait()

	spikeMu.Lock()
	all := append(append([]*worker{}, workers...), spikeWorkers...)
	spikeMu.Unlock()

	res := merge(sc, all, slowCuts)
	res.FaultDetail = faultDetail
	if faultErr != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("fault driver: %v", faultErr))
	}
	for _, err := range slowErrs {
		if err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf("slow client: %v", err))
		}
	}
	check(sc, res)
	if opts.parity {
		res.ParityChecked = true
		// After a failover the promoted standby is the daemon of record;
		// the book points at whoever must hold every acked commit now.
		if err := verifyParity(env.book.get(), all); err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf("parity: %v", err))
		} else {
			res.ParityDetail = "daemon state matches serial replay of admitted commits"
		}
	}
	return res, nil
}

// phaseOf buckets a sample offset into the scenario's phases. Warmup
// samples (negative offsets) return "".
func phaseOf(sc *Scenario, at time.Duration) string {
	if at < 0 {
		return ""
	}
	if sc.Spike.Multiplier > 0 {
		switch {
		case at < sc.Spike.At:
			return "steady"
		case at < sc.Spike.At+sc.Spike.Duration:
			return "spike"
		default:
			return "post"
		}
	}
	if sc.Fault.Action != "" {
		if at < sc.Fault.At {
			return "pre"
		}
		return "post"
	}
	return "steady"
}

func phaseSeconds(sc *Scenario, name string) float64 {
	if sc.Spike.Multiplier > 0 {
		switch name {
		case "steady":
			return sc.Spike.At.Seconds()
		case "spike":
			return sc.Spike.Duration.Seconds()
		case "post":
			return (sc.Duration - sc.Spike.At - sc.Spike.Duration).Seconds()
		}
	}
	if sc.Fault.Action != "" {
		switch name {
		case "pre":
			return sc.Fault.At.Seconds()
		case "post":
			return (sc.Duration - sc.Fault.At).Seconds()
		}
	}
	return sc.Duration.Seconds()
}

func merge(sc *Scenario, workers []*worker, slowCuts []time.Duration) *runResult {
	res := &runResult{Scenario: sc.Name, Clients: sc.Clients, Duration: sc.Duration, SlowCuts: slowCuts}
	phases := map[string]*phaseStats{}
	order := []string{"steady"}
	if sc.Spike.Multiplier > 0 {
		order = []string{"steady", "spike", "post"}
	} else if sc.Fault.Action != "" {
		order = []string{"pre", "post"}
	}
	for _, name := range order {
		phases[name] = &phaseStats{Name: name, Seconds: phaseSeconds(sc, name), hists: map[string]*hist{}}
	}
	counts := map[string]map[string]*classStats{} // phase -> class -> stats
	for _, name := range order {
		counts[name] = map[string]*classStats{}
	}
	for _, w := range workers {
		res.Hangs += w.hangs
		res.Reconnects += w.reconnects
		if w.dead {
			res.DeadWorkers++
		}
		for _, s := range w.samples {
			name := phaseOf(sc, s.at)
			ph, ok := phases[name]
			if !ok {
				continue // warmup, or a sample straggling past the run end
			}
			cs := counts[name][s.class]
			if cs == nil {
				cs = &classStats{Class: s.class}
				counts[name][s.class] = cs
			}
			switch {
			case s.shed:
				cs.Shed++
				ph.Sheds++
			case s.err:
				cs.Errs++
			default:
				cs.Admitted++
				h := ph.hists[s.class]
				if h == nil {
					h = newHist()
					ph.hists[s.class] = h
				}
				h.record(s.dur)
			}
		}
	}
	for _, name := range order {
		ph := phases[name]
		for class, cs := range counts[name] {
			if h := ph.hists[class]; h != nil {
				cs.P50, cs.P99, cs.P999 = h.quantile(0.50), h.quantile(0.99), h.quantile(0.999)
				cs.Mean = h.mean()
			}
			if ph.Seconds > 0 {
				cs.PerSec = float64(cs.Admitted) / ph.Seconds
			}
			ph.Classes = append(ph.Classes, *cs)
		}
		sort.Slice(ph.Classes, func(i, j int) bool { return ph.Classes[i].Class < ph.Classes[j].Class })
		res.Phases = append(res.Phases, *ph)
	}
	return res
}

// check asserts the degradation contract and appends violations.
func check(sc *Scenario, res *runResult) {
	if res.Hangs > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%d ops hung past the op budget: overload must be an explicit reply, never a stall", res.Hangs))
	}
	var errs int
	byPhase := map[string]*phaseStats{}
	for i := range res.Phases {
		ph := &res.Phases[i]
		byPhase[ph.Name] = ph
		for _, cs := range ph.Classes {
			errs += cs.Errs
			if sc.Check.P99Max > 0 && cs.P99 > sc.Check.P99Max {
				res.Violations = append(res.Violations,
					fmt.Sprintf("%s/%s: p99 %v of admitted ops exceeds bound %v", ph.Name, cs.Class, cs.P99, sc.Check.P99Max))
			}
		}
	}
	if errs > sc.Check.MaxErrs {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%d non-shed op errors (tolerated: %d)", errs, sc.Check.MaxErrs))
	}
	if spike := byPhase["spike"]; spike != nil {
		steady := byPhase["steady"]
		sRate, kRate := admittedPerSec(steady), admittedPerSec(spike)
		if sc.Check.MinSpikeTputFrac > 0 && kRate < sc.Check.MinSpikeTputFrac*sRate {
			res.Violations = append(res.Violations,
				fmt.Sprintf("throughput collapsed under the spike: %.0f/s vs steady %.0f/s (min frac %.2f)",
					kRate, sRate, sc.Check.MinSpikeTputFrac))
		}
		if sc.Check.RequireShedsInSpike && spike.Sheds == 0 {
			res.Violations = append(res.Violations,
				"spike produced no sheds: the run did not actually overload the daemon (lower its gate limits)")
		}
	}
	if sc.Fault.Action != "" && res.DeadWorkers > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%d workers died during the %s drill: every worker must reconnect and keep serving",
				res.DeadWorkers, sc.Fault.Action))
	}
	if sc.ExpectCutWithin > 0 {
		for i, cut := range res.SlowCuts {
			if cut == 0 {
				res.Violations = append(res.Violations,
					fmt.Sprintf("slow client %d was never cut", i))
			} else if cut > sc.ExpectCutWithin {
				res.Violations = append(res.Violations,
					fmt.Sprintf("slow client %d cut after %v (want within %v)", i, cut, sc.ExpectCutWithin))
			}
		}
	}
}

func admittedPerSec(ph *phaseStats) float64 {
	if ph == nil || ph.Seconds <= 0 {
		return 0
	}
	var n int
	for _, cs := range ph.Classes {
		n += cs.Admitted
	}
	return float64(n) / ph.Seconds
}

// verifyParity replays every acked commit, ordered by its acked post-
// commit generation, serially onto an empty graph with the scenario's
// engine, and compares the result byte for byte with the daemon's
// post-storm state: node and edge counts from "stat", and the canonical
// answer dump. This is the recovery-parity currency of the repo's crash
// drills, pointed at overload: admitted is admitted — whatever was acked
// under the storm must be exactly what the graph holds after it.
func verifyParity(addr string, workers []*worker) error {
	var commits []admittedCommit
	for _, w := range workers {
		commits = append(commits, w.admitted...)
	}
	sort.Slice(commits, func(i, j int) bool { return commits[i].gen < commits[j].gen })
	for i := 1; i < len(commits); i++ {
		if commits[i].gen == commits[i-1].gen {
			return fmt.Errorf("two commits acked the same gen %d: apply order is ambiguous", commits[i].gen)
		}
	}

	g := incgraph.NewGraph()
	m := incgraph.MaintainSCC(incgraph.NewSCC(g.Clone()))
	for _, c := range commits {
		if err := g.ApplyBatch(c.batch); err != nil {
			return fmt.Errorf("replaying acked commit gen=%d: %v", c.gen, err)
		}
		if _, err := m.Apply(c.batch); err != nil {
			return fmt.Errorf("replaying acked commit gen=%d through %s: %v", c.gen, m.Class(), err)
		}
	}
	var want bytes.Buffer
	if err := m.WriteAnswer(&want); err != nil {
		return err
	}

	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	line := func(cmd string) (string, error) {
		if _, err := fmt.Fprintln(conn, cmd); err != nil {
			return "", err
		}
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		reply, err := r.ReadString('\n')
		return strings.TrimSpace(reply), err
	}
	stat, err := line("stat")
	if err != nil {
		return fmt.Errorf("stat: %v", err)
	}
	for _, f := range strings.Fields(stat) {
		if v, ok := strings.CutPrefix(f, "nodes="); ok && v != fmt.Sprint(g.NumNodes()) {
			return fmt.Errorf("daemon has %s nodes, replay built %d (from %d acked commits)", v, g.NumNodes(), len(commits))
		}
		if v, ok := strings.CutPrefix(f, "edges="); ok && v != fmt.Sprint(g.NumEdges()) {
			return fmt.Errorf("daemon has %s edges, replay built %d (from %d acked commits)", v, g.NumEdges(), len(commits))
		}
	}
	reply, err := line("answer " + answerClass)
	if err != nil {
		return fmt.Errorf("answer: %v", err)
	}
	if !strings.HasPrefix(reply, "ok") {
		return fmt.Errorf("answer: %s", reply)
	}
	var got strings.Builder
	for {
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		l, err := r.ReadString('\n')
		if err != nil {
			return fmt.Errorf("answer dump: %v", err)
		}
		if strings.TrimSpace(l) == "." {
			break
		}
		got.WriteString(l)
	}
	if got.String() != want.String() {
		return fmt.Errorf("%s answers differ: daemon dump is not byte-identical to the serial replay of %d acked commits",
			answerClass, len(commits))
	}
	return nil
}
