package main

import (
	"bufio"
	"fmt"
	"net"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// The fault driver: runs the scenario's mid-storm topology fault.
//
// failover pauses traffic, drains the standby's feed up to the
// primary's generation (so every acked commit is on the survivor —
// without the drain, -parity would rightly fail on commits acked just
// before the kill whose feed frames died with the primary), kills the
// primary with -fault-exec, promotes -failover-addr, swaps the shared
// address, and resumes. Workers reconnect to the promoted standby.
//
// rebalance needs no pause: it cycles "move S W" against the live
// coordinator every fault.every — segment shipping competes with
// commits, which is exactly the contention under test.

// runFault dispatches the scenario's fault action at its scheduled time.
func runFault(sc *Scenario, env *runEnv, opts runOpts, stop <-chan struct{}, logf func(string, ...any)) (string, error) {
	select {
	case <-stop:
		return "", nil
	case <-time.After(time.Until(env.epoch.Add(sc.Fault.At))):
	}
	switch sc.Fault.Action {
	case "failover":
		return runFailover(env, opts, logf)
	case "rebalance":
		return runRebalance(sc, env, stop, logf)
	}
	return "", fmt.Errorf("unknown fault action %q", sc.Fault.Action)
}

func runFailover(env *runEnv, opts runOpts, logf func(string, ...any)) (string, error) {
	if opts.failoverAddr == "" || opts.faultExec == "" {
		return "", fmt.Errorf("failover scenario needs -failover-addr and -fault-exec")
	}
	primary := env.book.get()
	logf("failover: pausing traffic")
	env.paused.Store(true)
	defer env.paused.Store(false)
	// Let in-flight ops finish so no commit is mid-ack at the kill.
	time.Sleep(300 * time.Millisecond)

	// Drain: the standby must have applied every acked commit before the
	// primary dies, or those commits exist nowhere after promotion.
	deadline := time.Now().Add(10 * time.Second)
	for {
		pGen, err := queryGen(primary)
		if err != nil {
			return "", fmt.Errorf("drain: primary stat: %v", err)
		}
		sGen, err := queryGen(opts.failoverAddr)
		if err != nil {
			return "", fmt.Errorf("drain: standby stat: %v", err)
		}
		if sGen >= pGen {
			logf("failover: standby drained to gen %d", sGen)
			break
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("drain: standby stuck at gen %d, primary at %d", sGen, pGen)
		}
		time.Sleep(20 * time.Millisecond)
	}

	logf("failover: killing primary: %s", opts.faultExec)
	if out, err := exec.Command("/bin/sh", "-c", opts.faultExec).CombinedOutput(); err != nil {
		return "", fmt.Errorf("-fault-exec: %v (%s)", err, strings.TrimSpace(string(out)))
	}

	// Promote, with a short retry: the standby notices the dead feed on
	// its own clock.
	var promoted string
	deadline = time.Now().Add(10 * time.Second)
	for {
		reply, err := oneShot(opts.failoverAddr, "promote")
		if err == nil && strings.HasPrefix(reply, "ok promoted") {
			promoted = reply
			break
		}
		if err == nil && replyCategory(reply) == "fenced" && strings.Contains(reply, "already primary") {
			promoted = reply // a retried promote raced its own success
			break
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("promote: %v %s", err, reply)
		}
		time.Sleep(100 * time.Millisecond)
	}
	env.book.set(opts.failoverAddr)
	logf("failover complete: %s now serves at %s", promoted, opts.failoverAddr)
	return fmt.Sprintf("failover: killed %s, %s", primary, promoted), nil
}

func runRebalance(sc *Scenario, env *runEnv, stop <-chan struct{}, logf func(string, ...any)) (string, error) {
	// Learn the topology once: shard count from "stat" shards=, worker
	// count from cluster_workers=U/T.
	stat, err := oneShot(env.book.get(), "stat")
	if err != nil {
		return "", fmt.Errorf("rebalance: stat: %v", err)
	}
	shards, workers := 0, 0
	for _, f := range strings.Fields(stat) {
		if v, ok := strings.CutPrefix(f, "shards="); ok {
			shards, _ = strconv.Atoi(v)
		}
		if v, ok := strings.CutPrefix(f, "cluster_workers="); ok {
			if _, t, ok := strings.Cut(v, "/"); ok {
				workers, _ = strconv.Atoi(t)
			}
		}
	}
	if shards == 0 || workers < 2 {
		return "", fmt.Errorf("rebalance needs a cluster with >=2 workers (stat: shards=%d workers=%d)", shards, workers)
	}
	moves, failures := 0, 0
	t := time.NewTicker(sc.Fault.Every)
	defer t.Stop()
	for i := 0; ; i++ {
		select {
		case <-stop:
			if failures > 0 {
				return "", fmt.Errorf("rebalance: %d of %d moves failed", failures, moves+failures)
			}
			return fmt.Sprintf("rebalance: %d shard moves across %d workers", moves, workers), nil
		case <-t.C:
		}
		s := i % shards
		w := (i + 1) % workers
		reply, err := oneShot(env.book.get(), fmt.Sprintf("move %d %d", s, w))
		if err != nil || !strings.HasPrefix(reply, "ok moved") {
			failures++
			logf("rebalance: move %d %d: %v %s", s, w, err, reply)
			continue
		}
		moves++
		logf("rebalance: shard %d -> worker %d", s, w)
	}
}

// oneShot runs a single command on a fresh connection and returns the
// first reply line.
func oneShot(addr, cmd string) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, cmd); err != nil {
		return "", err
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	reply, err := bufio.NewReader(conn).ReadString('\n')
	return strings.TrimSpace(reply), err
}

// queryGen reads gen= from a daemon's "stat" line.
func queryGen(addr string) (uint64, error) {
	stat, err := oneShot(addr, "stat")
	if err != nil {
		return 0, err
	}
	for _, f := range strings.Fields(stat) {
		if v, ok := strings.CutPrefix(f, "gen="); ok {
			return strconv.ParseUint(v, 10, 64)
		}
	}
	return 0, fmt.Errorf("stat %q carries no gen=", stat)
}
