package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Soak mode: -soak emits one JSON line per sampling window to stdout —
// a time series of client-observed throughput and latency plus the
// daemon's own runtime gauges (goroutine count and heap bytes from
// "stat") — so a multi-hour run shows drift (leaks, growing tails,
// shrinking throughput) as it happens instead of as one final average.

// soakPoint is one emitted window.
type soakPoint struct {
	T          string  `json:"t"`         // wall-clock, RFC3339
	ElapsedSec float64 `json:"elapsed_s"` // since the measurement epoch
	Admitted   int     `json:"admitted"`
	PerSec     float64 `json:"per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	Sheds      int     `json:"sheds"`
	Errs       int     `json:"errs"`
	Goroutines int     `json:"goroutines,omitempty"`
	HeapBytes  uint64  `json:"heap_bytes,omitempty"`
}

// soakSampler accumulates one window of samples from every worker.
type soakSampler struct {
	book *addrBook

	mu       sync.Mutex
	admitted int
	sheds    int
	errs     int
	durs     []time.Duration
}

func newSoakSampler(book *addrBook) *soakSampler {
	return &soakSampler{book: book}
}

// record adds one completed op to the current window. Workers call it
// from their own goroutines.
func (s *soakSampler) record(smp sample) {
	s.mu.Lock()
	switch {
	case smp.shed:
		s.sheds++
	case smp.err:
		s.errs++
	default:
		s.admitted++
		s.durs = append(s.durs, smp.dur)
	}
	s.mu.Unlock()
}

// run emits one soakPoint per window until stop closes (plus a final
// partial window so short runs still produce output).
func (s *soakSampler) run(stop <-chan struct{}, every time.Duration, epoch time.Time) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			s.emit(every, epoch)
			return
		case <-t.C:
			s.emit(every, epoch)
		}
	}
}

// emit swaps the window out and prints it.
func (s *soakSampler) emit(window time.Duration, epoch time.Time) {
	s.mu.Lock()
	pt := soakPoint{
		Admitted: s.admitted,
		Sheds:    s.sheds,
		Errs:     s.errs,
	}
	durs := s.durs
	s.admitted, s.sheds, s.errs, s.durs = 0, 0, 0, nil
	s.mu.Unlock()

	now := time.Now()
	pt.T = now.Format(time.RFC3339)
	pt.ElapsedSec = now.Sub(epoch).Seconds()
	pt.PerSec = float64(pt.Admitted) / window.Seconds()
	if len(durs) > 0 {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		q := func(f float64) float64 {
			i := int(f * float64(len(durs)-1))
			return float64(durs[i]) / float64(time.Millisecond)
		}
		pt.P50Ms, pt.P99Ms = q(0.50), q(0.99)
	}
	// The daemon's own gauges ride along when "stat" answers quickly;
	// a dead daemon (mid-failover) just omits them from this point.
	if stat, err := oneShot(s.book.get(), "stat"); err == nil {
		for _, f := range strings.Fields(stat) {
			if v, ok := strings.CutPrefix(f, "goroutines="); ok {
				pt.Goroutines, _ = strconv.Atoi(v)
			}
			if v, ok := strings.CutPrefix(f, "heap_bytes="); ok {
				pt.HeapBytes, _ = strconv.ParseUint(v, 10, 64)
			}
		}
	}
	line, err := json.Marshal(pt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: soak point: %v\n", err)
		return
	}
	fmt.Fprintln(os.Stdout, string(line))
}
