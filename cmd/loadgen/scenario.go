package main

import (
	"embed"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Scenario describes one load shape. Scenarios live as YAML files — the
// six built-ins are embedded below, and -scenario also accepts a path to
// a user-written file (same schema, see scenarios/README within each
// file's comments).
type Scenario struct {
	Name        string
	Description string

	Clients  int           // concurrent worker connections
	Duration time.Duration // measured run length (after warmup)
	Warmup   time.Duration // unrecorded ramp-up
	Batch    int           // updates per commit op
	Hotspot  float64       // fraction of inserts aimed at shared hot keys
	// Think pauses each worker between ops, bounding the offered rate to
	// roughly Clients/Think — closed-loop pacing for scenarios that must
	// not outrun a replica (an HA standby applies the feed serially; a
	// firehose would legitimately get it cut for falling behind).
	Think time.Duration
	Mix   map[string]int
	// SlowClients additionally connect byte-at-a-time clients that never
	// complete a line; ExpectCutWithin > 0 makes -check require the server
	// to cut each of them within that budget.
	SlowClients     int
	ExpectCutWithin time.Duration

	// Spike, when Multiplier > 0, joins Clients*Multiplier extra clients
	// during [At, At+Duration) — the overload phase the degradation
	// contract is asserted over.
	Spike struct {
		At         time.Duration
		Duration   time.Duration
		Multiplier int
	}

	// Fault, when Action is non-empty, injects a topology fault mid-run.
	// "failover" drains commits, kills the primary (-fault-exec), promotes
	// the standby (-failover-addr), and redirects every worker to it at
	// At. "rebalance" moves one shard to the next worker every Every
	// starting at At, under full load. Workers reconnect through faults
	// instead of dying, and the degradation contract stays asserted.
	Fault struct {
		At     time.Duration
		Action string
		Every  time.Duration
	}

	// Check bounds for -check; zero values disable the individual checks.
	Check struct {
		P99Max              time.Duration // p99 of admitted ops, any phase
		MinSpikeTputFrac    float64       // spike throughput / steady throughput
		MaxErrs             int           // non-shed op errors tolerated
		RequireShedsInSpike bool          // a real overload must shed explicitly
	}
}

//go:embed scenarios/*.yaml
var scenarioFS embed.FS

// builtinScenarios lists the embedded scenario names.
func builtinScenarios() []string {
	entries, _ := scenarioFS.ReadDir("scenarios")
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".yaml"))
	}
	sort.Strings(names)
	return names
}

// loadScenario resolves name as a built-in first, then as a file path.
func loadScenario(name string) (*Scenario, error) {
	data, err := scenarioFS.ReadFile(path.Join("scenarios", name+".yaml"))
	if err != nil {
		data, err = os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: not a built-in (%s) and not a readable file",
				name, strings.Join(builtinScenarios(), ", "))
		}
	}
	return parseScenario(data)
}

func parseScenario(data []byte) (*Scenario, error) {
	doc, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	sc := &Scenario{Batch: 8, Mix: map[string]int{}}
	sc.Check.P99Max = 2 * time.Second
	sc.Check.MinSpikeTputFrac = 0.5
	for key, v := range doc {
		switch key {
		case "name":
			sc.Name = v.(string)
		case "description":
			sc.Description = v.(string)
		case "clients":
			if sc.Clients, err = yamlInt(key, v); err != nil {
				return nil, err
			}
		case "duration":
			if sc.Duration, err = yamlDur(key, v); err != nil {
				return nil, err
			}
		case "warmup":
			if sc.Warmup, err = yamlDur(key, v); err != nil {
				return nil, err
			}
		case "batch":
			if sc.Batch, err = yamlInt(key, v); err != nil {
				return nil, err
			}
		case "hotspot":
			if sc.Hotspot, err = yamlFloat(key, v); err != nil {
				return nil, err
			}
		case "think":
			if sc.Think, err = yamlDur(key, v); err != nil {
				return nil, err
			}
		case "slow_clients":
			if sc.SlowClients, err = yamlInt(key, v); err != nil {
				return nil, err
			}
		case "expect_cut_within":
			if sc.ExpectCutWithin, err = yamlDur(key, v); err != nil {
				return nil, err
			}
		case "mix":
			m, ok := v.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("mix: want a map of op weights")
			}
			for op, w := range m {
				switch op {
				case "query", "answer", "commit":
				default:
					return nil, fmt.Errorf("mix: unknown op %q (want query|answer|commit)", op)
				}
				if sc.Mix[op], err = yamlInt("mix."+op, w); err != nil {
					return nil, err
				}
			}
		case "spike":
			m, ok := v.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("spike: want a map")
			}
			for k, sv := range m {
				switch k {
				case "at":
					if sc.Spike.At, err = yamlDur("spike.at", sv); err != nil {
						return nil, err
					}
				case "duration":
					if sc.Spike.Duration, err = yamlDur("spike.duration", sv); err != nil {
						return nil, err
					}
				case "multiplier":
					if sc.Spike.Multiplier, err = yamlInt("spike.multiplier", sv); err != nil {
						return nil, err
					}
				default:
					return nil, fmt.Errorf("spike: unknown key %q", k)
				}
			}
		case "fault":
			m, ok := v.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("fault: want a map")
			}
			for k, fv := range m {
				switch k {
				case "at":
					if sc.Fault.At, err = yamlDur("fault.at", fv); err != nil {
						return nil, err
					}
				case "action":
					s, ok := fv.(string)
					if !ok || (s != "failover" && s != "rebalance") {
						return nil, fmt.Errorf("fault.action: want failover|rebalance")
					}
					sc.Fault.Action = s
				case "every":
					if sc.Fault.Every, err = yamlDur("fault.every", fv); err != nil {
						return nil, err
					}
				default:
					return nil, fmt.Errorf("fault: unknown key %q", k)
				}
			}
		case "check":
			m, ok := v.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("check: want a map")
			}
			for k, cv := range m {
				switch k {
				case "p99_max":
					if sc.Check.P99Max, err = yamlDur("check.p99_max", cv); err != nil {
						return nil, err
					}
				case "min_spike_throughput_frac":
					if sc.Check.MinSpikeTputFrac, err = yamlFloat("check.min_spike_throughput_frac", cv); err != nil {
						return nil, err
					}
				case "max_errs":
					if sc.Check.MaxErrs, err = yamlInt("check.max_errs", cv); err != nil {
						return nil, err
					}
				case "require_sheds_in_spike":
					b, err := strconv.ParseBool(cv.(string))
					if err != nil {
						return nil, fmt.Errorf("check.require_sheds_in_spike: %v", err)
					}
					sc.Check.RequireShedsInSpike = b
				default:
					return nil, fmt.Errorf("check: unknown key %q", k)
				}
			}
		default:
			return nil, fmt.Errorf("scenario: unknown key %q", key)
		}
	}
	if sc.Name == "" {
		return nil, fmt.Errorf("scenario: name is required")
	}
	if sc.Clients <= 0 && sc.SlowClients <= 0 {
		return nil, fmt.Errorf("scenario %s: clients (or slow_clients) must be positive", sc.Name)
	}
	if sc.Duration <= 0 {
		return nil, fmt.Errorf("scenario %s: duration must be positive", sc.Name)
	}
	if len(sc.Mix) == 0 && sc.Clients > 0 {
		return nil, fmt.Errorf("scenario %s: mix must name at least one op weight", sc.Name)
	}
	if sc.Spike.Multiplier > 0 && sc.Spike.At+sc.Spike.Duration > sc.Duration {
		return nil, fmt.Errorf("scenario %s: spike window ends after the run", sc.Name)
	}
	if sc.Fault.Action != "" {
		if sc.Fault.At <= 0 || sc.Fault.At >= sc.Duration {
			return nil, fmt.Errorf("scenario %s: fault.at must fall inside the run", sc.Name)
		}
		if sc.Fault.Action == "rebalance" && sc.Fault.Every <= 0 {
			sc.Fault.Every = time.Second
		}
	}
	return sc, nil
}

func yamlInt(key string, v any) (int, error) {
	s, ok := v.(string)
	if !ok {
		return 0, fmt.Errorf("%s: want a number", key)
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", key, err)
	}
	return n, nil
}

func yamlFloat(key string, v any) (float64, error) {
	s, ok := v.(string)
	if !ok {
		return 0, fmt.Errorf("%s: want a number", key)
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", key, err)
	}
	return f, nil
}

func yamlDur(key string, v any) (time.Duration, error) {
	s, ok := v.(string)
	if !ok {
		return 0, fmt.Errorf("%s: want a duration", key)
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", key, err)
	}
	return d, nil
}

// parseYAML decodes the small YAML subset scenarios use — scalar values,
// nested maps by 2-space indentation, and "#" comments — into nested
// map[string]any with string leaves. Hand-rolled because the module is
// dependency-free by policy; anything fancier (lists, anchors, multiline
// strings) is rejected loudly rather than misparsed.
func parseYAML(data []byte) (map[string]any, error) {
	type frame struct {
		indent int
		m      map[string]any
	}
	root := map[string]any{}
	stack := []frame{{0, root}}
	var lastKey string
	var lastIndent int
	for ln, raw := range strings.Split(string(data), "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		if indent%2 != 0 {
			return nil, fmt.Errorf("yaml line %d: odd indentation", ln+1)
		}
		if strings.HasPrefix(strings.TrimSpace(line), "- ") {
			return nil, fmt.Errorf("yaml line %d: lists are not supported by this subset", ln+1)
		}
		key, val, ok := strings.Cut(strings.TrimSpace(line), ":")
		if !ok {
			return nil, fmt.Errorf("yaml line %d: want 'key: value' or 'key:'", ln+1)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		val = strings.Trim(val, `"'`)

		// Descend into a nested map opened by the previous "key:" line.
		if indent > stack[len(stack)-1].indent {
			if indent != lastIndent+2 || lastKey == "" {
				return nil, fmt.Errorf("yaml line %d: unexpected indentation", ln+1)
			}
			child := map[string]any{}
			stack[len(stack)-1].m[lastKey] = child
			stack = append(stack, frame{indent, child})
		}
		for indent < stack[len(stack)-1].indent {
			stack = stack[:len(stack)-1]
		}
		if indent != stack[len(stack)-1].indent {
			return nil, fmt.Errorf("yaml line %d: indentation matches no open block", ln+1)
		}
		top := stack[len(stack)-1].m
		if _, dup := top[key]; dup {
			return nil, fmt.Errorf("yaml line %d: duplicate key %q", ln+1, key)
		}
		if val != "" {
			top[key] = val
		} else {
			top[key] = map[string]any{} // may be replaced by a child block
		}
		lastKey, lastIndent = key, indent
	}
	return root, nil
}
