package main

import (
	"math"
	"time"
)

// hist is a log-bucketed latency histogram: bucket i covers
// [base*growth^i, base*growth^(i+1)), so relative resolution is constant
// (~5% here) across six orders of magnitude while the whole histogram is
// a few hundred counters — a load run records millions of samples without
// holding them.
type hist struct {
	counts []uint64
	total  uint64
	sum    time.Duration
	max    time.Duration
}

const (
	histBase   = 10 * time.Microsecond
	histGrowth = 1.05
	histBukets = 400 // histBase * histGrowth^400 ≈ 49 minutes
)

func newHist() *hist { return &hist{counts: make([]uint64, histBukets)} }

func bucketOf(d time.Duration) int {
	if d < histBase {
		return 0
	}
	i := int(math.Log(float64(d)/float64(histBase)) / math.Log(histGrowth))
	if i >= histBukets {
		return histBukets - 1
	}
	return i
}

// bucketLow is the lower bound of bucket i (the reported percentile
// value; pessimistic by at most one growth factor).
func bucketLow(i int) time.Duration {
	return time.Duration(float64(histBase) * math.Pow(histGrowth, float64(i)))
}

func (h *hist) record(d time.Duration) {
	h.counts[bucketOf(d)]++
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// merge folds o into h (combining per-client histograms post-run).
func (h *hist) merge(o *hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the latency at fraction q (0 < q <= 1), or 0 when the
// histogram is empty. The true value lies within one bucket width.
func (h *hist) quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return h.max
}

func (h *hist) mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}
