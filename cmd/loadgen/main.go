// Command loadgen replays YAML-described load scenarios against a
// running incgraphd (single-process, cluster coordinator, or standby)
// and reports throughput and p50/p99/p999 latency per op class and
// phase. With -check it asserts the degradation contract the daemon's
// admission gates promise: under overload, admitted throughput plateaus
// instead of collapsing, the p99 of admitted ops stays bounded, excess
// load is shed with explicit "err overloaded" replies (never hangs),
// and slow clients are cut without degrading healthy ones. With
// -parity it additionally replays every acked commit serially onto an
// empty graph and requires the daemon's post-storm state to match byte
// for byte — admitted is admitted, even under the storm.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: loadgen -addr HOST:PORT -scenario NAME [flags]

Replays a load scenario against a running incgraphd and reports
throughput and latency quantiles per op class and phase.

  -addr string       daemon address (required)
  -scenario string   built-in name or path to a scenario YAML (required)
  -clients int       override the scenario's client count
  -duration dur      override the scenario's run length
  -op-budget dur     per-op reply budget; no reply within it = hang (10s)
  -check             assert the scenario's degradation contract; exit 1 on violation
  -parity            byte-compare the post-storm graph with a serial replay of
                     the acked commits (daemon must start empty, loadgen must
                     be its only writer; after a failover scenario the replay
                     is checked against the promoted standby)
  -failover-addr A   standby to promote when the scenario's fault is failover
  -fault-exec CMD    shell command that kills the primary (failover scenarios)
  -soak              emit one JSON line per sampling window to stdout:
                     throughput, p50/p99, sheds, errs, daemon goroutines/heap
  -soak-every dur    soak sampling window (10s)
  -json FILE         also write the full report as JSON
  -md                print the latency table as markdown (for CI job summaries)
  -list              list built-in scenarios and exit

Built-in scenarios: %s

The daemon decides its own limits: start it with -scc plus admission
flags (-commit-inflight, -commit-queue, -read-inflight, -idle-timeout,
-max-conns) sized so the scenario's overload phase actually overloads.
`, strings.Join(builtinScenarios(), ", "))
}

func main() {
	fs := flag.CommandLine
	fs.Usage = usage
	addr := fs.String("addr", "", "")
	scenario := fs.String("scenario", "", "")
	clients := fs.Int("clients", 0, "")
	duration := fs.Duration("duration", 0, "")
	opBudget := fs.Duration("op-budget", 10*time.Second, "")
	doCheck := fs.Bool("check", false, "")
	doParity := fs.Bool("parity", false, "")
	failoverAddr := fs.String("failover-addr", "", "")
	faultExec := fs.String("fault-exec", "", "")
	soak := fs.Bool("soak", false, "")
	soakEvery := fs.Duration("soak-every", 10*time.Second, "")
	jsonPath := fs.String("json", "", "")
	markdown := fs.Bool("md", false, "")
	list := fs.Bool("list", false, "")
	flag.Parse()

	if *list {
		for _, name := range builtinScenarios() {
			sc, err := loadScenario(name)
			if err != nil {
				fmt.Printf("%-16s (broken: %v)\n", name, err)
				continue
			}
			fmt.Printf("%-16s %s\n", name, sc.Description)
		}
		return
	}
	if *addr == "" || *scenario == "" {
		usage()
		os.Exit(2)
	}
	sc, err := loadScenario(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	if *clients > 0 {
		sc.Clients = *clients
	}
	if *duration > 0 {
		sc.Duration = *duration
		if sc.Spike.Multiplier > 0 && sc.Spike.At+sc.Spike.Duration > sc.Duration {
			fmt.Fprintf(os.Stderr, "loadgen: -duration %v cuts off the scenario's spike window\n", *duration)
			os.Exit(2)
		}
	}

	if sc.Fault.Action == "failover" && (*failoverAddr == "" || *faultExec == "") {
		fmt.Fprintln(os.Stderr, "loadgen: a failover scenario needs -failover-addr and -fault-exec")
		os.Exit(2)
	}
	opts := runOpts{
		opBudget:     *opBudget,
		parity:       *doParity,
		failoverAddr: *failoverAddr,
		faultExec:    *faultExec,
	}
	if *soak {
		opts.soakEvery = *soakEvery
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	}
	logf("scenario %s against %s: %d clients for %v (+%v warmup)",
		sc.Name, *addr, sc.Clients, sc.Duration, sc.Warmup)
	res, err := runScenario(*addr, sc, opts, logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	if *markdown {
		printMarkdown(os.Stdout, res)
	} else {
		printText(os.Stdout, res)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: write -json:", err)
			os.Exit(1)
		}
	}
	if *doCheck && len(res.Violations) > 0 {
		os.Exit(1)
	}
}

func printText(w *os.File, res *runResult) {
	fmt.Fprintf(w, "scenario %s: %d clients, %v\n", res.Scenario, res.Clients, res.Duration)
	for _, ph := range res.Phases {
		fmt.Fprintf(w, "phase %-6s (%.1fs, %d sheds)\n", ph.Name, ph.Seconds, ph.Sheds)
		for _, cs := range ph.Classes {
			fmt.Fprintf(w, "  %-6s %6d admitted %7.1f/s  p50=%-9v p99=%-9v p999=%-9v shed=%d errs=%d\n",
				cs.Class, cs.Admitted, cs.PerSec, cs.P50, cs.P99, cs.P999, cs.Shed, cs.Errs)
		}
	}
	fmt.Fprintf(w, "hangs=%d dead_workers=%d reconnects=%d\n", res.Hangs, res.DeadWorkers, res.Reconnects)
	if res.FaultDetail != "" {
		fmt.Fprintln(w, "fault:", res.FaultDetail)
	}
	for i, cut := range res.SlowCuts {
		if cut > 0 {
			fmt.Fprintf(w, "slow client %d cut after %v\n", i, cut.Round(time.Millisecond))
		} else {
			fmt.Fprintf(w, "slow client %d never cut\n", i)
		}
	}
	if res.ParityChecked && res.ParityDetail != "" {
		fmt.Fprintln(w, "parity:", res.ParityDetail)
	}
	printViolations(w, res)
}

// printMarkdown renders the latency table for CI job summaries.
func printMarkdown(w *os.File, res *runResult) {
	fmt.Fprintf(w, "### loadgen: %s (%d clients, %v)\n\n", res.Scenario, res.Clients, res.Duration)
	fmt.Fprintln(w, "| phase | op | admitted | ops/s | p50 | p99 | p999 | shed | errs |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|")
	for _, ph := range res.Phases {
		for _, cs := range ph.Classes {
			fmt.Fprintf(w, "| %s | %s | %d | %.1f | %v | %v | %v | %d | %d |\n",
				ph.Name, cs.Class, cs.Admitted, cs.PerSec, cs.P50, cs.P99, cs.P999, cs.Shed, cs.Errs)
		}
	}
	fmt.Fprintf(w, "\nhangs=%d dead_workers=%d reconnects=%d", res.Hangs, res.DeadWorkers, res.Reconnects)
	if res.FaultDetail != "" {
		fmt.Fprintf(w, " (%s)", res.FaultDetail)
	}
	if res.ParityChecked {
		if res.ParityDetail != "" {
			fmt.Fprint(w, " parity=ok")
		} else {
			fmt.Fprint(w, " parity=FAILED")
		}
	}
	fmt.Fprintln(w)
	printViolations(w, res)
}

func printViolations(w *os.File, res *runResult) {
	if len(res.Violations) == 0 {
		return
	}
	sort.Strings(res.Violations)
	fmt.Fprintf(w, "\n%d contract violations:\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Fprintln(w, "  -", v)
	}
}
