package main

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// The log-bucketed histogram promises ~5% relative resolution; check its
// quantiles against exact order statistics on a random sample.
func TestHistQuantilesWithinBucketResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := newHist()
	var exact []time.Duration
	for i := 0; i < 20_000; i++ {
		// Log-uniform over ~5 decades, like a real latency distribution's range.
		d := time.Duration(float64(10*time.Microsecond) * math.Pow(10, rng.Float64()*5))
		h.record(d)
		exact = append(exact, d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.50, 0.99, 0.999} {
		idx := int(q*float64(len(exact))) - 1
		if idx < 0 {
			idx = 0
		}
		want := exact[idx]
		got := h.quantile(q)
		// The estimate is the lower bound of the bucket holding the rank, so
		// it may sit up to one growth factor below the exact value.
		lo := time.Duration(float64(want) / (histGrowth * histGrowth))
		if got < lo || got > want+time.Microsecond {
			t.Errorf("q%.3f = %v, exact %v (allowed [%v, %v])", q, got, want, lo, want)
		}
	}
}

func TestHistMergeAndEdgeCases(t *testing.T) {
	var empty hist
	if q := empty.quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	a, b := newHist(), newHist()
	for i := 0; i < 100; i++ {
		a.record(time.Millisecond)
		b.record(time.Second)
	}
	a.merge(b)
	if q := a.quantile(0.50); q > 2*time.Millisecond {
		t.Fatalf("merged p50 = %v, want ~1ms", q)
	}
	if q := a.quantile(0.99); q < 900*time.Millisecond {
		t.Fatalf("merged p99 = %v, want ~1s", q)
	}
	// Below the base bucket and beyond the last bucket both stay finite.
	h := newHist()
	h.record(time.Nanosecond)
	h.record(24 * time.Hour)
	if q := h.quantile(1.0); q <= 0 {
		t.Fatalf("overflow quantile = %v", q)
	}
}
