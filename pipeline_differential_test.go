package incgraph_test

// Differential test of the pipelined distributed commit: the same update
// stream drives Durable.Commit through every pipelining configuration —
// local (no Via), the cluster default (pipelined log + coalesced group
// commit), WithSerialLog, WithNoCoalesce, and both — and every cell must
// produce byte-identical per-batch summaries, final answers, and raw WAL
// file bytes. The pipelining knobs are pure performance: they may change
// when the WAL append overlaps the worker round trips and how many
// batches share a frame, but never what is committed, in what order, or
// what recovery would replay.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"incgraph"
)

func TestPipelinedCommitMatchesSerial(t *testing.T) {
	cells := []struct {
		name    string
		cluster bool
		opts    []incgraph.ClusterOption
	}{
		{"local", false, nil},
		{"pipelined", true, nil},
		{"serial-log", true, []incgraph.ClusterOption{incgraph.WithSerialLog()}},
		{"no-coalesce", true, []incgraph.ClusterOption{incgraph.WithNoCoalesce()}},
		{"serial-log+no-coalesce", true, []incgraph.ClusterOption{
			incgraph.WithSerialLog(), incgraph.WithNoCoalesce(),
		}},
	}

	type result struct {
		sums   []string // rendered summaries, one line per batch
		answer string
		wal    []byte
	}
	results := make([]result, len(cells))

	for ci, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			g, batches := diffWorkload(t, 7788)
			g.SetShards(8)
			dir := t.TempDir()
			d, err := incgraph.CreateDurable(dir, g.Clone(), incgraph.DurableOptions{
				Sync: incgraph.SyncNone,
			})
			if err != nil {
				t.Fatal(err)
			}
			kwsQ, err := incgraph.RandomKWSQuery(g, 3, 2, 7788)
			if err != nil {
				t.Fatal(err)
			}
			kws, err := incgraph.NewKWS(d.Graph().Clone(), kwsQ)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Attach(incgraph.MaintainKWS(kws)); err != nil {
				t.Fatal(err)
			}

			var apply incgraph.ApplyOptions
			if cell.cluster {
				links, _, stopWorkers := incgraph.InProcessLinks(2)
				defer stopWorkers()
				cl, err := incgraph.NewCluster(d.Graph(), links, cell.opts...)
				if err != nil {
					t.Fatal(err)
				}
				defer cl.Close()
				apply.Via = cl
			}

			res := &results[ci]
			for bi, b := range batches {
				sums, err := d.Commit(b, apply)
				if err != nil {
					t.Fatalf("batch %d: %v", bi, err)
				}
				var line []string
				for _, s := range sums {
					line = append(line, s.String())
				}
				res.sums = append(res.sums, strings.Join(line, " "))
			}
			res.answer = answerOf(t, d.Engines()[0])

			// Close flushes; the WAL file on disk is what recovery would
			// replay — it must not depend on how the commits were pipelined.
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
			if err != nil || len(wals) != 1 {
				t.Fatalf("want exactly one WAL file, got %v (%v)", wals, err)
			}
			res.wal, err = os.ReadFile(wals[0])
			if err != nil {
				t.Fatal(err)
			}
			if len(res.wal) == 0 {
				t.Fatal("WAL file is empty; nothing was logged")
			}
		})
	}

	ref := results[0]
	for ci := 1; ci < len(cells); ci++ {
		got := results[ci]
		if got.answer == "" {
			continue // that subtest already failed
		}
		for bi := range ref.sums {
			if got.sums[bi] != ref.sums[bi] {
				t.Errorf("%s: batch %d summaries diverged from local:\n got %s\nwant %s",
					cells[ci].name, bi, got.sums[bi], ref.sums[bi])
			}
		}
		if got.answer != ref.answer {
			t.Errorf("%s: final answer diverged from local run", cells[ci].name)
		}
		if !bytes.Equal(got.wal, ref.wal) {
			t.Errorf("%s: WAL bytes diverged from local run (%d vs %d bytes)",
				cells[ci].name, len(got.wal), len(ref.wal))
		}
	}
}
