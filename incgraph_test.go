package incgraph_test

import (
	"bytes"
	"testing"

	"incgraph"
)

// TestFacadeEndToEnd drives all four query classes through the public API
// on one small graph, exactly as the README quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	g := incgraph.NewGraph()
	for id, label := range map[incgraph.NodeID]string{
		1: "paper", 2: "author", 3: "venue", 4: "paper", 5: "author",
	} {
		g.AddNode(id, label)
	}
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(4, 2)
	g.AddEdge(4, 5)
	g.AddEdge(2, 1) // author ↔ paper cycle

	// RPQ.
	e, err := incgraph.NewRPQ(g, "paper.author")
	if err != nil {
		t.Fatal(err)
	}
	if e.NumMatches() != 3 { // (1,2),(4,2),(4,5)
		t.Fatalf("rpq matches = %v", e.Matches())
	}

	// SCC.
	s := incgraph.NewSCC(g)
	if s.NumComponents() != 4 { // {1,2}, {3}, {4}, {5}
		t.Fatalf("scc count = %d", s.NumComponents())
	}

	// KWS.
	ix, err := incgraph.NewKWS(g, incgraph.KWSQuery{Keywords: []string{"author", "venue"}, Bound: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.MatchAt(1); !ok {
		t.Fatalf("node 1 should be a KWS root")
	}

	// ISO.
	pg := incgraph.NewGraph()
	pg.AddNode(0, "paper")
	pg.AddNode(1, "author")
	pg.AddEdge(0, 1)
	p, err := incgraph.NewPattern(pg)
	if err != nil {
		t.Fatal(err)
	}
	iso := incgraph.NewISO(g, p)
	if iso.NumMatches() != 3 {
		t.Fatalf("iso matches = %d", iso.NumMatches())
	}
	if got := incgraph.FindMatches(g, p, 0); len(got) != 3 {
		t.Fatalf("FindMatches = %d", len(got))
	}
}

func TestFacadeIncrementalFlow(t *testing.T) {
	g := incgraph.NewGraph()
	g.AddNode(1, "a")
	g.AddNode(2, "b")
	g.AddNode(3, "c")
	g.AddEdge(1, 2)

	e, err := incgraph.NewRPQ(g, "a.b.c")
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.Apply(incgraph.Batch{incgraph.Ins(2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || d.Added[0] != (incgraph.RPQPair{Src: 1, Dst: 3}) {
		t.Fatalf("delta = %+v", d)
	}
}

func TestFacadeSSRPAndSCCBaseline(t *testing.T) {
	g := incgraph.NewGraph()
	g.AddNode(1, "x")
	g.AddNode(2, "x")
	g.AddEdge(1, 2)
	s, err := incgraph.NewSSRP(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Reachable(2) {
		t.Fatalf("2 should be reachable")
	}
	if comps := incgraph.SCCOf(g); len(comps) != 2 {
		t.Fatalf("SCCOf = %v", comps)
	}
}

func TestFacadeGenerators(t *testing.T) {
	g := incgraph.SyntheticGraph(incgraph.GraphSpec{Nodes: 100, Edges: 200, Labels: 5, Seed: 1})
	if g.NumNodes() != 100 {
		t.Fatalf("|V| = %d", g.NumNodes())
	}
	batch := incgraph.RandomUpdates(g, incgraph.UpdateSpec{Count: 20, InsertRatio: 0.5, Seed: 2})
	if len(batch) != 20 {
		t.Fatalf("|ΔG| = %d", len(batch))
	}
	if err := g.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := incgraph.Dataset("dbpedia", 0.01, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := incgraph.NewGraph()
	g.AddNode(1, "a")
	g.AddNode(2, "b")
	g.AddEdge(1, 2)
	var buf bytes.Buffer
	if err := incgraph.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := incgraph.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatalf("round trip failed")
	}
}

func TestFacadeMeter(t *testing.T) {
	g := incgraph.NewGraph()
	g.AddNode(1, "a")
	g.AddNode(2, "a")
	g.AddEdge(1, 2)
	m := &incgraph.Meter{}
	if _, err := incgraph.NewKWSMetered(g, incgraph.KWSQuery{Keywords: []string{"a"}, Bound: 2}, m); err != nil {
		t.Fatal(err)
	}
	if m.Total() == 0 {
		t.Fatalf("meter did not record work")
	}
}

func TestFacadeQueryGenerators(t *testing.T) {
	g, err := incgraph.Dataset("livej", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := incgraph.RandomKWSQuery(g, 3, 2, 1)
	if err != nil || len(q.Keywords) != 3 {
		t.Fatalf("RandomKWSQuery: %v %v", q, err)
	}
	ast, err := incgraph.RandomRPQQuery(g, 4, 1)
	if err != nil || ast.Size() != 4 {
		t.Fatalf("RandomRPQQuery: %v %v", ast, err)
	}
	p, err := incgraph.RandomISOPattern(g, 4, 5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := p.Size(); n != 4 {
		t.Fatalf("RandomISOPattern size = %d", n)
	}
	// The generated artifacts must actually run.
	if _, err := incgraph.NewKWS(g.Clone(), q); err != nil {
		t.Fatal(err)
	}
	if _, err := incgraph.NewRPQFromAst(g.Clone(), ast); err != nil {
		t.Fatal(err)
	}
	incgraph.NewISO(g.Clone(), p)
}

func TestFacadeKWSBoundExtension(t *testing.T) {
	g := incgraph.NewGraph()
	g.AddNode(1, "a")
	g.AddNode(2, "x")
	g.AddNode(3, "k")
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	ix, err := incgraph.NewKWS(g, incgraph.KWSQuery{Keywords: []string{"k"}, Bound: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumMatches() != 2 { // nodes 2 and 3
		t.Fatalf("b=1 matches = %v", ix.MatchRoots())
	}
	d, err := ix.ExtendBound(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || d.Added[0].Root != 1 {
		t.Fatalf("extension delta = %+v", d)
	}
	roots, err := ix.MatchRootsWithin(1)
	if err != nil || len(roots) != 2 {
		t.Fatalf("MatchRootsWithin(1) = %v %v", roots, err)
	}
}
