package incgraph_test

// Differential test of the HA failover path — the PR's acceptance pin. The
// same update stream drives (a) a plain single-process run at shards=8 and
// (b) an HA deployment: a primary coordinator over two shard workers with
// quorum log shipping and a hub feeding a live standby. Mid-stream the
// primary is killed without ceremony (feed severed, coordinator abandoned
// un-Closed, exactly what SIGKILL leaves behind); the standby notices,
// promotes at term+1 over the same workers — fencing the corpse — and
// applies the remaining batches. At the end, all four query classes'
// WriteAnswer bytes, the canonical snapshot encoding, and the worker
// replicas must be identical to the uninterrupted run: failing over costs
// nothing in answer fidelity.

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"incgraph"
)

func TestHAFailoverMatchesUninterruptedRun(t *testing.T) {
	g, batches := diffWorkload(t, 6060)
	g.SetShards(8)

	// The queries are fixed against the initial graph; every deployment —
	// reference, primary, promoted standby — answers the same four, however
	// much graph state it was built on.
	kwsQ, err := incgraph.RandomKWSQuery(g, 3, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	rpqQ, err := incgraph.RandomRPQQuery(g, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	isoQ, err := incgraph.RandomISOPattern(g, 3, 3, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	buildEngines := func(state *incgraph.Graph) []incgraph.Maintained {
		kws, err := incgraph.NewKWS(state.Clone(), kwsQ)
		if err != nil {
			t.Fatal(err)
		}
		rpq, err := incgraph.NewRPQFromAst(state.Clone(), rpqQ)
		if err != nil {
			t.Fatal(err)
		}
		return []incgraph.Maintained{
			incgraph.MaintainKWS(kws),
			incgraph.MaintainRPQ(rpq),
			incgraph.MaintainSCC(incgraph.NewSCC(state.Clone())),
			incgraph.MaintainISO(incgraph.NewISO(state.Clone(), isoQ)),
		}
	}

	// Uninterrupted single-process reference.
	sg := g.Clone()
	singleEngines := buildEngines(sg)
	for _, b := range batches {
		if err := sg.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		for _, m := range singleEngines {
			if _, err := m.Apply(b); err != nil {
				t.Fatalf("%s: %v", m.Class(), err)
			}
		}
	}

	// HA side: primary coordinator + two workers, hub + standby attached
	// before the stream starts (so the handshake snapshot is the initial
	// state and every batch arrives through the feed).
	cg := g.Clone()
	links, _, stopWorkers := incgraph.InProcessCluster(2)
	defer stopWorkers()
	hub := incgraph.NewClusterHub(incgraph.ClusterHubOptions{
		Term:      1,
		Heartbeat: 50 * time.Millisecond,
		Snapshot: func() (uint64, uint64, []byte, error) {
			snap, err := incgraph.EncodeSnapshot(cg)
			return 0, cg.Generation(), snap, err
		},
	})
	var standbyGraph *incgraph.Graph
	standby := incgraph.NewClusterStandby(incgraph.ClusterStandbyOptions{
		TTL: time.Second,
		Load: func(term, seq, gen uint64, snap []byte) error {
			loaded, err := incgraph.DecodeSnapshot(snap)
			if err != nil {
				return err
			}
			standbyGraph = loaded
			return nil
		},
		Apply: func(seq, postGen uint64, b incgraph.Batch) error {
			if err := standbyGraph.ApplyBatch(b); err != nil {
				return err
			}
			if standbyGraph.Generation() != postGen {
				return fmt.Errorf("standby at gen %d, primary said %d", standbyGraph.Generation(), postGen)
			}
			return nil
		},
	})
	hubConn, standbyConn := net.Pipe()
	tailDone := make(chan error, 1)
	go hub.ServeConn(hubConn)
	go func() { tailDone <- standby.Run(standbyConn) }()
	deadline := time.Now().Add(5 * time.Second)
	for hub.Standbys() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("standby never attached")
		}
		time.Sleep(time.Millisecond)
	}

	primary, err := incgraph.NewClusterWith(cg, links, incgraph.ClusterOptions{
		Term: 1, Repl: incgraph.ReplQuorum, OnCommit: hub.Feed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primaryEngines := buildEngines(cg)
	commitTo := func(g *incgraph.Graph, engines []incgraph.Maintained) func(incgraph.Batch) error {
		return func(b incgraph.Batch) error {
			if err := g.ApplyBatch(b); err != nil {
				return err
			}
			for _, m := range engines {
				if _, err := m.Apply(b); err != nil {
					return fmt.Errorf("%s: %w", m.Class(), err)
				}
			}
			return nil
		}
	}

	cut := len(batches) / 2
	for i := 0; i < cut; i++ {
		if err := primary.Apply(batches[i], commitTo(cg, primaryEngines)); err != nil {
			t.Fatalf("primary batch %d: %v", i, err)
		}
	}
	// Feeds are enqueued in commit order but acked asynchronously; wait
	// for the standby to drain the stream before killing the primary.
	deadline = time.Now().Add(5 * time.Second)
	for standby.LastSeq() != uint64(cut) {
		if time.Now().After(deadline) {
			t.Fatalf("standby at seq %d after %d commits", standby.LastSeq(), cut)
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the primary mid-stream: sever the feed and abandon the
	// coordinator without Close — its worker sessions stay open.
	hub.Close()
	hubConn.Close()
	if err := <-tailDone; err == nil {
		t.Fatal("standby tail survived the primary's death")
	}

	// Promote: the standby's graph becomes authoritative at term+1 over
	// fresh sessions to the same workers; engines are rebuilt on it the way
	// a recovering process rebuilds on a snapshot.
	promotedLinks := make([]incgraph.ClusterLink, len(links))
	for i := range links {
		conn, err := links[i].Redial()
		if err != nil {
			t.Fatal(err)
		}
		promotedLinks[i] = incgraph.ClusterLink{Conn: conn, Name: links[i].Name, Redial: links[i].Redial}
	}
	successor, err := incgraph.NewClusterWith(standbyGraph, promotedLinks, incgraph.ClusterOptions{
		Term: standby.Term() + 1, Repl: incgraph.ReplQuorum,
	})
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer successor.Close()
	successorEngines := buildEngines(standbyGraph)
	for i := cut; i < len(batches); i++ {
		if err := successor.Apply(batches[i], commitTo(standbyGraph, successorEngines)); err != nil {
			t.Fatalf("successor batch %d: %v", i, err)
		}
	}

	// The deposed primary's late commit must bounce off the fence without
	// mutating its graph.
	late := incgraph.RandomUpdates(cg.Clone(), incgraph.UpdateSpec{Count: 20, InsertRatio: 0.5, Locality: 0.8, Seed: 31})
	if err := primary.Apply(late, func(b incgraph.Batch) error { return cg.ApplyBatch(b) }); err == nil ||
		!strings.Contains(err.Error(), "fenced") {
		t.Fatalf("deposed primary's late commit: got %v, want fenced", err)
	}

	// Answer fidelity: all four query classes byte-identical to the
	// uninterrupted run.
	for i := range successorEngines {
		if got, want := answerOf(t, successorEngines[i]), answerOf(t, singleEngines[i]); got != want {
			t.Fatalf("%s answers differ after failover:\nfailover:\n%s\nuninterrupted:\n%s",
				successorEngines[i].Class(), got, want)
		}
	}
	// State fidelity: same graph, byte-identical canonical snapshot, and
	// every worker replica matching the promoted authoritative segments.
	if !standbyGraph.Equal(sg) {
		t.Fatal("failover graph diverged from the uninterrupted run")
	}
	got, err := incgraph.EncodeSnapshot(standbyGraph)
	if err != nil {
		t.Fatal(err)
	}
	want, err := incgraph.EncodeSnapshot(sg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("failover snapshot differs from the uninterrupted run's")
	}
	if err := successor.VerifyAll(); err != nil {
		t.Fatalf("worker replicas diverged after failover: %v", err)
	}
}
