package incgraph_test

// Differential test of the sharded substrate: the same random update
// stream drives a shards=1 engine and a shards=8 engine (both with an
// 8-worker budget, so the 8-shard side takes the two-phase parallel
// ApplyBatch path) for every query class, and after every batch the
// rendered (sorted) deltas, the answers, and the final graphs must be
// identical. This pins the tentpole guarantee — partition-parallel ΔG
// application with deterministic cross-shard merges is byte-identical to
// the serial path — end to end through the engines. Run with -race (CI
// does, with GOMAXPROCS=4) for the memory-model half of the guarantee.

import (
	"fmt"
	"sort"
	"testing"

	"incgraph"
)

func TestShardedMatchesUnsharded(t *testing.T) {
	g, batches := diffWorkload(t, 1337)

	kwsQ, err := incgraph.RandomKWSQuery(g, 3, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	rpqQ, err := incgraph.RandomRPQQuery(g, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	isoQ, err := incgraph.RandomISOPattern(g, 3, 3, 2, 17)
	if err != nil {
		t.Fatal(err)
	}

	classes := []struct {
		name string
		mk   func(g *incgraph.Graph) (classRun, error)
	}{
		{"kws", func(g *incgraph.Graph) (classRun, error) {
			ix, err := incgraph.NewKWS(g, kwsQ)
			if err != nil {
				return classRun{}, err
			}
			return classRun{
				apply: func(b incgraph.Batch) (string, error) {
					d, err := ix.Apply(b)
					return fmt.Sprintf("%+v", d), err
				},
				answer: func() string {
					var sb []string
					for _, r := range ix.MatchRoots() {
						m, _ := ix.MatchAt(r)
						sb = append(sb, fmt.Sprintf("%d:%v", r, m.Dists))
					}
					return fmt.Sprint(sb)
				},
			}, nil
		}},
		{"rpq", func(g *incgraph.Graph) (classRun, error) {
			e, err := incgraph.NewRPQFromAst(g, rpqQ)
			if err != nil {
				return classRun{}, err
			}
			return classRun{
				apply: func(b incgraph.Batch) (string, error) {
					d, err := e.Apply(b)
					return fmt.Sprintf("%+v", d), err
				},
				answer: func() string { return fmt.Sprint(e.Matches()) },
			}, nil
		}},
		{"iso", func(g *incgraph.Graph) (classRun, error) {
			ix := incgraph.NewISO(g, isoQ)
			return classRun{
				apply: func(b incgraph.Batch) (string, error) {
					d, err := ix.Apply(b)
					return fmt.Sprintf("%+v", d), err
				},
				answer: func() string { return fmt.Sprint(ix.Matches()) },
			}, nil
		}},
		{"scc", func(g *incgraph.Graph) (classRun, error) {
			s := incgraph.NewSCC(g)
			canon := func(cs [][]incgraph.NodeID) [][]incgraph.NodeID {
				out := append([][]incgraph.NodeID(nil), cs...)
				sort.Slice(out, func(i, j int) bool {
					return fmt.Sprint(out[i]) < fmt.Sprint(out[j])
				})
				return out
			}
			return classRun{
				apply: func(b incgraph.Batch) (string, error) {
					d, err := s.Apply(b)
					if err != nil {
						return "", err
					}
					return fmt.Sprintf("+%v -%v", canon(d.Added), canon(d.Removed)), nil
				},
				answer: func() string { return fmt.Sprint(s.ComponentsSorted()) },
			}, nil
		}},
	}

	for _, c := range classes {
		c := c
		t.Run(c.name, func(t *testing.T) {
			g1, g8 := g.Clone(), g.Clone()
			g1.SetShards(1)
			g1.SetParallelism(8)
			g8.SetShards(8)
			g8.SetParallelism(8)
			one, err := c.mk(g1)
			if err != nil {
				t.Fatalf("shards=1 build: %v", err)
			}
			eight, err := c.mk(g8)
			if err != nil {
				t.Fatalf("shards=8 build: %v", err)
			}
			if a, b := one.answer(), eight.answer(); a != b {
				t.Fatalf("initial answers differ:\nshards=1: %s\nshards=8: %s", a, b)
			}
			for i, b := range batches {
				d1, err := one.apply(b)
				if err != nil {
					t.Fatalf("batch %d shards=1: %v", i, err)
				}
				d8, err := eight.apply(b)
				if err != nil {
					t.Fatalf("batch %d shards=8: %v", i, err)
				}
				if d1 != d8 {
					t.Fatalf("batch %d deltas differ:\nshards=1: %s\nshards=8: %s", i, d1, d8)
				}
				if a, bb := one.answer(), eight.answer(); a != bb {
					t.Fatalf("batch %d answers differ:\nshards=1: %s\nshards=8: %s", i, a, bb)
				}
				if !g1.Equal(g8) || !g8.Equal(g1) {
					t.Fatalf("batch %d: graphs diverged between shard counts", i)
				}
			}
		})
	}
}

// TestShardedBatchFallbackParity drives a ΔG large enough to trip the
// cost-model batch fallback of KWS and ISO (|ΔG| far past the incremental
// crossover) and checks the fallback produces the same deltas and answers
// as a reference engine kept on the incremental regime's graph — by
// comparing against a from-scratch engine built on the post-update graph.
func TestShardedBatchFallbackParity(t *testing.T) {
	g := incgraph.SyntheticGraph(incgraph.GraphSpec{
		Nodes: 300, Edges: 1200, Labels: 3, GiantSCCFrac: 0.4, Seed: 5,
	})
	scratch := g.Clone()
	big := incgraph.RandomUpdates(scratch, incgraph.UpdateSpec{
		Count: 1600, InsertRatio: 0.6, Locality: 0.3, Seed: 6,
	})
	if err := scratch.ApplyBatch(big); err != nil {
		t.Fatalf("workload batch invalid: %v", err)
	}

	kwsQ, err := incgraph.RandomKWSQuery(g, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	gk := g.Clone()
	ix, err := incgraph.NewKWS(gk, kwsQ)
	if err != nil {
		t.Fatal(err)
	}
	pre := ix.Snapshot()
	d, err := ix.Apply(big)
	if err != nil {
		t.Fatalf("kws big apply: %v", err)
	}
	if !ix.LastEstimate().PreferBatch() {
		t.Fatalf("kws estimate did not prefer batch on |ΔG|=%d (|E|=%d): %v",
			len(big), g.NumEdges(), ix.LastEstimate())
	}
	fresh, err := incgraph.NewKWS(gk.Clone(), kwsQ)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := fmt.Sprint(ix.MatchRoots()), fmt.Sprint(fresh.MatchRoots()); a != b {
		t.Fatalf("kws fallback answer differs from fresh build:\nfallback: %s\nfresh:    %s", a, b)
	}
	// The fallback's Delta must be the exact output change: diff the pre
	// and post snapshots independently and compare classifications.
	post := ix.Snapshot()
	var wantAdd, wantRem, wantUpd []string
	for r, ds := range post {
		old, was := pre[r]
		switch {
		case !was:
			wantAdd = append(wantAdd, fmt.Sprintf("%d:%v", r, ds))
		case fmt.Sprint(old) != fmt.Sprint(ds):
			wantUpd = append(wantUpd, fmt.Sprintf("%d:%v", r, ds))
		}
	}
	for r := range pre {
		if _, ok := post[r]; !ok {
			wantRem = append(wantRem, fmt.Sprint(r))
		}
	}
	sort.Strings(wantAdd)
	sort.Strings(wantRem)
	sort.Strings(wantUpd)
	var gotAdd, gotRem, gotUpd []string
	for _, m := range d.Added {
		gotAdd = append(gotAdd, fmt.Sprintf("%d:%v", m.Root, m.Dists))
	}
	for _, r := range d.Removed {
		gotRem = append(gotRem, fmt.Sprint(r))
	}
	for _, m := range d.Updated {
		gotUpd = append(gotUpd, fmt.Sprintf("%d:%v", m.Root, m.Dists))
	}
	sort.Strings(gotAdd)
	sort.Strings(gotRem)
	sort.Strings(gotUpd)
	if fmt.Sprint(gotAdd) != fmt.Sprint(wantAdd) ||
		fmt.Sprint(gotRem) != fmt.Sprint(wantRem) ||
		fmt.Sprint(gotUpd) != fmt.Sprint(wantUpd) {
		t.Fatalf("kws fallback Delta is not the exact output change:\ngot  +%v -%v ~%v\nwant +%v -%v ~%v",
			gotAdd, gotRem, gotUpd, wantAdd, wantRem, wantUpd)
	}

	isoQ, err := incgraph.RandomISOPattern(g, 3, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	gi := g.Clone()
	ixi := incgraph.NewISO(gi, isoQ)
	preISO := make(map[string]bool)
	for _, m := range ixi.Matches() {
		preISO[m.Key()] = true
	}
	di, err := ixi.Apply(big)
	if err != nil {
		t.Fatalf("iso big apply: %v", err)
	}
	if !ixi.LastEstimate().PreferBatch() {
		t.Fatalf("iso estimate did not prefer batch on |ΔG|=%d: %v", len(big), ixi.LastEstimate())
	}
	freshISO := incgraph.NewISO(gi.Clone(), isoQ)
	if a, b := fmt.Sprint(ixi.Matches()), fmt.Sprint(freshISO.Matches()); a != b {
		t.Fatalf("iso fallback answer differs from fresh build:\nfallback: %s\nfresh:    %s", a, b)
	}
	// The fallback's Delta must be the exact set difference of old and new
	// match sets, sorted by canonical key.
	postISO := make(map[string]bool)
	for _, m := range ixi.Matches() {
		postISO[m.Key()] = true
	}
	var wantAddI, wantRemI []string
	for k := range postISO {
		if !preISO[k] {
			wantAddI = append(wantAddI, k)
		}
	}
	for k := range preISO {
		if !postISO[k] {
			wantRemI = append(wantRemI, k)
		}
	}
	sort.Strings(wantAddI)
	sort.Strings(wantRemI)
	var gotAddI, gotRemI []string
	for _, m := range di.Added {
		gotAddI = append(gotAddI, m.Key())
	}
	for _, m := range di.Removed {
		gotRemI = append(gotRemI, m.Key())
	}
	if fmt.Sprint(gotAddI) != fmt.Sprint(wantAddI) || fmt.Sprint(gotRemI) != fmt.Sprint(wantRemI) {
		t.Fatalf("iso fallback Delta is not the exact output change:\ngot  +%v -%v\nwant +%v -%v",
			gotAddI, gotRemI, wantAddI, wantRemI)
	}
	if len(gotAddI) == 0 && len(gotRemI) == 0 {
		t.Fatal("iso fallback workload produced an empty delta; test has no power")
	}
}
