package incgraph_test

// One testing.B benchmark per figure/table of the paper's evaluation
// (Section 6), on scaled-down dataset simulations. Sub-benchmarks compare
// the incremental algorithm (IncX), its unit-at-a-time variant (IncXn) and
// the batch baseline (BLINKS / RPQ_NFA / Tarjan / VF2) at the figure's
// representative operating point (|ΔG| = 10% of |G| unless the panel varies
// something else). `go test -bench=. -benchmem` regenerates the whole set;
// cmd/benchmark runs the full sweeps with all baselines.
//
// Incremental benchmarks use the apply/undo pattern: each iteration applies
// ΔG and then its inverse, so the maintained state returns to the start
// without untimed per-iteration rebuilds. One op therefore measures two
// batch applications; the batch baselines recompute from a fixed updated
// graph, so one op is one recomputation. Relative comparisons are
// unaffected (halve the incremental numbers for absolute per-batch times).

import (
	"fmt"
	"testing"

	"incgraph"
)

// benchScale keeps `go test -bench=.` affordable; cmd/benchmark -scale
// controls the full harness independently.
const benchScale = 0.1

func dataset(b *testing.B, name string, classScale float64) *incgraph.Graph {
	b.Helper()
	g, err := incgraph.Dataset(name, classScale*benchScale, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func deltaBatch(g *incgraph.Graph, pct int, seed int64) incgraph.Batch {
	count := pct * g.NumEdges() / 100
	if count < 1 {
		count = 1
	}
	return incgraph.RandomUpdates(g, incgraph.UpdateSpec{
		Count:       count,
		InsertRatio: 0.5,
		Locality:    1.0,
		Seed:        seed,
	})
}

// applyUndo is the incremental benchmark kernel.
type applier func(incgraph.Batch) error

func applyUndo(b *testing.B, fwd, rev incgraph.Batch, apply applier) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := apply(fwd); err != nil {
			b.Fatal(err)
		}
		if err := apply(rev); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- KWS panels: Fig. 8(a) dbpedia, 8(e) livej, 8(j) vary Q, 8(m) vary G.

func benchKWS(b *testing.B, ds string, m, bound, pct int) {
	g := dataset(b, ds, 1.0)
	q, err := incgraph.RandomKWSQuery(g, m, bound, 2)
	if err != nil {
		b.Fatal(err)
	}
	batch := deltaBatch(g, pct, 3)
	undo := batch.Inverse()
	b.Run("IncKWS", func(b *testing.B) {
		ix, err := incgraph.NewKWS(g.Clone(), q)
		if err != nil {
			b.Fatal(err)
		}
		applyUndo(b, batch, undo, func(bb incgraph.Batch) error { _, err := ix.Apply(bb); return err })
	})
	b.Run("IncKWSn", func(b *testing.B) {
		ix, err := incgraph.NewKWS(g.Clone(), q)
		if err != nil {
			b.Fatal(err)
		}
		applyUndo(b, batch, undo, func(bb incgraph.Batch) error { _, err := ix.ApplyUnitwise(bb); return err })
	})
	b.Run("BLINKS", func(b *testing.B) {
		h := g.Clone()
		if err := h.ApplyBatch(batch); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := incgraph.NewKWS(h.Clone(), q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig08a_KWS_dbpedia(b *testing.B) { benchKWS(b, "dbpedia", 3, 2, 10) }
func BenchmarkFig08e_KWS_livej(b *testing.B)   { benchKWS(b, "livej", 3, 2, 10) }
func BenchmarkFig08j_KWS_varyQ(b *testing.B) {
	for _, mb := range [][2]int{{2, 1}, {4, 3}, {6, 5}} {
		b.Run(fmt.Sprintf("m%d_b%d", mb[0], mb[1]), func(b *testing.B) {
			benchKWS(b, "dbpedia", mb[0], mb[1], 10)
		})
	}
}
func BenchmarkFig08m_KWS_varyG(b *testing.B) {
	for _, sc := range []float64{0.2, 0.6, 1.0} {
		b.Run(fmt.Sprintf("scale%.1f", sc), func(b *testing.B) {
			g, err := incgraph.Dataset("synthetic", sc*benchScale, 1)
			if err != nil {
				b.Fatal(err)
			}
			q, err := incgraph.RandomKWSQuery(g, 3, 2, 2)
			if err != nil {
				b.Fatal(err)
			}
			batch := deltaBatch(g, 15, 3)
			ix, err := incgraph.NewKWS(g, q)
			if err != nil {
				b.Fatal(err)
			}
			applyUndo(b, batch, batch.Inverse(), func(bb incgraph.Batch) error { _, err := ix.Apply(bb); return err })
		})
	}
}

// ---- RPQ panels: Fig. 8(b) dbpedia, 8(f) livej, 8(k) vary Q, 8(n) vary G.

func benchRPQ(b *testing.B, ds string, size, pct int) {
	g := dataset(b, ds, 0.5)
	ast, err := incgraph.RandomRPQQuery(g, size, 2)
	if err != nil {
		b.Fatal(err)
	}
	batch := deltaBatch(g, pct, 3)
	undo := batch.Inverse()
	b.Run("IncRPQ", func(b *testing.B) {
		e, err := incgraph.NewRPQFromAst(g.Clone(), ast)
		if err != nil {
			b.Fatal(err)
		}
		applyUndo(b, batch, undo, func(bb incgraph.Batch) error { _, err := e.Apply(bb); return err })
	})
	b.Run("IncRPQn", func(b *testing.B) {
		e, err := incgraph.NewRPQFromAst(g.Clone(), ast)
		if err != nil {
			b.Fatal(err)
		}
		applyUndo(b, batch, undo, func(bb incgraph.Batch) error { _, err := e.ApplyUnitwise(bb); return err })
	})
	b.Run("RPQNFA", func(b *testing.B) {
		h := g.Clone()
		if err := h.ApplyBatch(batch); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := incgraph.NewRPQFromAst(h.Clone(), ast); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig08b_RPQ_dbpedia(b *testing.B) { benchRPQ(b, "dbpedia", 4, 10) }
func BenchmarkFig08f_RPQ_livej(b *testing.B)   { benchRPQ(b, "livej", 4, 10) }
func BenchmarkFig08k_RPQ_varyQ(b *testing.B) {
	for _, size := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			benchRPQ(b, "dbpedia", size, 10)
		})
	}
}
func BenchmarkFig08n_RPQ_varyG(b *testing.B) {
	for _, sc := range []float64{0.2, 0.6, 1.0} {
		b.Run(fmt.Sprintf("scale%.1f", sc), func(b *testing.B) {
			g, err := incgraph.Dataset("synthetic", 0.5*sc*benchScale, 1)
			if err != nil {
				b.Fatal(err)
			}
			ast, err := incgraph.RandomRPQQuery(g, 4, 2)
			if err != nil {
				b.Fatal(err)
			}
			batch := deltaBatch(g, 15, 3)
			e, err := incgraph.NewRPQFromAst(g, ast)
			if err != nil {
				b.Fatal(err)
			}
			applyUndo(b, batch, batch.Inverse(), func(bb incgraph.Batch) error { _, err := e.Apply(bb); return err })
		})
	}
}

// ---- SCC panels: Fig. 8(c) dbpedia, 8(g) livej, 8(i) synthetic,
// 8(o) vary G.

func benchSCC(b *testing.B, ds string, pct int) {
	g := dataset(b, ds, 1.0)
	batch := deltaBatch(g, pct, 3)
	undo := batch.Inverse()
	b.Run("IncSCC", func(b *testing.B) {
		s := incgraph.NewSCC(g.Clone())
		applyUndo(b, batch, undo, func(bb incgraph.Batch) error { _, err := s.Apply(bb); return err })
	})
	b.Run("IncSCCn", func(b *testing.B) {
		s := incgraph.NewSCC(g.Clone())
		applyUndo(b, batch, undo, func(bb incgraph.Batch) error { _, err := s.ApplyUnitwise(bb); return err })
	})
	b.Run("Tarjan", func(b *testing.B) {
		h := g.Clone()
		if err := h.ApplyBatch(batch); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			incgraph.SCCOf(h)
		}
	})
}

func BenchmarkFig08c_SCC_dbpedia(b *testing.B)   { benchSCC(b, "dbpedia", 10) }
func BenchmarkFig08g_SCC_livej(b *testing.B)     { benchSCC(b, "livej", 10) }
func BenchmarkFig08i_SCC_synthetic(b *testing.B) { benchSCC(b, "synthetic", 10) }
func BenchmarkFig08o_SCC_varyG(b *testing.B) {
	for _, sc := range []float64{0.2, 0.6, 1.0} {
		b.Run(fmt.Sprintf("scale%.1f", sc), func(b *testing.B) {
			g, err := incgraph.Dataset("synthetic", sc*benchScale, 1)
			if err != nil {
				b.Fatal(err)
			}
			batch := deltaBatch(g, 15, 3)
			s := incgraph.NewSCC(g)
			applyUndo(b, batch, batch.Inverse(), func(bb incgraph.Batch) error { _, err := s.Apply(bb); return err })
		})
	}
}

// ---- ISO panels: Fig. 8(d) dbpedia, 8(h) livej, 8(l) vary Q, 8(p) vary G.

func benchISO(b *testing.B, ds string, vq, eq, dq, pct int) {
	g := dataset(b, ds, 1.0)
	p, err := incgraph.RandomISOPattern(g, vq, eq, dq, 2)
	if err != nil {
		b.Fatal(err)
	}
	batch := deltaBatch(g, pct, 3)
	undo := batch.Inverse()
	b.Run("IncISO", func(b *testing.B) {
		ix := incgraph.NewISO(g.Clone(), p)
		applyUndo(b, batch, undo, func(bb incgraph.Batch) error { _, err := ix.Apply(bb); return err })
	})
	b.Run("IncISOn", func(b *testing.B) {
		ix := incgraph.NewISO(g.Clone(), p)
		applyUndo(b, batch, undo, func(bb incgraph.Batch) error { _, err := ix.ApplyUnitwise(bb); return err })
	})
	b.Run("VF2", func(b *testing.B) {
		h := g.Clone()
		if err := h.ApplyBatch(batch); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			incgraph.FindMatches(h, p, 0)
		}
	})
}

func BenchmarkFig08d_ISO_dbpedia(b *testing.B) { benchISO(b, "dbpedia", 4, 6, 2, 10) }
func BenchmarkFig08h_ISO_livej(b *testing.B)   { benchISO(b, "livej", 4, 6, 2, 10) }
func BenchmarkFig08l_ISO_varyQ(b *testing.B) {
	for _, q := range [][3]int{{3, 5, 1}, {5, 7, 3}, {7, 9, 5}} {
		b.Run(fmt.Sprintf("v%d_e%d_d%d", q[0], q[1], q[2]), func(b *testing.B) {
			benchISO(b, "dbpedia", q[0], q[1], q[2], 10)
		})
	}
}
func BenchmarkFig08p_ISO_varyG(b *testing.B) {
	for _, sc := range []float64{0.2, 0.6, 1.0} {
		b.Run(fmt.Sprintf("scale%.1f", sc), func(b *testing.B) {
			g, err := incgraph.Dataset("synthetic", sc*benchScale, 1)
			if err != nil {
				b.Fatal(err)
			}
			p, err := incgraph.RandomISOPattern(g, 4, 6, 2, 2)
			if err != nil {
				b.Fatal(err)
			}
			batch := deltaBatch(g, 15, 3)
			ix := incgraph.NewISO(g, p)
			applyUndo(b, batch, batch.Inverse(), func(bb incgraph.Batch) error { _, err := ix.Apply(bb); return err })
		})
	}
}

// ---- in-text tables: unit-update speedups and batching gains.

func BenchmarkUnitUpdate(b *testing.B) {
	g := dataset(b, "dbpedia", 1.0)
	one := deltaBatch(g, 0, 5) // a single unit update
	undo := one.Inverse()
	q, err := incgraph.RandomKWSQuery(g, 3, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("KWS_inc", func(b *testing.B) {
		ix, err := incgraph.NewKWS(g.Clone(), q)
		if err != nil {
			b.Fatal(err)
		}
		applyUndo(b, one, undo, func(bb incgraph.Batch) error { _, err := ix.Apply(bb); return err })
	})
	b.Run("KWS_batch", func(b *testing.B) {
		h := g.Clone()
		if err := h.ApplyBatch(one); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := incgraph.NewKWS(h.Clone(), q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SCC_inc", func(b *testing.B) {
		s := incgraph.NewSCC(g.Clone())
		applyUndo(b, one, undo, func(bb incgraph.Batch) error { _, err := s.Apply(bb); return err })
	})
	b.Run("SCC_batch", func(b *testing.B) {
		h := g.Clone()
		if err := h.ApplyBatch(one); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			incgraph.SCCOf(h)
		}
	})
}

func BenchmarkBatchOpt(b *testing.B) {
	// The "optimization strategies improve performance by 1.6x" table:
	// grouped IncX vs unit-at-a-time IncXn at |ΔG| = 10%, KWS shown here;
	// the full table comes from cmd/benchmark -fig opt.
	g := dataset(b, "dbpedia", 1.0)
	q, err := incgraph.RandomKWSQuery(g, 3, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	batch := deltaBatch(g, 10, 3)
	undo := batch.Inverse()
	b.Run("grouped", func(b *testing.B) {
		ix, err := incgraph.NewKWS(g.Clone(), q)
		if err != nil {
			b.Fatal(err)
		}
		applyUndo(b, batch, undo, func(bb incgraph.Batch) error { _, err := ix.Apply(bb); return err })
	})
	b.Run("unitwise", func(b *testing.B) {
		ix, err := incgraph.NewKWS(g.Clone(), q)
		if err != nil {
			b.Fatal(err)
		}
		applyUndo(b, batch, undo, func(bb incgraph.Batch) error { _, err := ix.ApplyUnitwise(bb); return err })
	})
}
