package incgraph_test

// Seeded disk-fault drills over the Durable layer: the "acked ⇒ durable,
// not-acked ⇒ absent after replay" invariant must hold when the WAL's
// fsync fails mid-stream and the process then dies. Every Apply that
// returned success must be visible after recovery; every Apply the fault
// refused must have left no trace — the recovered graph equals a
// reference graph that applied exactly the acknowledged batches.

import (
	"bytes"
	"fmt"
	"testing"

	"incgraph"
)

// TestDurableFsyncFailThenCrashParity injects an fsync failure on the
// k-th WAL sync for several k, applies a stream of batches (the faulted
// one is refused), "crashes" by abandoning the handle without Close, and
// recovers the directory on the clean filesystem. Recovery must land on
// exactly the acknowledged prefix, with the SCC engine's maintained
// answers byte-identical to a reference engine fed the same acked batches.
func TestDurableFsyncFailThenCrashParity(t *testing.T) {
	// Sync #0 is the WAL-create header fsync, so k >= 1 targets an append.
	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("sync-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			g := incgraph.SyntheticGraph(incgraph.GraphSpec{
				Nodes: 100, Edges: 400, Labels: 4, GiantSCCFrac: 0.4, Seed: 17,
			})
			ref := g.Clone()

			ffs := incgraph.NewFaultFS(21, incgraph.FSRule{
				Op: "sync", Path: "wal", Index: k, Kind: incgraph.FaultSyncFail,
			})
			d, err := incgraph.CreateDurable(dir, g, incgraph.DurableOptions{FS: ffs})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Attach(incgraph.MaintainSCC(incgraph.NewSCC(g.Clone()))); err != nil {
				t.Fatal(err)
			}

			acked := 0
			for i := 0; i < 6; i++ {
				b := incgraph.RandomUpdates(ref, incgraph.UpdateSpec{
					Count: 25, InsertRatio: 0.6, Locality: 0.5, Seed: int64(700 + i),
				})
				if _, err := d.Apply(b); err != nil {
					// Refused: the batch must not exist anywhere. Later
					// batches are generated against ref, which never saw it.
					continue
				}
				if err := ref.ApplyBatch(b); err != nil {
					t.Fatal(err)
				}
				acked++
			}
			if acked != 5 {
				t.Fatalf("acked %d batches, want 5 (exactly one refusal)", acked)
			}
			// Crash: no Close, no final sync. The faulted append was rolled
			// back at refusal time, so the on-disk WAL is already clean.

			d2, err := incgraph.OpenDurable(dir, incgraph.DurableOptions{})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer d2.Close()
			scc := incgraph.MaintainSCC(incgraph.NewSCC(d2.Graph().Clone()))
			if err := d2.Attach(scc); err != nil {
				t.Fatal(err)
			}
			if err := d2.Recover(); err != nil {
				t.Fatalf("recovery replay: %v", err)
			}
			if !d2.Graph().Equal(ref) {
				t.Fatal("recovered graph != reference of acked batches: parity broken")
			}

			// Maintained answers match an engine that lived through the
			// acked stream without any disk trouble.
			refSCC := incgraph.MaintainSCC(incgraph.NewSCC(ref.Clone()))
			var got, want bytes.Buffer
			if err := scc.WriteAnswer(&got); err != nil {
				t.Fatal(err)
			}
			if err := refSCC.WriteAnswer(&want); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatal("recovered SCC answers diverge from reference")
			}
		})
	}
}
