package kws

import (
	"fmt"

	"incgraph/internal/graph"
)

// Tree is a materialized match T(r, p1,…,pm): for each keyword, the chosen
// shortest path from the root to the matching node, reconstructed from the
// next pointers of kdist(·). Paths[i][0] is always Root and the last node
// of Paths[i] is labeled Keywords[i].
type Tree struct {
	Root  graph.NodeID
	Paths [][]graph.NodeID
}

// MatchTree materializes the match rooted at r by following next pointers,
// or returns false when r is not a match root.
func (ix *Index) MatchTree(r graph.NodeID) (Tree, bool) {
	if _, ok := ix.matches[r]; !ok {
		return Tree{}, false
	}
	tr := Tree{Root: r, Paths: make([][]graph.NodeID, len(ix.q.Keywords))}
	for i := range ix.q.Keywords {
		path := []graph.NodeID{r}
		v := r
		for ix.kdist[v][i].Dist > 0 {
			v = ix.kdist[v][i].Next
			path = append(path, v)
		}
		tr.Paths[i] = path
	}
	return tr, true
}

// SumDist returns Σ dist(r, p_i), the tree weight the paper minimizes.
func (tr Tree) SumDist() int {
	sum := 0
	for _, p := range tr.Paths {
		sum += len(p) - 1
	}
	return sum
}

// Edges returns the distinct edges of the tree.
func (tr Tree) Edges() []graph.Edge {
	seen := make(map[graph.Edge]bool)
	var es []graph.Edge
	for _, p := range tr.Paths {
		for i := 0; i+1 < len(p); i++ {
			e := graph.Edge{From: p[i], To: p[i+1]}
			if !seen[e] {
				seen[e] = true
				es = append(es, e)
			}
		}
	}
	return es
}

// Check validates the index against its defining invariants. It is used by
// tests and available to callers as a consistency audit. It verifies, for
// every node and keyword:
//
//  1. dist is 0 iff the node carries the keyword label;
//  2. dist ≤ bound or dist == Unreachable;
//  3. when 0 < dist ≤ bound, the next pointer is a graph successor with
//     dist exactly one smaller (so next chains terminate at the keyword);
//  4. dist equals the true bounded shortest distance (recomputed);
//  5. the match set is exactly the set of nodes with all dists ≤ bound.
func (ix *Index) Check() error {
	fresh, err := Build(ix.g.Clone(), ix.q, nil)
	if err != nil {
		return err
	}
	truth := fresh.matches
	var fail error
	ix.g.Nodes(func(v graph.NodeID, lbl string) bool {
		row, ok := ix.kdist[v]
		if !ok {
			fail = fmt.Errorf("kws: node %d missing kdist row", v)
			return false
		}
		for i, kw := range ix.q.Keywords {
			e := row[i]
			if (e.Dist == 0) != (lbl == kw) {
				fail = fmt.Errorf("kws: node %d kw %q: dist 0 iff label, got dist=%d label=%q", v, kw, e.Dist, lbl)
				return false
			}
			if e.Dist != Unreachable && e.Dist > ix.q.Bound {
				fail = fmt.Errorf("kws: node %d kw %q: dist %d exceeds bound", v, kw, e.Dist)
				return false
			}
			if e.Dist > 0 && e.Dist <= ix.q.Bound {
				if !ix.g.HasEdge(v, e.Next) {
					fail = fmt.Errorf("kws: node %d kw %q: next %d is not a successor", v, kw, e.Next)
					return false
				}
				if ix.kdist[e.Next][i].Dist != e.Dist-1 {
					fail = fmt.Errorf("kws: node %d kw %q: next %d has dist %d, want %d",
						v, kw, e.Next, ix.kdist[e.Next][i].Dist, e.Dist-1)
					return false
				}
			}
			if e.Dist == Unreachable && e.Next != NoNext {
				fail = fmt.Errorf("kws: node %d kw %q: unreachable with next pointer", v, kw)
				return false
			}
			if want := fresh.kdist[v][i].Dist; e.Dist != want {
				fail = fmt.Errorf("kws: node %d kw %q: dist %d, batch recompute says %d", v, kw, e.Dist, want)
				return false
			}
		}
		return true
	})
	if fail != nil {
		return fail
	}
	// Distances and matches must agree with a fresh batch run.
	if len(truth) != len(ix.matches) {
		return fmt.Errorf("kws: match count %d, batch recompute has %d", len(ix.matches), len(truth))
	}
	for r, want := range truth {
		got, ok := ix.matches[r]
		if !ok {
			return fmt.Errorf("kws: missing match root %d", r)
		}
		if !intsEqual(got, want) {
			return fmt.Errorf("kws: root %d dists %v, batch says %v", r, got, want)
		}
	}
	return nil
}
