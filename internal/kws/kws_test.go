package kws

import (
	"math/rand"
	"testing"

	"incgraph/internal/cost"
	"incgraph/internal/graph"
)

// paperGraph builds the graph G of Fig. 2 (solid edges plus the dotted
// e2 = (c2,b3) and e5 = (c1,a1); e1, e3, e4 are not yet present).
//
// Nodes: a1,a2 labeled a; b1..b4 labeled b; c1,c2 labeled c; d1,d2 labeled d.
// IDs:   a1=1 a2=2 b1=11 b2=12 b3=13 b4=14 c1=21 c2=22 d1=31 d2=32.
func paperGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	add := func(id graph.NodeID, l string) { g.AddNode(id, l) }
	add(1, "a")
	add(2, "a")
	add(11, "b")
	add(12, "b")
	add(13, "b")
	add(14, "b")
	add(21, "c")
	add(22, "c")
	add(31, "d")
	add(32, "d")
	// Edges reconstructed so that every statement of the worked Examples
	// 1–3 holds (the figure itself only names the dotted e1…e5):
	edges := [][2]graph.NodeID{
		{1, 32},  // a1 → d2
		{32, 1},  // d2 → a1  (a1,d2 strongly connected)
		{11, 21}, // b1 → c1
		{11, 1},  // b1 → a1
		{21, 1},  // c1 → a1  (e5, dotted: deleted in Example 3)
		{12, 22}, // b2 → c2
		{22, 12}, // c2 → b2
		{12, 13}, // b2 → b3
		{12, 14}, // b2 → b4
		{14, 31}, // b4 → d1
		{22, 13}, // c2 → b3 (e2, dotted: deleted in Examples 2–3)
		{13, 2},  // b3 → a2
		{2, 12},  // a2 → b2
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

var paperQuery = Query{Keywords: []string{"a", "d"}, Bound: 2}

func mustBuild(t testing.TB, g *graph.Graph, q Query) *Index {
	t.Helper()
	ix, err := Build(g, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestQueryValidate(t *testing.T) {
	bad := []Query{
		{},
		{Keywords: []string{"a"}, Bound: -1},
		{Keywords: []string{""}, Bound: 1},
		{Keywords: []string{"a", "a"}, Bound: 1},
	}
	for _, q := range bad {
		if err := q.Validate(); err == nil {
			t.Fatalf("Validate(%v) accepted bad query", q)
		}
	}
	if err := paperQuery.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildOnPaperGraph(t *testing.T) {
	g := paperGraph(t)
	ix := mustBuild(t, g, paperQuery)
	// From Example 1 (before inserting e1): kdist(b2)[d] = ⟨2, b4⟩.
	if e := ix.Entry(12, 1); e.Dist != 2 || e.Next != 14 {
		t.Fatalf("kdist(b2)[d] = %+v, want dist 2 next b4", e)
	}
	// kdist(c2)[d] = ⟨⊥, nil⟩: c2 is 3 hops from any d node.
	if e := ix.Entry(22, 1); e.Dist != Unreachable || e.Next != NoNext {
		t.Fatalf("kdist(c2)[d] = %+v, want unreachable", e)
	}
	// Tb2 and Td2 are matches (roots b2 and d2); b2 reaches a2 in 2 via c2?
	// b2→c2→b3→a2 is 3; b2's a-distance is via b2→c2?… Example 1 shows Tb2
	// with branches to a and d. Verify membership only.
	if _, ok := ix.MatchAt(12); !ok {
		t.Fatalf("b2 should be a match root")
	}
	if _, ok := ix.MatchAt(32); !ok {
		t.Fatalf("d2 should be a match root")
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestExample1InsertE1(t *testing.T) {
	// Example 1: inserting e1 = (b2,d1) shortens b2's d-distance from 2 to 1
	// and makes c2 a new match root with kdist(c2)[d] = ⟨2, b2⟩.
	g := paperGraph(t)
	ix := mustBuild(t, g, paperQuery)
	delta, err := ix.ApplyInsert(graph.Ins(12, 31)) // e1 = (b2,d1)
	if err != nil {
		t.Fatal(err)
	}
	if e := ix.Entry(12, 1); e.Dist != 1 || e.Next != 31 {
		t.Fatalf("after e1, kdist(b2)[d] = %+v, want ⟨1,d1⟩", e)
	}
	if e := ix.Entry(22, 1); e.Dist != 2 || e.Next != 12 {
		t.Fatalf("after e1, kdist(c2)[d] = %+v, want ⟨2,b2⟩", e)
	}
	// The paper: "a new match Tc2 is added to Q(G1)".
	foundC2 := false
	for _, m := range delta.Added {
		if m.Root == 22 {
			foundC2 = true
		}
	}
	if !foundC2 {
		t.Fatalf("c2 not reported as a new match; delta = %+v", delta)
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestExample2DeleteE2(t *testing.T) {
	// Example 2: after inserting e1, deleting e2 = (c2,b3) splits c2's
	// shortest path to a-nodes; c2 stops being a match root.
	g := paperGraph(t)
	ix := mustBuild(t, g, paperQuery)
	if _, err := ix.ApplyInsert(graph.Ins(12, 31)); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.MatchAt(22); !ok {
		t.Fatalf("precondition: c2 must be a match after e1")
	}
	delta, err := ix.ApplyDelete(graph.Del(22, 13)) // e2 = (c2,b3)
	if err != nil {
		t.Fatal(err)
	}
	removed := false
	for _, r := range delta.Removed {
		if r == 22 {
			removed = true
		}
	}
	if !removed {
		t.Fatalf("c2 should be removed; delta = %+v", delta)
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestExample3BatchUpdates(t *testing.T) {
	// Example 3: batch ΔG inserts e1=(b2,d1), e3=(b2,a1), e4=(b4,b3) and
	// deletes e2=(c2,b3), e5=(c1,a1). Afterwards b4 becomes a match and c2
	// has a new match through (c2,b2,a1).
	g := paperGraph(t)
	ix := mustBuild(t, g, paperQuery)
	batch := graph.Batch{
		graph.Ins(12, 31), // e1
		graph.Ins(12, 1),  // e3 = (b2,a1)
		graph.Ins(14, 13), // e4 = (b4,b3)
		graph.Del(22, 13), // e2
		graph.Del(21, 1),  // e5
	}
	if _, err := ix.Apply(batch); err != nil {
		t.Fatal(err)
	}
	// b2's branches become (b2,a1) and (b2,d1): dists 1 and 1.
	m, ok := ix.MatchAt(12)
	if !ok || m.Dists[0] != 1 || m.Dists[1] != 1 {
		t.Fatalf("Tb2 = %+v, want dists [1 1]", m)
	}
	// Match Tb4 appears: b4→b3→a2 (dist 2) and b4→d1 (dist 1).
	m, ok = ix.MatchAt(14)
	if !ok || m.Dists[0] != 2 || m.Dists[1] != 1 {
		t.Fatalf("Tb4 = %+v, want dists [2 1]", m)
	}
	// T'c2 via (c2,b2,a1): dist 2 to a, 2 to d.
	m, ok = ix.MatchAt(22)
	if !ok || m.Dists[0] != 2 || m.Dists[1] != 2 {
		t.Fatalf("T'c2 = %+v, want dists [2 2]", m)
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchTree(t *testing.T) {
	g := paperGraph(t)
	ix := mustBuild(t, g, paperQuery)
	tr, ok := ix.MatchTree(12)
	if !ok {
		t.Fatalf("b2 should have a tree")
	}
	if tr.Root != 12 || len(tr.Paths) != 2 {
		t.Fatalf("tree shape: %+v", tr)
	}
	for i, p := range tr.Paths {
		if p[0] != 12 {
			t.Fatalf("path %d does not start at root: %v", i, p)
		}
		last := p[len(p)-1]
		if g.Label(last) != paperQuery.Keywords[i] {
			t.Fatalf("path %d ends at %d labeled %q", i, last, g.Label(last))
		}
		for j := 0; j+1 < len(p); j++ {
			if !g.HasEdge(p[j], p[j+1]) {
				t.Fatalf("path %d uses missing edge (%d,%d)", i, p[j], p[j+1])
			}
		}
	}
	if tr.SumDist() != len(tr.Paths[0])+len(tr.Paths[1])-2 {
		t.Fatalf("SumDist = %d", tr.SumDist())
	}
	if len(tr.Edges()) == 0 {
		t.Fatalf("tree has no edges")
	}
	if _, ok := ix.MatchTree(22); ok {
		t.Fatalf("c2 must not be a match root before e1")
	}
}

func TestInsertWithNewNodes(t *testing.T) {
	g := paperGraph(t)
	ix := mustBuild(t, g, paperQuery)
	// Insert an edge to a brand-new d-labeled node: its predecessors gain a
	// d within bound.
	if _, err := ix.ApplyInsert(graph.InsNew(13, 100, "", "d")); err != nil {
		t.Fatal(err)
	}
	if e := ix.Entry(13, 1); e.Dist != 1 || e.Next != 100 {
		t.Fatalf("kdist(b3)[d] = %+v", e)
	}
	if e := ix.Entry(100, 1); e.Dist != 0 {
		t.Fatalf("new node d-dist = %+v", e)
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyWrongOpErrors(t *testing.T) {
	g := paperGraph(t)
	ix := mustBuild(t, g, paperQuery)
	if _, err := ix.ApplyInsert(graph.Del(1, 32)); err == nil {
		t.Fatalf("ApplyInsert accepted a delete")
	}
	if _, err := ix.ApplyDelete(graph.Ins(1, 32)); err == nil {
		t.Fatalf("ApplyDelete accepted an insert")
	}
	if _, err := ix.ApplyDelete(graph.Del(1, 2)); err == nil {
		t.Fatalf("ApplyDelete accepted a missing edge")
	}
}

// randomLabeled builds a random graph over the given label set.
func randomLabeled(rng *rand.Rand, n, m int, labels []string) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i), labels[rng.Intn(len(labels))])
	}
	for i := 0; i < m; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return g
}

// randomBatch builds a valid batch of k updates against a copy of g,
// returning the batch (to be applied to equivalent graphs).
func randomBatch(rng *rand.Rand, g *graph.Graph, k int, labels []string) graph.Batch {
	sim := g.Clone()
	var batch graph.Batch
	maxID := sim.MaxNodeID()
	for len(batch) < k {
		nodes := sim.NodesSorted()
		v := nodes[rng.Intn(len(nodes))]
		switch rng.Intn(4) {
		case 0: // delete a random outgoing edge
			succ := sim.SuccessorsSorted(v)
			if len(succ) == 0 {
				continue
			}
			w := succ[rng.Intn(len(succ))]
			u := graph.Del(v, w)
			sim.Apply(u)
			batch = append(batch, u)
		case 1: // insert an edge to a new node
			maxID++
			u := graph.InsNew(v, maxID, "", labels[rng.Intn(len(labels))])
			sim.Apply(u)
			batch = append(batch, u)
		default: // insert an edge between existing nodes
			w := nodes[rng.Intn(len(nodes))]
			if sim.HasEdge(v, w) {
				continue
			}
			u := graph.Ins(v, w)
			sim.Apply(u)
			batch = append(batch, u)
		}
	}
	return batch
}

func TestIncrementalEqualsBatchRandomized(t *testing.T) {
	// The core equivalence property: for random graphs and random batches,
	// IncKWS, IncKWSn and per-unit IncKWS± all produce the state a batch
	// rebuild produces.
	labels := []string{"a", "b", "c", "d", "e"}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomLabeled(rng, 40, 90, labels)
		q := Query{Keywords: []string{"a", "d"}, Bound: 2 + int(seed%2)}
		batch := randomBatch(rng, g, 12, labels)

		ixBatch := mustBuild(t, g.Clone(), q)
		if _, err := ixBatch.Apply(batch); err != nil {
			t.Fatalf("seed %d: Apply: %v", seed, err)
		}
		if err := ixBatch.Check(); err != nil {
			t.Fatalf("seed %d: IncKWS: %v", seed, err)
		}

		ixUnit := mustBuild(t, g.Clone(), q)
		if _, err := ixUnit.ApplyUnitwise(batch); err != nil {
			t.Fatalf("seed %d: ApplyUnitwise: %v", seed, err)
		}
		if err := ixUnit.Check(); err != nil {
			t.Fatalf("seed %d: IncKWSn: %v", seed, err)
		}
		// The two variants must agree with each other, node sets included.
		if !ixBatch.Graph().Equal(ixUnit.Graph()) {
			t.Fatalf("seed %d: IncKWS and IncKWSn graphs diverge", seed)
		}
		a, b := ixBatch.Snapshot(), ixUnit.Snapshot()
		if len(a) != len(b) {
			t.Fatalf("seed %d: match sets diverge: %d vs %d", seed, len(a), len(b))
		}
		for r, ds := range a {
			if !intsEqual(b[r], ds) {
				t.Fatalf("seed %d: root %d: %v vs %v", seed, r, ds, b[r])
			}
		}
	}
}

func TestDeltaConsistencyRandomized(t *testing.T) {
	// Property: old matches ⊕ Delta == new matches.
	labels := []string{"a", "b", "c"}
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomLabeled(rng, 30, 70, labels)
		q := Query{Keywords: []string{"a", "b"}, Bound: 2}
		batch := randomBatch(rng, g, 10, labels)
		ix := mustBuild(t, g, q)
		before := ix.Snapshot()
		delta, err := ix.Apply(batch)
		if err != nil {
			t.Fatal(err)
		}
		// Apply delta to the snapshot.
		for _, r := range delta.Removed {
			if _, ok := before[r]; !ok {
				t.Fatalf("seed %d: removed root %d was not a match", seed, r)
			}
			delete(before, r)
		}
		for _, m := range delta.Added {
			if _, ok := before[m.Root]; ok {
				t.Fatalf("seed %d: added root %d already present", seed, m.Root)
			}
			before[m.Root] = m.Dists
		}
		for _, m := range delta.Updated {
			if _, ok := before[m.Root]; !ok {
				t.Fatalf("seed %d: updated root %d missing", seed, m.Root)
			}
			before[m.Root] = m.Dists
		}
		after := ix.Snapshot()
		if len(before) != len(after) {
			t.Fatalf("seed %d: delta application wrong size: %d vs %d", seed, len(before), len(after))
		}
		for r, ds := range after {
			if !intsEqual(before[r], ds) {
				t.Fatalf("seed %d: root %d: %v vs %v", seed, before[r], ds, r)
			}
		}
	}
}

func TestLocalizability(t *testing.T) {
	// Theorem 3 made executable: the cost of IncKWS depends on the
	// b-neighborhood of ΔG, not on |G|. Adding disconnected ballast must
	// leave the meter untouched.
	build := func(ballast int) (int, int) {
		g := graph.New()
		// Active region: a chain c → b → a plus keyword nodes.
		g.AddNode(1, "a")
		g.AddNode(2, "b")
		g.AddNode(3, "c")
		g.AddEdge(3, 2)
		g.AddEdge(2, 1)
		for i := 0; i < ballast; i++ {
			id := graph.NodeID(1000 + i)
			g.AddNode(id, "z")
			if i > 0 {
				g.AddEdge(id-1, id)
			}
		}
		meter := &cost.Meter{}
		ix, err := Build(g, Query{Keywords: []string{"a"}, Bound: 2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ix.meter = meter
		if _, err := ix.Apply(graph.Batch{graph.Del(2, 1), graph.Ins(3, 1)}); err != nil {
			t.Fatal(err)
		}
		return meter.Total(), ix.NumMatches()
	}
	smallCost, smallMatches := build(10)
	bigCost, bigMatches := build(10000)
	if smallCost != bigCost {
		t.Fatalf("IncKWS is not localizable: cost %d with ballast 10, %d with ballast 10000", smallCost, bigCost)
	}
	if smallMatches != bigMatches {
		t.Fatalf("ballast changed matches")
	}
}

func TestBatchAnswerMatchesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomLabeled(rng, 50, 120, []string{"a", "b", "c", "d"})
	q := Query{Keywords: []string{"a", "c"}, Bound: 3}
	ans, err := BatchAnswer(g, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix := mustBuild(t, g, q)
	if len(ans) != ix.NumMatches() {
		t.Fatalf("BatchAnswer %d matches, index %d", len(ans), ix.NumMatches())
	}
}

func TestMatchRootsSorted(t *testing.T) {
	g := paperGraph(t)
	ix := mustBuild(t, g, paperQuery)
	roots := ix.MatchRoots()
	for i := 1; i < len(roots); i++ {
		if roots[i-1] >= roots[i] {
			t.Fatalf("roots not sorted: %v", roots)
		}
	}
}

func TestBoundZero(t *testing.T) {
	// b = 0: only nodes carrying every keyword match — impossible for two
	// distinct keywords, possible for one.
	g := paperGraph(t)
	ix := mustBuild(t, g, Query{Keywords: []string{"a"}, Bound: 0})
	roots := ix.MatchRoots()
	if len(roots) != 2 || roots[0] != 1 || roots[1] != 2 {
		t.Fatalf("b=0 roots = %v", roots)
	}
	ix2 := mustBuild(t, g, Query{Keywords: []string{"a", "d"}, Bound: 0})
	if ix2.NumMatches() != 0 {
		t.Fatalf("two keywords at b=0 cannot match")
	}
}
