package kws

import (
	"math/rand"
	"testing"

	"incgraph/internal/graph"
)

func TestExtendBoundOnChain(t *testing.T) {
	// chain: 0 → 1 → 2 → 3 → k, keyword at the end.
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddNode(graph.NodeID(i), "x")
	}
	g.AddNode(9, "k")
	for i := 0; i < 3; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g.AddEdge(3, 9)
	ix := mustBuild(t, g, Query{Keywords: []string{"k"}, Bound: 1})
	if ix.NumMatches() != 2 { // node 3 (dist 1) and 9 itself (dist 0)
		t.Fatalf("b=1 matches = %v", ix.MatchRoots())
	}
	d, err := ix.ExtendBound(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 2 { // nodes 1 and 2 join
		t.Fatalf("delta = %+v", d)
	}
	if ix.Query().Bound != 3 {
		t.Fatalf("bound not updated")
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
	// Extending to the same bound is free; shrinking is refused.
	if d, err := ix.ExtendBound(3); err != nil || !d.Empty() {
		t.Fatalf("same-bound extend: %v %+v", err, d)
	}
	if _, err := ix.ExtendBound(1); err == nil {
		t.Fatalf("shrink accepted")
	}
}

func TestExtendBoundEqualsFreshBuild(t *testing.T) {
	// Property: Build(b1) + ExtendBound(b2) == Build(b2), including all
	// kdist distances, on random graphs.
	labels := []string{"a", "b", "c", "d"}
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomLabeled(rng, 35, 80, labels)
		q1 := Query{Keywords: []string{"a", "c"}, Bound: 1}
		ix := mustBuild(t, g, q1)
		if _, err := ix.ExtendBound(4); err != nil {
			t.Fatal(err)
		}
		if err := ix.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestExtendBoundAfterUpdates(t *testing.T) {
	// Interleave updates and bound extensions.
	rng := rand.New(rand.NewSource(3))
	g := randomLabeled(rng, 30, 70, []string{"a", "b", "c"})
	ix := mustBuild(t, g, Query{Keywords: []string{"a", "b"}, Bound: 1})
	batch := randomBatch(rng, g, 8, []string{"a", "b", "c"})
	if _, err := ix.Apply(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.ExtendBound(3); err != nil {
		t.Fatal(err)
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
	batch2 := randomBatch(rng, ix.Graph(), 8, []string{"a", "b", "c"})
	if _, err := ix.Apply(batch2); err != nil {
		t.Fatal(err)
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchRootsWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomLabeled(rng, 40, 100, []string{"a", "b", "c"})
	q3 := Query{Keywords: []string{"a", "b"}, Bound: 3}
	ix := mustBuild(t, g.Clone(), q3)
	for b := 0; b <= 3; b++ {
		got, err := ix.MatchRootsWithin(b)
		if err != nil {
			t.Fatal(err)
		}
		fresh := mustBuild(t, g.Clone(), Query{Keywords: []string{"a", "b"}, Bound: b})
		want := fresh.MatchRoots()
		if len(got) != len(want) {
			t.Fatalf("b=%d: %d roots, fresh build has %d", b, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("b=%d: root %d differs: %d vs %d", b, i, got[i], want[i])
			}
		}
	}
	if _, err := ix.MatchRootsWithin(5); err == nil {
		t.Fatalf("bound above maintained accepted")
	}
}

func TestExtendBoundFromZero(t *testing.T) {
	g := graph.New()
	g.AddNode(0, "x")
	g.AddNode(1, "k")
	g.AddEdge(0, 1)
	ix := mustBuild(t, g, Query{Keywords: []string{"k"}, Bound: 0})
	if ix.NumMatches() != 1 { // only the k-node itself
		t.Fatalf("b=0 matches = %v", ix.MatchRoots())
	}
	d, err := ix.ExtendBound(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || d.Added[0].Root != 0 {
		t.Fatalf("delta = %+v", d)
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
}
