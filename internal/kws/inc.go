package kws

import (
	"fmt"
	"sort"

	"incgraph/internal/cost"
	"incgraph/internal/graph"
	"incgraph/internal/pq"
)

// This file implements the incremental side of KWS:
//
//   - IncKWS+  (ApplyInsert)  — Fig. 1: decrease-only BFS propagation.
//   - IncKWS−  (ApplyDelete)  — Fig. 3: two phases, identify affected
//     entries by walking next-pointers backwards, then settle exact values
//     with a priority queue.
//   - IncKWS   (Apply)        — batch updates in three phases sharing one
//     global priority queue per keyword, so every affected entry's final
//     distance is decided at most once.
//   - IncKWSn  (ApplyUnitwise)— the unit-at-a-time baseline of the paper's
//     experiments.
//
// All methods mutate the underlying graph and the index together, and
// return the Delta of the match set.

// Delta describes changes ΔO to the output Q(G).
type Delta struct {
	// Added lists new match roots with their distance vectors.
	Added []Match
	// Removed lists roots whose match disappeared.
	Removed []graph.NodeID
	// Updated lists roots that remain matches with changed distances.
	Updated []Match
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Updated) == 0
}

// touchTracker remembers the pre-update match row of every node whose kdist
// changed, so the final Delta is computed locally.
type touchTracker struct {
	ix  *Index
	pre map[graph.NodeID][]int // nil slice = was not a match
}

func newTracker(ix *Index) *touchTracker {
	return &touchTracker{ix: ix, pre: make(map[graph.NodeID][]int)}
}

// touch records v before its first modification.
func (t *touchTracker) touch(v graph.NodeID) {
	if _, ok := t.pre[v]; ok {
		return
	}
	if ds, ok := t.ix.matches[v]; ok {
		cp := make([]int, len(ds))
		copy(cp, ds)
		t.pre[v] = cp
	} else {
		t.pre[v] = nil
	}
}

// merge folds another tracker's pre-state into t. Workers repairing
// different keywords may touch the same node; the remembered pre-rows are
// identical (the match set is immutable during repair), so first-write-wins
// makes the union independent of worker scheduling.
func (t *touchTracker) merge(o *touchTracker) {
	for v, pre := range o.pre {
		if _, ok := t.pre[v]; !ok {
			t.pre[v] = pre
		}
	}
}

// delta refreshes the match rows of all touched nodes and diffs them
// against the remembered pre-state. Output slices are sorted by root, so
// the delta is deterministic regardless of map iteration and of how many
// workers repaired the keywords.
func (t *touchTracker) delta() Delta {
	var d Delta
	for v, old := range t.pre {
		t.ix.refreshMatch(v)
		now, isMatch := t.ix.matches[v]
		switch {
		case old == nil && isMatch:
			m, _ := t.ix.MatchAt(v)
			d.Added = append(d.Added, m)
		case old != nil && !isMatch:
			d.Removed = append(d.Removed, v)
		case old != nil && isMatch && !intsEqual(old, now):
			m, _ := t.ix.MatchAt(v)
			d.Updated = append(d.Updated, m)
		}
	}
	d.sortByRoot()
	return d
}

// sortByRoot puts the delta into its canonical order (roots ascending in
// every class). Both the incremental repair and the batch-fallback path
// emit through it, so their deltas stay comparable.
func (d *Delta) sortByRoot() {
	byRoot := func(ms []Match) func(i, j int) bool {
		return func(i, j int) bool { return ms[i].Root < ms[j].Root }
	}
	sort.Slice(d.Added, byRoot(d.Added))
	sort.Slice(d.Updated, byRoot(d.Updated))
	sort.Slice(d.Removed, func(i, j int) bool { return d.Removed[i] < d.Removed[j] })
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ensureRow creates kdist rows for nodes introduced by insertions.
func (ix *Index) ensureRow(v graph.NodeID, t *touchTracker) {
	if _, ok := ix.kdist[v]; !ok {
		t.touch(v)
		ix.kdist[v] = ix.freshEntries(v)
	}
}

// ApplyInsert applies a unit edge insertion with IncKWS+ (Fig. 1). The edge
// must not exist yet; missing endpoints are created from the update labels.
func (ix *Index) ApplyInsert(u graph.Update) (Delta, error) {
	if u.Op != graph.Insert {
		return Delta{}, fmt.Errorf("kws: ApplyInsert got %v", u)
	}
	t := newTracker(ix)
	if err := ix.g.Apply(u); err != nil {
		return Delta{}, err
	}
	ix.ensureRow(u.From, t)
	ix.ensureRow(u.To, t)
	for i := range ix.q.Keywords {
		ix.insertKeyword(i, u.From, u.To, t, ix.meter)
	}
	return t.delta(), nil
}

// insertKeyword is IncKWS+ lines 1–8 for a single keyword: if (v,w) creates
// a shorter path from v to keyword i, update kdist(v) and propagate the
// decrease to ancestors with a FIFO queue.
func (ix *Index) insertKeyword(i int, v, w graph.NodeID, t *touchTracker, meter *cost.Meter) {
	wRow := ix.kdist[w]
	vRow := ix.kdist[v]
	meter.AddEntries(1)
	if wRow[i].Dist+1 >= vRow[i].Dist || wRow[i].Dist+1 > ix.q.Bound {
		return
	}
	t.touch(v)
	vRow[i] = Entry{Dist: wRow[i].Dist + 1, Next: w}
	queue := []graph.NodeID{v}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		meter.AddNodes(1)
		xd := ix.kdist[x][i].Dist
		if xd >= ix.q.Bound {
			continue // propagation cannot improve beyond the bound
		}
		ix.g.Predecessors(x, func(p graph.NodeID) bool {
			meter.AddEdges(1)
			pRow := ix.kdist[p]
			if xd+1 < pRow[i].Dist && xd+1 <= ix.q.Bound {
				t.touch(p)
				pRow[i] = Entry{Dist: xd + 1, Next: x}
				meter.AddEntries(1)
				queue = append(queue, p)
			}
			return true
		})
	}
}

// ApplyDelete applies a unit edge deletion with IncKWS− (Fig. 3).
func (ix *Index) ApplyDelete(u graph.Update) (Delta, error) {
	if u.Op != graph.Delete {
		return Delta{}, fmt.Errorf("kws: ApplyDelete got %v", u)
	}
	t := newTracker(ix)
	if err := ix.g.Apply(u); err != nil {
		return Delta{}, err
	}
	for i := range ix.q.Keywords {
		affected := ix.identifyAffected(i, []graph.Update{u}, ix.meter)
		q := pq.New[graph.NodeID]()
		ix.computePotentials(i, affected, q, t, ix.meter)
		ix.settle(i, q, t, ix.meter)
		ix.meter.AddHeapOps(q.Ops)
	}
	return t.delta(), nil
}

// identifyAffected is IncKWS− lines 1–6 generalized to several deletions:
// every node whose chosen shortest path to keyword i ran through a deleted
// edge, transitively along next pointers, is marked affected.
func (ix *Index) identifyAffected(i int, dels []graph.Update, meter *cost.Meter) map[graph.NodeID]bool {
	affected := make(map[graph.NodeID]bool)
	var stack []graph.NodeID
	for _, d := range dels {
		row, ok := ix.kdist[d.From]
		if !ok {
			continue
		}
		if row[i].Next == d.To && row[i].Dist <= ix.q.Bound && !affected[d.From] {
			affected[d.From] = true
			stack = append(stack, d.From)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		meter.AddNodes(1)
		ix.g.Predecessors(x, func(p graph.NodeID) bool {
			meter.AddEdges(1)
			pRow := ix.kdist[p]
			if !affected[p] && pRow[i].Next == x && pRow[i].Dist <= ix.q.Bound {
				affected[p] = true
				stack = append(stack, p)
			}
			return true
		})
	}
	return affected
}

// computePotentials is IncKWS− lines 7–9: each affected node gets a
// tentative distance computed from its unaffected successors, and is queued
// for the settle phase when within bound.
func (ix *Index) computePotentials(i int, affected map[graph.NodeID]bool, q *pq.Heap[graph.NodeID], t *touchTracker, meter *cost.Meter) {
	for v := range affected {
		t.touch(v)
		best := Entry{Dist: Unreachable, Next: NoNext}
		ix.g.Successors(v, func(s graph.NodeID) bool {
			meter.AddEdges(1)
			if affected[s] {
				return true
			}
			sRow, ok := ix.kdist[s]
			if !ok {
				return true
			}
			if d := sRow[i].Dist + 1; d < best.Dist || d == best.Dist && s < best.Next {
				best = Entry{Dist: d, Next: s}
			}
			return true
		})
		if best.Dist > ix.q.Bound {
			best = Entry{Dist: Unreachable, Next: NoNext}
		}
		ix.kdist[v][i] = best
		meter.AddEntries(1)
		if best.Dist <= ix.q.Bound {
			q.Push(v, best.Dist)
		}
	}
}

// settle is IncKWS− lines 10–14: Dijkstra-style settling of exact values in
// monotonically increasing distance order, relaxing predecessors within the
// bound.
func (ix *Index) settle(i int, q *pq.Heap[graph.NodeID], t *touchTracker, meter *cost.Meter) {
	for q.Len() > 0 {
		v, d, _ := q.Pop()
		meter.AddNodes(1)
		if d != ix.kdist[v][i].Dist {
			continue // superseded by a later decrease
		}
		if d >= ix.q.Bound {
			continue // cannot relax anyone within the bound
		}
		ix.g.Predecessors(v, func(p graph.NodeID) bool {
			meter.AddEdges(1)
			pRow := ix.kdist[p]
			if d+1 < pRow[i].Dist && d+1 <= ix.q.Bound {
				t.touch(p)
				pRow[i] = Entry{Dist: d + 1, Next: v}
				meter.AddEntries(1)
				q.Push(p, d+1)
			}
			return true
		})
	}
}

// Apply processes a batch update ΔG with the three-phase IncKWS algorithm.
// The batch is normalized first (late updates win); updates must be valid
// against the current graph in sequence order.
//
// Before repairing, Apply consults the cost model (cost.EstimateKWS): when
// the predicted affected area makes the incremental repair costlier than
// the BLINKS batch build — IncKWS loses that race once |ΔG| grows past
// roughly a fifth of |E| — it falls back to applying ΔG and rebuilding
// kdist from scratch, diffing the match sets for the exact same Delta.
// The decision is a pure function of graph and batch statistics, so it is
// identical at every worker and shard count.
func (ix *Index) Apply(batch graph.Batch) (Delta, error) {
	// Estimate on the normalized view: cancelled insert/delete pairs cost
	// the repair path nothing, so they must not push the model toward a
	// full rebuild.
	norm := batch.Normalize()
	insN, delsN := 0, 0
	for _, u := range norm {
		if u.Op == graph.Insert {
			insN++
		} else {
			delsN++
		}
	}
	// The shard footprint is observability only; skip its map-and-sort on
	// the tiny-batch hot path the floor always routes incremental.
	shardsTouched := 0
	if len(norm) >= cost.FallbackMinBatch {
		shardsTouched = len(norm.TouchedShards(ix.g))
	}
	ix.lastEst = cost.EstimateKWS(ix.g.NumNodes(), ix.g.NumEdges(), insN, delsN,
		ix.q.Bound, len(ix.q.Keywords), shardsTouched)
	if ix.lastEst.PreferBatch() {
		return ix.applyRebuild(batch, norm)
	}
	t := newTracker(ix)
	// Node creation is a side effect of insertions even when the edge is
	// later cancelled by a deletion, so it runs on the raw batch.
	for _, u := range batch {
		if u.Op != graph.Insert {
			continue
		}
		if ix.g.EnsureNode(u.From, u.FromLabel) {
			ix.ensureRow(u.From, t)
		}
		if ix.g.EnsureNode(u.To, u.ToLabel) {
			ix.ensureRow(u.To, t)
		}
	}
	batch = norm
	// Apply all structural updates first; kdist is repaired afterwards.
	if err := ix.g.ApplyBatch(batch); err != nil {
		return Delta{}, err
	}
	ins, dels := batch.Split()
	// The per-keyword repairs are independent (keyword i reads the shared
	// graph and writes only column i of the kdist rows), so they fan out
	// across workers. Each worker repairs with a private tracker and meter;
	// the merged result — kdist columns, touched set, delta — is identical
	// to the sequential loop.
	workers := ix.g.Parallelism()
	if workers > 1 {
		ix.g.PrepareConcurrentReads()
	}
	m := len(ix.q.Keywords)
	trackers := make([]*touchTracker, m)
	meters := make([]cost.Meter, m)
	graph.ParallelFor(workers, m, func(_, i int) {
		trackers[i] = newTracker(ix)
		ix.repairKeyword(i, ins, dels, trackers[i], &meters[i])
	})
	for i := 0; i < m; i++ {
		t.merge(trackers[i])
		ix.meter.Merge(&meters[i])
	}
	return t.delta(), nil
}

// repairKeyword runs the three phases of IncKWS for one keyword: affected
// identification over ΔG−, potentials, insertion seeding over ΔG+, and the
// shared-queue settle. It touches only column i of the kdist rows plus the
// caller's private tracker and meter, so keywords repair concurrently.
func (ix *Index) repairKeyword(i int, ins, dels graph.Batch, t *touchTracker, meter *cost.Meter) {
	// Phase (a): affected entries w.r.t. keyword i due to ΔG−, with
	// potential values, all in one global queue q_i.
	affected := ix.identifyAffected(i, dels, meter)
	q := pq.New[graph.NodeID]()
	ix.computePotentials(i, affected, q, t, meter)
	// Phase (b): insertions between unaffected endpoints seed the queue
	// instead of propagating directly, interleaving with deletions.
	for _, u := range ins {
		if affected[u.From] || affected[u.To] {
			continue
		}
		wRow := ix.kdist[u.To]
		vRow := ix.kdist[u.From]
		meter.AddEntries(1)
		if wRow[i].Dist+1 < vRow[i].Dist && wRow[i].Dist+1 <= ix.q.Bound {
			t.touch(u.From)
			vRow[i] = Entry{Dist: wRow[i].Dist + 1, Next: u.To}
			q.Push(u.From, vRow[i].Dist)
		}
	}
	// Phase (c): settle exact values once per affected entry.
	ix.settle(i, q, t, meter)
	meter.AddHeapOps(q.Ops)
}

// applyRebuild is the batch-fallback path of Apply: apply ΔG to the graph
// (node-creation side effects from the raw batch, structure from the
// caller's normalized view — the same mutation semantics as the
// incremental path), rebuild kdist and the match set from scratch with the
// batch algorithm, and derive the Delta by diffing the old match set
// against the new one — the exact output change, same as the repair path.
func (ix *Index) applyRebuild(batch, norm graph.Batch) (Delta, error) {
	old := ix.matches
	for _, u := range batch {
		if u.Op != graph.Insert {
			continue
		}
		ix.g.EnsureNode(u.From, u.FromLabel)
		ix.g.EnsureNode(u.To, u.ToLabel)
	}
	if err := ix.g.ApplyBatch(norm); err != nil {
		return Delta{}, err
	}
	fresh, err := Build(ix.g, ix.q, ix.meter)
	if err != nil {
		return Delta{}, err
	}
	ix.kdist, ix.matches = fresh.kdist, fresh.matches
	var d Delta
	for r, ds := range ix.matches {
		pre, was := old[r]
		switch {
		case !was:
			m, _ := ix.MatchAt(r)
			d.Added = append(d.Added, m)
		case !intsEqual(pre, ds):
			m, _ := ix.MatchAt(r)
			d.Updated = append(d.Updated, m)
		}
	}
	for r := range old {
		if _, is := ix.matches[r]; !is {
			d.Removed = append(d.Removed, r)
		}
	}
	d.sortByRoot()
	return d, nil
}

// LastEstimate returns the cost-model verdict of the most recent Apply:
// the predicted |AFF|, the repair-vs-batch costs, and the shard footprint
// of the batch. Benchmarks and tests use it to observe routing.
func (ix *Index) LastEstimate() cost.Estimate { return ix.lastEst }

// ApplyUnitwise is IncKWSn: it processes the batch one unit update at a
// time using the unit algorithms, the baseline the paper compares IncKWS
// against.
func (ix *Index) ApplyUnitwise(batch graph.Batch) (Delta, error) {
	t := newTracker(ix)
	for _, u := range batch {
		var err error
		if u.Op == graph.Insert {
			_, err = ix.applyInsertTracked(u, t)
		} else {
			_, err = ix.applyDeleteTracked(u, t)
		}
		if err != nil {
			return Delta{}, err
		}
	}
	return t.delta(), nil
}

func (ix *Index) applyInsertTracked(u graph.Update, t *touchTracker) (Delta, error) {
	if err := ix.g.Apply(u); err != nil {
		return Delta{}, err
	}
	ix.ensureRow(u.From, t)
	ix.ensureRow(u.To, t)
	for i := range ix.q.Keywords {
		ix.insertKeyword(i, u.From, u.To, t, ix.meter)
	}
	// Matches are refreshed once at the end by the caller's tracker.
	return Delta{}, nil
}

func (ix *Index) applyDeleteTracked(u graph.Update, t *touchTracker) (Delta, error) {
	if err := ix.g.Apply(u); err != nil {
		return Delta{}, err
	}
	for i := range ix.q.Keywords {
		affected := ix.identifyAffected(i, []graph.Update{u}, ix.meter)
		q := pq.New[graph.NodeID]()
		ix.computePotentials(i, affected, q, t, ix.meter)
		ix.settle(i, q, t, ix.meter)
		ix.meter.AddHeapOps(q.Ops)
	}
	return Delta{}, nil
}
