package kws

import (
	"fmt"
	"sort"

	"incgraph/internal/graph"
	"incgraph/internal/pq"
)

// This file implements the Remark of Section 4.2: answering KWS queries
// with varying bounds b on one maintained structure. Distances are only
// materialized up to the current bound; when a larger bound b′ arrives,
// propagation resumes from the "breakpoints" — the nodes where it
// previously stopped because the bound was reached — instead of rebuilding.
// The paper stores the breakpoints as a snapshot; we recover them with one
// scan of the kdist lists (the nodes at exactly the old bound), which keeps
// every structure consistent under interleaved updates, then reuses the
// incremental settle machinery with the breakpoints as unit-update seeds.

// ExtendBound raises the query bound to b and resumes distance propagation
// from the old frontier, returning the match-set changes. Bounds can only
// grow; answering a smaller bound needs no work (see MatchRootsWithin).
func (ix *Index) ExtendBound(b int) (Delta, error) {
	if b < ix.q.Bound {
		return Delta{}, fmt.Errorf("kws: cannot shrink bound %d to %d (use MatchRootsWithin)", ix.q.Bound, b)
	}
	if b == ix.q.Bound {
		return Delta{}, nil
	}
	old := ix.q.Bound
	ix.q.Bound = b
	t := newTracker(ix)
	for i := range ix.q.Keywords {
		// The breakpoints w.r.t. keyword i: nodes whose propagation was cut
		// at exactly the old bound. Everything nearer is final; everything
		// farther is Unreachable and will be discovered from here.
		q := pq.New[graph.NodeID]()
		for v, row := range ix.kdist {
			if row[i].Dist == old {
				q.Push(v, old)
			}
		}
		ix.settle(i, q, t, ix.meter)
		ix.meter.AddHeapOps(q.Ops)
	}
	// Every node that gained a finite distance may have become a match.
	return t.delta(), nil
}

// MatchRootsWithin answers the query under a smaller (or equal) bound b
// using the maintained lists: the roots whose every keyword distance is
// ≤ b. This is the "different b values answered with the same structure"
// capability of the Remark.
func (ix *Index) MatchRootsWithin(b int) ([]graph.NodeID, error) {
	if b > ix.q.Bound {
		return nil, fmt.Errorf("kws: bound %d exceeds maintained bound %d (use ExtendBound first)", b, ix.q.Bound)
	}
	var roots []graph.NodeID
	for v, row := range ix.kdist {
		ok := true
		for i := range row {
			if row[i].Dist > b {
				ok = false
				break
			}
		}
		if ok {
			roots = append(roots, v)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	return roots, nil
}
