// Package kws implements keyword search with distinct roots (KWS, Section
// 2.1 of Fan, Hu & Tian, SIGMOD 2017) and its localizable incremental
// algorithms (Section 4.2): IncKWS+ for unit insertions (Fig. 1), IncKWS−
// for unit deletions (Fig. 3), and the three-phase IncKWS for batch updates.
//
// A query Q = (k1,…,km) with bound b matches at root r when, for every
// keyword ki, some node labeled ki is within b directed hops of r; the
// match is the tree of the m shortest paths (hop metric), with ties broken
// by a predefined order. The auxiliary structure is the keyword-distance
// list kdist(v): per node and keyword, the shortest distance and the next
// node on the chosen shortest path. The batch builder plays the role of
// BLINKS [27]: any batch KWS algorithm "maintains something like kdist(·)".
//
// Distances are maintained only up to the bound b; anything farther is
// recorded as Unreachable, which is what makes every operation local to the
// b-neighborhood of the update (localizability, Theorem 3).
package kws

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"incgraph/internal/cost"
	"incgraph/internal/graph"
)

// Unreachable is the kdist sentinel for "no node matching the keyword
// within bound b".
const Unreachable = int(1) << 30

// NoNext marks the absence of a next pointer (dist 0 or Unreachable).
const NoNext = graph.NodeID(-1)

// Query is a keyword query (k1,…,km) with distance bound b.
type Query struct {
	Keywords []string
	Bound    int
}

// Validate checks the query is well formed.
func (q Query) Validate() error {
	if len(q.Keywords) == 0 {
		return fmt.Errorf("kws: query needs at least one keyword")
	}
	if q.Bound < 0 {
		return fmt.Errorf("kws: negative bound %d", q.Bound)
	}
	seen := make(map[string]bool, len(q.Keywords))
	for _, k := range q.Keywords {
		if k == "" {
			return fmt.Errorf("kws: empty keyword")
		}
		if seen[k] {
			return fmt.Errorf("kws: duplicate keyword %q", k)
		}
		seen[k] = true
	}
	return nil
}

// Entry is one kdist(v)[ki] record: (dist, next).
type Entry struct {
	Dist int
	Next graph.NodeID
}

// Match is a query answer rooted at Root; Dists[i] is the shortest distance
// from Root to a node labeled Keywords[i] (all ≤ Bound).
type Match struct {
	Root  graph.NodeID
	Dists []int
}

// Index is the incrementally-maintained state: the graph, the kdist lists,
// and the current match set Q(G).
type Index struct {
	g     *graph.Graph
	q     Query
	kdist map[graph.NodeID][]Entry
	// kwIDs holds the interned form of q.Keywords: the per-node label
	// checks in freshEntries compare uint32 IDs instead of strings.
	kwIDs []graph.LabelID
	// matches maps each match root to its per-keyword distance vector.
	matches map[graph.NodeID][]int
	// roots memoizes MatchRoots against the graph mutation generation:
	// the match set only moves inside Apply*, which always mutates the
	// graph first, so a matching stamp proves the sorted view is current.
	roots graph.GenCache[[]graph.NodeID]
	// lastEst records the repair-vs-batch decision of the most recent
	// Apply (cost-based fallback); see Apply and LastEstimate.
	lastEst cost.Estimate
	meter   *cost.Meter
}

// Build runs the batch algorithm: for each keyword a bounded multi-source
// reverse BFS from the keyword's nodes, producing kdist(·) and Q(G).
// The meter may be nil.
//
// The per-keyword BFS fan-outs are independent — keyword i only ever
// writes column i of the kdist rows — so they run on a worker pool sized
// by g.Parallelism(), as do the row-allocation and match-detection sweeps
// (their map installs stay serial). The result is identical to a
// sequential build.
func Build(g *graph.Graph, q Query, meter *cost.Meter) (*Index, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		g:       g,
		q:       q,
		kdist:   make(map[graph.NodeID][]Entry, g.NumNodes()),
		kwIDs:   make([]graph.LabelID, len(q.Keywords)),
		matches: make(map[graph.NodeID][]int),
		meter:   meter,
	}
	for i, kw := range q.Keywords {
		ix.kwIDs[i] = graph.InternLabel(kw)
	}
	workers := g.Parallelism()
	if workers > 1 {
		g.PrepareConcurrentReads()
	}
	// Dense node list once; the parallel sweeps index into it. With shards
	// and workers available the collection fans out per shard (order is
	// irrelevant — every row lands in a map — so it skips sorting);
	// otherwise a single append loop, as before sharding.
	nodes := make([]graph.NodeID, 0, g.NumNodes())
	if p := g.NumShards(); p > 1 && workers > 1 {
		shardRuns := make([][]graph.NodeID, p)
		graph.ParallelFor(workers, p, func(_, s int) {
			run := make([]graph.NodeID, 0, g.NumShardNodes(s))
			g.ShardNodes(s, func(v graph.NodeID, _ graph.LabelID) bool {
				run = append(run, v)
				return true
			})
			shardRuns[s] = run
		})
		for _, run := range shardRuns {
			nodes = append(nodes, run...)
		}
	} else {
		g.Nodes(func(v graph.NodeID, _ string) bool {
			nodes = append(nodes, v)
			return true
		})
	}
	rows := make([][]Entry, len(nodes))
	graph.ParallelFor(workers, len(nodes), func(_, j int) {
		rows[j] = ix.freshEntries(nodes[j])
	})
	for j, v := range nodes {
		ix.kdist[v] = rows[j]
	}
	meters := make([]cost.Meter, len(q.Keywords))
	graph.ParallelFor(workers, len(q.Keywords), func(_, i int) {
		ix.buildKeyword(i, &meters[i])
	})
	for i := range meters {
		meter.Merge(&meters[i])
	}
	matchRows := make([][]int, len(nodes))
	graph.ParallelFor(workers, len(nodes), func(_, j int) {
		matchRows[j] = ix.matchRow(nodes[j])
	})
	for j, v := range nodes {
		if matchRows[j] != nil {
			ix.matches[v] = matchRows[j]
		}
	}
	return ix, nil
}

// freshEntries returns the initial kdist row of node v: dist 0 for keywords
// equal to l(v), Unreachable otherwise.
func (ix *Index) freshEntries(v graph.NodeID) []Entry {
	row := make([]Entry, len(ix.q.Keywords))
	lbl := ix.g.LabelIDAt(v)
	for i, kw := range ix.kwIDs {
		if lbl == kw {
			row[i] = Entry{Dist: 0, Next: NoNext}
		} else {
			row[i] = Entry{Dist: Unreachable, Next: NoNext}
		}
	}
	return row
}

// buildKeyword fills kdist(·)[i] by reverse BFS from all nodes labeled the
// keyword, bounded by q.Bound. It runs concurrently with other keywords:
// the meter is the caller's private accumulator, and every write lands in
// column i only.
func (ix *Index) buildKeyword(i int, meter *cost.Meter) {
	type item struct {
		v graph.NodeID
		d int
	}
	var queue []item
	ix.g.NodesWithLabelID(ix.kwIDs[i], func(v graph.NodeID) bool {
		queue = append(queue, item{v, 0})
		return true
	})
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		meter.AddNodes(1)
		if it.d == ix.q.Bound {
			continue
		}
		ix.g.Predecessors(it.v, func(u graph.NodeID) bool {
			meter.AddEdges(1)
			row := ix.kdist[u]
			if it.d+1 < row[i].Dist {
				row[i] = Entry{Dist: it.d + 1, Next: it.v}
				meter.AddEntries(1)
				queue = append(queue, item{u, it.d + 1})
			}
			return true
		})
	}
}

// matchRow returns v's per-keyword distance vector when v is a match root,
// nil otherwise. Read-only: safe to call concurrently between mutations.
func (ix *Index) matchRow(v graph.NodeID) []int {
	row, ok := ix.kdist[v]
	if !ok {
		return nil
	}
	for _, e := range row {
		if e.Dist > ix.q.Bound {
			return nil
		}
	}
	ds := make([]int, len(row))
	for i, e := range row {
		ds[i] = e.Dist
	}
	return ds
}

// refreshMatch recomputes whether v is a match root, updating the match set.
func (ix *Index) refreshMatch(v graph.NodeID) {
	if ds := ix.matchRow(v); ds != nil {
		ix.matches[v] = ds
	} else {
		delete(ix.matches, v)
	}
}

// Graph returns the underlying graph (shared, mutated by Apply*).
func (ix *Index) Graph() *graph.Graph { return ix.g }

// Query returns the query the index answers.
func (ix *Index) Query() Query { return ix.q }

// Entry returns kdist(v)[i].
func (ix *Index) Entry(v graph.NodeID, i int) Entry {
	row, ok := ix.kdist[v]
	if !ok {
		return Entry{Dist: Unreachable, Next: NoNext}
	}
	return row[i]
}

// MatchRoots returns the roots of Q(G) in ascending order. The slice is
// memoized against the graph's mutation generation — repeated calls
// between updates are O(1) — and shared: treat it as read-only; it is
// valid until the next Apply*.
func (ix *Index) MatchRoots() []graph.NodeID {
	return ix.roots.Get(ix.g, func() []graph.NodeID {
		roots := make([]graph.NodeID, 0, len(ix.matches))
		for r := range ix.matches {
			roots = append(roots, r)
		}
		sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
		return roots
	})
}

// MatchAt returns the match rooted at r, or false if r is not a root.
func (ix *Index) MatchAt(r graph.NodeID) (Match, bool) {
	ds, ok := ix.matches[r]
	if !ok {
		return Match{}, false
	}
	out := make([]int, len(ds))
	copy(out, ds)
	return Match{Root: r, Dists: out}, true
}

// NumMatches returns |Q(G)|.
func (ix *Index) NumMatches() int { return len(ix.matches) }

// WriteAnswer serializes Q(G) in canonical text form: one line per match
// root, ascending, "root <id> <d1> <d2> ...". Identical answers always
// produce identical bytes, whatever worker, shard or recovery path built
// them — the durability layer's recovery-parity checks and the incgraphd
// answer dumps both rely on this. Safe under the read-share contract.
func (ix *Index) WriteAnswer(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range ix.MatchRoots() {
		if _, err := fmt.Fprintf(bw, "root %d", r); err != nil {
			return err
		}
		for _, d := range ix.matches[r] {
			if _, err := fmt.Fprintf(bw, " %d", d); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Snapshot returns a copy of the match set, root → dist vector. Tests and
// the public Delta computation use it.
func (ix *Index) Snapshot() map[graph.NodeID][]int {
	out := make(map[graph.NodeID][]int, len(ix.matches))
	for r, ds := range ix.matches {
		cp := make([]int, len(ds))
		copy(cp, ds)
		out[r] = cp
	}
	return out
}

// BatchAnswer computes Q(G) from scratch without retaining an index: the
// batch baseline the experiments compare against.
func BatchAnswer(g *graph.Graph, q Query, meter *cost.Meter) (map[graph.NodeID][]int, error) {
	ix, err := Build(g, q, meter)
	if err != nil {
		return nil, err
	}
	return ix.matches, nil
}
