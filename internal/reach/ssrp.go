// Package reach implements SSRP, the single-source reachability problem to
// all vertices (Section 3 of Fan, Hu & Tian, SIGMOD 2017). SSRP is the
// anchor of the paper's ∆-reductions: its incremental problem is known to
// be unbounded under unit edge deletions but bounded under unit edge
// insertions [38]. The implementation exhibits exactly that asymmetry: the
// insertion path does work proportional to |CHANGED| (the newly reachable
// nodes), while the deletion path falls back to recomputation when the
// deleted edge was load-bearing.
package reach

import (
	"fmt"
	"sort"

	"incgraph/internal/cost"
	"incgraph/internal/graph"
)

// SSRP maintains, for a fixed source, the set of reachable nodes.
type SSRP struct {
	g     *graph.Graph
	src   graph.NodeID
	reach map[graph.NodeID]bool
	meter *cost.Meter
}

// Build computes reachability from src with one BFS. The meter may be nil.
func Build(g *graph.Graph, src graph.NodeID, meter *cost.Meter) (*SSRP, error) {
	if !g.HasNode(src) {
		return nil, fmt.Errorf("reach: source %d not in graph", src)
	}
	s := &SSRP{g: g, src: src, reach: make(map[graph.NodeID]bool), meter: meter}
	s.rebuild()
	return s, nil
}

func (s *SSRP) rebuild() {
	s.reach = make(map[graph.NodeID]bool, len(s.reach))
	s.g.BFSFrom([]graph.NodeID{s.src}, func(v graph.NodeID, _ int) bool {
		s.meter.AddNodes(1)
		s.reach[v] = true
		return true
	})
}

// Source returns the fixed source node.
func (s *SSRP) Source() graph.NodeID { return s.src }

// Reachable reports r(v).
func (s *SSRP) Reachable(v graph.NodeID) bool { return s.reach[v] }

// NumReachable returns |{v : r(v)}|.
func (s *SSRP) NumReachable() int { return len(s.reach) }

// ReachableSorted returns the reachable set in ascending order.
func (s *SSRP) ReachableSorted() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s.reach))
	for v := range s.reach {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ApplyInsert applies a unit insertion; the returned slice lists nodes that
// became reachable. This path is bounded: its cost is O(|ΔO|) — a BFS over
// exactly the newly reachable region.
func (s *SSRP) ApplyInsert(u graph.Update) ([]graph.NodeID, error) {
	if u.Op != graph.Insert {
		return nil, fmt.Errorf("reach: ApplyInsert got %v", u)
	}
	s.g.EnsureNode(u.From, u.FromLabel)
	s.g.EnsureNode(u.To, u.ToLabel)
	if err := s.g.Apply(u); err != nil {
		return nil, err
	}
	if !s.reach[u.From] || s.reach[u.To] {
		return nil, nil
	}
	var added []graph.NodeID
	stack := []graph.NodeID{u.To}
	s.reach[u.To] = true
	added = append(added, u.To)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s.meter.AddNodes(1)
		s.g.Successors(v, func(w graph.NodeID) bool {
			s.meter.AddEdges(1)
			if !s.reach[w] {
				s.reach[w] = true
				added = append(added, w)
				stack = append(stack, w)
			}
			return true
		})
	}
	sort.Slice(added, func(i, j int) bool { return added[i] < added[j] })
	return added, nil
}

// ApplyDelete applies a unit deletion; the returned slice lists nodes that
// became unreachable. There is no bounded algorithm for this direction
// (Theorem 1's anchor [38]); when the deleted edge connected two reachable
// nodes the implementation recomputes from scratch.
func (s *SSRP) ApplyDelete(u graph.Update) ([]graph.NodeID, error) {
	if u.Op != graph.Delete {
		return nil, fmt.Errorf("reach: ApplyDelete got %v", u)
	}
	if err := s.g.Apply(u); err != nil {
		return nil, err
	}
	if !s.reach[u.From] || !s.reach[u.To] {
		return nil, nil
	}
	old := s.reach
	s.rebuild()
	var removed []graph.NodeID
	for v := range old {
		if !s.reach[v] {
			removed = append(removed, v)
		}
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
	return removed, nil
}

// Check audits the maintained set against a fresh BFS.
func (s *SSRP) Check() error {
	fresh, err := Build(s.g, s.src, nil)
	if err != nil {
		return err
	}
	if len(fresh.reach) != len(s.reach) {
		return fmt.Errorf("reach: %d reachable, fresh BFS says %d", len(s.reach), len(fresh.reach))
	}
	for v := range s.reach {
		if !fresh.reach[v] {
			return fmt.Errorf("reach: %d wrongly marked reachable", v)
		}
	}
	return nil
}
