package reach

import (
	"math/rand"
	"testing"

	"incgraph/internal/cost"
	"incgraph/internal/graph"
)

func chain(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i), "x")
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return g
}

func TestBuildAndQueries(t *testing.T) {
	g := chain(5)
	s, err := Build(g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Source() != 1 || s.NumReachable() != 4 {
		t.Fatalf("reach = %v", s.ReachableSorted())
	}
	if s.Reachable(0) || !s.Reachable(4) {
		t.Fatalf("membership wrong")
	}
	if _, err := Build(g, 99, nil); err == nil {
		t.Fatalf("missing source accepted")
	}
}

func TestInsertBounded(t *testing.T) {
	g := chain(4)
	g.AddNode(10, "x")
	g.AddNode(11, "x")
	g.AddEdge(10, 11)
	s, _ := Build(g, 0, nil)
	added, err := s.ApplyInsert(graph.Ins(3, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 2 || added[0] != 10 || added[1] != 11 {
		t.Fatalf("added = %v", added)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	// Inserting an edge between already-reachable nodes changes nothing.
	added, err = s.ApplyInsert(graph.Ins(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if added != nil {
		t.Fatalf("no-op insert added %v", added)
	}
}

func TestInsertCostBoundedByChanged(t *testing.T) {
	// The insertion path must not scale with |G| when |ΔO| is fixed.
	run := func(extra int) int {
		g := chain(3)
		g.AddNode(50, "x")
		for i := 0; i < extra; i++ {
			id := graph.NodeID(1000 + i)
			g.AddNode(id, "x")
			if i > 0 {
				g.AddEdge(id-1, id)
			}
		}
		s, _ := Build(g, 0, nil)
		m := &cost.Meter{}
		s.meter = m
		if _, err := s.ApplyInsert(graph.Ins(2, 50)); err != nil {
			t.Fatal(err)
		}
		return m.Total()
	}
	if a, b := run(10), run(5000); a != b {
		t.Fatalf("insert cost grew with |G|: %d vs %d", a, b)
	}
}

func TestDeleteRecomputes(t *testing.T) {
	g := chain(5)
	s, _ := Build(g, 0, nil)
	removed, err := s.ApplyDelete(graph.Del(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 || removed[0] != 3 || removed[1] != 4 {
		t.Fatalf("removed = %v", removed)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	// Deleting an edge outside the reachable region is free.
	g.AddNode(70, "x")
	g.AddNode(71, "x")
	g.AddEdge(70, 71)
	removed, err = s.ApplyDelete(graph.Del(70, 71))
	if err != nil {
		t.Fatal(err)
	}
	if removed != nil {
		t.Fatalf("irrelevant delete removed %v", removed)
	}
}

func TestErrors(t *testing.T) {
	g := chain(3)
	s, _ := Build(g, 0, nil)
	if _, err := s.ApplyInsert(graph.Del(0, 1)); err == nil {
		t.Fatalf("ApplyInsert accepted delete")
	}
	if _, err := s.ApplyDelete(graph.Ins(0, 1)); err == nil {
		t.Fatalf("ApplyDelete accepted insert")
	}
	if _, err := s.ApplyDelete(graph.Del(2, 0)); err == nil {
		t.Fatalf("missing edge deletion accepted")
	}
}

func TestRandomizedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 12
		g := graph.New()
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i), "x")
		}
		for i := 0; i < 20; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		s, err := Build(g, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 40; step++ {
			v := graph.NodeID(rng.Intn(n))
			w := graph.NodeID(rng.Intn(n))
			if g.HasEdge(v, w) {
				if _, err := s.ApplyDelete(graph.Del(v, w)); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := s.ApplyInsert(graph.Ins(v, w)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Check(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
	}
}
