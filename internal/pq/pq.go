// Package pq provides an indexed binary min-heap with decrease-key, the
// priority queue q_i used by the paper's incremental algorithms (IncKWS−
// line 9/14, IncKWS phase (c), IncRPQ line 4/8, rank reallocation in
// IncSCC). Keys are ints (hop distances, ranks); values are any comparable
// identifier such as a node ID or a (source, node, state) triple.
package pq

// Heap is an indexed min-heap. The zero value is not usable; call New.
type Heap[T comparable] struct {
	keys []int
	vals []T
	pos  map[T]int
	// Ops counts pushes, pops and key updates, for cost accounting.
	Ops int
}

// New returns an empty heap.
func New[T comparable]() *Heap[T] {
	return &Heap[T]{pos: make(map[T]int)}
}

// Len returns the number of queued values.
func (h *Heap[T]) Len() int { return len(h.vals) }

// Contains reports whether v is queued.
func (h *Heap[T]) Contains(v T) bool {
	_, ok := h.pos[v]
	return ok
}

// Key returns the current key of v and whether v is queued.
func (h *Heap[T]) Key(v T) (int, bool) {
	i, ok := h.pos[v]
	if !ok {
		return 0, false
	}
	return h.keys[i], true
}

// Push inserts v with the given key, or updates v's key if already queued
// (both decrease and increase are handled). This implements the paper's
// q.insert and q.decrease in one operation.
func (h *Heap[T]) Push(v T, key int) {
	h.Ops++
	if i, ok := h.pos[v]; ok {
		old := h.keys[i]
		h.keys[i] = key
		if key < old {
			h.up(i)
		} else if key > old {
			h.down(i)
		}
		return
	}
	h.keys = append(h.keys, key)
	h.vals = append(h.vals, v)
	i := len(h.vals) - 1
	h.pos[v] = i
	h.up(i)
}

// Pop removes and returns the value with the minimum key. The boolean is
// false when the heap is empty. This is the paper's q.pull_min().
func (h *Heap[T]) Pop() (T, int, bool) {
	var zero T
	if len(h.vals) == 0 {
		return zero, 0, false
	}
	h.Ops++
	v, k := h.vals[0], h.keys[0]
	last := len(h.vals) - 1
	h.swap(0, last)
	h.keys = h.keys[:last]
	h.vals = h.vals[:last]
	delete(h.pos, v)
	if last > 0 {
		h.down(0)
	}
	return v, k, true
}

// Remove deletes v from the heap if queued and reports whether it was.
func (h *Heap[T]) Remove(v T) bool {
	i, ok := h.pos[v]
	if !ok {
		return false
	}
	h.Ops++
	last := len(h.vals) - 1
	h.swap(i, last)
	h.keys = h.keys[:last]
	h.vals = h.vals[:last]
	delete(h.pos, v)
	if i < last {
		h.down(i)
		h.up(i)
	}
	return true
}

func (h *Heap[T]) swap(i, j int) {
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.vals[i], h.vals[j] = h.vals[j], h.vals[i]
	h.pos[h.vals[i]] = i
	h.pos[h.vals[j]] = j
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[parent] <= h.keys[i] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.vals)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.keys[l] < h.keys[small] {
			small = l
		}
		if r < n && h.keys[r] < h.keys[small] {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
