package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapBasics(t *testing.T) {
	h := New[string]()
	if _, _, ok := h.Pop(); ok {
		t.Fatalf("pop of empty heap succeeded")
	}
	h.Push("a", 3)
	h.Push("b", 1)
	h.Push("c", 2)
	if h.Len() != 3 || !h.Contains("b") {
		t.Fatalf("heap state wrong")
	}
	if k, ok := h.Key("a"); !ok || k != 3 {
		t.Fatalf("Key(a) = %d,%v", k, ok)
	}
	v, k, _ := h.Pop()
	if v != "b" || k != 1 {
		t.Fatalf("pop = %s,%d", v, k)
	}
	if h.Contains("b") {
		t.Fatalf("popped value still queued")
	}
}

func TestDecreaseAndIncreaseKey(t *testing.T) {
	h := New[int]()
	for i := 0; i < 10; i++ {
		h.Push(i, 100+i)
	}
	h.Push(7, 1)   // decrease
	h.Push(0, 999) // increase
	v, k, _ := h.Pop()
	if v != 7 || k != 1 {
		t.Fatalf("decrease-key ignored: %d,%d", v, k)
	}
	var lastVal int
	for h.Len() > 0 {
		lastVal, _, _ = h.Pop()
	}
	if lastVal != 0 {
		t.Fatalf("increase-key ignored: last popped %d", lastVal)
	}
}

func TestRemove(t *testing.T) {
	h := New[int]()
	for i := 0; i < 5; i++ {
		h.Push(i, i)
	}
	if !h.Remove(2) || h.Remove(2) {
		t.Fatalf("Remove semantics wrong")
	}
	var got []int
	for h.Len() > 0 {
		v, _, _ := h.Pop()
		got = append(got, v)
	}
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestHeapSortProperty(t *testing.T) {
	// Property: popping everything yields keys in nondecreasing order and
	// matches a reference sort, under random pushes/updates/removes.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New[int]()
		ref := make(map[int]int)
		for step := 0; step < 300; step++ {
			v := rng.Intn(40)
			switch rng.Intn(3) {
			case 0, 1:
				k := rng.Intn(1000)
				h.Push(v, k)
				ref[v] = k
			case 2:
				h.Remove(v)
				delete(ref, v)
			}
		}
		var want []int
		for _, k := range ref {
			want = append(want, k)
		}
		sort.Ints(want)
		var got []int
		prev := -1
		for h.Len() > 0 {
			_, k, _ := h.Pop()
			if k < prev {
				return false
			}
			prev = k
			got = append(got, k)
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOpsCounter(t *testing.T) {
	h := New[int]()
	h.Push(1, 1)
	h.Push(2, 2)
	h.Pop()
	if h.Ops != 3 {
		t.Fatalf("Ops = %d, want 3", h.Ops)
	}
}
