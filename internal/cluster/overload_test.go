package cluster

// Overload-protection tests: the per-op deadline on Apply (shard
// admission shedding with ErrOverloaded, safe retry) and the bounded
// stats poll (a stalled worker must not stretch Stats by its full RPC
// deadline).

import (
	"errors"
	"net"
	"testing"
	"time"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

func TestApplyDeadlineShedsWhenShardsBusy(t *testing.T) {
	g := testGraph(t, 4)
	links, _, stop := InProcess(1)
	defer stop()
	co, err := NewCoordinator(g, links)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	scratch := g.Clone()
	b1 := gen.Updates(scratch, gen.UpdateSpec{Count: 40, InsertRatio: 0.6, Locality: 0.5, Seed: 301})
	if err := scratch.ApplyBatch(b1); err != nil {
		t.Fatal(err)
	}
	// Hold b1's shards by blocking its commit callback; a touched-shard
	// overlap then forces b2 to queue.
	hold := make(chan struct{})
	entered := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- co.Apply(b1, func(b graph.Batch) error {
			close(entered)
			<-hold
			return g.ApplyBatch(b)
		})
	}()
	<-entered

	// b2 touches at least one of b1's shards (same touched set by
	// construction: re-generate from the same scratch state pre-apply is
	// not possible, so use b1 itself — identical batch, identical shards).
	if err := co.ApplyDeadline(b1, time.Now().Add(50*time.Millisecond), func(graph.Batch) error {
		t.Error("commit ran for a shed batch")
		return nil
	}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("busy-shard apply: got %v, want ErrOverloaded", err)
	}

	close(hold)
	if err := <-done; err != nil {
		t.Fatalf("held batch: %v", err)
	}
	// The shed left nothing dirty and nothing half-applied: replicas still
	// match the authoritative graph, and a clean retry of a fresh batch
	// works.
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("replicas diverged after a shed: %v", err)
	}
	b2 := gen.Updates(scratch, gen.UpdateSpec{Count: 40, InsertRatio: 0.6, Locality: 0.5, Seed: 302})
	if err := scratch.ApplyBatch(b2); err != nil {
		t.Fatal(err)
	}
	if err := co.ApplyDeadline(b2, time.Now().Add(rpcTimeout), commitLocal(g)); err != nil {
		t.Fatalf("retry after shed: %v", err)
	}
	if !g.Equal(scratch) {
		t.Fatal("graph diverged from reference after shed + retry")
	}
}

func TestApplyDeadlineZeroIsUnbounded(t *testing.T) {
	g := testGraph(t, 4)
	links, _, stop := InProcess(1)
	defer stop()
	co, err := NewCoordinator(g, links)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	scratch := g.Clone()
	b := gen.Updates(scratch, gen.UpdateSpec{Count: 30, InsertRatio: 0.7, Locality: 0.5, Seed: 303})
	if err := scratch.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := co.ApplyDeadline(b, time.Time{}, commitLocal(g)); err != nil {
		t.Fatalf("zero-deadline apply: %v", err)
	}
	if !g.Equal(scratch) {
		t.Fatal("graph diverged")
	}
}

func TestStatsWithinBoundedByOneTimeoutNotPerWorker(t *testing.T) {
	g := testGraph(t, 4)
	live, _, stop := InProcess(1)
	defer stop()
	// Attach a healthy worker, then swap its session for a pipe whose far
	// end swallows writes and never answers — a stalled (SIGSTOPped, black-
	// holed) worker, the case where an unbounded poll hangs for the full
	// RPC deadline. StatsWithin(200ms) must return within ~the timeout and
	// mark the worker down.
	co, err := NewCoordinator(g, live)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	p1, p2 := net.Pipe()
	defer p1.Close()
	defer p2.Close()
	go func() { // swallow writes, never answer: a stalled (not dead) worker
		buf := make([]byte, 4096)
		for {
			if _, err := p2.Read(buf); err != nil {
				return
			}
		}
	}()
	l := co.workers[0]
	l.connMu.Lock()
	old := l.conn
	l.conn = p1
	l.connMu.Unlock()
	defer func() {
		l.connMu.Lock()
		l.conn = old
		l.down = false
		l.connMu.Unlock()
	}()

	start := time.Now()
	st := co.StatsWithin(200 * time.Millisecond)
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("StatsWithin(200ms) took %v against a stalled worker", elapsed)
	}
	if len(st) != 1 || !st[0].Down {
		t.Fatalf("stalled worker not reported down: %+v", st)
	}
}
