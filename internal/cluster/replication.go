package cluster

import (
	"net"
	"time"

	"incgraph/internal/graph"
	"incgraph/internal/store"
)

// Log shipping. After every committed batch the coordinator ships the
// WAL record — the same (seq, gen, batch) payload its own log framed — to
// each worker owning a shard the batch touched, with the per-shard chain
// links that let the worker's replica log detect missed records (see
// store.ReplicaLog). Shipping runs on one ordered queue per worker: jobs
// are enqueued while the batch still holds its shards busy, so records
// touching the same shard always reach the worker in commit order, and
// the strict request/response link is never interleaved mid-batch.
//
// Failure never propagates to the committed batch: the commit was already
// durable on the coordinator when shipping starts. A transport failure
// leaves the worker's chain behind, which the next replicate for the
// shard detects as a gap and heals by parcel resync; a quorum shortfall
// only increments the degraded counter.

// ReplPolicy selects how Apply waits on replica acknowledgements.
type ReplPolicy int

const (
	// ReplOff disables log shipping (the pre-HA behavior).
	ReplOff ReplPolicy = iota
	// ReplAsync ships in the background: Apply returns as soon as the
	// record is queued. Lowest latency; a coordinator crash can lose the
	// records still in flight (they were durable locally, not remotely).
	ReplAsync
	// ReplQuorum ships like ReplAsync but Apply waits until a majority of
	// the involved workers acknowledged a clean append. A shortfall does
	// not fail Apply — the commit is already locally durable — it marks
	// the batch degraded.
	ReplQuorum
)

func (p ReplPolicy) String() string {
	switch p {
	case ReplOff:
		return "off"
	case ReplAsync:
		return "async"
	case ReplQuorum:
		return "quorum"
	default:
		return "unknown"
	}
}

// CoordinatorOptions tunes NewCoordinatorWith.
type CoordinatorOptions struct {
	// Term is the coordinator's fencing term. Workers remember the
	// highest term they have seen; a promoted standby attaches at a
	// higher term, which fences every session of the coordinator it
	// replaced (their mutating requests are rejected).
	Term uint64
	// Repl is the log-shipping policy (default ReplOff).
	Repl ReplPolicy
	// CallTimeout overrides the per-RPC base deadline (default 60s); it
	// still scales with request size. Fault drills shorten it so dropped
	// frames fail in milliseconds instead of a minute.
	CallTimeout time.Duration
	// OnCommit, when set, observes every committed batch in sequence
	// order — the hook the standby feed (Hub) rides. It is called after
	// the commit, while the batch's shards are still held.
	OnCommit func(seq, preGen, postGen uint64, b graph.Batch)
	// SerialLog reverts the pipelined durability log: the Commit.Log
	// callback runs inside the serialized commit section, after phase 1,
	// instead of overlapping the batch's phase-1 round trips. The WAL
	// byte stream is identical either way (the pipeline preserves log
	// order and generation stamps); this is a differential-testing and
	// debugging switch.
	SerialLog bool
	// NoCoalesce disables phase-1 group commit on the worker links: each
	// batch's share goes out as its own request instead of riding a
	// shared group frame with concurrently admitted batches. Results are
	// identical; this is a differential-testing and debugging switch.
	NoCoalesce bool
}

// replRecord carries one committed batch's replication identity: its
// sequence, the generations around the commit, and each touched shard's
// previous chain link.
type replRecord struct {
	seq     uint64
	preGen  uint64
	postGen uint64
	prev    map[int]uint64
}

// replJob is one worker's share of a record on its shipping queue.
type replJob struct {
	entries []replEntry
	postGen uint64
	payload []byte
	// done, when non-nil, receives true for a fully clean ack (every
	// shard appended) — the quorum vote.
	done chan bool
}

// startShippers launches one ordered shipping goroutine per worker.
func (c *Coordinator) startShippers() {
	for _, l := range c.workers {
		l.replQ = make(chan replJob, 256)
		go c.shipLoop(l)
	}
}

// shipLoop drains one worker's queue in order. Gapped shards are marked
// dirty (the next batch touching them re-places by parcel); transport
// failures leave the worker's chains behind, which later replicates
// surface as gaps — same healing path.
func (c *Coordinator) shipLoop(l *workerLink) {
	for {
		var job replJob
		select {
		case job = <-l.replQ:
		case <-c.quit:
			return
		}
		clean := c.ship(l, job)
		if job.done != nil {
			job.done <- clean
		}
	}
}

// ship delivers one job and reports whether every shard acked clean.
func (c *Coordinator) ship(l *workerLink, job replJob) bool {
	r, err := l.request(encodeReplicate(job.entries, job.postGen, job.payload))
	if err != nil {
		c.remoteErrs.Add(1)
		return false
	}
	acks, err := decodeReplAck(r)
	if err != nil {
		c.remoteErrs.Add(1)
		return false
	}
	var gaps []int
	for _, e := range job.entries {
		if acks[e.shard] != replOK {
			gaps = append(gaps, e.shard)
		}
	}
	if len(gaps) > 0 {
		c.markDirty(gaps)
		return false
	}
	c.replShipped.Add(1)
	return true
}

// replicate queues one committed record for every involved worker and,
// under ReplQuorum, waits for a majority of clean acks. Called while the
// batch's shards are still busy, so same-shard records enqueue in commit
// order.
func (c *Coordinator) replicate(b graph.Batch, workerIDs []int, shardsByWorker [][]int, rep *replRecord) {
	payload, err := store.EncodeRecord(rep.seq, rep.preGen, b)
	if err != nil {
		c.replDegraded.Add(1)
		return
	}
	quorum := c.opts.Repl == ReplQuorum
	var dones []chan bool
	for wi, w := range workerIDs {
		entries := make([]replEntry, len(shardsByWorker[wi]))
		for i, s := range shardsByWorker[wi] {
			entries[i] = replEntry{shard: s, prevSeq: rep.prev[s]}
		}
		job := replJob{entries: entries, postGen: rep.postGen, payload: payload}
		if quorum {
			job.done = make(chan bool, 1)
			dones = append(dones, job.done)
		}
		select {
		case c.workers[w].replQ <- job:
		case <-c.quit:
			return
		}
	}
	if !quorum {
		return
	}
	need := len(workerIDs)/2 + 1
	clean := 0
	for _, done := range dones {
		select {
		case ok := <-done:
			if ok {
				clean++
			}
		case <-c.quit:
			return
		}
		if clean >= need {
			return
		}
	}
	c.replDegraded.Add(1)
}

// FetchReplStates asks the worker on conn for its per-shard replication
// state (last replicated sequence and proven generation). It needs no
// hello, so a standby can poll workers it has no coordinator session
// with — the currency proof behind replica reads.
func FetchReplStates(conn net.Conn, timeout time.Duration) (map[int]ReplState, error) {
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
		defer conn.SetDeadline(time.Time{})
	}
	r, err := roundTrip(conn, []byte{byte(msgReplState)})
	if err != nil {
		return nil, err
	}
	return decodeReplStates(r)
}
