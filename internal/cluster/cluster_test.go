package cluster

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

// testGraph builds a deterministic sharded workload graph.
func testGraph(t *testing.T, shards int) *graph.Graph {
	t.Helper()
	g := gen.Synthetic(gen.GraphSpec{Nodes: 200, Edges: 800, Labels: 5, GiantSCCFrac: 0.4, Seed: 21})
	g.SetShards(shards)
	return g
}

// commitLocal is the single-process commit half of the protocol.
func commitLocal(g *graph.Graph) func(graph.Batch) error {
	return func(b graph.Batch) error { return g.ApplyBatch(b) }
}

func TestCoordinatorApplyAndVerify(t *testing.T) {
	g := testGraph(t, 8)
	links, _, stop := InProcess(2)
	defer stop()
	co, err := NewCoordinator(g, links)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("initial placement diverged: %v", err)
	}
	scratch := g.Clone()
	for i := 0; i < 6; i++ {
		b := gen.Updates(scratch, gen.UpdateSpec{Count: 60, InsertRatio: 0.6, Locality: 0.5, Seed: int64(100 + i)})
		if err := scratch.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		if err := co.Apply(b, commitLocal(g)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if !g.Equal(scratch) {
		t.Fatal("coordinator graph diverged from reference application")
	}
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("replicas diverged after batches: %v", err)
	}
	if co.Applied() != 6 {
		t.Fatalf("applied = %d, want 6", co.Applied())
	}
	if co.RemoteErrors() != 0 {
		t.Fatalf("remote errors = %d, want 0", co.RemoteErrors())
	}
}

func TestCoordinatorRejectsInvalidBatch(t *testing.T) {
	g := testGraph(t, 4)
	links, _, stop := InProcess(2)
	defer stop()
	co, err := NewCoordinator(g, links)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	var v, w graph.NodeID
	found := false
	g.Edges(func(e graph.Edge) bool {
		v, w = e.From, e.To
		found = true
		return false
	})
	if !found {
		t.Fatal("workload graph has no edges")
	}
	bad := graph.Batch{graph.Ins(v, w)} // insert of an existing edge
	committed := false
	err = co.Apply(bad, func(graph.Batch) error { committed = true; return nil })
	if !errors.Is(err, graph.ErrBadUpdate) {
		t.Fatalf("invalid batch: got %v, want ErrBadUpdate", err)
	}
	if committed {
		t.Fatal("commit ran for an invalid batch")
	}
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("replicas touched by a rejected batch: %v", err)
	}
}

// droppingConn fails every Write after the first n, simulating a worker
// disconnect mid-phase-1.
type droppingConn struct {
	net.Conn
	mu     sync.Mutex
	writes int
	budget int
}

func (d *droppingConn) Write(p []byte) (int, error) {
	d.mu.Lock()
	d.writes++
	over := d.writes > d.budget
	d.mu.Unlock()
	if over {
		d.Conn.Close()
		return 0, fmt.Errorf("simulated disconnect")
	}
	return d.Conn.Write(p)
}

func TestWorkerDisconnectMidPhase1FailsAtomically(t *testing.T) {
	g := testGraph(t, 8)
	links, _, stop := InProcess(2)
	defer stop()
	// Wrap worker 1's conn so it dies after the handshake + placements:
	// each frame is two writes (header, payload), so hello + its 4
	// placements = 10 writes; the next request's header write fails.
	dc := &droppingConn{Conn: links[1].Conn, budget: 10}
	links[1].Conn = dc
	co, err := NewCoordinator(g, links)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	before := g.Clone()
	scratch := g.Clone()
	b := gen.Updates(scratch, gen.UpdateSpec{Count: 80, InsertRatio: 0.6, Locality: 0.2, Seed: 7})
	committed := false
	err = co.Apply(b, func(graph.Batch) error { committed = true; return g.ApplyBatch(b) })
	if err == nil {
		t.Fatal("apply succeeded despite worker disconnect")
	}
	if committed {
		t.Fatal("commit ran despite phase-1 failure: batch not atomic")
	}
	if !g.Equal(before) {
		t.Fatal("authoritative graph changed on an aborted batch")
	}
	if co.RemoteErrors() == 0 {
		t.Fatal("disconnect not counted")
	}

	// The redial path reattaches the same worker (state intact but marked
	// dirty): the next apply must resync and succeed, converging replicas.
	if err := co.Apply(b, commitLocal(g)); err != nil {
		t.Fatalf("apply after reattach: %v", err)
	}
	if co.Resyncs() == 0 {
		t.Fatal("no resync recorded after aborted batch")
	}
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("replicas diverged after resync: %v", err)
	}
}

func TestWorkerRestartLosesStateAndIsReplaced(t *testing.T) {
	g := testGraph(t, 8)
	links, _, stop := InProcess(2)
	defer stop()
	// Rewire link 0's redial to attach a brand-new empty worker: the
	// in-process analogue of SIGKILL + restart.
	links[0].Redial = func() (net.Conn, error) {
		fresh := NewWorker()
		client, server := net.Pipe()
		go func() {
			defer server.Close()
			fresh.ServeConn(server)
		}()
		return client, nil
	}
	co, err := NewCoordinator(g, links)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	links[0].Conn.Close() // crash

	scratch := g.Clone()
	b := gen.Updates(scratch, gen.UpdateSpec{Count: 60, InsertRatio: 0.5, Locality: 0.5, Seed: 9})
	// First apply may fail while the crash is discovered; the next must
	// recover via redial + segment re-shipping.
	if err := co.Apply(b, commitLocal(g)); err != nil {
		if cerr := co.Apply(b, commitLocal(g)); cerr != nil {
			t.Fatalf("apply after worker restart: %v (first error: %v)", cerr, err)
		}
	}
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("restarted worker not rebuilt from segments: %v", err)
	}
}

func TestMoveShardMidStream(t *testing.T) {
	g := testGraph(t, 8)
	links, workers, stop := InProcess(2)
	defer stop()
	co, err := NewCoordinator(g, links)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	scratch := g.Clone()
	for i := 0; i < 4; i++ {
		b := gen.Updates(scratch, gen.UpdateSpec{Count: 50, InsertRatio: 0.6, Locality: 0.5, Seed: int64(40 + i)})
		if err := scratch.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		if err := co.Apply(b, commitLocal(g)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if i == 1 {
			// Rebalance two shards onto the other worker mid-stream.
			for s := 0; s < 2; s++ {
				to := 1 - co.WorkerOf(s)
				if err := co.MoveShard(s, to); err != nil {
					t.Fatalf("MoveShard(%d,%d): %v", s, to, err)
				}
				if co.WorkerOf(s) != to {
					t.Fatalf("shard %d still on worker %d", s, co.WorkerOf(s))
				}
			}
		}
	}
	if !g.Equal(scratch) {
		t.Fatal("graph diverged across rebalance")
	}
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("replicas diverged across rebalance: %v", err)
	}
	// The old owner must actually have dropped the moved shards.
	st := workers[0].statFor(t)
	for s := 0; s < 2; s++ {
		if _, held := st.Shards[s]; held && co.WorkerOf(s) != 0 {
			t.Fatalf("worker 0 still holds moved shard %d", s)
		}
	}
}

// statFor reads a worker's stat directly (test helper).
func (w *Worker) statFor(t *testing.T) WorkerStat {
	t.Helper()
	w.mu.Lock()
	defer w.mu.Unlock()
	st := WorkerStat{Shards: map[int]int{}, Applied: w.applied, Errors: w.errs}
	if w.g != nil {
		for s := range w.owned {
			st.Shards[s] = w.g.NumShardNodes(s)
		}
	}
	return st
}

func TestDisjointBatchesRouteConcurrently(t *testing.T) {
	g := testGraph(t, 8)
	links, _, stop := InProcess(2)
	defer stop()
	co, err := NewCoordinator(g, links)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// Split a workload into per-shard-pair batches with disjoint
	// TouchedShards and fire them concurrently; the final graph must match
	// a serial application, whatever the interleaving.
	scratch := g.Clone()
	all := gen.Updates(scratch, gen.UpdateSpec{Count: 200, InsertRatio: 0.6, Locality: 0.3, Seed: 77})
	byShard := make(map[int]graph.Batch)
	for _, u := range all {
		sf, st := g.ShardOf(u.From), g.ShardOf(u.To)
		if sf != st {
			continue // keep each batch single-shard so sets stay disjoint
		}
		byShard[sf] = append(byShard[sf], u)
	}
	ref := g.Clone()
	var batches []graph.Batch
	for s := 0; s < 8; s++ {
		if b := byShard[s]; len(b) > 0 {
			// Only keep batches that remain individually valid.
			if ref.ValidateBatch(b) == nil {
				if err := ref.ApplyBatch(b); err != nil {
					t.Fatal(err)
				}
				batches = append(batches, b)
			}
		}
	}
	if len(batches) < 2 {
		t.Skip("workload produced too few single-shard batches")
	}
	var wg sync.WaitGroup
	errs := make([]error, len(batches))
	for i, b := range batches {
		wg.Add(1)
		go func(i int, b graph.Batch) {
			defer wg.Done()
			errs[i] = co.Apply(b, commitLocal(g))
		}(i, b)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent batch %d: %v", i, err)
		}
	}
	if !g.Equal(ref) {
		t.Fatal("concurrent disjoint batches diverged from serial application")
	}
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("replicas diverged: %v", err)
	}
}

func TestWorkerCapsPreHelloFrames(t *testing.T) {
	w := NewWorker()
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- w.ServeConn(server) }()
	// A stray non-protocol connection: the first 8 bytes of an HTTP
	// request parse as a ~542 MB little-endian frame length. The worker
	// must tear the connection down at the pre-hello cap instead of
	// allocating a buffer that size.
	if _, err := client.Write([]byte("GET / HT")); err != nil {
		t.Fatal(err)
	}
	err := <-done
	if !errors.Is(err, ErrFrame) {
		t.Fatalf("pre-hello oversized frame: got %v, want ErrFrame", err)
	}
	client.Close()
}

func TestWorkerRejectsProtocolGarbage(t *testing.T) {
	w := NewWorker()
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- w.ServeConn(server) }()

	// A message whose type byte is unknown gets a remote error, not a
	// connection teardown.
	if err := writeFrame(client, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(client, maxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if msgType(payload[0]) != msgErr || !strings.Contains(string(payload[1:]), "unknown message type") {
		t.Fatalf("garbage type answered with %q", payload)
	}

	// Apply before hello is a remote error too.
	if err := writeFrame(client, []byte{byte(msgApply)}); err != nil {
		t.Fatal(err)
	}
	if payload, err = readFrame(client, maxFrame); err != nil {
		t.Fatal(err)
	}
	if msgType(payload[0]) != msgErr {
		t.Fatalf("apply before hello answered with %q", payload)
	}

	client.Close()
	if err := <-done; err != nil && !errors.Is(err, net.ErrClosed) {
		// EOF-equivalent teardown is fine; anything else is suspicious but
		// net.Pipe reports io.ErrClosedPipe here.
		if !strings.Contains(err.Error(), "closed pipe") {
			t.Fatalf("ServeConn exit: %v", err)
		}
	}
}
