package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"incgraph/internal/graph"
	"incgraph/internal/store"
)

// Link is one worker connection handed to NewCoordinator. Redial, when
// non-nil, lets the coordinator re-establish a lost session (a restarted
// worker comes back empty and is re-placed from authoritative segments);
// without it any session loss — a crash, a timed-out RPC or health poll —
// is permanent for the coordinator's lifetime, so set it outside tests
// (Dial and InProcess always do).
type Link struct {
	Conn   net.Conn
	Redial func() (net.Conn, error)
	// Name labels the worker in errors and stats (an address, usually).
	Name string
	// Retries, when non-nil, exposes the transport's cumulative dial
	// attempt counter (see Dialer) so Stats can report it.
	Retries *atomic.Uint64
}

// workerLink is the coordinator's per-worker session state. Its mutex
// serializes requests on the connection (the protocol is one request in
// flight per session); coordinator scheduling state lives under
// Coordinator.mu, and no code path holds Coordinator.mu while taking a
// link mutex.
type workerLink struct {
	name    string
	redial  func() (net.Conn, error)
	retries *atomic.Uint64
	// timeout is the base per-call deadline (rpcTimeout unless the
	// coordinator was built with CallTimeout).
	timeout time.Duration
	// redialMu serializes reattachment so concurrent batches discovering
	// the same downed worker produce one session, fully handshaken and
	// reconciled before it is published.
	redialMu sync.Mutex
	// mu serializes requests: one in flight per session.
	mu sync.Mutex
	// connMu guards the session fields below. It is held only for field
	// access, never across I/O — so Close (and failure marking) can always
	// interrupt an in-flight RPC by closing the conn under connMu while
	// the request goroutine is blocked inside roundTrip holding mu.
	connMu sync.Mutex
	conn   net.Conn
	down   bool
	// respBuf is the apply fast path's response scratch, guarded by mu
	// (held for the whole round trip).
	respBuf []byte
	// applyQ coalesces concurrently admitted batches' phase-1 shares into
	// group frames on this link.
	applyQ applyQueue
	// replQ is the ordered log-shipping queue (nil when replication is
	// off); see replication.go.
	replQ chan replJob
}

// applyCall is one batch's phase-1 share on one worker, queued on the
// link's applyQueue for (possibly grouped) delivery.
type applyCall struct {
	body   []byte // encoded batch section (appendApplyBatch)
	capAt  time.Time
	deltas []shardDelta // response: per-shard deltas in request order
	err    error
	done   bool
}

var applyCallPool = sync.Pool{New: func() any { return new(applyCall) }}

func getApplyCall() *applyCall {
	call := applyCallPool.Get().(*applyCall)
	call.body = call.body[:0]
	call.deltas = call.deltas[:0]
	call.capAt = time.Time{}
	call.err = nil
	call.done = false
	return call
}

// applyQueue implements per-link group commit for phase 1. The protocol
// allows one request in flight per session, so concurrently admitted
// disjoint batches sharing a worker would serialize round trip by round
// trip; instead, whichever caller finds the line idle becomes leader,
// ships every pending batch section in one group frame, and distributes
// the per-batch verdicts. Small consecutive commits thus cost one
// rendezvous per group, not per batch.
type applyQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []*applyCall
	sending bool
	// labelsSent counts the intern-table prefix already shipped on this
	// session; the next group's label delta starts there. Only the active
	// leader (sending == true) advances it; ensureUp resets it with the
	// session.
	labelsSent int
	// frame is the leader's group-frame scratch (header-prefixed).
	frame []byte
}

// sendApply queues call on l and blocks until its verdict is in,
// leading a group send whenever the line is idle.
func (c *Coordinator) sendApply(l *workerLink, call *applyCall) error {
	q := &l.applyQ
	q.mu.Lock()
	q.pending = append(q.pending, call)
	for {
		if call.done {
			q.mu.Unlock()
			return call.err
		}
		if !q.sending {
			q.sending = true
			var group []*applyCall
			if c.opts.NoCoalesce {
				for i, p := range q.pending {
					if p == call {
						q.pending = append(q.pending[:i], q.pending[i+1:]...)
						break
					}
				}
				group = []*applyCall{call}
			} else {
				group = q.pending
				q.pending = nil
			}
			q.mu.Unlock()
			c.sendGroup(l, group)
			q.mu.Lock()
			q.sending = false
			q.cond.Broadcast()
			continue
		}
		q.cond.Wait()
	}
}

// sendGroup ships one group frame — label delta plus every call's batch
// section — and distributes the per-batch results. Caller owns the
// sending flag; results are published (done = true) under the queue
// mutex, which is the happens-before edge the waiters in sendApply read
// their call's fields through.
func (c *Coordinator) sendGroup(l *workerLink, group []*applyCall) {
	q := &l.applyQ
	cur := graph.InternedLabels()
	q.mu.Lock()
	base := q.labelsSent
	// Advanced optimistically: a failed send poisons the session, and the
	// reattach handshake resets the counter with it.
	q.labelsSent = cur
	q.mu.Unlock()
	frame := append(q.frame[:0], zeroFrameHeader[:]...)
	frame = appendApplyHeader(frame, base, cur)
	frame = binary.AppendUvarint(frame, uint64(len(group)))
	// The group's deadline cap is the loosest member's: any one uncapped
	// call uncaps the round trip (per-batch budgets were already enforced
	// at admission).
	var capAt time.Time
	uncapped := false
	for _, call := range group {
		frame = append(frame, call.body...)
		if call.capAt.IsZero() {
			uncapped = true
		} else if call.capAt.After(capAt) {
			capAt = call.capAt
		}
	}
	if uncapped {
		capAt = time.Time{}
	}
	q.frame = frame[:0]
	// groupErr, when set, overrides every member's verdict: the response
	// (or the session) was untrustworthy as a whole.
	var groupErr error
	r, err := l.requestPrefixedCapped(frame, capAt)
	switch {
	case err != nil:
		if IsRemote(err) {
			// An envelope-level rejection (fencing, label-chain mismatch)
			// leaves the session's label state untrustworthy: drop the
			// connection so the next batch re-handshakes from scratch.
			l.poison()
		}
		groupErr = err
	default:
		var n uint64
		if n, groupErr = r.uvarint(); groupErr == nil && n != uint64(len(group)) {
			l.poison()
			groupErr = fmt.Errorf("%w: group response carries %d batches, sent %d", ErrProtocol, n, len(group))
		}
		if groupErr == nil {
			for _, call := range group {
				call.deltas, call.err = decodeBatchResult(r, call.deltas[:0])
			}
			if derr := r.done(); derr != nil {
				l.poison()
				groupErr = derr
			}
		}
	}
	q.mu.Lock()
	for _, call := range group {
		if groupErr != nil {
			call.err = groupErr
		}
		call.done = true
	}
	q.mu.Unlock()
}

// requestPrefixedCapped is requestCapped for header-prefixed frames: one
// write out, response decoded into the link's reusable scratch.
func (l *workerLink) requestPrefixedCapped(frame []byte, capAt time.Time) (*reader, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	conn, err := l.session()
	if err != nil {
		return nil, err
	}
	dl := l.deadline(len(frame))
	if !capAt.IsZero() && capAt.Before(dl) {
		dl = capAt
	}
	conn.SetDeadline(dl)
	err = writeFramePrefixed(conn, frame)
	var payload []byte
	if err == nil {
		payload, err = readFrameInto(conn, l.respBuf, maxFrame)
	}
	conn.SetDeadline(time.Time{})
	if err != nil {
		l.fail(conn)
		return nil, err
	}
	if cap(payload) > cap(l.respBuf) {
		l.respBuf = payload
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty response", ErrProtocol)
	}
	switch msgType(payload[0]) {
	case msgOK:
		return &reader{buf: payload, off: 1}, nil
	case msgErr:
		return nil, remoteError(payload[1:])
	default:
		return nil, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, payload[0])
	}
}

// poison drops the link's current session so the next batch re-dials and
// re-handshakes it.
func (l *workerLink) poison() {
	l.connMu.Lock()
	conn := l.conn
	l.connMu.Unlock()
	if conn != nil {
		l.fail(conn)
	}
}

// session returns the live connection, or an error when the link is down.
func (l *workerLink) session() (net.Conn, error) {
	l.connMu.Lock()
	defer l.connMu.Unlock()
	if l.down || l.conn == nil {
		return nil, fmt.Errorf("cluster: worker %s is down", l.name)
	}
	return l.conn, nil
}

// fail marks the session down (if conn is still current) and closes it.
func (l *workerLink) fail(conn net.Conn) {
	l.connMu.Lock()
	if l.conn == conn {
		l.down = true
	}
	l.connMu.Unlock()
	conn.Close()
}

// rpcTimeout bounds one request round trip. A worker that is stalled
// rather than dead (SIGSTOP, network black hole) must not wedge the
// coordinator: past the deadline the request errors, the link is marked
// down, and the batch aborts through the usual resync path.
const rpcTimeout = 60 * time.Second

// rpcDeadline scales the round-trip deadline with the request size, so a
// multi-hundred-MB shard parcel on a slow link gets proportionally longer
// than a 20-byte stat poll instead of timing out forever on retry: the
// base covers latency and the response, plus one second per MiB shipped
// (a ≥1 MiB/s floor on usable links).
func rpcDeadline(reqBytes int) time.Time {
	return deadlineFrom(rpcTimeout, reqBytes)
}

func deadlineFrom(base time.Duration, reqBytes int) time.Time {
	return time.Now().Add(base + time.Duration(reqBytes>>20)*time.Second)
}

// deadline is the link's per-call deadline: the coordinator's configured
// base (CallTimeout) scaled by request size.
func (l *workerLink) deadline(reqBytes int) time.Time {
	base := l.timeout
	if base <= 0 {
		base = rpcTimeout
	}
	return deadlineFrom(base, reqBytes)
}

// request performs one round trip, marking the link down on transport
// failure (remote errors leave the session usable).
func (l *workerLink) request(req []byte) (*reader, error) {
	return l.requestCapped(req, 0, time.Time{})
}

// requestHint is request with a response-size hint: exports return whole
// parcels, so their deadline must scale with the expected response the
// way a placement's scales with its request.
func (l *workerLink) requestHint(req []byte, respHint int) (*reader, error) {
	return l.requestCapped(req, respHint, time.Time{})
}

// requestCapped is requestHint with an absolute deadline cap: when the
// caller carries a per-op budget (Apply under admission control), the
// round trip must not outlive it, however large the link's size-scaled
// deadline would be. A zero cap means no cap.
func (l *workerLink) requestCapped(req []byte, respHint int, capAt time.Time) (*reader, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	conn, err := l.session()
	if err != nil {
		return nil, err
	}
	dl := l.deadline(len(req) + respHint)
	if !capAt.IsZero() && capAt.Before(dl) {
		dl = capAt
	}
	conn.SetDeadline(dl)
	r, err := roundTrip(conn, req)
	conn.SetDeadline(time.Time{})
	if err != nil && !IsRemote(err) {
		l.fail(conn)
	}
	return r, err
}

// Coordinator drives the distributed two-phase batch protocol over a set
// of shard workers while keeping the authoritative full graph locally (the
// serving side: engines, WAL, resync source). See the package comment for
// the state contract.
type Coordinator struct {
	g       *graph.Graph
	workers []*workerLink
	opts    CoordinatorOptions

	// mu guards the scheduling state below; cond wakes batches waiting for
	// their shards to free up.
	mu   sync.Mutex
	cond *sync.Cond
	// assign maps shard index → worker index.
	assign []int
	// busy marks shards of in-flight batches: two batches proceed
	// concurrently iff their TouchedShards sets are disjoint.
	busy []bool
	// dirty marks shards whose remote replica diverged (aborted batch,
	// worker restart); they are re-placed before next use.
	dirty []bool
	// replLast maps shard → the sequence of the last committed record
	// that touched it: the chain link the next replicate (or placement
	// reset) for the shard carries. Guarded by mu.
	replLast []uint64
	// lastGen is the post-commit generation of the latest committed batch
	// (initially the graph's generation at attach). Guarded by mu; it is
	// the generation placements stamp replicas with.
	lastGen uint64

	// logMu orders the pipelined durability-log appends: it is taken
	// before a batch's Log callback starts and held until its commit
	// completes, so log order equals commit order and the generation
	// stamped on each record is exactly the post-commit generation of the
	// previous batch — while the fsync itself overlaps the batch's own
	// phase-1 round trip.
	logMu sync.Mutex
	// commitMu serializes the local commit (phase 2 + the caller's
	// mutation of the authoritative graph and engines); the remote phase 1
	// of disjoint batches overlaps freely around it. The replication
	// sequence counter advances under it, so record order is commit order.
	// Overlappable commits of disjoint batches share it as readers (see
	// ApplyCommit): they merge through the graph's own overlap guards
	// instead of the exclusive section.
	commitMu sync.RWMutex
	replSeq  uint64

	applied      atomic.Uint64
	remoteErrs   atomic.Uint64
	resyncs      atomic.Uint64
	replShipped  atomic.Uint64
	replDegraded atomic.Uint64

	// Anti-entropy counters; see scrub.go.
	scrubPasses     atomic.Uint64
	scrubChecked    atomic.Uint64
	scrubMismatches atomic.Uint64
	scrubHeals      atomic.Uint64
	scrubSkips      atomic.Uint64

	// quit stops the shipping goroutines; closed once by Close.
	quit     chan struct{}
	quitOnce sync.Once
}

// NewCoordinator attaches the links as shard workers of g with default
// options: it handshakes each one at g's shard count and places every
// shard round-robin. g stays owned by the caller (it is the graph the
// engines and the durability layer see); the coordinator only requires
// that Apply is the sole mutation path while the cluster is attached.
func NewCoordinator(g *graph.Graph, links []Link) (*Coordinator, error) {
	return NewCoordinatorWith(g, links, CoordinatorOptions{})
}

// NewCoordinatorWith is NewCoordinator with explicit options (fencing
// term, replication policy, per-call deadline).
func NewCoordinatorWith(g *graph.Graph, links []Link, opts CoordinatorOptions) (*Coordinator, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("cluster: no workers")
	}
	p := g.NumShards()
	c := &Coordinator{
		g:        g,
		opts:     opts,
		assign:   make([]int, p),
		busy:     make([]bool, p),
		dirty:    make([]bool, p),
		replLast: make([]uint64, p),
		lastGen:  g.Generation(),
		quit:     make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	for i, l := range links {
		name := l.Name
		if name == "" {
			name = fmt.Sprintf("worker-%d", i)
		}
		wl := &workerLink{
			name: name, redial: l.Redial, conn: l.Conn,
			retries: l.Retries, timeout: opts.CallTimeout,
		}
		wl.applyQ.cond = sync.NewCond(&wl.applyQ.mu)
		c.workers = append(c.workers, wl)
	}
	held := make([]map[int]bool, len(c.workers))
	for i, l := range c.workers {
		owned, err := c.hello(l)
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %s: %w", l.name, err)
		}
		held[i] = owned
	}
	// Initial placement fans out per worker, like phase 1: requests to
	// distinct workers are independent (same-link requests serialize on
	// the link mutex), so startup costs the slowest worker, not the sum.
	byWorker := make([][]int, len(c.workers))
	for s := 0; s < p; s++ {
		c.assign[s] = s % len(c.workers)
		byWorker[c.assign[s]] = append(byWorker[c.assign[s]], s)
	}
	placeErrs := make([]error, len(c.workers))
	var wg sync.WaitGroup
	for i := range c.workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, s := range byWorker[i] {
				if err := c.place(c.workers[i], s); err != nil {
					placeErrs[i] = fmt.Errorf("cluster: placing shard %d: %w", s, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range placeErrs {
		if err != nil {
			return nil, err
		}
	}
	// A pre-populated worker (coordinator restart against still-running
	// workers) may hold replicas now assigned elsewhere: drop them so its
	// self-reported stats and memory reflect the new assignment, exactly
	// as ensureUp reconciles after a redial.
	for i, l := range c.workers {
		for s := range held[i] {
			if s < p && c.assign[s] != i {
				l.request(appendUvarint([]byte{byte(msgDrop)}, uint64(s)))
			}
		}
	}
	if c.opts.Repl != ReplOff {
		c.startShippers()
	}
	return c, nil
}

// hello opens a session at the coordinator's shard count and returns the
// shards the worker already holds.
func (c *Coordinator) hello(l *workerLink) (map[int]bool, error) {
	r, err := l.request(encodeHello(c.g.NumShards(), c.opts.Term))
	if err != nil {
		return nil, err
	}
	return decodeOwned(r)
}

// decodeOwned parses a hello response into an owned-shard set.
func decodeOwned(r *reader) (map[int]bool, error) {
	shards, err := decodeShardList(r)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	owned := make(map[int]bool, len(shards))
	for _, s := range shards {
		owned[s] = true
	}
	return owned, nil
}

// place ships the authoritative segment of shard s to l, stamped with the
// shard's replication chain position and the last committed generation so
// the worker's replica log restarts exactly where the parcel's state ends.
// The caller must hold shard s (busy) or be inside NewCoordinator/reattach.
func (c *Coordinator) place(l *workerLink, s int) error {
	parcel, err := store.EncodeShardParcel(c.g, s)
	if err != nil {
		return err
	}
	c.mu.Lock()
	replSeq := c.replLast[s]
	placeGen := c.lastGen
	c.mu.Unlock()
	req := appendUvarint([]byte{byte(msgPlace)}, uint64(s))
	req = appendUvarint(req, replSeq)
	req = appendUvarint(req, placeGen)
	r, err := l.request(append(req, parcel...))
	if err != nil {
		return err
	}
	return r.done()
}

// NumWorkers returns the worker count.
func (c *Coordinator) NumWorkers() int { return len(c.workers) }

// WorkerOf returns the index of the worker shard s is assigned to.
func (c *Coordinator) WorkerOf(s int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.assign[s]
}

// Applied returns the number of batches committed through the cluster.
func (c *Coordinator) Applied() uint64 { return c.applied.Load() }

// RemoteErrors returns the number of failed remote operations observed.
func (c *Coordinator) RemoteErrors() uint64 { return c.remoteErrs.Load() }

// Resyncs returns the number of shard re-placements performed after
// divergence (aborted batches, worker restarts).
func (c *Coordinator) Resyncs() uint64 { return c.resyncs.Load() }

// Term returns the coordinator's fencing term.
func (c *Coordinator) Term() uint64 { return c.opts.Term }

// ReplShipped returns the number of per-worker replicate requests fully
// acknowledged since attach.
func (c *Coordinator) ReplShipped() uint64 { return c.replShipped.Load() }

// ReplDegraded returns the number of committed batches whose replication
// fell short of the policy's ack requirement (the commit itself is
// unaffected — it was already locally durable).
func (c *Coordinator) ReplDegraded() uint64 { return c.replDegraded.Load() }

// ReplSeq returns the sequence of the last committed, replicated record.
func (c *Coordinator) ReplSeq() uint64 {
	c.commitMu.Lock()
	defer c.commitMu.Unlock()
	return c.replSeq
}

// ErrOverloaded reports an Apply whose per-op deadline expired while
// waiting for its shards: the batch was shed before any remote work, the
// authoritative graph and every replica are untouched, and the client
// can safely retry. Serving layers map it to their explicit
// overload/backpressure reply instead of queuing unboundedly.
var ErrOverloaded = fmt.Errorf("cluster: overloaded: shard admission deadline exceeded")

// acquire blocks until every shard in touched is free, then marks them
// busy. touched must be sorted and duplicate-free (TouchedShards is).
func (c *Coordinator) acquire(touched []int) {
	c.acquireDeadline(touched, time.Time{})
}

// acquireDeadline is acquire with a give-up point: it reports whether the
// shards were acquired before deadline (zero = wait forever). On timeout
// nothing is held.
func (c *Coordinator) acquireDeadline(touched []int, deadline time.Time) bool {
	var wake *time.Timer
	if !deadline.IsZero() {
		// sync.Cond has no timed wait; a broadcast at the deadline bounds it.
		// Broadcasting under the lock orders it after the waiter enters Wait,
		// so the wakeup cannot slip between the deadline check and the sleep.
		wake = time.AfterFunc(time.Until(deadline), func() {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
		defer wake.Stop()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		free := true
		for _, s := range touched {
			if c.busy[s] {
				free = false
				break
			}
		}
		if free {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return false
		}
		c.cond.Wait()
	}
	for _, s := range touched {
		c.busy[s] = true
	}
	return true
}

// release frees the shards and wakes waiting batches.
func (c *Coordinator) release(touched []int) {
	c.mu.Lock()
	for _, s := range touched {
		c.busy[s] = false
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// markDirty flags shards whose remote replica can no longer be trusted.
func (c *Coordinator) markDirty(shards []int) {
	c.mu.Lock()
	for _, s := range shards {
		c.dirty[s] = true
	}
	c.mu.Unlock()
}

// ensureUp reconnects a downed worker: redial, hello, then reconcile —
// assigned shards the (possibly restarted) worker no longer holds are
// marked dirty for re-placement, and holdovers from a previous assignment
// are dropped best-effort. The new session is published only after the
// handshake AND the dirty marks are in place: a concurrent disjoint batch
// must never reach a reattached worker that has not been helloed, nor see
// the link up before its lost shards are flagged for resync.
func (c *Coordinator) ensureUp(w int) error {
	l := c.workers[w]
	l.redialMu.Lock()
	defer l.redialMu.Unlock()
	if _, err := l.session(); err == nil {
		return nil
	}
	if l.redial == nil {
		return fmt.Errorf("cluster: worker %s is down and has no redial path", l.name)
	}
	conn, err := l.redial()
	if err != nil {
		return fmt.Errorf("cluster: worker %s: redial: %w", l.name, err)
	}
	// Handshake on the private, not-yet-published connection.
	conn.SetDeadline(l.deadline(0))
	r, err := roundTrip(conn, encodeHello(c.g.NumShards(), c.opts.Term))
	conn.SetDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return fmt.Errorf("cluster: worker %s: hello: %w", l.name, err)
	}
	owned, err := decodeOwned(r)
	if err != nil {
		conn.Close()
		return fmt.Errorf("cluster: worker %s: hello: %w", l.name, err)
	}
	var stale []int
	c.mu.Lock()
	for s, wi := range c.assign {
		if wi == w && !owned[s] {
			c.dirty[s] = true
		}
		if wi != w && owned[s] {
			stale = append(stale, s)
		}
	}
	c.mu.Unlock()
	// The fresh session's label chain restarts at zero (the worker reset
	// its translation table at the hello above).
	l.applyQ.mu.Lock()
	l.applyQ.labelsSent = 0
	l.applyQ.mu.Unlock()
	l.connMu.Lock()
	l.conn = conn
	l.down = false
	l.connMu.Unlock()
	for _, s := range stale {
		req := appendUvarint([]byte{byte(msgDrop)}, uint64(s))
		l.request(req) // best-effort: a stale replica is inert
	}
	return nil
}

// prepareShards brings the remote side of the touched shards current:
// reconnect downed owners, re-place dirty replicas. Caller holds the
// shards busy. Never holds c.mu across an RPC.
func (c *Coordinator) prepareShards(touched []int) error {
	c.mu.Lock()
	owner := make([]int, len(touched))
	for i, s := range touched {
		owner[i] = c.assign[s]
	}
	c.mu.Unlock()
	// Reconnect downed owners first; a reattach may mark further shards
	// dirty (a restarted worker comes back empty).
	seen := make(map[int]bool, len(owner))
	for _, w := range owner {
		if seen[w] {
			continue
		}
		seen[w] = true
		if _, serr := c.workers[w].session(); serr != nil {
			if err := c.ensureUp(w); err != nil {
				return err
			}
		}
	}
	// Re-place diverged replicas from the authoritative segments, fanned
	// out per worker like the initial placement.
	need := make(map[int][]int)
	for i, s := range touched {
		c.mu.Lock()
		needs := c.dirty[s]
		c.mu.Unlock()
		if needs {
			need[owner[i]] = append(need[owner[i]], s)
		}
	}
	if len(need) == 0 {
		return nil
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for w, shards := range need {
		wg.Add(1)
		go func(w int, shards []int) {
			defer wg.Done()
			for _, s := range shards {
				if err := c.place(c.workers[w], s); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("cluster: resync shard %d on %s: %w", s, c.workers[w].name, err)
					}
					errMu.Unlock()
					return
				}
				c.resyncs.Add(1)
				c.mu.Lock()
				c.dirty[s] = false
				c.mu.Unlock()
			}
		}(w, shards)
	}
	wg.Wait()
	return firstErr
}

// Commit is what a batch does locally once every worker has acknowledged
// phase 1: the caller's durability-log append and its authoritative
// application, split so the coordinator can pipeline them around the
// remote work.
type Commit struct {
	// Log, when set, appends the batch to the caller's durability log,
	// stamped with gen — the post-commit generation of the previous
	// committed batch (advisory; recovery checks monotonicity). By default
	// it runs concurrently with the batch's own phase-1 fan-out, ordered
	// against other batches' logs and commits by the coordinator
	// (CoordinatorOptions.SerialLog reverts to logging inside the commit
	// section).
	Log func(b graph.Batch, gen uint64) error
	// Unlog undoes the latest successful Log when the batch aborts after
	// logging (a phase-1 or commit failure). Required when Log is set and
	// logging is pipelined.
	Unlog func() error
	// Apply is the commit itself: the local authoritative application —
	// the same ApplyBatch phase-2 merge in shard order, plus whatever
	// engines the caller maintains.
	Apply func(b graph.Batch) error
	// Overlappable marks Apply as safe to run concurrently with other
	// overlappable applies of shard-disjoint batches (true for plain
	// ApplyBatch-style commits with no engines or serving state attached).
	// Eligible batches skip the exclusive commit section: the graph's own
	// overlap guards serialize only the global merge counters. Ignored
	// when Log, replication, or an OnCommit hook needs commit-order
	// serialization.
	Overlappable bool
}

// Apply runs one batch through the distributed two-phase protocol:
//
//  1. The touched shards are locked (batches with disjoint TouchedShards
//     proceed concurrently), downed workers are reattached and diverged
//     replicas re-placed from authoritative segments.
//  2. The batch is validated and compiled into a per-shard plan
//     (graph.PlanBatch) against the authoritative graph.
//  3. Phase 1 fans the effects out to the owning workers in parallel;
//     every worker applies its shards' slices and reports per-shard
//     edge-count deltas, which are cross-checked against the plan.
//  4. Only after every worker acknowledged does commit run (serialized
//     across batches): the caller's local application — the same
//     ApplyBatch phase-2 merge in shard order, plus engines and WAL —
//     making the distributed result byte-identical to single-process.
//
// Failure anywhere before commit aborts the batch atomically: commit never
// runs, the authoritative graph is untouched, and every shard the batch
// planned to touch is marked for re-placement (workers that applied the
// aborted effects are resynced before those shards are used again).
func (c *Coordinator) Apply(b graph.Batch, commit func(graph.Batch) error) error {
	return c.ApplyCommit(b, time.Time{}, Commit{Apply: commit})
}

// ApplyDeadline is Apply carrying the serving layer's per-op budget. The
// deadline bounds the shard-admission wait — a batch still queued behind
// conflicting batches at the deadline is shed with ErrOverloaded, nothing
// applied anywhere, safe to retry — and caps every phase-1 round trip, so
// one op cannot hold its shards for the transport's full size-scaled
// deadline when the client's budget is smaller. Repair traffic (redial,
// parcel resync) keeps its own deadlines: healing a diverged replica is
// not the client op's work to bound, and capping it would just make the
// next op repeat it. A zero deadline is plain Apply.
func (c *Coordinator) ApplyDeadline(b graph.Batch, deadline time.Time, commit func(graph.Batch) error) error {
	return c.ApplyCommit(b, deadline, Commit{Apply: commit})
}

// ApplyCommit is the full-control entry point behind Apply/ApplyDeadline:
// the commit callback is split into its log and apply halves so the
// durability write can overlap phase 1 (see Commit). Everything Apply
// documents — atomic abort, byte-identity with the single-process path —
// holds unchanged.
func (c *Coordinator) ApplyCommit(b graph.Batch, deadline time.Time, cb Commit) error {
	touched := b.TouchedShards(c.g)
	if !c.acquireDeadline(touched, deadline) {
		return ErrOverloaded
	}
	defer c.release(touched)

	if err := c.prepareShards(touched); err != nil {
		c.remoteErrs.Add(1)
		return err
	}

	plan, ok := c.g.PlanBatch(b)
	if !ok {
		if err := c.g.ValidateBatch(b); err != nil {
			return err
		}
		return fmt.Errorf("cluster: batch plan failed without a validation error")
	}
	defer plan.Release()
	shards := plan.TouchedShards()

	// Group the shards per owning worker, preserving shard order within
	// each group (workers apply and report in request order).
	nw := len(c.workers)
	grouped := make([][]int, nw)
	c.mu.Lock()
	for _, s := range shards {
		w := c.assign[s]
		grouped[w] = append(grouped[w], s)
	}
	c.mu.Unlock()
	var workerIDs []int
	var shardsByWorker [][]int
	for w := 0; w < nw; w++ {
		if len(grouped[w]) > 0 {
			workerIDs = append(workerIDs, w)
			shardsByWorker = append(shardsByWorker, grouped[w])
		}
	}

	// Past the admission wait but out of budget: shed before any remote
	// work, while the abort is still free (no worker has applied anything,
	// so no shard needs resync).
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		return ErrOverloaded
	}

	// Pipelined durability: the log append starts now, concurrent with the
	// batch's own phase-1 round trips. logMu is taken before the append and
	// held through the commit, so across batches log order equals commit
	// order and the stamped generation is exact (the previous commit's
	// postGen) — the WAL byte stream is identical to logging inside the
	// commit section.
	pipelined := cb.Log != nil && !c.opts.SerialLog
	var (
		logErr  error
		logDone chan struct{}
	)
	if pipelined {
		logDone = make(chan struct{})
		go func() {
			c.logMu.Lock()
			c.mu.Lock()
			gen := c.lastGen
			c.mu.Unlock()
			logErr = cb.Log(b, gen)
			close(logDone)
		}()
	}

	// Phase 1: one group send per involved worker, each capped by the op's
	// remaining budget. Calls to the same worker from concurrently admitted
	// batches coalesce (sendApply); the single-worker case stays on this
	// goroutine.
	calls := make([]*applyCall, len(workerIDs))
	for i := range workerIDs {
		call := getApplyCall()
		call.body = appendApplyBatch(call.body, plan, shardsByWorker[i])
		call.capAt = deadline
		calls[i] = call
	}
	var phase1Err error
	if len(workerIDs) == 1 {
		if err := c.sendApply(c.workers[workerIDs[0]], calls[0]); err != nil {
			phase1Err = fmt.Errorf("cluster: phase 1 on %s: %w", c.workers[workerIDs[0]].name, err)
		}
	} else if len(workerIDs) > 1 {
		errs := make([]error, len(workerIDs))
		var wg sync.WaitGroup
		send := func(i, w int) {
			if err := c.sendApply(c.workers[w], calls[i]); err != nil {
				errs[i] = fmt.Errorf("cluster: phase 1 on %s: %w", c.workers[w].name, err)
			}
		}
		for i := 1; i < len(workerIDs); i++ {
			wg.Add(1)
			go func(i, w int) {
				defer wg.Done()
				send(i, w)
			}(i, workerIDs[i])
		}
		// The first worker's round trip rides this goroutine — one fewer
		// spawn per apply, overlapping the spawned sends all the same.
		send(0, workerIDs[0])
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				phase1Err = err
				break
			}
		}
	}

	// Phase 2 cross-check: the per-shard deltas are a pure function of the
	// plan; a mismatch means the replica diverged from the authoritative
	// shard. Checked in shard order, like the merge itself.
	if phase1Err == nil {
		for i, w := range workerIDs {
			ws := shardsByWorker[i]
			got := calls[i].deltas
			if len(got) != len(ws) {
				phase1Err = fmt.Errorf("cluster: %s reported %d shard deltas, want %d",
					c.workers[w].name, len(got), len(ws))
				break
			}
			for j, s := range ws {
				if got[j].shard != s || got[j].delta != plan.EdgeDelta(s) {
					phase1Err = fmt.Errorf("cluster: shard %d on %s diverged: edge delta %d, want %d",
						s, c.workers[w].name, got[j].delta, plan.EdgeDelta(s))
					break
				}
			}
			if phase1Err != nil {
				break
			}
		}
	}
	for _, call := range calls {
		applyCallPool.Put(call)
	}

	abort := func(err error) error {
		c.markDirty(shards)
		c.remoteErrs.Add(1)
		return err
	}
	if pipelined {
		<-logDone
	}
	if phase1Err != nil {
		if pipelined {
			if logErr == nil && cb.Unlog != nil {
				cb.Unlog()
			}
			c.logMu.Unlock()
		}
		return abort(phase1Err)
	}
	if pipelined && logErr != nil {
		c.logMu.Unlock()
		return abort(fmt.Errorf("cluster: log after phase 1; resyncing: %w", logErr))
	}

	// Overlappable commits of disjoint batches skip the exclusive commit
	// section entirely: they hold commitMu as readers (excluding only
	// serial commits) and let the graph's overlap guards serialize the
	// global merge counters. Nothing here needs commit order — no log, no
	// replication record, no feed — and the merges commute, so the final
	// state is the same as any serial order.
	if cb.Overlappable && cb.Log == nil && c.opts.Repl == ReplOff && c.opts.OnCommit == nil {
		c.commitMu.RLock()
		c.g.BeginOverlappedApplies()
		err := cb.Apply(b)
		c.g.EndOverlappedApplies()
		c.commitMu.RUnlock()
		if err != nil {
			return abort(fmt.Errorf("cluster: commit failed after phase 1; resyncing: %w", err))
		}
		c.applied.Add(1)
		return nil
	}

	// Commit: the local, authoritative application — serialized, because
	// it merges into graph-global state. When replication is on, the
	// record's sequence and per-shard chain links are assigned here too,
	// so replication order is commit order.
	c.commitMu.Lock()
	var err error
	if cb.Log != nil && !pipelined {
		c.mu.Lock()
		gen := c.lastGen
		c.mu.Unlock()
		err = cb.Log(b, gen)
	}
	var rep *replRecord
	if err == nil {
		preGen := c.g.Generation()
		err = cb.Apply(b)
		if err == nil {
			postGen := c.g.Generation()
			c.mu.Lock()
			c.lastGen = postGen
			c.replSeq++
			seq := c.replSeq
			if c.opts.Repl != ReplOff {
				rep = &replRecord{seq: seq, preGen: preGen, postGen: postGen,
					prev: make(map[int]uint64, len(shards))}
				for _, s := range shards {
					rep.prev[s] = c.replLast[s]
					c.replLast[s] = seq
				}
			} else {
				for _, s := range shards {
					c.replLast[s] = seq
				}
			}
			c.mu.Unlock()
			// The standby feed runs inside the commit critical section:
			// Hub.Feed requires commit order across ALL batches, and the
			// per-shard locks alone would let two disjoint batches' post-unlock
			// feeds invert (the standby's generation check then rejects the
			// reordered record and marks a healthy replica stale). Feed only
			// enqueues — it never waits on a standby — so this does not extend
			// the serialized section by any network time.
			if c.opts.OnCommit != nil {
				c.opts.OnCommit(seq, preGen, postGen, b)
			}
		}
	}
	c.commitMu.Unlock()
	if pipelined {
		if err != nil && cb.Unlog != nil {
			// The record is logged but will never apply: take it back so
			// the WAL keeps matching the committed state.
			cb.Unlog()
		}
		c.logMu.Unlock()
	}
	if err != nil {
		// Workers applied a batch the authoritative side rejected.
		return abort(fmt.Errorf("cluster: commit failed after phase 1; resyncing: %w", err))
	}
	c.applied.Add(1)
	// Worker log shipping fans out while the touched shards are still
	// held, so same-shard records stay in commit order (cross-shard order
	// is irrelevant to the per-shard chains). It cannot fail the batch —
	// it is already durable locally.
	if c.opts.Repl != ReplOff {
		c.replicate(b, workerIDs, shardsByWorker, rep)
	}
	return nil
}

// MoveShard rebalances shard s onto worker w: the authoritative segment is
// shipped to the new owner, the old replica is dropped (best-effort), and
// the assignment flips. Safe between and during Apply traffic — the shard
// is locked like a batch touching it.
func (c *Coordinator) MoveShard(s, w int) error {
	if s < 0 || s >= c.g.NumShards() {
		return fmt.Errorf("cluster: MoveShard: shard %d out of range [0,%d)", s, c.g.NumShards())
	}
	if w < 0 || w >= len(c.workers) {
		return fmt.Errorf("cluster: MoveShard: worker %d out of range [0,%d)", w, len(c.workers))
	}
	touched := []int{s}
	c.acquire(touched)
	defer c.release(touched)
	c.mu.Lock()
	old := c.assign[s]
	c.mu.Unlock()
	if old == w {
		return nil
	}
	if err := c.ensureUp(w); err != nil {
		return err
	}
	if err := c.place(c.workers[w], s); err != nil {
		c.remoteErrs.Add(1)
		return fmt.Errorf("cluster: MoveShard: placing shard %d on %s: %w", s, c.workers[w].name, err)
	}
	c.mu.Lock()
	c.assign[s] = w
	c.dirty[s] = false
	c.mu.Unlock()
	req := appendUvarint([]byte{byte(msgDrop)}, uint64(s))
	c.workers[old].request(req) // best-effort: stale replicas are inert
	return nil
}

// VerifyShard compares the remote replica of shard s against the
// authoritative local segment, byte for byte (parcels are deterministic).
// It is the distributed analogue of the snapshot round-trip check.
func (c *Coordinator) VerifyShard(s int) error {
	if s < 0 || s >= c.g.NumShards() {
		return fmt.Errorf("cluster: VerifyShard: shard %d out of range [0,%d)", s, c.g.NumShards())
	}
	touched := []int{s}
	c.acquire(touched)
	defer c.release(touched)
	c.mu.Lock()
	w := c.assign[s]
	c.mu.Unlock()
	want, err := store.EncodeShardParcel(c.g, s)
	if err != nil {
		return err
	}
	r, err := c.workers[w].requestHint(appendUvarint([]byte{byte(msgExport)}, uint64(s)), len(want))
	if err != nil {
		return fmt.Errorf("cluster: export shard %d from %s: %w", s, c.workers[w].name, err)
	}
	if got := r.rest(); !bytes.Equal(got, want) {
		return fmt.Errorf("cluster: shard %d on %s diverged: parcel %d bytes != authoritative %d bytes",
			s, c.workers[w].name, len(got), len(want))
	}
	return nil
}

// VerifyAll runs VerifyShard over every shard.
func (c *Coordinator) VerifyAll() error {
	for s := 0; s < c.g.NumShards(); s++ {
		if err := c.VerifyShard(s); err != nil {
			return err
		}
	}
	return nil
}

// Stat is one worker's view in Stats.
type Stat struct {
	Name string
	// Down reports a broken session awaiting redial.
	Down bool
	// Busy reports a link mid-request (a large placement, a slow phase 1):
	// the worker is up but was not polled, so Remote is zero-valued.
	Busy bool
	// Assigned is the number of shards assigned to this worker.
	Assigned int
	// Retries is the transport's cumulative dial attempt count (zero when
	// the link has no Dialer-style transport).
	Retries uint64
	// Remote is the worker's self-report; zero-valued when Down or Busy.
	Remote WorkerStat
}

// statTimeout bounds one health poll: operators read stats during
// incidents, exactly when a full rpcTimeout wait is unaffordable. A poll
// that times out closes the session (a late response would desync the
// request/response stream), which the next batch heals via redial —
// links without a Redial path lose the worker permanently, one reason
// Link.Redial is strongly recommended outside tests.
const statTimeout = 5 * time.Second

// Stats polls every worker (best-effort, short deadline, never queuing
// behind an in-flight request) and returns per-worker stats.
func (c *Coordinator) Stats() []Stat {
	return c.StatsWithin(statTimeout)
}

// StatsWithin is Stats with an explicit per-worker poll deadline. Workers
// are polled in parallel, so the whole call is bounded by one timeout —
// not timeout × dead workers — which is what lets a serving layer answer
// "stat" in bounded time during exactly the incidents stats exist for.
func (c *Coordinator) StatsWithin(timeout time.Duration) []Stat {
	if timeout <= 0 {
		timeout = statTimeout
	}
	out := make([]Stat, len(c.workers))
	c.mu.Lock()
	assigned := make([]int, len(c.workers))
	for _, w := range c.assign {
		assigned[w]++
	}
	c.mu.Unlock()
	var wg sync.WaitGroup
	for i, l := range c.workers {
		wg.Add(1)
		go func(i int, l *workerLink) {
			defer wg.Done()
			st := Stat{Name: l.name, Assigned: assigned[i]}
			if l.retries != nil {
				st.Retries = l.retries.Load()
			}
			if !l.mu.TryLock() {
				st.Busy = true
				out[i] = st
				return
			}
			conn, err := l.session()
			if err != nil {
				l.mu.Unlock()
				st.Down = true
				out[i] = st
				return
			}
			conn.SetDeadline(time.Now().Add(timeout))
			r, rerr := roundTrip(conn, []byte{byte(msgStat)})
			conn.SetDeadline(time.Time{})
			if rerr != nil && !IsRemote(rerr) {
				l.fail(conn)
			}
			l.mu.Unlock()
			if rerr != nil {
				st.Down = true
			} else if remote, derr := decodeStat(r); derr == nil {
				st.Remote = remote
			}
			out[i] = st
		}(i, l)
	}
	wg.Wait()
	return out
}

// Close tears down every worker session. It takes only connMu — never the
// request mutex — so an RPC in flight to a stalled worker is interrupted
// (its blocked read fails as the conn closes) instead of pinning shutdown
// until the RPC deadline expires.
func (c *Coordinator) Close() error {
	c.quitOnce.Do(func() { close(c.quit) })
	for _, l := range c.workers {
		l.connMu.Lock()
		if l.conn != nil {
			l.conn.Close()
			l.down = true
		}
		l.connMu.Unlock()
	}
	return nil
}
