package cluster

import (
	"testing"
	"time"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

func benchSetup(b *testing.B, n int) (*graph.Graph, []graph.Batch) {
	b.Helper()
	g, err := gen.Dataset("synthetic", 0.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	g.SetShards(8)
	scratch := g.Clone()
	var batches []graph.Batch
	for i := 0; i < n; i++ {
		bb := gen.Updates(scratch, gen.UpdateSpec{Count: g.NumEdges() / 20, InsertRatio: 0.5, Locality: 0.8, Seed: int64(100 + i)})
		if err := scratch.ApplyBatch(bb); err != nil {
			b.Fatal(err)
		}
		batches = append(batches, bb)
	}
	return g, batches
}

func BenchmarkApplySingleProc(b *testing.B) {
	g, batches := benchSetup(b, b.N+1)
	h := g.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.ApplyBatch(batches[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanEncode(b *testing.B) {
	g, batches := benchSetup(b, b.N+1)
	h := g.Clone()
	var body []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, ok := h.PlanBatch(batches[i])
		if !ok {
			b.Fatal("plan failed")
		}
		body = appendApplyBatch(body[:0], plan, plan.TouchedShards())
		plan.Release()
		b.StopTimer()
		if err := h.ApplyBatch(batches[i]); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkApplyCluster(b *testing.B) {
	g, batches := benchSetup(b, b.N+1)
	h := g.Clone()
	links, _, stop := InProcess(2)
	defer stop()
	co, err := NewCoordinator(h, links)
	if err != nil {
		b.Fatal(err)
	}
	defer co.Close()
	commit := func(bb graph.Batch) error { return h.ApplyBatch(bb) }
	if err := co.Apply(batches[0], commit); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 1; i <= b.N; i++ {
		if err := co.ApplyCommit(batches[i], time.Time{}, Commit{Apply: commit}); err != nil {
			b.Fatal(err)
		}
	}
}
