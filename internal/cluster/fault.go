package cluster

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Deterministic fault injection. A FaultScript wraps connections in a
// frame-aware shim that can drop, delay, duplicate, or sever specific
// frames — matched by direction, frame index, and message type — so every
// failure mode the HA layer claims to survive is exercised in-process,
// and reproducibly: the script records an event log of every fault it
// fired, and a drill run twice from the same seed over the same traffic
// produces identical logs (the CI chaos job's determinism pin).
//
// The shim parses the byte stream back into frames (writeFrame emits
// header and payload as separate writes, and TCP may fragment anyway),
// applies the first matching rule per frame, and forwards the survivors.
// Dropping a request or response leaves the peer waiting — pair drills
// with a short CoordinatorOptions.CallTimeout so the timeout-and-resync
// path runs in milliseconds.

// FaultDir selects which direction of a wrapped connection a rule
// watches, from the wrapping side's point of view.
type FaultDir int

const (
	// FaultOut matches frames written by the wrapped side (requests, on a
	// coordinator's link).
	FaultOut FaultDir = iota
	// FaultIn matches frames read by the wrapped side (responses).
	FaultIn
)

func (d FaultDir) String() string {
	if d == FaultOut {
		return "out"
	}
	return "in"
}

// FaultAction is what a matching rule does to the frame.
type FaultAction int

const (
	// FaultDrop swallows the frame; the peer never sees it.
	FaultDrop FaultAction = iota
	// FaultDelay forwards the frame after Delay.
	FaultDelay
	// FaultDup forwards the frame twice, desynchronizing the strict
	// request/response stream.
	FaultDup
	// FaultSever closes the connection at this frame.
	FaultSever
)

// Message selectors for FaultRule.Msg: the protocol's type bytes, named
// so drills outside this package can match on them without learning the
// wire encoding.
const (
	FaultMsgHello     = byte(msgHello)
	FaultMsgPlace     = byte(msgPlace)
	FaultMsgApply     = byte(msgApply)
	FaultMsgReplicate = byte(msgReplicate)
	FaultMsgTail      = byte(msgTail)
	FaultMsgFeed      = byte(msgFeed)
	FaultMsgPing      = byte(msgPing)
)

func (a FaultAction) String() string {
	switch a {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDup:
		return "dup"
	case FaultSever:
		return "sever"
	default:
		return "unknown"
	}
}

// FaultRule matches frames on a wrapped connection. The zero values of
// the match fields are wildcards where noted.
type FaultRule struct {
	Dir FaultDir
	// Frame matches the direction-relative frame index (0-based) on the
	// connection; -1 matches every frame.
	Frame int
	// Msg matches the payload's leading message-type byte; 0 matches any.
	Msg byte
	// Prob, when in (0,1), fires the rule with that probability from the
	// script's seeded source; 0 and 1 both mean "always".
	Prob   float64
	Action FaultAction
	// Delay is the hold time for FaultDelay.
	Delay time.Duration
	// Count limits how many times the rule fires (0 = unlimited).
	Count int
}

// FaultScript is a seeded set of rules plus the event log of every fault
// fired. One script may wrap several connections; frame indexes are per
// connection and direction, events interleave in firing order.
type FaultScript struct {
	Seed  int64
	Rules []FaultRule

	mu     sync.Mutex
	rng    *rand.Rand
	fired  []int
	events []string
	nconns int
}

// NewFaultScript builds a script from rules.
func NewFaultScript(seed int64, rules ...FaultRule) *FaultScript {
	return &FaultScript{Seed: seed, Rules: rules}
}

// Events returns a copy of the fault log: one "conn#c dir#frame msg action"
// line per fired fault, in firing order.
func (s *FaultScript) Events() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.events...)
}

// Wrap returns conn shimmed through the script. Wrap the side whose
// traffic the rules describe (the coordinator's end of a link, usually).
func (s *FaultScript) Wrap(conn net.Conn) net.Conn {
	s.mu.Lock()
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(s.Seed))
		s.fired = make([]int, len(s.Rules))
	}
	id := s.nconns
	s.nconns++
	s.mu.Unlock()
	return &faultConn{Conn: conn, script: s, id: id}
}

// WrapLink shims a coordinator link — its live connection and its redial
// path — through the script.
func (s *FaultScript) WrapLink(l Link) Link {
	l.Conn = s.Wrap(l.Conn)
	if redial := l.Redial; redial != nil {
		l.Redial = func() (net.Conn, error) {
			conn, err := redial()
			if err != nil {
				return nil, err
			}
			return s.Wrap(conn), nil
		}
	}
	return l
}

// match finds the first applicable rule for a frame and logs the fault.
// It returns the action to take and whether any rule fired.
func (s *FaultScript) match(connID int, dir FaultDir, frame int, msg byte) (FaultRule, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.Rules {
		if r.Dir != dir {
			continue
		}
		if r.Frame >= 0 && r.Frame != frame {
			continue
		}
		if r.Msg != 0 && r.Msg != msg {
			continue
		}
		if r.Count > 0 && s.fired[i] >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && s.rng.Float64() >= r.Prob {
			continue
		}
		s.fired[i]++
		s.events = append(s.events,
			fmt.Sprintf("conn#%d %s#%d %s %s", connID, dir, frame, msgName(msg), r.Action))
		return r, true
	}
	return FaultRule{}, false
}

// msgName labels a message-type byte in event logs.
func msgName(b byte) string {
	switch msgType(b) {
	case msgHello:
		return "hello"
	case msgPlace:
		return "place"
	case msgDrop:
		return "drop"
	case msgApply:
		return "apply"
	case msgExport:
		return "export"
	case msgStat:
		return "stat"
	case msgOK:
		return "ok"
	case msgErr:
		return "err"
	case msgReplicate:
		return "replicate"
	case msgReplState:
		return "replstate"
	case msgTail:
		return "tail"
	case msgFeed:
		return "feed"
	case msgPing:
		return "ping"
	case msgScrub:
		return "scrub"
	default:
		return fmt.Sprintf("type%d", b)
	}
}

// frameParser accumulates a byte stream and yields complete frames
// (header + payload, as written).
type frameParser struct {
	buf []byte
}

// next returns the first complete frame in the buffer, or nil.
func (p *frameParser) next() []byte {
	if len(p.buf) < frameHeaderSize {
		return nil
	}
	length := binary.LittleEndian.Uint32(p.buf[:4])
	total := frameHeaderSize + int(length)
	if len(p.buf) < total {
		return nil
	}
	frame := p.buf[:total:total]
	p.buf = p.buf[total:]
	return frame
}

// faultConn is one wrapped connection. Reads and writes each have their
// own parser and frame counter; the shim assumes one writer per
// direction, like the protocol itself.
type faultConn struct {
	net.Conn
	script *FaultScript
	id     int

	out      frameParser
	outFrame int
	in       frameParser
	inFrame  int
	// inReady holds post-fault bytes awaiting delivery to Read.
	inReady []byte
}

// apply runs one frame through the rules and returns the bytes to
// forward (nil to swallow) or an error to sever with.
func (c *faultConn) apply(dir FaultDir, frameIdx int, frame []byte) ([]byte, error) {
	var msg byte
	if len(frame) > frameHeaderSize {
		msg = frame[frameHeaderSize]
	}
	rule, ok := c.script.match(c.id, dir, frameIdx, msg)
	if !ok {
		return frame, nil
	}
	switch rule.Action {
	case FaultDrop:
		return nil, nil
	case FaultDelay:
		time.Sleep(rule.Delay)
		return frame, nil
	case FaultDup:
		return append(append([]byte(nil), frame...), frame...), nil
	case FaultSever:
		c.Conn.Close()
		return nil, fmt.Errorf("cluster: fault: severed at %s frame %d", dir, frameIdx)
	default:
		return frame, nil
	}
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.out.buf = append(c.out.buf, p...)
	for {
		frame := c.out.next()
		if frame == nil {
			return len(p), nil
		}
		idx := c.outFrame
		c.outFrame++
		fwd, err := c.apply(FaultOut, idx, frame)
		if err != nil {
			return 0, err
		}
		if len(fwd) == 0 {
			continue
		}
		if _, err := c.Conn.Write(fwd); err != nil {
			return 0, err
		}
	}
}

func (c *faultConn) Read(p []byte) (int, error) {
	for len(c.inReady) == 0 {
		chunk := make([]byte, 64<<10)
		n, err := c.Conn.Read(chunk)
		if n > 0 {
			c.in.buf = append(c.in.buf, chunk[:n]...)
			for {
				frame := c.in.next()
				if frame == nil {
					break
				}
				idx := c.inFrame
				c.inFrame++
				fwd, ferr := c.apply(FaultIn, idx, frame)
				if ferr != nil {
					return 0, ferr
				}
				c.inReady = append(c.inReady, fwd...)
			}
		}
		if err != nil {
			if len(c.inReady) > 0 {
				break
			}
			return 0, err
		}
	}
	n := copy(p, c.inReady)
	c.inReady = c.inReady[n:]
	return n, nil
}
