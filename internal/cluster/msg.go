package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"incgraph/internal/graph"
)

// Wire messages. Every frame payload is one message: a type byte followed
// by a type-specific body (little-endian fixed ints, varints for counts
// and IDs — the same conventions as the WAL and snapshot codecs). The
// protocol is strict request/response: the coordinator sends one request
// per connection at a time and the worker answers with msgOK (body per
// request type) or msgErr (UTF-8 error text). Labels travel as strings:
// LabelIDs are process-local.

// protocolVersion guards the wire format; hello rejects mismatches.
// Version 2 added coordinator terms (fencing), per-shard WAL replication
// and the standby tail stream.
const protocolVersion = 2

type msgType byte

const (
	// msgHello opens a session: u32 version, u32 shard count P. The worker
	// adopts P (fresh container graph if it had none or a different P) and
	// answers with its currently owned shards.
	msgHello msgType = iota + 1
	// msgPlace installs an authoritative shard replica: uvarint shard,
	// then a store.EncodeShardParcel body. Replaces any existing copy.
	msgPlace
	// msgDrop removes a shard replica: uvarint shard.
	msgDrop
	// msgApply runs phase 1 for the listed shards: the ShardEffects slices
	// of one planned batch. The worker answers with per-shard edge deltas.
	msgApply
	// msgExport returns the parcel of an owned shard: uvarint shard.
	msgExport
	// msgStat reports owned shards with node counts and counters.
	msgStat
	// msgOK acknowledges a request; body depends on the request type.
	msgOK
	// msgErr reports a request-level failure; body is the error text. The
	// connection remains usable.
	msgErr
	// msgReplicate ships one committed WAL record to the shards this worker
	// owns: per-shard prevSeq chain links, the post-commit generation, and
	// the record payload. The worker appends to each shard's replica log
	// and answers with per-shard ok/gap statuses.
	msgReplicate
	// msgReplState reports per-shard replication state: last replicated
	// sequence and proven generation for every shard with a replica log.
	msgReplState
	// msgTail opens a standby feed on a coordinator hub: the response
	// carries term, sequence, generation and a full snapshot, after which
	// the connection role-flips — the hub pushes msgFeed/msgPing requests
	// and the standby acks each.
	msgTail
	// msgFeed pushes one committed record (post-commit generation + record
	// payload) down a tail stream.
	msgFeed
	// msgPing is the hub's lease heartbeat on a tail stream: u64 term.
	msgPing
	// msgScrub asks a worker to verify the on-disk integrity of a shard's
	// replica log: uvarint shard. The response is msgOK + status byte (0
	// intact, 1 damaged) + optional damage description. Additive: an older
	// worker answers msgErr, which the scrubber treats as unverifiable.
	msgScrub
)

// ErrProtocol reports a semantically malformed message: unknown type,
// truncated body, value out of range.
var ErrProtocol = errors.New("cluster: protocol error")

// remoteError wraps an msgErr body so callers can distinguish "the worker
// said no" (state divergence, bad request) from transport failure.
type remoteError string

func (e remoteError) Error() string { return "cluster: remote: " + string(e) }

// IsRemote reports whether err is a worker-reported error rather than a
// transport or framing failure.
func IsRemote(err error) bool {
	var re remoteError
	return errors.As(err, &re)
}

// ---- body codecs -------------------------------------------------------

// reader walks a message body with truncation-checked reads.
type reader struct {
	buf []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated at %d", ErrProtocol, r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated at %d", ErrProtocol, r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("%w: truncated at %d", ErrProtocol, r.off)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.buf)-r.off) {
		return nil, fmt.Errorf("%w: truncated at %d", ErrProtocol, r.off)
	}
	out := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return out, nil
}

func (r *reader) rest() []byte { return r.buf[r.off:] }

func (r *reader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrProtocol, len(r.buf)-r.off)
	}
	return nil
}

// encodeHello builds the hello request body. term is the coordinator's
// fencing term: workers remember the highest term they have seen and
// reject sessions (and the mutating requests of already-open sessions)
// below it.
func encodeHello(shards int, term uint64) []byte {
	buf := []byte{byte(msgHello)}
	buf = binary.LittleEndian.AppendUint32(buf, protocolVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(shards))
	buf = binary.LittleEndian.AppendUint64(buf, term)
	return buf
}

// decodeHello parses a hello body (type byte already consumed). The body
// past the version field is version-specific (v2 added the term), so an
// unsupported version returns with only version populated and no error —
// the caller rejects on version with a proper "not supported" message
// instead of a confusing short-read/trailing-bytes protocol error.
func decodeHello(r *reader) (version, shards uint32, term uint64, err error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, 0, 0, err
	}
	version = binary.LittleEndian.Uint32(b)
	if version != protocolVersion {
		return version, 0, 0, nil
	}
	b, err = r.bytes(12)
	if err != nil {
		return version, 0, 0, err
	}
	return version, binary.LittleEndian.Uint32(b),
		binary.LittleEndian.Uint64(b[4:]), r.done()
}

// encodeShardList is the hello/stat-style "uvarint count + shards" body.
func encodeShardList(buf []byte, shards []int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(shards)))
	for _, s := range shards {
		buf = binary.AppendUvarint(buf, uint64(s))
	}
	return buf
}

func decodeShardList(r *reader) ([]int, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf)) {
		return nil, fmt.Errorf("%w: implausible shard count %d", ErrProtocol, n)
	}
	out := make([]int, n)
	for i := range out {
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		out[i] = int(s)
	}
	return out, nil
}

// encodeApply builds the apply request: every ShardEffects slice of one
// planned batch destined for a single worker.
func encodeApply(effs []graph.ShardEffects) []byte {
	buf := []byte{byte(msgApply)}
	buf = binary.AppendUvarint(buf, uint64(len(effs)))
	for _, e := range effs {
		buf = binary.AppendUvarint(buf, uint64(e.Shard))
		buf = binary.AppendUvarint(buf, uint64(len(e.NewNodes)))
		for _, n := range e.NewNodes {
			buf = binary.AppendVarint(buf, int64(n.ID))
			buf = binary.AppendUvarint(buf, uint64(len(n.Label)))
			buf = append(buf, n.Label...)
		}
		buf = binary.AppendUvarint(buf, uint64(len(e.Ops)))
		for _, op := range e.Ops {
			if op.Op == graph.Insert {
				buf = append(buf, 0)
			} else {
				buf = append(buf, 1)
			}
			buf = binary.AppendVarint(buf, int64(op.From))
			buf = binary.AppendVarint(buf, int64(op.To))
		}
	}
	return buf
}

// decodeApply parses an apply body (type byte already consumed).
func decodeApply(r *reader) ([]graph.ShardEffects, error) {
	nShards, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nShards > graph.MaxShards {
		return nil, fmt.Errorf("%w: apply names %d shards", ErrProtocol, nShards)
	}
	out := make([]graph.ShardEffects, nShards)
	for i := range out {
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		eff := graph.ShardEffects{Shard: int(s)}
		nNew, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nNew > uint64(len(r.buf)) {
			return nil, fmt.Errorf("%w: implausible node count %d", ErrProtocol, nNew)
		}
		eff.NewNodes = make([]graph.ShardNewNode, nNew)
		for j := range eff.NewNodes {
			id, err := r.varint()
			if err != nil {
				return nil, err
			}
			l, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			label, err := r.bytes(l)
			if err != nil {
				return nil, err
			}
			eff.NewNodes[j] = graph.ShardNewNode{ID: graph.NodeID(id), Label: string(label)}
		}
		nOps, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nOps > uint64(len(r.buf)) {
			return nil, fmt.Errorf("%w: implausible op count %d", ErrProtocol, nOps)
		}
		eff.Ops = make([]graph.ShardOp, nOps)
		for j := range eff.Ops {
			opb, err := r.byte()
			if err != nil {
				return nil, err
			}
			from, err := r.varint()
			if err != nil {
				return nil, err
			}
			to, err := r.varint()
			if err != nil {
				return nil, err
			}
			op := graph.Insert
			if opb == 1 {
				op = graph.Delete
			} else if opb != 0 {
				return nil, fmt.Errorf("%w: unknown op byte %d", ErrProtocol, opb)
			}
			eff.Ops[j] = graph.ShardOp{Op: op, From: graph.NodeID(from), To: graph.NodeID(to)}
		}
		out[i] = eff
	}
	return out, r.done()
}

// encodeDeltas builds the apply response: per-shard edge-count deltas in
// request order.
func encodeDeltas(shards []int, deltas []int) []byte {
	buf := []byte{byte(msgOK)}
	buf = binary.AppendUvarint(buf, uint64(len(shards)))
	for i, s := range shards {
		buf = binary.AppendUvarint(buf, uint64(s))
		buf = binary.AppendVarint(buf, int64(deltas[i]))
	}
	return buf
}

func decodeDeltas(r *reader) (map[int]int, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > graph.MaxShards {
		return nil, fmt.Errorf("%w: %d delta entries", ErrProtocol, n)
	}
	out := make(map[int]int, n)
	for i := uint64(0); i < n; i++ {
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		d, err := r.varint()
		if err != nil {
			return nil, err
		}
		out[int(s)] = int(d)
	}
	return out, r.done()
}

// WorkerStat is one worker's self-report: owned shards with node counts
// plus lifetime counters.
type WorkerStat struct {
	// Shards maps owned shard index to its node count.
	Shards map[int]int
	// Applied counts phase-1 batch applications since start.
	Applied uint64
	// Errors counts requests the worker rejected since start.
	Errors uint64
	// Replicated counts WAL records appended to replica logs since start.
	Replicated uint64
	// ReplGaps counts replica-log gap detections since start (each one
	// forced a parcel resync).
	ReplGaps uint64
	// Term is the highest coordinator fencing term the worker has seen.
	Term uint64
}

func encodeStat(st WorkerStat) []byte {
	buf := []byte{byte(msgOK)}
	buf = binary.AppendUvarint(buf, uint64(len(st.Shards)))
	// Deterministic order keeps responses reproducible for tests.
	keys := make([]int, 0, len(st.Shards))
	for s := range st.Shards {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	for _, s := range keys {
		buf = binary.AppendUvarint(buf, uint64(s))
		buf = binary.AppendUvarint(buf, uint64(st.Shards[s]))
	}
	buf = binary.AppendUvarint(buf, st.Applied)
	buf = binary.AppendUvarint(buf, st.Errors)
	buf = binary.AppendUvarint(buf, st.Replicated)
	buf = binary.AppendUvarint(buf, st.ReplGaps)
	buf = binary.AppendUvarint(buf, st.Term)
	return buf
}

func decodeStat(r *reader) (WorkerStat, error) {
	st := WorkerStat{Shards: map[int]int{}}
	n, err := r.uvarint()
	if err != nil {
		return st, err
	}
	if n > graph.MaxShards {
		return st, fmt.Errorf("%w: %d stat entries", ErrProtocol, n)
	}
	for i := uint64(0); i < n; i++ {
		s, err := r.uvarint()
		if err != nil {
			return st, err
		}
		c, err := r.uvarint()
		if err != nil {
			return st, err
		}
		st.Shards[int(s)] = int(c)
	}
	if st.Applied, err = r.uvarint(); err != nil {
		return st, err
	}
	if st.Errors, err = r.uvarint(); err != nil {
		return st, err
	}
	if st.Replicated, err = r.uvarint(); err != nil {
		return st, err
	}
	if st.ReplGaps, err = r.uvarint(); err != nil {
		return st, err
	}
	if st.Term, err = r.uvarint(); err != nil {
		return st, err
	}
	return st, r.done()
}

// ---- replication codecs ------------------------------------------------

// replEntry is one shard's chain link in a replicate request: the
// sequence of the previous committed record that touched the shard.
type replEntry struct {
	shard   int
	prevSeq uint64
}

// Per-shard replicate ack statuses.
const (
	replOK  byte = 0 // appended
	replGap byte = 1 // chain broken: shard needs a parcel resync
)

// encodeReplicate builds the replicate request: the post-commit
// generation, the per-shard chain links, and the raw record payload
// (store.EncodeRecord bytes carrying seq, gen-at-append, batch).
func encodeReplicate(entries []replEntry, postGen uint64, record []byte) []byte {
	buf := []byte{byte(msgReplicate)}
	buf = binary.LittleEndian.AppendUint64(buf, postGen)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, uint64(e.shard))
		buf = binary.AppendUvarint(buf, e.prevSeq)
	}
	return append(buf, record...)
}

func decodeReplicate(r *reader) (entries []replEntry, postGen uint64, record []byte, err error) {
	b, err := r.bytes(8)
	if err != nil {
		return nil, 0, nil, err
	}
	postGen = binary.LittleEndian.Uint64(b)
	n, err := r.uvarint()
	if err != nil {
		return nil, 0, nil, err
	}
	if n > graph.MaxShards {
		return nil, 0, nil, fmt.Errorf("%w: replicate names %d shards", ErrProtocol, n)
	}
	entries = make([]replEntry, n)
	for i := range entries {
		s, err := r.uvarint()
		if err != nil {
			return nil, 0, nil, err
		}
		prev, err := r.uvarint()
		if err != nil {
			return nil, 0, nil, err
		}
		entries[i] = replEntry{shard: int(s), prevSeq: prev}
	}
	return entries, postGen, r.rest(), nil
}

// encodeReplAck builds the replicate response: per-shard statuses in
// request order.
func encodeReplAck(entries []replEntry, statuses []byte) []byte {
	buf := []byte{byte(msgOK)}
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for i, e := range entries {
		buf = binary.AppendUvarint(buf, uint64(e.shard))
		buf = append(buf, statuses[i])
	}
	return buf
}

func decodeReplAck(r *reader) (map[int]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > graph.MaxShards {
		return nil, fmt.Errorf("%w: %d ack entries", ErrProtocol, n)
	}
	out := make(map[int]byte, n)
	for i := uint64(0); i < n; i++ {
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		st, err := r.byte()
		if err != nil {
			return nil, err
		}
		out[int(s)] = st
	}
	return out, r.done()
}

// ReplState is one shard's replication state on a worker: the last
// replicated sequence and the generation that sequence proved.
type ReplState struct {
	LastSeq uint64
	Gen     uint64
}

func encodeReplStates(states map[int]ReplState) []byte {
	buf := []byte{byte(msgOK)}
	buf = binary.AppendUvarint(buf, uint64(len(states)))
	keys := make([]int, 0, len(states))
	for s := range states {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	for _, s := range keys {
		buf = binary.AppendUvarint(buf, uint64(s))
		buf = binary.AppendUvarint(buf, states[s].LastSeq)
		buf = binary.AppendUvarint(buf, states[s].Gen)
	}
	return buf
}

func decodeReplStates(r *reader) (map[int]ReplState, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > graph.MaxShards {
		return nil, fmt.Errorf("%w: %d repl-state entries", ErrProtocol, n)
	}
	out := make(map[int]ReplState, n)
	for i := uint64(0); i < n; i++ {
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		seq, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		gen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		out[int(s)] = ReplState{LastSeq: seq, Gen: gen}
	}
	return out, r.done()
}

// ---- standby tail codecs -----------------------------------------------

// encodeTailReq opens a standby feed.
func encodeTailReq() []byte {
	buf := []byte{byte(msgTail)}
	buf = binary.LittleEndian.AppendUint32(buf, protocolVersion)
	return buf
}

func decodeTailReq(r *reader) (version uint32, err error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), r.done()
}

// encodeTailResp answers a tail request: the hub's term, last committed
// sequence and generation, and a full snapshot of the primary's graph.
func encodeTailResp(term, seq, gen uint64, snapshot []byte) []byte {
	buf := []byte{byte(msgOK)}
	buf = binary.LittleEndian.AppendUint64(buf, term)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	return append(buf, snapshot...)
}

func decodeTailResp(r *reader) (term, seq, gen uint64, snapshot []byte, err error) {
	b, err := r.bytes(24)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	return binary.LittleEndian.Uint64(b), binary.LittleEndian.Uint64(b[8:]),
		binary.LittleEndian.Uint64(b[16:]), r.rest(), nil
}

// encodeFeed pushes one committed record down a tail stream: post-commit
// generation plus the record payload.
func encodeFeed(postGen uint64, record []byte) []byte {
	buf := []byte{byte(msgFeed)}
	buf = binary.LittleEndian.AppendUint64(buf, postGen)
	return append(buf, record...)
}

func decodeFeed(r *reader) (postGen uint64, record []byte, err error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, nil, err
	}
	return binary.LittleEndian.Uint64(b), r.rest(), nil
}

// encodePing is the hub's lease heartbeat.
func encodePing(term uint64) []byte {
	buf := []byte{byte(msgPing)}
	return binary.LittleEndian.AppendUint64(buf, term)
}

func decodePing(r *reader) (term uint64, err error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), r.done()
}
