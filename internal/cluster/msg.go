package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"incgraph/internal/graph"
)

// Wire messages. Every frame payload is one message: a type byte followed
// by a type-specific body (little-endian fixed ints, varints for counts
// and IDs — the same conventions as the WAL and snapshot codecs). The
// protocol is strict request/response: the coordinator sends one request
// per connection at a time and the worker answers with msgOK (body per
// request type) or msgErr (UTF-8 error text). Labels travel as strings:
// LabelIDs are process-local.

// protocolVersion guards the wire format; hello rejects mismatches.
const protocolVersion = 1

type msgType byte

const (
	// msgHello opens a session: u32 version, u32 shard count P. The worker
	// adopts P (fresh container graph if it had none or a different P) and
	// answers with its currently owned shards.
	msgHello msgType = iota + 1
	// msgPlace installs an authoritative shard replica: uvarint shard,
	// then a store.EncodeShardParcel body. Replaces any existing copy.
	msgPlace
	// msgDrop removes a shard replica: uvarint shard.
	msgDrop
	// msgApply runs phase 1 for the listed shards: the ShardEffects slices
	// of one planned batch. The worker answers with per-shard edge deltas.
	msgApply
	// msgExport returns the parcel of an owned shard: uvarint shard.
	msgExport
	// msgStat reports owned shards with node counts and counters.
	msgStat
	// msgOK acknowledges a request; body depends on the request type.
	msgOK
	// msgErr reports a request-level failure; body is the error text. The
	// connection remains usable.
	msgErr
)

// ErrProtocol reports a semantically malformed message: unknown type,
// truncated body, value out of range.
var ErrProtocol = errors.New("cluster: protocol error")

// remoteError wraps an msgErr body so callers can distinguish "the worker
// said no" (state divergence, bad request) from transport failure.
type remoteError string

func (e remoteError) Error() string { return "cluster: remote: " + string(e) }

// IsRemote reports whether err is a worker-reported error rather than a
// transport or framing failure.
func IsRemote(err error) bool {
	var re remoteError
	return errors.As(err, &re)
}

// ---- body codecs -------------------------------------------------------

// reader walks a message body with truncation-checked reads.
type reader struct {
	buf []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated at %d", ErrProtocol, r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated at %d", ErrProtocol, r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("%w: truncated at %d", ErrProtocol, r.off)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.buf)-r.off) {
		return nil, fmt.Errorf("%w: truncated at %d", ErrProtocol, r.off)
	}
	out := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return out, nil
}

func (r *reader) rest() []byte { return r.buf[r.off:] }

func (r *reader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrProtocol, len(r.buf)-r.off)
	}
	return nil
}

// encodeHello builds the hello request body.
func encodeHello(shards int) []byte {
	buf := []byte{byte(msgHello)}
	buf = binary.LittleEndian.AppendUint32(buf, protocolVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(shards))
	return buf
}

// decodeHello parses a hello body (type byte already consumed).
func decodeHello(r *reader) (version, shards uint32, err error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, 0, err
	}
	return binary.LittleEndian.Uint32(b), binary.LittleEndian.Uint32(b[4:]), r.done()
}

// encodeShardList is the hello/stat-style "uvarint count + shards" body.
func encodeShardList(buf []byte, shards []int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(shards)))
	for _, s := range shards {
		buf = binary.AppendUvarint(buf, uint64(s))
	}
	return buf
}

func decodeShardList(r *reader) ([]int, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf)) {
		return nil, fmt.Errorf("%w: implausible shard count %d", ErrProtocol, n)
	}
	out := make([]int, n)
	for i := range out {
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		out[i] = int(s)
	}
	return out, nil
}

// encodeApply builds the apply request: every ShardEffects slice of one
// planned batch destined for a single worker.
func encodeApply(effs []graph.ShardEffects) []byte {
	buf := []byte{byte(msgApply)}
	buf = binary.AppendUvarint(buf, uint64(len(effs)))
	for _, e := range effs {
		buf = binary.AppendUvarint(buf, uint64(e.Shard))
		buf = binary.AppendUvarint(buf, uint64(len(e.NewNodes)))
		for _, n := range e.NewNodes {
			buf = binary.AppendVarint(buf, int64(n.ID))
			buf = binary.AppendUvarint(buf, uint64(len(n.Label)))
			buf = append(buf, n.Label...)
		}
		buf = binary.AppendUvarint(buf, uint64(len(e.Ops)))
		for _, op := range e.Ops {
			if op.Op == graph.Insert {
				buf = append(buf, 0)
			} else {
				buf = append(buf, 1)
			}
			buf = binary.AppendVarint(buf, int64(op.From))
			buf = binary.AppendVarint(buf, int64(op.To))
		}
	}
	return buf
}

// decodeApply parses an apply body (type byte already consumed).
func decodeApply(r *reader) ([]graph.ShardEffects, error) {
	nShards, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nShards > graph.MaxShards {
		return nil, fmt.Errorf("%w: apply names %d shards", ErrProtocol, nShards)
	}
	out := make([]graph.ShardEffects, nShards)
	for i := range out {
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		eff := graph.ShardEffects{Shard: int(s)}
		nNew, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nNew > uint64(len(r.buf)) {
			return nil, fmt.Errorf("%w: implausible node count %d", ErrProtocol, nNew)
		}
		eff.NewNodes = make([]graph.ShardNewNode, nNew)
		for j := range eff.NewNodes {
			id, err := r.varint()
			if err != nil {
				return nil, err
			}
			l, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			label, err := r.bytes(l)
			if err != nil {
				return nil, err
			}
			eff.NewNodes[j] = graph.ShardNewNode{ID: graph.NodeID(id), Label: string(label)}
		}
		nOps, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nOps > uint64(len(r.buf)) {
			return nil, fmt.Errorf("%w: implausible op count %d", ErrProtocol, nOps)
		}
		eff.Ops = make([]graph.ShardOp, nOps)
		for j := range eff.Ops {
			opb, err := r.byte()
			if err != nil {
				return nil, err
			}
			from, err := r.varint()
			if err != nil {
				return nil, err
			}
			to, err := r.varint()
			if err != nil {
				return nil, err
			}
			op := graph.Insert
			if opb == 1 {
				op = graph.Delete
			} else if opb != 0 {
				return nil, fmt.Errorf("%w: unknown op byte %d", ErrProtocol, opb)
			}
			eff.Ops[j] = graph.ShardOp{Op: op, From: graph.NodeID(from), To: graph.NodeID(to)}
		}
		out[i] = eff
	}
	return out, r.done()
}

// encodeDeltas builds the apply response: per-shard edge-count deltas in
// request order.
func encodeDeltas(shards []int, deltas []int) []byte {
	buf := []byte{byte(msgOK)}
	buf = binary.AppendUvarint(buf, uint64(len(shards)))
	for i, s := range shards {
		buf = binary.AppendUvarint(buf, uint64(s))
		buf = binary.AppendVarint(buf, int64(deltas[i]))
	}
	return buf
}

func decodeDeltas(r *reader) (map[int]int, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > graph.MaxShards {
		return nil, fmt.Errorf("%w: %d delta entries", ErrProtocol, n)
	}
	out := make(map[int]int, n)
	for i := uint64(0); i < n; i++ {
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		d, err := r.varint()
		if err != nil {
			return nil, err
		}
		out[int(s)] = int(d)
	}
	return out, r.done()
}

// WorkerStat is one worker's self-report: owned shards with node counts
// plus lifetime counters.
type WorkerStat struct {
	// Shards maps owned shard index to its node count.
	Shards map[int]int
	// Applied counts phase-1 batch applications since start.
	Applied uint64
	// Errors counts requests the worker rejected since start.
	Errors uint64
}

func encodeStat(st WorkerStat) []byte {
	buf := []byte{byte(msgOK)}
	buf = binary.AppendUvarint(buf, uint64(len(st.Shards)))
	// Deterministic order keeps responses reproducible for tests.
	keys := make([]int, 0, len(st.Shards))
	for s := range st.Shards {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	for _, s := range keys {
		buf = binary.AppendUvarint(buf, uint64(s))
		buf = binary.AppendUvarint(buf, uint64(st.Shards[s]))
	}
	buf = binary.AppendUvarint(buf, st.Applied)
	buf = binary.AppendUvarint(buf, st.Errors)
	return buf
}

func decodeStat(r *reader) (WorkerStat, error) {
	st := WorkerStat{Shards: map[int]int{}}
	n, err := r.uvarint()
	if err != nil {
		return st, err
	}
	if n > graph.MaxShards {
		return st, fmt.Errorf("%w: %d stat entries", ErrProtocol, n)
	}
	for i := uint64(0); i < n; i++ {
		s, err := r.uvarint()
		if err != nil {
			return st, err
		}
		c, err := r.uvarint()
		if err != nil {
			return st, err
		}
		st.Shards[int(s)] = int(c)
	}
	if st.Applied, err = r.uvarint(); err != nil {
		return st, err
	}
	if st.Errors, err = r.uvarint(); err != nil {
		return st, err
	}
	return st, r.done()
}
