package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"incgraph/internal/graph"
)

// Wire messages. Every frame payload is one message: a type byte followed
// by a type-specific body (little-endian fixed ints, varints for counts
// and IDs — the same conventions as the WAL and snapshot codecs). The
// protocol is strict request/response: the coordinator sends one request
// per connection at a time and the worker answers with msgOK (body per
// request type) or msgErr (UTF-8 error text).
//
// Labels travel as an incrementally shipped session table: LabelIDs are
// process-local but dense and append-only (graph.InternedLabels), so each
// apply request carries only the label strings interned since the last
// request on the session, and node labels in effects are uvarint
// references into the coordinator's table. The worker keeps the
// coordinator-ID → local-ID translation per connection, reset at hello.
// This removes the per-node label strings (and the worker-side intern
// locks) from the hot apply path.

// protocolVersion guards the wire format; hello rejects mismatches.
// Version 2 added coordinator terms (fencing), per-shard WAL replication
// and the standby tail stream. Version 3 made apply a group request
// (several shard-disjoint batches per frame, each acked independently)
// with session-interned label references instead of per-node strings.
const protocolVersion = 3

type msgType byte

const (
	// msgHello opens a session: u32 version, u32 shard count P. The worker
	// adopts P (fresh container graph if it had none or a different P) and
	// answers with its currently owned shards.
	msgHello msgType = iota + 1
	// msgPlace installs an authoritative shard replica: uvarint shard,
	// then a store.EncodeShardParcel body. Replaces any existing copy.
	msgPlace
	// msgDrop removes a shard replica: uvarint shard.
	msgDrop
	// msgApply runs phase 1 for a group of shard-disjoint planned batches:
	// a label-table delta (chained per session), then each batch's
	// ShardEffects. The worker answers with a per-batch status — edge
	// deltas on success, an error text on divergence — so one failed batch
	// does not poison the others in its frame.
	msgApply
	// msgExport returns the parcel of an owned shard: uvarint shard.
	msgExport
	// msgStat reports owned shards with node counts and counters.
	msgStat
	// msgOK acknowledges a request; body depends on the request type.
	msgOK
	// msgErr reports a request-level failure; body is the error text. The
	// connection remains usable.
	msgErr
	// msgReplicate ships one committed WAL record to the shards this worker
	// owns: per-shard prevSeq chain links, the post-commit generation, and
	// the record payload. The worker appends to each shard's replica log
	// and answers with per-shard ok/gap statuses.
	msgReplicate
	// msgReplState reports per-shard replication state: last replicated
	// sequence and proven generation for every shard with a replica log.
	msgReplState
	// msgTail opens a standby feed on a coordinator hub: the response
	// carries term, sequence, generation and a full snapshot, after which
	// the connection role-flips — the hub pushes msgFeed/msgPing requests
	// and the standby acks each.
	msgTail
	// msgFeed pushes one committed record (post-commit generation + record
	// payload) down a tail stream.
	msgFeed
	// msgPing is the hub's lease heartbeat on a tail stream: u64 term.
	msgPing
	// msgScrub asks a worker to verify the on-disk integrity of a shard's
	// replica log: uvarint shard. The response is msgOK + status byte (0
	// intact, 1 damaged) + optional damage description. Additive: an older
	// worker answers msgErr, which the scrubber treats as unverifiable.
	msgScrub
)

// ErrProtocol reports a semantically malformed message: unknown type,
// truncated body, value out of range.
var ErrProtocol = errors.New("cluster: protocol error")

// remoteError wraps an msgErr body so callers can distinguish "the worker
// said no" (state divergence, bad request) from transport failure.
type remoteError string

func (e remoteError) Error() string { return "cluster: remote: " + string(e) }

// ErrFenced matches (errors.Is) worker refusals caused by fencing: the
// session's term was superseded by a newer coordinator. A fenced commit
// failed before any worker applied anything; serving layers surface it
// as "this node was deposed", not as a batch error.
var ErrFenced = errors.New("cluster: fenced")

// Is lets errors.Is(err, ErrFenced) see through the remote wrapper: the
// worker's fencing refusals all carry the "fenced:" prefix.
func (e remoteError) Is(target error) bool {
	return target == ErrFenced && strings.HasPrefix(string(e), "fenced:")
}

// IsRemote reports whether err is a worker-reported error rather than a
// transport or framing failure.
func IsRemote(err error) bool {
	var re remoteError
	return errors.As(err, &re)
}

// ---- body codecs -------------------------------------------------------

// reader walks a message body with truncation-checked reads.
type reader struct {
	buf []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated at %d", ErrProtocol, r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated at %d", ErrProtocol, r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("%w: truncated at %d", ErrProtocol, r.off)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.buf)-r.off) {
		return nil, fmt.Errorf("%w: truncated at %d", ErrProtocol, r.off)
	}
	out := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return out, nil
}

func (r *reader) rest() []byte { return r.buf[r.off:] }

func (r *reader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrProtocol, len(r.buf)-r.off)
	}
	return nil
}

// encodeHello builds the hello request body. term is the coordinator's
// fencing term: workers remember the highest term they have seen and
// reject sessions (and the mutating requests of already-open sessions)
// below it.
func encodeHello(shards int, term uint64) []byte {
	buf := []byte{byte(msgHello)}
	buf = binary.LittleEndian.AppendUint32(buf, protocolVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(shards))
	buf = binary.LittleEndian.AppendUint64(buf, term)
	return buf
}

// decodeHello parses a hello body (type byte already consumed). The body
// past the version field is version-specific (v2 added the term), so an
// unsupported version returns with only version populated and no error —
// the caller rejects on version with a proper "not supported" message
// instead of a confusing short-read/trailing-bytes protocol error.
func decodeHello(r *reader) (version, shards uint32, term uint64, err error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, 0, 0, err
	}
	version = binary.LittleEndian.Uint32(b)
	if version != protocolVersion {
		return version, 0, 0, nil
	}
	b, err = r.bytes(12)
	if err != nil {
		return version, 0, 0, err
	}
	return version, binary.LittleEndian.Uint32(b),
		binary.LittleEndian.Uint64(b[4:]), r.done()
}

// encodeShardList is the hello/stat-style "uvarint count + shards" body.
func encodeShardList(buf []byte, shards []int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(shards)))
	for _, s := range shards {
		buf = binary.AppendUvarint(buf, uint64(s))
	}
	return buf
}

func decodeShardList(r *reader) ([]int, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf)) {
		return nil, fmt.Errorf("%w: implausible shard count %d", ErrProtocol, n)
	}
	out := make([]int, n)
	for i := range out {
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		out[i] = int(s)
	}
	return out, nil
}

// ---- apply codecs (protocol v3) ----------------------------------------
//
// An apply request is a GROUP: a label-table delta for the session
// followed by one or more shard-disjoint batches. The coordinator encodes
// each batch's effects straight off the validated graph.Plan into a
// pooled buffer with the frame header reserved up front, so the hot path
// allocates nothing and the frame leaves in a single write.
//
//	request:  byte msgApply
//	          uvarint labelBase (labels already shipped on this session)
//	          uvarint nLabels, then per label: uvarint len + bytes
//	          uvarint nBatches, then per batch:
//	            uvarint nShards, per shard:
//	              uvarint shard
//	              uvarint nNew, per node: varint id, uvarint labelRef
//	              uvarint nOps, per op: byte op, varint from, varint to
//	response: byte msgOK
//	          uvarint nBatches, then per batch:
//	            byte status (0 ok, 1 failed)
//	            ok:     uvarint nShards, per shard: uvarint shard, varint delta
//	            failed: uvarint len + error text

// applyStatus bytes in a group response.
const (
	applyOK     byte = 0
	applyFailed byte = 1
)

// appendApplyHeader starts an apply request body in buf: the type byte
// and the label-table delta [base, cur) of the process intern table.
func appendApplyHeader(buf []byte, base, cur int) []byte {
	buf = append(buf, byte(msgApply))
	buf = binary.AppendUvarint(buf, uint64(base))
	buf = binary.AppendUvarint(buf, uint64(cur-base))
	for id := base; id < cur; id++ {
		label := graph.LabelOf(graph.LabelID(id))
		buf = binary.AppendUvarint(buf, uint64(len(label)))
		buf = append(buf, label...)
	}
	return buf
}

// appendApplyBatch appends one batch's effects for the given shards,
// iterating the plan directly — no intermediate ShardEffects slices.
func appendApplyBatch(buf []byte, plan *graph.Plan, shards []int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(shards)))
	for _, si := range shards {
		buf = binary.AppendUvarint(buf, uint64(si))
		buf = binary.AppendUvarint(buf, uint64(plan.NumNewNodes(si)))
		plan.NewNodes(si, func(id graph.NodeID, lid graph.LabelID) {
			buf = binary.AppendVarint(buf, int64(id))
			buf = binary.AppendUvarint(buf, uint64(lid))
		})
		buf = binary.AppendUvarint(buf, uint64(plan.NumOps(si)))
		plan.Ops(si, func(op graph.Op, from, to graph.NodeID) {
			if op == graph.Insert {
				buf = append(buf, 0)
			} else {
				buf = append(buf, 1)
			}
			buf = binary.AppendVarint(buf, int64(from))
			buf = binary.AppendVarint(buf, int64(to))
		})
	}
	return buf
}

// decodeApplyLabels consumes the label-table delta at the head of an
// apply body, extending the session's coordinator-ID → local-ID
// translation. The base must chain exactly onto what the session has
// already translated; a mismatch means the peers disagree about session
// state and the request is rejected before any effect applies.
func decodeApplyLabels(r *reader, coordLabels []graph.LabelID) ([]graph.LabelID, error) {
	base, err := r.uvarint()
	if err != nil {
		return coordLabels, err
	}
	if base != uint64(len(coordLabels)) {
		return coordLabels, fmt.Errorf("%w: label chain base %d, session has %d", ErrProtocol, base, len(coordLabels))
	}
	n, err := r.uvarint()
	if err != nil {
		return coordLabels, err
	}
	if n > uint64(len(r.buf)) {
		return coordLabels, fmt.Errorf("%w: implausible label count %d", ErrProtocol, n)
	}
	for i := uint64(0); i < n; i++ {
		l, err := r.uvarint()
		if err != nil {
			return coordLabels, err
		}
		label, err := r.bytes(l)
		if err != nil {
			return coordLabels, err
		}
		coordLabels = append(coordLabels, graph.InternLabel(string(label)))
	}
	return coordLabels, nil
}

// decodeApplyBatch parses one batch of a group into the session's scratch
// slices (reused across batches and requests), translating label
// references through coordLabels. The returned effects alias the scratch;
// they are valid until the next call.
func decodeApplyBatch(r *reader, sess *applySession) ([]graph.ShardEffects, error) {
	nShards, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nShards > graph.MaxShards {
		return nil, fmt.Errorf("%w: apply names %d shards", ErrProtocol, nShards)
	}
	sess.effs = sess.effs[:0]
	sess.nodes = sess.nodes[:0]
	sess.ops = sess.ops[:0]
	for i := uint64(0); i < nShards; i++ {
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		eff := graph.ShardEffects{Shard: int(s)}
		nNew, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nNew > uint64(len(r.buf)) {
			return nil, fmt.Errorf("%w: implausible node count %d", ErrProtocol, nNew)
		}
		nodeLo := len(sess.nodes)
		for j := uint64(0); j < nNew; j++ {
			id, err := r.varint()
			if err != nil {
				return nil, err
			}
			ref, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if ref >= uint64(len(sess.coordLabels)) {
				return nil, fmt.Errorf("%w: label ref %d past session table (%d)", ErrProtocol, ref, len(sess.coordLabels))
			}
			sess.nodes = append(sess.nodes, graph.ShardNewNode{ID: graph.NodeID(id), Label: sess.coordLabels[ref]})
		}
		eff.NewNodes = sess.nodes[nodeLo:]
		nOps, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nOps > uint64(len(r.buf)) {
			return nil, fmt.Errorf("%w: implausible op count %d", ErrProtocol, nOps)
		}
		opLo := len(sess.ops)
		for j := uint64(0); j < nOps; j++ {
			opb, err := r.byte()
			if err != nil {
				return nil, err
			}
			from, err := r.varint()
			if err != nil {
				return nil, err
			}
			to, err := r.varint()
			if err != nil {
				return nil, err
			}
			op := graph.Insert
			if opb == 1 {
				op = graph.Delete
			} else if opb != 0 {
				return nil, fmt.Errorf("%w: unknown op byte %d", ErrProtocol, opb)
			}
			sess.ops = append(sess.ops, graph.ShardOp{Op: op, From: graph.NodeID(from), To: graph.NodeID(to)})
		}
		eff.Ops = sess.ops[opLo:]
		sess.effs = append(sess.effs, eff)
	}
	return sess.effs, nil
}

// shardDelta is one shard's phase-1 edge-count report.
type shardDelta struct {
	shard int
	delta int
}

// appendBatchDeltas appends one batch's ok status and per-shard deltas to
// a group response body.
func appendBatchDeltas(buf []byte, effs []graph.ShardEffects, deltas []int) []byte {
	buf = append(buf, applyOK)
	buf = binary.AppendUvarint(buf, uint64(len(effs)))
	for i, e := range effs {
		buf = binary.AppendUvarint(buf, uint64(e.Shard))
		buf = binary.AppendVarint(buf, int64(deltas[i]))
	}
	return buf
}

// appendBatchError appends one batch's failure status and error text.
func appendBatchError(buf []byte, err error) []byte {
	buf = append(buf, applyFailed)
	text := err.Error()
	buf = binary.AppendUvarint(buf, uint64(len(text)))
	return append(buf, text...)
}

// decodeBatchResult parses one batch's slot of a group response into out
// (reused capacity). A failed batch returns a remoteError.
func decodeBatchResult(r *reader, out []shardDelta) ([]shardDelta, error) {
	status, err := r.byte()
	if err != nil {
		return nil, err
	}
	if status == applyFailed {
		l, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		text, err := r.bytes(l)
		if err != nil {
			return nil, err
		}
		return nil, remoteError(text)
	}
	if status != applyOK {
		return nil, fmt.Errorf("%w: unknown batch status %d", ErrProtocol, status)
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > graph.MaxShards {
		return nil, fmt.Errorf("%w: %d delta entries", ErrProtocol, n)
	}
	out = out[:0]
	for i := uint64(0); i < n; i++ {
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		d, err := r.varint()
		if err != nil {
			return nil, err
		}
		out = append(out, shardDelta{shard: int(s), delta: int(d)})
	}
	return out, nil
}

// WorkerStat is one worker's self-report: owned shards with node counts
// plus lifetime counters.
type WorkerStat struct {
	// Shards maps owned shard index to its node count.
	Shards map[int]int
	// Applied counts phase-1 batch applications since start.
	Applied uint64
	// Errors counts requests the worker rejected since start.
	Errors uint64
	// Replicated counts WAL records appended to replica logs since start.
	Replicated uint64
	// ReplGaps counts replica-log gap detections since start (each one
	// forced a parcel resync).
	ReplGaps uint64
	// Term is the highest coordinator fencing term the worker has seen.
	Term uint64
}

func encodeStat(st WorkerStat) []byte {
	buf := []byte{byte(msgOK)}
	buf = binary.AppendUvarint(buf, uint64(len(st.Shards)))
	// Deterministic order keeps responses reproducible for tests.
	keys := make([]int, 0, len(st.Shards))
	for s := range st.Shards {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	for _, s := range keys {
		buf = binary.AppendUvarint(buf, uint64(s))
		buf = binary.AppendUvarint(buf, uint64(st.Shards[s]))
	}
	buf = binary.AppendUvarint(buf, st.Applied)
	buf = binary.AppendUvarint(buf, st.Errors)
	buf = binary.AppendUvarint(buf, st.Replicated)
	buf = binary.AppendUvarint(buf, st.ReplGaps)
	buf = binary.AppendUvarint(buf, st.Term)
	return buf
}

func decodeStat(r *reader) (WorkerStat, error) {
	st := WorkerStat{Shards: map[int]int{}}
	n, err := r.uvarint()
	if err != nil {
		return st, err
	}
	if n > graph.MaxShards {
		return st, fmt.Errorf("%w: %d stat entries", ErrProtocol, n)
	}
	for i := uint64(0); i < n; i++ {
		s, err := r.uvarint()
		if err != nil {
			return st, err
		}
		c, err := r.uvarint()
		if err != nil {
			return st, err
		}
		st.Shards[int(s)] = int(c)
	}
	if st.Applied, err = r.uvarint(); err != nil {
		return st, err
	}
	if st.Errors, err = r.uvarint(); err != nil {
		return st, err
	}
	if st.Replicated, err = r.uvarint(); err != nil {
		return st, err
	}
	if st.ReplGaps, err = r.uvarint(); err != nil {
		return st, err
	}
	if st.Term, err = r.uvarint(); err != nil {
		return st, err
	}
	return st, r.done()
}

// ---- replication codecs ------------------------------------------------

// replEntry is one shard's chain link in a replicate request: the
// sequence of the previous committed record that touched the shard.
type replEntry struct {
	shard   int
	prevSeq uint64
}

// Per-shard replicate ack statuses.
const (
	replOK  byte = 0 // appended
	replGap byte = 1 // chain broken: shard needs a parcel resync
)

// encodeReplicate builds the replicate request: the post-commit
// generation, the per-shard chain links, and the raw record payload
// (store.EncodeRecord bytes carrying seq, gen-at-append, batch).
func encodeReplicate(entries []replEntry, postGen uint64, record []byte) []byte {
	buf := []byte{byte(msgReplicate)}
	buf = binary.LittleEndian.AppendUint64(buf, postGen)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, uint64(e.shard))
		buf = binary.AppendUvarint(buf, e.prevSeq)
	}
	return append(buf, record...)
}

func decodeReplicate(r *reader) (entries []replEntry, postGen uint64, record []byte, err error) {
	b, err := r.bytes(8)
	if err != nil {
		return nil, 0, nil, err
	}
	postGen = binary.LittleEndian.Uint64(b)
	n, err := r.uvarint()
	if err != nil {
		return nil, 0, nil, err
	}
	if n > graph.MaxShards {
		return nil, 0, nil, fmt.Errorf("%w: replicate names %d shards", ErrProtocol, n)
	}
	entries = make([]replEntry, n)
	for i := range entries {
		s, err := r.uvarint()
		if err != nil {
			return nil, 0, nil, err
		}
		prev, err := r.uvarint()
		if err != nil {
			return nil, 0, nil, err
		}
		entries[i] = replEntry{shard: int(s), prevSeq: prev}
	}
	return entries, postGen, r.rest(), nil
}

// encodeReplAck builds the replicate response: per-shard statuses in
// request order.
func encodeReplAck(entries []replEntry, statuses []byte) []byte {
	buf := []byte{byte(msgOK)}
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for i, e := range entries {
		buf = binary.AppendUvarint(buf, uint64(e.shard))
		buf = append(buf, statuses[i])
	}
	return buf
}

func decodeReplAck(r *reader) (map[int]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > graph.MaxShards {
		return nil, fmt.Errorf("%w: %d ack entries", ErrProtocol, n)
	}
	out := make(map[int]byte, n)
	for i := uint64(0); i < n; i++ {
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		st, err := r.byte()
		if err != nil {
			return nil, err
		}
		out[int(s)] = st
	}
	return out, r.done()
}

// ReplState is one shard's replication state on a worker: the last
// replicated sequence and the generation that sequence proved.
type ReplState struct {
	LastSeq uint64
	Gen     uint64
}

func encodeReplStates(states map[int]ReplState) []byte {
	buf := []byte{byte(msgOK)}
	buf = binary.AppendUvarint(buf, uint64(len(states)))
	keys := make([]int, 0, len(states))
	for s := range states {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	for _, s := range keys {
		buf = binary.AppendUvarint(buf, uint64(s))
		buf = binary.AppendUvarint(buf, states[s].LastSeq)
		buf = binary.AppendUvarint(buf, states[s].Gen)
	}
	return buf
}

func decodeReplStates(r *reader) (map[int]ReplState, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > graph.MaxShards {
		return nil, fmt.Errorf("%w: %d repl-state entries", ErrProtocol, n)
	}
	out := make(map[int]ReplState, n)
	for i := uint64(0); i < n; i++ {
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		seq, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		gen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		out[int(s)] = ReplState{LastSeq: seq, Gen: gen}
	}
	return out, r.done()
}

// ---- standby tail codecs -----------------------------------------------

// encodeTailReq opens a standby feed.
func encodeTailReq() []byte {
	buf := []byte{byte(msgTail)}
	buf = binary.LittleEndian.AppendUint32(buf, protocolVersion)
	return buf
}

func decodeTailReq(r *reader) (version uint32, err error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), r.done()
}

// encodeTailResp answers a tail request: the hub's term, last committed
// sequence and generation, and a full snapshot of the primary's graph.
func encodeTailResp(term, seq, gen uint64, snapshot []byte) []byte {
	buf := []byte{byte(msgOK)}
	buf = binary.LittleEndian.AppendUint64(buf, term)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	return append(buf, snapshot...)
}

func decodeTailResp(r *reader) (term, seq, gen uint64, snapshot []byte, err error) {
	b, err := r.bytes(24)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	return binary.LittleEndian.Uint64(b), binary.LittleEndian.Uint64(b[8:]),
		binary.LittleEndian.Uint64(b[16:]), r.rest(), nil
}

// encodeFeed pushes one committed record down a tail stream: post-commit
// generation plus the record payload.
func encodeFeed(postGen uint64, record []byte) []byte {
	buf := []byte{byte(msgFeed)}
	buf = binary.LittleEndian.AppendUint64(buf, postGen)
	return append(buf, record...)
}

func decodeFeed(r *reader) (postGen uint64, record []byte, err error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, nil, err
	}
	return binary.LittleEndian.Uint64(b), r.rest(), nil
}

// encodePing is the hub's lease heartbeat.
func encodePing(term uint64) []byte {
	buf := []byte{byte(msgPing)}
	return binary.LittleEndian.AppendUint64(buf, term)
}

func decodePing(r *reader) (term uint64, err error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), r.done()
}
