package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"incgraph/internal/graph"
	"incgraph/internal/store"
)

// Standby failover. A Hub runs next to the primary coordinator and feeds
// committed records to standby processes over the same framed transport
// the workers speak, with the request/response roles flipped after the
// handshake: the standby connects and sends one msgTail, the hub answers
// with (term, seq, gen, full snapshot), and from then on the hub is the
// requester — it pushes msgFeed records and msgPing heartbeats, the
// standby acks each. The heartbeats double as the primary's lease: a
// standby that has not heard one within its TTL concludes the primary is
// gone and returns from Run with ErrLeaseExpired, at which point its
// owner promotes — builds a coordinator over the same workers at term+1,
// which re-places every shard (healing workers a dead coordinator left
// ahead of its last commit) and fences the deposed coordinator's
// sessions.
//
// The hub and standby exchange state, not behavior: what "load a
// snapshot" and "apply a record" mean is the owner's business (incgraphd
// wires them to its Durable), so both sides are callback-driven and this
// package stays import-cycle-free.

// ErrLeaseExpired reports a standby that outlived its primary's lease:
// no heartbeat or record arrived within the TTL.
var ErrLeaseExpired = errors.New("cluster: primary lease expired")

// HubOptions configures a primary-side feed hub.
type HubOptions struct {
	// Term is the primary's fencing term, echoed to standbys.
	Term uint64
	// Snapshot captures the primary's current durable state: the last
	// committed replication sequence, the generation, and snapshot bytes.
	// It must be consistent — callers serialize it with their apply path.
	Snapshot func() (seq, gen uint64, snap []byte, err error)
	// Heartbeat is the ping interval (default 500ms). The standby's TTL
	// should be a small multiple of it.
	Heartbeat time.Duration
}

// Hub fans committed records out to attached standbys. Register Feed as
// the coordinator's OnCommit hook (or call it from any serialized commit
// path).
type Hub struct {
	opts HubOptions

	mu    sync.Mutex
	conns map[*hubConn]struct{}
}

// feedQueueCap bounds how many unacked pushes a standby may fall behind
// before the hub drops it (it reconnects and re-handshakes from a fresh
// snapshot). The cap is what keeps Feed non-blocking on the commit path.
const feedQueueCap = 128

// pushTimeout bounds one push round trip (write + standby ack) on the
// sender goroutine, scaled by frame size like every link deadline.
const pushTimeout = 10 * time.Second

type hubConn struct {
	conn net.Conn
	// queue carries encoded push frames (feeds from Feed, pings from the
	// heartbeat loop) to the sender goroutine, which performs one acked
	// round trip per frame. The channel preserves enqueue order, and the
	// sender starts only after the handshake response is on the wire — so
	// pushes are totally ordered per connection, strictly after the
	// handshake, with a single writer on the socket.
	queue chan []byte

	mu   sync.Mutex
	dead bool
	err  error
}

// enqueue hands one push frame to the sender. It never blocks: a full
// queue means the standby is feedQueueCap acks behind, and it is dropped
// rather than allowed to stall the caller (Feed runs on the commit path).
func (hc *hubConn) enqueue(req []byte) bool {
	hc.mu.Lock()
	if hc.dead {
		hc.mu.Unlock()
		return false
	}
	select {
	case hc.queue <- req:
		hc.mu.Unlock()
		return true
	default:
		hc.dead = true
		hc.err = fmt.Errorf("cluster: standby fell %d pushes behind", feedQueueCap)
		hc.mu.Unlock()
		hc.conn.Close() // interrupts the sender's in-flight round trip
		return false
	}
}

// fail marks the connection dead (keeping the first error) and closes it.
func (hc *hubConn) fail(err error) {
	hc.mu.Lock()
	if !hc.dead {
		hc.dead = true
		hc.err = err
	}
	hc.mu.Unlock()
	hc.conn.Close()
}

// failure returns the error that killed the connection.
func (hc *hubConn) failure() error {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return hc.err
}

// sender drains the queue: one round trip per frame, acked by the standby
// before the next is written. Any failure — transport or a standby-
// reported apply error — kills the connection; the standby reconnects and
// re-handshakes from a fresh snapshot.
func (hc *hubConn) sender() {
	for req := range hc.queue {
		hc.conn.SetDeadline(time.Now().Add(pushTimeout + time.Duration(len(req)>>20)*time.Second))
		_, err := roundTrip(hc.conn, req)
		hc.conn.SetDeadline(time.Time{})
		if err != nil {
			hc.fail(err)
			return
		}
	}
}

// NewHub returns a hub ready to accept standby connections.
func NewHub(opts HubOptions) *Hub {
	return &Hub{opts: opts, conns: make(map[*hubConn]struct{})}
}

func (h *Hub) heartbeat() time.Duration {
	if h.opts.Heartbeat > 0 {
		return h.opts.Heartbeat
	}
	return 500 * time.Millisecond
}

// Standbys returns the number of attached standby connections.
func (h *Hub) Standbys() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.conns)
}

// ServeConn answers one standby connection: the msgTail handshake, then
// heartbeats until the connection dies or the hub's owner closes it.
// Feeds ride in from Feed on the caller's commit path.
func (h *Hub) ServeConn(conn net.Conn) error {
	// Handshake: one ordinary request/response, small frame cap until the
	// peer proves it speaks the protocol.
	payload, err := readFrame(conn, preHelloMaxFrame)
	if err != nil {
		return err
	}
	if len(payload) == 0 || msgType(payload[0]) != msgTail {
		return fmt.Errorf("%w: expected tail request", ErrProtocol)
	}
	version, err := decodeTailReq(&reader{buf: payload, off: 1})
	if err != nil {
		return err
	}
	if version != protocolVersion {
		err := fmt.Errorf("protocol version %d not supported (have %d)", version, protocolVersion)
		writeFrame(conn, append([]byte{byte(msgErr)}, err.Error()...))
		return err
	}
	// The snapshot and the registration are atomic against Feed's target
	// collection (both under h.mu), so no committed record can fall
	// between the snapshot and the feed stream. A record can be covered
	// by BOTH — snapshotted and then fed — which the standby's seq skip
	// makes harmless.
	h.mu.Lock()
	seq, gen, snap, err := h.opts.Snapshot()
	if err != nil {
		h.mu.Unlock()
		writeFrame(conn, append([]byte{byte(msgErr)}, err.Error()...))
		return err
	}
	hc := &hubConn{conn: conn, queue: make(chan []byte, feedQueueCap)}
	h.conns[hc] = struct{}{}
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		delete(h.conns, hc)
		h.mu.Unlock()
		hc.fail(net.ErrClosed)
	}()
	// Commits landing from here on queue behind the sender, which starts
	// only after the handshake response is written — so the standby's
	// first frame is always the tail response, never an early feed, and
	// the socket has exactly one writer at any time.
	if err := writeFrame(conn, encodeTailResp(h.opts.Term, seq, gen, snap)); err != nil {
		return err
	}
	go hc.sender()
	// Role flip: this goroutine now only heartbeats; Feed enqueues records
	// from the commit path. The sender serializes both onto the wire.
	tick := time.NewTicker(h.heartbeat())
	defer tick.Stop()
	ping := encodePing(h.opts.Term)
	for range tick.C {
		if !hc.enqueue(ping) {
			return hc.failure()
		}
	}
	return nil
}

// Feed pushes one committed record to every attached standby. Wire it as
// CoordinatorOptions.OnCommit; it must be called in commit order (the
// coordinator's hook is). Feed never blocks on a standby — it enqueues to
// each connection's sender, and a standby that is feedQueueCap acks
// behind (or fails an ack) is dropped: it will reconnect and re-handshake
// from a fresh snapshot.
func (h *Hub) Feed(seq, preGen, postGen uint64, b graph.Batch) {
	h.mu.Lock()
	targets := make([]*hubConn, 0, len(h.conns))
	for hc := range h.conns {
		targets = append(targets, hc)
	}
	h.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	payload, err := store.EncodeRecord(seq, preGen, b)
	if err != nil {
		return
	}
	req := encodeFeed(postGen, payload)
	for _, hc := range targets {
		hc.enqueue(req)
	}
}

// Close drops every attached standby connection.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for hc := range h.conns {
		hc.conn.Close()
	}
}

// StandbyOptions configures a standby tail.
type StandbyOptions struct {
	// Load installs the handshake snapshot: term is the primary's fencing
	// term, seq/gen the replication position the snapshot embodies.
	Load func(term, seq, gen uint64, snapshot []byte) error
	// Apply applies one fed record (already past Load's position). It
	// runs in feed order; an error tears the tail down (the standby's
	// state can no longer track the primary).
	Apply func(seq, postGen uint64, b graph.Batch) error
	// TTL is the primary lease: Run returns ErrLeaseExpired when neither
	// a record nor a heartbeat arrives within it (default 2s; use a small
	// multiple of the hub's Heartbeat).
	TTL time.Duration
}

// Standby tails a hub. Run blocks until the lease expires or the
// connection fails; LastSeq/Gen/Term expose the tracked position for the
// owner's promotion decision.
type Standby struct {
	opts StandbyOptions

	mu   sync.Mutex
	term uint64
	// base is the handshake snapshot's position; fed records at or below
	// it are duplicates of snapshotted state. seq is the highest position
	// applied (the hub feeds in commit order, but the guard stays
	// monotonic rather than strict for robustness).
	base uint64
	seq  uint64
	gen  uint64
}

// NewStandby returns a standby with the given callbacks.
func NewStandby(opts StandbyOptions) *Standby {
	return &Standby{opts: opts}
}

func (s *Standby) ttl() time.Duration {
	if s.opts.TTL > 0 {
		return s.opts.TTL
	}
	return 2 * time.Second
}

// Term returns the primary term the standby last saw.
func (s *Standby) Term() uint64 { s.mu.Lock(); defer s.mu.Unlock(); return s.term }

// LastSeq returns the last applied replication sequence.
func (s *Standby) LastSeq() uint64 { s.mu.Lock(); defer s.mu.Unlock(); return s.seq }

// Gen returns the generation the standby has proven current through.
func (s *Standby) Gen() uint64 { s.mu.Lock(); defer s.mu.Unlock(); return s.gen }

// Run performs the tail handshake on conn and then serves the hub's
// pushes until the connection dies or the lease expires. It returns
// ErrLeaseExpired on a silent primary, io.EOF-wrapped transport errors on
// a dead one — either way the standby's state is current through LastSeq
// and the owner may promote.
func (s *Standby) Run(conn net.Conn) error {
	conn.SetDeadline(time.Now().Add(rpcTimeout))
	if err := writeFrame(conn, encodeTailReq()); err != nil {
		return err
	}
	payload, err := readFrame(conn, maxFrame)
	if err != nil {
		return err
	}
	if len(payload) == 0 {
		return fmt.Errorf("%w: empty tail response", ErrProtocol)
	}
	if msgType(payload[0]) == msgErr {
		return remoteError(payload[1:])
	}
	if msgType(payload[0]) != msgOK {
		return fmt.Errorf("%w: unexpected tail response type %d", ErrProtocol, payload[0])
	}
	term, seq, gen, snap, err := decodeTailResp(&reader{buf: payload, off: 1})
	if err != nil {
		return err
	}
	if err := s.opts.Load(term, seq, gen, snap); err != nil {
		return err
	}
	s.mu.Lock()
	s.term, s.base, s.seq, s.gen = term, seq, seq, gen
	s.mu.Unlock()
	// Role flip: the hub pushes, we ack. The read deadline is the lease.
	for {
		conn.SetDeadline(time.Now().Add(s.ttl()))
		payload, err := readFrame(conn, maxFrame)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return ErrLeaseExpired
			}
			if err == io.EOF {
				return fmt.Errorf("cluster: tail: %w", io.ErrUnexpectedEOF)
			}
			return err
		}
		if len(payload) == 0 {
			return fmt.Errorf("%w: empty push", ErrProtocol)
		}
		switch msgType(payload[0]) {
		case msgPing:
			if _, err := decodePing(&reader{buf: payload, off: 1}); err != nil {
				return err
			}
			if err := writeFrame(conn, []byte{byte(msgOK)}); err != nil {
				return err
			}
		case msgFeed:
			postGen, recPayload, err := decodeFeed(&reader{buf: payload, off: 1})
			if err != nil {
				return err
			}
			rec, err := store.DecodeRecord(recPayload)
			if err != nil {
				return err
			}
			// Records at or below the handshake position are already in
			// the loaded snapshot (the hub's cut may cover a record both
			// ways); ack and move on.
			s.mu.Lock()
			base := s.base
			s.mu.Unlock()
			if rec.Seq <= base {
				if err := writeFrame(conn, []byte{byte(msgOK)}); err != nil {
					return err
				}
				continue
			}
			if err := s.opts.Apply(rec.Seq, postGen, rec.Batch); err != nil {
				// Ack the failure so the hub drops us cleanly, then stop:
				// our state no longer tracks the primary.
				writeFrame(conn, append([]byte{byte(msgErr)}, err.Error()...))
				return err
			}
			s.mu.Lock()
			if rec.Seq > s.seq {
				s.seq, s.gen = rec.Seq, postGen
			}
			s.mu.Unlock()
			if err := writeFrame(conn, []byte{byte(msgOK)}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unexpected push type %d", ErrProtocol, payload[0])
		}
	}
}
