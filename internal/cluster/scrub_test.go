package cluster

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/store"
)

// scrubWorkload drives a few committed batches through the coordinator so
// every worker holds real replicated state worth corrupting.
func scrubWorkload(t *testing.T, co *Coordinator, g *graph.Graph, batches int) {
	t.Helper()
	scratch := g.Clone()
	for i := 0; i < batches; i++ {
		b := gen.Updates(scratch, gen.UpdateSpec{Count: 40, InsertRatio: 0.6, Locality: 0.5, Seed: int64(500 + i)})
		if err := scratch.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		if err := co.Apply(b, commitLocal(g)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
}

// corruptWorkerShard silently diverges one shard replica owned by worker
// widx — the in-memory rot a sequence-gap check can never see — and
// returns the shard it touched.
func corruptWorkerShard(t *testing.T, co *Coordinator, w *Worker, widx int) int {
	t.Helper()
	co.mu.Lock()
	owned := map[int]bool{}
	for s, wi := range co.assign {
		if wi == widx {
			owned[s] = true
		}
	}
	// Build the divergent state on a full-graph clone (the worker's graph
	// is shard-partial, so mutating it directly is not a legal operation
	// even for a vandal), then swap the poisoned shard export in.
	sc := co.g.Clone()
	co.mu.Unlock()
	var victim graph.Edge
	shard := -1
	sc.Edges(func(e graph.Edge) bool {
		if s := sc.ShardOf(e.From); owned[s] {
			victim, shard = e, s
			return false
		}
		return true
	})
	if shard < 0 {
		t.Fatal("no edge found in any shard owned by the worker")
	}
	if err := sc.ApplyBatch(graph.Batch{graph.Del(victim.From, victim.To)}); err != nil {
		t.Fatal(err)
	}
	st := sc.ExportShard(shard)

	w.mu.Lock()
	defer w.mu.Unlock()
	w.g.ResetShard(shard)
	if err := w.g.LoadShard(shard, st); err != nil {
		t.Fatalf("corrupting replica: %v", err)
	}
	return shard
}

// TestScrubHealsInMemoryDivergence: a worker whose replica silently
// diverged (bit rot, a lost update — anything that preserves the
// sequence chain) is caught by the parcel-byte comparison and re-placed
// from the coordinator-authoritative segment, unattended.
func TestScrubHealsInMemoryDivergence(t *testing.T) {
	g := testGraph(t, 8)
	links, workers, stop := InProcess(2)
	defer stop()
	co, err := NewCoordinator(g, links)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	scrubWorkload(t, co, g, 4)

	corruptWorkerShard(t, co, workers[0], 0)
	if err := co.VerifyAll(); err == nil {
		t.Fatal("corruption was a no-op; the drill proves nothing")
	}

	rep, err := co.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Mismatches != 1 || rep.Heals != 1 {
		t.Fatalf("scrub report = %+v, want exactly 1 mismatch healed", rep)
	}
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("replica still divergent after heal: %v", err)
	}

	// A second pass over the healed cluster is clean, and the lifetime
	// counters carry the history.
	rep2, err := co.Scrub()
	if err != nil {
		t.Fatalf("second scrub: %v", err)
	}
	if rep2.Mismatches != 0 || rep2.Heals != 0 {
		t.Fatalf("second scrub report = %+v, want a clean pass", rep2)
	}
	stats := co.ScrubCounters()
	if stats.Passes != 2 || stats.Mismatches != 1 || stats.Heals != 1 {
		t.Fatalf("lifetime counters = %+v, want 2 passes, 1 mismatch, 1 heal", stats)
	}

	// The healed cluster still commits.
	scrubWorkload(t, co, g, 1)
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("post-heal commit diverged: %v", err)
	}
}

// TestScrubHealsBitFlippedReplicaLog is the CI drill from the issue: flip
// one byte in a worker's on-disk replica log and require the cluster to
// notice and heal without operator action. The flipped byte breaks the
// last record's CRC, so the log's durable prefix no longer backs what the
// worker acknowledged — exactly what msgScrub's Verify re-scan catches.
func TestScrubHealsBitFlippedReplicaLog(t *testing.T) {
	g := testGraph(t, 8)
	links, workers, stop := InProcess(2)
	defer stop()
	logDir := t.TempDir()
	if err := workers[0].SetLogDir(logDir, store.SyncAlways); err != nil {
		t.Fatal(err)
	}
	co, err := NewCoordinator(g, links)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	scrubWorkload(t, co, g, 4)

	// Flip the last byte of the fattest shard log: the biggest file is
	// certain to hold at least one replicated record past its header.
	names, err := filepath.Glob(filepath.Join(logDir, "repl-*.log"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no replica logs on disk (glob err %v)", err)
	}
	var fat string
	var fatSize int64
	for _, name := range names {
		st, err := os.Stat(name)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() > fatSize {
			fat, fatSize = name, st.Size()
		}
	}
	f, err := os.OpenFile(fat, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, fatSize-1); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, fatSize-1); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, err := co.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Mismatches != 1 || rep.Heals != 1 {
		t.Fatalf("scrub report = %+v, want the flipped log caught and healed", rep)
	}
	// The heal reset the shard's log from the authoritative parcel: a
	// second pass is clean, and commits keep replicating through it.
	rep2, err := co.Scrub()
	if err != nil {
		t.Fatalf("second scrub: %v", err)
	}
	if rep2.Mismatches != 0 {
		t.Fatalf("second scrub report = %+v, want a clean pass", rep2)
	}
	scrubWorkload(t, co, g, 1)
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("post-heal commit diverged: %v", err)
	}
}

// TestStartScrubberHealsUnattended runs the background loop against a
// silently corrupted replica and waits for it to notice and heal with no
// verb, no commit, and no operator in the loop.
func TestStartScrubberHealsUnattended(t *testing.T) {
	g := testGraph(t, 8)
	links, workers, stop := InProcess(2)
	defer stop()
	co, err := NewCoordinator(g, links)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	scrubWorkload(t, co, g, 3)

	corruptWorkerShard(t, co, workers[1], 1)
	co.StartScrubber(time.Millisecond)

	deadline := time.Now().Add(10 * time.Second)
	for co.ScrubCounters().Heals == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber never healed the corrupted replica")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("replica still divergent after background heal: %v", err)
	}
}
