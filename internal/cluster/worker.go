package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"incgraph/internal/graph"
	"incgraph/internal/store"
)

// Worker owns a subset of the cluster graph's shards: authoritative node
// records, slot allocators and adjacency for every shard placed on it, in
// a shard-container graph whose global indexes are never built (see
// graph.ApplyShardEffects). It serves the coordinator's RPCs — place,
// drop, apply (phase 1), export, stat — over any net.Conn; requests from
// concurrent connections serialize on the worker's mutex, so state
// transitions are atomic per request.
type Worker struct {
	mu      sync.Mutex
	g       *graph.Graph
	owned   map[int]bool
	applied uint64
	errs    uint64
}

// NewWorker returns an empty worker; the coordinator's hello sizes it.
func NewWorker() *Worker {
	return &Worker{owned: make(map[int]bool)}
}

// Serve accepts connections until the listener closes, serving each on its
// own goroutine. It returns the listener's error (net.ErrClosed on a clean
// shutdown).
func (w *Worker) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			w.ServeConn(conn)
		}()
	}
}

// ServeConn answers framed requests on conn until EOF or a framing error.
// Request-level failures (unknown shard, diverged state) are answered with
// msgErr and the connection stays up; framing errors tear it down — the
// coordinator treats that as a worker failure and resyncs. Until the
// connection's first request has been handled successfully (a hello, on a
// real coordinator), frames are capped small so a stray non-protocol
// connection cannot provoke a near-gigabyte allocation.
func (w *Worker) ServeConn(conn io.ReadWriter) error {
	limit := uint32(preHelloMaxFrame)
	for {
		payload, err := readFrame(conn, limit)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if len(payload) == 0 {
			return fmt.Errorf("%w: empty message", ErrProtocol)
		}
		t := msgType(payload[0])
		resp := w.handle(t, &reader{buf: payload, off: 1})
		if err := writeFrame(conn, resp); err != nil {
			return err
		}
		// Only a successful hello — the coordinator handshake — earns the
		// full frame budget; other pre-hello requests (stat works without
		// one) must not unlock gigabyte allocations for strangers.
		if t == msgHello && msgType(resp[0]) == msgOK {
			limit = maxFrame
		}
	}
}

// handle dispatches one request and builds the response frame payload.
func (w *Worker) handle(t msgType, r *reader) []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	resp, err := w.dispatch(t, r)
	if err != nil {
		w.errs++
		return append([]byte{byte(msgErr)}, err.Error()...)
	}
	return resp
}

func (w *Worker) dispatch(t msgType, r *reader) ([]byte, error) {
	switch t {
	case msgHello:
		version, shards, err := decodeHello(r)
		if err != nil {
			return nil, err
		}
		if version != protocolVersion {
			return nil, fmt.Errorf("protocol version %d not supported (have %d)", version, protocolVersion)
		}
		if shards < 1 || shards > graph.MaxShards || shards&(shards-1) != 0 {
			return nil, fmt.Errorf("invalid shard count %d", shards)
		}
		if w.g == nil || w.g.NumShards() != int(shards) {
			// Fresh session with a different partitioning: any held state
			// is for the wrong shard space, drop it.
			w.g = graph.NewSharded(int(shards))
			w.owned = make(map[int]bool)
		}
		owned := make([]int, 0, len(w.owned))
		for s := range w.owned {
			owned = append(owned, s)
		}
		return encodeShardList([]byte{byte(msgOK)}, owned), nil

	case msgPlace:
		if w.g == nil {
			return nil, fmt.Errorf("place before hello")
		}
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if s >= uint64(w.g.NumShards()) {
			return nil, fmt.Errorf("shard %d out of range [0,%d)", s, w.g.NumShards())
		}
		st, err := store.DecodeShardParcel(r.rest(), int(s), w.g.NumShards())
		if err != nil {
			return nil, err
		}
		w.g.ResetShard(int(s))
		if err := w.g.LoadShard(int(s), st); err != nil {
			// A half-loaded shard must not pass for a replica.
			w.g.ResetShard(int(s))
			delete(w.owned, int(s))
			return nil, err
		}
		w.owned[int(s)] = true
		return []byte{byte(msgOK)}, nil

	case msgDrop:
		if w.g == nil {
			return nil, fmt.Errorf("drop before hello")
		}
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		if s >= uint64(w.g.NumShards()) {
			return nil, fmt.Errorf("shard %d out of range [0,%d)", s, w.g.NumShards())
		}
		w.g.ResetShard(int(s))
		delete(w.owned, int(s))
		return []byte{byte(msgOK)}, nil

	case msgApply:
		if w.g == nil {
			return nil, fmt.Errorf("apply before hello")
		}
		effs, err := decodeApply(r)
		if err != nil {
			return nil, err
		}
		shards := make([]int, len(effs))
		deltas := make([]int, len(effs))
		for i, e := range effs {
			if e.Shard < 0 || e.Shard >= w.g.NumShards() || !w.owned[e.Shard] {
				return nil, fmt.Errorf("shard %d not placed here", e.Shard)
			}
			shards[i] = e.Shard
		}
		for i, e := range effs {
			d, err := w.g.ApplyShardEffects(e)
			if err != nil {
				// The shard may be partially applied: disown it so the
				// coordinator's resync must re-place it before reuse.
				delete(w.owned, e.Shard)
				return nil, err
			}
			deltas[i] = d
		}
		w.applied++
		return encodeDeltas(shards, deltas), nil

	case msgExport:
		if w.g == nil {
			return nil, fmt.Errorf("export before hello")
		}
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		if s >= uint64(w.g.NumShards()) || !w.owned[int(s)] {
			return nil, fmt.Errorf("shard %d not placed here", s)
		}
		parcel, err := store.EncodeShardParcel(w.g, int(s))
		if err != nil {
			return nil, err
		}
		return append([]byte{byte(msgOK)}, parcel...), nil

	case msgStat:
		if err := r.done(); err != nil {
			return nil, err
		}
		st := WorkerStat{Shards: map[int]int{}, Applied: w.applied, Errors: w.errs}
		if w.g != nil {
			for s := range w.owned {
				st.Shards[s] = w.g.NumShardNodes(s)
			}
		}
		return encodeStat(st), nil

	default:
		return nil, fmt.Errorf("unknown message type %d", t)
	}
}

// roundTrip sends one request frame and decodes the response envelope,
// returning the msgOK body reader or the worker's remote error. The
// response cap stays at maxFrame: the peer is a worker this coordinator
// handshook, and export responses carry whole parcels.
func roundTrip(conn io.ReadWriter, req []byte) (*reader, error) {
	if err := writeFrame(conn, req); err != nil {
		return nil, err
	}
	payload, err := readFrame(conn, maxFrame)
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("%w: connection closed mid-request", ErrFrame)
		}
		return nil, err
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty response", ErrProtocol)
	}
	switch msgType(payload[0]) {
	case msgOK:
		return &reader{buf: payload, off: 1}, nil
	case msgErr:
		return nil, remoteError(payload[1:])
	default:
		return nil, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, payload[0])
	}
}

// appendUvarint is a tiny helper for request builders.
func appendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }
