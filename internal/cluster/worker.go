package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"incgraph/internal/graph"
	"incgraph/internal/store"
)

// Worker owns a subset of the cluster graph's shards: authoritative node
// records, slot allocators and adjacency for every shard placed on it, in
// a shard-container graph whose global indexes are never built (see
// graph.ApplyShardEffects). It serves the coordinator's RPCs — place,
// drop, apply (phase 1), export, stat — over any net.Conn; requests from
// concurrent connections serialize on the worker's mutex, so state
// transitions are atomic per request.
type Worker struct {
	mu      sync.Mutex
	g       *graph.Graph
	owned   map[int]bool
	applied uint64
	errs    uint64

	// maxTerm is the highest coordinator fencing term this worker has
	// seen. Sessions opened at a lower term — a deposed coordinator that
	// has not yet noticed its standby promoted — have their hello and all
	// mutating requests rejected as fenced.
	maxTerm uint64
	// repl holds the per-shard replica logs (memory mode by default; file
	// mode via SetLogDir). replGen maps shard → the post-commit generation
	// its last replicated record proved — the currency proof replica reads
	// check.
	repl       *store.ReplicaLog
	replGen    map[int]uint64
	replicated uint64
	replGaps   uint64

	// applyDeltas is phase-1 scratch, reused across requests (safe: every
	// request runs under mu).
	applyDeltas []int
}

// NewWorker returns an empty worker; the coordinator's hello sizes it.
func NewWorker() *Worker {
	return &Worker{
		owned:   make(map[int]bool),
		repl:    store.NewMemReplicaLog(),
		replGen: make(map[int]uint64),
	}
}

// SetLogDir switches the worker's replica logs to file-backed mode in
// dir, reopening any logs a previous process left there (their sequence
// chains survive restarts; any record missed while down surfaces as a
// gap on the next replicate and heals through resync). Call before
// serving connections.
func (w *Worker) SetLogDir(dir string, policy store.SyncPolicy) error {
	l, err := store.OpenReplicaLog(dir, policy)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.repl != nil {
		w.repl.Close()
	}
	w.repl = l
	return nil
}

// Serve accepts connections until the listener closes, serving each on its
// own goroutine. It returns the listener's error (net.ErrClosed on a clean
// shutdown).
func (w *Worker) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			w.ServeConn(conn)
		}()
	}
}

// applySession is the per-connection state of the apply fast path: the
// coordinator-ID → local-ID label translation built up by the label-delta
// chain at the head of every apply request, and the scratch buffers that
// make a warm connection decode requests, apply effects, and frame
// responses without allocating.
type applySession struct {
	// coordLabels[i] is the local LabelID for the coordinator's label i.
	// Grows monotonically over the session; reset by hello.
	coordLabels []graph.LabelID

	effs   []graph.ShardEffects
	nodes  []graph.ShardNewNode
	ops    []graph.ShardOp
	deltas []int

	readBuf []byte // request frame payloads
	resp    []byte // response bodies built by the apply handler
	frame   []byte // header-prefixed single-write response frames
}

// smallResp bounds responses sent via the single-write prefixed-frame
// path; anything larger (export parcels) goes out as header+payload so
// the connection's scratch buffer never balloons to parcel size.
const smallResp = 64 << 10

// zeroFrameHeader reserves header space at the front of a prefixed frame.
var zeroFrameHeader [frameHeaderSize]byte

// ServeConn answers framed requests on conn until EOF or a framing error.
// Request-level failures (unknown shard, diverged state) are answered with
// msgErr and the connection stays up; framing errors tear it down — the
// coordinator treats that as a worker failure and resyncs. Until the
// connection's first request has been handled successfully (a hello, on a
// real coordinator), frames are capped small so a stray non-protocol
// connection cannot provoke a near-gigabyte allocation.
func (w *Worker) ServeConn(conn io.ReadWriter) error {
	limit := uint32(preHelloMaxFrame)
	// sessTerm is the fencing term this connection's hello established;
	// it lags w.maxTerm once a newer coordinator appears, which is what
	// fences the old one's in-flight session.
	var sessTerm uint64
	sess := &applySession{}
	for {
		payload, err := readFrameInto(conn, sess.readBuf, limit)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if cap(payload) > cap(sess.readBuf) {
			sess.readBuf = payload
		}
		if len(payload) == 0 {
			return fmt.Errorf("%w: empty message", ErrProtocol)
		}
		t := msgType(payload[0])
		resp := w.handle(t, &reader{buf: payload, off: 1}, &sessTerm, sess)
		if len(resp) <= smallResp {
			frame := append(sess.frame[:0], zeroFrameHeader[:]...)
			frame = append(frame, resp...)
			sess.frame = frame[:0]
			if err := writeFramePrefixed(conn, frame); err != nil {
				return err
			}
		} else if err := writeFrame(conn, resp); err != nil {
			return err
		}
		// Only a successful hello — the coordinator handshake — earns the
		// full frame budget; other pre-hello requests (stat works without
		// one) must not unlock gigabyte allocations for strangers.
		if t == msgHello && msgType(resp[0]) == msgOK {
			limit = maxFrame
		}
	}
}

// handle dispatches one request and builds the response frame payload.
func (w *Worker) handle(t msgType, r *reader, sessTerm *uint64, sess *applySession) []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	resp, err := w.dispatch(t, r, sessTerm, sess)
	if err != nil {
		w.errs++
		return append([]byte{byte(msgErr)}, err.Error()...)
	}
	return resp
}

// applyBatchEffects runs phase 1 for one batch of a group — ownership
// check across all its shards first, then ApplyShardEffects per shard —
// and appends the batch's verdict (per-shard deltas, or an error) to the
// group response. Caller holds w.mu.
func (w *Worker) applyBatchEffects(resp []byte, effs []graph.ShardEffects) []byte {
	for _, e := range effs {
		if e.Shard < 0 || e.Shard >= w.g.NumShards() || !w.owned[e.Shard] {
			w.errs++
			return appendBatchError(resp, fmt.Errorf("shard %d not placed here", e.Shard))
		}
	}
	w.applyDeltas = w.applyDeltas[:0]
	for _, e := range effs {
		d, err := w.g.ApplyShardEffects(e)
		if err != nil {
			// The shard may be partially applied: disown it so the
			// coordinator's resync must re-place it before reuse.
			delete(w.owned, e.Shard)
			w.errs++
			return appendBatchError(resp, err)
		}
		w.applyDeltas = append(w.applyDeltas, d)
	}
	w.applied++
	return appendBatchDeltas(resp, effs, w.applyDeltas)
}

// fenced guards mutating requests: a session helloed at a term below the
// highest this worker has seen belongs to a deposed coordinator, and its
// writes must not land after the successor's.
func (w *Worker) fenced(sessTerm uint64) error {
	if sessTerm < w.maxTerm {
		return fmt.Errorf("fenced: session term %d superseded by term %d", sessTerm, w.maxTerm)
	}
	return nil
}

func (w *Worker) dispatch(t msgType, r *reader, sessTerm *uint64, sess *applySession) ([]byte, error) {
	switch t {
	case msgHello:
		version, shards, term, err := decodeHello(r)
		if err != nil {
			return nil, err
		}
		// The session's label chain restarts with the handshake: a
		// coordinator (or promoted standby) that hellos resends its label
		// table from zero.
		sess.coordLabels = sess.coordLabels[:0]
		if version != protocolVersion {
			return nil, fmt.Errorf("protocol version %d not supported (have %d)", version, protocolVersion)
		}
		if shards < 1 || shards > graph.MaxShards || shards&(shards-1) != 0 {
			return nil, fmt.Errorf("invalid shard count %d", shards)
		}
		if term < w.maxTerm {
			return nil, fmt.Errorf("fenced: hello term %d superseded by term %d", term, w.maxTerm)
		}
		w.maxTerm = term
		*sessTerm = term
		if w.g == nil || w.g.NumShards() != int(shards) {
			// Fresh session with a different partitioning: any held state
			// is for the wrong shard space, drop it — replica logs too.
			w.g = graph.NewSharded(int(shards))
			w.owned = make(map[int]bool)
			for _, s := range w.repl.Shards() {
				w.repl.Drop(s)
			}
			w.replGen = make(map[int]uint64)
		}
		owned := make([]int, 0, len(w.owned))
		for s := range w.owned {
			owned = append(owned, s)
		}
		return encodeShardList([]byte{byte(msgOK)}, owned), nil

	case msgPlace:
		if w.g == nil {
			return nil, fmt.Errorf("place before hello")
		}
		if err := w.fenced(*sessTerm); err != nil {
			return nil, err
		}
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		replSeq, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		placeGen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if s >= uint64(w.g.NumShards()) {
			return nil, fmt.Errorf("shard %d out of range [0,%d)", s, w.g.NumShards())
		}
		st, err := store.DecodeShardParcel(r.rest(), int(s), w.g.NumShards())
		if err != nil {
			return nil, err
		}
		w.g.ResetShard(int(s))
		if err := w.g.LoadShard(int(s), st); err != nil {
			// A half-loaded shard must not pass for a replica.
			w.g.ResetShard(int(s))
			delete(w.owned, int(s))
			return nil, err
		}
		w.owned[int(s)] = true
		// The parcel embodies every record through replSeq: restart the
		// shard's replica log chain there.
		if err := w.repl.Reset(int(s), replSeq); err != nil {
			return nil, err
		}
		w.replGen[int(s)] = placeGen
		return []byte{byte(msgOK)}, nil

	case msgDrop:
		if w.g == nil {
			return nil, fmt.Errorf("drop before hello")
		}
		if err := w.fenced(*sessTerm); err != nil {
			return nil, err
		}
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		if s >= uint64(w.g.NumShards()) {
			return nil, fmt.Errorf("shard %d out of range [0,%d)", s, w.g.NumShards())
		}
		w.g.ResetShard(int(s))
		delete(w.owned, int(s))
		w.repl.Drop(int(s))
		delete(w.replGen, int(s))
		return []byte{byte(msgOK)}, nil

	case msgApply:
		if w.g == nil {
			return nil, fmt.Errorf("apply before hello")
		}
		if err := w.fenced(*sessTerm); err != nil {
			return nil, err
		}
		var err error
		sess.coordLabels, err = decodeApplyLabels(r, sess.coordLabels)
		if err != nil {
			return nil, err
		}
		nBatches, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nBatches == 0 || nBatches > uint64(len(r.buf)) {
			return nil, fmt.Errorf("%w: implausible batch count %d", ErrProtocol, nBatches)
		}
		resp := append(sess.resp[:0], byte(msgOK))
		resp = binary.AppendUvarint(resp, nBatches)
		for b := uint64(0); b < nBatches; b++ {
			effs, err := decodeApplyBatch(r, sess)
			if err != nil {
				return nil, err
			}
			// The batches of one group touch disjoint shard sets (the
			// coordinator's admission gate guarantees it), so each gets an
			// independent verdict: one failing does not poison the rest.
			resp = w.applyBatchEffects(resp, effs)
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		sess.resp = resp[:0]
		return resp, nil

	case msgExport:
		if w.g == nil {
			return nil, fmt.Errorf("export before hello")
		}
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		if s >= uint64(w.g.NumShards()) || !w.owned[int(s)] {
			return nil, fmt.Errorf("shard %d not placed here", s)
		}
		parcel, err := store.EncodeShardParcel(w.g, int(s))
		if err != nil {
			return nil, err
		}
		return append([]byte{byte(msgOK)}, parcel...), nil

	case msgReplicate:
		if w.g == nil {
			return nil, fmt.Errorf("replicate before hello")
		}
		if err := w.fenced(*sessTerm); err != nil {
			return nil, err
		}
		entries, postGen, recPayload, err := decodeReplicate(r)
		if err != nil {
			return nil, err
		}
		rec, err := store.DecodeRecord(recPayload)
		if err != nil {
			return nil, err
		}
		statuses := make([]byte, len(entries))
		for i, e := range entries {
			if e.shard < 0 || e.shard >= w.g.NumShards() || !w.owned[e.shard] {
				statuses[i] = replGap
				w.replGaps++
				continue
			}
			if err := w.repl.Append(e.shard, e.prevSeq, rec); err != nil {
				if errors.Is(err, store.ErrSeqGap) {
					// The chain broke — a record this replica missed, or a
					// torn tail truncated on restart. Report the gap; the
					// coordinator resyncs the shard by parcel.
					statuses[i] = replGap
					w.replGaps++
					continue
				}
				return nil, err
			}
			w.replGen[e.shard] = postGen
			w.replicated++
		}
		return encodeReplAck(entries, statuses), nil

	case msgReplState:
		if err := r.done(); err != nil {
			return nil, err
		}
		states := make(map[int]ReplState)
		for _, s := range w.repl.Shards() {
			seq, _ := w.repl.LastSeq(s)
			states[s] = ReplState{LastSeq: seq, Gen: w.replGen[s]}
		}
		return encodeReplStates(states), nil

	case msgScrub:
		if w.g == nil {
			return nil, fmt.Errorf("scrub before hello")
		}
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		if s >= uint64(w.g.NumShards()) || !w.owned[int(s)] {
			return nil, fmt.Errorf("shard %d not placed here", s)
		}
		// Read-only like export: no fencing needed, and a deposed
		// coordinator scrubbing does no harm.
		if err := w.repl.Verify(int(s)); err != nil {
			return append([]byte{byte(msgOK), scrubDamaged}, err.Error()...), nil
		}
		return []byte{byte(msgOK), scrubIntact}, nil

	case msgStat:
		if err := r.done(); err != nil {
			return nil, err
		}
		st := WorkerStat{
			Shards:     map[int]int{},
			Applied:    w.applied,
			Errors:     w.errs,
			Replicated: w.replicated,
			ReplGaps:   w.replGaps,
			Term:       w.maxTerm,
		}
		if w.g != nil {
			for s := range w.owned {
				st.Shards[s] = w.g.NumShardNodes(s)
			}
		}
		return encodeStat(st), nil

	default:
		return nil, fmt.Errorf("unknown message type %d", t)
	}
}

// roundTrip sends one request frame and decodes the response envelope,
// returning the msgOK body reader or the worker's remote error. The
// response cap stays at maxFrame: the peer is a worker this coordinator
// handshook, and export responses carry whole parcels.
func roundTrip(conn io.ReadWriter, req []byte) (*reader, error) {
	if err := writeFrame(conn, req); err != nil {
		return nil, err
	}
	payload, err := readFrame(conn, maxFrame)
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("%w: connection closed mid-request", ErrFrame)
		}
		return nil, err
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty response", ErrProtocol)
	}
	switch msgType(payload[0]) {
	case msgOK:
		return &reader{buf: payload, off: 1}, nil
	case msgErr:
		return nil, remoteError(payload[1:])
	default:
		return nil, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, payload[0])
	}
}

// appendUvarint is a tiny helper for request builders.
func appendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }
