package cluster

import (
	"bytes"
	"fmt"
	"time"

	"incgraph/internal/store"
)

// Anti-entropy scrubbing. Replication heals a replica only when it
// notices a sequence gap; a replica rotted by anything that preserves the
// chain — a bit flip in the shard's replica log file, a worker whose
// in-memory state silently diverged — stays wrong until the shard happens
// to abort a batch. The scrubber turns resync from a gap-triggered repair
// into a continuously verified guarantee: it walks shards in the
// background, compares the worker's parcel bytes against the
// coordinator-authoritative segment (parcels are byte-deterministic, so
// equality is exact), asks the worker to re-scan its replica log file
// against what it acknowledged (msgScrub), and re-places any shard that
// fails either check from the authoritative parcel — the same heal a gap
// triggers, now driven by verification instead of luck.
//
// Scrubbing never competes with commits: a shard busy under an in-flight
// batch is skipped after a bounded wait (scrubAcquireWait) and revisited
// on the next pass, and the background loop paces one shard per interval
// rather than sweeping in a burst.

// scrub status bytes in msgScrub responses.
const (
	scrubIntact  byte = 0
	scrubDamaged byte = 1
)

// scrubAcquireWait bounds how long a scrub waits for a busy shard before
// skipping it; commits hold shard locks for whole RPC round trips, so
// anything longer would make the scrubber a writer's competitor.
const scrubAcquireWait = 2 * time.Millisecond

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	// Checked counts shards fully verified (or found divergent).
	Checked int
	// Skipped counts shards not verified this pass: busy under a commit,
	// owner down, or already marked for resync.
	Skipped int
	// Mismatches counts shards that failed verification: divergent parcel
	// bytes or a damaged replica log.
	Mismatches int
	// Heals counts mismatched shards successfully re-placed.
	Heals int
}

// ScrubStats are the coordinator's lifetime anti-entropy counters.
type ScrubStats struct {
	Passes     uint64
	Checked    uint64
	Mismatches uint64
	Heals      uint64
	Skips      uint64
}

// ScrubCounters returns the lifetime anti-entropy counters.
func (c *Coordinator) ScrubCounters() ScrubStats {
	return ScrubStats{
		Passes:     c.scrubPasses.Load(),
		Checked:    c.scrubChecked.Load(),
		Mismatches: c.scrubMismatches.Load(),
		Heals:      c.scrubHeals.Load(),
		Skips:      c.scrubSkips.Load(),
	}
}

// ScrubShard verifies shard s's remote replica — parcel bytes against the
// authoritative segment, then the worker's replica log file against its
// acknowledged state — and re-places the shard on any mismatch. It
// returns whether a heal happened. A shard that cannot be verified right
// now (busy under a commit, owner down) is skipped without error: the
// next pass gets it.
func (c *Coordinator) ScrubShard(s int) (healed bool, err error) {
	if s < 0 || s >= c.g.NumShards() {
		return false, fmt.Errorf("cluster: ScrubShard: shard %d out of range [0,%d)", s, c.g.NumShards())
	}
	touched := []int{s}
	if !c.acquireDeadline(touched, time.Now().Add(scrubAcquireWait)) {
		c.scrubSkips.Add(1)
		return false, nil
	}
	defer c.release(touched)
	c.mu.Lock()
	w := c.assign[s]
	dirty := c.dirty[s]
	c.mu.Unlock()
	l := c.workers[w]
	if dirty {
		// Already awaiting resync; the next batch (or heal below on a
		// later pass) re-places it. Nothing to verify against.
		c.scrubSkips.Add(1)
		return false, nil
	}
	if _, serr := l.session(); serr != nil {
		// Scrubbing does not redial: reattachment reconciles ownership and
		// belongs to the commit path (prepareShards), not a background
		// verifier racing it.
		c.scrubSkips.Add(1)
		return false, nil
	}
	want, err := store.EncodeShardParcel(c.g, s)
	if err != nil {
		return false, err
	}
	c.scrubChecked.Add(1)
	divergent := false
	r, rerr := l.requestHint(appendUvarint([]byte{byte(msgExport)}, uint64(s)), len(want))
	switch {
	case rerr == nil:
		divergent = !bytes.Equal(r.rest(), want)
	case IsRemote(rerr):
		// The worker answered but cannot export the shard (lost ownership,
		// diverged state): that IS a mismatch.
		divergent = true
	default:
		// Transport failure: the link is marked down; nothing verifiable.
		c.scrubSkips.Add(1)
		return false, nil
	}
	if !divergent {
		r, rerr = l.request(appendUvarint([]byte{byte(msgScrub)}, uint64(s)))
		switch {
		case rerr == nil:
			status, berr := r.byte()
			divergent = berr != nil || status != scrubIntact
		case IsRemote(rerr):
			divergent = true
		default:
			c.scrubSkips.Add(1)
			return false, nil
		}
	}
	if !divergent {
		return false, nil
	}
	c.scrubMismatches.Add(1)
	if err := c.place(l, s); err != nil {
		// Heal failed: flag the shard so the next batch's prepareShards
		// retries the placement before using it.
		c.markDirty(touched)
		c.remoteErrs.Add(1)
		return false, fmt.Errorf("cluster: scrub heal of shard %d on %s: %w", s, l.name, err)
	}
	c.scrubHeals.Add(1)
	c.resyncs.Add(1)
	return true, nil
}

// Scrub runs one full anti-entropy pass over every shard and reports what
// it found. Shards busy under commits are skipped, not waited for.
func (c *Coordinator) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	var firstErr error
	before := c.ScrubCounters()
	for s := 0; s < c.g.NumShards(); s++ {
		healed, err := c.ScrubShard(s)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if healed {
			rep.Heals++
		}
	}
	after := c.ScrubCounters()
	rep.Checked = int(after.Checked - before.Checked)
	rep.Skipped = int(after.Skips - before.Skips)
	rep.Mismatches = int(after.Mismatches - before.Mismatches)
	c.scrubPasses.Add(1)
	return rep, firstErr
}

// StartScrubber launches the background anti-entropy loop: one shard
// verified per interval, round-robin, until Close. The per-shard pacing
// is the rate limit — a P-shard cluster is fully verified every
// P×interval, and the scrubber never issues more than one RPC per tick.
func (c *Coordinator) StartScrubber(interval time.Duration) {
	if interval <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		s := 0
		for {
			select {
			case <-c.quit:
				return
			case <-t.C:
			}
			c.ScrubShard(s)
			s++
			if s >= c.g.NumShards() {
				s = 0
				c.scrubPasses.Add(1)
			}
		}
	}()
}
