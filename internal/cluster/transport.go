package cluster

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Transports. The protocol runs over any net.Conn; two constructions are
// provided: TCP for real deployments (Dial, with a redial path so the
// coordinator can reattach a restarted worker) and synchronous in-process
// pipes for deterministic tests and benchmarks (InProcess — no ports, no
// OS scheduling in the loop beyond goroutines).

// dialTimeout bounds one TCP connection attempt.
const dialTimeout = 5 * time.Second

// Dialer configures worker dialing: per-attempt timeout and a capped
// exponential backoff with jitter between redial attempts, so a worker
// that is restarting is retried quickly at first and gently afterwards —
// and a fleet of coordinators redialing the same worker does not
// stampede in lockstep. The zero value uses the defaults.
type Dialer struct {
	// Timeout bounds one connection attempt (default 5s).
	Timeout time.Duration
	// Attempts is the number of connection attempts per Redial call
	// (default 4): the first immediately, the rest after backoff.
	Attempts int
	// Backoff is the delay before the second attempt (default 100ms); it
	// doubles per attempt, capped at MaxBackoff (default 3s), with up to
	// 50% random jitter subtracted.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Seed fixes the jitter sequence for deterministic tests; 0 derives
	// one from the address.
	Seed int64

	retries atomic.Uint64
}

func (d *Dialer) timeout() time.Duration {
	if d.Timeout > 0 {
		return d.Timeout
	}
	return dialTimeout
}

func (d *Dialer) attempts() int {
	if d.Attempts > 0 {
		return d.Attempts
	}
	return 4
}

func (d *Dialer) backoff() (base, cap time.Duration) {
	base, cap = d.Backoff, d.MaxBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap <= 0 {
		cap = 3 * time.Second
	}
	return base, cap
}

// Retries returns the cumulative connection attempt count.
func (d *Dialer) Retries() uint64 { return d.retries.Load() }

// Dial connects to addr, retrying with backoff, and returns a redialable
// Link wired to the same policy. The Link's Retries counter is this
// dialer's.
func (d *Dialer) Dial(addr string) (Link, error) {
	seed := d.Seed
	if seed == 0 {
		for _, b := range []byte(addr) {
			seed = seed*131 + int64(b)
		}
		seed++
	}
	rng := rand.New(rand.NewSource(seed))
	var rngMu sync.Mutex
	redial := func() (net.Conn, error) {
		base, max := d.backoff()
		delay := base
		var lastErr error
		for i := 0; i < d.attempts(); i++ {
			if i > 0 {
				rngMu.Lock()
				jitter := time.Duration(rng.Int63n(int64(delay)/2 + 1))
				rngMu.Unlock()
				time.Sleep(delay - jitter)
				delay *= 2
				if delay > max {
					delay = max
				}
			}
			d.retries.Add(1)
			conn, err := net.DialTimeout("tcp", addr, d.timeout())
			if err == nil {
				return conn, nil
			}
			lastErr = err
		}
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, lastErr)
	}
	conn, err := redial()
	if err != nil {
		return Link{}, err
	}
	return Link{Conn: conn, Name: addr, Redial: redial, Retries: &d.retries}, nil
}

// Dial connects to a worker at addr and returns a redialable Link using
// the default Dialer policy.
func Dial(addr string) (Link, error) {
	d := &Dialer{}
	return d.Dial(addr)
}

// InProcess starts n workers, each served over a buffered in-memory
// pipe, and returns coordinator links for them. Redial is wired: closing a
// link's conn and redialing attaches a fresh pipe to the same worker
// (state intact), which is what the disconnect/reattach tests exercise.
// stop tears the serving goroutines down.
func InProcess(n int) (links []Link, workers []*Worker, stop func()) {
	var mu sync.Mutex
	var conns []net.Conn
	for i := 0; i < n; i++ {
		w := NewWorker()
		workers = append(workers, w)
		attach := func() (net.Conn, error) {
			client, server := BufferedPipe()
			go func() {
				defer server.Close()
				w.ServeConn(server)
			}()
			mu.Lock()
			conns = append(conns, client)
			mu.Unlock()
			return client, nil
		}
		conn, _ := attach()
		links = append(links, Link{Conn: conn, Name: fmt.Sprintf("local-%d", i), Redial: attach})
	}
	return links, workers, func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}
}

// BufferedPipe is the in-process transport's conn pair: a duplex
// in-memory stream whose writes land in a buffer and return, like a
// loopback TCP socket's, instead of net.Pipe's synchronous rendezvous —
// which blocks every Write until the peer's Read arrives and so charges
// two scheduler handoffs per frame that no real socket pays. The
// protocol's latency over this pair is the protocol's own, not the
// rendezvous artifact's. Semantics kept from net.Conn: concurrent Read
// and Write, deadlines checked per call, Close of either end unblocks
// both (reads drain buffered data, then io.EOF; writes fail with
// io.ErrClosedPipe).
func BufferedPipe() (client, server net.Conn) {
	done := &pipeShared{done: make(chan struct{})}
	a := make(chan *[]byte, pipeDepth)
	b := make(chan *[]byte, pipeDepth)
	return &memConn{r: a, w: b, shared: done}, &memConn{r: b, w: a, shared: done}
}

// chunkPool recycles the pipe's write chunks: a reader returns each chunk
// once fully consumed, so a steady request/response exchange settles into
// zero allocations per frame — like a socket buffer, which is the thing
// being modeled. Chunks stranded in a closed pipe just fall to the GC.
var chunkPool = sync.Pool{New: func() any { return new([]byte) }}

func getChunk(n int) *[]byte {
	bp := chunkPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// pipeDepth is the per-direction chunk buffer: deep enough that a
// request/response protocol never blocks a writer, shallow enough that a
// runaway writer is eventually backpressured like a full socket buffer.
const pipeDepth = 256

// pipeShared carries the duplex pair's close signal: the first Close of
// either end fires it, and both ends observe it.
type pipeShared struct {
	once sync.Once
	done chan struct{}
}

type memConn struct {
	r, w   chan *[]byte
	shared *pipeShared

	mu       sync.Mutex
	rdl, wdl time.Time // zero = no deadline
	chunk    *[]byte   // chunk a Read partially consumed, pooled once drained
	leftover []byte    // its unread tail
}

func (c *memConn) deadlines() (rdl, wdl time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rdl, c.wdl
}

// expiry arms a timer for dl: a nil channel (never fires) when no
// deadline is set. Callers must stop the returned timer.
func expiry(dl time.Time) (<-chan time.Time, *time.Timer) {
	if dl.IsZero() {
		return nil, nil
	}
	t := time.NewTimer(time.Until(dl))
	return t.C, t
}

// consume copies a freshly received chunk into p, keeping any unread tail
// as leftover and pooling the chunk once it is fully drained.
func (c *memConn) consume(p []byte, bp *[]byte) int {
	n := copy(p, *bp)
	if n < len(*bp) {
		c.chunk, c.leftover = bp, (*bp)[n:]
		return n
	}
	chunkPool.Put(bp)
	return n
}

func (c *memConn) Read(p []byte) (int, error) {
	if len(c.leftover) > 0 {
		n := copy(p, c.leftover)
		c.leftover = c.leftover[n:]
		if len(c.leftover) == 0 {
			chunkPool.Put(c.chunk)
			c.chunk = nil
		}
		return n, nil
	}
	// Fast path: buffered data beats both the close signal and the
	// deadline — a closed conn drains like a closed socket.
	select {
	case bp := <-c.r:
		return c.consume(p, bp), nil
	default:
	}
	rdl, _ := c.deadlines()
	tc, t := expiry(rdl)
	if t != nil {
		defer t.Stop()
	}
	select {
	case bp := <-c.r:
		return c.consume(p, bp), nil
	case <-c.shared.done:
		select {
		case bp := <-c.r:
			return c.consume(p, bp), nil
		default:
			return 0, io.EOF
		}
	case <-tc:
		return 0, os.ErrDeadlineExceeded
	}
}

func (c *memConn) Write(p []byte) (int, error) {
	select {
	case <-c.shared.done:
		return 0, io.ErrClosedPipe
	default:
	}
	// The chunk is copied: the frame writer reuses its buffer the moment
	// Write returns, which is exactly what buffering promises it may do.
	bp := getChunk(len(p))
	copy(*bp, p)
	_, wdl := c.deadlines()
	tc, t := expiry(wdl)
	if t != nil {
		defer t.Stop()
	}
	select {
	case c.w <- bp:
		return len(p), nil
	case <-c.shared.done:
		chunkPool.Put(bp)
		return 0, io.ErrClosedPipe
	case <-tc:
		chunkPool.Put(bp)
		return 0, os.ErrDeadlineExceeded
	}
}

func (c *memConn) Close() error {
	c.shared.once.Do(func() { close(c.shared.done) })
	return nil
}

func (c *memConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl, c.wdl = t, t
	c.mu.Unlock()
	return nil
}

func (c *memConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl = t
	c.mu.Unlock()
	return nil
}

func (c *memConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdl = t
	c.mu.Unlock()
	return nil
}

func (c *memConn) LocalAddr() net.Addr  { return memAddr{} }
func (c *memConn) RemoteAddr() net.Addr { return memAddr{} }

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }
