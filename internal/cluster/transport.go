package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Transports. The protocol runs over any net.Conn; two constructions are
// provided: TCP for real deployments (Dial, with a redial path so the
// coordinator can reattach a restarted worker) and synchronous in-process
// pipes for deterministic tests and benchmarks (InProcess — no ports, no
// OS scheduling in the loop beyond goroutines).

// dialTimeout bounds one TCP connection attempt.
const dialTimeout = 5 * time.Second

// Dial connects to a worker at addr and returns a redialable Link.
func Dial(addr string) (Link, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return Link{}, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return Link{
		Conn: conn,
		Name: addr,
		Redial: func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, dialTimeout)
		},
	}, nil
}

// InProcess starts n workers, each served over a synchronous in-memory
// pipe, and returns coordinator links for them. Redial is wired: closing a
// link's conn and redialing attaches a fresh pipe to the same worker
// (state intact), which is what the disconnect/reattach tests exercise.
// stop tears the serving goroutines down.
func InProcess(n int) (links []Link, workers []*Worker, stop func()) {
	var mu sync.Mutex
	var conns []net.Conn
	for i := 0; i < n; i++ {
		w := NewWorker()
		workers = append(workers, w)
		attach := func() (net.Conn, error) {
			client, server := net.Pipe()
			go func() {
				defer server.Close()
				w.ServeConn(server)
			}()
			mu.Lock()
			conns = append(conns, client)
			mu.Unlock()
			return client, nil
		}
		conn, _ := attach()
		links = append(links, Link{Conn: conn, Name: fmt.Sprintf("local-%d", i), Redial: attach})
	}
	return links, workers, func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}
}
