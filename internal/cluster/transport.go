package cluster

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Transports. The protocol runs over any net.Conn; two constructions are
// provided: TCP for real deployments (Dial, with a redial path so the
// coordinator can reattach a restarted worker) and synchronous in-process
// pipes for deterministic tests and benchmarks (InProcess — no ports, no
// OS scheduling in the loop beyond goroutines).

// dialTimeout bounds one TCP connection attempt.
const dialTimeout = 5 * time.Second

// Dialer configures worker dialing: per-attempt timeout and a capped
// exponential backoff with jitter between redial attempts, so a worker
// that is restarting is retried quickly at first and gently afterwards —
// and a fleet of coordinators redialing the same worker does not
// stampede in lockstep. The zero value uses the defaults.
type Dialer struct {
	// Timeout bounds one connection attempt (default 5s).
	Timeout time.Duration
	// Attempts is the number of connection attempts per Redial call
	// (default 4): the first immediately, the rest after backoff.
	Attempts int
	// Backoff is the delay before the second attempt (default 100ms); it
	// doubles per attempt, capped at MaxBackoff (default 3s), with up to
	// 50% random jitter subtracted.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Seed fixes the jitter sequence for deterministic tests; 0 derives
	// one from the address.
	Seed int64

	retries atomic.Uint64
}

func (d *Dialer) timeout() time.Duration {
	if d.Timeout > 0 {
		return d.Timeout
	}
	return dialTimeout
}

func (d *Dialer) attempts() int {
	if d.Attempts > 0 {
		return d.Attempts
	}
	return 4
}

func (d *Dialer) backoff() (base, cap time.Duration) {
	base, cap = d.Backoff, d.MaxBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap <= 0 {
		cap = 3 * time.Second
	}
	return base, cap
}

// Retries returns the cumulative connection attempt count.
func (d *Dialer) Retries() uint64 { return d.retries.Load() }

// Dial connects to addr, retrying with backoff, and returns a redialable
// Link wired to the same policy. The Link's Retries counter is this
// dialer's.
func (d *Dialer) Dial(addr string) (Link, error) {
	seed := d.Seed
	if seed == 0 {
		for _, b := range []byte(addr) {
			seed = seed*131 + int64(b)
		}
		seed++
	}
	rng := rand.New(rand.NewSource(seed))
	var rngMu sync.Mutex
	redial := func() (net.Conn, error) {
		base, max := d.backoff()
		delay := base
		var lastErr error
		for i := 0; i < d.attempts(); i++ {
			if i > 0 {
				rngMu.Lock()
				jitter := time.Duration(rng.Int63n(int64(delay)/2 + 1))
				rngMu.Unlock()
				time.Sleep(delay - jitter)
				delay *= 2
				if delay > max {
					delay = max
				}
			}
			d.retries.Add(1)
			conn, err := net.DialTimeout("tcp", addr, d.timeout())
			if err == nil {
				return conn, nil
			}
			lastErr = err
		}
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, lastErr)
	}
	conn, err := redial()
	if err != nil {
		return Link{}, err
	}
	return Link{Conn: conn, Name: addr, Redial: redial, Retries: &d.retries}, nil
}

// Dial connects to a worker at addr and returns a redialable Link using
// the default Dialer policy.
func Dial(addr string) (Link, error) {
	d := &Dialer{}
	return d.Dial(addr)
}

// InProcess starts n workers, each served over a synchronous in-memory
// pipe, and returns coordinator links for them. Redial is wired: closing a
// link's conn and redialing attaches a fresh pipe to the same worker
// (state intact), which is what the disconnect/reattach tests exercise.
// stop tears the serving goroutines down.
func InProcess(n int) (links []Link, workers []*Worker, stop func()) {
	var mu sync.Mutex
	var conns []net.Conn
	for i := 0; i < n; i++ {
		w := NewWorker()
		workers = append(workers, w)
		attach := func() (net.Conn, error) {
			client, server := net.Pipe()
			go func() {
				defer server.Close()
				w.ServeConn(server)
			}()
			mu.Lock()
			conns = append(conns, client)
			mu.Unlock()
			return client, nil
		}
		conn, _ := attach()
		links = append(links, Link{Conn: conn, Name: fmt.Sprintf("local-%d", i), Redial: attach})
	}
	return links, workers, func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}
}
