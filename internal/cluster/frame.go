// Package cluster runs the sharded graph substrate across processes: shard
// worker processes each own a subset of the graph's shards behind a
// length+CRC-framed RPC protocol, and a coordinator drives ApplyBatch's
// two-phase protocol over the wire — phase 1 fans each shard's slice of a
// validated batch plan out to the worker owning it, in parallel; phase 2
// merges the per-shard deltas deterministically in shard order on the
// coordinator — so a distributed application produces state byte-identical
// to the single-process one. Shard placement and rebalancing ship the
// per-shard snapshot segments of internal/store (EncodeShardParcel /
// DecodeShardParcel feeding graph.LoadShard); batches whose TouchedShards
// sets are disjoint are routed concurrently by the coordinator.
//
// # Division of state
//
// The coordinator keeps the authoritative full graph: it is where batches
// are validated and planned, where the serving engines (KWS/RPQ/SCC/ISO)
// and the durability layer live, and where resync segments come from.
// Workers hold authoritative *shard replicas* — node records, slot
// allocators, adjacency for their placed shards, nothing graph-global (no
// inverted label index, no edge count; see graph.ApplyShardEffects). A
// batch commits only after every involved worker acknowledged phase 1; a
// worker failure mid-phase-1 fails the batch atomically — the coordinator
// never commits, and any worker that did apply the aborted effects is
// marked stale and re-placed from the coordinator's authoritative segments
// before its shards are used again.
//
// # High availability
//
// Three layers on top of that substrate survive the loss of any process:
// log shipping (replication.go, store.ReplicaLog) streams every committed
// batch's WAL record to the workers owning its shards, with per-shard
// sequence chains that turn any missed record into a detected gap healed
// by parcel resync; standby failover (lease.go) feeds committed records
// from a Hub beside the primary to Standby tails whose heartbeats double
// as the primary's lease, with promotion at term+1 fencing the deposed
// coordinator's sessions at every worker; and replica reads
// (FetchReplStates) let any process ask a worker which generation each of
// its shards has proven current, without a coordinator session. A
// FaultScript (fault.go) wraps any of these connections in a seeded
// frame-level shim so every failure mode is drilled deterministically.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrFrame reports a malformed RPC frame: torn, oversized, or failing its
// CRC. Unlike WAL corruption (which truncates replay), a bad frame is
// fatal to the connection — there is no resynchronization point inside a
// TCP stream.
var ErrFrame = errors.New("cluster: bad frame")

// maxFrame bounds one message. Parcels of very large shards are the
// biggest frames; 1 GiB matches the WAL's record bound.
const maxFrame = 1 << 30

// preHelloMaxFrame bounds frames on a worker connection before its first
// successfully handled request. A hello is a few dozen bytes; the cap
// keeps a stray non-protocol connection (a misdirected health probe whose
// first bytes parse as a huge little-endian length) from provoking a
// near-gigabyte allocation before any validation has happened.
const preHelloMaxFrame = 1 << 12

// frameHeaderSize is uint32 length + uint32 CRC.
const frameHeaderSize = 8

// writeFrame sends one length+CRC-framed payload, mirroring the WAL's
// record framing (internal/store). Header and payload go out as separate
// writes — the stream has a single writer per direction, so no atomicity
// is needed, and skipping the concatenation avoids doubling peak memory
// when a multi-hundred-MB shard parcel ships during placement or resync.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: payload of %d bytes exceeds %d", ErrFrame, len(payload), maxFrame)
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeFramePrefixed sends a frame whose payload was built with
// frameHeaderSize bytes reserved at the front: it stamps the length+CRC
// header in place and issues a single Write. The hot apply path uses it —
// one write halves the synchronous-pipe rendezvous count of the
// in-process transport and avoids the small-packet header write on TCP —
// while the header bytes on the wire stay identical to writeFrame's, so
// frame-level shims (FaultScript) and readers cannot tell them apart.
func writeFramePrefixed(w io.Writer, frame []byte) error {
	payload := frame[frameHeaderSize:]
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: payload of %d bytes exceeds %d", ErrFrame, len(payload), maxFrame)
	}
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	_, err := w.Write(frame)
	return err
}

// readFrame reads one framed payload of at most max bytes. Torn headers
// or payloads, lengths past the cap, and CRC mismatches all return
// ErrFrame-wrapped errors; a clean EOF before any header byte returns
// io.EOF so accept loops can distinguish hangup from corruption.
func readFrame(r io.Reader, max uint32) ([]byte, error) {
	return readFrameInto(r, nil, max)
}

// readFrameInto is readFrame decoding into a reusable buffer: the payload
// lands in buf when its capacity suffices, so a connection that owns its
// scratch reads every request allocation-free once warm. The returned
// slice aliases buf (or a fresh allocation when buf was too small);
// callers own the growth.
func readFrameInto(r io.Reader, buf []byte, max uint32) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: torn header: %w", ErrFrame, err)
	}
	length := binary.LittleEndian.Uint32(hdr[:4])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if length > max {
		return nil, fmt.Errorf("%w: implausible length %d (cap %d)", ErrFrame, length, max)
	}
	var payload []byte
	if uint32(cap(buf)) >= length {
		payload = buf[:length]
	} else {
		payload = make([]byte, length)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: torn payload: %w", ErrFrame, err)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrFrame)
	}
	return payload, nil
}
