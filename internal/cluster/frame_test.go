package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 1<<16)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatalf("writeFrame(%d bytes): %v", len(p), err)
		}
	}
	for _, p := range payloads {
		got, err := readFrame(&buf, maxFrame)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("payload mismatch: got %d bytes, want %d", len(got), len(p))
		}
	}
	if _, err := readFrame(&buf, maxFrame); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func frameBytes(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameTornHeader(t *testing.T) {
	raw := frameBytes(t, []byte("payload"))
	for cut := 1; cut < frameHeaderSize; cut++ {
		_, err := readFrame(bytes.NewReader(raw[:cut]), maxFrame)
		if !errors.Is(err, ErrFrame) {
			t.Fatalf("torn header at %d: got %v, want ErrFrame", cut, err)
		}
	}
}

func TestFrameTornPayload(t *testing.T) {
	raw := frameBytes(t, []byte("payload"))
	for cut := frameHeaderSize; cut < len(raw); cut++ {
		_, err := readFrame(bytes.NewReader(raw[:cut]), maxFrame)
		if !errors.Is(err, ErrFrame) {
			t.Fatalf("torn payload at %d: got %v, want ErrFrame", cut, err)
		}
	}
}

func TestFrameOversized(t *testing.T) {
	hdr := binary.LittleEndian.AppendUint32(nil, maxFrame+1)
	hdr = binary.LittleEndian.AppendUint32(hdr, 0)
	_, err := readFrame(bytes.NewReader(hdr), maxFrame)
	if !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized length: got %v, want ErrFrame", err)
	}
	if err := writeFrame(io.Discard, make([]byte, maxFrame+1)); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized write: got %v, want ErrFrame", err)
	}
}

func TestFrameCorruptCRC(t *testing.T) {
	raw := frameBytes(t, []byte("payload"))
	// Flip one payload bit: the CRC must catch it.
	raw[len(raw)-1] ^= 0x01
	_, err := readFrame(bytes.NewReader(raw), maxFrame)
	if !errors.Is(err, ErrFrame) {
		t.Fatalf("corrupt payload: got %v, want ErrFrame", err)
	}
	// Flip a CRC bit with the payload intact: same verdict.
	raw = frameBytes(t, []byte("payload"))
	raw[5] ^= 0x80
	if _, err := readFrame(bytes.NewReader(raw), maxFrame); !errors.Is(err, ErrFrame) {
		t.Fatalf("corrupt CRC field: got %v, want ErrFrame", err)
	}
	// Sanity: the CRC in a clean frame actually covers the payload.
	raw = frameBytes(t, []byte("payload"))
	if crc := binary.LittleEndian.Uint32(raw[4:]); crc != crc32.ChecksumIEEE([]byte("payload")) {
		t.Fatalf("frame CRC %08x does not cover payload", crc)
	}
}
