package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/store"
)

// haBatches builds n individually valid batches by evolving a clone of g,
// and returns them with the final reference graph (g + all n batches).
func haBatches(t *testing.T, g *graph.Graph, n, count int, seed int64) ([]graph.Batch, *graph.Graph) {
	t.Helper()
	ref := g.Clone()
	batches := make([]graph.Batch, 0, n)
	for i := 0; i < n; i++ {
		b := gen.Updates(ref, gen.UpdateSpec{Count: count, InsertRatio: 0.6, Locality: 0.5, Seed: seed + int64(i)})
		if err := ref.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		batches = append(batches, b)
	}
	return batches, ref
}

// redialLinks opens a fresh session to every worker behind links — the
// connections a successor coordinator attaches over.
func redialLinks(t *testing.T, links []Link) []Link {
	t.Helper()
	out := make([]Link, len(links))
	for i := range links {
		conn, err := links[i].Redial()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = Link{Conn: conn, Name: links[i].Name, Redial: links[i].Redial}
	}
	return out
}

func TestClusterReplicationQuorum(t *testing.T) {
	g := testGraph(t, 8)
	links, _, stop := InProcess(2)
	defer stop()
	co, err := NewCoordinatorWith(g, links, CoordinatorOptions{Term: 1, Repl: ReplQuorum})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	batches, ref := haBatches(t, g, 6, 60, 300)
	for i, b := range batches {
		if err := co.Apply(b, commitLocal(g)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if !g.Equal(ref) {
		t.Fatal("replicated run diverged from reference application")
	}
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("replicas diverged: %v", err)
	}
	if got := co.ReplSeq(); got != 6 {
		t.Fatalf("replication seq = %d, want 6", got)
	}
	if got := co.ReplDegraded(); got != 0 {
		t.Fatalf("degraded batches = %d, want 0", got)
	}
	if co.ReplShipped() == 0 {
		t.Fatal("no replicate requests shipped")
	}
	var replicated, gaps uint64
	for _, st := range co.Stats() {
		replicated += st.Remote.Replicated
		gaps += st.Remote.ReplGaps
		if st.Remote.Term != 1 {
			t.Fatalf("worker %s at term %d, want 1", st.Name, st.Remote.Term)
		}
	}
	if replicated == 0 {
		t.Fatal("workers report no replicated records")
	}
	if gaps != 0 {
		t.Fatalf("workers report %d gaps on a clean run", gaps)
	}

	// The currency proof behind replica reads: a hello-less connection can
	// ask any worker for its per-shard replication state, and a shard whose
	// log is current proves the latest committed generation.
	seen := make(map[int]bool)
	var maxSeq uint64
	for i := range links {
		conn, err := links[i].Redial()
		if err != nil {
			t.Fatal(err)
		}
		states, err := FetchReplStates(conn, time.Second)
		conn.Close()
		if err != nil {
			t.Fatalf("repl states from worker %d: %v", i, err)
		}
		for s, rs := range states {
			seen[s] = true
			if rs.LastSeq > maxSeq {
				maxSeq = rs.LastSeq
			}
			if rs.LastSeq == co.ReplSeq() && rs.Gen != g.Generation() {
				t.Fatalf("shard %d current at seq %d but gen %d, want %d", s, rs.LastSeq, rs.Gen, g.Generation())
			}
		}
	}
	if len(seen) != 8 {
		t.Fatalf("repl states cover %d shards, want 8", len(seen))
	}
	if maxSeq != co.ReplSeq() {
		t.Fatalf("max replicated seq = %d, want %d", maxSeq, co.ReplSeq())
	}
}

func TestClusterReplicationGapHealsByResync(t *testing.T) {
	g := testGraph(t, 8)
	links, _, stop := InProcess(2)
	defer stop()
	// Drop the first replicate shipped to worker 0: its shard chains fall
	// behind, the next replicate for those shards reports a gap, and the
	// coordinator heals by parcel resync.
	script := NewFaultScript(7, FaultRule{
		Dir: FaultOut, Frame: -1, Msg: byte(msgReplicate), Action: FaultDrop, Count: 1,
	})
	links[0] = script.WrapLink(links[0])
	co, err := NewCoordinatorWith(g, links, CoordinatorOptions{
		Term: 1, Repl: ReplQuorum, CallTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	batches, ref := haBatches(t, g, 5, 60, 400)
	for i, b := range batches {
		// Replication failures must never fail the commit.
		if err := co.Apply(b, commitLocal(g)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if len(script.Events()) == 0 {
		t.Fatal("fault rule never fired")
	}
	if co.ReplDegraded() == 0 {
		t.Fatal("dropped replicate not counted as degraded")
	}
	if co.Resyncs() == 0 {
		t.Fatal("gapped shards were never resynced")
	}
	var gaps uint64
	for _, st := range co.Stats() {
		gaps += st.Remote.ReplGaps
	}
	if gaps == 0 {
		t.Fatal("workers report no replication gaps")
	}
	if !g.Equal(ref) {
		t.Fatal("graph diverged across replication faults")
	}
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("replicas diverged after gap healing: %v", err)
	}
}

func TestClusterFencingRejectsDeposedCoordinator(t *testing.T) {
	g := testGraph(t, 8)
	links, _, stop := InProcess(2)
	defer stop()
	co1, err := NewCoordinatorWith(g, links, CoordinatorOptions{Term: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer co1.Close()
	batches, _ := haBatches(t, g, 3, 50, 600)
	if err := co1.Apply(batches[0], commitLocal(g)); err != nil {
		t.Fatal(err)
	}

	// A successor attaches over fresh sessions at a higher term.
	g2 := g.Clone()
	co2, err := NewCoordinatorWith(g2, redialLinks(t, links), CoordinatorOptions{Term: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()

	// The deposed coordinator's writes bounce off the fence...
	before := g.Clone()
	err = co1.Apply(batches[1], commitLocal(g))
	if err == nil || !strings.Contains(err.Error(), "fenced") {
		t.Fatalf("deposed apply: got %v, want fenced", err)
	}
	if !g.Equal(before) {
		t.Fatal("fenced apply mutated the deposed coordinator's graph")
	}
	// ...including the resync path its abort queued up.
	if err = co1.Apply(batches[1], commitLocal(g)); err == nil || !strings.Contains(err.Error(), "fenced") {
		t.Fatalf("deposed resync: got %v, want fenced", err)
	}
	// A low-term hello cannot rejoin either.
	conn, err := links[0].Redial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err = roundTrip(conn, encodeHello(g.NumShards(), 1)); err == nil || !strings.Contains(err.Error(), "fenced") {
		t.Fatalf("low-term hello: got %v, want fenced", err)
	}

	// The successor operates normally.
	if err := co2.Apply(batches[1], commitLocal(g2)); err != nil {
		t.Fatalf("successor apply: %v", err)
	}
	if err := co2.VerifyAll(); err != nil {
		t.Fatalf("successor replicas diverged: %v", err)
	}
}

func TestClusterStandbyPromoteRecoversIdentically(t *testing.T) {
	g := testGraph(t, 8)
	batches, ref := haBatches(t, g, 8, 60, 500)
	links, _, stop := InProcess(2)
	defer stop()

	// The standby attaches before any batch, so the handshake snapshot is
	// the initial state and the whole run arrives through the feed.
	hub := NewHub(HubOptions{
		Term:      1,
		Heartbeat: 50 * time.Millisecond,
		Snapshot: func() (uint64, uint64, []byte, error) {
			var buf bytes.Buffer
			if err := store.WriteSnapshot(&buf, g); err != nil {
				return 0, 0, nil, err
			}
			return 0, g.Generation(), buf.Bytes(), nil
		},
	})
	var (
		sgMu sync.Mutex
		sg   *graph.Graph
	)
	standby := NewStandby(StandbyOptions{
		TTL: time.Second,
		Load: func(term, seq, gen uint64, snap []byte) error {
			loaded, err := store.ReadSnapshot(bytes.NewReader(snap), int64(len(snap)))
			if err != nil {
				return err
			}
			sgMu.Lock()
			sg = loaded
			sgMu.Unlock()
			return nil
		},
		Apply: func(seq, postGen uint64, b graph.Batch) error {
			sgMu.Lock()
			defer sgMu.Unlock()
			if err := sg.ApplyBatch(b); err != nil {
				return err
			}
			if sg.Generation() != postGen {
				return fmt.Errorf("standby at gen %d after seq %d, primary said %d", sg.Generation(), seq, postGen)
			}
			return nil
		},
	})
	hc, sc := net.Pipe()
	tailDone := make(chan error, 1)
	go hub.ServeConn(hc)
	go func() { tailDone <- standby.Run(sc) }()
	deadline := time.Now().Add(5 * time.Second)
	for hub.Standbys() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("standby never attached")
		}
		time.Sleep(time.Millisecond)
	}

	co1, err := NewCoordinatorWith(g, links, CoordinatorOptions{
		Term: 1, Repl: ReplQuorum, OnCommit: hub.Feed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co1.Close()
	for i := 0; i < 4; i++ {
		if err := co1.Apply(batches[i], commitLocal(g)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	// Feeds are enqueued in commit order but acked asynchronously; wait
	// for the standby to drain the stream before severing it.
	deadline = time.Now().Add(5 * time.Second)
	for standby.LastSeq() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("standby at seq %d after 4 commits, want 4", standby.LastSeq())
		}
		time.Sleep(time.Millisecond)
	}

	// The primary dies mid-stream: feed severed, coordinator abandoned
	// without Close — its worker sessions stay open, like a hung process.
	hub.Close()
	hc.Close()
	if err := <-tailDone; err == nil {
		t.Fatal("standby tail survived a severed feed")
	}

	// Promote: the standby's graph becomes authoritative under term+1.
	sgMu.Lock()
	promoted := sg
	sgMu.Unlock()
	if promoted.Generation() != standby.Gen() {
		t.Fatalf("promoted graph at gen %d, standby tracked %d", promoted.Generation(), standby.Gen())
	}
	co2, err := NewCoordinatorWith(promoted, redialLinks(t, links), CoordinatorOptions{
		Term: standby.Term() + 1, Repl: ReplQuorum,
	})
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer co2.Close()
	for i := 4; i < 8; i++ {
		if err := co2.Apply(batches[i], commitLocal(promoted)); err != nil {
			t.Fatalf("post-promotion batch %d: %v", i, err)
		}
	}

	// The deposed primary's late commit is fenced out.
	late := gen.Updates(g.Clone(), gen.UpdateSpec{Count: 30, InsertRatio: 0.6, Locality: 0.5, Seed: 99})
	if err := co1.Apply(late, commitLocal(g)); err == nil || !strings.Contains(err.Error(), "fenced") {
		t.Fatalf("deposed late commit: got %v, want fenced", err)
	}

	// Recovery is byte-identical to the uninterrupted run: same graph, and
	// the canonical snapshot encodings match byte for byte.
	if !promoted.Equal(ref) {
		t.Fatal("promoted graph diverged from the uninterrupted reference run")
	}
	var got, want bytes.Buffer
	if err := store.WriteSnapshot(&got, promoted); err != nil {
		t.Fatal(err)
	}
	if err := store.WriteSnapshot(&want, ref); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("recovered snapshot differs from the uninterrupted run's")
	}
	if err := co2.VerifyAll(); err != nil {
		t.Fatalf("replicas diverged after failover: %v", err)
	}
}

// TestHubFeedCommitOrderUnderConcurrentCommits pins the ordering
// guarantee behind standby replication: OnCommit runs inside the
// coordinator's commit critical section, so shard-disjoint batches
// committing concurrently can never reach the hub out of sequence. The
// standby here is stricter than incgraphd's — it requires gapless,
// strictly increasing sequences AND the exact post-commit generation —
// so a single inverted feed fails the run.
func TestHubFeedCommitOrderUnderConcurrentCommits(t *testing.T) {
	g := testGraph(t, 8)
	links, _, stop := InProcess(2)
	defer stop()

	hub := NewHub(HubOptions{
		Term:      1,
		Heartbeat: 50 * time.Millisecond,
		Snapshot: func() (uint64, uint64, []byte, error) {
			var buf bytes.Buffer
			if err := store.WriteSnapshot(&buf, g); err != nil {
				return 0, 0, nil, err
			}
			return 0, g.Generation(), buf.Bytes(), nil
		},
	})
	var (
		sgMu    sync.Mutex
		sg      *graph.Graph
		lastSeq uint64
	)
	standby := NewStandby(StandbyOptions{
		TTL: 5 * time.Second,
		Load: func(term, seq, gen uint64, snap []byte) error {
			loaded, err := store.ReadSnapshot(bytes.NewReader(snap), int64(len(snap)))
			if err != nil {
				return err
			}
			sgMu.Lock()
			sg = loaded
			sgMu.Unlock()
			return nil
		},
		Apply: func(seq, postGen uint64, b graph.Batch) error {
			sgMu.Lock()
			defer sgMu.Unlock()
			if seq != lastSeq+1 {
				return fmt.Errorf("feed seq %d after %d: out of commit order", seq, lastSeq)
			}
			lastSeq = seq
			if err := sg.ApplyBatch(b); err != nil {
				return err
			}
			if sg.Generation() != postGen {
				return fmt.Errorf("standby at gen %d after seq %d, primary said %d", sg.Generation(), seq, postGen)
			}
			return nil
		},
	})
	hc, sc := net.Pipe()
	tailDone := make(chan error, 1)
	go hub.ServeConn(hc)
	go func() { tailDone <- standby.Run(sc) }()
	deadline := time.Now().Add(5 * time.Second)
	for hub.Standbys() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("standby never attached")
		}
		time.Sleep(time.Millisecond)
	}

	// The hook adds seq-dependent latency (a stand-in for variable record
	// encode time): the ordering guarantee must come from the coordinator
	// serializing OnCommit with the commit, not from the hook being fast.
	co, err := NewCoordinatorWith(g, links, CoordinatorOptions{
		Term: 1, Repl: ReplAsync,
		OnCommit: func(seq, preGen, postGen uint64, b graph.Batch) {
			time.Sleep(time.Duration(seq%3) * time.Millisecond)
			hub.Feed(seq, preGen, postGen, b)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// Rounds of single-shard batches with disjoint TouchedShards fired
	// concurrently (the TestDisjointBatchesRouteConcurrently workload), so
	// overlapping-in-time commits are the norm, not the exception.
	var total uint64
	for round := 0; round < 5; round++ {
		scratch := g.Clone()
		all := gen.Updates(scratch, gen.UpdateSpec{Count: 200, InsertRatio: 0.6, Locality: 0.3, Seed: 500 + int64(round)})
		byShard := make(map[int]graph.Batch)
		for _, u := range all {
			if sf, st := g.ShardOf(u.From), g.ShardOf(u.To); sf == st {
				byShard[sf] = append(byShard[sf], u)
			}
		}
		check := g.Clone()
		var batches []graph.Batch
		for s := 0; s < 8; s++ {
			if b := byShard[s]; len(b) > 0 && check.ValidateBatch(b) == nil {
				if err := check.ApplyBatch(b); err != nil {
					t.Fatal(err)
				}
				batches = append(batches, b)
			}
		}
		var wg sync.WaitGroup
		errs := make([]error, len(batches))
		for i, b := range batches {
			wg.Add(1)
			go func(i int, b graph.Batch) {
				defer wg.Done()
				errs[i] = co.Apply(b, commitLocal(g))
			}(i, b)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d batch %d: %v", round, i, err)
			}
		}
		total += uint64(len(batches))
	}

	// Drain the feed; a tail death here means an out-of-order or
	// generation-mismatched record got through.
	deadline = time.Now().Add(10 * time.Second)
	for standby.LastSeq() != total {
		select {
		case err := <-tailDone:
			t.Fatalf("standby tail died mid-stream: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby at seq %d, want %d", standby.LastSeq(), total)
		}
		time.Sleep(time.Millisecond)
	}
	sgMu.Lock()
	diverged := !sg.Equal(g)
	sgMu.Unlock()
	if diverged {
		t.Fatal("standby graph diverged from primary after concurrent commits")
	}
	hub.Close()
	hc.Close()
	<-tailDone
}

func TestStandbyLeaseExpires(t *testing.T) {
	// A hub that never heartbeats after the handshake is indistinguishable
	// from a dead primary: the standby's lease lapses.
	hub := NewHub(HubOptions{
		Term:      3,
		Heartbeat: time.Hour,
		Snapshot:  func() (uint64, uint64, []byte, error) { return 7, 9, nil, nil },
	})
	standby := NewStandby(StandbyOptions{
		TTL: 100 * time.Millisecond,
		Load: func(term, seq, gen uint64, snap []byte) error {
			if term != 3 || seq != 7 || gen != 9 {
				return fmt.Errorf("handshake (%d,%d,%d), want (3,7,9)", term, seq, gen)
			}
			return nil
		},
		Apply: func(uint64, uint64, graph.Batch) error { return nil },
	})
	hc, sc := net.Pipe()
	defer hc.Close()
	go hub.ServeConn(hc)
	err := standby.Run(sc)
	if !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("silent primary: got %v, want ErrLeaseExpired", err)
	}
	if standby.Term() != 3 || standby.LastSeq() != 7 || standby.Gen() != 9 {
		t.Fatalf("standby position (%d,%d,%d), want (3,7,9)", standby.Term(), standby.LastSeq(), standby.Gen())
	}
}

// runFaultDrill is one chaos drill: drop the first phase-1 apply, let the
// batch abort on its call deadline, and verify the retry resyncs and the
// run converges. It returns the script's event log — the determinism pin.
func runFaultDrill(t *testing.T) []string {
	t.Helper()
	g := testGraph(t, 8)
	links, _, stop := InProcess(1)
	defer stop()
	script := NewFaultScript(42, FaultRule{
		Dir: FaultOut, Frame: -1, Msg: byte(msgApply), Action: FaultDrop, Count: 1,
	})
	links[0] = script.WrapLink(links[0])
	co, err := NewCoordinatorWith(g, links, CoordinatorOptions{CallTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	batches, ref := haBatches(t, g, 2, 40, 900)
	if err := co.Apply(batches[0], commitLocal(g)); err == nil {
		t.Fatal("apply survived a dropped phase-1 frame")
	}
	for i, b := range batches {
		if err := co.Apply(b, commitLocal(g)); err != nil {
			t.Fatalf("batch %d after fault: %v", i, err)
		}
	}
	if co.Resyncs() == 0 {
		t.Fatal("aborted batch never resynced")
	}
	if !g.Equal(ref) {
		t.Fatal("drill run diverged from reference application")
	}
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("replicas diverged after drill: %v", err)
	}
	return script.Events()
}

func TestClusterFaultDrillDeterministic(t *testing.T) {
	first := runFaultDrill(t)
	second := runFaultDrill(t)
	if len(first) == 0 {
		t.Fatal("drill fired no faults")
	}
	if !strings.Contains(first[0], "apply drop") {
		t.Fatalf("unexpected first event %q", first[0])
	}
	if !slices.Equal(first, second) {
		t.Fatalf("drill not deterministic:\n  first:  %v\n  second: %v", first, second)
	}
}

func TestClusterConcurrentDisjointBatchAbort(t *testing.T) {
	g := testGraph(t, 8)
	links, _, stop := InProcess(2)
	defer stop()
	// Worker 1 loses the first phase-1 apply sent to it; worker 0 is
	// healthy. Two shard-disjoint batches race: the one routed to worker 1
	// must abort alone, the other must commit.
	script := NewFaultScript(11, FaultRule{
		Dir: FaultOut, Frame: -1, Msg: byte(msgApply), Action: FaultDrop, Count: 1,
	})
	links[1] = script.WrapLink(links[1])
	co, err := NewCoordinatorWith(g, links, CoordinatorOptions{CallTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// Two individually valid single-shard batches owned by different
	// workers (shard s lives on worker s%2).
	g0 := g.Clone()
	all := gen.Updates(g.Clone(), gen.UpdateSpec{Count: 300, InsertRatio: 0.6, Locality: 0.3, Seed: 78})
	byShard := make(map[int]graph.Batch)
	for _, u := range all {
		if sf, st := g.ShardOf(u.From), g.ShardOf(u.To); sf == st {
			byShard[sf] = append(byShard[sf], u)
		}
	}
	pick := func(worker int) graph.Batch {
		for s := 0; s < 8; s++ {
			if s%2 == worker {
				if b := byShard[s]; len(b) > 0 && g.ValidateBatch(b) == nil {
					return b
				}
			}
		}
		t.Skipf("workload produced no single-shard batch for worker %d", worker)
		return nil
	}
	bA, bB := pick(0), pick(1)

	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = co.Apply(bA, commitLocal(g)) }()
	go func() { defer wg.Done(); errB = co.Apply(bB, commitLocal(g)) }()
	wg.Wait()
	if errA != nil {
		t.Fatalf("batch on the healthy worker: %v", errA)
	}
	if errB == nil {
		t.Fatal("batch on the faulted worker survived a dropped phase-1 frame")
	}

	// The aborted batch's shards resync cleanly and the retry commits.
	if err := co.Apply(bB, commitLocal(g)); err != nil {
		t.Fatalf("retry after abort: %v", err)
	}
	if co.Resyncs() == 0 {
		t.Fatal("no resync after aborted batch")
	}
	ref := g0
	if err := ref.ApplyBatch(bA); err != nil {
		t.Fatal(err)
	}
	if err := ref.ApplyBatch(bB); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(ref) {
		t.Fatal("concurrent abort left the graph diverged")
	}
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("replicas diverged after concurrent abort: %v", err)
	}
}

func TestDialerRetriesAndBackoff(t *testing.T) {
	// A dead port exhausts the attempt budget.
	d := &Dialer{Timeout: 200 * time.Millisecond, Attempts: 3, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 1}
	if _, err := d.Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial of a dead port succeeded")
	}
	if got := d.Retries(); got != 3 {
		t.Fatalf("retries = %d, want 3", got)
	}

	// A live listener connects on the first attempt, and the link exposes
	// the dialer's counter for Stats.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	d2 := &Dialer{Timeout: time.Second, Attempts: 3, Backoff: time.Millisecond, Seed: 1}
	link, err := d2.Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial of live listener: %v", err)
	}
	link.Conn.Close()
	if got := d2.Retries(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	if link.Retries == nil || link.Retries.Load() != 1 {
		t.Fatal("link does not expose the dialer's retry counter")
	}
}
