package cluster

// Tests of the pipelined commit machinery added with the group-commit
// protocol: the ordering contract of the OnCommit/replication hooks
// under concurrent shard-disjoint commits, and the overlapped commit
// path that lets such commits skip the exclusive commit section. Run
// with -race these double as the concurrency audit of the coalescing
// queue and the graph's overlapped-apply guards.

import (
	"sync"
	"testing"
	"time"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

// disjointBatches builds valid batches with pairwise-disjoint
// TouchedShards (every update stays inside one shard) so they may be
// fired concurrently in any order.
func disjointBatches(t *testing.T, g *graph.Graph, seed int64) []graph.Batch {
	t.Helper()
	scratch := g.Clone()
	all := gen.Updates(scratch, gen.UpdateSpec{Count: 240, InsertRatio: 0.6, Locality: 0.3, Seed: seed})
	byShard := make(map[int]graph.Batch)
	for _, u := range all {
		if sf, st := g.ShardOf(u.From), g.ShardOf(u.To); sf == st {
			byShard[sf] = append(byShard[sf], u)
		}
	}
	check := g.Clone()
	var batches []graph.Batch
	for s := 0; s < g.NumShards(); s++ {
		if b := byShard[s]; len(b) > 0 && check.ValidateBatch(b) == nil {
			if err := check.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
			batches = append(batches, b)
		}
	}
	if len(batches) < 2 {
		t.Fatalf("workload produced %d disjoint batches; want at least 2", len(batches))
	}
	return batches
}

// TestCommitHookOrderUnderDisjointConcurrency pins the ordering contract
// of the serialized commit section: shard-disjoint batches committed
// concurrently (phase 1 overlapping, coalesced or not) must still drive
// the OnCommit hook with densely increasing sequence numbers and a
// gapless generation chain — the invariant the HA hub's standby feed and
// the per-shard replica logs are built on.
func TestCommitHookOrderUnderDisjointConcurrency(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts CoordinatorOptions
	}{
		{"coalesced", CoordinatorOptions{}},
		{"no-coalesce", CoordinatorOptions{NoCoalesce: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := testGraph(t, 8)
			links, _, stop := InProcess(2)
			defer stop()
			type ev struct{ seq, preGen, postGen uint64 }
			var mu sync.Mutex
			var events []ev
			opts := tc.opts
			opts.Term = 1
			opts.Repl = ReplAsync
			opts.OnCommit = func(seq, preGen, postGen uint64, b graph.Batch) {
				mu.Lock()
				events = append(events, ev{seq, preGen, postGen})
				mu.Unlock()
			}
			co, err := NewCoordinatorWith(g, links, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer co.Close()

			total := 0
			for round := 0; round < 4; round++ {
				batches := disjointBatches(t, g, 900+int64(round))
				var wg sync.WaitGroup
				errs := make([]error, len(batches))
				for i, b := range batches {
					wg.Add(1)
					go func(i int, b graph.Batch) {
						defer wg.Done()
						errs[i] = co.Apply(b, commitLocal(g))
					}(i, b)
				}
				wg.Wait()
				for i, err := range errs {
					if err != nil {
						t.Fatalf("round %d batch %d: %v", round, i, err)
					}
				}
				total += len(batches)
			}

			mu.Lock()
			got := append([]ev(nil), events...)
			mu.Unlock()
			if len(got) != total {
				t.Fatalf("OnCommit fired %d times for %d commits", len(got), total)
			}
			for i, e := range got {
				if e.seq != uint64(i+1) {
					t.Fatalf("feed order broken: event %d carries seq %d", i, e.seq)
				}
				if i > 0 && e.preGen != got[i-1].postGen {
					t.Fatalf("generation chain broken at seq %d: preGen %d, want %d",
						e.seq, e.preGen, got[i-1].postGen)
				}
			}

			// Replication rides the same order: every record ships without
			// tripping the per-shard sequence chain (a gap or inversion
			// would count as degraded and force a resync).
			deadline := time.Now().Add(10 * time.Second)
			for co.ReplShipped() < uint64(total) {
				if time.Now().After(deadline) {
					t.Fatalf("replication shipped %d of %d records", co.ReplShipped(), total)
				}
				time.Sleep(time.Millisecond)
			}
			if n := co.ReplDegraded(); n != 0 {
				t.Fatalf("replication order broken: %d records arrived gapped", n)
			}
			if err := co.VerifyAll(); err != nil {
				t.Fatalf("replicas diverged: %v", err)
			}
		})
	}
}

// TestOverlappedDisjointCommits drives the overlapped commit path:
// Overlappable commits of shard-disjoint batches run their phase-2
// merges concurrently (commitMu held as readers) and must still leave
// the graph, and every worker replica, exactly where a serial run would.
func TestOverlappedDisjointCommits(t *testing.T) {
	g := testGraph(t, 8)
	links, _, stop := InProcess(2)
	defer stop()
	co, err := NewCoordinator(g, links)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	want := g.Clone() // serial reference
	for round := 0; round < 4; round++ {
		batches := disjointBatches(t, g, 1700+int64(round))
		for _, b := range batches {
			if err := want.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		errs := make([]error, len(batches))
		for i, b := range batches {
			wg.Add(1)
			go func(i int, b graph.Batch) {
				defer wg.Done()
				errs[i] = co.ApplyCommit(b, time.Time{}, Commit{
					Apply:        func(bb graph.Batch) error { return g.ApplyBatch(bb) },
					Overlappable: true,
				})
			}(i, b)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d batch %d: %v", round, i, err)
			}
		}
	}

	if !g.Equal(want) || !want.Equal(g) {
		t.Fatal("overlapped commits diverged from the serial reference")
	}
	if err := co.VerifyAll(); err != nil {
		t.Fatalf("replicas diverged: %v", err)
	}
	if n := co.RemoteErrors(); n != 0 {
		t.Fatalf("stream recorded %d remote errors", n)
	}
}
