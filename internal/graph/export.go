package graph

import "fmt"

// Per-shard state export and import. This is the substrate half of the
// durability subsystem (internal/store): a snapshot serializes each shard
// independently — node table, dense-slot allocator, adjacency — and a load
// reconstructs the shards in parallel, then finishes the graph-global
// state (inverted label index, edge count, slot ceiling) serially. The
// round trip restores the graph exactly, slot assignment included, so
// traversal schedules, scratch sizing and every downstream answer are
// identical to the pre-snapshot graph. The shard is also the intended unit
// of a future multi-process deployment: the same per-shard encoding a
// snapshot writes to disk is what a distributed incgraph would ship over
// RPC.
//
// Contract: ExportShard reads are safe whenever the graph is
// read-shareable (between mutations); distinct shards may be exported
// concurrently. LoadShard writes only shard-owned state, so distinct
// shards of a fresh graph may load concurrently (ParallelFor in
// internal/store does exactly that); FinishLoad then runs exactly once,
// serially, after every LoadShard completed.

// ShardNodeState is the serializable state of one node: identity, interned
// label, dense slot, and both adjacency directions in ascending order.
type ShardNodeState struct {
	ID    NodeID
	Label LabelID
	// Slot is the node's global dense slot (local·P + shard).
	Slot int32
	// Out and In list the adjacency ascending. On export the slices are
	// borrowed from the graph (valid until the next mutation); on load
	// ownership transfers to the graph.
	Out, In []NodeID
}

// ShardState is the serializable state of one shard: its nodes in
// ascending ID order (the stable encode order of the snapshot format) and
// its dense-slot allocator.
type ShardState struct {
	// Nodes is ascending by ID.
	Nodes []ShardNodeState
	// SlotCap is the number of local slot indices ever issued.
	SlotCap int32
	// Free lists the recycled local slot indices (order preserved: it is
	// allocator state, popped LIFO).
	Free []int32
}

// ExportShard returns the state of shard s in the stable encode order
// (nodes ascending by ID, adjacency ascending). The adjacency slices are
// borrowed from the graph: valid until the next mutation, do not mutate.
// The free-list slice is copied.
func (g *Graph) ExportShard(s int) ShardState {
	sh := &g.shards[s]
	st := ShardState{
		Nodes:   make([]ShardNodeState, 0, len(sh.nodes)),
		SlotCap: sh.slotCap,
	}
	if len(sh.free) > 0 {
		st.Free = make([]int32, len(sh.free))
		copy(st.Free, sh.free)
	}
	for _, v := range g.ShardNodesSorted(s) {
		rec := sh.nodes[v]
		st.Nodes = append(st.Nodes, ShardNodeState{
			ID:    v,
			Label: rec.label,
			Slot:  rec.slot,
			Out:   rec.out.sorted(),
			In:    rec.in.sorted(),
		})
	}
	return st
}

// LoadShard installs st as the complete state of shard s. The graph must
// be freshly created (NewSharded) and shard s must not have been loaded
// before. It writes only shard-owned state, so distinct shards may load
// concurrently; call FinishLoad once afterwards to rebuild the
// graph-global indexes. Adjacency slices in st transfer ownership to the
// graph.
func (g *Graph) LoadShard(s int, st ShardState) error {
	if s < 0 || s >= len(g.shards) {
		return fmt.Errorf("graph: LoadShard: shard %d out of range [0,%d)", s, len(g.shards))
	}
	sh := &g.shards[s]
	if len(sh.nodes) != 0 {
		return fmt.Errorf("graph: LoadShard: shard %d already populated", s)
	}
	// Allocator invariant: every local slot ever issued is either held by
	// a live node or parked on the free list, so the cap is exactly their
	// sum. Enforcing it both rejects corrupt state and bounds the
	// used-slot table below by the size of the decoded data.
	if int(st.SlotCap) != len(st.Nodes)+len(st.Free) {
		return fmt.Errorf("graph: LoadShard: shard %d slot cap %d != %d nodes + %d free",
			s, st.SlotCap, len(st.Nodes), len(st.Free))
	}
	p := int32(len(g.shards))
	// used tracks local slot occupancy: a duplicate would alias two nodes
	// onto one epoch-stamped scratch slot and silently corrupt traversals.
	used := make([]bool, st.SlotCap)
	claim := func(local int32) bool {
		if local < 0 || local >= st.SlotCap || used[local] {
			return false
		}
		used[local] = true
		return true
	}
	for _, f := range st.Free {
		if !claim(f) {
			return fmt.Errorf("graph: LoadShard: shard %d free list has invalid or duplicate slot %d", s, f)
		}
	}
	sh.slotCap = st.SlotCap
	if len(st.Free) > 0 {
		sh.free = make([]int32, len(st.Free))
		copy(sh.free, st.Free)
	}
	var prev NodeID
	for i, n := range st.Nodes {
		if i > 0 && n.ID <= prev {
			return fmt.Errorf("graph: LoadShard: shard %d nodes not ascending at %d", s, n.ID)
		}
		prev = n.ID
		if int(g.shardIdxOf(n.ID)) != s {
			return fmt.Errorf("graph: LoadShard: node %d does not hash to shard %d", n.ID, s)
		}
		if n.Slot < 0 || n.Slot%p != int32(s) || !claim(n.Slot/p) {
			return fmt.Errorf("graph: LoadShard: node %d has invalid or duplicate slot %d for shard %d", n.ID, n.Slot, s)
		}
		if !ascending(n.Out) || !ascending(n.In) {
			return fmt.Errorf("graph: LoadShard: node %d adjacency not strictly ascending", n.ID)
		}
		sh.nodes[n.ID] = &node{
			label: n.Label,
			slot:  n.Slot,
			out:   adjSetFromSorted(n.Out),
			in:    adjSetFromSorted(n.In),
		}
	}
	return nil
}

// ascending reports whether vs is strictly ascending.
func ascending(vs []NodeID) bool {
	for i := 1; i < len(vs); i++ {
		if vs[i] <= vs[i-1] {
			return false
		}
	}
	return true
}

// FinishLoad completes a per-shard load: it rebuilds the inverted label
// index and the edge count from the loaded node records, restores the slot
// ceiling, and stamps the graph with the snapshot's mutation generation.
// Call it exactly once, serially, after every LoadShard returned.
func (g *Graph) FinishLoad(gen uint64) error {
	edges, inEdges := 0, 0
	for s := range g.shards {
		sh := &g.shards[s]
		for _, v := range g.ShardNodesSorted(s) {
			rec := sh.nodes[v]
			g.labelIndexAdd(rec.label, v)
			edges += rec.out.len()
			inEdges += rec.in.len()
		}
	}
	if edges != inEdges {
		return fmt.Errorf("graph: FinishLoad: out-degree sum %d != in-degree sum %d", edges, inEdges)
	}
	g.edges = edges
	g.refreshSlotCeil()
	g.gen = gen
	// The label index was just built with mutating adds; leave no stale
	// dirty queue behind for the first concurrent read.
	g.PrepareConcurrentReads()
	return nil
}

// ValidateBatch reports whether ApplyBatch(b) would succeed against the
// current graph, without mutating it: the same sequential applicability
// rule Apply enforces (no insertion of an existing edge, no deletion of a
// missing one, tracked through the running in-batch state). The durability
// layer validates a batch before appending it to the write-ahead log, so a
// logged batch is always replayable.
func (g *Graph) ValidateBatch(b Batch) error {
	exists := make(map[Edge]bool, len(b))
	for i, u := range b {
		e := u.Edge()
		cur, seen := exists[e]
		if !seen {
			cur = g.HasEdge(u.From, u.To)
		}
		switch u.Op {
		case Insert:
			if cur {
				return fmt.Errorf("update %d: %w: insert of existing edge (%d,%d)", i, ErrBadUpdate, u.From, u.To)
			}
			exists[e] = true
		case Delete:
			if !cur {
				return fmt.Errorf("update %d: %w: delete of missing edge (%d,%d)", i, ErrBadUpdate, u.From, u.To)
			}
			exists[e] = false
		default:
			return fmt.Errorf("update %d: %w: unknown op %v", i, ErrBadUpdate, u.Op)
		}
	}
	return nil
}
