package graph

// Tests for the concurrency layer: the worker-keyed scratch pool under
// concurrent and nested traversals, the eager sorted-cache flush of
// PrepareConcurrentReads, and the ParallelFor worker-pool primitive.
// Run with -race to make the concurrent cases meaningful.

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentTraversals hammers one read-shared graph with every
// traversal kernel from many goroutines and checks each result against
// the sequential answer: concurrent traversals must neither corrupt each
// other's visited state nor disagree with a lone run.
func TestConcurrentTraversals(t *testing.T) {
	g := warmGraph(t, 800)
	g.PrepareConcurrentReads()

	bfsCount := func(src NodeID) int {
		n := 0
		g.BFSFrom([]NodeID{src}, func(NodeID, int) bool { n++; return true })
		return n
	}
	hoodCount := func(src NodeID) int {
		n := 0
		g.ForEachWithin([]NodeID{src}, 3, func(NodeID, int) bool { n++; return true })
		return n
	}
	type want struct {
		src          NodeID
		bfs, hood    int
		reaches      bool
		shortestDist int
	}
	wants := make([]want, 64)
	for i := range wants {
		src := NodeID(i * 12)
		wants[i] = want{
			src:          src,
			bfs:          bfsCount(src),
			hood:         hoodCount(src),
			reaches:      g.Reaches(src, 799),
			shortestDist: g.ShortestDist(0, src),
		}
	}

	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				w := wants[(worker*20+rep*7)%len(wants)]
				if got := bfsCount(w.src); got != w.bfs {
					t.Errorf("concurrent BFSFrom(%d) reached %d nodes, want %d", w.src, got, w.bfs)
				}
				if got := hoodCount(w.src); got != w.hood {
					t.Errorf("concurrent ForEachWithin(%d) reached %d nodes, want %d", w.src, got, w.hood)
				}
				if got := g.Reaches(w.src, 799); got != w.reaches {
					t.Errorf("concurrent Reaches(%d,799) = %v, want %v", w.src, got, w.reaches)
				}
				if got := g.ShortestDist(0, w.src); got != w.shortestDist {
					t.Errorf("concurrent ShortestDist(0,%d) = %d, want %d", w.src, got, w.shortestDist)
				}
			}
		}(worker)
	}
	wg.Wait()
}

// TestConcurrentSortedReads mutates a hub past the map-mode threshold,
// flushes with PrepareConcurrentReads, and then reads the sorted adjacency
// and label index from many goroutines. Without the eager flush the lazy
// cache rebuild inside sorted() is a write that -race flags.
func TestConcurrentSortedReads(t *testing.T) {
	g := New()
	hub := NodeID(0)
	g.AddNode(hub, "hub")
	for i := 1; i <= 4*promoteDegree; i++ {
		g.AddNode(NodeID(i), "leaf")
		g.AddEdge(hub, NodeID(i))
	}
	// Dirty the map-mode caches: delete a few edges, relabel some nodes.
	for i := 1; i <= 4; i++ {
		g.DeleteEdge(hub, NodeID(i))
		g.AddNode(NodeID(i), "spare")
	}
	g.PrepareConcurrentReads()

	wantSucc := append([]NodeID(nil), g.SuccessorsSorted(hub)...)
	wantLeaves := g.NodesWithLabel("leaf")
	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				succ := g.SuccessorsSorted(hub)
				if len(succ) != len(wantSucc) {
					t.Errorf("SuccessorsSorted: %d successors, want %d", len(succ), len(wantSucc))
					return
				}
				for i := range succ {
					if succ[i] != wantSucc[i] {
						t.Errorf("SuccessorsSorted[%d] = %d, want %d", i, succ[i], wantSucc[i])
						return
					}
				}
				leaves := g.NodesWithLabel("leaf")
				if len(leaves) != len(wantLeaves) {
					t.Errorf("NodesWithLabel: %d leaves, want %d", len(leaves), len(wantLeaves))
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestNestedTraversalPooled pins the satellite fix: a kernel invoked from
// another kernel's callback draws its scratch from the pool instead of
// allocating a fresh visited array per inner call. The whole nested sweep
// (100 inner probes) must cost at most a handful of allocations — the old
// fallback paid one full buffer per probe.
func TestNestedTraversalPooled(t *testing.T) {
	g := warmGraph(t, 500)
	sources := []NodeID{0}
	reached := 0
	nested := func() {
		reached = 0
		g.BFSFrom(sources, func(v NodeID, _ int) bool {
			if v%5 == 0 && g.Reaches(v, 499) { // nested kernel per callback
				reached++
			}
			return true
		})
	}
	nested() // warm both pool tiers
	nested()
	if reached == 0 {
		t.Fatal("nested probes found nothing")
	}
	allocs := testing.AllocsPerRun(20, nested)
	// ~100 inner probes per run: the pre-pool fallback allocated one
	// visited array (and queue) per probe. Allow a little slack for a GC
	// clearing the overflow pool mid-measurement.
	if allocs > 10 {
		t.Fatalf("nested traversal: %.1f allocs/op, want ~0 (pool miss per inner call?)", allocs)
	}
}

// TestParallelForCoverageAndPanic checks the work-distribution primitive:
// every index runs exactly once, worker ids stay in range, sequential
// degradation works, and a worker panic surfaces on the caller.
func TestParallelForCoverageAndPanic(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 253
		hits := make([]int32, n)
		maxWorker := workers
		if maxWorker > n {
			maxWorker = n
		}
		ParallelFor(workers, n, func(worker, i int) {
			if worker < 0 || worker >= maxWorker {
				t.Errorf("worker id %d out of range [0,%d)", worker, maxWorker)
			}
			hits[i]++
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, h)
			}
		}
	}

	defer func() {
		if r := recover(); r == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
	}()
	ParallelFor(4, 100, func(_, i int) {
		if i == 13 {
			panic("boom")
		}
	})
}

// TestScratchPoolReuse checks the two-tier pool directly: a traversal
// returns its buffer, the next traversal reuses it (same backing array),
// and concurrent checkouts hand out distinct buffers.
func TestScratchPoolReuse(t *testing.T) {
	g := warmGraph(t, 100)
	s1 := g.acquire()
	g.release(s1)
	s2 := g.acquire()
	if s1 != s2 {
		t.Error("sequential acquire did not reuse the released buffer")
	}
	s3 := g.acquire()
	if s3 == s2 {
		t.Fatal("overlapping acquires returned the same buffer")
	}
	if len(s2.visited) < int(g.slotCeil) || len(s3.visited) < int(g.slotCeil) {
		t.Fatal("acquired buffer not sized to slotCeil")
	}
	g.release(s2)
	g.release(s3)
}

// TestCloneInheritsParallelismAndFlushes checks that clones carry the
// worker budget and that a clone of a graph with dirty sorted caches can
// serve concurrent sorted reads right after PrepareConcurrentReads.
func TestCloneInheritsParallelismAndFlushes(t *testing.T) {
	g := New()
	g.SetParallelism(3)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		g.AddNode(NodeID(i), "l")
	}
	for i := 0; i < 3000; i++ {
		v, w := NodeID(rng.Intn(200)), NodeID(rng.Intn(200))
		if v != w && !g.HasEdge(v, w) {
			g.AddEdge(v, w) // hubs promote to map mode with dirty caches
		}
	}
	c := g.Clone()
	if got := c.Parallelism(); got != 3 {
		t.Fatalf("clone Parallelism() = %d, want 3", got)
	}
	c.PrepareConcurrentReads()
	var wg sync.WaitGroup
	for worker := 0; worker < 4; worker++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = c.SuccessorsSorted(NodeID(i))
				_ = c.PredecessorsSorted(NodeID(i))
			}
		}()
	}
	wg.Wait()
}
