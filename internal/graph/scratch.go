package graph

// Traversal scratch space. Every graph owns a lock-free pool of scratch
// buffers, each holding an epoch-stamped visited array (indexed by the dense
// node slot assigned at AddNode) and reusable queue/stack backing arrays, so
// the BFS/DFS kernels in traverse.go allocate nothing on a warm graph.
//
// The pool is worker-keyed and lock-free: concurrent traversals — the
// parallel batch builds and repair fan-outs of kws/rpq/iso, or caller
// goroutines reading between mutations — each check out their own buffer,
// and nested traversals (a kernel invoked from another kernel's callback)
// simply check out a second one instead of corrupting the outer walk. Each
// buffer carries its own epoch counter, so stamps never leak between
// buffers, and release returns the buffer for reuse by any later traversal.
//
// Storage is two-tier: an atomic primary slot holds one buffer with a
// strong reference (so the single-threaded hot path stays allocation-free
// even across GCs), and a sync.Pool absorbs the overflow buffers that only
// exist while traversals actually overlap (GC reclaims those when the
// fan-out ends).

// qitem is one BFS frontier entry: a node and its hop distance.
type qitem struct {
	v NodeID
	d int32
}

type scratch struct {
	epoch   uint32
	visited []uint32 // slot -> epoch at which the slot was last seen
	queue   []qitem
	stack   []NodeID
}

// acquire checks a scratch buffer out of the graph's pool, ready for one
// traversal over g (visited sized to slotCeil, fresh epoch, empty queue and
// stack). Call g.release on the result when done. Safe for concurrent use
// as long as the graph is not mutated underneath (see the concurrency
// contract in the package comment).
func (g *Graph) acquire() *scratch {
	s := g.primaryScratch.Swap(nil)
	if s == nil {
		s, _ = g.scratchPool.Get().(*scratch)
	}
	if s == nil {
		s = &scratch{}
	}
	if n := int(g.slotCeil); len(s.visited) < n {
		grown := make([]uint32, n+n/2+8)
		copy(grown, s.visited)
		s.visited = grown
	}
	s.epoch++
	if s.epoch == 0 { // uint32 wrap: stale stamps could collide, reset all
		clear(s.visited)
		s.epoch = 1
	}
	s.queue = s.queue[:0]
	s.stack = s.stack[:0]
	return s
}

// release returns a scratch buffer to the pool: back into the primary
// slot when it is free, else into the overflow pool.
func (g *Graph) release(s *scratch) {
	if !g.primaryScratch.CompareAndSwap(nil, s) {
		g.scratchPool.Put(s)
	}
}

// seen stamps slot and reports whether it was already stamped this epoch.
func (s *scratch) seen(slot int32) bool {
	if s.visited[slot] == s.epoch {
		return true
	}
	s.visited[slot] = s.epoch
	return false
}
