package graph

// Traversal scratch space. Every graph owns one lazily grown scratch
// buffer holding an epoch-stamped visited array (indexed by the dense node
// slot assigned at AddNode) and reusable queue/stack backing arrays, so the
// BFS/DFS kernels in traverse.go allocate nothing on a warm graph.
//
// Graphs are not safe for concurrent use (that has always been the
// contract), so a single buffer suffices; the inUse flag makes *nested*
// traversals — a kernel invoked from another kernel's callback — fall back
// to a freshly allocated buffer instead of corrupting the outer walk.

// qitem is one BFS frontier entry: a node and its hop distance.
type qitem struct {
	v NodeID
	d int32
}

type scratch struct {
	inUse   bool
	epoch   uint32
	visited []uint32 // slot -> epoch at which the slot was last seen
	queue   []qitem
	stack   []NodeID
}

// acquire returns a scratch buffer ready for one traversal over g: the
// graph's own buffer when free, or a throwaway one when a traversal is
// already running. Call release on the result when done.
func (g *Graph) acquire() *scratch {
	s := &g.scratch
	if s.inUse {
		s = &scratch{}
	}
	s.inUse = true
	if n := int(g.slotCap); len(s.visited) < n {
		grown := make([]uint32, n+n/2+8)
		copy(grown, s.visited)
		s.visited = grown
	}
	s.epoch++
	if s.epoch == 0 { // uint32 wrap: stale stamps could collide, reset all
		clear(s.visited)
		s.epoch = 1
	}
	s.queue = s.queue[:0]
	s.stack = s.stack[:0]
	return s
}

func (s *scratch) release() { s.inUse = false }

// seen stamps slot and reports whether it was already stamped this epoch.
func (s *scratch) seen(slot int32) bool {
	if s.visited[slot] == s.epoch {
		return true
	}
	s.visited[slot] = s.epoch
	return false
}
