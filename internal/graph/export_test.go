package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// exportLoadRoundTrip exports every shard of g and reloads them into a
// fresh graph with the same shard count, mimicking what a snapshot load
// does (including concurrent per-shard loads).
func exportLoadRoundTrip(t *testing.T, g *Graph) *Graph {
	t.Helper()
	p := g.NumShards()
	states := make([]ShardState, p)
	for s := 0; s < p; s++ {
		st := g.ExportShard(s)
		// Deep-copy the borrowed adjacency so the load owns its slices, as
		// a decoded snapshot segment would.
		for i := range st.Nodes {
			st.Nodes[i].Out = append([]NodeID(nil), st.Nodes[i].Out...)
			st.Nodes[i].In = append([]NodeID(nil), st.Nodes[i].In...)
		}
		states[s] = st
	}
	h := NewSharded(p)
	ParallelFor(4, p, func(_, s int) {
		if err := h.LoadShard(s, states[s]); err != nil {
			panic(err)
		}
	})
	if err := h.FinishLoad(g.Generation()); err != nil {
		t.Fatalf("FinishLoad: %v", err)
	}
	return h
}

func TestExportLoadRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			g := NewSharded(shards)
			for v := 0; v < 300; v++ {
				g.AddNode(NodeID(v), fmt.Sprintf("l%d", v%7))
			}
			for i := 0; i < 1500; i++ {
				v, w := NodeID(rng.Intn(300)), NodeID(rng.Intn(300))
				g.AddEdge(v, w)
			}
			// Deletions exercise the free list so allocator state round-trips.
			for v := 0; v < 40; v++ {
				g.DeleteNode(NodeID(v * 7 % 300))
			}
			h := exportLoadRoundTrip(t, g)
			if !g.Equal(h) {
				t.Fatal("round trip lost graph state")
			}
			if got, want := h.Generation(), g.Generation(); got != want {
				t.Fatalf("generation: got %d want %d", got, want)
			}
			// Slot assignment must be restored exactly: allocating the next
			// node must pick the same slot in both graphs.
			g.AddNode(10_000, "fresh")
			h.AddNode(10_000, "fresh")
			if gs, hs := g.rec(10_000).slot, h.rec(10_000).slot; gs != hs {
				t.Fatalf("slot divergence after load: got %d want %d", hs, gs)
			}
			// And the rest of every shard's node table slots must match.
			g.Nodes(func(v NodeID, _ string) bool {
				if g.rec(v).slot != h.rec(v).slot {
					t.Fatalf("node %d slot mismatch", v)
				}
				return true
			})
		})
	}
}

func TestLoadShardRejectsBadState(t *testing.T) {
	g := NewSharded(4)
	g.AddNode(1, "a")
	st := g.ExportShard(g.ShardOf(1))

	h := NewSharded(4)
	wrong := (g.ShardOf(1) + 1) % 4
	if err := h.LoadShard(wrong, st); err == nil {
		t.Fatal("want error loading node into wrong shard")
	}
	h = NewSharded(4)
	bad := st
	bad.Nodes = append([]ShardNodeState(nil), st.Nodes...)
	bad.Nodes[0].Slot = bad.Nodes[0].Slot + 1 // breaks slot%P == shard
	if err := h.LoadShard(g.ShardOf(1), bad); err == nil {
		t.Fatal("want error for invalid slot")
	}
	h = NewSharded(2)
	if err := h.LoadShard(0, ShardState{}); err != nil {
		t.Fatalf("empty shard state should load: %v", err)
	}
	if err := h.LoadShard(5, ShardState{}); err == nil {
		t.Fatal("want error for out-of-range shard")
	}
}

func TestValidateBatch(t *testing.T) {
	g := New()
	g.AddNode(1, "a")
	g.AddNode(2, "b")
	g.AddEdge(1, 2)
	gen := g.Generation()

	cases := []struct {
		b  Batch
		ok bool
	}{
		{Batch{Ins(2, 1)}, true},
		{Batch{Ins(1, 2)}, false},                        // exists
		{Batch{Del(2, 1)}, false},                        // missing
		{Batch{Del(1, 2), Ins(1, 2)}, true},              // delete then re-insert
		{Batch{Ins(2, 1), Ins(2, 1)}, false},             // in-batch duplicate
		{Batch{InsNew(3, 4, "c", "d"), Del(3, 4)}, true}, // new nodes then delete
	}
	for i, c := range cases {
		err := g.ValidateBatch(c.b)
		if (err == nil) != c.ok {
			t.Errorf("case %d: ValidateBatch=%v want ok=%v", i, err, c.ok)
		}
	}
	if g.Generation() != gen {
		t.Fatal("ValidateBatch mutated the graph")
	}
	// Validated batches must actually apply.
	if err := g.ApplyBatch(Batch{Ins(2, 1)}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsDuplicates(t *testing.T) {
	if _, err := Read(strings.NewReader("n 1 a\nn 2 b\nn 1 c\n")); err == nil ||
		!strings.Contains(err.Error(), "line 3") {
		t.Fatalf("duplicate node: got %v, want line-numbered error", err)
	}
	if _, err := Read(strings.NewReader("n 1 a\nn 2 b\ne 1 2\ne 1 2\n")); err == nil ||
		!strings.Contains(err.Error(), "line 4") {
		t.Fatalf("duplicate edge: got %v, want line-numbered error", err)
	}
}

func TestMultiWordLabelRoundTrip(t *testing.T) {
	g := New()
	g.AddNode(1, "two words")
	g.AddNode(2, "three word label")
	g.AddEdge(1, 2)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Label(1) != "two words" || h.Label(2) != "three word label" {
		t.Fatalf("labels lost: %q %q", h.Label(1), h.Label(2))
	}
	// Labels the whitespace-splitting reader cannot reproduce must be
	// rejected at write time, not silently mangled on the round trip.
	for _, bad := range []string{"bad\nlabel", "tab\tlabel", "double  space", " leading", "trailing "} {
		h := New()
		h.AddNode(3, bad)
		if err := Write(&bytes.Buffer{}, h); err == nil {
			t.Fatalf("want error writing unrepresentable label %q", bad)
		}
	}
}
