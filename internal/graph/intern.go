package graph

import (
	"sync"
	"sync/atomic"
)

// Label interning. Every distinct label string is assigned a process-wide
// LabelID once; graphs store the uint32 ID per node instead of the string.
// The table is global (not per-graph) so that IDs are comparable across
// graphs — the ISO engine compares pattern labels against data-graph labels
// in its innermost feasibility check, and a per-graph table would force it
// back to string comparisons.
//
// The table only ever grows: labels are never garbage-collected. Workloads
// have small alphabets (hundreds of labels), so this is by design.

// LabelID is the interned form of a node label.
type LabelID uint32

// NoLabel is returned by LabelIDAt for nodes that do not exist. It never
// compares equal to the ID of any interned label.
const NoLabel = LabelID(^uint32(0))

var labelTab = struct {
	mu    sync.Mutex
	ids   map[string]LabelID
	names atomic.Value // []string, copy-on-write
}{ids: make(map[string]LabelID)}

func init() {
	labelTab.names.Store([]string{})
}

// InternLabel returns the LabelID of label, assigning a fresh one on first
// sight. Safe for concurrent use.
func InternLabel(label string) LabelID {
	labelTab.mu.Lock()
	defer labelTab.mu.Unlock()
	if id, ok := labelTab.ids[label]; ok {
		return id
	}
	names := labelTab.names.Load().([]string)
	id := LabelID(len(names))
	grown := make([]string, len(names)+1)
	copy(grown, names)
	grown[len(names)] = label
	labelTab.names.Store(grown)
	labelTab.ids[label] = id
	return id
}

// LabelIDOf returns the interned ID of label without assigning one,
// reporting whether the label has ever been interned. Safe for concurrent
// use with InternLabel.
func LabelIDOf(label string) (LabelID, bool) {
	labelTab.mu.Lock()
	id, ok := labelTab.ids[label]
	labelTab.mu.Unlock()
	return id, ok
}

// LabelOf returns the string form of an interned label, or "" for NoLabel
// and IDs never issued. Lock-free: readers load an immutable snapshot.
func LabelOf(id LabelID) string {
	names := labelTab.names.Load().([]string)
	if int(id) >= len(names) {
		return ""
	}
	return names[id]
}

// InternedLabels returns the number of labels interned so far. IDs are
// issued densely from zero, so every LabelID below the returned count is
// valid, and the count only grows. A coordinator uses it to ship the label
// table incrementally: labels [alreadySent, InternedLabels()) are exactly
// the ones a remote peer has not seen yet. Lock-free.
func InternedLabels() int {
	return len(labelTab.names.Load().([]string))
}
