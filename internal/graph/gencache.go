package graph

import "sync/atomic"

// Generation-stamped answer caches. Derived answers that are expensive to
// materialize (sorted edge lists, sorted match sets) but stable between
// mutations are memoized against Graph.Generation: a read that finds a
// stamp matching the current generation returns the cached value in O(1),
// and any mutation implicitly invalidates every cache by bumping the
// generation — no registration or explicit invalidation needed.
//
// Concurrency: the cache is safe under the package's read-share contract.
// Between mutations multiple readers may race to fill a cold cache; each
// computes the (deterministic) value privately and the last atomic store
// wins, so readers never observe a torn or stale-generation value. During
// exclusive mutation there are no readers, by contract.

// genCacheEntry pairs a computed value with the generation it was built at.
type genCacheEntry[T any] struct {
	gen uint64
	val T
}

// GenCache memoizes one derived value per graph generation. The zero value
// is an empty cache. Values handed out are shared: callers must treat them
// as read-only, and they remain valid until the next mutation.
type GenCache[T any] struct {
	p atomic.Pointer[genCacheEntry[T]]
}

// Get returns the cached value if it was computed at g's current
// generation, otherwise computes, stores and returns a fresh one.
func (c *GenCache[T]) Get(g *Graph, compute func() T) T {
	gen := g.Generation()
	if e := c.p.Load(); e != nil && e.gen == gen {
		return e.val
	}
	v := compute()
	c.p.Store(&genCacheEntry[T]{gen: gen, val: v})
	return v
}
