package graph

import "fmt"

// Remote phase-1 hooks. The two-phase ApplyBatch protocol of shard.go was
// designed so that phase 1 — per-shard application of a validated plan's
// owned effects — touches nothing but shard-owned state. That is exactly
// the property a multi-process deployment needs: a coordinator can compile
// the plan once, ship each shard's slice of it to the worker process
// owning that shard, and merge the (deterministic) per-shard deltas in
// shard order locally, producing the same graph as a single-process
// application. This file exports the per-shard slice of a plan
// (PlanShardEffects) and its application (ApplyShardEffects) in a
// wire-friendly form: labels travel as strings because LabelIDs are
// process-local, exactly as in the snapshot format.
//
// A worker's graph is a shard container: it holds authoritative node
// records, slot allocators and adjacency for the shards placed on it
// (graph.LoadShard), and nothing else — the graph-global indexes (inverted
// label index, edge count) are never built, FinishLoad is never called,
// and cross-shard edges are present only on their owned endpoint's shard.
// ApplyShardEffects and ResetShard maintain exactly that state and no
// more.

// ShardNewNode is one node a planned batch creates, with the label of its
// first mention. Order matters: nodes are created in plan order so slot
// assignment matches the coordinator's application exactly.
type ShardNewNode struct {
	ID    NodeID
	Label string
}

// ShardOp is one net edge effect of a planned batch.
type ShardOp struct {
	Op       Op
	From, To NodeID
}

// ShardEffects is the slice of a validated batch plan owned by one shard:
// the new nodes hashing to it and every net edge op with an endpoint on
// it. An op appears in the effects of both endpoint shards when they
// differ; each side applies only its owned half.
type ShardEffects struct {
	Shard    int
	NewNodes []ShardNewNode
	Ops      []ShardOp
}

// EdgeDelta returns the edge-count contribution of applying e to its
// shard, counted on the From side so each edge counts exactly once across
// shards. It is a pure function of the plan — the coordinator uses it to
// cross-check the deltas remote workers report.
func (e ShardEffects) EdgeDelta(g *Graph) int {
	d := 0
	u64si := uint64(e.Shard)
	for _, op := range e.Ops {
		if g.shardIdxOf(op.From) != u64si {
			continue
		}
		if op.Op == Insert {
			d++
		} else {
			d--
		}
	}
	return d
}

// PlanShardEffects validates b against the current graph (the same
// sequential applicability rule ApplyBatch enforces) and compiles its net
// effects partitioned by owning shard, in a process-portable form. It is
// read-only and touches only the shards owning an endpoint of b, so plans
// for batches with disjoint TouchedShards may be compiled concurrently
// between mutations. ok is false when the batch would fail partway; use
// ValidateBatch for the precise error.
func (g *Graph) PlanShardEffects(b Batch) ([]ShardEffects, bool) {
	plan, ok := g.planBatch(b)
	if !ok {
		return nil, false
	}
	var out []ShardEffects
	for si := range g.shards {
		nodes, ops := plan.nodesByShard[si], plan.opsByShard[si]
		if len(nodes) == 0 && len(ops) == 0 {
			continue
		}
		eff := ShardEffects{Shard: si}
		if len(nodes) > 0 {
			eff.NewNodes = make([]ShardNewNode, len(nodes))
			for i, ni := range nodes {
				n := plan.newNodes[ni]
				eff.NewNodes[i] = ShardNewNode{ID: n.v, Label: LabelOf(n.lid)}
			}
		}
		if len(ops) > 0 {
			eff.Ops = make([]ShardOp, len(ops))
			for i, oi := range ops {
				op := plan.ops[oi]
				eff.Ops[i] = ShardOp{Op: op.op, From: op.e.From, To: op.e.To}
			}
		}
		out = append(out, eff)
	}
	return out, true
}

// ApplyShardEffects is phase 1 for one shard, driven from outside: it
// creates the shard's new nodes in plan order (so slot assignment is
// identical to the coordinator's own application) and applies the owned
// halves of every edge effect, returning the shard's edge-count delta.
// It writes only shard-owned state; the graph-global indexes are left
// untouched, which is correct for shard-container graphs (see the file
// comment) and would corrupt a fully indexed one.
//
// Errors report divergence between the shipped effects and the local shard
// state (a node missing, an edge already present); the shard may then be
// partially applied and must be re-placed from an authoritative segment
// before further use.
func (g *Graph) ApplyShardEffects(e ShardEffects) (int, error) {
	if e.Shard < 0 || e.Shard >= len(g.shards) {
		return 0, fmt.Errorf("graph: ApplyShardEffects: shard %d out of range [0,%d)", e.Shard, len(g.shards))
	}
	sh := &g.shards[e.Shard]
	p32, si32 := int32(len(g.shards)), int32(e.Shard)
	u64si := uint64(e.Shard)
	for _, n := range e.NewNodes {
		if g.shardIdxOf(n.ID) != u64si {
			return 0, fmt.Errorf("graph: ApplyShardEffects: node %d does not hash to shard %d", n.ID, e.Shard)
		}
		if _, ok := sh.nodes[n.ID]; ok {
			return 0, fmt.Errorf("graph: ApplyShardEffects: node %d already exists on shard %d", n.ID, e.Shard)
		}
		sh.nodes[n.ID] = &node{label: InternLabel(n.Label), slot: sh.allocSlot(p32, si32)}
	}
	delta := 0
	for _, op := range e.Ops {
		owned := false
		if g.shardIdxOf(op.From) == u64si {
			owned = true
			rec := sh.nodes[op.From]
			if rec == nil {
				return delta, fmt.Errorf("graph: ApplyShardEffects: source %d missing from shard %d", op.From, e.Shard)
			}
			if op.Op == Insert {
				if !rec.out.add(op.To) {
					return delta, fmt.Errorf("graph: ApplyShardEffects: edge (%d,%d) already present", op.From, op.To)
				}
				delta++
			} else {
				if !rec.out.remove(op.To) {
					return delta, fmt.Errorf("graph: ApplyShardEffects: edge (%d,%d) already absent", op.From, op.To)
				}
				delta--
			}
			sh.noteDirty(&rec.out)
		}
		if g.shardIdxOf(op.To) == u64si {
			owned = true
			rec := sh.nodes[op.To]
			if rec == nil {
				return delta, fmt.Errorf("graph: ApplyShardEffects: target %d missing from shard %d", op.To, e.Shard)
			}
			if op.Op == Insert {
				rec.in.add(op.From)
			} else {
				rec.in.remove(op.From)
			}
			sh.noteDirty(&rec.in)
		}
		if !owned {
			return delta, fmt.Errorf("graph: ApplyShardEffects: op %v(%d,%d) has no endpoint on shard %d", op.Op, op.From, op.To, e.Shard)
		}
	}
	// There is no phase 2 here, and shard containers never run
	// PrepareConcurrentReads (worker requests serialize, so sorted caches
	// rebuild lazily and race-free): discard the phase-1 dirty queue
	// instead of parking it on the graph, where it would grow without
	// bound and pin dropped replicas' records across ResetShard cycles.
	for _, a := range sh.dirty {
		a.queued = false
	}
	sh.dirty = sh.dirty[:0]
	g.refreshSlotCeil()
	return delta, nil
}

// ResetShard erases shard s — node records, slot allocator, dirty queue —
// returning it to the freshly created state LoadShard requires, so an
// authoritative segment can be (re-)placed over a diverged or stale copy.
// Like ApplyShardEffects it maintains only shard-owned state: calling it
// on a graph whose global indexes were built through the normal mutation
// API would leave the inverted label index and edge count stale. It exists
// for shard-container graphs.
func (g *Graph) ResetShard(s int) {
	sh := &g.shards[s]
	sh.nodes = make(map[NodeID]*node)
	sh.free = nil
	sh.slotCap = 0
	sh.dirty = nil
	g.refreshSlotCeil()
}
