package graph

import (
	"fmt"
	"sync"
)

// Remote phase-1 hooks. The two-phase ApplyBatch protocol of shard.go was
// designed so that phase 1 — per-shard application of a validated plan's
// owned effects — touches nothing but shard-owned state. That is exactly
// the property a multi-process deployment needs: a coordinator can compile
// the plan once, ship each shard's slice of it to the worker process
// owning that shard, and merge the (deterministic) per-shard deltas in
// shard order locally, producing the same graph as a single-process
// application. This file exports the validated plan itself (PlanBatch,
// with zero-copy per-shard iteration for wire encoders), the materialized
// per-shard slices (PlanShardEffects) and their application
// (ApplyShardEffects). Labels appear as interned LabelIDs; because IDs are
// process-local, a wire protocol must ship the label-string table
// alongside (once per session — see InternedLabels) and translate IDs at
// the receiving end.
//
// A worker's graph is a shard container: it holds authoritative node
// records, slot allocators and adjacency for the shards placed on it
// (graph.LoadShard), and nothing else — the graph-global indexes (inverted
// label index, edge count) are never built, FinishLoad is never called,
// and cross-shard edges are present only on their owned endpoint's shard.
// ApplyShardEffects and ResetShard maintain exactly that state and no
// more.

// ShardNewNode is one node a planned batch creates, with the interned
// label of its first mention. Order matters: nodes are created in plan
// order so slot assignment matches the coordinator's application exactly.
// The LabelID is process-local; effects that crossed a process boundary
// must carry IDs already translated into the local intern table.
type ShardNewNode struct {
	ID    NodeID
	Label LabelID
}

// ShardOp is one net edge effect of a planned batch.
type ShardOp struct {
	Op       Op
	From, To NodeID
}

// ShardEffects is the slice of a validated batch plan owned by one shard:
// the new nodes hashing to it and every net edge op with an endpoint on
// it. An op appears in the effects of both endpoint shards when they
// differ; each side applies only its owned half.
type ShardEffects struct {
	Shard    int
	NewNodes []ShardNewNode
	Ops      []ShardOp
}

// EdgeDelta returns the edge-count contribution of applying e to its
// shard, counted on the From side so each edge counts exactly once across
// shards. It is a pure function of the plan — the coordinator uses it to
// cross-check the deltas remote workers report.
func (e ShardEffects) EdgeDelta(g *Graph) int {
	d := 0
	u64si := uint64(e.Shard)
	for _, op := range e.Ops {
		if g.shardIdxOf(op.From) != u64si {
			continue
		}
		if op.Op == Insert {
			d++
		} else {
			d--
		}
	}
	return d
}

// PlanShardEffects validates b against the current graph (the same
// sequential applicability rule ApplyBatch enforces) and compiles its net
// effects partitioned by owning shard, in a process-portable form. It is
// read-only and touches only the shards owning an endpoint of b, so plans
// for batches with disjoint TouchedShards may be compiled concurrently
// between mutations. ok is false when the batch would fail partway; use
// ValidateBatch for the precise error.
func (g *Graph) PlanShardEffects(b Batch) ([]ShardEffects, bool) {
	plan, ok := g.PlanBatch(b)
	if !ok {
		return nil, false
	}
	defer plan.Release()
	var out []ShardEffects
	for _, si := range plan.TouchedShards() {
		eff := ShardEffects{Shard: si}
		if n := plan.NumNewNodes(si); n > 0 {
			eff.NewNodes = make([]ShardNewNode, 0, n)
			plan.NewNodes(si, func(id NodeID, lid LabelID) {
				eff.NewNodes = append(eff.NewNodes, ShardNewNode{ID: id, Label: lid})
			})
		}
		if n := plan.NumOps(si); n > 0 {
			eff.Ops = make([]ShardOp, 0, n)
			plan.Ops(si, func(op Op, from, to NodeID) {
				eff.Ops = append(eff.Ops, ShardOp{Op: op, From: from, To: to})
			})
		}
		out = append(out, eff)
	}
	return out, true
}

// Plan is an exported handle over one validated, shard-partitioned batch
// plan: the net effects ApplyBatch's parallel path would execute,
// iterable per shard without materializing intermediate slices. Wire
// encoders walk it directly into their output buffers — the zero-copy
// distributed-apply path. A Plan is read-only, valid until the next
// mutation of the graph it was compiled against, and should be returned
// to the internal pool with Release when done.
type Plan struct {
	g       *Graph
	bp      *batchPlan
	touched []int
}

// PlanBatch validates b against the current graph (the same sequential
// applicability rule ApplyBatch enforces) and compiles its net effects
// partitioned by owning shard. Read-only; plans for batches with disjoint
// TouchedShards may be compiled concurrently between mutations. ok is
// false when the batch would fail partway; use ValidateBatch for the
// precise error.
func (g *Graph) PlanBatch(b Batch) (*Plan, bool) {
	bp, ok := g.planBatch(b)
	if !ok {
		return nil, false
	}
	p := planHandlePool.Get().(*Plan)
	p.g, p.bp = g, bp
	p.touched = p.touched[:0]
	for si := range g.shards {
		if len(bp.nodesByShard[si]) > 0 || len(bp.opsByShard[si]) > 0 {
			p.touched = append(p.touched, si)
		}
	}
	return p, true
}

var planHandlePool = sync.Pool{New: func() any { return new(Plan) }}

// Release returns the plan's buffers to the pool. The Plan must not be
// used afterwards.
func (p *Plan) Release() {
	if p.bp != nil {
		putBatchPlan(p.bp)
	}
	p.g, p.bp = nil, nil
	planHandlePool.Put(p)
}

// TouchedShards returns the sorted indices of the shards with at least
// one effect. The slice is owned by the plan.
func (p *Plan) TouchedShards() []int { return p.touched }

// NumNewNodes returns the number of nodes the plan creates on shard si.
func (p *Plan) NumNewNodes(si int) int { return len(p.bp.nodesByShard[si]) }

// NumOps returns the number of net edge ops with an endpoint on shard si.
func (p *Plan) NumOps(si int) int { return len(p.bp.opsByShard[si]) }

// NewNodes calls fn for every node the plan creates on shard si, in plan
// order (the order phase 1 must allocate slots in).
func (p *Plan) NewNodes(si int, fn func(id NodeID, lid LabelID)) {
	for _, ni := range p.bp.nodesByShard[si] {
		n := p.bp.newNodes[ni]
		fn(n.v, n.lid)
	}
}

// Ops calls fn for every net edge op with an endpoint on shard si, in
// plan emission order.
func (p *Plan) Ops(si int, fn func(op Op, from, to NodeID)) {
	for _, oi := range p.bp.opsByShard[si] {
		op := p.bp.ops[oi]
		fn(op.op, op.e.From, op.e.To)
	}
}

// EdgeDelta returns the edge-count contribution of shard si, counted on
// the From side so each edge counts exactly once across shards — the
// cross-check value for remote phase-1 deltas.
func (p *Plan) EdgeDelta(si int) int {
	d := 0
	u64si := uint64(si)
	for _, oi := range p.bp.opsByShard[si] {
		op := p.bp.ops[oi]
		if p.g.shardIdxOf(op.e.From) != u64si {
			continue
		}
		if op.op == Insert {
			d++
		} else {
			d--
		}
	}
	return d
}

// ApplyShardEffects is phase 1 for one shard, driven from outside: it
// creates the shard's new nodes in plan order (so slot assignment is
// identical to the coordinator's own application) and applies the owned
// halves of every edge effect, returning the shard's edge-count delta.
// It writes only shard-owned state; the graph-global indexes are left
// untouched, which is correct for shard-container graphs (see the file
// comment) and would corrupt a fully indexed one.
//
// Errors report divergence between the shipped effects and the local shard
// state (a node missing, an edge already present); the shard may then be
// partially applied and must be re-placed from an authoritative segment
// before further use.
func (g *Graph) ApplyShardEffects(e ShardEffects) (int, error) {
	if e.Shard < 0 || e.Shard >= len(g.shards) {
		return 0, fmt.Errorf("graph: ApplyShardEffects: shard %d out of range [0,%d)", e.Shard, len(g.shards))
	}
	sh := &g.shards[e.Shard]
	p32, si32 := int32(len(g.shards)), int32(e.Shard)
	u64si := uint64(e.Shard)
	for _, n := range e.NewNodes {
		if g.shardIdxOf(n.ID) != u64si {
			return 0, fmt.Errorf("graph: ApplyShardEffects: node %d does not hash to shard %d", n.ID, e.Shard)
		}
		if _, ok := sh.nodes[n.ID]; ok {
			return 0, fmt.Errorf("graph: ApplyShardEffects: node %d already exists on shard %d", n.ID, e.Shard)
		}
		sh.nodes[n.ID] = &node{label: n.Label, slot: sh.allocSlot(p32, si32)}
	}
	delta := 0
	for _, op := range e.Ops {
		owned := false
		if g.shardIdxOf(op.From) == u64si {
			owned = true
			rec := sh.nodes[op.From]
			if rec == nil {
				return delta, fmt.Errorf("graph: ApplyShardEffects: source %d missing from shard %d", op.From, e.Shard)
			}
			if op.Op == Insert {
				if !rec.out.add(op.To) {
					return delta, fmt.Errorf("graph: ApplyShardEffects: edge (%d,%d) already present", op.From, op.To)
				}
				delta++
			} else {
				if !rec.out.remove(op.To) {
					return delta, fmt.Errorf("graph: ApplyShardEffects: edge (%d,%d) already absent", op.From, op.To)
				}
				delta--
			}
			sh.noteDirty(&rec.out)
		}
		if g.shardIdxOf(op.To) == u64si {
			owned = true
			rec := sh.nodes[op.To]
			if rec == nil {
				return delta, fmt.Errorf("graph: ApplyShardEffects: target %d missing from shard %d", op.To, e.Shard)
			}
			if op.Op == Insert {
				rec.in.add(op.From)
			} else {
				rec.in.remove(op.From)
			}
			sh.noteDirty(&rec.in)
		}
		if !owned {
			return delta, fmt.Errorf("graph: ApplyShardEffects: op %v(%d,%d) has no endpoint on shard %d", op.Op, op.From, op.To, e.Shard)
		}
	}
	// There is no phase 2 here, and shard containers never run
	// PrepareConcurrentReads (worker requests serialize, so sorted caches
	// rebuild lazily and race-free): discard the phase-1 dirty queue
	// instead of parking it on the graph, where it would grow without
	// bound and pin dropped replicas' records across ResetShard cycles.
	for _, a := range sh.dirty {
		a.queued = false
	}
	sh.dirty = sh.dirty[:0]
	g.refreshSlotCeil()
	return delta, nil
}

// ResetShard erases shard s — node records, slot allocator, dirty queue —
// returning it to the freshly created state LoadShard requires, so an
// authoritative segment can be (re-)placed over a diverged or stale copy.
// Like ApplyShardEffects it maintains only shard-owned state: calling it
// on a graph whose global indexes were built through the normal mutation
// API would leave the inverted label index and edge count stale. It exists
// for shard-container graphs.
func (g *Graph) ResetShard(s int) {
	sh := &g.shards[s]
	sh.nodes = make(map[NodeID]*node)
	sh.free = nil
	sh.slotCap = 0
	sh.dirty = nil
	g.refreshSlotCeil()
}
