package graph

import "sort"

func sortNodeIDs(vs []NodeID) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}

// adjSet is one adjacency list with a hybrid representation:
//
//   - Low-degree nodes keep a sorted []NodeID. Membership is a binary
//     search over a handful of contiguous int64s, iteration is a linear
//     scan, and sorted access is free — all cache-friendly and
//     allocation-free.
//   - Past promoteDegree the set promotes to a map[NodeID]struct{} for O(1)
//     membership, keeping the slice as a lazily rebuilt sorted cache
//     (the dirty flag). Dropping back below demoteDegree demotes to the
//     pure-slice form so deletion-heavy streams do not strand hubs in map
//     mode forever.
//
// The zero value is an empty set.
type adjSet struct {
	// list holds the members sorted ascending while small; in map mode it
	// is the cached sorted view, valid only when !dirty.
	list []NodeID
	// set is non-nil exactly in map mode.
	set map[NodeID]struct{}
	// dirty marks the cached list stale (map mode only).
	dirty bool
	// queued marks the set as registered in its graph's dirtySorted list,
	// so Graph.noteDirty enqueues each set at most once per flush cycle.
	queued bool
}

const (
	// promoteDegree is the size at which an adjSet switches to map mode.
	// Real-world label graphs here have mean degree 2–5, so nearly every
	// node stays in the compact sorted-slice form.
	promoteDegree = 16
	// demoteDegree is the size at which a map-mode set drops back to the
	// slice form; the gap to promoteDegree is hysteresis against thrash.
	demoteDegree = promoteDegree / 2
)

func (a *adjSet) len() int {
	if a.set != nil {
		return len(a.set)
	}
	return len(a.list)
}

// search returns the insertion point of v in the sorted list.
func (a *adjSet) search(v NodeID) int {
	return sort.Search(len(a.list), func(i int) bool { return a.list[i] >= v })
}

func (a *adjSet) has(v NodeID) bool {
	if a.set != nil {
		_, ok := a.set[v]
		return ok
	}
	i := a.search(v)
	return i < len(a.list) && a.list[i] == v
}

// add inserts v and reports whether it was absent.
func (a *adjSet) add(v NodeID) bool {
	if a.set != nil {
		if _, ok := a.set[v]; ok {
			return false
		}
		a.set[v] = struct{}{}
		a.dirty = true
		return true
	}
	i := a.search(v)
	if i < len(a.list) && a.list[i] == v {
		return false
	}
	a.list = append(a.list, 0)
	copy(a.list[i+1:], a.list[i:])
	a.list[i] = v
	if len(a.list) > promoteDegree {
		a.set = make(map[NodeID]struct{}, len(a.list))
		for _, w := range a.list {
			a.set[w] = struct{}{}
		}
		// list stays valid as the sorted cache.
	}
	return true
}

// remove deletes v and reports whether it was present.
func (a *adjSet) remove(v NodeID) bool {
	if a.set != nil {
		if _, ok := a.set[v]; !ok {
			return false
		}
		delete(a.set, v)
		a.dirty = true
		if len(a.set) <= demoteDegree {
			a.list = a.list[:0]
			for w := range a.set {
				a.list = append(a.list, w)
			}
			sortNodeIDs(a.list)
			a.set = nil
			a.dirty = false
		}
		return true
	}
	i := a.search(v)
	if i >= len(a.list) || a.list[i] != v {
		return false
	}
	a.list = append(a.list[:i], a.list[i+1:]...)
	return true
}

// forEach calls fn for every member until fn returns false. Order is
// ascending in slice mode and unspecified in map mode.
func (a *adjSet) forEach(fn func(v NodeID) bool) {
	if a.set != nil {
		for v := range a.set {
			if !fn(v) {
				return
			}
		}
		return
	}
	for _, v := range a.list {
		if !fn(v) {
			return
		}
	}
}

// sorted returns the members in ascending order. The returned slice is
// owned by the set: callers must not mutate it, and it is valid only until
// the next mutation. Amortised O(1) for slice mode; map mode rebuilds the
// cache once per mutation burst.
func (a *adjSet) sorted() []NodeID {
	if a.set == nil {
		return a.list
	}
	if a.dirty {
		a.list = a.list[:0]
		for v := range a.set {
			a.list = append(a.list, v)
		}
		sortNodeIDs(a.list)
		a.dirty = false
	}
	return a.list
}

// adjSetFromSorted builds a set from an ascending member list, taking
// ownership of the slice. Large sets promote to map mode immediately, with
// the list retained as the (clean) sorted cache — exactly the state an
// equivalent sequence of adds followed by sorted() would reach.
func adjSetFromSorted(list []NodeID) adjSet {
	a := adjSet{list: list}
	if len(list) > promoteDegree {
		a.set = make(map[NodeID]struct{}, len(list))
		for _, v := range list {
			a.set[v] = struct{}{}
		}
	}
	return a
}

// clone returns a deep copy.
func (a *adjSet) clone() adjSet {
	c := adjSet{dirty: a.dirty}
	if a.list != nil {
		c.list = make([]NodeID, len(a.list))
		copy(c.list, a.list)
	}
	if a.set != nil {
		c.set = make(map[NodeID]struct{}, len(a.set))
		for v := range a.set {
			c.set[v] = struct{}{}
		}
	}
	return c
}
