package graph

// This file contains the traversal primitives shared by the batch and
// incremental algorithms: directed and undirected BFS, d-hop neighborhoods
// (Section 4.1 of the paper), and reachability probes.
//
// All kernels run on buffers from the graph's scratch pool (scratch.go):
// an epoch-stamped visited array over dense node slots and reusable
// queue/stack backing arrays. On a warm graph they allocate nothing beyond
// what their results require, and because every traversal checks out its
// own buffer, any number of kernels may run concurrently between mutations
// (see the concurrency contract in parallel.go).
//
// Contract: traversal callbacks must not mutate the graph. The kernels
// hold node records and a visited array sized at entry, so a callback
// that deletes or adds nodes invalidates state mid-walk (deleted nodes
// are skipped defensively, but added nodes may be missed or overflow the
// visited array). None of the engines mutate during traversal.

// bfsFrom is the shared directed-BFS kernel. rev walks predecessors.
func (g *Graph) bfsFrom(sources []NodeID, rev bool, fn func(v NodeID, dist int) bool) {
	s := g.acquire()
	defer g.release(s)
	for _, src := range sources {
		rec := g.rec(src)
		if rec == nil || s.seen(rec.slot) {
			continue
		}
		s.queue = append(s.queue, qitem{src, 0})
	}
	for head := 0; head < len(s.queue); head++ {
		it := s.queue[head]
		if !fn(it.v, int(it.d)) {
			continue
		}
		rec := g.rec(it.v)
		if rec == nil {
			continue // deleted by the callback; see the contract above
		}
		adj := &rec.out
		if rev {
			adj = &rec.in
		}
		adj.forEach(func(w NodeID) bool {
			if !s.seen(g.rec(w).slot) {
				s.queue = append(s.queue, qitem{w, it.d + 1})
			}
			return true
		})
	}
}

// BFSFrom performs a breadth-first search over directed edges starting at
// the given sources (distance 0). fn is called once per reached node with
// its hop distance; returning false prunes expansion below that node.
func (g *Graph) BFSFrom(sources []NodeID, fn func(v NodeID, dist int) bool) {
	g.bfsFrom(sources, false, fn)
}

// ReverseBFSFrom is BFSFrom following edges backwards (predecessors).
func (g *Graph) ReverseBFSFrom(sources []NodeID, fn func(v NodeID, dist int) bool) {
	g.bfsFrom(sources, true, fn)
}

// Reaches reports whether there is a directed path from v to w. The search
// stops the moment w is dequeued.
func (g *Graph) Reaches(v, w NodeID) bool {
	rec := g.rec(v)
	if rec == nil || !g.HasNode(w) {
		return false
	}
	if v == w {
		return true
	}
	s := g.acquire()
	defer g.release(s)
	s.seen(rec.slot)
	s.stack = append(s.stack, v)
	found := false
	for n := len(s.stack); n > 0 && !found; n = len(s.stack) {
		x := s.stack[n-1]
		s.stack = s.stack[:n-1]
		g.rec(x).out.forEach(func(y NodeID) bool {
			if y == w {
				found = true
				return false
			}
			if !s.seen(g.rec(y).slot) {
				s.stack = append(s.stack, y)
			}
			return true
		})
	}
	return found
}

// ForEachWithin calls fn for every node within d undirected hops of some
// seed, with its hop distance from the nearest seed, in BFS order (seeds
// first). Seeds not in g are ignored; fn returning false stops the whole
// walk. This is the allocation-free kernel under NeighborhoodNodes.
func (g *Graph) ForEachWithin(seeds []NodeID, d int, fn func(v NodeID, dist int) bool) {
	s := g.acquire()
	defer g.release(s)
	for _, seed := range seeds {
		rec := g.rec(seed)
		if rec == nil || s.seen(rec.slot) {
			continue
		}
		s.queue = append(s.queue, qitem{seed, 0})
	}
	for head := 0; head < len(s.queue); head++ {
		it := s.queue[head]
		if !fn(it.v, int(it.d)) {
			return
		}
		if int(it.d) == d {
			continue
		}
		rec := g.rec(it.v)
		if rec == nil {
			continue // deleted by the callback; see the contract above
		}
		expand := func(w NodeID) bool {
			if !s.seen(g.rec(w).slot) {
				s.queue = append(s.queue, qitem{w, it.d + 1})
			}
			return true
		}
		rec.out.forEach(expand)
		rec.in.forEach(expand)
	}
}

// NeighborhoodNodes returns V_d(seeds): every node within d hops of some
// seed when g is taken as an undirected graph (Section 4.1). Seeds that are
// not in g are ignored. The result maps each reached node to its undirected
// hop distance from the nearest seed.
func (g *Graph) NeighborhoodNodes(seeds []NodeID, d int) map[NodeID]int {
	dist := make(map[NodeID]int, len(seeds))
	g.ForEachWithin(seeds, d, func(v NodeID, dd int) bool {
		dist[v] = dd
		return true
	})
	return dist
}

// Neighborhood returns G_d(seeds): the subgraph induced by V_d(seeds).
// For a single seed v this is the d-neighbor G_d(v) of the paper.
func (g *Graph) Neighborhood(seeds []NodeID, d int) *Graph {
	nodes := g.NeighborhoodNodes(seeds, d)
	keep := make(map[NodeID]bool, len(nodes))
	for v := range nodes {
		keep[v] = true
	}
	return g.InducedSubgraph(keep)
}

// ShortestDist returns the hop length of a shortest directed path from v to
// w, or -1 if w is unreachable from v. The BFS stops as soon as w is seen.
func (g *Graph) ShortestDist(v, w NodeID) int {
	rec := g.rec(v)
	if rec == nil || !g.HasNode(w) {
		return -1
	}
	if v == w {
		return 0
	}
	s := g.acquire()
	defer g.release(s)
	s.seen(rec.slot)
	s.queue = append(s.queue, qitem{v, 0})
	res := -1
	for head := 0; head < len(s.queue) && res < 0; head++ {
		it := s.queue[head]
		g.rec(it.v).out.forEach(func(y NodeID) bool {
			if y == w {
				res = int(it.d) + 1
				return false
			}
			if !s.seen(g.rec(y).slot) {
				s.queue = append(s.queue, qitem{y, it.d + 1})
			}
			return true
		})
	}
	return res
}

// UndirectedComponents returns the weakly connected components of g,
// each as a sorted slice of node IDs, ordered by their smallest member.
func (g *Graph) UndirectedComponents() [][]NodeID {
	s := g.acquire()
	defer g.release(s)
	var comps [][]NodeID
	for _, start := range g.NodesSorted() {
		if s.seen(g.rec(start).slot) {
			continue
		}
		var comp []NodeID
		s.stack = append(s.stack[:0], start)
		for n := len(s.stack); n > 0; n = len(s.stack) {
			v := s.stack[n-1]
			s.stack = s.stack[:n-1]
			comp = append(comp, v)
			rec := g.rec(v)
			grow := func(w NodeID) bool {
				if !s.seen(g.rec(w).slot) {
					s.stack = append(s.stack, w)
				}
				return true
			}
			rec.out.forEach(grow)
			rec.in.forEach(grow)
		}
		sortNodeIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}
