package graph

import "sort"

// This file contains the traversal primitives shared by the batch and
// incremental algorithms: directed and undirected BFS, d-hop neighborhoods
// (Section 4.1 of the paper), and reachability probes.

// BFSFrom performs a breadth-first search over directed edges starting at
// the given sources (distance 0). fn is called once per reached node with
// its hop distance; returning false prunes expansion below that node.
func (g *Graph) BFSFrom(sources []NodeID, fn func(v NodeID, dist int) bool) {
	seen := make(map[NodeID]bool, len(sources))
	type item struct {
		v NodeID
		d int
	}
	queue := make([]item, 0, len(sources))
	for _, s := range sources {
		if !g.HasNode(s) || seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue, item{s, 0})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if !fn(it.v, it.d) {
			continue
		}
		for w := range g.out[it.v] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, item{w, it.d + 1})
			}
		}
	}
}

// ReverseBFSFrom is BFSFrom following edges backwards (predecessors).
func (g *Graph) ReverseBFSFrom(sources []NodeID, fn func(v NodeID, dist int) bool) {
	seen := make(map[NodeID]bool, len(sources))
	type item struct {
		v NodeID
		d int
	}
	queue := make([]item, 0, len(sources))
	for _, s := range sources {
		if !g.HasNode(s) || seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue, item{s, 0})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if !fn(it.v, it.d) {
			continue
		}
		for u := range g.in[it.v] {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, item{u, it.d + 1})
			}
		}
	}
}

// Reaches reports whether there is a directed path from v to w.
func (g *Graph) Reaches(v, w NodeID) bool {
	if !g.HasNode(v) || !g.HasNode(w) {
		return false
	}
	found := false
	g.BFSFrom([]NodeID{v}, func(x NodeID, _ int) bool {
		if x == w {
			found = true
			return false
		}
		return !found
	})
	return found
}

// NeighborhoodNodes returns V_d(seeds): every node within d hops of some
// seed when g is taken as an undirected graph (Section 4.1). Seeds that are
// not in g are ignored. The result maps each reached node to its undirected
// hop distance from the nearest seed.
func (g *Graph) NeighborhoodNodes(seeds []NodeID, d int) map[NodeID]int {
	dist := make(map[NodeID]int, len(seeds))
	type item struct {
		v NodeID
		d int
	}
	var queue []item
	for _, s := range seeds {
		if !g.HasNode(s) {
			continue
		}
		if _, ok := dist[s]; ok {
			continue
		}
		dist[s] = 0
		queue = append(queue, item{s, 0})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.d == d {
			continue
		}
		expand := func(w NodeID) bool {
			if _, ok := dist[w]; !ok {
				dist[w] = it.d + 1
				queue = append(queue, item{w, it.d + 1})
			}
			return true
		}
		g.Successors(it.v, expand)
		g.Predecessors(it.v, expand)
	}
	return dist
}

// Neighborhood returns G_d(seeds): the subgraph induced by V_d(seeds).
// For a single seed v this is the d-neighbor G_d(v) of the paper.
func (g *Graph) Neighborhood(seeds []NodeID, d int) *Graph {
	nodes := g.NeighborhoodNodes(seeds, d)
	keep := make(map[NodeID]bool, len(nodes))
	for v := range nodes {
		keep[v] = true
	}
	return g.InducedSubgraph(keep)
}

// ShortestDist returns the hop length of a shortest directed path from v to
// w, or -1 if w is unreachable from v.
func (g *Graph) ShortestDist(v, w NodeID) int {
	res := -1
	g.BFSFrom([]NodeID{v}, func(x NodeID, d int) bool {
		if x == w {
			res = d
			return false
		}
		return true
	})
	return res
}

// UndirectedComponents returns the weakly connected components of g,
// each as a sorted slice of node IDs, ordered by their smallest member.
func (g *Graph) UndirectedComponents() [][]NodeID {
	seen := make(map[NodeID]bool, g.NumNodes())
	var comps [][]NodeID
	for _, start := range g.NodesSorted() {
		if seen[start] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			grow := func(w NodeID) bool {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
				return true
			}
			g.Successors(v, grow)
			g.Predecessors(v, grow)
		}
		sortNodeIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

func sortNodeIDs(vs []NodeID) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}
