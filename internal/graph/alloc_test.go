package graph

// Allocation-regression tests for the traversal kernels and the hybrid
// adjacency: on a warm graph (scratch buffers grown, sorted caches built)
// the hot paths must allocate nothing. These pin the "allocation-free
// traversal" property so it cannot silently regress.

import (
	"math/rand"
	"testing"
)

// warmGraph builds a connected random graph and runs each kernel once so
// every scratch buffer has reached steady-state capacity.
func warmGraph(tb testing.TB, n int) *Graph {
	tb.Helper()
	g := New()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i), "l")
	}
	for i := 1; i < n; i++ {
		g.AddEdge(NodeID(rng.Intn(i)), NodeID(i)) // spanning tree: connected
	}
	for i := 0; i < 2*n; i++ {
		v, w := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if v != w && !g.HasEdge(v, w) {
			g.AddEdge(v, w)
		}
	}
	return g
}

func TestBFSFromAllocFree(t *testing.T) {
	g := warmGraph(t, 500)
	sources := []NodeID{0}
	count := 0
	visit := func(v NodeID, d int) bool { count++; return true }
	g.BFSFrom(sources, visit) // warm the scratch buffers
	allocs := testing.AllocsPerRun(20, func() {
		g.BFSFrom(sources, visit)
	})
	if allocs != 0 {
		t.Fatalf("BFSFrom on a warm graph: %.1f allocs/op, want 0", allocs)
	}
	if count == 0 {
		t.Fatal("BFS visited nothing")
	}
}

func TestReverseBFSFromAllocFree(t *testing.T) {
	g := warmGraph(t, 500)
	sources := []NodeID{NodeID(499)}
	visit := func(v NodeID, d int) bool { return true }
	g.ReverseBFSFrom(sources, visit)
	allocs := testing.AllocsPerRun(20, func() {
		g.ReverseBFSFrom(sources, visit)
	})
	if allocs != 0 {
		t.Fatalf("ReverseBFSFrom on a warm graph: %.1f allocs/op, want 0", allocs)
	}
}

func TestForEachWithinAllocFree(t *testing.T) {
	g := warmGraph(t, 500)
	seeds := []NodeID{3, 77}
	visit := func(v NodeID, d int) bool { return true }
	g.ForEachWithin(seeds, 3, visit)
	allocs := testing.AllocsPerRun(20, func() {
		g.ForEachWithin(seeds, 3, visit)
	})
	if allocs != 0 {
		t.Fatalf("ForEachWithin on a warm graph: %.1f allocs/op, want 0", allocs)
	}
}

func TestReachesAllocFree(t *testing.T) {
	g := warmGraph(t, 500)
	g.Reaches(0, 499)
	allocs := testing.AllocsPerRun(20, func() {
		g.Reaches(0, 499)
	})
	if allocs != 0 {
		t.Fatalf("Reaches on a warm graph: %.1f allocs/op, want 0", allocs)
	}
}

// TestTraversalAllocFreeSharded re-pins the allocation-free warm path on a
// multi-shard graph: the sharded record lookup and interleaved slot space
// must not reintroduce per-call allocations in any kernel.
func TestTraversalAllocFreeSharded(t *testing.T) {
	g := warmGraph(t, 500)
	g.SetShards(4)
	sources := []NodeID{0}
	seeds := []NodeID{3, 77}
	kernels := []struct {
		name string
		run  func()
	}{
		{"BFSFrom", func() { g.BFSFrom(sources, func(NodeID, int) bool { return true }) }},
		{"ReverseBFSFrom", func() { g.ReverseBFSFrom([]NodeID{499}, func(NodeID, int) bool { return true }) }},
		{"ForEachWithin", func() { g.ForEachWithin(seeds, 3, func(NodeID, int) bool { return true }) }},
		{"Reaches", func() { g.Reaches(0, 499) }},
	}
	for _, k := range kernels {
		k.run() // warm the scratch buffers at the resharded slot ceiling
		if allocs := testing.AllocsPerRun(20, k.run); allocs != 0 {
			t.Errorf("%s on a warm 4-shard graph: %.1f allocs/op, want 0", k.name, allocs)
		}
	}
}

func TestSuccessorsSortedAllocFree(t *testing.T) {
	// Low-degree node: slice mode, the sorted adjacency IS the storage.
	g := warmGraph(t, 500)
	var v NodeID = -1
	for i := 0; i < 500; i++ {
		if d := g.OutDegree(NodeID(i)); d >= 2 && d <= promoteDegree {
			v = NodeID(i)
			break
		}
	}
	if v < 0 {
		t.Fatal("no low-degree node found")
	}
	allocs := testing.AllocsPerRun(20, func() {
		_ = g.SuccessorsSorted(v)
	})
	if allocs != 0 {
		t.Fatalf("SuccessorsSorted (slice mode): %.1f allocs/op, want 0", allocs)
	}

	// High-degree node: map mode. After one call rebuilds the cache,
	// repeated calls on an unchanged adjacency are allocation-free too.
	hub := NodeID(10_000)
	g.AddNode(hub, "hub")
	for i := 0; i < 3*promoteDegree; i++ {
		g.AddEdge(hub, NodeID(i))
	}
	if got := g.SuccessorsSorted(hub); len(got) != 3*promoteDegree {
		t.Fatalf("hub has %d sorted successors, want %d", len(got), 3*promoteDegree)
	}
	allocs = testing.AllocsPerRun(20, func() {
		_ = g.SuccessorsSorted(hub)
	})
	if allocs != 0 {
		t.Fatalf("SuccessorsSorted (map mode, warm cache): %.1f allocs/op, want 0", allocs)
	}
}
