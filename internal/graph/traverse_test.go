package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// chain builds 0 → 1 → … → n-1.
func chain(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i), "x")
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	return g
}

func TestBFSDistances(t *testing.T) {
	g := chain(5)
	got := map[NodeID]int{}
	g.BFSFrom([]NodeID{0}, func(v NodeID, d int) bool {
		got[v] = d
		return true
	})
	for i := 0; i < 5; i++ {
		if got[NodeID(i)] != i {
			t.Fatalf("dist(%d) = %d", i, got[NodeID(i)])
		}
	}
}

func TestBFSPrune(t *testing.T) {
	g := chain(5)
	var visited []NodeID
	g.BFSFrom([]NodeID{0}, func(v NodeID, d int) bool {
		visited = append(visited, v)
		return d < 2 // prune below depth 2
	})
	if len(visited) != 3 {
		t.Fatalf("prune failed, visited %v", visited)
	}
}

func TestReverseBFS(t *testing.T) {
	g := chain(4)
	got := map[NodeID]int{}
	g.ReverseBFSFrom([]NodeID{3}, func(v NodeID, d int) bool {
		got[v] = d
		return true
	})
	if got[0] != 3 || got[3] != 0 {
		t.Fatalf("reverse dists: %v", got)
	}
}

func TestReachesAndShortestDist(t *testing.T) {
	g := chain(4)
	if !g.Reaches(0, 3) || g.Reaches(3, 0) {
		t.Fatalf("Reaches wrong on chain")
	}
	if g.Reaches(0, 99) || g.Reaches(99, 0) {
		t.Fatalf("Reaches on missing node")
	}
	if d := g.ShortestDist(0, 3); d != 3 {
		t.Fatalf("ShortestDist = %d", d)
	}
	if d := g.ShortestDist(3, 0); d != -1 {
		t.Fatalf("unreachable ShortestDist = %d", d)
	}
}

func TestNeighborhoodIsUndirected(t *testing.T) {
	// 1 → 2 → 3, seed at 3: hop distances ignore direction.
	g := chain(4) // 0→1→2→3
	nodes := g.NeighborhoodNodes([]NodeID{3}, 2)
	if len(nodes) != 3 {
		t.Fatalf("V_2(3) = %v", nodes)
	}
	if nodes[1] != 2 || nodes[2] != 1 || nodes[3] != 0 {
		t.Fatalf("hop distances wrong: %v", nodes)
	}
	sub := g.Neighborhood([]NodeID{3}, 2)
	if sub.NumNodes() != 3 || !sub.HasEdge(1, 2) || !sub.HasEdge(2, 3) {
		t.Fatalf("G_2(3) wrong: %v %v", sub, sub.EdgesSorted())
	}
}

func TestNeighborhoodMultiSeed(t *testing.T) {
	g := New()
	for i := 0; i < 6; i++ {
		g.AddNode(NodeID(i), "x")
	}
	g.AddEdge(0, 1)
	g.AddEdge(4, 5)
	nodes := g.NeighborhoodNodes([]NodeID{0, 5}, 1)
	if len(nodes) != 4 {
		t.Fatalf("multi-seed neighborhood: %v", nodes)
	}
	// Missing seeds are ignored.
	nodes = g.NeighborhoodNodes([]NodeID{0, 777}, 1)
	if len(nodes) != 2 {
		t.Fatalf("missing seed not ignored: %v", nodes)
	}
}

func TestUndirectedComponents(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		g.AddNode(NodeID(i), "x")
	}
	g.AddEdge(0, 1)
	g.AddEdge(2, 1) // 0,1,2 weakly connected
	g.AddEdge(3, 4)
	comps := g.UndirectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 || len(comps[1]) != 2 {
		t.Fatalf("component membership wrong: %v", comps)
	}
}

func TestNeighborhoodBoundProperty(t *testing.T) {
	// Property: every node in V_d(seed) is within d undirected hops, and
	// V_d grows monotonically with d.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 25, 40, []string{"a"})
		s := NodeID(rng.Intn(25))
		prev := 0
		for d := 0; d <= 4; d++ {
			nodes := g.NeighborhoodNodes([]NodeID{s}, d)
			if len(nodes) < prev {
				return false
			}
			prev = len(nodes)
			for _, dist := range nodes {
				if dist > d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 30, 80, []string{"alpha", "beta", "gamma"})
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatalf("round trip lost data")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"n\n",            // bad node line
		"n x y\n",        // bad node id
		"e 1 2\n",        // undeclared nodes
		"n 1 a\ne 1\n",   // bad edge arity
		"n 1 a\ne 1 z\n", // bad edge target
		"z 1 2\n",        // unknown record
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("Read(%q) accepted bad input", c)
		}
	}
	// Comments and blank lines are fine; label-less nodes allowed.
	g, err := Read(bytes.NewBufferString("# hi\n\nn 1\nn 2 b\ne 1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 || g.Label(1) != "" {
		t.Fatalf("lenient parse wrong: %v", g)
	}
}
