package graph

import (
	"math/bits"
	"runtime"
	"sync"
)

// Sharded node storage. The node space is partitioned into a power-of-two
// number of shards by a multiplicative hash of the NodeID; each shard owns
// the node records (and therefore the out- and in-adjacency sets) of its
// nodes, plus a private dense-slot allocator. Cross-shard edges are
// recorded on both endpoint shards — (v, w) lives in v's out set on
// shard(v) and in w's in set on shard(w) — so traversal kernels read any
// shard without coordination, and a parallel batch application can hand
// each shard's effects to a dedicated worker with no cross-shard writes.
//
// Ownership invariant: a node record is written only (a) under the
// exclusive-mutation half of the concurrency contract, or (b) during
// phase 1 of a parallel ApplyBatch, by the single worker driving the
// owning shard. Graph-global state (byLabel, edges, dirtySorted, slotCeil,
// gen) is written only serially — phase 2 of the parallel path merges the
// per-shard deltas in ascending shard order, which is what makes the
// parallel path deterministic: it produces the same abstract graph as the
// serial one (see ApplyBatch for the exact parity contract).

// MaxShards caps the shard count. Far above any sensible core count; it
// bounds the per-graph fixed cost of the shard table.
const MaxShards = 256

// parallelBatchMin is the batch size below which ApplyBatch stays serial:
// planning plus fan-out overhead dominates tiny batches.
const parallelBatchMin = 32

// shard owns one partition of the node space.
type shard struct {
	nodes map[NodeID]*node
	// free recycles local slot indices of deleted nodes.
	free []int32
	// slotCap is the number of local slot indices ever issued.
	slotCap int32
	// dirty buffers adjacency sets dirtied by this shard's worker during
	// phase 1 of a parallel ApplyBatch; phase 2 drains it into the graph's
	// dirtySorted queue (serially, in shard order).
	dirty []*adjSet
}

// noteDirty is the phase-1 (per-shard) counterpart of Graph.noteDirty.
func (sh *shard) noteDirty(a *adjSet) {
	if a.set != nil && a.dirty && !a.queued {
		a.queued = true
		sh.dirty = append(sh.dirty, a)
	}
}

// allocSlot issues a dense global slot for a new node of shard si: local
// slots interleave across shards (global = local·P + si), so the visited
// arrays stay compact as long as the hash keeps shards balanced. Callers
// on the serial path must refresh g.slotCeil afterwards.
func (sh *shard) allocSlot(p, si int32) int32 {
	var local int32
	if n := len(sh.free); n > 0 {
		local = sh.free[n-1]
		sh.free = sh.free[:n-1]
	} else {
		local = sh.slotCap
		sh.slotCap++
	}
	return local*p + si
}

// recycleSlot returns a deleted node's global slot to the owning shard.
func (sh *shard) recycleSlot(slot, p int32) {
	sh.free = append(sh.free, slot/p)
}

// normalizeShards rounds n to the effective shard count: n <= 0 selects
// the default (smallest power of two covering runtime.GOMAXPROCS(0), the
// same budget Parallelism defaults to), other values round up to a power
// of two and clamp to [1, MaxShards].
func normalizeShards(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > MaxShards {
		n = MaxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// EffectiveShards reports the shard count SetShards(n)/NewSharded(n)
// would produce: the normalized power of two. Benchmark harnesses use it
// to label runs.
func EffectiveShards(n int) int { return normalizeShards(n) }

// shardIdxOf maps a node ID to its owning shard: a Fibonacci multiplicative
// hash keeps sequential IDs (the common case in generated workloads) spread
// evenly. Deterministic for a fixed shard count.
func (g *Graph) shardIdxOf(v NodeID) uint64 {
	return (uint64(v) * 0x9E3779B97F4A7C15) >> g.shardShift
}

// rec returns the record of v, or nil: the sharded replacement for the old
// single node map lookup.
func (g *Graph) rec(v NodeID) *node {
	return g.shards[g.shardIdxOf(v)].nodes[v]
}

// refreshSlotCeil recomputes the exclusive upper bound of global slot
// indices from the per-shard allocators.
func (g *Graph) refreshSlotCeil() {
	var maxLocal int32
	for i := range g.shards {
		if c := g.shards[i].slotCap; c > maxLocal {
			maxLocal = c
		}
	}
	g.slotCeil = maxLocal * int32(len(g.shards))
}

// bumpSlotCeil grows slotCeil after a serial slot allocation.
func (g *Graph) bumpSlotCeil(slot int32) {
	if slot+1 > g.slotCeil {
		g.slotCeil = slot + 1
	}
}

// NumShards returns the shard count P (a power of two).
func (g *Graph) NumShards() int { return len(g.shards) }

// ShardOf returns the index of the shard owning v (whether or not v
// exists). Stable between SetShards calls.
func (g *Graph) ShardOf(v NodeID) int { return int(g.shardIdxOf(v)) }

// SetShards repartitions the node space into n shards (rounded up to a
// power of two, capped at MaxShards; n <= 0 restores the default, the
// smallest power of two ≥ runtime.GOMAXPROCS(0)). Rebalancing rehashes
// every node record and reissues dense slots — O(|V|) — so configure
// shards up front or at rare topology milestones, not per batch. Requires
// exclusive access (a mutation under the concurrency contract). Clones
// inherit the shard count.
func (g *Graph) SetShards(n int) {
	p := normalizeShards(n)
	if p == len(g.shards) {
		return
	}
	old := g.shards
	perShard := g.NumNodes()/p + 1
	g.shards = make([]shard, p)
	g.shardShift = shardShiftFor(p)
	for i := range g.shards {
		g.shards[i].nodes = make(map[NodeID]*node, perShard)
	}
	p32 := int32(p)
	for i := range old {
		for v, rec := range old[i].nodes {
			si := g.shardIdxOf(v)
			sh := &g.shards[si]
			rec.slot = sh.allocSlot(p32, int32(si))
			sh.nodes[v] = rec
		}
	}
	g.refreshSlotCeil()
	g.gen++
}

// shardShiftFor returns the right-shift that maps the hash to [0, p).
func shardShiftFor(p int) uint {
	bits := uint(0)
	for 1<<bits < p {
		bits++
	}
	return 64 - bits // p == 1 shifts by 64, which Go defines as 0
}

// ShardNodes calls fn for every node owned by shard s with its interned
// label, until fn returns false. Iteration order is unspecified. Reads of
// distinct shards may run concurrently between mutations.
func (g *Graph) ShardNodes(s int, fn func(v NodeID, lid LabelID) bool) {
	for v, rec := range g.shards[s].nodes {
		if !fn(v, rec.label) {
			return
		}
	}
}

// NumShardNodes returns the number of nodes owned by shard s in O(1).
func (g *Graph) NumShardNodes(s int) int { return len(g.shards[s].nodes) }

// ShardNodesSorted returns the nodes owned by shard s in ascending order.
// The slice is freshly allocated and owned by the caller. The engines'
// batch builds use it to collect the node universe shard-parallel with a
// deterministic (shard-grouped, ascending) order.
func (g *Graph) ShardNodesSorted(s int) []NodeID {
	sh := &g.shards[s]
	out := make([]NodeID, 0, len(sh.nodes))
	for v := range sh.nodes {
		out = append(out, v)
	}
	sortNodeIDs(out)
	return out
}

// NodesSortedParallel returns all node IDs in ascending order, like
// NodesSorted, but collects and sorts per shard across Parallelism()
// workers and then merges the shard runs. Output is identical to
// NodesSorted; only the schedule differs. Callers must hold the graph
// read-shareable (no concurrent mutation).
func (g *Graph) NodesSortedParallel() []NodeID {
	p := len(g.shards)
	workers := g.Parallelism()
	if p == 1 || workers <= 1 {
		return g.NodesSorted()
	}
	runs := make([][]NodeID, p)
	ParallelFor(workers, p, func(_, s int) {
		runs[s] = g.ShardNodesSorted(s)
	})
	// Pairwise merge: O(n log P) total, versus O(n·P) for a linear-scan
	// selection over all heads.
	for len(runs) > 1 {
		merged := runs[:0]
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				merged = append(merged, runs[i])
				break
			}
			merged = append(merged, mergeSortedIDs(runs[i], runs[i+1]))
		}
		runs = merged
	}
	return runs[0]
}

// mergeSortedIDs merges two ascending runs into a fresh ascending slice.
func mergeSortedIDs(a, b []NodeID) []NodeID {
	out := make([]NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// TouchedShards returns the sorted, de-duplicated indices of the shards
// owning any endpoint of the batch: the partitions a parallel application
// of b will write. Engines use it as a locality signal (how concentrated
// ΔG is) when deciding between incremental repair and batch fallback.
func (b Batch) TouchedShards(g *Graph) []int {
	// Shard indices fit a fixed 256-bit set (MaxShards), so dedup and sort
	// cost no map and no sort.Ints — this runs per distributed apply.
	var set [MaxShards / 64]uint64
	for _, u := range b {
		s := g.shardIdxOf(u.From)
		set[s>>6] |= 1 << (s & 63)
		s = g.shardIdxOf(u.To)
		set[s>>6] |= 1 << (s & 63)
	}
	n := 0
	for _, w := range set {
		n += bits.OnesCount64(w)
	}
	out := make([]int, 0, n)
	for wi, w := range set {
		for w != 0 {
			out = append(out, wi<<6|bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// ---- Parallel batch application ----

// planNode is a node the batch will create, with its first-mention label.
type planNode struct {
	v   NodeID
	lid LabelID
}

// planOp is one net edge effect of a normalized view of the batch.
type planOp struct {
	e  Edge
	op Op
}

// batchPlan is a validated, shard-partitioned execution plan for one batch.
type batchPlan struct {
	newNodes []planNode
	ops      []planOp
	// nodesByShard / opsByShard index into newNodes / ops per owning shard;
	// an op appears on both endpoint shards when they differ.
	nodesByShard [][]int32
	opsByShard   [][]int32
	// edges/sts hold every distinct edge the batch touches in first-touch
	// order with its running validation state; edgeIdx maps an edge to its
	// index there. Keeping the state in a slice means repeat touches and
	// the net-op emission pass cost slice reads, not map probes — the maps
	// are the planner's hot spot (hashing dominates planBatch's profile).
	// All scratch is retained across pooled reuses (cleared, keeping
	// buckets/capacity) so planning allocates nothing once the pool warms.
	edges    []Edge
	sts      []edgeState
	edgeIdx  map[Edge]int32
	newLabel map[NodeID]struct{}
}

// edgeState tracks one edge's running state during plan validation:
// whether it currently exists under the in-batch view and whether it
// existed before the batch.
type edgeState uint8

const (
	stCur     edgeState = 1 << iota // exists under the running in-batch view
	stInitial                       // existed before the batch
)

// batchPlanPool recycles plans (and their scratch maps) across
// ApplyBatch/PlanBatch calls; the distributed apply path compiles one plan
// per commit, so this is a hot allocation site.
var batchPlanPool sync.Pool

// getBatchPlan returns a cleared plan sized for p shards.
func getBatchPlan(p int) *batchPlan {
	plan, _ := batchPlanPool.Get().(*batchPlan)
	if plan == nil {
		plan = &batchPlan{
			edgeIdx:  make(map[Edge]int32, 64),
			newLabel: make(map[NodeID]struct{}, 64),
		}
	}
	plan.newNodes = plan.newNodes[:0]
	plan.ops = plan.ops[:0]
	if cap(plan.nodesByShard) < p {
		plan.nodesByShard = make([][]int32, p)
		plan.opsByShard = make([][]int32, p)
	} else {
		plan.nodesByShard = plan.nodesByShard[:p]
		plan.opsByShard = plan.opsByShard[:p]
	}
	for i := range plan.nodesByShard {
		plan.nodesByShard[i] = plan.nodesByShard[i][:0]
		plan.opsByShard[i] = plan.opsByShard[i][:0]
	}
	plan.edges = plan.edges[:0]
	plan.sts = plan.sts[:0]
	clear(plan.edgeIdx)
	clear(plan.newLabel)
	return plan
}

// putBatchPlan returns a plan to the pool.
func putBatchPlan(plan *batchPlan) { batchPlanPool.Put(plan) }

// planBatch validates b against the current graph (the same sequential
// applicability rule Apply enforces: no insert of an existing edge, no
// delete of a missing one, per the running in-batch state) and compiles
// the shard-partitioned plan of its net effects. Read-only; reports
// ok=false when any update would fail, in which case the caller must take
// the serial path to reproduce the exact partial application and error.
func (g *Graph) planBatch(b Batch) (*batchPlan, bool) {
	plan := getBatchPlan(len(g.shards))
	ensure := func(v NodeID, label string) {
		if g.HasNode(v) {
			return
		}
		if _, ok := plan.newLabel[v]; ok {
			return
		}
		plan.newLabel[v] = struct{}{}
		si := g.shardIdxOf(v)
		plan.nodesByShard[si] = append(plan.nodesByShard[si], int32(len(plan.newNodes)))
		plan.newNodes = append(plan.newNodes, planNode{v: v, lid: InternLabel(label)})
	}
	for _, u := range b {
		e := u.Edge()
		i, seen := plan.edgeIdx[e]
		var st edgeState
		if seen {
			st = plan.sts[i]
		} else if g.HasEdge(u.From, u.To) {
			st = stCur | stInitial
		}
		switch u.Op {
		case Insert:
			if st&stCur != 0 {
				putBatchPlan(plan)
				return nil, false
			}
			ensure(u.From, u.FromLabel)
			ensure(u.To, u.ToLabel)
			st |= stCur
		case Delete:
			if st&stCur == 0 {
				putBatchPlan(plan)
				return nil, false
			}
			st &^= stCur
		default:
			putBatchPlan(plan)
			return nil, false
		}
		if seen {
			plan.sts[i] = st
		} else {
			plan.edgeIdx[e] = int32(len(plan.edges))
			plan.edges = append(plan.edges, e)
			plan.sts = append(plan.sts, st)
		}
	}
	// Emit net ops in first-touch order (deterministic schedule): one pass
	// over the distinct-edge slice, no map probes.
	for i, e := range plan.edges {
		st := plan.sts[i]
		if (st&stCur != 0) == (st&stInitial != 0) {
			continue // cancelled within the batch
		}
		op := Delete
		if st&stCur != 0 {
			op = Insert
		}
		oi := int32(len(plan.ops))
		plan.ops = append(plan.ops, planOp{e: e, op: op})
		sf, st64 := g.shardIdxOf(e.From), g.shardIdxOf(e.To)
		plan.opsByShard[sf] = append(plan.opsByShard[sf], oi)
		if st64 != sf {
			plan.opsByShard[st64] = append(plan.opsByShard[st64], oi)
		}
	}
	return plan, true
}

// applyShardPhase is phase 1 for one shard: create the shard's new nodes
// (in batch first-mention order, so slot assignment matches the serial
// path exactly) and apply the owned halves of every edge effect. It
// returns the shard's edge-count delta (counted on the From side, so each
// edge is counted exactly once across shards). Runs concurrently with the
// other shards' phase 1; writes only shard-owned state.
func (g *Graph) applyShardPhase(si int, plan *batchPlan) int {
	sh := &g.shards[si]
	p32, si32 := int32(len(g.shards)), int32(si)
	for _, ni := range plan.nodesByShard[si] {
		n := plan.newNodes[ni]
		sh.nodes[n.v] = &node{label: n.lid, slot: sh.allocSlot(p32, si32)}
	}
	edgeDelta := 0
	u64si := uint64(si)
	for _, oi := range plan.opsByShard[si] {
		op := plan.ops[oi]
		if g.shardIdxOf(op.e.From) == u64si {
			rec := sh.nodes[op.e.From]
			if op.op == Insert {
				rec.out.add(op.e.To)
				edgeDelta++
			} else {
				rec.out.remove(op.e.To)
				edgeDelta--
			}
			sh.noteDirty(&rec.out)
		}
		if g.shardIdxOf(op.e.To) == u64si {
			rec := sh.nodes[op.e.To]
			if op.op == Insert {
				rec.in.add(op.e.From)
			} else {
				rec.in.remove(op.e.From)
			}
			sh.noteDirty(&rec.in)
		}
	}
	return edgeDelta
}

// applyBatchParallel applies a validated plan with the two-phase protocol:
// phase 1 applies every shard's owned effects fully in parallel, phase 2
// serially merges the per-shard deltas — label-index insertions, dirty
// adjacency queues, edge counts — in ascending shard order. The final
// graph (node set, labels, slots, adjacency membership, counters) is
// identical to a serial application of the same batch; only the internal
// hybrid-adjacency representation may differ for sets whose in-batch
// updates cancelled.
func (g *Graph) applyBatchParallel(plan *batchPlan, workers int) {
	p := len(g.shards)
	edgeDeltas := make([]int, p)
	ParallelFor(workers, p, func(_, si int) {
		edgeDeltas[si] = g.applyShardPhase(si, plan)
	})
	locked := g.mergeLock()
	for si := 0; si < p; si++ {
		sh := &g.shards[si]
		for _, ni := range plan.nodesByShard[si] {
			n := plan.newNodes[ni]
			g.labelIndexAdd(n.lid, n.v)
		}
		g.dirtySorted = append(g.dirtySorted, sh.dirty...)
		sh.dirty = sh.dirty[:0]
		g.edges += edgeDeltas[si]
	}
	g.refreshSlotCeil()
	g.gen++
	g.mergeUnlock(locked)
}
