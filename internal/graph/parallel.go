package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel execution support. The graph substrate follows a two-phase
// concurrency contract:
//
//   - Mutations (AddNode, AddEdge, DeleteEdge, DeleteNode, Apply*) require
//     exclusive access: no other goroutine may touch the graph while one
//     runs.
//   - Between mutations the graph is read-shareable: any number of
//     goroutines may run queries and traversal kernels concurrently,
//     provided PrepareConcurrentReads ran after the last mutation (it
//     flushes the lazily rebuilt sorted-adjacency caches that reads would
//     otherwise race to rebuild).
//
// The incremental engines (kws, rpq, iso) lean on this split: they apply
// ΔG under exclusive access — internally shard-parallel for large batches
// (see the two-phase protocol in shard.go), which is invisible to readers
// — then fan their repair work out across workers against the read-only
// graph. SetParallelism caps both fan-outs.

// SetParallelism sets the worker budget used by the parallel batch builds
// and incremental repairs of the engines maintaining this graph, and by any
// ParallelFor keyed off this graph. n <= 0 restores the default,
// runtime.GOMAXPROCS(0). n == 1 forces sequential execution (useful for
// deterministic debugging and baseline measurements). Clones inherit the
// setting. Not safe to call concurrently with reads; set it up front.
func (g *Graph) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	g.workers = n
}

// Parallelism returns the effective worker budget: the value set with
// SetParallelism, or runtime.GOMAXPROCS(0) when unset.
func (g *Graph) Parallelism() int {
	if g.workers > 0 {
		return g.workers
	}
	return runtime.GOMAXPROCS(0)
}

// PrepareConcurrentReads makes the graph safe for concurrent readers by
// eagerly rebuilding every sorted-adjacency cache invalidated since the
// last call. Sorted access (SuccessorsSorted, NodesWithLabelID, ...) is
// otherwise rebuilt lazily on first use — a benign single-threaded
// optimization that becomes a data race when two readers hit the same
// stale cache. Engines call this after applying ΔG, before fanning out;
// cost is proportional to the adjacency actually dirtied by the mutations.
func (g *Graph) PrepareConcurrentReads() {
	locked := g.mergeLock()
	for _, a := range g.dirtySorted {
		a.queued = false
		if a.set != nil && a.dirty {
			a.sorted()
		}
	}
	g.dirtySorted = g.dirtySorted[:0]
	g.mergeUnlock(locked)
}

// noteDirty registers an adjacency set whose sorted cache a mutation just
// invalidated, so PrepareConcurrentReads can rebuild it eagerly.
func (g *Graph) noteDirty(a *adjSet) {
	if a.set != nil && a.dirty && !a.queued {
		a.queued = true
		g.dirtySorted = append(g.dirtySorted, a)
	}
}

// ParallelFor runs fn(worker, i) for every i in [0, n), distributing
// iterations across at most `workers` goroutines via an atomic work
// counter (cheap dynamic load balancing: iterations of very different
// cost — one keyword's BFS vs another's — still pack well). worker is a
// dense id in [0, effective workers), so callers can key per-worker
// accumulators (meters, delta buffers) off it and merge deterministically
// afterwards. With workers <= 1 (or n <= 1) it degrades to a plain
// sequential loop on the calling goroutine. A panic in any iteration is
// re-raised on the calling goroutine after all workers stop.
func ParallelFor(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		stop    atomic.Bool
		panicMu sync.Mutex
		panicV  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					stop.Store(true)
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}
