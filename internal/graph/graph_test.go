package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.AddNode(1, "a")
	g.AddNode(2, "b")
	g.AddNode(3, "b")
	g.AddNode(4, "c")
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 4)
	g.AddEdge(3, 4)
	return g
}

func TestAddAndQueryNodes(t *testing.T) {
	g := New()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph not empty: %v", g)
	}
	g.AddNode(7, "x")
	if !g.HasNode(7) || g.Label(7) != "x" {
		t.Fatalf("node 7 not stored correctly")
	}
	if g.HasNode(8) {
		t.Fatalf("phantom node 8")
	}
	g.AddNode(7, "y") // relabel
	if g.Label(7) != "y" {
		t.Fatalf("relabel failed: %q", g.Label(7))
	}
	if !g.EnsureNode(8, "z") {
		t.Fatalf("EnsureNode should insert new node")
	}
	if g.EnsureNode(8, "w") {
		t.Fatalf("EnsureNode should not reinsert")
	}
	if g.Label(8) != "z" {
		t.Fatalf("EnsureNode must not relabel: %q", g.Label(8))
	}
}

func TestEdgesBasics(t *testing.T) {
	g := buildDiamond(t)
	if g.NumEdges() != 4 {
		t.Fatalf("want 4 edges, got %d", g.NumEdges())
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatalf("directedness broken")
	}
	if g.AddEdge(1, 2) {
		t.Fatalf("duplicate edge reported as new")
	}
	if g.NumEdges() != 4 {
		t.Fatalf("duplicate insert changed edge count")
	}
	if !g.DeleteEdge(1, 2) || g.DeleteEdge(1, 2) {
		t.Fatalf("delete semantics broken")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("want 3 edges after delete, got %d", g.NumEdges())
	}
	if g.OutDegree(1) != 1 || g.InDegree(4) != 2 {
		t.Fatalf("degrees wrong: out(1)=%d in(4)=%d", g.OutDegree(1), g.InDegree(4))
	}
}

func TestAddEdgeMissingEndpointPanics(t *testing.T) {
	g := New()
	g.AddNode(1, "a")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for missing endpoint")
		}
	}()
	g.AddEdge(1, 99)
}

func TestSelfLoop(t *testing.T) {
	g := New()
	g.AddNode(1, "a")
	if !g.AddEdge(1, 1) {
		t.Fatalf("self-loop rejected")
	}
	if g.NumEdges() != 1 || !g.HasEdge(1, 1) {
		t.Fatalf("self-loop not stored")
	}
	if !g.DeleteNode(1) {
		t.Fatalf("delete node failed")
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("self-loop node deletion left residue: %v", g)
	}
}

func TestDeleteNodeRemovesIncidentEdges(t *testing.T) {
	g := buildDiamond(t)
	g.DeleteNode(2)
	if g.HasEdge(1, 2) || g.HasEdge(2, 4) {
		t.Fatalf("edges to deleted node survive")
	}
	if g.NumEdges() != 2 || g.NumNodes() != 3 {
		t.Fatalf("counts wrong after node delete: %v", g)
	}
}

func TestSortedAccessors(t *testing.T) {
	g := buildDiamond(t)
	succ := g.SuccessorsSorted(1)
	if len(succ) != 2 || succ[0] != 2 || succ[1] != 3 {
		t.Fatalf("SuccessorsSorted(1) = %v", succ)
	}
	pred := g.PredecessorsSorted(4)
	if len(pred) != 2 || pred[0] != 2 || pred[1] != 3 {
		t.Fatalf("PredecessorsSorted(4) = %v", pred)
	}
	nodes := g.NodesSorted()
	if len(nodes) != 4 || nodes[0] != 1 || nodes[3] != 4 {
		t.Fatalf("NodesSorted = %v", nodes)
	}
	es := g.EdgesSorted()
	if len(es) != 4 || es[0] != (Edge{1, 2}) || es[3] != (Edge{3, 4}) {
		t.Fatalf("EdgesSorted = %v", es)
	}
	bs := g.NodesWithLabel("b")
	if len(bs) != 2 || bs[0] != 2 || bs[1] != 3 {
		t.Fatalf("NodesWithLabel(b) = %v", bs)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := buildDiamond(t)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatalf("clone not equal")
	}
	c.DeleteEdge(1, 2)
	c.AddNode(99, "q")
	if g.HasNode(99) || !g.HasEdge(1, 2) {
		t.Fatalf("clone shares state with original")
	}
	if g.Equal(c) {
		t.Fatalf("Equal failed to detect difference")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildDiamond(t)
	s := g.InducedSubgraph(map[NodeID]bool{1: true, 2: true, 4: true})
	if s.NumNodes() != 3 {
		t.Fatalf("induced nodes = %d", s.NumNodes())
	}
	if !s.HasEdge(1, 2) || !s.HasEdge(2, 4) || s.HasEdge(1, 3) || s.HasEdge(3, 4) {
		t.Fatalf("induced edges wrong: %v", s.EdgesSorted())
	}
	if s.Label(2) != "b" {
		t.Fatalf("induced label lost")
	}
	// keep entries set to false must be ignored.
	s2 := g.InducedSubgraph(map[NodeID]bool{1: true, 2: false})
	if s2.NumNodes() != 1 {
		t.Fatalf("false keep entries included: %d nodes", s2.NumNodes())
	}
}

func TestMaxNodeID(t *testing.T) {
	g := New()
	if g.MaxNodeID() != -1 {
		t.Fatalf("empty MaxNodeID = %d", g.MaxNodeID())
	}
	g.AddNode(5, "a")
	g.AddNode(42, "b")
	if g.MaxNodeID() != 42 {
		t.Fatalf("MaxNodeID = %d", g.MaxNodeID())
	}
}

// randomGraph builds a random graph with n nodes and ~m edges for
// property-style tests.
func randomGraph(rng *rand.Rand, n, m int, labels []string) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i), labels[rng.Intn(len(labels))])
	}
	for i := 0; i < m; i++ {
		g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return g
}

func TestEdgeCountInvariant(t *testing.T) {
	// Property: after any interleaving of inserts and deletes, NumEdges
	// equals the number of distinct present edges.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 10
		for i := 0; i < n; i++ {
			g.AddNode(NodeID(i), "x")
		}
		present := make(map[Edge]bool)
		for step := 0; step < 200; step++ {
			v, w := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if rng.Intn(2) == 0 {
				g.AddEdge(v, w)
				present[Edge{v, w}] = true
			} else {
				g.DeleteEdge(v, w)
				delete(present, Edge{v, w})
			}
		}
		if g.NumEdges() != len(present) {
			return false
		}
		for e := range present {
			if !g.HasEdge(e.From, e.To) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInOutConsistency(t *testing.T) {
	// Property: w ∈ out(v) ⟺ v ∈ in(w) on random graphs.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 20, 60, []string{"a", "b"})
		ok := true
		g.Nodes(func(v NodeID, _ string) bool {
			g.Successors(v, func(w NodeID) bool {
				found := false
				g.Predecessors(w, func(u NodeID) bool {
					if u == v {
						found = true
						return false
					}
					return true
				})
				if !found {
					ok = false
				}
				return ok
			})
			return ok
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestIterationEarlyStop(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		g.AddNode(NodeID(i), "x")
		if i > 0 {
			g.AddEdge(0, NodeID(i))
		}
	}
	count := 0
	g.Nodes(func(NodeID, string) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("Nodes early stop visited %d", count)
	}
	count = 0
	g.Successors(0, func(NodeID) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("Successors early stop visited %d", count)
	}
	count = 0
	g.Predecessors(5, func(NodeID) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("Predecessors early stop visited %d", count)
	}
	count = 0
	g.Edges(func(Edge) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("Edges early stop visited %d", count)
	}
}

func TestGraphString(t *testing.T) {
	g := New()
	g.AddNode(1, "a")
	if g.String() != "graph{|V|=1 |E|=0}" {
		t.Fatalf("String = %q", g.String())
	}
}
