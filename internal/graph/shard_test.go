package graph

// Tests for the sharded substrate: shard-count invariance of the abstract
// graph, cross-shard edge bookkeeping, rebalance (SetShards), and the
// parallel ApplyBatch path pinned against the serial loop — including
// error parity on invalid batches.

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomSharded builds a random labeled graph on n nodes with the given
// shard count and parallelism.
func randomSharded(tb testing.TB, n, shards, workers int, seed int64) *Graph {
	tb.Helper()
	g := NewSharded(shards)
	g.SetParallelism(workers)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i), fmt.Sprintf("l%d", rng.Intn(5)))
	}
	for i := 1; i < n; i++ {
		g.AddEdge(NodeID(rng.Intn(i)), NodeID(i))
	}
	for i := 0; i < 3*n; i++ {
		v, w := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if v != w && !g.HasEdge(v, w) {
			g.AddEdge(v, w)
		}
	}
	return g
}

// randomBatch generates a batch valid against g in sequence order,
// mutating a scratch clone to track applicability.
func randomBatch(scratch *Graph, count int, rng *rand.Rand) Batch {
	var b Batch
	maxID := int64(scratch.MaxNodeID())
	for len(b) < count {
		if rng.Intn(2) == 0 {
			// Insertion, sometimes with a brand-new endpoint.
			v := NodeID(rng.Int63n(maxID + 1))
			w := NodeID(rng.Int63n(maxID + 1))
			if rng.Intn(8) == 0 {
				maxID++
				w = NodeID(maxID)
			}
			u := InsNew(v, w, "new", "new")
			if scratch.HasEdge(v, w) {
				continue
			}
			if err := scratch.Apply(u); err != nil {
				continue
			}
			b = append(b, u)
		} else {
			es := scratch.EdgesSorted()
			if len(es) == 0 {
				continue
			}
			e := es[rng.Intn(len(es))]
			u := Del(e.From, e.To)
			if err := scratch.Apply(u); err != nil {
				continue
			}
			b = append(b, u)
		}
	}
	return b
}

func TestShardOfConsistent(t *testing.T) {
	g := NewSharded(8)
	if g.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", g.NumShards())
	}
	seen := make(map[int]int)
	for v := NodeID(0); v < 4096; v++ {
		s := g.ShardOf(v)
		if s < 0 || s >= 8 {
			t.Fatalf("ShardOf(%d) = %d out of range", v, s)
		}
		seen[s]++
	}
	// The multiplicative hash must not collapse sequential IDs onto a few
	// shards: every shard should own a reasonable share of 4096 IDs.
	for s, n := range seen {
		if n < 4096/8/4 {
			t.Fatalf("shard %d owns only %d of 4096 sequential IDs", s, n)
		}
	}
}

func TestCrossShardEdges(t *testing.T) {
	g := NewSharded(4)
	// Find two nodes on different shards and one pair sharing a shard.
	var a, b NodeID = -1, -1
	for v := NodeID(0); v < 100 && (a < 0 || b < 0); v++ {
		if a < 0 {
			a = v
			continue
		}
		if g.ShardOf(v) != g.ShardOf(a) {
			b = v
		}
	}
	if a < 0 || b < 0 {
		t.Fatal("no cross-shard pair found")
	}
	g.AddNode(a, "x")
	g.AddNode(b, "y")
	if !g.AddEdge(a, b) || !g.AddEdge(b, a) {
		t.Fatal("cross-shard edges not inserted")
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) || g.NumEdges() != 2 {
		t.Fatalf("cross-shard edge bookkeeping wrong: |E|=%d", g.NumEdges())
	}
	if g.OutDegree(a) != 1 || g.InDegree(a) != 1 {
		t.Fatalf("degrees of %d: out=%d in=%d, want 1/1", a, g.OutDegree(a), g.InDegree(a))
	}
	// Deleting the node on one shard must clean the adjacency recorded on
	// the other endpoint's shard.
	if !g.DeleteNode(b) {
		t.Fatal("DeleteNode failed")
	}
	if g.NumEdges() != 0 || g.OutDegree(a) != 0 || g.InDegree(a) != 0 {
		t.Fatalf("cross-shard cleanup failed: |E|=%d out=%d in=%d",
			g.NumEdges(), g.OutDegree(a), g.InDegree(a))
	}
}

func TestSetShardsRebalance(t *testing.T) {
	g := randomSharded(t, 400, 1, 1, 7)
	want := g.Clone()
	for _, p := range []int{8, 2, 16, 1} {
		g.SetShards(p)
		if g.NumShards() != p {
			t.Fatalf("NumShards = %d, want %d", g.NumShards(), p)
		}
		if !g.Equal(want) || !want.Equal(g) {
			t.Fatalf("reshard to %d shards changed the graph", p)
		}
		// Slots were reissued: the traversal kernels must still cover the
		// whole graph without stamp collisions.
		count := 0
		g.BFSFrom(g.NodesSorted(), func(NodeID, int) bool { count++; return true })
		if count != g.NumNodes() {
			t.Fatalf("after reshard to %d: BFS covered %d of %d nodes", p, count, g.NumNodes())
		}
		// Label index must survive: compare against the unsharded answer.
		for _, l := range []string{"l0", "l1", "l2", "l3", "l4"} {
			a, b := fmt.Sprint(g.NodesWithLabel(l)), fmt.Sprint(want.NodesWithLabel(l))
			if a != b {
				t.Fatalf("after reshard to %d: NodesWithLabel(%q) = %s, want %s", p, l, a, b)
			}
		}
	}
	// Rounding and clamping.
	g.SetShards(3)
	if g.NumShards() != 4 {
		t.Fatalf("SetShards(3) → %d shards, want 4", g.NumShards())
	}
	g.SetShards(MaxShards * 2)
	if g.NumShards() != MaxShards {
		t.Fatalf("SetShards(2·max) → %d shards, want %d", g.NumShards(), MaxShards)
	}
}

// TestParallelApplyBatchMatchesSerial drives the same randomized update
// stream through the two-phase parallel path (8 shards, 4 workers) and the
// serial unit loop, and requires identical graphs after every batch. This
// is the substrate half of the determinism guarantee; the engine half
// lives in the top-level sharded differential test.
func TestParallelApplyBatchMatchesSerial(t *testing.T) {
	par := randomSharded(t, 600, 8, 4, 11)
	ser := par.Clone()
	ser.SetShards(1)
	ser.SetParallelism(1)
	scratch := par.Clone()
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 5; round++ {
		b := randomBatch(scratch, 80, rng)
		if err := par.ApplyBatch(b); err != nil {
			t.Fatalf("round %d parallel: %v", round, err)
		}
		for i, u := range b {
			if err := ser.Apply(u); err != nil {
				t.Fatalf("round %d serial update %d: %v", round, i, err)
			}
		}
		if !par.Equal(ser) || !ser.Equal(par) {
			t.Fatalf("round %d: parallel and serial graphs diverged", round)
		}
		if a, b := fmt.Sprint(par.EdgesSorted()), fmt.Sprint(ser.EdgesSorted()); a != b {
			t.Fatalf("round %d: sorted edge lists differ", round)
		}
	}
}

// TestParallelApplyBatchErrorParity checks that an invalid batch behaves
// identically on the parallel and serial paths: same error position, same
// partial application.
func TestParallelApplyBatchErrorParity(t *testing.T) {
	par := randomSharded(t, 100, 8, 4, 21)
	ser := par.Clone()
	ser.SetShards(1)
	ser.SetParallelism(1)
	// A long batch (≥ parallelBatchMin) with a bad delete in the middle.
	var b Batch
	for i := 0; i < 40; i++ {
		b = append(b, InsNew(NodeID(1000+i), NodeID(1001+i), "n", "n"))
	}
	bad := Del(5000, 5001) // edge that never existed
	b = append(b[:20], append(Batch{bad}, b[20:]...)...)
	errP := par.ApplyBatch(b)
	errS := ser.ApplyBatch(b)
	if errP == nil || errS == nil {
		t.Fatalf("invalid batch accepted: parallel=%v serial=%v", errP, errS)
	}
	if errP.Error() != errS.Error() {
		t.Fatalf("error mismatch:\nparallel: %v\nserial:   %v", errP, errS)
	}
	if !par.Equal(ser) {
		t.Fatal("partial application differs between parallel and serial paths")
	}
}

func TestTouchedShards(t *testing.T) {
	g := NewSharded(8)
	b := Batch{Ins(1, 2), Ins(3, 4), Del(1, 2)}
	want := map[int]bool{}
	for _, u := range b {
		want[g.ShardOf(u.From)] = true
		want[g.ShardOf(u.To)] = true
	}
	got := b.TouchedShards(g)
	if len(got) != len(want) {
		t.Fatalf("TouchedShards = %v, want the %d shards of %v", got, len(want), want)
	}
	for i, s := range got {
		if !want[s] {
			t.Fatalf("TouchedShards reported shard %d, not touched", s)
		}
		if i > 0 && got[i-1] >= s {
			t.Fatalf("TouchedShards not sorted/unique: %v", got)
		}
	}
}

// TestEdgesSortedGenerationCache pins the O(1) re-read: between mutations
// EdgesSorted returns the identical backing slice; a mutation invalidates
// it.
func TestEdgesSortedGenerationCache(t *testing.T) {
	g := randomSharded(t, 50, 2, 1, 5)
	a := g.EdgesSorted()
	b := g.EdgesSorted()
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("EdgesSorted did not reuse the generation-stamped cache")
	}
	gen := g.Generation()
	g.AddNode(12345, "fresh")
	if g.Generation() == gen {
		t.Fatal("mutation did not bump the generation")
	}
	g.AddEdge(12345, a[0].From)
	c := g.EdgesSorted()
	if len(c) != len(a)+1 {
		t.Fatalf("EdgesSorted after mutation has %d edges, want %d", len(c), len(a)+1)
	}
}
