package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestApplyInsertWithNewNodes(t *testing.T) {
	g := New()
	if err := g.Apply(InsNew(1, 2, "a", "b")); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(1, 2) || g.Label(1) != "a" || g.Label(2) != "b" {
		t.Fatalf("insert-with-new-nodes failed: %v", g)
	}
	// Existing nodes must keep their labels.
	if err := g.Apply(InsNew(2, 1, "X", "Y")); err != nil {
		t.Fatal(err)
	}
	if g.Label(1) != "a" || g.Label(2) != "b" {
		t.Fatalf("insert relabeled existing nodes")
	}
}

func TestApplyErrors(t *testing.T) {
	g := New()
	g.AddNode(1, "a")
	g.AddNode(2, "b")
	g.AddEdge(1, 2)
	if err := g.Apply(Ins(1, 2)); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("duplicate insert: got %v", err)
	}
	if err := g.Apply(Del(2, 1)); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("missing delete: got %v", err)
	}
	if err := g.Apply(Update{Op: Op(9)}); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("unknown op: got %v", err)
	}
}

func TestApplyBatchStopsAtFirstError(t *testing.T) {
	g := New()
	g.AddNode(1, "a")
	g.AddNode(2, "b")
	batch := Batch{Ins(1, 2), Del(9, 9), Ins(2, 1)}
	if err := g.ApplyBatch(batch); err == nil {
		t.Fatalf("expected error")
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatalf("batch application order wrong")
	}
}

func TestSplitAndTouchedNodes(t *testing.T) {
	b := Batch{Ins(1, 2), Del(3, 4), Ins(5, 6)}
	ins, del := b.Split()
	if len(ins) != 2 || len(del) != 1 || ins[1].From != 5 || del[0].To != 4 {
		t.Fatalf("Split wrong: ins=%v del=%v", ins, del)
	}
	touched := b.TouchedNodes()
	for _, v := range []NodeID{1, 2, 3, 4, 5, 6} {
		if !touched[v] {
			t.Fatalf("node %d not touched", v)
		}
	}
	if len(touched) != 6 {
		t.Fatalf("touched size = %d", len(touched))
	}
}

func TestNormalize(t *testing.T) {
	// Insert-then-delete of a fresh edge cancels; delete-then-insert of an
	// existing edge cancels; odd-length alternations keep the final op.
	b := Batch{Ins(1, 2), Del(1, 2), Del(3, 4), Ins(3, 4), Ins(5, 6), Del(7, 8), Ins(7, 8), Del(7, 8)}
	n := b.Normalize()
	if len(n) != 2 {
		t.Fatalf("Normalize len = %d (%v)", len(n), n)
	}
	if n[0] != Ins(5, 6) || n[1] != Del(7, 8) {
		t.Fatalf("Normalize kept wrong updates: %v", n)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	// Property: applying a valid batch then its inverse restores all edges
	// (new nodes are retained by design, so compare edges and labels of the
	// original node set).
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 15, 30, []string{"a", "b", "c"})
		orig := g.Clone()
		var batch Batch
		// Construct a valid batch against the evolving graph.
		for step := 0; step < 25; step++ {
			v, w := NodeID(rng.Intn(15)), NodeID(rng.Intn(15))
			if g.HasEdge(v, w) {
				u := Del(v, w)
				g.Apply(u)
				batch = append(batch, u)
			} else {
				u := Ins(v, w)
				g.Apply(u)
				batch = append(batch, u)
			}
		}
		if err := g.ApplyBatch(batch.Inverse()); err != nil {
			return false
		}
		return g.Equal(orig)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateStrings(t *testing.T) {
	if Ins(1, 2).String() != "insert(1,2)" {
		t.Fatalf("insert string: %s", Ins(1, 2))
	}
	if Del(1, 2).String() != "delete(1,2)" {
		t.Fatalf("delete string: %s", Del(1, 2))
	}
	if Op(9).String() == "" {
		t.Fatalf("unknown op must render")
	}
}
