package graph_test

// Differential test of the performance substrate: a plain map-based
// reference implementation and the real Graph are driven through the same
// random insert/delete/relabel/delete-node stream (edge updates drawn from
// internal/gen's generator), and every few steps the full observable state
// is compared — NodesWithLabel for every live label, degrees, sorted
// adjacency, node and edge sets, and Equal against a rebuilt graph. This is
// what pins the inverted label index, the hybrid adjacency promotion/
// demotion, and the slot recycling to the simple semantics they replace.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

// refGraph is the trivially correct reference: the representation the
// substrate used before it was rebuilt for speed.
type refGraph struct {
	labels map[graph.NodeID]string
	out    map[graph.NodeID]map[graph.NodeID]bool
	in     map[graph.NodeID]map[graph.NodeID]bool
}

func newRef() *refGraph {
	return &refGraph{
		labels: make(map[graph.NodeID]string),
		out:    make(map[graph.NodeID]map[graph.NodeID]bool),
		in:     make(map[graph.NodeID]map[graph.NodeID]bool),
	}
}

// addNode mirrors Graph.AddNode: inserting an existing node relabels it.
func (r *refGraph) addNode(v graph.NodeID, l string) {
	if _, ok := r.labels[v]; !ok {
		r.out[v] = make(map[graph.NodeID]bool)
		r.in[v] = make(map[graph.NodeID]bool)
	}
	r.labels[v] = l
}

// ensureNode mirrors Graph.EnsureNode: existing nodes keep their label.
func (r *refGraph) ensureNode(v graph.NodeID, l string) {
	if _, ok := r.labels[v]; !ok {
		r.addNode(v, l)
	}
}

func (r *refGraph) addEdge(v, w graph.NodeID) {
	r.out[v][w] = true
	r.in[w][v] = true
}

func (r *refGraph) deleteEdge(v, w graph.NodeID) {
	delete(r.out[v], w)
	delete(r.in[w], v)
}

func (r *refGraph) deleteNode(v graph.NodeID) {
	for w := range r.out[v] {
		delete(r.in[w], v)
	}
	for u := range r.in[v] {
		delete(r.out[u], v)
	}
	delete(r.out, v)
	delete(r.in, v)
	delete(r.labels, v)
}

func (r *refGraph) numEdges() int {
	n := 0
	for _, succ := range r.out {
		n += len(succ)
	}
	return n
}

func (r *refGraph) nodesWithLabel(l string) []graph.NodeID {
	var vs []graph.NodeID
	for v, vl := range r.labels {
		if vl == l {
			vs = append(vs, v)
		}
	}
	sortIDs(vs)
	return vs
}

func sortIDs(vs []graph.NodeID) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}

func sortedKeys(m map[graph.NodeID]bool) []graph.NodeID {
	vs := make([]graph.NodeID, 0, len(m))
	for v := range m {
		vs = append(vs, v)
	}
	sortIDs(vs)
	return vs
}

func idsEqual(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rebuild constructs a fresh Graph from the reference state.
func (r *refGraph) rebuild() *graph.Graph {
	g := graph.New()
	for v, l := range r.labels {
		g.AddNode(v, l)
	}
	for v, succ := range r.out {
		for w := range succ {
			g.AddEdge(v, w)
		}
	}
	return g
}

// compare checks every observable of g against the reference.
func (r *refGraph) compare(t *testing.T, g *graph.Graph, step int) {
	t.Helper()
	if g.NumNodes() != len(r.labels) {
		t.Fatalf("step %d: |V| = %d, want %d", step, g.NumNodes(), len(r.labels))
	}
	if g.NumEdges() != r.numEdges() {
		t.Fatalf("step %d: |E| = %d, want %d", step, g.NumEdges(), r.numEdges())
	}
	labels := make(map[string]bool)
	for v, l := range r.labels {
		labels[l] = true
		if !g.HasNode(v) {
			t.Fatalf("step %d: node %d missing", step, v)
		}
		if got := g.Label(v); got != l {
			t.Fatalf("step %d: node %d label %q, want %q", step, v, got, l)
		}
		if got, want := g.OutDegree(v), len(r.out[v]); got != want {
			t.Fatalf("step %d: node %d out-degree %d, want %d", step, v, got, want)
		}
		if got, want := g.InDegree(v), len(r.in[v]); got != want {
			t.Fatalf("step %d: node %d in-degree %d, want %d", step, v, got, want)
		}
		if got, want := g.SuccessorsSorted(v), sortedKeys(r.out[v]); !idsEqual(got, want) {
			t.Fatalf("step %d: node %d successors %v, want %v", step, v, got, want)
		}
		if got, want := g.PredecessorsSorted(v), sortedKeys(r.in[v]); !idsEqual(got, want) {
			t.Fatalf("step %d: node %d predecessors %v, want %v", step, v, got, want)
		}
	}
	// The inverted label index must answer exactly the reference scan, and
	// labels that died out must be absent from the index entirely.
	for l := range labels {
		if got, want := g.NodesWithLabel(l), r.nodesWithLabel(l); !idsEqual(got, want) {
			t.Fatalf("step %d: NodesWithLabel(%q) = %v, want %v", step, l, got, want)
		}
	}
	count := 0
	g.Labels(func(l string, n int) bool {
		count += n
		if want := len(r.nodesWithLabel(l)); n != want {
			t.Fatalf("step %d: Labels count for %q = %d, want %d", step, l, n, want)
		}
		return true
	})
	if count != len(r.labels) {
		t.Fatalf("step %d: label index covers %d nodes, want %d", step, count, len(r.labels))
	}
	if rebuilt := r.rebuild(); !g.Equal(rebuilt) || !rebuilt.Equal(g) {
		t.Fatalf("step %d: Equal against rebuilt reference failed", step)
	}
}

func TestDifferentialRandomStream(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := gen.Synthetic(gen.GraphSpec{Nodes: 120, Edges: 300, Labels: 7, ZipfLabels: true, Seed: seed})
			ref := newRef()
			g.Nodes(func(v graph.NodeID, l string) bool {
				ref.addNode(v, l)
				return true
			})
			g.Edges(func(e graph.Edge) bool {
				ref.addEdge(e.From, e.To)
				return true
			})
			ref.compare(t, g, -1)

			step := 0
			for round := 0; round < 20; round++ {
				// Edge insert/delete updates from the workload generator,
				// applied to both implementations.
				batch := gen.Updates(g, gen.UpdateSpec{Count: 25, InsertRatio: 0.5, Locality: 0.4, Seed: seed*1000 + int64(round)})
				for _, u := range batch {
					if u.Op == graph.Insert {
						ref.ensureNode(u.From, u.FromLabel)
						ref.ensureNode(u.To, u.ToLabel)
						ref.addEdge(u.From, u.To)
					} else {
						ref.deleteEdge(u.From, u.To)
					}
					if err := g.Apply(u); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					step++
				}
				// Relabels (AddNode on an existing node) exercise the
				// inverted-index maintenance the substrate must get right.
				nodes := g.NodesSorted()
				for i := 0; i < 10 && len(nodes) > 0; i++ {
					v := nodes[rng.Intn(len(nodes))]
					l := fmt.Sprintf("l%d", rng.Intn(9))
					ref.addNode(v, l)
					g.AddNode(v, l)
					step++
				}
				// Occasional node deletions recycle dense slots.
				for i := 0; i < 3 && len(nodes) > 3; i++ {
					v := nodes[rng.Intn(len(nodes))]
					ref.deleteNode(v)
					g.DeleteNode(v)
					step++
				}
				// And fresh nodes reuse them.
				for i := 0; i < 3; i++ {
					v := g.MaxNodeID() + 1 + graph.NodeID(rng.Intn(5))
					l := fmt.Sprintf("l%d", rng.Intn(9))
					ref.addNode(v, l)
					g.AddNode(v, l)
					step++
				}
				ref.compare(t, g, step)
			}
		})
	}
}

// TestHybridAdjacencyPromotion pushes one node's degree across the
// promotion threshold and back down, checking sorted adjacency and
// membership at every size.
func TestHybridAdjacencyPromotion(t *testing.T) {
	g := graph.New()
	g.AddNode(0, "hub")
	const n = 100 // far past any promotion threshold
	for i := 1; i <= n; i++ {
		g.AddNode(graph.NodeID(i), "leaf")
	}
	perm := rand.New(rand.NewSource(7)).Perm(n)
	added := make(map[graph.NodeID]bool)
	for _, i := range perm {
		w := graph.NodeID(i + 1)
		g.AddEdge(0, w)
		added[w] = true
		if got, want := g.SuccessorsSorted(0), sortedKeys(added); !idsEqual(got, want) {
			t.Fatalf("after adding %d edges: successors %v, want %v", len(added), got, want)
		}
		if !g.HasEdge(0, w) {
			t.Fatalf("edge (0,%d) missing right after insert", w)
		}
	}
	for _, i := range perm {
		w := graph.NodeID(i + 1)
		g.DeleteEdge(0, w)
		delete(added, w)
		if g.HasEdge(0, w) {
			t.Fatalf("edge (0,%d) still present after delete", w)
		}
		if got, want := g.SuccessorsSorted(0), sortedKeys(added); !idsEqual(got, want) {
			t.Fatalf("after deleting down to %d edges: successors %v, want %v", len(added), got, want)
		}
	}
}
