package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a small line-oriented text format so that the CLI
// tools and examples can persist graphs:
//
//	# comment
//	n <id> <label>
//	e <from> <to>
//
// Node lines must precede edge lines that use them. The format
// round-trips: Write emits nodes and edges in sorted order (deterministic
// output for identical graphs), labels may contain interior spaces (Read
// joins the trailing fields), and Read rejects duplicate node or edge
// declarations with a line-numbered error instead of silently relabeling
// or collapsing them.

// Write serializes g in the text format, nodes then edges, in sorted order
// so output is deterministic. Labels the whitespace-splitting reader
// cannot reproduce — anything containing a newline, tab, or leading/
// trailing/consecutive spaces — are rejected rather than silently
// mangled, keeping Write∘Read the identity on everything Write accepts.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, v := range g.NodesSorted() {
		label := g.Label(v)
		if label != strings.Join(strings.Fields(label), " ") {
			return fmt.Errorf("graph: node %d: label %q is not representable in the text format", v, label)
		}
		if _, err := fmt.Fprintf(bw, "n %d %s\n", v, label); err != nil {
			return err
		}
	}
	for _, e := range g.EdgesSorted() {
		if _, err := fmt.Fprintf(bw, "e %d %d\n", e.From, e.To); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text format produced by Write.
func Read(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "n":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: bad node line %q", lineNo, line)
			}
			id, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node id: %v", lineNo, err)
			}
			label := ""
			if len(fields) >= 3 {
				// Join trailing fields so labels with interior spaces
				// round-trip through Write.
				label = strings.Join(fields[2:], " ")
			}
			if g.HasNode(NodeID(id)) {
				return nil, fmt.Errorf("graph: line %d: duplicate node %d", lineNo, id)
			}
			g.AddNode(NodeID(id), label)
		case "e":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: bad edge line %q", lineNo, line)
			}
			from, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge source: %v", lineNo, err)
			}
			to, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge target: %v", lineNo, err)
			}
			if !g.HasNode(NodeID(from)) || !g.HasNode(NodeID(to)) {
				return nil, fmt.Errorf("graph: line %d: edge references undeclared node", lineNo)
			}
			if !g.AddEdge(NodeID(from), NodeID(to)) {
				return nil, fmt.Errorf("graph: line %d: duplicate edge (%d,%d)", lineNo, from, to)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}
