package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a small line-oriented text format so that the CLI
// tools and examples can persist graphs:
//
//	# comment
//	n <id> <label>
//	e <from> <to>
//
// Node lines must precede edge lines that use them.

// Write serializes g in the text format, nodes then edges, in sorted order
// so output is deterministic.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, v := range g.NodesSorted() {
		if _, err := fmt.Fprintf(bw, "n %d %s\n", v, g.Label(v)); err != nil {
			return err
		}
	}
	for _, e := range g.EdgesSorted() {
		if _, err := fmt.Fprintf(bw, "e %d %d\n", e.From, e.To); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text format produced by Write.
func Read(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "n":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: bad node line %q", lineNo, line)
			}
			id, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node id: %v", lineNo, err)
			}
			label := ""
			if len(fields) >= 3 {
				label = fields[2]
			}
			g.AddNode(NodeID(id), label)
		case "e":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: bad edge line %q", lineNo, line)
			}
			from, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge source: %v", lineNo, err)
			}
			to, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge target: %v", lineNo, err)
			}
			if !g.HasNode(NodeID(from)) || !g.HasNode(NodeID(to)) {
				return nil, fmt.Errorf("graph: line %d: edge references undeclared node", lineNo)
			}
			g.AddEdge(NodeID(from), NodeID(to))
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}
