// Package graph provides the directed, node-labeled graph substrate used by
// every query class in this library.
//
// Graphs follow the model of Fan, Hu and Tian, "Incremental Graph
// Computations: Doable and Undoable" (SIGMOD 2017), Section 2: a graph
// G = (V, E, l) has a finite node set V, an edge set E ⊆ V × V, and a label
// l(v) on every node. Edges are unlabeled; all query semantics (RPQ strings,
// KWS keywords, ISO label equality) read node labels.
//
// The representation is performance-oriented; four design decisions carry
// it (see also doc.go at the module root):
//
//   - Interned labels. Label strings are interned process-wide into dense
//     LabelIDs (intern.go); a node stores its uint32 LabelID, and every
//     graph maintains an inverted label→sorted-nodes index, so
//     NodesWithLabel is an index lookup rather than an O(|V|) scan and hot
//     loops compare uint32s instead of strings. Invariant: every mutation
//     that changes l(v) — AddNode relabels, DeleteNode — must update the
//     inverted index in the same step.
//
//   - Sharded node space. Nodes hash into a power-of-two number of shards
//     (shard.go), each owning its slice of the node table, its dense-slot
//     allocator, and the adjacency of its nodes; cross-shard edges are
//     recorded on both endpoint shards. ApplyBatch partitions a validated
//     batch by owning shard and applies it with a two-phase protocol —
//     parallel per-shard application, then a deterministic serial merge of
//     label-index/edge-count deltas in shard order — so ΔG itself scales
//     across cores while producing the same graph as a serial application
//     (and byte-identical query answers).
//
//   - Hybrid adjacency. Out- and in-adjacency are sorted []NodeID slices
//     for low-degree nodes, promoted to hash sets past a degree threshold
//     (adjset.go). Unit updates stay O(degree) ≈ O(1), iteration is a
//     cache-friendly linear scan, and SuccessorsSorted is allocation-free.
//
//   - Dense slots + scratch. Each node gets a dense slot index at
//     insertion (interleaved across shards); the traversal kernels in
//     traverse.go use an epoch-stamped visited array over slots plus
//     pooled queues (scratch.go) instead of allocating map[NodeID]bool
//     per call.
//
// Concurrency contract (parallel.go): mutations require exclusive access,
// but between mutations any number of goroutines may read and traverse the
// graph concurrently — call PrepareConcurrentReads after the last mutation
// to flush the lazily rebuilt sorted-adjacency caches first. Inside one
// ApplyBatch the shards of a large batch are mutated in parallel under the
// two-phase protocol of shard.go; that parallelism is internal to the
// mutation and invisible to readers, who still see mutations as exclusive.
// The parallel engines in kws, rpq and iso are built on exactly this split.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node. IDs are arbitrary; they need not be dense.
type NodeID int64

// Edge is a directed edge from From to To.
type Edge struct {
	From, To NodeID
}

// node is the per-node record: interned label, dense slot, adjacency.
type node struct {
	label LabelID
	slot  int32
	out   adjSet
	in    adjSet
}

// Graph is a directed graph with string-labeled nodes.
// The zero value is not usable; call New.
type Graph struct {
	// shards partition the node space by a hash of the NodeID (shard.go);
	// the count is a power of two, fixed between SetShards calls.
	shards []shard
	// shardShift maps the node hash to a shard index (64 - log2(len(shards))).
	shardShift uint
	// slotCeil is the exclusive upper bound of global dense slot indices;
	// the traversal scratch sizes its visited array to it.
	slotCeil int32
	// byLabel is the inverted label index: every node appears in the set
	// of its current label, and nowhere else. Graph-global; the parallel
	// batch path defers its updates to the serial merge phase.
	byLabel map[LabelID]*adjSet
	edges   int
	// gen counts mutations; generation-stamped answer caches (GenCache)
	// compare against it to reuse derived results between updates.
	gen uint64
	// primaryScratch and scratchPool form the worker-keyed traversal
	// scratch pool (scratch.go); concurrent and nested traversals each
	// check out their own buffer.
	primaryScratch atomic.Pointer[scratch]
	scratchPool    sync.Pool
	// dirtySorted queues map-mode adjacency sets whose sorted cache a
	// mutation invalidated; PrepareConcurrentReads drains it (parallel.go).
	dirtySorted []*adjSet
	// workers is the SetParallelism budget; 0 means runtime.GOMAXPROCS(0).
	workers int
	// edgesSorted memoizes EdgesSorted between mutations.
	edgesSorted GenCache[[]Edge]
	// overlapDepth counts open overlapped-apply windows (see
	// BeginOverlappedApplies); while nonzero, mutations serialize their
	// writes to graph-global merge state — byLabel, dirtySorted, slotCeil,
	// edges, gen — under overlapMu so shard-disjoint batches may apply
	// concurrently. Zero (the default) keeps the serial path lock-free.
	overlapDepth atomic.Int32
	overlapMu    sync.Mutex
}

// New returns an empty graph with the default shard count (the smallest
// power of two covering runtime.GOMAXPROCS(0)).
func New() *Graph { return NewSharded(0) }

// NewSharded returns an empty graph partitioned into n shards (rounded up
// to a power of two and clamped to [1, MaxShards]; n <= 0 selects the
// default, matching Parallelism()).
func NewSharded(n int) *Graph {
	p := normalizeShards(n)
	g := &Graph{
		shards:     make([]shard, p),
		shardShift: shardShiftFor(p),
		byLabel:    make(map[LabelID]*adjSet),
	}
	for i := range g.shards {
		g.shards[i].nodes = make(map[NodeID]*node)
	}
	return g
}

// Generation returns the mutation generation: it changes whenever the
// graph changes (nodes, labels, edges, or a reshard). Derived-answer
// caches stamp their results with it; see GenCache.
func (g *Graph) Generation() uint64 { return g.gen }

// BeginOverlappedApplies opens an overlapped-apply window: until the
// matching EndOverlappedApplies, ApplyBatch calls for batches with
// disjoint TouchedShards may run concurrently on this graph. Inside a
// window every mutation serializes its writes to the graph-global merge
// state (the inverted label index, the dirty-adjacency queue, the edge
// and generation counters, the slot ceiling) under an internal mutex, so
// the final graph is identical to some serial order of the same batches
// — the per-shard state the batches touch is disjoint by construction,
// and the global merges commute. Calls nest (the window is refcounted);
// each concurrent applier must open its own window before applying and
// close it after, so the flag is visibly set before any overlapped
// mutation starts. Readers remain excluded for the whole window, exactly
// as for a single mutation.
func (g *Graph) BeginOverlappedApplies() { g.overlapDepth.Add(1) }

// EndOverlappedApplies closes a window opened by BeginOverlappedApplies.
func (g *Graph) EndOverlappedApplies() { g.overlapDepth.Add(-1) }

// mergeLock serializes graph-global merge-state writes while an
// overlapped-apply window is open. Outside a window it is a single atomic
// load — the serial path stays lock-free.
func (g *Graph) mergeLock() bool {
	if g.overlapDepth.Load() == 0 {
		return false
	}
	g.overlapMu.Lock()
	return true
}

func (g *Graph) mergeUnlock(locked bool) {
	if locked {
		g.overlapMu.Unlock()
	}
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int {
	n := 0
	for i := range g.shards {
		n += len(g.shards[i].nodes)
	}
	return n
}

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.edges }

// HasNode reports whether v exists.
func (g *Graph) HasNode(v NodeID) bool {
	return g.rec(v) != nil
}

// Label returns the label of v, or "" if v does not exist.
func (g *Graph) Label(v NodeID) string {
	rec := g.rec(v)
	if rec == nil {
		return ""
	}
	return LabelOf(rec.label)
}

// LabelIDAt returns the interned label of v, or NoLabel if v does not
// exist. Hot loops compare the result against interned query labels
// instead of strings.
func (g *Graph) LabelIDAt(v NodeID) LabelID {
	rec := g.rec(v)
	if rec == nil {
		return NoLabel
	}
	return rec.label
}

// labelIndexAdd inserts v into the inverted index under lid.
func (g *Graph) labelIndexAdd(lid LabelID, v NodeID) {
	set := g.byLabel[lid]
	if set == nil {
		set = &adjSet{}
		g.byLabel[lid] = set
	}
	set.add(v)
	g.noteDirty(set)
}

// labelIndexRemove removes v from the inverted index under lid.
func (g *Graph) labelIndexRemove(lid LabelID, v NodeID) {
	if set := g.byLabel[lid]; set != nil {
		set.remove(v)
		g.noteDirty(set)
		if set.len() == 0 {
			delete(g.byLabel, lid)
		}
	}
}

// AddNode inserts node v with the given label. Adding an existing node
// relabels it (updating the inverted label index).
func (g *Graph) AddNode(v NodeID, label string) {
	g.addNodeID(v, InternLabel(label))
}

// addNodeID is AddNode for an already-interned label.
func (g *Graph) addNodeID(v NodeID, lid LabelID) {
	si := g.shardIdxOf(v)
	sh := &g.shards[si]
	if rec, ok := sh.nodes[v]; ok {
		if rec.label != lid {
			locked := g.mergeLock()
			g.labelIndexRemove(rec.label, v)
			rec.label = lid
			g.labelIndexAdd(lid, v)
			g.gen++
			g.mergeUnlock(locked)
		}
		return
	}
	slot := sh.allocSlot(int32(len(g.shards)), int32(si))
	sh.nodes[v] = &node{label: lid, slot: slot}
	locked := g.mergeLock()
	g.bumpSlotCeil(slot)
	g.labelIndexAdd(lid, v)
	g.gen++
	g.mergeUnlock(locked)
}

// EnsureNode inserts v with label only if v does not already exist, and
// reports whether it was inserted.
func (g *Graph) EnsureNode(v NodeID, label string) bool {
	if g.HasNode(v) {
		return false
	}
	g.AddNode(v, label)
	return true
}

// HasEdge reports whether edge (v, w) exists.
func (g *Graph) HasEdge(v, w NodeID) bool {
	rec := g.rec(v)
	return rec != nil && rec.out.has(w)
}

// AddEdge inserts edge (v, w). Both endpoints must exist. It reports whether
// the edge was new.
func (g *Graph) AddEdge(v, w NodeID) bool {
	rv := g.rec(v)
	if rv == nil {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d): endpoint missing", v, w))
	}
	rw := g.rec(w)
	if rw == nil {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d): endpoint missing", v, w))
	}
	if !rv.out.add(w) {
		return false
	}
	rw.in.add(v)
	locked := g.mergeLock()
	g.noteDirty(&rv.out)
	g.noteDirty(&rw.in)
	g.edges++
	g.gen++
	g.mergeUnlock(locked)
	return true
}

// DeleteEdge removes edge (v, w) and reports whether it existed.
// Endpoint nodes are retained even if they become isolated.
func (g *Graph) DeleteEdge(v, w NodeID) bool {
	rv := g.rec(v)
	if rv == nil || !rv.out.remove(w) {
		return false
	}
	rw := g.rec(w)
	rw.in.remove(v)
	locked := g.mergeLock()
	g.noteDirty(&rv.out)
	g.noteDirty(&rw.in)
	g.edges--
	g.gen++
	g.mergeUnlock(locked)
	return true
}

// DeleteNode removes node v together with all incident edges, and reports
// whether it existed.
func (g *Graph) DeleteNode(v NodeID) bool {
	si := g.shardIdxOf(v)
	sh := &g.shards[si]
	rec, ok := sh.nodes[v]
	if !ok {
		return false
	}
	locked := g.mergeLock()
	defer g.mergeUnlock(locked)
	rec.out.forEach(func(w NodeID) bool {
		set := &g.rec(w).in
		set.remove(v)
		g.noteDirty(set)
		g.edges--
		return true
	})
	rec.in.forEach(func(u NodeID) bool {
		// A self-loop was already discounted via the out set.
		if u == v {
			return true
		}
		set := &g.rec(u).out
		set.remove(v)
		g.noteDirty(set)
		g.edges--
		return true
	})
	g.labelIndexRemove(rec.label, v)
	sh.recycleSlot(rec.slot, int32(len(g.shards)))
	delete(sh.nodes, v)
	g.gen++
	return true
}

// OutDegree returns the number of successors of v.
func (g *Graph) OutDegree(v NodeID) int {
	rec := g.rec(v)
	if rec == nil {
		return 0
	}
	return rec.out.len()
}

// InDegree returns the number of predecessors of v.
func (g *Graph) InDegree(v NodeID) int {
	rec := g.rec(v)
	if rec == nil {
		return 0
	}
	return rec.in.len()
}

// Successors calls fn for every successor of v until fn returns false.
// Iteration order is unspecified.
func (g *Graph) Successors(v NodeID, fn func(w NodeID) bool) {
	if rec := g.rec(v); rec != nil {
		rec.out.forEach(fn)
	}
}

// Predecessors calls fn for every predecessor of v until fn returns false.
// Iteration order is unspecified.
func (g *Graph) Predecessors(v NodeID, fn func(u NodeID) bool) {
	if rec := g.rec(v); rec != nil {
		rec.in.forEach(fn)
	}
}

// SuccessorsSorted returns the successors of v in ascending NodeID order.
// Algorithms that need the paper's "predefined order" tie-break use this.
// The returned slice is owned by the graph: callers must not mutate it, and
// it is valid only until the next mutation of v's adjacency.
func (g *Graph) SuccessorsSorted(v NodeID) []NodeID {
	rec := g.rec(v)
	if rec == nil {
		return nil
	}
	return rec.out.sorted()
}

// PredecessorsSorted returns the predecessors of v in ascending NodeID
// order, under the same ownership contract as SuccessorsSorted.
func (g *Graph) PredecessorsSorted(v NodeID) []NodeID {
	rec := g.rec(v)
	if rec == nil {
		return nil
	}
	return rec.in.sorted()
}

// Nodes calls fn for every node until fn returns false.
// Iteration order is unspecified.
func (g *Graph) Nodes(fn func(v NodeID, label string) bool) {
	for i := range g.shards {
		for v, rec := range g.shards[i].nodes {
			if !fn(v, LabelOf(rec.label)) {
				return
			}
		}
	}
}

// NodesSorted returns all node IDs in ascending order.
func (g *Graph) NodesSorted() []NodeID {
	vs := make([]NodeID, 0, g.NumNodes())
	for i := range g.shards {
		for v := range g.shards[i].nodes {
			vs = append(vs, v)
		}
	}
	sortNodeIDs(vs)
	return vs
}

// Edges calls fn for every edge until fn returns false.
func (g *Graph) Edges(fn func(e Edge) bool) {
	for i := range g.shards {
		for v, rec := range g.shards[i].nodes {
			stop := false
			rec.out.forEach(func(w NodeID) bool {
				if !fn(Edge{v, w}) {
					stop = true
					return false
				}
				return true
			})
			if stop {
				return
			}
		}
	}
}

// EdgesSorted returns all edges ordered by (From, To). The result is
// memoized against the mutation generation: repeated calls between
// updates return the same slice in O(1) instead of re-sorting. The slice
// is owned by the graph — treat it as read-only; it is valid until the
// next mutation.
func (g *Graph) EdgesSorted() []Edge {
	return g.edgesSorted.Get(g, func() []Edge {
		es := make([]Edge, 0, g.edges)
		g.Edges(func(e Edge) bool { es = append(es, e); return true })
		sort.Slice(es, func(i, j int) bool {
			if es[i].From != es[j].From {
				return es[i].From < es[j].From
			}
			return es[i].To < es[j].To
		})
		return es
	})
}

// NodesWithLabel returns the IDs of all nodes labeled label, sorted
// ascending. Backed by the inverted label index: cost is O(answer), not
// O(|V|). The slice is freshly allocated and owned by the caller.
func (g *Graph) NodesWithLabel(label string) []NodeID {
	lid, ok := LabelIDOf(label)
	if !ok {
		return nil
	}
	set := g.byLabel[lid]
	if set == nil {
		return nil
	}
	s := set.sorted()
	out := make([]NodeID, len(s))
	copy(out, s)
	return out
}

// NumNodesWithLabelID returns |{v : l(v) = lid}| in O(1).
func (g *Graph) NumNodesWithLabelID(lid LabelID) int {
	set := g.byLabel[lid]
	if set == nil {
		return 0
	}
	return set.len()
}

// NodesWithLabelID calls fn for every node labeled lid, in ascending order,
// until fn returns false. Allocation-free; fn must not mutate the graph.
func (g *Graph) NodesWithLabelID(lid LabelID, fn func(v NodeID) bool) {
	set := g.byLabel[lid]
	if set == nil {
		return
	}
	for _, v := range set.sorted() {
		if !fn(v) {
			return
		}
	}
}

// Labels calls fn once per distinct label present in g with the number of
// nodes carrying it, until fn returns false. Order is unspecified.
func (g *Graph) Labels(fn func(label string, count int) bool) {
	for lid, set := range g.byLabel {
		if !fn(LabelOf(lid), set.len()) {
			return
		}
	}
}

// Clone returns a deep copy of g. The copy shares the process-wide label
// intern table (IDs remain comparable) but no mutable state; it inherits
// the shard count and parallelism budget.
func (g *Graph) Clone() *Graph {
	p := len(g.shards)
	c := &Graph{
		shards:     make([]shard, p),
		shardShift: g.shardShift,
		slotCeil:   g.slotCeil,
		byLabel:    make(map[LabelID]*adjSet, len(g.byLabel)),
		edges:      g.edges,
		gen:        g.gen,
		workers:    g.workers,
	}
	for i := range g.shards {
		sh, csh := &g.shards[i], &c.shards[i]
		csh.nodes = make(map[NodeID]*node, len(sh.nodes))
		csh.slotCap = sh.slotCap
		if len(sh.free) > 0 {
			csh.free = make([]int32, len(sh.free))
			copy(csh.free, sh.free)
		}
		for v, rec := range sh.nodes {
			cn := &node{
				label: rec.label,
				slot:  rec.slot,
				out:   rec.out.clone(),
				in:    rec.in.clone(),
			}
			csh.nodes[v] = cn
			c.noteDirty(&cn.out)
			c.noteDirty(&cn.in)
		}
	}
	for lid, set := range g.byLabel {
		cs := set.clone()
		c.byLabel[lid] = &cs
		c.noteDirty(&cs)
	}
	return c
}

// InducedSubgraph returns the subgraph of g induced by the node set keep:
// its nodes are keep ∩ V and its edges are every edge of g with both
// endpoints in keep (Section 2 of the paper). The subgraph inherits g's
// shard count.
func (g *Graph) InducedSubgraph(keep map[NodeID]bool) *Graph {
	s := NewSharded(len(g.shards))
	for v, in := range keep {
		if !in {
			continue
		}
		if rec := g.rec(v); rec != nil {
			s.addNodeID(v, rec.label)
		}
	}
	s.Nodes(func(v NodeID, _ string) bool {
		g.rec(v).out.forEach(func(w NodeID) bool {
			if s.HasNode(w) {
				s.AddEdge(v, w)
			}
			return true
		})
		return true
	})
	return s
}

// MaxNodeID returns the largest node ID in g, or -1 if g is empty.
// Generators use it to mint fresh IDs.
func (g *Graph) MaxNodeID() NodeID {
	max := NodeID(-1)
	for i := range g.shards {
		for v := range g.shards[i].nodes {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// Equal reports whether g and h have identical node sets, labels and edges.
// Labels compare by interned ID, which is exact because the intern table is
// process-wide. Shard counts need not match: equality is over the abstract
// graph, not the partitioning.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumNodes() != h.NumNodes() || g.NumEdges() != h.NumEdges() {
		return false
	}
	for i := range g.shards {
		for v, rec := range g.shards[i].nodes {
			hrec := h.rec(v)
			if hrec == nil || hrec.label != rec.label {
				return false
			}
		}
	}
	for i := range g.shards {
		for v, rec := range g.shards[i].nodes {
			same := true
			rec.out.forEach(func(w NodeID) bool {
				if !h.HasEdge(v, w) {
					same = false
					return false
				}
				return true
			})
			if !same {
				return false
			}
		}
	}
	return true
}

// String returns a compact human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d |E|=%d}", g.NumNodes(), g.NumEdges())
}
