// Package graph provides the directed, node-labeled graph substrate used by
// every query class in this library.
//
// Graphs follow the model of Fan, Hu and Tian, "Incremental Graph
// Computations: Doable and Undoable" (SIGMOD 2017), Section 2: a graph
// G = (V, E, l) has a finite node set V, an edge set E ⊆ V × V, and a label
// l(v) on every node. Edges are unlabeled; all query semantics (RPQ strings,
// KWS keywords, ISO label equality) read node labels.
//
// The representation keeps both out- and in-adjacency as hash sets so that
// the unit updates of the incremental model — edge insertion (possibly with
// new nodes) and edge deletion — are O(1), and so that incremental
// algorithms can walk predecessors as cheaply as successors.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. IDs are arbitrary; they need not be dense.
type NodeID int64

// Edge is a directed edge from From to To.
type Edge struct {
	From, To NodeID
}

// Graph is a directed graph with string-labeled nodes.
// The zero value is not usable; call New.
type Graph struct {
	labels map[NodeID]string
	out    map[NodeID]map[NodeID]struct{}
	in     map[NodeID]map[NodeID]struct{}
	edges  int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		labels: make(map[NodeID]string),
		out:    make(map[NodeID]map[NodeID]struct{}),
		in:     make(map[NodeID]map[NodeID]struct{}),
	}
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.edges }

// HasNode reports whether v exists.
func (g *Graph) HasNode(v NodeID) bool {
	_, ok := g.labels[v]
	return ok
}

// Label returns the label of v, or "" if v does not exist.
func (g *Graph) Label(v NodeID) string { return g.labels[v] }

// AddNode inserts node v with the given label. Adding an existing node
// relabels it.
func (g *Graph) AddNode(v NodeID, label string) {
	if _, ok := g.labels[v]; !ok {
		g.out[v] = make(map[NodeID]struct{})
		g.in[v] = make(map[NodeID]struct{})
	}
	g.labels[v] = label
}

// EnsureNode inserts v with label only if v does not already exist, and
// reports whether it was inserted.
func (g *Graph) EnsureNode(v NodeID, label string) bool {
	if g.HasNode(v) {
		return false
	}
	g.AddNode(v, label)
	return true
}

// HasEdge reports whether edge (v, w) exists.
func (g *Graph) HasEdge(v, w NodeID) bool {
	succ, ok := g.out[v]
	if !ok {
		return false
	}
	_, ok = succ[w]
	return ok
}

// AddEdge inserts edge (v, w). Both endpoints must exist. It reports whether
// the edge was new.
func (g *Graph) AddEdge(v, w NodeID) bool {
	if !g.HasNode(v) || !g.HasNode(w) {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d): endpoint missing", v, w))
	}
	if g.HasEdge(v, w) {
		return false
	}
	g.out[v][w] = struct{}{}
	g.in[w][v] = struct{}{}
	g.edges++
	return true
}

// DeleteEdge removes edge (v, w) and reports whether it existed.
// Endpoint nodes are retained even if they become isolated.
func (g *Graph) DeleteEdge(v, w NodeID) bool {
	if !g.HasEdge(v, w) {
		return false
	}
	delete(g.out[v], w)
	delete(g.in[w], v)
	g.edges--
	return true
}

// DeleteNode removes node v together with all incident edges, and reports
// whether it existed.
func (g *Graph) DeleteNode(v NodeID) bool {
	if !g.HasNode(v) {
		return false
	}
	for w := range g.out[v] {
		delete(g.in[w], v)
		g.edges--
	}
	for u := range g.in[v] {
		// A self-loop was already discounted via the out map.
		if u == v {
			continue
		}
		delete(g.out[u], v)
		g.edges--
	}
	delete(g.out, v)
	delete(g.in, v)
	delete(g.labels, v)
	return true
}

// OutDegree returns the number of successors of v.
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree returns the number of predecessors of v.
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// Successors calls fn for every successor of v until fn returns false.
// Iteration order is unspecified.
func (g *Graph) Successors(v NodeID, fn func(w NodeID) bool) {
	for w := range g.out[v] {
		if !fn(w) {
			return
		}
	}
}

// Predecessors calls fn for every predecessor of v until fn returns false.
// Iteration order is unspecified.
func (g *Graph) Predecessors(v NodeID, fn func(u NodeID) bool) {
	for u := range g.in[v] {
		if !fn(u) {
			return
		}
	}
}

// SuccessorsSorted returns the successors of v in ascending NodeID order.
// Algorithms that need the paper's "predefined order" tie-break use this.
func (g *Graph) SuccessorsSorted(v NodeID) []NodeID {
	ws := make([]NodeID, 0, len(g.out[v]))
	for w := range g.out[v] {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	return ws
}

// PredecessorsSorted returns the predecessors of v in ascending NodeID order.
func (g *Graph) PredecessorsSorted(v NodeID) []NodeID {
	us := make([]NodeID, 0, len(g.in[v]))
	for u := range g.in[v] {
		us = append(us, u)
	}
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	return us
}

// Nodes calls fn for every node until fn returns false.
// Iteration order is unspecified.
func (g *Graph) Nodes(fn func(v NodeID, label string) bool) {
	for v, l := range g.labels {
		if !fn(v, l) {
			return
		}
	}
}

// NodesSorted returns all node IDs in ascending order.
func (g *Graph) NodesSorted() []NodeID {
	vs := make([]NodeID, 0, len(g.labels))
	for v := range g.labels {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Edges calls fn for every edge until fn returns false.
func (g *Graph) Edges(fn func(e Edge) bool) {
	for v, succ := range g.out {
		for w := range succ {
			if !fn(Edge{v, w}) {
				return
			}
		}
	}
}

// EdgesSorted returns all edges ordered by (From, To).
func (g *Graph) EdgesSorted() []Edge {
	es := make([]Edge, 0, g.edges)
	g.Edges(func(e Edge) bool { es = append(es, e); return true })
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
	return es
}

// NodesWithLabel returns the IDs of all nodes labeled label, sorted.
func (g *Graph) NodesWithLabel(label string) []NodeID {
	var vs []NodeID
	for v, l := range g.labels {
		if l == label {
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		labels: make(map[NodeID]string, len(g.labels)),
		out:    make(map[NodeID]map[NodeID]struct{}, len(g.out)),
		in:     make(map[NodeID]map[NodeID]struct{}, len(g.in)),
		edges:  g.edges,
	}
	for v, l := range g.labels {
		c.labels[v] = l
	}
	for v, set := range g.out {
		m := make(map[NodeID]struct{}, len(set))
		for w := range set {
			m[w] = struct{}{}
		}
		c.out[v] = m
	}
	for v, set := range g.in {
		m := make(map[NodeID]struct{}, len(set))
		for w := range set {
			m[w] = struct{}{}
		}
		c.in[v] = m
	}
	return c
}

// InducedSubgraph returns the subgraph of g induced by the node set keep:
// its nodes are keep ∩ V and its edges are every edge of g with both
// endpoints in keep (Section 2 of the paper).
func (g *Graph) InducedSubgraph(keep map[NodeID]bool) *Graph {
	s := New()
	for v := range keep {
		if keep[v] && g.HasNode(v) {
			s.AddNode(v, g.labels[v])
		}
	}
	s.Nodes(func(v NodeID, _ string) bool {
		for w := range g.out[v] {
			if s.HasNode(w) {
				s.AddEdge(v, w)
			}
		}
		return true
	})
	return s
}

// MaxNodeID returns the largest node ID in g, or -1 if g is empty.
// Generators use it to mint fresh IDs.
func (g *Graph) MaxNodeID() NodeID {
	max := NodeID(-1)
	for v := range g.labels {
		if v > max {
			max = v
		}
	}
	return max
}

// Equal reports whether g and h have identical node sets, labels and edges.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumNodes() != h.NumNodes() || g.NumEdges() != h.NumEdges() {
		return false
	}
	for v, l := range g.labels {
		if hl, ok := h.labels[v]; !ok || hl != l {
			return false
		}
	}
	for v, succ := range g.out {
		for w := range succ {
			if !h.HasEdge(v, w) {
				return false
			}
		}
	}
	return true
}

// String returns a compact human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d |E|=%d}", g.NumNodes(), g.NumEdges())
}
