package graph

import (
	"errors"
	"fmt"
)

// Op is the kind of a unit update.
type Op int8

// Unit update kinds of the incremental model (Section 2.2): edge insertion
// (possibly with new nodes) and edge deletion.
const (
	Insert Op = iota
	Delete
)

func (op Op) String() string {
	switch op {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", int8(op))
	}
}

// Update is a unit update to a graph. For insertions, FromLabel/ToLabel give
// the labels for endpoints that do not yet exist ("possibly with new
// nodes"); they are ignored for endpoints already present and for deletions.
type Update struct {
	Op        Op
	From, To  NodeID
	FromLabel string
	ToLabel   string
}

// Ins returns an edge-insertion update between existing nodes.
func Ins(v, w NodeID) Update { return Update{Op: Insert, From: v, To: w} }

// InsNew returns an edge-insertion update carrying labels for endpoints that
// may be new.
func InsNew(v, w NodeID, vl, wl string) Update {
	return Update{Op: Insert, From: v, To: w, FromLabel: vl, ToLabel: wl}
}

// Del returns an edge-deletion update.
func Del(v, w NodeID) Update { return Update{Op: Delete, From: v, To: w} }

func (u Update) String() string {
	return fmt.Sprintf("%s(%d,%d)", u.Op, u.From, u.To)
}

// Edge returns the edge the update touches.
func (u Update) Edge() Edge { return Edge{u.From, u.To} }

// Batch is a batch update ΔG: a sequence of unit updates.
type Batch []Update

// Split partitions a batch into insertions ΔG+ and deletions ΔG−,
// preserving order within each class.
func (b Batch) Split() (ins, del Batch) {
	for _, u := range b {
		if u.Op == Insert {
			ins = append(ins, u)
		} else {
			del = append(del, u)
		}
	}
	return ins, del
}

// Normalize removes no-op pairs: the paper assumes w.l.o.g. that ΔG never
// both deletes and inserts the same edge. For a sequentially valid batch,
// the updates touching one edge alternate, so the net effect is determined
// by the first and last update on that edge: if they have the same op the
// last one is kept, otherwise they cancel and every update on that edge is
// dropped.
func (b Batch) Normalize() Batch {
	first := make(map[Edge]Op, len(b))
	last := make(map[Edge]int, len(b))
	for i, u := range b {
		if _, ok := first[u.Edge()]; !ok {
			first[u.Edge()] = u.Op
		}
		last[u.Edge()] = i
	}
	out := make(Batch, 0, len(last))
	for i, u := range b {
		if last[u.Edge()] == i && first[u.Edge()] == u.Op {
			out = append(out, u)
		}
	}
	return out
}

// TouchedNodes returns the set of nodes appearing as an endpoint of any
// update in the batch. These are the seeds of d_Q-neighborhood localization.
func (b Batch) TouchedNodes() map[NodeID]bool {
	set := make(map[NodeID]bool, 2*len(b))
	for _, u := range b {
		set[u.From] = true
		set[u.To] = true
	}
	return set
}

// ErrBadUpdate reports an update that cannot be applied.
var ErrBadUpdate = errors.New("graph: update cannot be applied")

// Apply applies a unit update to g. Inserting an edge creates missing
// endpoints using the update's labels. Applying an insertion of an existing
// edge or a deletion of a missing edge returns ErrBadUpdate.
func (g *Graph) Apply(u Update) error {
	switch u.Op {
	case Insert:
		g.EnsureNode(u.From, u.FromLabel)
		g.EnsureNode(u.To, u.ToLabel)
		if !g.AddEdge(u.From, u.To) {
			return fmt.Errorf("%w: insert of existing edge (%d,%d)", ErrBadUpdate, u.From, u.To)
		}
	case Delete:
		if !g.DeleteEdge(u.From, u.To) {
			return fmt.Errorf("%w: delete of missing edge (%d,%d)", ErrBadUpdate, u.From, u.To)
		}
	default:
		return fmt.Errorf("%w: unknown op %v", ErrBadUpdate, u.Op)
	}
	return nil
}

// ApplyBatch applies every update of ΔG in order, producing G ⊕ ΔG.
// It stops at the first inapplicable update.
//
// Large batches on a multi-shard graph apply shard-parallel: the batch is
// validated and partitioned by owning shard (planBatch), every shard's
// owned effects run concurrently across Parallelism() workers, and the
// per-shard deltas merge serially in shard order (shard.go). The result —
// node set, labels, slot assignment, adjacency membership, counters, and
// any error — is identical to the serial loop (only the internal
// slice-vs-map adjacency representation may differ, because the parallel
// path applies net effects and skips transient promotions; iteration
// order is unspecified either way); batches that would fail partway take
// the serial path so partial application and the error position are
// preserved exactly.
func (g *Graph) ApplyBatch(b Batch) error {
	if len(b) >= parallelBatchMin && len(g.shards) > 1 {
		if workers := g.Parallelism(); workers > 1 {
			if plan, ok := g.planBatch(b); ok {
				g.applyBatchParallel(plan, workers)
				putBatchPlan(plan)
				return nil
			}
		}
	}
	for i, u := range b {
		if err := g.Apply(u); err != nil {
			return fmt.Errorf("update %d: %w", i, err)
		}
	}
	return nil
}

// Inverse returns the update that undoes u. Inverting an insertion that
// created nodes does not remove the nodes (the model keeps them).
func (u Update) Inverse() Update {
	inv := u
	if u.Op == Insert {
		inv.Op = Delete
	} else {
		inv.Op = Insert
	}
	return inv
}

// Inverse returns the batch that undoes b when applied after b
// (reversed order, each update inverted).
func (b Batch) Inverse() Batch {
	inv := make(Batch, len(b))
	for i, u := range b {
		inv[len(b)-1-i] = u.Inverse()
	}
	return inv
}
