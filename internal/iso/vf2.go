package iso

import (
	"incgraph/internal/cost"
	"incgraph/internal/graph"
)

// This file implements the VF2-style enumerator [15]: depth-first extension
// of a partial embedding along the pattern's connectivity order, with
// label, degree and adjacency-consistency pruning. Matching is non-induced
// on the data side, exactly as the paper defines ISO: the match subgraph
// G_s consists of the images of the pattern's nodes and edges.
//
// Three entry points share the searcher:
//
//   - FindAll / Enumerate: the batch algorithm over the whole graph (or a
//     node scope).
//   - EnumerateAnchored: delta enumeration for IncISO — a pattern edge is
//     pinned onto a newly inserted graph edge, so only embeddings that use
//     that edge are explored. This is what confines insertions to the
//     d_Q-neighborhood of ΔG.

// FindAll enumerates every match of p in g, in no particular order.
// A negative or zero limit means unlimited.
//
// Unlimited whole-graph runs fan VF2 out across g.Parallelism() workers by
// partitioning the candidate images of the first search-order node; the
// concatenated result is in exactly the sequential enumeration order.
// Limited runs stay sequential so the enumeration prefix is deterministic.
func FindAll(g *graph.Graph, p *Pattern, limit int, meter *cost.Meter) []Match {
	if limit <= 0 {
		if workers := g.Parallelism(); workers > 1 {
			return findAllParallel(g, p, workers, meter)
		}
	}
	var out []Match
	Enumerate(g, p, nil, meter, func(m Match) bool {
		out = append(out, m)
		return limit <= 0 || len(out) < limit
	})
	return out
}

// findAllParallel is the multi-core batch enumerator: one VF2 subtree per
// candidate image of the root pattern node, distributed over a worker pool.
// Each worker owns a private searcher and meter; per-candidate result
// buckets are concatenated in candidate (ascending NodeID) order, which is
// the order the sequential searcher would have produced.
func findAllParallel(g *graph.Graph, p *Pattern, workers int, meter *cost.Meter) []Match {
	g.PrepareConcurrentReads()
	u0 := p.order[0]
	lbl := p.g.LabelIDAt(u0)
	cands := make([]graph.NodeID, 0, g.NumNodesWithLabelID(lbl))
	g.NodesWithLabelID(lbl, func(v graph.NodeID) bool {
		cands = append(cands, v)
		return true
	})
	buckets := make([][]Match, len(cands))
	meters := make([]cost.Meter, workers)
	// One searcher per worker, reset per candidate: the candidate-level
	// tasks are tiny, so per-candidate map allocations would dominate.
	searchers := make([]*searcher, workers)
	curIdx := make([]int, workers)
	graph.ParallelFor(workers, len(cands), func(worker, i int) {
		s := searchers[worker]
		if s == nil {
			s = &searcher{
				g:     g,
				p:     p,
				core:  make(map[graph.NodeID]graph.NodeID, len(p.nodes)),
				used:  make(map[graph.NodeID]bool, len(p.nodes)),
				meter: &meters[worker],
			}
			s.order = p.order
			w := worker
			s.fn = func(m Match) bool {
				buckets[curIdx[w]] = append(buckets[curIdx[w]], m)
				return true
			}
			searchers[worker] = s
		}
		curIdx[worker] = i
		clear(s.core)
		clear(s.used)
		v := cands[i]
		if s.feasible(u0, v) {
			s.core[u0] = v
			s.used[v] = true
			s.extend(1)
		}
	})
	for i := range meters {
		meter.Merge(&meters[i])
	}
	var out []Match
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out
}

// Enumerate calls fn for every match of p in g whose image nodes all lie in
// scope (pass nil for the whole graph). Iteration stops when fn returns
// false. Matches are reported aligned with p.Nodes().
func Enumerate(g *graph.Graph, p *Pattern, scope map[graph.NodeID]bool, meter *cost.Meter, fn func(Match) bool) {
	s := &searcher{
		g:     g,
		p:     p,
		scope: scope,
		core:  make(map[graph.NodeID]graph.NodeID, len(p.nodes)),
		used:  make(map[graph.NodeID]bool, len(p.nodes)),
		meter: meter,
		fn:    fn,
	}
	s.order = p.order
	s.extend(0)
}

// EnumerateAnchored calls fn for every match whose embedding extends the
// given anchor (pattern node → graph node). It returns immediately when the
// anchor itself is infeasible. IncISO anchors each pattern edge on each
// inserted graph edge.
func EnumerateAnchored(g *graph.Graph, p *Pattern, anchor map[graph.NodeID]graph.NodeID, meter *cost.Meter, fn func(Match) bool) {
	s := &searcher{
		g:     g,
		p:     p,
		core:  make(map[graph.NodeID]graph.NodeID, len(p.nodes)),
		used:  make(map[graph.NodeID]bool, len(p.nodes)),
		meter: meter,
		fn:    fn,
	}
	// Install and validate the anchor.
	for u, v := range anchor {
		if !s.feasible(u, v) {
			return
		}
		s.core[u] = v
		s.used[v] = true
	}
	// Search order: anchored nodes first (already mapped), then the same
	// most-constrained greedy extension used by the batch order. Orders for
	// pattern-edge anchors are precomputed on the Pattern.
	seed := make([]graph.NodeID, 0, len(anchor))
	for u := range anchor {
		seed = append(seed, u)
	}
	if len(seed) == 2 {
		if o, ok := p.edgeOrders[graph.Edge{From: seed[0], To: seed[1]}]; ok {
			s.order = o
		} else if o, ok := p.edgeOrders[graph.Edge{From: seed[1], To: seed[0]}]; ok {
			s.order = o
		}
	} else if len(seed) == 1 {
		if o, ok := p.edgeOrders[graph.Edge{From: seed[0], To: seed[0]}]; ok {
			s.order = o
		}
	}
	if s.order == nil {
		s.order = p.greedyOrder(seed)
	}
	s.extend(len(anchor))
}

// searcher carries the state of one enumeration.
type searcher struct {
	g     *graph.Graph
	p     *Pattern
	scope map[graph.NodeID]bool
	order []graph.NodeID
	core  map[graph.NodeID]graph.NodeID
	used  map[graph.NodeID]bool
	meter *cost.Meter
	fn    func(Match) bool
	stop  bool
}

func (s *searcher) inScope(v graph.NodeID) bool { return s.scope == nil || s.scope[v] }

// feasible reports whether mapping u→v keeps the partial embedding
// consistent: labels equal, v unused and in scope, and every pattern edge
// between u and an already-mapped node has its image in g.
func (s *searcher) feasible(u, v graph.NodeID) bool {
	s.meter.AddNodes(1)
	pg := s.p.g
	if s.used[v] || s.g.LabelIDAt(v) != pg.LabelIDAt(u) || !s.inScope(v) {
		return false
	}
	if s.g.OutDegree(v) < pg.OutDegree(u) || s.g.InDegree(v) < pg.InDegree(u) {
		return false
	}
	ok := true
	pg.Successors(u, func(q graph.NodeID) bool {
		s.meter.AddEdges(1)
		if q == u {
			return true // self-loop handled below
		}
		if img, mapped := s.core[q]; mapped && !s.g.HasEdge(v, img) {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		return false
	}
	pg.Predecessors(u, func(q graph.NodeID) bool {
		s.meter.AddEdges(1)
		if q == u {
			return true
		}
		if img, mapped := s.core[q]; mapped && !s.g.HasEdge(img, v) {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		return false
	}
	if pg.HasEdge(u, u) && !s.g.HasEdge(v, v) {
		return false
	}
	return true
}

// candidates yields the possible images of pattern node u given the current
// partial mapping.
func (s *searcher) candidates(u graph.NodeID, yield func(graph.NodeID) bool) {
	pg := s.p.g
	var anchor graph.NodeID
	anchorDir := 0
	pg.Predecessors(u, func(q graph.NodeID) bool {
		if _, mapped := s.core[q]; mapped && q != u {
			anchor, anchorDir = s.core[q], +1
			return false
		}
		return true
	})
	if anchorDir == 0 {
		pg.Successors(u, func(q graph.NodeID) bool {
			if _, mapped := s.core[q]; mapped && q != u {
				anchor, anchorDir = s.core[q], -1
				return false
			}
			return true
		})
	}
	switch anchorDir {
	case +1:
		s.g.Successors(anchor, yield)
	case -1:
		s.g.Predecessors(anchor, yield)
	default:
		if s.scope != nil {
			for v := range s.scope {
				if !yield(v) {
					return
				}
			}
			return
		}
		// No mapped neighbor to anchor on: enumerate u's label class
		// straight off the inverted label index.
		s.g.NodesWithLabelID(pg.LabelIDAt(u), yield)
	}
}

func (s *searcher) extend(depth int) {
	if s.stop {
		return
	}
	if depth == len(s.p.nodes) {
		m := make(Match, len(s.p.nodes))
		for u, v := range s.core {
			m[s.p.idx[u]] = v
		}
		if !s.fn(m) {
			s.stop = true
		}
		return
	}
	u := s.order[depth]
	s.candidates(u, func(v graph.NodeID) bool {
		if s.feasible(u, v) {
			s.core[u] = v
			s.used[v] = true
			s.extend(depth + 1)
			delete(s.core, u)
			delete(s.used, v)
		}
		return !s.stop
	})
}
