package iso

import (
	"math/rand"
	"testing"

	"incgraph/internal/cost"
	"incgraph/internal/graph"
)

func TestPatternValidation(t *testing.T) {
	if _, err := NewPattern(graph.New()); err == nil {
		t.Fatalf("empty pattern accepted")
	}
	g := graph.New()
	g.AddNode(0, "a")
	g.AddNode(1, "b") // disconnected
	if _, err := NewPattern(g); err == nil {
		t.Fatalf("disconnected pattern accepted")
	}
	g.AddEdge(0, 1)
	p, err := NewPattern(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Diameter() != 1 {
		t.Fatalf("diameter = %d", p.Diameter())
	}
	vq, eq := p.Size()
	if vq != 2 || eq != 1 {
		t.Fatalf("size = (%d,%d)", vq, eq)
	}
}

func TestPathPatternMatching(t *testing.T) {
	g := graph.New()
	for i, l := range []string{"a", "b", "c", "b"} {
		g.AddNode(graph.NodeID(i), l)
	}
	g.AddEdge(0, 1) // a→b
	g.AddEdge(1, 2) // b→c
	g.AddEdge(0, 3) // a→b (second b)
	g.AddEdge(3, 2) // b→c
	p := PathPattern("a", "b", "c")
	ms := FindAll(g, p, 0, nil)
	if len(ms) != 2 {
		t.Fatalf("matches = %v", ms)
	}
	for _, m := range ms {
		if err := p.Verify(g, m); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTriangleMatching(t *testing.T) {
	g := graph.New()
	for i := 0; i < 3; i++ {
		g.AddNode(graph.NodeID(i), "x")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	p := TrianglePattern("x", "x", "x")
	ms := FindAll(g, p, 0, nil)
	// A directed 3-cycle with identical labels has 3 automorphic matches.
	if len(ms) != 3 {
		t.Fatalf("triangle matches = %d (%v)", len(ms), ms)
	}
}

func TestNonInducedSemantics(t *testing.T) {
	// Extra edges among matched nodes must not block a match (the paper's
	// G_s is the image subgraph, not the induced one).
	g := graph.New()
	g.AddNode(0, "a")
	g.AddNode(1, "b")
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // extra back edge
	p := PathPattern("a", "b")
	if ms := FindAll(g, p, 0, nil); len(ms) != 1 {
		t.Fatalf("matches = %v", ms)
	}
}

func TestSelfLoopPattern(t *testing.T) {
	pg := graph.New()
	pg.AddNode(0, "a")
	pg.AddEdge(0, 0)
	p := MustPattern(pg)
	g := graph.New()
	g.AddNode(1, "a")
	g.AddNode(2, "a")
	g.AddEdge(1, 1)
	if ms := FindAll(g, p, 0, nil); len(ms) != 1 || ms[0][0] != 1 {
		t.Fatalf("self-loop matches = %v", ms)
	}
}

func TestFindAllLimit(t *testing.T) {
	g := graph.New()
	for i := 0; i < 10; i++ {
		g.AddNode(graph.NodeID(i), "a")
	}
	pg := graph.New()
	pg.AddNode(0, "a")
	p := MustPattern(pg)
	if ms := FindAll(g, p, 3, nil); len(ms) != 3 {
		t.Fatalf("limit ignored: %d", len(ms))
	}
}

func TestStarPattern(t *testing.T) {
	g := graph.New()
	g.AddNode(0, "hub")
	g.AddNode(1, "x")
	g.AddNode(2, "y")
	g.AddNode(3, "x")
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	p := StarPattern("hub", "x", "y")
	ms := FindAll(g, p, 0, nil)
	if len(ms) != 2 { // leaf x can be 1 or 3
		t.Fatalf("star matches = %v", ms)
	}
}

func TestIncDeleteRemovesMatches(t *testing.T) {
	g := graph.New()
	for i, l := range []string{"a", "b", "c"} {
		g.AddNode(graph.NodeID(i), l)
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	p := PathPattern("a", "b", "c")
	ix := Build(g, p, nil)
	if ix.NumMatches() != 1 {
		t.Fatalf("setup: %d matches", ix.NumMatches())
	}
	d, err := ix.Apply(graph.Batch{graph.Del(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Removed) != 1 || ix.NumMatches() != 0 {
		t.Fatalf("delta = %+v", d)
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIncInsertAddsMatches(t *testing.T) {
	g := graph.New()
	for i, l := range []string{"a", "b", "c"} {
		g.AddNode(graph.NodeID(i), l)
	}
	g.AddEdge(0, 1)
	p := PathPattern("a", "b", "c")
	ix := Build(g, p, nil)
	d, err := ix.Apply(graph.Batch{graph.Ins(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || ix.NumMatches() != 1 {
		t.Fatalf("delta = %+v", d)
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIncInsertWithNewNodes(t *testing.T) {
	g := graph.New()
	g.AddNode(0, "a")
	p := PathPattern("a", "b")
	ix := Build(g, p, nil)
	d, err := ix.Apply(graph.Batch{graph.InsNew(0, 50, "", "b")})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 {
		t.Fatalf("delta = %+v", d)
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyErrors(t *testing.T) {
	g := graph.New()
	g.AddNode(0, "a")
	g.AddNode(1, "b")
	g.AddEdge(0, 1)
	ix := Build(g, PathPattern("a", "b"), nil)
	if _, err := ix.Apply(graph.Batch{graph.Del(1, 0)}); err == nil {
		t.Fatalf("missing delete accepted")
	}
	if _, err := ix.Apply(graph.Batch{graph.Ins(0, 1)}); err == nil {
		t.Fatalf("duplicate insert accepted")
	}
}

func randomLabeled(rng *rand.Rand, n, m int, labels []string) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i), labels[rng.Intn(len(labels))])
	}
	for i := 0; i < m; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return g
}

func randomBatch(rng *rand.Rand, g *graph.Graph, k int, labels []string) graph.Batch {
	sim := g.Clone()
	var batch graph.Batch
	maxID := sim.MaxNodeID()
	for len(batch) < k {
		nodes := sim.NodesSorted()
		v := nodes[rng.Intn(len(nodes))]
		switch rng.Intn(5) {
		case 0, 1:
			succ := sim.SuccessorsSorted(v)
			if len(succ) == 0 {
				continue
			}
			u := graph.Del(v, succ[rng.Intn(len(succ))])
			sim.Apply(u)
			batch = append(batch, u)
		case 2:
			maxID++
			u := graph.InsNew(v, maxID, "", labels[rng.Intn(len(labels))])
			sim.Apply(u)
			batch = append(batch, u)
		default:
			w := nodes[rng.Intn(len(nodes))]
			if sim.HasEdge(v, w) {
				continue
			}
			u := graph.Ins(v, w)
			sim.Apply(u)
			batch = append(batch, u)
		}
	}
	return batch
}

func TestIncrementalEqualsBatchRandomized(t *testing.T) {
	labels := []string{"a", "b", "c"}
	patterns := []*Pattern{
		PathPattern("a", "b"),
		PathPattern("a", "b", "c"),
		TrianglePattern("a", "b", "c"),
		StarPattern("a", "b", "c"),
	}
	for seed := int64(0); seed < 24; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := patterns[int(seed)%len(patterns)]
		g := randomLabeled(rng, 18, 40, labels)
		batch := randomBatch(rng, g, 10, labels)

		ixb := Build(g.Clone(), p, nil)
		if _, err := ixb.Apply(batch); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := ixb.Check(); err != nil {
			t.Fatalf("seed %d: IncISO: %v", seed, err)
		}

		ixu := Build(g.Clone(), p, nil)
		if _, err := ixu.ApplyUnitwise(batch); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := ixu.Check(); err != nil {
			t.Fatalf("seed %d: IncISOn: %v", seed, err)
		}

		if ixb.NumMatches() != ixu.NumMatches() {
			t.Fatalf("seed %d: IncISO %d matches, IncISOn %d", seed, ixb.NumMatches(), ixu.NumMatches())
		}
	}
}

func TestDeltaConsistencyRandomized(t *testing.T) {
	labels := []string{"a", "b"}
	for seed := int64(70); seed < 82; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomLabeled(rng, 15, 35, labels)
		p := PathPattern("a", "b", "a")
		ix := Build(g, p, nil)
		before := make(map[string]bool)
		for _, m := range ix.Matches() {
			before[m.Key()] = true
		}
		batch := randomBatch(rng, g, 8, labels)
		d, err := ix.Apply(batch)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range d.Removed {
			if !before[m.Key()] {
				t.Fatalf("seed %d: removed unknown match", seed)
			}
			delete(before, m.Key())
		}
		for _, m := range d.Added {
			if before[m.Key()] {
				t.Fatalf("seed %d: double add", seed)
			}
			before[m.Key()] = true
		}
		if len(before) != ix.NumMatches() {
			t.Fatalf("seed %d: delta inconsistent: %d vs %d", seed, len(before), ix.NumMatches())
		}
	}
}

func TestLocalizability(t *testing.T) {
	// Theorem 3 for ISO: IncISO's work is a function of the
	// d_Q-neighborhood of ΔG, independent of |G|.
	run := func(ballast int) int {
		g := graph.New()
		g.AddNode(0, "a")
		g.AddNode(1, "b")
		g.AddNode(2, "c")
		g.AddEdge(0, 1)
		for i := 0; i < ballast; i++ {
			id := graph.NodeID(1000 + i)
			g.AddNode(id, "z")
			if i > 0 {
				g.AddEdge(id-1, id)
			}
		}
		ix := Build(g, PathPattern("a", "b", "c"), nil)
		m := &cost.Meter{}
		ix.meter = m
		if _, err := ix.Apply(graph.Batch{graph.Ins(1, 2)}); err != nil {
			t.Fatal(err)
		}
		return m.Total()
	}
	small := run(10)
	big := run(5000)
	if small != big {
		t.Fatalf("IncISO not localizable: %d vs %d", small, big)
	}
}

func TestMatchKeyAndImages(t *testing.T) {
	p := PathPattern("a", "b")
	m := Match{graph.NodeID(7), graph.NodeID(9)}
	if m.Key() != "7,9" {
		t.Fatalf("key = %q", m.Key())
	}
	if p.ImageOf(m, 1) != 9 {
		t.Fatalf("ImageOf wrong")
	}
	var es []graph.Edge
	p.EdgeImages(m, func(e graph.Edge) { es = append(es, e) })
	if len(es) != 1 || es[0] != (graph.Edge{From: 7, To: 9}) {
		t.Fatalf("edge images = %v", es)
	}
}
