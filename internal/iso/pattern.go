// Package iso implements subgraph isomorphism (ISO, Section 2.1 of Fan,
// Hu & Tian, SIGMOD 2017) with the VF2 batch algorithm [15] and the
// localizable incremental algorithm IncISO of the paper's Appendix:
// deletions remove exactly the matches that use a deleted edge (via an
// edge→match inverted index), and insertions re-run VF2 only inside the
// d_Q-neighborhood of the inserted edges, where d_Q is the pattern
// diameter — which is what makes IncISO localizable (Theorem 3).
package iso

import (
	"fmt"
	"strconv"
	"strings"

	"incgraph/internal/graph"
)

// Pattern is a query graph Q = (V_Q, E_Q, l_Q). Patterns must be weakly
// connected (the d_Q-neighborhood localization requires it) and non-empty.
type Pattern struct {
	g *graph.Graph
	// nodes is the canonical (sorted) pattern node order; matches are
	// reported aligned with it.
	nodes []graph.NodeID
	// idx maps a pattern node to its position in nodes.
	idx map[graph.NodeID]int
	// order is the VF2 search order: each node after the first is adjacent
	// (ignoring direction) to an earlier one.
	order []graph.NodeID
	// edgeOrders precomputes, per pattern edge, the search order used when
	// that edge is anchored on an inserted graph edge (IncISO's delta
	// enumeration); the edge endpoints come first.
	edgeOrders map[graph.Edge][]graph.NodeID
	// diameter d_Q: the longest undirected shortest path between pattern
	// nodes.
	diameter int
}

// NewPattern validates q and prepares the search structures.
func NewPattern(q *graph.Graph) (*Pattern, error) {
	if q.NumNodes() == 0 {
		return nil, fmt.Errorf("iso: empty pattern")
	}
	comps := q.UndirectedComponents()
	if len(comps) != 1 {
		return nil, fmt.Errorf("iso: pattern must be weakly connected (has %d components)", len(comps))
	}
	p := &Pattern{g: q, nodes: q.NodesSorted(), idx: make(map[graph.NodeID]int)}
	for i, v := range p.nodes {
		p.idx[v] = i
	}
	p.computeOrder()
	p.computeDiameter()
	// Parallel enumerators read the pattern graph from many goroutines;
	// flush its lazily sorted caches once, up front.
	q.PrepareConcurrentReads()
	p.edgeOrders = make(map[graph.Edge][]graph.NodeID, q.NumEdges())
	q.Edges(func(e graph.Edge) bool {
		seed := []graph.NodeID{e.From}
		if e.To != e.From {
			seed = append(seed, e.To)
		}
		p.edgeOrders[e] = p.greedyOrder(seed)
		return true
	})
	return p, nil
}

// greedyOrder extends seed to a full most-constrained-first search order.
func (p *Pattern) greedyOrder(seed []graph.NodeID) []graph.NodeID {
	placed := make(map[graph.NodeID]bool, len(p.nodes))
	order := make([]graph.NodeID, 0, len(p.nodes))
	for _, v := range seed {
		placed[v] = true
		order = append(order, v)
	}
	for len(order) < len(p.nodes) {
		best := graph.NodeID(-1)
		bestScore := -1
		for _, v := range p.nodes {
			if placed[v] {
				continue
			}
			score := 0
			count := func(w graph.NodeID) bool {
				if placed[w] {
					score++
				}
				return true
			}
			p.g.Successors(v, count)
			p.g.Predecessors(v, count)
			if score > bestScore || score == bestScore && (best == -1 || v < best) {
				best, bestScore = v, score
			}
		}
		placed[best] = true
		order = append(order, best)
	}
	return order
}

// MustPattern is NewPattern panicking on error.
func MustPattern(q *graph.Graph) *Pattern {
	p, err := NewPattern(q)
	if err != nil {
		panic(err)
	}
	return p
}

// computeOrder picks a connectivity-preserving search order, starting from
// the highest-degree node and greedily preferring nodes with the most
// already-ordered neighbors (most constrained first).
func (p *Pattern) computeOrder() {
	q := p.g
	degree := func(v graph.NodeID) int { return q.OutDegree(v) + q.InDegree(v) }
	start := p.nodes[0]
	for _, v := range p.nodes {
		if degree(v) > degree(start) {
			start = v
		}
	}
	placed := map[graph.NodeID]bool{start: true}
	p.order = []graph.NodeID{start}
	for len(p.order) < len(p.nodes) {
		best := graph.NodeID(-1)
		bestScore := -1
		for _, v := range p.nodes {
			if placed[v] {
				continue
			}
			score := 0
			count := func(w graph.NodeID) bool {
				if placed[w] {
					score++
				}
				return true
			}
			q.Successors(v, count)
			q.Predecessors(v, count)
			if score > bestScore || score == bestScore && (best == -1 || v < best) {
				best, bestScore = v, score
			}
		}
		placed[best] = true
		p.order = append(p.order, best)
	}
}

func (p *Pattern) computeDiameter() {
	d := 0
	for _, v := range p.nodes {
		p.g.ForEachWithin([]graph.NodeID{v}, len(p.nodes), func(_ graph.NodeID, dist int) bool {
			if dist > d {
				d = dist
			}
			return true
		})
	}
	p.diameter = d
}

// Graph returns the pattern graph.
func (p *Pattern) Graph() *graph.Graph { return p.g }

// Nodes returns the canonical pattern node order that matches align with.
func (p *Pattern) Nodes() []graph.NodeID { return p.nodes }

// Diameter returns d_Q.
func (p *Pattern) Diameter() int { return p.diameter }

// Size returns (|V_Q|, |E_Q|).
func (p *Pattern) Size() (int, int) { return p.g.NumNodes(), p.g.NumEdges() }

// Match is an embedding h of the pattern: Match[i] = h(Nodes()[i]).
type Match []graph.NodeID

// Key is the canonical identity of a match.
func (m Match) Key() string {
	var b strings.Builder
	for i, v := range m {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(v), 10))
	}
	return b.String()
}

// ImageOf returns h(u) for pattern node u.
func (p *Pattern) ImageOf(m Match, u graph.NodeID) graph.NodeID {
	return m[p.idx[u]]
}

// EdgeImages calls fn with the image of every pattern edge.
func (p *Pattern) EdgeImages(m Match, fn func(e graph.Edge)) {
	p.g.Edges(func(e graph.Edge) bool {
		fn(graph.Edge{From: m[p.idx[e.From]], To: m[p.idx[e.To]]})
		return true
	})
}

// Verify checks that m is a valid embedding of p into g: labels match, the
// mapping is injective and every pattern edge's image is a g-edge.
func (p *Pattern) Verify(g *graph.Graph, m Match) error {
	if len(m) != len(p.nodes) {
		return fmt.Errorf("iso: match arity %d, want %d", len(m), len(p.nodes))
	}
	seen := make(map[graph.NodeID]bool, len(m))
	for i, v := range m {
		if seen[v] {
			return fmt.Errorf("iso: match not injective at %d", v)
		}
		seen[v] = true
		if g.Label(v) != p.g.Label(p.nodes[i]) {
			return fmt.Errorf("iso: label mismatch at %d", v)
		}
	}
	var bad error
	p.EdgeImages(m, func(e graph.Edge) {
		if bad == nil && !g.HasEdge(e.From, e.To) {
			bad = fmt.Errorf("iso: missing edge image (%d,%d)", e.From, e.To)
		}
	})
	return bad
}

// TrianglePattern, PathPattern and StarPattern are convenience constructors
// used by tests, examples and the benchmark harness.

// PathPattern builds the pattern l0 → l1 → … → lk.
func PathPattern(labels ...string) *Pattern {
	g := graph.New()
	for i, l := range labels {
		g.AddNode(graph.NodeID(i), l)
	}
	for i := 0; i+1 < len(labels); i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return MustPattern(g)
}

// TrianglePattern builds a directed 3-cycle with the given labels.
func TrianglePattern(a, b, c string) *Pattern {
	g := graph.New()
	g.AddNode(0, a)
	g.AddNode(1, b)
	g.AddNode(2, c)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	return MustPattern(g)
}

// StarPattern builds a center with out-edges to each leaf label.
func StarPattern(center string, leaves ...string) *Pattern {
	g := graph.New()
	g.AddNode(0, center)
	for i, l := range leaves {
		g.AddNode(graph.NodeID(i+1), l)
		g.AddEdge(0, graph.NodeID(i+1))
	}
	return MustPattern(g)
}
