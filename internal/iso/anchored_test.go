package iso

import (
	"math/rand"
	"testing"

	"incgraph/internal/graph"
)

func TestEnumerateAnchoredBasics(t *testing.T) {
	g := graph.New()
	for i, l := range []string{"a", "b", "c", "b"} {
		g.AddNode(graph.NodeID(i), l)
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 2)
	p := PathPattern("a", "b", "c")
	// Anchor pattern edge (0→1) on graph edge (0→1): exactly one match.
	var got []Match
	EnumerateAnchored(g, p, map[graph.NodeID]graph.NodeID{0: 0, 1: 1}, nil, func(m Match) bool {
		got = append(got, m)
		return true
	})
	if len(got) != 1 || got[0][1] != 1 {
		t.Fatalf("anchored matches = %v", got)
	}
	// Infeasible anchor (label mismatch) yields nothing.
	got = nil
	EnumerateAnchored(g, p, map[graph.NodeID]graph.NodeID{0: 1, 1: 0}, nil, func(m Match) bool {
		got = append(got, m)
		return true
	})
	if len(got) != 0 {
		t.Fatalf("infeasible anchor matched: %v", got)
	}
	// Anchor on a pair with no connecting graph edge yields nothing.
	got = nil
	EnumerateAnchored(g, p, map[graph.NodeID]graph.NodeID{0: 0, 1: 3, 2: 1}, nil, func(m Match) bool {
		got = append(got, m)
		return true
	})
	// 0→3 exists and 3→1 does not: pattern edge (1,2) maps to (3,1) missing.
	if len(got) != 0 {
		t.Fatalf("broken anchor matched: %v", got)
	}
}

func TestAnchoredAgreesWithFullEnumeration(t *testing.T) {
	// Property: the union over all (pattern edge × graph edge) anchored
	// enumerations equals the full match set.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		g := randomLabeled(rng, 14, 35, []string{"a", "b"})
		p := PathPattern("a", "b", "a")
		want := make(map[string]bool)
		for _, m := range FindAll(g, p, 0, nil) {
			want[m.Key()] = true
		}
		got := make(map[string]bool)
		pg := p.Graph()
		g.Edges(func(ge graph.Edge) bool {
			pg.Edges(func(pe graph.Edge) bool {
				if pg.Label(pe.From) != g.Label(ge.From) || pg.Label(pe.To) != g.Label(ge.To) {
					return true
				}
				anchor := map[graph.NodeID]graph.NodeID{pe.From: ge.From}
				if pe.From != pe.To {
					anchor[pe.To] = ge.To
				}
				EnumerateAnchored(g, p, anchor, nil, func(m Match) bool {
					got[m.Key()] = true
					return true
				})
				return true
			})
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: anchored union %d matches, full %d", trial, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: anchored union missed %s", trial, k)
			}
		}
	}
}

func TestAnchoredSelfLoop(t *testing.T) {
	pg := graph.New()
	pg.AddNode(0, "a")
	pg.AddNode(1, "b")
	pg.AddEdge(0, 0)
	pg.AddEdge(0, 1)
	p := MustPattern(pg)
	g := graph.New()
	g.AddNode(5, "a")
	g.AddNode(6, "b")
	g.AddEdge(5, 5)
	g.AddEdge(5, 6)
	var got []Match
	EnumerateAnchored(g, p, map[graph.NodeID]graph.NodeID{0: 5}, nil, func(m Match) bool {
		got = append(got, m)
		return true
	})
	if len(got) != 1 {
		t.Fatalf("self-loop anchored matches = %v", got)
	}
	// IncISO insertion of a self-loop edge through the index path.
	g2 := graph.New()
	g2.AddNode(5, "a")
	g2.AddNode(6, "b")
	g2.AddEdge(5, 6)
	ix := Build(g2, p, nil)
	if ix.NumMatches() != 0 {
		t.Fatalf("premature match")
	}
	d, err := ix.Apply(graph.Batch{graph.Ins(5, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 {
		t.Fatalf("self-loop insertion delta = %+v", d)
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
}
