package iso

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"incgraph/internal/cost"
	"incgraph/internal/graph"
)

// Index is the incrementally maintained match set Q(G) for one pattern,
// with an edge→matches inverted index so deletions are O(#dead matches)
// and insertions are confined to the d_Q-neighborhood of ΔG.
type Index struct {
	g *graph.Graph
	p *Pattern
	// matches maps the canonical key to the match.
	matches map[string]Match
	// byEdge maps a graph edge to the keys of the matches whose pattern
	// edges use it.
	byEdge map[graph.Edge]map[string]struct{}
	// sorted memoizes Matches against the graph mutation generation (the
	// match set only moves inside Apply*, which mutates the graph first).
	sorted graph.GenCache[[]Match]
	// lastEst records the repair-vs-batch decision of the most recent
	// Apply (cost-based fallback); see Apply and LastEstimate.
	lastEst cost.Estimate
	meter   *cost.Meter
}

// Delta describes changes ΔO to Q(G).
type Delta struct {
	Added   []Match
	Removed []Match
}

// Empty reports whether the output was unaffected.
func (d Delta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// Build enumerates Q(G) with VF2 and indexes it. The meter may be nil.
// With workers available the enumeration fans out across g.Parallelism()
// workers (indexing the collected matches stays serial, in enumeration
// order); sequential builds stream matches straight into the index
// without materializing Q(G) twice.
func Build(g *graph.Graph, p *Pattern, meter *cost.Meter) *Index {
	ix := &Index{
		g:       g,
		p:       p,
		matches: make(map[string]Match),
		byEdge:  make(map[graph.Edge]map[string]struct{}),
		meter:   meter,
	}
	if workers := g.Parallelism(); workers > 1 {
		for _, m := range findAllParallel(g, p, workers, meter) {
			ix.add(m)
		}
		return ix
	}
	Enumerate(g, p, nil, meter, func(m Match) bool {
		ix.add(m)
		return true
	})
	return ix
}

// BatchAnswer recomputes Q(G) from scratch: the VF2 baseline.
func BatchAnswer(g *graph.Graph, p *Pattern, meter *cost.Meter) []Match {
	return FindAll(g, p, 0, meter)
}

func (ix *Index) add(m Match) bool {
	k := m.Key()
	if _, dup := ix.matches[k]; dup {
		return false
	}
	ix.matches[k] = m
	ix.p.EdgeImages(m, func(e graph.Edge) {
		set := ix.byEdge[e]
		if set == nil {
			set = make(map[string]struct{})
			ix.byEdge[e] = set
		}
		set[k] = struct{}{}
	})
	ix.meter.AddEntries(1)
	return true
}

func (ix *Index) remove(k string) (Match, bool) {
	m, ok := ix.matches[k]
	if !ok {
		return nil, false
	}
	delete(ix.matches, k)
	ix.p.EdgeImages(m, func(e graph.Edge) {
		if set := ix.byEdge[e]; set != nil {
			delete(set, k)
			if len(set) == 0 {
				delete(ix.byEdge, e)
			}
		}
	})
	ix.meter.AddEntries(1)
	return m, true
}

// Graph returns the underlying graph (shared, mutated by Apply*).
func (ix *Index) Graph() *graph.Graph { return ix.g }

// Pattern returns the pattern.
func (ix *Index) Pattern() *Pattern { return ix.p }

// NumMatches returns |Q(G)|.
func (ix *Index) NumMatches() int { return len(ix.matches) }

// Matches returns Q(G) sorted by canonical key. The slice is memoized
// against the graph's mutation generation — repeated calls between
// updates are O(1) — and shared: treat it as read-only; it is valid
// until the next Apply*.
func (ix *Index) Matches() []Match {
	return ix.sorted.Get(ix.g, func() []Match {
		keys := make([]string, 0, len(ix.matches))
		for k := range ix.matches {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([]Match, len(keys))
		for i, k := range keys {
			out[i] = ix.matches[k]
		}
		return out
	})
}

// WriteAnswer serializes Q(G) in canonical text form: one line per
// embedding, "match <v1> <v2> ...", aligned with Pattern.Nodes(), in
// canonical-key order. Identical match sets produce identical bytes
// regardless of the path that computed them (build, incremental repair,
// batch fallback, or recovery replay); the durability layer's parity
// checks and the incgraphd answer dumps rely on this.
func (ix *Index) WriteAnswer(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range ix.Matches() {
		if _, err := bw.WriteString("match"); err != nil {
			return err
		}
		for _, v := range m {
			if _, err := fmt.Fprintf(bw, " %d", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Apply processes a batch ΔG with IncISO: deletions drop exactly the
// indexed matches that use a deleted edge; insertions run VF2 restricted to
// the d_Q-neighborhood G_dQ(ΔG+) and add the matches not seen before.
//
// ΔG itself is applied through Graph.ApplyBatch, so large batches mutate
// shard-parallel; the match bookkeeping below only reads edge identities,
// never graph state that the reorder could disturb. Before repairing,
// Apply consults the cost model (cost.EstimateISO): when the batch seeds
// more anchored enumerations than VF2 would open root-candidate subtrees —
// the regime where IncISO loses to VF2 at batch granularity — it falls
// back to re-enumerating Q(G) from scratch and diffing the match sets.
// The decision is a pure function of graph and batch statistics, so it is
// identical at every worker and shard count.
func (ix *Index) Apply(batch graph.Batch) (Delta, error) {
	var d Delta
	// Node creation side effects of the raw batch.
	for _, u := range batch {
		if u.Op == graph.Insert {
			ix.g.EnsureNode(u.From, u.FromLabel)
			ix.g.EnsureNode(u.To, u.ToLabel)
		}
	}
	batch = batch.Normalize()
	for _, u := range batch {
		if u.Op == graph.Delete && !ix.g.HasEdge(u.From, u.To) {
			return Delta{}, fmt.Errorf("iso: %w: delete of missing edge (%d,%d)", graph.ErrBadUpdate, u.From, u.To)
		}
		if u.Op == graph.Insert && ix.g.HasEdge(u.From, u.To) {
			return Delta{}, fmt.Errorf("iso: %w: insert of existing edge (%d,%d)", graph.ErrBadUpdate, u.From, u.To)
		}
	}
	ins, dels := batch.Split()
	rootCands := ix.g.NumNodesWithLabelID(ix.p.Graph().LabelIDAt(ix.p.order[0]))
	// Count the anchored enumerations the incremental path would seed: one
	// per label-compatible pattern edge per insertion (anchoredMatches).
	// Both this count and the shard footprint are skipped on the tiny-batch
	// hot path, which the estimator's floor always routes incremental.
	anchors, shardsTouched := 0, 0
	if len(batch) >= cost.FallbackMinBatch {
		pg := ix.p.Graph()
		for _, u := range ins {
			lf, lt := ix.g.LabelIDAt(u.From), ix.g.LabelIDAt(u.To)
			pg.Edges(func(pe graph.Edge) bool {
				if pg.LabelIDAt(pe.From) == lf && pg.LabelIDAt(pe.To) == lt &&
					(pe.From != pe.To || u.From == u.To) {
					anchors++
				}
				return true
			})
		}
		shardsTouched = len(batch.TouchedShards(ix.g))
	}
	ix.lastEst = cost.EstimateISO(len(ins), len(dels), rootCands, anchors, shardsTouched)
	// Structural updates first, in one (shard-parallel) batch application;
	// the batch was validated above, so it cannot fail partway.
	if err := ix.g.ApplyBatch(batch); err != nil {
		return Delta{}, err
	}
	if ix.lastEst.PreferBatch() {
		return ix.rebuildDiff(), nil
	}
	// (1) Deletions: remove dead matches via the inverted index (which
	// references edge identities only, so it reads the same either side of
	// the mutation).
	for _, u := range dels {
		e := graph.Edge{From: u.From, To: u.To}
		for k := range ix.byEdge[e] {
			if m, ok := ix.remove(k); ok {
				d.Removed = append(d.Removed, m)
			}
		}
	}
	// (2)+(3) Insertions: delta-enumerate on the post-update graph. Every
	// match not in the old Q(G) must use at least one inserted edge, so
	// anchoring each pattern edge on each inserted edge enumerates exactly
	// the new matches — all of them inside the d_Q-neighborhood of ΔG+,
	// which is what keeps IncISO localizable. The per-edge anchored
	// enumerations are pure reads of the post-update graph, so they fan
	// out across workers; indexing (with its cross-anchor dedup) stays
	// serial, in insertion order, matching the sequential result exactly.
	workers := ix.g.Parallelism()
	if workers > 1 {
		// Unconditionally (even for delete-only batches): parallel engines
		// leave the graph read-shareable between Apply calls.
		ix.g.PrepareConcurrentReads()
	}
	if len(ins) > 0 {
		found := make([][]Match, len(ins))
		meters := make([]cost.Meter, workers)
		graph.ParallelFor(workers, len(ins), func(worker, i int) {
			found[i] = ix.anchoredMatches(ins[i], &meters[worker])
		})
		for i := range meters {
			ix.meter.Merge(&meters[i])
		}
		for _, ms := range found {
			for _, m := range ms {
				if ix.add(m) {
					d.Added = append(d.Added, m)
				}
			}
		}
	}
	sortMatches(d.Added)
	sortMatches(d.Removed)
	return d, nil
}

// rebuildDiff is the batch-fallback path of Apply: with ΔG already
// applied, re-enumerate Q(G) from scratch (the VF2 baseline, parallel
// when workers are available), rebuild the inverted index, and derive the
// Delta by diffing old and new match sets by canonical key — the exact
// output change, same as the incremental path.
func (ix *Index) rebuildDiff() Delta {
	old := ix.matches
	ix.matches = make(map[string]Match, len(old))
	ix.byEdge = make(map[graph.Edge]map[string]struct{}, len(ix.byEdge))
	if workers := ix.g.Parallelism(); workers > 1 {
		for _, m := range findAllParallel(ix.g, ix.p, workers, ix.meter) {
			ix.add(m)
		}
	} else {
		Enumerate(ix.g, ix.p, nil, ix.meter, func(m Match) bool {
			ix.add(m)
			return true
		})
	}
	var d Delta
	for k, m := range ix.matches {
		if _, was := old[k]; !was {
			d.Added = append(d.Added, m)
		}
	}
	for k, m := range old {
		if _, is := ix.matches[k]; !is {
			d.Removed = append(d.Removed, m)
		}
	}
	sortMatches(d.Added)
	sortMatches(d.Removed)
	return d
}

// LastEstimate returns the cost-model verdict of the most recent Apply:
// the predicted |AFF|, the repair-vs-batch costs, and the shard footprint
// of the batch. Benchmarks and tests use it to observe routing.
func (ix *Index) LastEstimate() cost.Estimate { return ix.lastEst }

// anchoredMatches enumerates the matches created by inserted edge u by
// pinning every label-compatible pattern edge onto it. Read-only (the
// same match may surface from several anchors; the caller dedups via add),
// so anchors enumerate concurrently.
func (ix *Index) anchoredMatches(u graph.Update, meter *cost.Meter) []Match {
	var out []Match
	lf, lt := ix.g.LabelIDAt(u.From), ix.g.LabelIDAt(u.To)
	pg := ix.p.Graph()
	pg.Edges(func(pe graph.Edge) bool {
		if pg.LabelIDAt(pe.From) != lf || pg.LabelIDAt(pe.To) != lt {
			return true
		}
		if pe.From == pe.To && u.From != u.To {
			return true
		}
		anchor := map[graph.NodeID]graph.NodeID{pe.From: u.From}
		if pe.From != pe.To {
			anchor[pe.To] = u.To
		}
		EnumerateAnchored(ix.g, ix.p, anchor, meter, func(m Match) bool {
			out = append(out, m)
			return true
		})
		return true
	})
	return out
}

// ApplyUnitwise is IncISOn, the baseline of the paper's experiments: each
// unit update is processed alone, and each insertion pays a full VF2 pass
// over the d_Q-neighborhood of its edge (rather than IncISO's anchored
// delta enumeration).
func (ix *Index) ApplyUnitwise(batch graph.Batch) (Delta, error) {
	var total Delta
	for _, u := range batch {
		if u.Op == graph.Insert {
			ix.g.EnsureNode(u.From, u.FromLabel)
			ix.g.EnsureNode(u.To, u.ToLabel)
			if ix.g.HasEdge(u.From, u.To) {
				return Delta{}, fmt.Errorf("iso: %w: insert of existing edge (%d,%d)", graph.ErrBadUpdate, u.From, u.To)
			}
			ix.g.AddEdge(u.From, u.To)
			scope := make(map[graph.NodeID]bool)
			ix.g.ForEachWithin([]graph.NodeID{u.From, u.To}, ix.p.Diameter(), func(v graph.NodeID, _ int) bool {
				scope[v] = true
				return true
			})
			ix.meter.AddNodes(len(scope))
			Enumerate(ix.g, ix.p, scope, ix.meter, func(m Match) bool {
				if ix.add(m) {
					total.Added = append(total.Added, m)
				}
				return true
			})
			continue
		}
		if !ix.g.DeleteEdge(u.From, u.To) {
			return Delta{}, fmt.Errorf("iso: %w: delete of missing edge (%d,%d)", graph.ErrBadUpdate, u.From, u.To)
		}
		e := graph.Edge{From: u.From, To: u.To}
		for k := range ix.byEdge[e] {
			if m, ok := ix.remove(k); ok {
				total.Removed = append(total.Removed, m)
			}
		}
	}
	total = total.compact()
	return total, nil
}

// compact cancels add/remove pairs of the same match accumulated across
// unit steps.
func (d Delta) compact() Delta {
	state := make(map[string]int)
	byKey := make(map[string]Match)
	for _, m := range d.Added {
		state[m.Key()]++
		byKey[m.Key()] = m
	}
	for _, m := range d.Removed {
		state[m.Key()]--
		byKey[m.Key()] = m
	}
	var out Delta
	for k, n := range state {
		switch {
		case n > 0:
			out.Added = append(out.Added, byKey[k])
		case n < 0:
			out.Removed = append(out.Removed, byKey[k])
		}
	}
	sortMatches(out.Added)
	sortMatches(out.Removed)
	return out
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].Key() < ms[j].Key() })
}

// Check audits the index against a fresh VF2 run: identical match sets and
// a consistent inverted index.
func (ix *Index) Check() error {
	truth := BatchAnswer(ix.g, ix.p, nil)
	if len(truth) != len(ix.matches) {
		return fmt.Errorf("iso: %d matches, batch recompute has %d", len(ix.matches), len(truth))
	}
	for _, m := range truth {
		if _, ok := ix.matches[m.Key()]; !ok {
			return fmt.Errorf("iso: missing match %v", m)
		}
		if err := ix.p.Verify(ix.g, m); err != nil {
			return err
		}
	}
	// Inverted index must cover exactly the pattern-edge images.
	count := 0
	for e, set := range ix.byEdge {
		if !ix.g.HasEdge(e.From, e.To) {
			return fmt.Errorf("iso: index references missing edge %v", e)
		}
		count += len(set)
		for k := range set {
			if _, ok := ix.matches[k]; !ok {
				return fmt.Errorf("iso: index references dead match %s", k)
			}
		}
	}
	want := 0
	for _, m := range ix.matches {
		seen := make(map[graph.Edge]bool)
		ix.p.EdgeImages(m, func(e graph.Edge) {
			if !seen[e] {
				seen[e] = true
				want++
			}
		})
	}
	if count != want {
		return fmt.Errorf("iso: inverted index has %d entries, want %d", count, want)
	}
	return nil
}
