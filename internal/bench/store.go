package bench

import (
	"bytes"
	"fmt"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/store"
)

// figStore measures the durability subsystem's reason to exist: loading a
// per-shard binary snapshot versus rebuilding the same graph from the
// text format, across graph sizes up to several hundred thousand nodes.
// Both sides deserialize from memory, so the comparison isolates decode
// and graph-construction cost from disk bandwidth. snap-load fans out
// across shards (graph.ParallelFor per segment); text-read is the
// line-by-line AddNode/AddEdge rebuild every process start paid before
// this subsystem existed.
func figStore(cfg Config) (*Result, error) {
	sizes := clip(cfg, []int{50_000, 100_000, 200_000})
	res := &Result{
		ID:     "store",
		Title:  "snapshot load vs text rebuild (synthetic, |E| = 5|V|)",
		XLabel: "|V|",
	}
	textRead := Series{Name: "text-read", Seconds: make([]float64, len(sizes)), Allocs: make([]uint64, len(sizes))}
	snapLoad := Series{Name: "snap-load", Seconds: make([]float64, len(sizes)), Allocs: make([]uint64, len(sizes))}
	var sizeNote string
	for i, n := range sizes {
		nodes := int(float64(n) * cfg.scale())
		g := cfg.tune(gen.Synthetic(gen.GraphSpec{
			Nodes:        nodes,
			Edges:        5 * nodes,
			Labels:       50,
			GiantSCCFrac: 0.3,
			Seed:         cfg.Seed,
		}))
		res.X = append(res.X, fmt.Sprintf("%d", g.NumNodes()))

		var text, snap bytes.Buffer
		if err := graph.Write(&text, g); err != nil {
			return nil, err
		}
		if err := store.WriteSnapshot(&snap, g); err != nil {
			return nil, err
		}

		m, err := timed(func() error {
			h, err := graph.Read(bytes.NewReader(text.Bytes()))
			if err == nil && h.NumNodes() != g.NumNodes() {
				err = fmt.Errorf("text read lost nodes")
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		textRead.Seconds[i] = m.secs
		textRead.Allocs[i] = m.allocs

		m, err = timed(func() error {
			h, err := store.ReadSnapshot(bytes.NewReader(snap.Bytes()), int64(snap.Len()))
			if err == nil && h.NumNodes() != g.NumNodes() {
				err = fmt.Errorf("snapshot load lost nodes")
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		snapLoad.Seconds[i] = m.secs
		snapLoad.Allocs[i] = m.allocs
		sizeNote = fmt.Sprintf("at |V|=%d: text %d bytes, snap %d bytes", g.NumNodes(), text.Len(), snap.Len())
	}
	res.Series = []Series{textRead, snapLoad}
	var tot float64
	for i := range sizes {
		if snapLoad.Seconds[i] > 0 {
			tot += textRead.Seconds[i] / snapLoad.Seconds[i]
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("snap-load vs text-read: avg speedup %.1fx over the sweep", tot/float64(len(sizes))),
		sizeNote)
	return res, nil
}
