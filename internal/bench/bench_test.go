package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyCfg keeps harness self-tests fast: small graphs, few points.
var tinyCfg = Config{Scale: 0.05, Seed: 42, MaxPoints: 2}

func TestFiguresList(t *testing.T) {
	ids := Figures()
	if len(ids) != 22 { // 16 panels + unit + opt + ablation + store + cluster + replication
		t.Fatalf("experiments = %v", ids)
	}
	for _, want := range []string{"8a", "8p", "unit", "opt", "ablation", "store", "cluster", "replication"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing experiment %s in %v", want, ids)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("9z", tinyCfg); err == nil {
		t.Fatalf("unknown id accepted")
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test skipped in -short mode")
	}
	for _, id := range Figures() {
		res, err := Run(id, tinyCfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.X) == 0 || len(res.Series) == 0 {
			t.Fatalf("%s: degenerate result %+v", id, res)
		}
		for _, s := range res.Series {
			if len(s.Seconds) != len(res.X) {
				t.Fatalf("%s: series %s has %d points for %d x-values", id, s.Name, len(s.Seconds), len(res.X))
			}
			for _, v := range s.Seconds {
				if v < 0 {
					t.Fatalf("%s: negative time in %s", id, s.Name)
				}
			}
		}
		var buf bytes.Buffer
		if err := res.Format(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), res.ID) {
			t.Fatalf("%s: formatted output missing id", id)
		}
	}
}

func TestVaryDeltaSeriesNames(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test skipped in -short mode")
	}
	res, err := Run("8c", tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"IncSCC", "IncSCCn", "Tarjan", "DynSCC"}
	if len(res.Series) != len(want) {
		t.Fatalf("series = %+v", res.Series)
	}
	for i, s := range res.Series {
		if s.Name != want[i] {
			t.Fatalf("series %d = %s, want %s", i, s.Name, want[i])
		}
	}
}
