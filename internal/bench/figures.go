package bench

import (
	"fmt"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/iso"
	"incgraph/internal/kws"
	"incgraph/internal/rex"
	"incgraph/internal/rpq"
	"incgraph/internal/scc"
)

// updates builds a ρ=1 random batch of the given size. Insertions are 80%
// topology-local (2-hop shortcuts), matching how real edges arrive; see
// gen.UpdateSpec.Locality and EXPERIMENTS.md.
func updates(g *graph.Graph, count int, seed int64) graph.Batch {
	return gen.Updates(g, gen.UpdateSpec{Count: count, InsertRatio: 0.5, Locality: 1.0, Seed: seed})
}

// Dataset scales per query class: RPQ and ISO carry heavier per-node costs,
// so their panels run on smaller simulations (see DESIGN.md §5(1)).
const (
	kwsScale = 1.0
	rpqScale = 0.05
	sccScale = 0.4
	isoScale = 1.0
)

// ---- per-class runners ------------------------------------------------

func kwsRunners(q kws.Query) []runner {
	return []runner{
		{"IncKWS", func(g *graph.Graph, b graph.Batch) (sample, error) {
			ix, err := kws.Build(g.Clone(), q, nil)
			if err != nil {
				return sample{}, err
			}
			return timed(func() error { _, err := ix.Apply(b); return err })
		}},
		{"IncKWSn", func(g *graph.Graph, b graph.Batch) (sample, error) {
			ix, err := kws.Build(g.Clone(), q, nil)
			if err != nil {
				return sample{}, err
			}
			return timed(func() error { _, err := ix.ApplyUnitwise(b); return err })
		}},
		{"BLINKS", func(g *graph.Graph, b graph.Batch) (sample, error) {
			h := g.Clone()
			if err := h.ApplyBatch(b); err != nil {
				return sample{}, err
			}
			// The batch output Q(G) is a set of match *trees*: the batch
			// run pays their materialization for every root, where the
			// incremental runs only touch changed roots.
			return timed(func() error {
				ix, err := kws.Build(h, q, nil)
				if err != nil {
					return err
				}
				for _, r := range ix.MatchRoots() {
					ix.MatchTree(r)
				}
				return nil
			})
		}},
	}
}

func rpqRunners(ast *rex.Ast) []runner {
	return []runner{
		{"IncRPQ", func(g *graph.Graph, b graph.Batch) (sample, error) {
			e, err := rpq.NewEngine(g.Clone(), ast, nil)
			if err != nil {
				return sample{}, err
			}
			return timed(func() error { _, err := e.Apply(b); return err })
		}},
		{"IncRPQn", func(g *graph.Graph, b graph.Batch) (sample, error) {
			e, err := rpq.NewEngine(g.Clone(), ast, nil)
			if err != nil {
				return sample{}, err
			}
			return timed(func() error { _, err := e.ApplyUnitwise(b); return err })
		}},
		{"RPQNFA", func(g *graph.Graph, b graph.Batch) (sample, error) {
			h := g.Clone()
			if err := h.ApplyBatch(b); err != nil {
				return sample{}, err
			}
			return timed(func() error { _, err := rpq.BatchAnswer(h, ast, nil); return err })
		}},
	}
}

func sccRunners() []runner {
	return []runner{
		{"IncSCC", func(g *graph.Graph, b graph.Batch) (sample, error) {
			s := scc.Build(g.Clone(), nil)
			return timed(func() error { _, err := s.Apply(b); return err })
		}},
		{"IncSCCn", func(g *graph.Graph, b graph.Batch) (sample, error) {
			s := scc.Build(g.Clone(), nil)
			return timed(func() error { _, err := s.ApplyUnitwise(b); return err })
		}},
		{"Tarjan", func(g *graph.Graph, b graph.Batch) (sample, error) {
			h := g.Clone()
			if err := h.ApplyBatch(b); err != nil {
				return sample{}, err
			}
			return timed(func() error { scc.Components(h); return nil })
		}},
		{"DynSCC", func(g *graph.Graph, b graph.Batch) (sample, error) {
			d := scc.BuildDyn(g.Clone(), nil)
			return timed(func() error { return d.Apply(b) })
		}},
	}
}

func isoRunners(p *iso.Pattern) []runner {
	return []runner{
		{"IncISO", func(g *graph.Graph, b graph.Batch) (sample, error) {
			ix := iso.Build(g.Clone(), p, nil)
			return timed(func() error { _, err := ix.Apply(b); return err })
		}},
		{"IncISOn", func(g *graph.Graph, b graph.Batch) (sample, error) {
			ix := iso.Build(g.Clone(), p, nil)
			return timed(func() error { _, err := ix.ApplyUnitwise(b); return err })
		}},
		{"VF2", func(g *graph.Graph, b graph.Batch) (sample, error) {
			h := g.Clone()
			if err := h.ApplyBatch(b); err != nil {
				return sample{}, err
			}
			return timed(func() error { iso.BatchAnswer(h, p, nil); return nil })
		}},
	}
}

// ---- vary-|ΔG| panels (Fig. 8 a–i) -------------------------------------

func varyDeltaFigure(cfg Config, id, title, dataset string, dsScale float64, mk func(g *graph.Graph) ([]runner, string, error)) (*Result, error) {
	g, err := gen.Dataset(dataset, dsScale*cfg.scale(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	switch title {
	case "RPQ":
		// RPQ panels fold the alphabet to 5 labels; see EXPERIMENTS.md.
		g = gen.Relabel(g, 5)
	case "ISO":
		// ISO panels fold the alphabet to 6 and add short-range clustering
		// so motifs have non-trivial embeddings; see EXPERIMENTS.md.
		g = gen.Densify(gen.Relabel(g, 6), g.NumEdges()/2, cfg.Seed+50)
	}
	g = cfg.tune(g)
	runners, desc, err := mk(g)
	if err != nil {
		return nil, err
	}
	pcts := clip(cfg, deltaPcts)
	batches := pctBatches(g, pcts, cfg.Seed+100)
	series, err := sweep(g, batches, runners)
	if err != nil {
		return nil, err
	}
	x := make([]string, len(pcts))
	for i, p := range pcts {
		x[i] = fmt.Sprintf("%d%%", p)
	}
	res := &Result{
		ID:     id,
		Title:  fmt.Sprintf("%s — varying |ΔG| (%s-sim |V|=%d |E|=%d, %s)", title, dataset, g.NumNodes(), g.NumEdges(), desc),
		XLabel: "|ΔG|/|G|",
		X:      x,
		Series: series,
	}
	res.Notes = append(res.Notes,
		crossNote(x, series[0], series[len(series)-1-boolToInt(len(series) == 4)]),
		crossNote(x, series[0], series[1]))
	return res, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func mkKWS(cfg Config) func(g *graph.Graph) ([]runner, string, error) {
	return func(g *graph.Graph) ([]runner, string, error) {
		q, err := gen.KWSQuery(g, 3, 2, cfg.Seed+1)
		if err != nil {
			return nil, "", err
		}
		return kwsRunners(q), "m=3 b=2", nil
	}
}

func mkRPQ(cfg Config) func(g *graph.Graph) ([]runner, string, error) {
	return func(g *graph.Graph) ([]runner, string, error) {
		ast, err := gen.RPQDense(g, 4, cfg.Seed+2)
		if err != nil {
			return nil, "", err
		}
		return rpqRunners(ast), fmt.Sprintf("|Q|=4 (%s)", ast), nil
	}
}

func mkSCC(cfg Config) func(g *graph.Graph) ([]runner, string, error) {
	return func(g *graph.Graph) ([]runner, string, error) {
		return sccRunners(), "constant query", nil
	}
}

func mkISO(cfg Config) func(g *graph.Graph) ([]runner, string, error) {
	return func(g *graph.Graph) ([]runner, string, error) {
		p, err := gen.ISOQuery(g, 4, 6, 2, cfg.Seed+3)
		if err != nil {
			return nil, "", err
		}
		return isoRunners(p), "|Q|=(4,6,2)", nil
	}
}

// ---- vary-query panels (Fig. 8 j–l) -------------------------------------

func figVaryKWSQuery(cfg Config) (*Result, error) {
	g, err := gen.Dataset("dbpedia", kwsScale*cfg.scale(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	g = cfg.tune(g)
	batch := updates(g, 10*g.NumEdges()/100, cfg.Seed+100)
	params := clip(cfg, [][2]int{{2, 1}, {3, 2}, {4, 3}, {5, 4}, {6, 5}})
	res := &Result{
		ID:     "8j",
		Title:  fmt.Sprintf("KWS — varying Q=(m,b) at |ΔG|=10%% (dbpedia-sim |V|=%d |E|=%d)", g.NumNodes(), g.NumEdges()),
		XLabel: "(m,b)",
	}
	var lines []Series
	for i, mb := range params {
		q, err := gen.KWSQuery(g, mb[0], mb[1], cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		series, err := sweep(g, []graph.Batch{batch}, kwsRunners(q))
		if err != nil {
			return nil, err
		}
		res.X = append(res.X, fmt.Sprintf("(%d,%d)", mb[0], mb[1]))
		lines = appendPoint(lines, series)
	}
	res.Series = lines
	return res, nil
}

func figVaryRPQQuery(cfg Config) (*Result, error) {
	g, err := gen.Dataset("dbpedia", rpqScale*cfg.scale(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	g = cfg.tune(gen.Relabel(g, 5))
	batch := updates(g, 10*g.NumEdges()/100, cfg.Seed+100)
	sizes := clip(cfg, []int{3, 4, 5, 6, 7})
	res := &Result{
		ID:     "8k",
		Title:  fmt.Sprintf("RPQ — varying |Q| at |ΔG|=10%% (dbpedia-sim |V|=%d |E|=%d)", g.NumNodes(), g.NumEdges()),
		XLabel: "|Q|",
	}
	var lines []Series
	for i, size := range sizes {
		ast, err := gen.RPQDense(g, size, cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		series, err := sweep(g, []graph.Batch{batch}, rpqRunners(ast))
		if err != nil {
			return nil, err
		}
		res.X = append(res.X, fmt.Sprintf("%d", size))
		lines = appendPoint(lines, series)
	}
	res.Series = lines
	return res, nil
}

func figVaryISOQuery(cfg Config) (*Result, error) {
	g, err := gen.Dataset("dbpedia", isoScale*cfg.scale(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	g = cfg.tune(gen.Densify(gen.Relabel(g, 6), g.NumEdges()/2, cfg.Seed+50))
	batch := updates(g, 10*g.NumEdges()/100, cfg.Seed+100)
	params := clip(cfg, [][3]int{{3, 5, 1}, {4, 6, 2}, {5, 7, 3}, {6, 8, 4}, {7, 9, 5}})
	res := &Result{
		ID:     "8l",
		Title:  fmt.Sprintf("ISO — varying Q=(|VQ|,|EQ|,dQ) at |ΔG|=10%% (dbpedia-sim |V|=%d |E|=%d)", g.NumNodes(), g.NumEdges()),
		XLabel: "(v,e,d)",
	}
	var lines []Series
	for i, p3 := range params {
		p, err := gen.ISOQuery(g, p3[0], p3[1], p3[2], cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		series, err := sweep(g, []graph.Batch{batch}, isoRunners(p))
		if err != nil {
			return nil, err
		}
		res.X = append(res.X, fmt.Sprintf("(%d,%d,%d)", p3[0], p3[1], p3[2]))
		lines = appendPoint(lines, series)
	}
	res.Series = lines
	return res, nil
}

// appendPoint concatenates a one-point sweep onto accumulated lines.
func appendPoint(lines []Series, point []Series) []Series {
	if lines == nil {
		return point
	}
	for i := range lines {
		lines[i].Seconds = append(lines[i].Seconds, point[i].Seconds[0])
		lines[i].Allocs = append(lines[i].Allocs, point[i].Allocs[0])
	}
	return lines
}

// ---- vary-|G| panels (Fig. 8 m–p) ---------------------------------------

func varyGFigure(cfg Config, id, title string, dsScale float64, mk func(g *graph.Graph) ([]runner, string, error)) (*Result, error) {
	scales := clip(cfg, []float64{0.2, 0.4, 0.6, 0.8, 1.0})
	res := &Result{ID: id, XLabel: "scale"}
	var lines []Series
	var desc string
	for i, sf := range scales {
		g, err := gen.Dataset("synthetic", sf*dsScale*cfg.scale(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		switch title {
		case "RPQ":
			g = gen.Relabel(g, 5)
		case "ISO":
			g = gen.Densify(gen.Relabel(g, 6), g.NumEdges()/2, cfg.Seed+50)
		}
		g = cfg.tune(g)
		runners, d, err := mk(g)
		if err != nil {
			return nil, err
		}
		desc = d
		// Fixed |ΔG| across scale factors, like the paper's 15M on a 100M
		// base: 15% of the full-scale edge count.
		full, err := gen.Dataset("synthetic", dsScale*cfg.scale(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		count := 15 * full.NumEdges() / 100
		if count > g.NumEdges() {
			count = g.NumEdges()
		}
		batch := updates(g, count, cfg.Seed+int64(i))
		series, err := sweep(g, []graph.Batch{batch}, runners)
		if err != nil {
			return nil, err
		}
		res.X = append(res.X, fmt.Sprintf("%.1f", sf))
		lines = appendPoint(lines, series)
	}
	res.Series = lines
	res.Title = fmt.Sprintf("%s — varying |G| (synthetic, fixed |ΔG|, %s)", title, desc)
	return res, nil
}

// ---- in-text tables ------------------------------------------------------

// figUnit reproduces Exp-1(5): unit-update speedups of the incremental
// algorithms over their batch counterparts.
func figUnit(cfg Config) (*Result, error) {
	res := &Result{
		ID:     "unit",
		Title:  "Unit updates — incremental vs batch (Exp-1(5))",
		XLabel: "class",
	}
	type class struct {
		name string
		mk   func(g *graph.Graph) ([]runner, string, error)
		ds   string
		sc   float64
	}
	classes := []class{
		{"KWS", mkKWS(cfg), "dbpedia", kwsScale},
		{"RPQ", mkRPQ(cfg), "dbpedia", rpqScale},
		{"SCC", mkSCC(cfg), "dbpedia", sccScale},
		{"ISO", mkISO(cfg), "dbpedia", isoScale},
	}
	inc := Series{Name: "Incremental"}
	batch := Series{Name: "Batch"}
	for _, c := range classes {
		g, err := gen.Dataset(c.ds, c.sc*cfg.scale(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		g = cfg.tune(g)
		runners, _, err := c.mk(g)
		if err != nil {
			return nil, err
		}
		one := updates(g, 2, cfg.Seed+7) // one insertion + one deletion
		series, err := sweep(g, []graph.Batch{one}, runners)
		if err != nil {
			return nil, err
		}
		res.X = append(res.X, c.name)
		bi := len(series) - 1 - boolToInt(len(series) == 4)
		inc.Seconds = append(inc.Seconds, series[0].Seconds[0])
		inc.Allocs = append(inc.Allocs, series[0].Allocs[0])
		batch.Seconds = append(batch.Seconds, series[bi].Seconds[0])
		batch.Allocs = append(batch.Allocs, series[bi].Allocs[0])
		sp := series[bi].Seconds[0] / maxf(series[0].Seconds[0], 1e-9)
		res.Notes = append(res.Notes, fmt.Sprintf("%s: unit-update speedup %.0fx", c.name, sp))
	}
	res.Series = []Series{inc, batch}
	return res, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// figOpt reproduces the batch-optimization table: IncX vs IncXn at
// |ΔG| = 10% ("1.6 times on average").
func figOpt(cfg Config) (*Result, error) {
	res := &Result{
		ID:     "opt",
		Title:  "Batch-update optimization — IncX vs IncXn at |ΔG|=10%",
		XLabel: "class",
	}
	type class struct {
		name string
		mk   func(g *graph.Graph) ([]runner, string, error)
		ds   string
		sc   float64
	}
	classes := []class{
		{"KWS", mkKWS(cfg), "dbpedia", kwsScale},
		{"RPQ", mkRPQ(cfg), "dbpedia", rpqScale},
		{"SCC", mkSCC(cfg), "dbpedia", sccScale},
		{"ISO", mkISO(cfg), "dbpedia", isoScale},
	}
	grouped := Series{Name: "IncX"}
	unitwise := Series{Name: "IncXn"}
	total := 0.0
	for _, c := range classes {
		g, err := gen.Dataset(c.ds, c.sc*cfg.scale(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		g = cfg.tune(g)
		runners, _, err := c.mk(g)
		if err != nil {
			return nil, err
		}
		batch := updates(g, 10*g.NumEdges()/100, cfg.Seed+9)
		series, err := sweep(g, []graph.Batch{batch}, runners[:2])
		if err != nil {
			return nil, err
		}
		res.X = append(res.X, c.name)
		grouped.Seconds = append(grouped.Seconds, series[0].Seconds[0])
		grouped.Allocs = append(grouped.Allocs, series[0].Allocs[0])
		unitwise.Seconds = append(unitwise.Seconds, series[1].Seconds[0])
		unitwise.Allocs = append(unitwise.Allocs, series[1].Allocs[0])
		total += series[1].Seconds[0] / maxf(series[0].Seconds[0], 1e-9)
	}
	res.Series = []Series{grouped, unitwise}
	res.Notes = append(res.Notes, fmt.Sprintf("average batching gain %.1fx (paper reports 1.6x)", total/float64(len(classes))))
	return res, nil
}

// ---- registry -------------------------------------------------------------

var registry = map[string]func(Config) (*Result, error){
	"8a": func(c Config) (*Result, error) {
		return varyDeltaFigure(c, "8a", "KWS", "dbpedia", kwsScale, mkKWS(c))
	},
	"8b": func(c Config) (*Result, error) {
		return varyDeltaFigure(c, "8b", "RPQ", "dbpedia", rpqScale, mkRPQ(c))
	},
	"8c": func(c Config) (*Result, error) {
		return varyDeltaFigure(c, "8c", "SCC", "dbpedia", sccScale, mkSCC(c))
	},
	"8d": func(c Config) (*Result, error) {
		return varyDeltaFigure(c, "8d", "ISO", "dbpedia", isoScale, mkISO(c))
	},
	"8e": func(c Config) (*Result, error) {
		return varyDeltaFigure(c, "8e", "KWS", "livej", kwsScale, mkKWS(c))
	},
	"8f": func(c Config) (*Result, error) {
		return varyDeltaFigure(c, "8f", "RPQ", "livej", rpqScale, mkRPQ(c))
	},
	"8g": func(c Config) (*Result, error) {
		return varyDeltaFigure(c, "8g", "SCC", "livej", sccScale, mkSCC(c))
	},
	"8h": func(c Config) (*Result, error) {
		return varyDeltaFigure(c, "8h", "ISO", "livej", isoScale, mkISO(c))
	},
	"8i": func(c Config) (*Result, error) {
		return varyDeltaFigure(c, "8i", "SCC", "synthetic", sccScale, mkSCC(c))
	},
	"8j":          figVaryKWSQuery,
	"8k":          figVaryRPQQuery,
	"8l":          figVaryISOQuery,
	"8m":          func(c Config) (*Result, error) { return varyGFigure(c, "8m", "KWS", kwsScale, mkKWS(c)) },
	"8n":          func(c Config) (*Result, error) { return varyGFigure(c, "8n", "RPQ", rpqScale, mkRPQ(c)) },
	"8o":          func(c Config) (*Result, error) { return varyGFigure(c, "8o", "SCC", sccScale, mkSCC(c)) },
	"8p":          func(c Config) (*Result, error) { return varyGFigure(c, "8p", "ISO", isoScale, mkISO(c)) },
	"unit":        figUnit,
	"opt":         figOpt,
	"ablation":    figAblation,
	"store":       figStore,
	"cluster":     figCluster,
	"replication": figReplication,
}

// figAblation measures the design choices DESIGN.md calls out: the
// tree-arc re-parenting fast path of IncSCC− (on/off) on the giant-SCC
// workload, and the insertion-locality sensitivity of IncSCC+ (local
// shortcut insertions vs uniform random ones, which trigger rank-window
// reorders).
func figAblation(cfg Config) (*Result, error) {
	g, err := gen.Dataset("livej", sccScale*cfg.scale(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	g = cfg.tune(g)
	res := &Result{
		ID:     "ablation",
		Title:  fmt.Sprintf("IncSCC ablations at |ΔG|=10%% (livej-sim |V|=%d |E|=%d)", g.NumNodes(), g.NumEdges()),
		XLabel: "variant",
	}
	batchLocal := updates(g, 10*g.NumEdges()/100, cfg.Seed+100)
	batchUniform := gen.Updates(g, gen.UpdateSpec{
		Count: 10 * g.NumEdges() / 100, InsertRatio: 0.5, Locality: 0, Seed: cfg.Seed + 100,
	})
	line := Series{Name: "IncSCC"}
	run := func(label string, batch graph.Batch, repair, unitwise bool) error {
		s := scc.Build(g.Clone(), nil)
		s.SetTreeArcRepair(repair)
		m, err := timed(func() error {
			if unitwise {
				_, err := s.ApplyUnitwise(batch)
				return err
			}
			_, err := s.Apply(batch)
			return err
		})
		if err != nil {
			return err
		}
		res.X = append(res.X, label)
		line.Seconds = append(line.Seconds, m.secs)
		line.Allocs = append(line.Allocs, m.allocs)
		return nil
	}
	// The tree-arc repair acts on the per-unit path; grouped batches
	// amortize a failed repair into one scoped Tarjan either way.
	if err := run("unit/repair", batchLocal, true, true); err != nil {
		return nil, err
	}
	if err := run("unit/norepair", batchLocal, false, true); err != nil {
		return nil, err
	}
	if err := run("batch/local-ins", batchLocal, true, false); err != nil {
		return nil, err
	}
	if err := run("batch/uniform-ins", batchUniform, true, false); err != nil {
		return nil, err
	}
	res.Series = []Series{line}
	res.Notes = append(res.Notes,
		"tree-arc re-parenting and insertion locality are the two levers behind IncSCC's profile; see EXPERIMENTS.md")
	return res, nil
}
