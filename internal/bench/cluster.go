package bench

import (
	"fmt"

	"incgraph/internal/cluster"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

// figCluster measures the distributed two-phase apply against the
// single-process ApplyBatch on the same ΔG sweep: a coordinator with two
// shard workers over the in-process transport (net.Pipe — real framing,
// real parcels, no TCP stack in the loop), so the series isolates the
// protocol cost: plan export, RPC round trips, remote phase 1, delta
// cross-check. On a single-core host the interesting number is the
// overhead ratio; wall-clock wins need workers on other machines.
// figReplication prices the HA log-shipping policies on the same sweep:
// the two-phase apply with replication off, with asynchronous shipping
// (records stream to the workers' replica logs off the commit path), and
// with quorum shipping (the commit waits for a majority of clean acks).
// Async should ride within noise of off — the ship happens after Apply
// returns its deltas — while quorum pays one extra round trip per
// involved worker, which is the durability premium an operator buys.
func figReplication(cfg Config) (*Result, error) {
	g, err := gen.Dataset("synthetic", 0.4*cfg.scale(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	g = cfg.tune(g)
	if g.NumShards() == 1 {
		g.SetShards(8)
	}
	pcts := clip(cfg, deltaPcts)
	batches := pctBatches(g, pcts, cfg.Seed+100)
	mk := func(policy cluster.ReplPolicy) func(*graph.Graph, graph.Batch) (sample, error) {
		return func(g *graph.Graph, b graph.Batch) (sample, error) {
			h := g.Clone()
			links, _, stop := cluster.InProcess(2)
			defer stop()
			co, err := cluster.NewCoordinatorWith(h, links, cluster.CoordinatorOptions{
				Term: 1, Repl: policy,
			})
			if err != nil {
				return sample{}, err
			}
			defer co.Close()
			return timed(func() error {
				return co.Apply(b, func(bb graph.Batch) error { return h.ApplyBatch(bb) })
			})
		}
	}
	runners := []runner{
		{"ReplOff", mk(cluster.ReplOff)},
		{"ReplAsync", mk(cluster.ReplAsync)},
		{"ReplQuorum", mk(cluster.ReplQuorum)},
	}
	series, err := sweep(g, batches, runners)
	if err != nil {
		return nil, err
	}
	x := make([]string, len(pcts))
	for i, p := range pcts {
		x[i] = fmt.Sprintf("%d%%", p)
	}
	res := &Result{
		ID:     "replication",
		Title:  fmt.Sprintf("log-shipping premium — distributed ΔG apply under off/async/quorum replication (synthetic |V|=%d |E|=%d, %d shards, 2 workers)", g.NumNodes(), g.NumEdges(), g.NumShards()),
		XLabel: "|ΔG|/|G|",
		X:      x,
		Series: series,
	}
	ratio := func(s Series) float64 {
		var tot float64
		for i := range pcts {
			if series[0].Seconds[i] > 0 {
				tot += s.Seconds[i] / series[0].Seconds[i]
			}
		}
		return tot / float64(len(pcts))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("async/off apply-latency ratio: avg %.2fx; quorum/off: avg %.2fx (in-process transport; memory replica logs)",
			ratio(series[1]), ratio(series[2])))
	return res, nil
}

func figCluster(cfg Config) (*Result, error) {
	g, err := gen.Dataset("synthetic", 0.4*cfg.scale(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	g = cfg.tune(g)
	if g.NumShards() == 1 {
		// Distribution needs shards to ship; default to the differential
		// test's partitioning when the run asked for the unsharded baseline.
		g.SetShards(8)
	}
	pcts := clip(cfg, deltaPcts)
	batches := pctBatches(g, pcts, cfg.Seed+100)
	runners := []runner{
		{"SingleProc", func(g *graph.Graph, b graph.Batch) (sample, error) {
			h := g.Clone()
			return timed(func() error { return h.ApplyBatch(b) })
		}},
		{"Cluster2w", func(g *graph.Graph, b graph.Batch) (sample, error) {
			h := g.Clone()
			links, _, stop := cluster.InProcess(2)
			defer stop()
			co, err := cluster.NewCoordinator(h, links)
			if err != nil {
				return sample{}, err
			}
			defer co.Close()
			return timed(func() error {
				return co.Apply(b, func(bb graph.Batch) error { return h.ApplyBatch(bb) })
			})
		}},
	}
	series, err := sweep(g, batches, runners)
	if err != nil {
		return nil, err
	}
	x := make([]string, len(pcts))
	for i, p := range pcts {
		x[i] = fmt.Sprintf("%d%%", p)
	}
	res := &Result{
		ID:     "cluster",
		Title:  fmt.Sprintf("distributed ΔG apply — coordinator + 2 shard workers vs single process (synthetic |V|=%d |E|=%d, %d shards)", g.NumNodes(), g.NumEdges(), g.NumShards()),
		XLabel: "|ΔG|/|G|",
		X:      x,
		Series: series,
	}
	var tot float64
	for i := range pcts {
		if series[0].Seconds[i] > 0 {
			tot += series[1].Seconds[i] / series[0].Seconds[i]
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("cluster/single overhead ratio: avg %.2fx over the sweep (in-process transport; single host)", tot/float64(len(pcts))))
	return res, nil
}
