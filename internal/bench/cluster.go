package bench

import (
	"fmt"

	"incgraph/internal/cluster"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

// figCluster measures the distributed two-phase apply against the
// single-process ApplyBatch on the same ΔG sweep: a coordinator with two
// shard workers over the in-process transport (net.Pipe — real framing,
// real parcels, no TCP stack in the loop), so the series isolates the
// protocol cost: plan export, RPC round trips, remote phase 1, delta
// cross-check. On a single-core host the interesting number is the
// overhead ratio; wall-clock wins need workers on other machines.
func figCluster(cfg Config) (*Result, error) {
	g, err := gen.Dataset("synthetic", 0.4*cfg.scale(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	g = cfg.tune(g)
	if g.NumShards() == 1 {
		// Distribution needs shards to ship; default to the differential
		// test's partitioning when the run asked for the unsharded baseline.
		g.SetShards(8)
	}
	pcts := clip(cfg, deltaPcts)
	batches := pctBatches(g, pcts, cfg.Seed+100)
	runners := []runner{
		{"SingleProc", func(g *graph.Graph, b graph.Batch) (sample, error) {
			h := g.Clone()
			return timed(func() error { return h.ApplyBatch(b) })
		}},
		{"Cluster2w", func(g *graph.Graph, b graph.Batch) (sample, error) {
			h := g.Clone()
			links, _, stop := cluster.InProcess(2)
			defer stop()
			co, err := cluster.NewCoordinator(h, links)
			if err != nil {
				return sample{}, err
			}
			defer co.Close()
			return timed(func() error {
				return co.Apply(b, func(bb graph.Batch) error { return h.ApplyBatch(bb) })
			})
		}},
	}
	series, err := sweep(g, batches, runners)
	if err != nil {
		return nil, err
	}
	x := make([]string, len(pcts))
	for i, p := range pcts {
		x[i] = fmt.Sprintf("%d%%", p)
	}
	res := &Result{
		ID:     "cluster",
		Title:  fmt.Sprintf("distributed ΔG apply — coordinator + 2 shard workers vs single process (synthetic |V|=%d |E|=%d, %d shards)", g.NumNodes(), g.NumEdges(), g.NumShards()),
		XLabel: "|ΔG|/|G|",
		X:      x,
		Series: series,
	}
	var tot float64
	for i := range pcts {
		if series[0].Seconds[i] > 0 {
			tot += series[1].Seconds[i] / series[0].Seconds[i]
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("cluster/single overhead ratio: avg %.2fx over the sweep (in-process transport; single host)", tot/float64(len(pcts))))
	return res, nil
}
