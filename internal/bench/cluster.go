package bench

import (
	"fmt"

	"incgraph/internal/cluster"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

// figCluster measures the distributed two-phase apply against the
// single-process ApplyBatch on the same ΔG sweep: a coordinator with two
// shard workers over the in-process transport (net.Pipe — real framing,
// real parcels, no TCP stack in the loop), so the series isolates the
// protocol cost: plan export, RPC round trips, remote phase 1, delta
// cross-check. On a single-core host the interesting number is the
// overhead ratio; wall-clock wins need workers on other machines.
// figReplication prices the HA log-shipping policies on the same sweep:
// the two-phase apply with replication off, with asynchronous shipping
// (records stream to the workers' replica logs off the commit path), and
// with quorum shipping (the commit waits for a majority of clean acks).
// Async should ride within noise of off — the ship happens after Apply
// returns its deltas — while quorum pays one extra round trip per
// involved worker, which is the durability premium an operator buys.
func figReplication(cfg Config) (*Result, error) {
	g, err := gen.Dataset("synthetic", 0.4*cfg.scale(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	g = cfg.tune(g)
	if g.NumShards() == 1 {
		g.SetShards(8)
	}
	pcts := clip(cfg, deltaPcts)
	batches := pctBatches(g, pcts, cfg.Seed+100)
	mk := func(policy cluster.ReplPolicy) func(*graph.Graph, graph.Batch) (sample, error) {
		return func(g *graph.Graph, b graph.Batch) (sample, error) {
			h := g.Clone()
			links, _, stop := cluster.InProcess(2)
			defer stop()
			co, err := cluster.NewCoordinatorWith(h, links, cluster.CoordinatorOptions{
				Term: 1, Repl: policy,
			})
			if err != nil {
				return sample{}, err
			}
			defer co.Close()
			return timed(func() error {
				return co.Apply(b, func(bb graph.Batch) error { return h.ApplyBatch(bb) })
			})
		}
	}
	runners := []runner{
		{"ReplOff", mk(cluster.ReplOff)},
		{"ReplAsync", mk(cluster.ReplAsync)},
		{"ReplQuorum", mk(cluster.ReplQuorum)},
	}
	series, err := sweep(g, batches, runners)
	if err != nil {
		return nil, err
	}
	x := make([]string, len(pcts))
	for i, p := range pcts {
		x[i] = fmt.Sprintf("%d%%", p)
	}
	res := &Result{
		ID:     "replication",
		Title:  fmt.Sprintf("log-shipping premium — distributed ΔG apply under off/async/quorum replication (synthetic |V|=%d |E|=%d, %d shards, 2 workers)", g.NumNodes(), g.NumEdges(), g.NumShards()),
		XLabel: "|ΔG|/|G|",
		X:      x,
		Series: series,
	}
	ratio := func(s Series) float64 {
		var tot float64
		for i := range pcts {
			if series[0].Seconds[i] > 0 {
				tot += s.Seconds[i] / series[0].Seconds[i]
			}
		}
		return tot / float64(len(pcts))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("async/off apply-latency ratio: avg %.2fx; quorum/off: avg %.2fx (in-process transport; memory replica logs)",
			ratio(series[1]), ratio(series[2])))
	return res, nil
}

// batchChain prepares reps sequentially-valid batches of n updates each:
// batch i is generated against (and then applied to) a scratch clone that
// has absorbed batches 0..i-1, so a runner can replay the whole chain
// through one long-lived session without tripping validation.
func batchChain(g *graph.Graph, n, reps int, seed int64) ([]graph.Batch, error) {
	scratch := g.Clone()
	chain := make([]graph.Batch, reps)
	for i := range chain {
		chain[i] = updates(scratch, n, seed+int64(i))
		if err := scratch.ApplyBatch(chain[i]); err != nil {
			return nil, err
		}
	}
	return chain, nil
}

// clusterWarmUpdates is the per-point warmup budget for figCluster: each
// session absorbs about this many updates before timing starts. A freshly
// cloned graph applies updates several times slower than a seasoned one —
// exact-capacity adjacency slices from the clone keep reallocating until
// their capacities drift above the working degrees, which takes ~30-40k
// updates at this dataset size — and the protocol gate must not measure
// that transient. clusterTimedReps applies are then timed per point and
// the fastest kept.
const (
	clusterWarmUpdates = 40000
	clusterTimedReps   = 5
)

func figCluster(cfg Config) (*Result, error) {
	g, err := gen.Dataset("synthetic", 0.4*cfg.scale(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	g = cfg.tune(g)
	if g.NumShards() == 1 {
		// Distribution needs shards to ship; default to the differential
		// test's partitioning when the run asked for the unsharded baseline.
		g.SetShards(8)
	}
	pcts := clip(cfg, deltaPcts)
	// This experiment feeds an absolute gate (benchcmp's overhead ratio),
	// so each point is measured warm: a chain of sequential batches flows
	// through one long-lived session — clone once, absorb the warmup
	// prefix untimed, then time the rest and keep the fastest. A one-shot
	// cold-start apply measures the fresh clone's reallocation churn and
	// the segment shipping that precedes it, none of which a serving
	// daemon pays per commit; and the minimum over several warm applies is
	// the closest observable to the protocol's own cost on a shared
	// single-core runner where one preemption can swing a sample 2–5x.
	// Both series get the identical treatment over the identical chains.
	chains := make([][]graph.Batch, len(pcts))
	warms := make([]int, len(pcts))
	for i, p := range pcts {
		n := p * g.NumEdges() / 100
		warms[i] = (clusterWarmUpdates + n - 1) / n
		chains[i], err = batchChain(g, n, warms[i]+clusterTimedReps, cfg.Seed+100+int64(i)*1000)
		if err != nil {
			return nil, err
		}
	}
	chainMin := func(chain []graph.Batch, warm int, apply func(graph.Batch) error) (sample, error) {
		for _, b := range chain[:warm] {
			if err := apply(b); err != nil {
				return sample{}, err
			}
		}
		var best sample
		for i, b := range chain[warm:] {
			s, err := timed(func() error { return apply(b) })
			if err != nil {
				return sample{}, err
			}
			if i == 0 || s.secs < best.secs {
				best = s
			}
		}
		return best, nil
	}
	runners := []struct {
		name string
		run  func(chain []graph.Batch, warm int) (sample, error)
	}{
		{"SingleProc", func(chain []graph.Batch, warm int) (sample, error) {
			h := g.Clone()
			return chainMin(chain, warm, h.ApplyBatch)
		}},
		{"Cluster2w", func(chain []graph.Batch, warm int) (sample, error) {
			h := g.Clone()
			links, _, stop := cluster.InProcess(2)
			defer stop()
			co, err := cluster.NewCoordinator(h, links)
			if err != nil {
				return sample{}, err
			}
			defer co.Close()
			return chainMin(chain, warm, func(b graph.Batch) error {
				return co.Apply(b, func(bb graph.Batch) error { return h.ApplyBatch(bb) })
			})
		}},
	}
	series := make([]Series, len(runners))
	for i, r := range runners {
		series[i] = Series{Name: r.name, Seconds: make([]float64, len(pcts)), Allocs: make([]uint64, len(pcts))}
		for j, chain := range chains {
			s, err := r.run(chain, warms[j])
			if err != nil {
				return nil, fmt.Errorf("%s at point %d: %w", r.name, j, err)
			}
			series[i].Seconds[j] = s.secs
			series[i].Allocs[j] = s.allocs
		}
	}
	x := make([]string, len(pcts))
	for i, p := range pcts {
		x[i] = fmt.Sprintf("%d%%", p)
	}
	res := &Result{
		ID:     "cluster",
		Title:  fmt.Sprintf("distributed ΔG apply — coordinator + 2 shard workers vs single process (synthetic |V|=%d |E|=%d, %d shards)", g.NumNodes(), g.NumEdges(), g.NumShards()),
		XLabel: "|ΔG|/|G|",
		X:      x,
		Series: series,
	}
	var tot float64
	for i := range pcts {
		if series[0].Seconds[i] > 0 {
			tot += series[1].Seconds[i] / series[0].Seconds[i]
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("cluster/single overhead ratio: avg %.2fx over the sweep (in-process transport; single host)", tot/float64(len(pcts))))
	return res, nil
}
