// Package bench is the experiment harness of Section 6: it regenerates
// every panel of Figure 8 plus the in-text unit-update and batch-
// optimization tables, on the scaled dataset simulations of internal/gen
// (see DESIGN.md §4 for the experiment index and §5 for the scaling
// rationale). Absolute times differ from the paper's Java/EC2 numbers; the
// reproduced claims are the shapes: who wins, by what factor, and where
// the incremental/batch crossover falls.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"incgraph/internal/graph"
)

// Series is one line of a figure: a time and allocation measurement per x
// point.
type Series struct {
	Name    string
	Seconds []float64
	// Allocs counts heap allocations (mallocs) of the measured phase per
	// point. Near-deterministic on a quiet process, unlike wall clock, so
	// the CI bench-regression gate holds it to a much tighter ratio.
	Allocs []uint64
}

// Result is one reproduced figure or table.
type Result struct {
	ID     string
	Title  string
	XLabel string
	X      []string
	Series []Series
	// Workers is the effective engine worker count the run measured.
	Workers int
	// Shards is the effective graph shard count the run measured.
	Shards int
	// Notes carries derived observations (speedups, crossovers).
	Notes []string
}

// Config tunes a harness run.
type Config struct {
	// Scale multiplies the default dataset sizes (1.0 = default bench
	// size; the paper's graphs are 2–3 orders of magnitude larger).
	Scale float64
	// Seed drives all generators.
	Seed int64
	// MaxPoints truncates the sweep for quick runs (0 = all points).
	MaxPoints int
	// Workers bounds the engines' worker pools (Graph.SetParallelism).
	// 0 means runtime.GOMAXPROCS(0); 1 measures the sequential baseline.
	Workers int
	// Shards sets the graph shard count (Graph.SetShards): how many
	// partitions ΔG application fans out over. 0 means the default
	// (smallest power of two ≥ GOMAXPROCS); 1 measures the unsharded
	// baseline.
	Shards int
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// tune applies the run configuration to a freshly generated workload
// graph. Runner clones inherit the parallelism setting, so tuning the
// base graph tunes every engine measured against it.
func (c Config) tune(g *graph.Graph) *graph.Graph {
	g.SetParallelism(c.Workers)
	g.SetShards(c.Shards)
	return g
}

// workers reports the effective worker count, for result labeling.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// shards reports the effective shard count, for result labeling.
func (c Config) shards() int { return graph.EffectiveShards(c.Shards) }

// clip truncates a sweep to cfg.MaxPoints.
func clip[T any](cfg Config, xs []T) []T {
	if cfg.MaxPoints > 0 && len(xs) > cfg.MaxPoints {
		return xs[:cfg.MaxPoints]
	}
	return xs
}

// sample is one measurement of a runner's measured phase.
type sample struct {
	secs float64
	// allocs is the process-wide mallocs delta across the phase: exact for
	// the phase's own allocations plus whatever the runtime allocates
	// meanwhile, which on a quiet benchmark process is noise of at most a
	// few dozen — hence the gate's small absolute slack.
	allocs uint64
}

// timed measures one run of fn: wall clock and heap allocations.
func timed(fn func() error) (sample, error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	err := fn()
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	return sample{secs: secs, allocs: m1.Mallocs - m0.Mallocs}, err
}

// deltaPcts is the |ΔG| sweep of Exp-1: 5%..40% of |G|.
var deltaPcts = []int{5, 10, 15, 20, 25, 30, 35, 40}

// pctBatches prepares one update batch per percentage point.
func pctBatches(g *graph.Graph, pcts []int, seed int64) []graph.Batch {
	out := make([]graph.Batch, len(pcts))
	for i, p := range pcts {
		out[i] = updates(g, p*g.NumEdges()/100, seed+int64(i))
	}
	return out
}

// runner abstracts "build state on a copy of g, then measure applying the
// batch" for one algorithm variant.
type runner struct {
	name string
	// run builds whatever state it needs from a clone of g (untimed parts
	// included in its own accounting) and returns the measurement of the
	// measured phase only.
	run func(g *graph.Graph, batch graph.Batch) (sample, error)
}

// sweep executes all runners over all batches against the same base graph.
func sweep(g *graph.Graph, batches []graph.Batch, runners []runner) ([]Series, error) {
	out := make([]Series, len(runners))
	for i, r := range runners {
		out[i] = Series{Name: r.name, Seconds: make([]float64, len(batches)), Allocs: make([]uint64, len(batches))}
	}
	for j, b := range batches {
		for i, r := range runners {
			s, err := r.run(g, b)
			if err != nil {
				return nil, fmt.Errorf("%s at point %d: %w", r.name, j, err)
			}
			out[i].Seconds[j] = s.secs
			out[i].Allocs[j] = s.allocs
		}
	}
	return out, nil
}

// Format renders the result as an aligned text table.
func (r *Result) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", r.ID, r.Title); err != nil {
		return err
	}
	cols := []string{r.XLabel}
	for _, s := range r.Series {
		cols = append(cols, s.Name)
	}
	widths := make([]int, len(cols))
	rows := [][]string{cols}
	for i, x := range r.X {
		row := []string{x}
		for _, s := range r.Series {
			row = append(row, fmt.Sprintf("%.4fs", s.Seconds[i]))
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat(" ", widths[c]-len(cell)))
			b.WriteString(cell)
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// jsonSeries is the machine-readable form of one Series. NsPerOp follows
// testing.B semantics: one op is one run of the measured phase at that
// sweep point (one batch application, or one from-scratch rebuild). Sweep
// points vary |ΔG|, so ns_per_op is comparable across PRs at the same
// point, not across points of one sweep.
type jsonSeries struct {
	Name    string    `json:"name"`
	Seconds []float64 `json:"seconds"`
	NsPerOp []float64 `json:"ns_per_op"`
	// Allocs is the mallocs count of the measured phase per point, the
	// near-deterministic signal the CI bench-regression gate holds to a
	// tight ratio (wall clock gets a generous one). Absent in baselines
	// recorded before PR 5; cmd/benchcmp skips the alloc gate then.
	Allocs []uint64 `json:"allocs,omitempty"`
}

// jsonResult is the machine-readable form of one Result.
type jsonResult struct {
	ID      string       `json:"id"`
	Title   string       `json:"title"`
	XLabel  string       `json:"xlabel"`
	Workers int          `json:"workers,omitempty"`
	Shards  int          `json:"shards,omitempty"`
	Points  []string     `json:"points"`
	Series  []jsonSeries `json:"series"`
	Notes   []string     `json:"notes,omitempty"`
}

// FormatJSON emits the result as a single machine-readable JSON object
// (one line): experiment id, sweep points, and per-series seconds plus
// ns/op. Benchmark trajectories (BENCH_*.json) are recorded in this form.
func (r *Result) FormatJSON(w io.Writer) error {
	out := jsonResult{
		ID:      r.ID,
		Title:   r.Title,
		XLabel:  r.XLabel,
		Workers: r.Workers,
		Shards:  r.Shards,
		Points:  r.X,
		Series:  make([]jsonSeries, len(r.Series)),
		Notes:   r.Notes,
	}
	for i, s := range r.Series {
		ns := make([]float64, len(s.Seconds))
		for j, secs := range s.Seconds {
			ns[j] = secs * 1e9
		}
		out.Series[i] = jsonSeries{Name: s.Name, Seconds: s.Seconds, NsPerOp: ns, Allocs: s.Allocs}
	}
	return json.NewEncoder(w).Encode(out)
}

// crossNote derives the paper-style observations from two series: average
// speedup over the sweep and the crossover point where the incremental
// algorithm stops winning.
func crossNote(x []string, inc, batch Series) string {
	speedAt := func(i int) float64 {
		if inc.Seconds[i] == 0 {
			return 0
		}
		return batch.Seconds[i] / inc.Seconds[i]
	}
	cross := "none within sweep"
	for i := range x {
		if speedAt(i) < 1 {
			cross = x[i]
			break
		}
	}
	var tot float64
	for i := range x {
		tot += speedAt(i)
	}
	return fmt.Sprintf("%s vs %s: avg speedup %.1fx, first loss at %s",
		inc.Name, batch.Name, tot/float64(len(x)), cross)
}

// Figures lists the available experiment IDs in order.
func Figures() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID ("8a".."8p", "unit", "opt").
func Run(id string, cfg Config) (*Result, error) {
	fn, ok := registry[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(Figures(), ", "))
	}
	res, err := fn(cfg)
	if err != nil {
		return nil, err
	}
	res.Workers = cfg.workers()
	res.Shards = cfg.shards()
	return res, nil
}

// RunAll executes every experiment in order.
func RunAll(cfg Config, w io.Writer) error {
	for _, id := range Figures() {
		res, err := Run(id, cfg)
		if err != nil {
			return err
		}
		if err := res.Format(w); err != nil {
			return err
		}
	}
	return nil
}
