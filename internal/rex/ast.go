// Package rex implements regular path expressions for RPQ (Section 2.1 of
// Fan, Hu & Tian, SIGMOD 2017):
//
//	Q ::= ε | α | Q·Q | Q+Q | Q*
//
// where α is a node label. It provides a parser, a Glushkov (position)
// automaton construction — an ε-free NFA with |Q|+1 states, our stand-in
// for the Hromkovic et al. construction the paper uses — and a reference
// matcher used to cross-check the NFA in property tests.
package rex

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates AST nodes.
type Kind int8

// AST node kinds.
const (
	Eps    Kind = iota // ε, the empty string
	Lbl                // a single label α
	Concat             // Q1 · Q2
	Union              // Q1 + Q2
	Star               // Q1*
)

// Ast is a regular path expression tree.
type Ast struct {
	Kind        Kind
	Label       string // for Lbl
	Left, Right *Ast   // Right is nil for Star
}

// Epsilon returns the ε expression.
func Epsilon() *Ast { return &Ast{Kind: Eps} }

// Label returns the single-label expression α.
func Label(alpha string) *Ast { return &Ast{Kind: Lbl, Label: alpha} }

// Cat returns l · r.
func Cat(l, r *Ast) *Ast { return &Ast{Kind: Concat, Left: l, Right: r} }

// Or returns l + r.
func Or(l, r *Ast) *Ast { return &Ast{Kind: Union, Left: l, Right: r} }

// Rep returns l*.
func Rep(l *Ast) *Ast { return &Ast{Kind: Star, Left: l} }

// Size returns |Q|: the number of label occurrences in the expression,
// the query-size measure the paper uses for RPQ.
func (a *Ast) Size() int {
	if a == nil {
		return 0
	}
	switch a.Kind {
	case Eps:
		return 0
	case Lbl:
		return 1
	case Star:
		return a.Left.Size()
	default:
		return a.Left.Size() + a.Right.Size()
	}
}

// Alphabet returns the sorted set of labels occurring in the expression.
func (a *Ast) Alphabet() []string {
	set := make(map[string]bool)
	a.walk(func(n *Ast) {
		if n.Kind == Lbl {
			set[n.Label] = true
		}
	})
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

func (a *Ast) walk(fn func(*Ast)) {
	if a == nil {
		return
	}
	fn(a)
	a.Left.walk(fn)
	a.Right.walk(fn)
}

// String renders the expression with explicit operators and minimal
// parentheses; the parser accepts its output.
func (a *Ast) String() string {
	var b strings.Builder
	a.render(&b, 0)
	return b.String()
}

// precedence: Union < Concat < Star.
func (a *Ast) render(b *strings.Builder, parentPrec int) {
	if a == nil {
		return
	}
	prec := 0
	switch a.Kind {
	case Union:
		prec = 1
	case Concat:
		prec = 2
	case Star, Lbl, Eps:
		prec = 3
	}
	paren := prec < parentPrec
	if paren {
		b.WriteByte('(')
	}
	switch a.Kind {
	case Eps:
		b.WriteByte('@')
	case Lbl:
		b.WriteString(a.Label)
	case Concat:
		a.Left.render(b, 2)
		b.WriteByte('.')
		a.Right.render(b, 2)
	case Union:
		a.Left.render(b, 1)
		b.WriteByte('+')
		a.Right.render(b, 1)
	case Star:
		a.Left.render(b, 4)
		b.WriteByte('*')
	}
	if paren {
		b.WriteByte(')')
	}
}

// Nullable reports whether ε ∈ L(a).
func (a *Ast) Nullable() bool {
	switch a.Kind {
	case Eps, Star:
		return true
	case Lbl:
		return false
	case Concat:
		return a.Left.Nullable() && a.Right.Nullable()
	case Union:
		return a.Left.Nullable() || a.Right.Nullable()
	}
	return false
}

// MatchSeq reports whether the label sequence is in L(a). It is a direct
// O(n³)-ish dynamic-programming evaluator over the AST, independent of the
// NFA construction, used as the ground truth in tests.
func (a *Ast) MatchSeq(labels []string) bool {
	type key struct {
		node *Ast
		i, j int
	}
	memo := make(map[key]bool)
	var match func(n *Ast, i, j int) bool
	match = func(n *Ast, i, j int) bool {
		k := key{n, i, j}
		if v, ok := memo[k]; ok {
			return v
		}
		// Seed false to break Star-recursion cycles on the same span.
		memo[k] = false
		var res bool
		switch n.Kind {
		case Eps:
			res = i == j
		case Lbl:
			res = j == i+1 && labels[i] == n.Label
		case Concat:
			for m := i; m <= j && !res; m++ {
				res = match(n.Left, i, m) && match(n.Right, m, j)
			}
		case Union:
			res = match(n.Left, i, j) || match(n.Right, i, j)
		case Star:
			if i == j {
				res = true
			}
			// Consume a non-empty prefix with Left, remainder with Star.
			for m := i + 1; m <= j && !res; m++ {
				res = match(n.Left, i, m) && match(n, m, j)
			}
		}
		memo[k] = res
		return res
	}
	return match(a, 0, len(labels))
}

// Equal reports structural equality of expressions.
func (a *Ast) Equal(b *Ast) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Label != b.Label {
		return false
	}
	return a.Left.Equal(b.Left) && a.Right.Equal(b.Right)
}

// Validate checks structural well-formedness (useful after hand-building).
func (a *Ast) Validate() error {
	if a == nil {
		return fmt.Errorf("rex: nil expression")
	}
	switch a.Kind {
	case Eps:
		if a.Left != nil || a.Right != nil {
			return fmt.Errorf("rex: ε with children")
		}
	case Lbl:
		if a.Label == "" {
			return fmt.Errorf("rex: empty label")
		}
		if a.Left != nil || a.Right != nil {
			return fmt.Errorf("rex: label with children")
		}
	case Concat, Union:
		if a.Left == nil || a.Right == nil {
			return fmt.Errorf("rex: binary node missing child")
		}
		if err := a.Left.Validate(); err != nil {
			return err
		}
		return a.Right.Validate()
	case Star:
		if a.Left == nil || a.Right != nil {
			return fmt.Errorf("rex: star must have exactly one child")
		}
		return a.Left.Validate()
	default:
		return fmt.Errorf("rex: unknown kind %d", a.Kind)
	}
	return nil
}
