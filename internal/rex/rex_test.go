package rex

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePrintRoundTrip(t *testing.T) {
	cases := []string{
		"a",
		"a.b",
		"a+b",
		"a.b+c",
		"(a+b).c",
		"a*",
		"(a.b)*",
		"c.(b.a+c)*.c", // the paper's Example 4 query
		"@",
		"@+a",
		"a.(b+@)",
	}
	for _, c := range cases {
		a, err := Parse(c)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c, err)
		}
		b, err := Parse(a.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", c, a.String(), err)
		}
		if !a.Equal(b) {
			t.Fatalf("round trip changed %q: %q", c, a.String())
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("Validate(%q): %v", c, err)
		}
	}
}

func TestParseImplicitConcat(t *testing.T) {
	a := MustParse("ab") // single label "ab"
	if a.Kind != Lbl || a.Label != "ab" {
		t.Fatalf("identifier split: %v", a)
	}
	b := MustParse("a b") // juxtaposition = concat
	if b.Kind != Concat {
		t.Fatalf("juxtaposition not concat: %v", b)
	}
	c := MustParse("a(b+c)")
	if c.Kind != Concat || c.Right.Kind != Union {
		t.Fatalf("paren juxtaposition: %v", c)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "+a", "a+", "(a", "a)", "a..b", "*", "a^b", "()"}
	for _, c := range bad {
		if _, err := Parse(c); err == nil {
			t.Fatalf("Parse(%q) accepted bad input", c)
		}
	}
}

func TestSizeAndAlphabet(t *testing.T) {
	a := MustParse("c.(b.a+c)*.c")
	if a.Size() != 5 {
		t.Fatalf("|Q| = %d, want 5", a.Size())
	}
	al := a.Alphabet()
	if strings.Join(al, ",") != "a,b,c" {
		t.Fatalf("alphabet = %v", al)
	}
	if MustParse("@").Size() != 0 {
		t.Fatalf("ε has size 0")
	}
}

func TestNullable(t *testing.T) {
	cases := map[string]bool{
		"@": true, "a": false, "a*": true, "a.b": false,
		"a*.b*": true, "a+@": true, "a+b": false, "(a.b)*": true,
	}
	for q, want := range cases {
		if got := MustParse(q).Nullable(); got != want {
			t.Fatalf("Nullable(%q) = %v", q, got)
		}
	}
}

func TestMatchSeqGroundTruth(t *testing.T) {
	a := MustParse("c.(b.a+c)*.c")
	yes := [][]string{
		{"c", "c"},
		{"c", "b", "a", "c"},
		{"c", "c", "c"},
		{"c", "b", "a", "b", "a", "c"},
		{"c", "b", "a", "c", "c"},
	}
	no := [][]string{
		{}, {"c"}, {"c", "b", "c"}, {"b", "a", "c"}, {"c", "a", "b", "c"},
	}
	for _, s := range yes {
		if !a.MatchSeq(s) {
			t.Fatalf("MatchSeq(%v) = false", s)
		}
	}
	for _, s := range no {
		if a.MatchSeq(s) {
			t.Fatalf("MatchSeq(%v) = true", s)
		}
	}
}

func TestGlushkovStates(t *testing.T) {
	a := MustParse("c.(b.a+c)*.c")
	n := Compile(a)
	if n.NumStates() != a.Size()+1 {
		t.Fatalf("states = %d, want |Q|+1 = %d", n.NumStates(), a.Size()+1)
	}
	if n.AcceptsEmpty() {
		t.Fatalf("language should not contain ε")
	}
	if !Compile(MustParse("a*")).AcceptsEmpty() {
		t.Fatalf("a* must accept ε")
	}
}

func TestNFAOnExamples(t *testing.T) {
	n := Compile(MustParse("c.(b.a+c)*.c"))
	if !n.MatchSeq([]string{"c", "c"}) || !n.MatchSeq([]string{"c", "b", "a", "c"}) {
		t.Fatalf("NFA rejects members")
	}
	if n.MatchSeq([]string{"c"}) || n.MatchSeq([]string{"c", "b", "c"}) {
		t.Fatalf("NFA accepts non-members")
	}
}

// randAst builds a random expression over a tiny alphabet.
func randAst(rng *rand.Rand, depth int) *Ast {
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(8) == 0 {
			return Epsilon()
		}
		return Label(string(rune('a' + rng.Intn(3))))
	}
	switch rng.Intn(3) {
	case 0:
		return Cat(randAst(rng, depth-1), randAst(rng, depth-1))
	case 1:
		return Or(randAst(rng, depth-1), randAst(rng, depth-1))
	default:
		return Rep(randAst(rng, depth-1))
	}
}

func TestNFAAgreesWithASTProperty(t *testing.T) {
	// Property: the Glushkov NFA accepts exactly the strings the AST
	// matcher accepts, for random expressions and random short strings.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randAst(rng, 3)
		n := Compile(a)
		for trial := 0; trial < 40; trial++ {
			ln := rng.Intn(6)
			s := make([]string, ln)
			for i := range s {
				s[i] = string(rune('a' + rng.Intn(3)))
			}
			if a.MatchSeq(s) != n.MatchSeq(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNFAParseStringRoundTripProperty(t *testing.T) {
	// Property: Parse(ast.String()) has the same language on sampled strings.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randAst(rng, 3)
		b, err := Parse(a.String())
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			ln := rng.Intn(5)
			s := make([]string, ln)
			for i := range s {
				s[i] = string(rune('a' + rng.Intn(3)))
			}
			if a.MatchSeq(s) != b.MatchSeq(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEpsilonOnlyQuery(t *testing.T) {
	// ε matches only the empty string — and no node path has an empty
	// label string, so an ε-query NFA accepts nothing of length ≥ 1.
	n := Compile(MustParse("@"))
	if !n.AcceptsEmpty() {
		t.Fatalf("ε must accept empty")
	}
	if n.MatchSeq([]string{"a"}) {
		t.Fatalf("ε matched a label")
	}
	if n.NumStates() != 1 {
		t.Fatalf("ε NFA states = %d", n.NumStates())
	}
}

func TestStarOfUnionLanguage(t *testing.T) {
	a := MustParse("(a+b)*")
	n := Compile(a)
	for _, s := range [][]string{{}, {"a"}, {"b", "a", "b"}, {"a", "a", "a", "b"}} {
		if !n.MatchSeq(s) {
			t.Fatalf("(a+b)* rejected %v", s)
		}
	}
	if n.MatchSeq([]string{"a", "c"}) {
		t.Fatalf("(a+b)* accepted c")
	}
}

func TestNestedStars(t *testing.T) {
	// (a*)* ≡ a*: same language, and the Glushkov construction must not
	// blow up or loop.
	a := MustParse("(a*)*")
	b := MustParse("a*")
	na, nb := Compile(a), Compile(b)
	for ln := 0; ln <= 4; ln++ {
		s := make([]string, ln)
		for i := range s {
			s[i] = "a"
		}
		if na.MatchSeq(s) != nb.MatchSeq(s) {
			t.Fatalf("(a*)* and a* differ on length %d", ln)
		}
	}
}
