package rex

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a regular path expression.
//
// Grammar (lowest to highest precedence):
//
//	expr   := term ('+' term)*
//	term   := factor ('.'? factor)*      — '.' is optional (juxtaposition)
//	factor := atom '*'*
//	atom   := LABEL | '@' | 'ε' | '(' expr ')'
//
// LABEL is a run of letters, digits and underscores. '@' and 'ε' both
// denote the empty path ε.
func Parse(s string) (*Ast, error) {
	p := &parser{input: s}
	p.next()
	ast, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("rex: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
	return ast, nil
}

// MustParse is Parse panicking on error, for tests and fixed queries.
func MustParse(s string) *Ast {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

type tokKind int8

const (
	tokEOF tokKind = iota
	tokBad
	tokLabel
	tokEps
	tokPlus
	tokDot
	tokStar
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	input string
	off   int
	tok   token
}

func (p *parser) next() {
	for p.off < len(p.input) && unicode.IsSpace(rune(p.input[p.off])) {
		p.off++
	}
	start := p.off
	if p.off >= len(p.input) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.input[p.off]
	switch c {
	case '+':
		p.off++
		p.tok = token{tokPlus, "+", start}
	case '.':
		p.off++
		p.tok = token{tokDot, ".", start}
	case '*':
		p.off++
		p.tok = token{tokStar, "*", start}
	case '(':
		p.off++
		p.tok = token{tokLParen, "(", start}
	case ')':
		p.off++
		p.tok = token{tokRParen, ")", start}
	case '@':
		p.off++
		p.tok = token{tokEps, "@", start}
	default:
		if strings.HasPrefix(p.input[p.off:], "ε") {
			p.off += len("ε")
			p.tok = token{tokEps, "ε", start}
			return
		}
		if isLabelByte(c) {
			end := p.off
			for end < len(p.input) && isLabelByte(p.input[end]) {
				end++
			}
			p.tok = token{tokLabel, p.input[p.off:end], start}
			p.off = end
			return
		}
		p.tok = token{tokBad, string(c), start}
		p.off = len(p.input) // force termination; expr will error out
	}
}

func isLabelByte(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func (p *parser) expr() (*Ast, error) {
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPlus {
		p.next()
		right, err := p.term()
		if err != nil {
			return nil, err
		}
		left = Or(left, right)
	}
	return left, nil
}

func (p *parser) term() (*Ast, error) {
	left, err := p.factor()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tokDot:
			p.next()
			right, err := p.factor()
			if err != nil {
				return nil, err
			}
			left = Cat(left, right)
		case tokLabel, tokEps, tokLParen:
			right, err := p.factor()
			if err != nil {
				return nil, err
			}
			left = Cat(left, right)
		default:
			return left, nil
		}
	}
}

func (p *parser) factor() (*Ast, error) {
	atom, err := p.atom()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokStar {
		p.next()
		atom = Rep(atom)
	}
	return atom, nil
}

func (p *parser) atom() (*Ast, error) {
	switch p.tok.kind {
	case tokLabel:
		a := Label(p.tok.text)
		p.next()
		return a, nil
	case tokEps:
		p.next()
		return Epsilon(), nil
	case tokLParen:
		p.next()
		inner, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("rex: missing ')' at offset %d", p.tok.pos)
		}
		p.next()
		return inner, nil
	case tokEOF:
		return nil, fmt.Errorf("rex: unexpected end of expression at offset %d", p.tok.pos)
	default:
		return nil, fmt.Errorf("rex: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
}
