package rex

import (
	"sort"

	"incgraph/internal/graph"
)

// NFA is an ε-free nondeterministic finite automaton over node labels,
// built with the Glushkov (position) construction: one state per label
// occurrence of the expression plus the initial state 0, so |S| = |Q| + 1.
//
// The paper's RPQ_NFA batch algorithm and IncRPQ both traverse the
// intersection (product) of a graph with this automaton.
type NFA struct {
	// numStates counts states; state 0 is initial, states 1..numStates-1
	// are the Glushkov positions.
	numStates int
	accept    []bool
	// trans[s] maps a label to the sorted target states reachable from s
	// by consuming that label.
	trans []map[string][]int
	// transID mirrors trans keyed by interned LabelID; the product-graph
	// traversals of RPQ_NFA/IncRPQ do one uint32 map probe per edge
	// instead of hashing a label string.
	transID []map[graph.LabelID][]int
}

// StateID identifies an NFA state; 0 is the initial state.
type StateID = int

// Compile builds the Glushkov automaton of a.
func Compile(a *Ast) *NFA {
	c := &compiler{}
	info := c.analyze(a)
	n := &NFA{
		numStates: len(c.positions) + 1,
		accept:    make([]bool, len(c.positions)+1),
		trans:     make([]map[string][]int, len(c.positions)+1),
	}
	for i := range n.trans {
		n.trans[i] = make(map[string][]int)
	}
	n.accept[0] = info.nullable
	for _, p := range info.last {
		n.accept[p] = true
	}
	addMoves := func(from int, targets []int) {
		for _, q := range targets {
			lbl := c.positions[q-1]
			n.trans[from][lbl] = append(n.trans[from][lbl], q)
		}
	}
	addMoves(0, info.first)
	for p := range c.positions {
		addMoves(p+1, c.follow[p+1])
	}
	n.transID = make([]map[graph.LabelID][]int, len(n.trans))
	for s := range n.trans {
		n.transID[s] = make(map[graph.LabelID][]int, len(n.trans[s]))
		for lbl := range n.trans[s] {
			ts := n.trans[s][lbl]
			sort.Ints(ts)
			ts = dedupInts(ts)
			n.trans[s][lbl] = ts
			n.transID[s][graph.InternLabel(lbl)] = ts
		}
	}
	return n
}

func dedupInts(ts []int) []int {
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != ts[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// NumStates returns the number of states (|Q| + 1).
func (n *NFA) NumStates() int { return n.numStates }

// Start returns the initial state.
func (n *NFA) Start() StateID { return 0 }

// Accepting reports whether s is an accepting state.
func (n *NFA) Accepting(s StateID) bool { return n.accept[s] }

// Next returns δ(s, label): the states reachable from s by consuming label.
// The returned slice is shared and must not be modified.
func (n *NFA) Next(s StateID, label string) []int { return n.trans[s][label] }

// NextID is Next keyed by interned label ID — the hot-path variant used by
// the product traversals. NoLabel (and any label absent from the query
// alphabet) yields nil.
func (n *NFA) NextID(s StateID, lid graph.LabelID) []int { return n.transID[s][lid] }

// AcceptsEmpty reports whether ε is in the language.
func (n *NFA) AcceptsEmpty() bool { return n.accept[0] }

// MatchSeq simulates the automaton on a label sequence; used for testing
// against Ast.MatchSeq.
func (n *NFA) MatchSeq(labels []string) bool {
	cur := map[int]bool{0: true}
	for _, l := range labels {
		next := make(map[int]bool)
		for s := range cur {
			for _, t := range n.Next(s, l) {
				next[t] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	for s := range cur {
		if n.accept[s] {
			return true
		}
	}
	return false
}

// compiler computes the Glushkov position sets.
type compiler struct {
	// positions[i] is the label of position i+1.
	positions []string
	// follow[p] is Follow(p) for position p ≥ 1.
	follow map[int][]int
}

// posInfo carries the classic Glushkov attributes of a subexpression.
type posInfo struct {
	nullable bool
	first    []int
	last     []int
}

func (c *compiler) analyze(a *Ast) posInfo {
	if c.follow == nil {
		c.follow = make(map[int][]int)
	}
	switch a.Kind {
	case Eps:
		return posInfo{nullable: true}
	case Lbl:
		c.positions = append(c.positions, a.Label)
		p := len(c.positions)
		return posInfo{nullable: false, first: []int{p}, last: []int{p}}
	case Union:
		l := c.analyze(a.Left)
		r := c.analyze(a.Right)
		return posInfo{
			nullable: l.nullable || r.nullable,
			first:    append(append([]int{}, l.first...), r.first...),
			last:     append(append([]int{}, l.last...), r.last...),
		}
	case Concat:
		l := c.analyze(a.Left)
		r := c.analyze(a.Right)
		for _, p := range l.last {
			c.follow[p] = append(c.follow[p], r.first...)
		}
		info := posInfo{nullable: l.nullable && r.nullable}
		info.first = append(info.first, l.first...)
		if l.nullable {
			info.first = append(info.first, r.first...)
		}
		info.last = append(info.last, r.last...)
		if r.nullable {
			info.last = append(info.last, l.last...)
		}
		return info
	case Star:
		l := c.analyze(a.Left)
		for _, p := range l.last {
			c.follow[p] = append(c.follow[p], l.first...)
		}
		return posInfo{nullable: true, first: l.first, last: l.last}
	}
	return posInfo{}
}
