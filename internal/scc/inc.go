package scc

import (
	"fmt"
	"sort"

	"incgraph/internal/graph"
)

// This file implements the incremental side of SCC (Section 5.3):
//
//   - IncSCC+ (ApplyInsert, Fig. 7): an intra-component insertion refreshes
//     num/lowlink with a Tarjan pass scoped to the component; an
//     inter-component insertion that respects topological ranks only bumps
//     a counter of G_c; a rank violation triggers the bounded bidirectional
//     search DFSf/DFSb over G_c, cycle detection with Tarjan on the
//     affected area, merging, and reallocRank.
//   - IncSCC− (ApplyDelete): an inter-component deletion decrements a G_c
//     counter; an intra-component deletion of a non-tree edge first runs
//     the chkReach lowlink walk (cost proportional to the affected path),
//     falling back to a component-scoped Tarjan that performs the split.
//   - IncSCC  (Apply): batch updates, grouping all intra-component updates
//     of one component into a single scoped Tarjan pass and then handling
//     inter-component updates against G_c.
//   - IncSCCn (ApplyUnitwise): the unit-at-a-time baseline.
//
// The affected area AFF of the paper — changes to num/lowlink, their
// neighbors, and rank changes in G_c — is exactly what these routines
// touch, which is what makes them bounded relative to Tarjan.

// Delta describes changes ΔO to SCC(G): components that appeared and
// components that disappeared, in canonical (sorted) form.
type Delta struct {
	Added   [][]graph.NodeID
	Removed [][]graph.NodeID
}

// Empty reports whether the output was unaffected.
func (d Delta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// deltaTracker accumulates component births and deaths across one Apply.
type deltaTracker struct {
	destroyed map[CompID][]graph.NodeID
	created   map[CompID]bool
}

func newDeltaTracker() *deltaTracker {
	return &deltaTracker{destroyed: make(map[CompID][]graph.NodeID), created: make(map[CompID]bool)}
}

func (dt *deltaTracker) destroy(c CompID, members map[graph.NodeID]struct{}) {
	if dt.created[c] {
		delete(dt.created, c) // born and died within this batch: invisible
		return
	}
	dt.destroyed[c] = sortedMembers(members)
}

func (dt *deltaTracker) create(c CompID) { dt.created[c] = true }

func (dt *deltaTracker) delta(s *State) Delta {
	var d Delta
	for c := range dt.created {
		if set, ok := s.members[c]; ok {
			d.Added = append(d.Added, sortedMembers(set))
		}
	}
	for _, m := range dt.destroyed {
		d.Removed = append(d.Removed, m)
	}
	canon := func(cs [][]graph.NodeID) {
		sort.Slice(cs, func(i, j int) bool { return cs[i][0] < cs[j][0] })
	}
	canon(d.Added)
	canon(d.Removed)
	return d
}

// ApplyInsert processes a unit edge insertion with IncSCC+ (Fig. 7).
func (s *State) ApplyInsert(u graph.Update) (Delta, error) {
	dt := newDeltaTracker()
	if err := s.applyInsert(u, dt); err != nil {
		return Delta{}, err
	}
	return dt.delta(s), nil
}

// ApplyDelete processes a unit edge deletion with IncSCC−.
func (s *State) ApplyDelete(u graph.Update) (Delta, error) {
	dt := newDeltaTracker()
	if err := s.applyDelete(u, dt); err != nil {
		return Delta{}, err
	}
	return dt.delta(s), nil
}

// ApplyUnitwise is IncSCCn: unit updates processed one at a time.
func (s *State) ApplyUnitwise(batch graph.Batch) (Delta, error) {
	dt := newDeltaTracker()
	for _, u := range batch {
		var err error
		if u.Op == graph.Insert {
			err = s.applyInsert(u, dt)
		} else {
			err = s.applyDelete(u, dt)
		}
		if err != nil {
			return Delta{}, err
		}
	}
	return dt.delta(s), nil
}

// Apply processes a batch ΔG with IncSCC: intra-component updates are
// grouped per component (one scoped Tarjan each), then inter-component
// deletions update G_c counters, then inter-component insertions run the
// rank-window machinery with an already-satisfied fast path.
func (s *State) Apply(batch graph.Batch) (Delta, error) {
	dt := newDeltaTracker()
	// Node creation is a side effect of insertions even when the edge is
	// later cancelled by a deletion, so it runs on the raw batch.
	for _, u := range batch {
		if u.Op == graph.Insert {
			s.ensureNode(u.From, u.FromLabel, dt)
			s.ensureNode(u.To, u.ToLabel, dt)
		}
	}
	batch = batch.Normalize()
	for _, u := range batch {
		if u.Op == graph.Delete && !s.g.HasEdge(u.From, u.To) {
			return Delta{}, fmt.Errorf("scc: %w: delete of missing edge (%d,%d)", graph.ErrBadUpdate, u.From, u.To)
		}
	}
	// Classify against the component map at batch start.
	intra := make(map[CompID]graph.Batch)
	var interDel, interIns graph.Batch
	for _, u := range batch {
		cv, cw := s.comp[u.From], s.comp[u.To]
		if cv == cw {
			intra[cv] = append(intra[cv], u)
		} else if u.Op == graph.Delete {
			interDel = append(interDel, u)
		} else {
			interIns = append(interIns, u)
		}
	}
	// (a) Intra-component updates, grouped: apply the group's edges, then
	// one scoped Tarjan decides refresh vs split.
	comps := make([]CompID, 0, len(intra))
	for c := range intra {
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i] < comps[j] })
	for _, c := range comps {
		var dels graph.Batch
		for _, u := range intra[c] {
			if err := s.g.Apply(u); err != nil {
				return Delta{}, err
			}
			if u.Op == graph.Delete {
				dels = append(dels, u)
			}
		}
		if len(dels) == 0 {
			continue // insertions alone never change the partition
		}
		// chkReach the deletions together: each walk repairs the lowlinks
		// its deletion invalidated; surviving certificates mean no split
		// and no Tarjan at all. Tree-arc deletions break the DFS tree the
		// certificate rests on, so they force the full pass.
		intact := !s.dirty[c]
		if intact {
			for _, u := range dels {
				if p, isTree := s.parent[u.To]; isTree && p == u.From {
					if s.noRepair || !s.tryRepairTreeArc(u.From, u.To, c) {
						intact = false
						break
					}
					continue
				}
				if !s.lowlinkWalkIntact(u.From, c) {
					intact = false
					break
				}
			}
		}
		if intact {
			continue
		}
		delete(s.dirty, c)
		set := s.members[c]
		res := s.runScoped(set)
		if len(res.Comps) == 1 {
			s.store(res, set)
		} else {
			s.splitComp(c, res, dt)
		}
	}
	// (b) Inter-component deletions: G_c counter maintenance.
	for _, u := range interDel {
		if err := s.g.Apply(u); err != nil {
			return Delta{}, err
		}
		s.gcDecrement(s.comp[u.From], s.comp[u.To])
	}
	// (c) Inter-component insertions.
	for _, u := range interIns {
		if err := s.g.Apply(u); err != nil {
			return Delta{}, err
		}
		cv, cw := s.comp[u.From], s.comp[u.To]
		if cv == cw {
			// An earlier merge in this batch made the edge intra; the
			// merged component is already marked dirty, and intra
			// insertions need no further work.
			continue
		}
		s.processInterInsert(cv, cw, dt)
	}
	return dt.delta(s), nil
}

func (s *State) applyInsert(u graph.Update, dt *deltaTracker) error {
	if u.Op != graph.Insert {
		return fmt.Errorf("scc: applyInsert got %v", u)
	}
	s.ensureNode(u.From, u.FromLabel, dt)
	s.ensureNode(u.To, u.ToLabel, dt)
	if err := s.g.Apply(u); err != nil {
		return err
	}
	cv, cw := s.comp[u.From], s.comp[u.To]
	if cv == cw {
		// Fig. 7 lines 1–2: T := T ⊕ ΔG. No structural work is needed:
		// the partition is unchanged, and the stored lowlinks remain a
		// sound connectivity certificate (insertions only add paths), so
		// the next deletion's chkReach walk stays valid.
		return nil
	}
	s.processInterInsert(cv, cw, dt)
	return nil
}

func (s *State) applyDelete(u graph.Update, dt *deltaTracker) error {
	if u.Op != graph.Delete {
		return fmt.Errorf("scc: applyDelete got %v", u)
	}
	if err := s.g.Apply(u); err != nil {
		return err
	}
	cv, cw := s.comp[u.From], s.comp[u.To]
	if cv != cw {
		s.gcDecrement(cv, cw)
		return nil
	}
	// Intra-component deletion. A stale (dirty) component goes straight to
	// the scoped Tarjan, which also settles the deferred refresh. For a
	// fresh component, the chkReach fast path applies: for a non-tree
	// edge, repair lowlinks along the ancestor path; if the certificate
	// survives, the component is intact and nothing else changes.
	if !s.dirty[cv] {
		if p, isTree := s.parent[u.To]; isTree && p == u.From {
			if !s.noRepair && s.tryRepairTreeArc(u.From, u.To, cv) {
				return nil
			}
		} else if s.lowlinkWalkIntact(u.From, cv) {
			return nil
		}
	}
	delete(s.dirty, cv)
	set := s.members[cv]
	res := s.runScoped(set)
	if len(res.Comps) == 1 {
		s.store(res, set)
		return nil
	}
	s.splitComp(cv, res, dt)
	return nil
}

// ensureNode creates v as a fresh singleton component when absent.
// A new component with no incident edges can take any unique rank; the top
// of the registry keeps the invariant trivially.
func (s *State) ensureNode(v graph.NodeID, label string, dt *deltaTracker) {
	if s.g.HasNode(v) {
		return
	}
	s.g.AddNode(v, label)
	id := s.next
	s.next++
	s.comp[v] = id
	s.members[id] = map[graph.NodeID]struct{}{v: {}}
	s.gcOut[id] = make(map[CompID]int)
	s.gcIn[id] = make(map[CompID]int)
	r := s.reg.max() + 1
	s.rank[id] = r
	s.reg.insert(r)
	s.num[v] = 1
	s.low[v] = 1
	s.desc[v] = 1
	delete(s.parent, v)
	dt.create(id)
	s.meter.AddEntries(1)
}

// gcDecrement lowers the multiplicity of G_c edge (cv, cw), removing it at
// zero. Removing edges can never violate the rank invariant.
func (s *State) gcDecrement(cv, cw CompID) {
	s.meter.AddEntries(1)
	if n := s.gcOut[cv][cw]; n > 1 {
		s.gcOut[cv][cw] = n - 1
		s.gcIn[cw][cv] = n - 1
	} else {
		delete(s.gcOut[cv], cw)
		delete(s.gcIn[cw], cv)
	}
}

// runScoped runs Tarjan on the subgraph induced by set.
func (s *State) runScoped(set map[graph.NodeID]struct{}) *Result[graph.NodeID] {
	nodes := sortedMembers(set)
	s.meter.AddNodes(len(nodes))
	return Run(nodes, func(v graph.NodeID, yield func(graph.NodeID) bool) {
		s.g.Successors(v, func(w graph.NodeID) bool {
			s.meter.AddEdges(1)
			if _, ok := set[w]; ok {
				return yield(w)
			}
			return true
		})
	})
}

// store installs a scoped run's num/lowlink/parent/desc for every node of
// set. Parent pointers crossing component boundaries (possible after a
// split) are dropped.
func (s *State) store(res *Result[graph.NodeID], set map[graph.NodeID]struct{}) {
	for v := range set {
		s.num[v] = res.Num[v]
		s.low[v] = res.Low[v]
		s.desc[v] = res.Desc[v]
		if p, ok := res.Parent[v]; ok && s.comp[p] == s.comp[v] {
			s.parent[v] = p
		} else {
			delete(s.parent, v)
		}
		s.meter.AddEntries(1)
	}
}

// recomputeLow evaluates Tarjan's lowlink recurrence for x against the
// current stored values, restricted to component c.
func (s *State) recomputeLow(x graph.NodeID, c CompID) int {
	low := s.num[x]
	s.g.Successors(x, func(w graph.NodeID) bool {
		s.meter.AddEdges(1)
		if s.comp[w] != c {
			return true
		}
		cand := s.num[w]
		if p, ok := s.parent[w]; ok && p == x {
			cand = s.low[w]
		}
		if cand < low {
			low = cand
		}
		return true
	})
	return low
}

// lowlinkWalkIntact repairs lowlinks upward from v after a non-tree-edge
// deletion. It returns true when the certificate "low < num for every
// non-root" survives, i.e. the component is still strongly connected; false
// signals a split (caller re-runs Tarjan on the component). The cost is
// proportional to the repaired path — the affected area.
func (s *State) lowlinkWalkIntact(v graph.NodeID, c CompID) bool {
	x := v
	for {
		s.meter.AddNodes(1)
		newLow := s.recomputeLow(x, c)
		if newLow == s.low[x] {
			return true // change stopped propagating
		}
		s.low[x] = newLow
		s.meter.AddEntries(1)
		p, ok := s.parent[x]
		if !ok {
			return true // DFS root: low == num is normal there
		}
		if newLow == s.num[x] {
			return false // non-root subtree lost its back reach: split
		}
		x = p
	}
}

// tryRepairTreeArc handles the deletion of tree arc (v, w) without a full
// Tarjan pass: it re-parents w to another in-neighbor x in the same
// component with num(x) < num(w), then repairs lowlinks upward from both
// the old parent (which lost a child) and the new one (which gained one).
//
// Soundness: num strictly increases along tree edges after any Tarjan pass,
// and choosing num(x) < num(w) preserves that invariant, so the tree
// remains an acyclic spanning arborescence of real edges rooted at the
// component root. The surviving certificate "low < num for every non-root"
// then still witnesses strong connectivity: each node reaches a lower-num
// node through real edges, hence the root by induction, and the root
// reaches everyone through the tree. (The preorder-interval property of
// desc is given up, which only weakens the split test towards conservative
// full passes — never towards wrong "intact" verdicts.)
func (s *State) tryRepairTreeArc(v, w graph.NodeID, c CompID) bool {
	numW := s.num[w]
	var x graph.NodeID
	found := false
	s.g.Predecessors(w, func(p graph.NodeID) bool {
		s.meter.AddEdges(1)
		if s.comp[p] == c && s.num[p] < numW {
			x = p
			found = true
			return false
		}
		return true
	})
	if !found {
		return false
	}
	s.parent[w] = x
	s.meter.AddEntries(1)
	return s.lowlinkWalkIntact(v, c) && s.lowlinkWalkIntact(x, c)
}

// splitRanks returns k strictly increasing rank values in (pred(r), r] for
// the parts of a split component of rank r, with the last value reusing r.
// External predecessors of the old component have rank > r and external
// successors have rank ≤ pred(r), so any values in this window keep the
// global invariant. Float exhaustion triggers a full renumbering.
func (s *State) splitRanks(c CompID, k int) []float64 {
	for attempt := 0; ; attempt++ {
		r := s.rank[c]
		l := s.reg.predecessor(r)
		step := (r - l) / float64(k)
		vals := make([]float64, k)
		ok := true
		for i := range vals {
			vals[i] = r - step*float64(k-1-i)
			if i == 0 && !(vals[0] > l) {
				ok = false
				break
			}
			if i > 0 && !(vals[i] > vals[i-1]) {
				ok = false
				break
			}
		}
		if ok {
			vals[k-1] = r // avoid float drift on the reused endpoint
			return vals
		}
		if attempt > 0 {
			panic("scc: rank renumbering failed to make room")
		}
		s.renumberAll()
	}
}

// renumberAll reassigns integer ranks 0..n-1 by a topological sort of G_c.
func (s *State) renumberAll() {
	ids := make([]CompID, 0, len(s.members))
	for c := range s.members {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	res := Run(ids, func(c CompID, yield func(CompID) bool) {
		for o := range s.gcOut[c] {
			if !yield(o) {
				return
			}
		}
	})
	s.reg.vals = s.reg.vals[:0]
	for i, comp := range res.Comps {
		// G_c is acyclic here, so every component is a singleton.
		s.rank[comp[0]] = float64(i)
		s.reg.insert(float64(i))
		s.meter.AddEntries(1)
	}
}

// splitComp replaces component c by the parts found in res (≥ 2 components
// in reverse topological order), slotting their ranks into the window below
// c's old rank and rebuilding the incident G_c edges.
func (s *State) splitComp(c CompID, res *Result[graph.NodeID], dt *deltaTracker) {
	oldMembers := s.members[c]
	dt.destroy(c, oldMembers)
	ranks := s.splitRanks(c, len(res.Comps))
	oldRank := s.rank[c]
	// Detach c from G_c.
	for o := range s.gcOut[c] {
		delete(s.gcIn[o], c)
	}
	for i := range s.gcIn[c] {
		delete(s.gcOut[i], c)
	}
	delete(s.gcOut, c)
	delete(s.gcIn, c)
	delete(s.rank, c)
	delete(s.members, c)
	delete(s.dirty, c)
	s.reg.remove(oldRank)
	// Create the parts; reverse topological order matches ascending ranks.
	for i, comp := range res.Comps {
		id := s.next
		s.next++
		set := make(map[graph.NodeID]struct{}, len(comp))
		for _, v := range comp {
			set[v] = struct{}{}
			s.comp[v] = id
		}
		s.members[id] = set
		s.gcOut[id] = make(map[CompID]int)
		s.gcIn[id] = make(map[CompID]int)
		s.rank[id] = ranks[i]
		s.reg.insert(ranks[i])
		dt.create(id)
		s.meter.AddEntries(len(comp))
	}
	s.store(res, oldMembers)
	// Rebuild incident G_c counters: successors of members cover internal
	// part-to-part and outgoing edges; external predecessors cover incoming.
	for v := range oldMembers {
		cv := s.comp[v]
		s.g.Successors(v, func(w graph.NodeID) bool {
			s.meter.AddEdges(1)
			if cw := s.comp[w]; cw != cv {
				s.gcOut[cv][cw]++
				s.gcIn[cw][cv]++
			}
			return true
		})
		s.g.Predecessors(v, func(u graph.NodeID) bool {
			s.meter.AddEdges(1)
			if _, internal := oldMembers[u]; internal {
				return true
			}
			if cu := s.comp[u]; cu != cv {
				s.gcOut[cu][cv]++
				s.gcIn[cv][cu]++
			}
			return true
		})
	}
}

// dfsGc explores G_c from start (forward when fwd, else backward), visiting
// only nodes admitted by the rank window. This is DFSf/DFSb of Fig. 7.
func (s *State) dfsGc(start CompID, fwd bool, admit func(CompID) bool) map[CompID]bool {
	seen := map[CompID]bool{start: true}
	stack := []CompID{start}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s.meter.AddNodes(1)
		var adj map[CompID]int
		if fwd {
			adj = s.gcOut[c]
		} else {
			adj = s.gcIn[c]
		}
		for o := range adj {
			s.meter.AddEdges(1)
			if !seen[o] && admit(o) {
				seen[o] = true
				stack = append(stack, o)
			}
		}
	}
	return seen
}

// processInterInsert registers the inter-component edge (cv, cw) in G_c and
// restores the rank invariant (Fig. 7 lines 3–9). It returns the merged
// component's ID when a cycle forced a merge, else nil.
func (s *State) processInterInsert(cv, cw CompID, dt *deltaTracker) *CompID {
	s.meter.AddEntries(1)
	if s.gcOut[cv][cw] > 0 {
		// Multiplicity bump; ranks already consistent.
		s.gcOut[cv][cw]++
		s.gcIn[cw][cv]++
		return nil
	}
	s.gcOut[cv][cw] = 1
	s.gcIn[cw][cv] = 1
	rv, rw := s.rank[cv], s.rank[cw]
	if rv > rw {
		return nil // Fig. 7 line 3: order already correct
	}
	// Fig. 7 line 5: bounded bidirectional search. Forward from cw keeps
	// ranks ≥ rank(cv) (only cv itself has rank(cv)); backward from cv
	// keeps ranks ≤ rank(cw).
	affr := s.dfsGc(cw, true, func(z CompID) bool { return s.rank[z] >= rv })
	affl := s.dfsGc(cv, false, func(z CompID) bool { return s.rank[z] <= rw })
	cand := make([]CompID, 0, len(affr)+len(affl))
	for z := range affr {
		cand = append(cand, z)
	}
	for z := range affl {
		if !affr[z] {
			cand = append(cand, z)
		}
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
	candSet := make(map[CompID]bool, len(cand))
	for _, z := range cand {
		candSet[z] = true
	}
	// Fig. 7 line 6: Tarjan on the affected area (new edge included, it is
	// already in gcOut).
	res := Run(cand, func(c CompID, yield func(CompID) bool) {
		for o := range s.gcOut[c] {
			if candSet[o] {
				if !yield(o) {
					return
				}
			}
		}
	})
	var cycle []CompID
	for _, comp := range res.Comps {
		if len(comp) > 1 {
			cycle = comp
			break // all cycles pass through (cv,cw): at most one non-singleton
		}
	}
	pool := make([]float64, 0, len(cand))
	for _, z := range cand {
		pool = append(pool, s.rank[z])
	}
	sort.Float64s(pool)
	if cycle == nil {
		s.reallocRank(affr, affl, pool)
		return nil
	}
	id := s.mergeComps(cycle, affr, affl, pool, dt)
	return &id
}

// byRank returns the members of set \ excl sorted by ascending rank.
func (s *State) byRank(set map[CompID]bool, excl map[CompID]bool) []CompID {
	out := make([]CompID, 0, len(set))
	for c := range set {
		if excl == nil || !excl[c] {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return s.rank[out[i]] < s.rank[out[j]] })
	return out
}

// reallocRank implements Fig. 7 line 9: the pooled old ranks are reassigned
// in ascending order, first to aff_r (the forward region, which must sink
// below), then to aff_l, preserving relative order inside each region.
func (s *State) reallocRank(affr, affl map[CompID]bool, pool []float64) {
	rs := s.byRank(affr, nil)
	ls := s.byRank(affl, nil)
	i := 0
	for _, c := range rs {
		s.rank[c] = pool[i]
		i++
		s.meter.AddEntries(1)
	}
	for _, c := range ls {
		s.rank[c] = pool[i]
		i++
		s.meter.AddEntries(1)
	}
}

// mergeComps merges the cycle components into one (Fig. 7 lines 7–8),
// placing the merged node between the forward and backward regions and
// retiring surplus rank values.
func (s *State) mergeComps(cycle []CompID, affr, affl map[CompID]bool, pool []float64, dt *deltaTracker) CompID {
	cycleSet := make(map[CompID]bool, len(cycle))
	for _, c := range cycle {
		cycleSet[c] = true
	}
	rs := s.byRank(affr, cycleSet) // aff_r \ C
	ls := s.byRank(affl, cycleSet) // aff_l \ C
	// Reassign: aff_r\C take the smallest pool values, the merged node the
	// next one, aff_l\C the largest; the middle |C|-1 values retire.
	for _, v := range pool {
		s.reg.remove(v)
	}
	for i, c := range rs {
		s.rank[c] = pool[i]
		s.reg.insert(pool[i])
		s.meter.AddEntries(1)
	}
	mergedRank := pool[len(rs)]
	for j, c := range ls {
		v := pool[len(pool)-len(ls)+j]
		s.rank[c] = v
		s.reg.insert(v)
		s.meter.AddEntries(1)
	}
	// Build the merged component.
	id := s.next
	s.next++
	set := make(map[graph.NodeID]struct{})
	newOut := make(map[CompID]int)
	newIn := make(map[CompID]int)
	for _, c := range cycle {
		for o, n := range s.gcOut[c] {
			delete(s.gcIn[o], c)
			if !cycleSet[o] {
				newOut[o] += n
			}
		}
		for i, n := range s.gcIn[c] {
			delete(s.gcOut[i], c)
			if !cycleSet[i] {
				newIn[i] += n
			}
		}
		for v := range s.members[c] {
			set[v] = struct{}{}
			s.comp[v] = id
		}
		dt.destroy(c, s.members[c])
		delete(s.members, c)
		delete(s.gcOut, c)
		delete(s.gcIn, c)
		delete(s.rank, c)
		delete(s.dirty, c)
	}
	s.members[id] = set
	s.gcOut[id] = newOut
	s.gcIn[id] = newIn
	for o, n := range newOut {
		s.gcIn[o][id] = n
	}
	for i, n := range newIn {
		s.gcOut[i][id] = n
	}
	s.rank[id] = mergedRank
	s.reg.insert(mergedRank)
	dt.create(id)
	s.meter.AddEntries(len(set))
	// The num/lowlink refresh of the new component (Fig. 7 line 8) is
	// deferred like intra insertions: a chain of k merges would otherwise
	// pay k scoped Tarjans over a growing component.
	s.dirty[id] = true
	return id
}
