package scc

import (
	"math/rand"
	"testing"

	"incgraph/internal/cost"
	"incgraph/internal/graph"
)

func mustState(t testing.TB, g *graph.Graph) *State {
	t.Helper()
	s := Build(g, nil)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("fresh state invalid: %v", err)
	}
	return s
}

// paperGraph is the running example: the graph of Fig. 2/6, reconstructed
// to satisfy the paper's worked examples (same encoding as the KWS tests).
func paperGraph() *graph.Graph {
	g := graph.New()
	labels := map[graph.NodeID]string{
		1: "a", 2: "a", 11: "b", 12: "b", 13: "b", 14: "b",
		21: "c", 22: "c", 31: "d", 32: "d",
	}
	for v, l := range labels {
		g.AddNode(v, l)
	}
	for _, e := range [][2]graph.NodeID{
		{1, 32}, {32, 1}, // scc {a1,d2}
		{11, 21}, {11, 1}, {21, 1},
		{12, 22}, {22, 12}, // {b2,c2} strongly connected…
		{12, 13}, {13, 2}, {2, 12}, // …with b3 and a2
		{12, 14}, {14, 31},
		{22, 13},
	} {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestBuildPartition(t *testing.T) {
	g := paperGraph()
	s := mustState(t, g)
	// Expected sccs: {a1=1, d2=32}, {b2=12, c2=22, b3=13, a2=2},
	// singletons b1=11, b4=14, c1=21, d1=31.
	if s.NumComponents() != 6 {
		t.Fatalf("components = %d, want 6: %v", s.NumComponents(), s.ComponentsSorted())
	}
	if !s.SameComp(1, 32) || !s.SameComp(12, 2) || s.SameComp(1, 12) {
		t.Fatalf("memberships wrong: %v", s.ComponentsSorted())
	}
	c, ok := s.CompOf(12)
	if !ok || len(s.MembersOf(c)) != 4 {
		t.Fatalf("scc of b2: %v", s.MembersOf(c))
	}
	if _, ok := s.CompOf(999); ok {
		t.Fatalf("phantom node has component")
	}
}

func TestRankInvariantOnBuild(t *testing.T) {
	g := paperGraph()
	s := mustState(t, g)
	// Every contracted edge must go from higher to lower rank; spot-check
	// one: c1={21} → a1's comp.
	c21, _ := s.CompOf(21)
	c1, _ := s.CompOf(1)
	if s.Rank(c21) <= s.Rank(c1) {
		t.Fatalf("rank(c1-comp)=%g must exceed rank(a1-comp)=%g", s.Rank(c21), s.Rank(c1))
	}
}

func TestExample7InsertMergesComponents(t *testing.T) {
	// Example 7: inserting e4 = (b4,b3) merges b4's component with the big
	// one, because b4's rank is below b3's and a cycle b4→b3→…→b2→b4 forms.
	g := paperGraph()
	s := mustState(t, g)
	delta, err := s.ApplyInsert(graph.Ins(14, 13))
	if err != nil {
		t.Fatal(err)
	}
	if !s.SameComp(14, 13) || !s.SameComp(14, 12) {
		t.Fatalf("merge did not happen: %v", s.ComponentsSorted())
	}
	if len(delta.Added) != 1 || len(delta.Added[0]) != 5 {
		t.Fatalf("delta added = %v", delta.Added)
	}
	if len(delta.Removed) != 2 {
		t.Fatalf("delta removed = %v", delta.Removed)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRespectingRanksIsCheap(t *testing.T) {
	// Inserting an edge that already respects topological order must not
	// change the output and must not trigger any search.
	g := paperGraph()
	s := mustState(t, g)
	before := s.ComponentsSorted()
	delta, err := s.ApplyInsert(graph.Ins(21, 32)) // c1 → d2: rank(c1) > rank(a1,d2)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Empty() {
		t.Fatalf("unexpected delta %+v", delta)
	}
	if !partitionsEqual(before, s.ComponentsSorted()) {
		t.Fatalf("partition changed")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertIntraComponent(t *testing.T) {
	g := paperGraph()
	s := mustState(t, g)
	delta, err := s.ApplyInsert(graph.Ins(2, 22)) // a2 → c2, inside the big scc
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Empty() {
		t.Fatalf("intra insert changed output: %+v", delta)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExample9DeleteSplitsComponent(t *testing.T) {
	// Example 9 (adapted): deleting an edge of a 2-cycle splits the
	// component {a1,d2} into singletons.
	g := paperGraph()
	s := mustState(t, g)
	delta, err := s.ApplyDelete(graph.Del(32, 1)) // d2 → a1
	if err != nil {
		t.Fatal(err)
	}
	if s.SameComp(1, 32) {
		t.Fatalf("split did not happen")
	}
	if len(delta.Removed) != 1 || len(delta.Added) != 2 {
		t.Fatalf("delta = %+v", delta)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteFrondNoSplit(t *testing.T) {
	// Deleting a redundant edge inside an scc keeps it intact and must take
	// the lowlink fast path (no partition change).
	g := mkGraph(4, [][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {2, 0}})
	s := mustState(t, g)
	if s.NumComponents() != 1 {
		t.Fatalf("setup: want a single scc")
	}
	delta, err := s.ApplyDelete(graph.Del(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Empty() || s.NumComponents() != 1 {
		t.Fatalf("frond deletion broke the scc: %+v", delta)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteInterComponentCounter(t *testing.T) {
	// Two parallel contracted edges: deleting one graph edge keeps the
	// contracted edge; deleting both removes it. Output never changes.
	g := mkGraph(4, [][2]int64{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {0, 2}, {1, 3}})
	s := mustState(t, g)
	if s.NumComponents() != 2 {
		t.Fatalf("setup: want 2 sccs")
	}
	for _, e := range [][2]graph.NodeID{{0, 2}, {1, 3}} {
		delta, err := s.ApplyDelete(graph.Del(e[0], e[1]))
		if err != nil {
			t.Fatal(err)
		}
		if !delta.Empty() {
			t.Fatalf("inter deletion changed output")
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInsertWithNewNodes(t *testing.T) {
	g := mkGraph(2, [][2]int64{{0, 1}})
	s := mustState(t, g)
	delta, err := s.ApplyInsert(graph.InsNew(1, 100, "", "z"))
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Added) != 1 || delta.Added[0][0] != 100 {
		t.Fatalf("new node not reported: %+v", delta)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// New node as source: rank violation path must fire and stay correct.
	if _, err := s.ApplyInsert(graph.InsNew(200, 0, "z", "")); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfLoop(t *testing.T) {
	g := mkGraph(2, [][2]int64{{0, 1}})
	s := mustState(t, g)
	if _, err := s.ApplyInsert(graph.Ins(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyDelete(graph.Del(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnitErrors(t *testing.T) {
	g := mkGraph(2, [][2]int64{{0, 1}})
	s := mustState(t, g)
	if _, err := s.ApplyInsert(graph.Del(0, 1)); err == nil {
		t.Fatalf("ApplyInsert accepted delete")
	}
	if _, err := s.ApplyDelete(graph.Ins(0, 1)); err == nil {
		t.Fatalf("ApplyDelete accepted insert")
	}
	if _, err := s.ApplyDelete(graph.Del(1, 0)); err == nil {
		t.Fatalf("deleted missing edge")
	}
	if _, err := s.ApplyInsert(graph.Ins(0, 1)); err == nil {
		t.Fatalf("inserted duplicate edge")
	}
}

func TestExample8BatchUpdates(t *testing.T) {
	// Example 8: the batch of Example 3 — insert e1=(b2,d1), e3=(b2,a1),
	// e4=(b4,b3); delete e2=(c2,b3), e5=(c1,a1). Inserting e1/e3/e4 chains
	// the components together: all previous sccs except {d2…} merge.
	g := paperGraph()
	s := mustState(t, g)
	batch := graph.Batch{
		graph.Ins(12, 31),
		graph.Ins(12, 1),
		graph.Ins(14, 13),
		graph.Del(22, 13),
		graph.Del(21, 1),
	}
	if _, err := s.Apply(batch); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Verify against batch recomputation (the ground truth).
	if !partitionsEqual(s.ComponentsSorted(), Components(s.Graph())) {
		t.Fatalf("batch result differs from Tarjan recompute")
	}
}

// randomMutation builds a valid batch against a simulation of g.
func randomMutation(rng *rand.Rand, g *graph.Graph, k int) graph.Batch {
	sim := g.Clone()
	var batch graph.Batch
	maxID := sim.MaxNodeID()
	for len(batch) < k {
		nodes := sim.NodesSorted()
		v := nodes[rng.Intn(len(nodes))]
		switch rng.Intn(5) {
		case 0, 1: // delete
			succ := sim.SuccessorsSorted(v)
			if len(succ) == 0 {
				continue
			}
			u := graph.Del(v, succ[rng.Intn(len(succ))])
			sim.Apply(u)
			batch = append(batch, u)
		case 2: // new node
			maxID++
			u := graph.InsNew(v, maxID, "", "x")
			sim.Apply(u)
			batch = append(batch, u)
		default:
			w := nodes[rng.Intn(len(nodes))]
			if sim.HasEdge(v, w) {
				continue
			}
			u := graph.Ins(v, w)
			sim.Apply(u)
			batch = append(batch, u)
		}
	}
	return batch
}

func TestIncrementalEqualsBatchRandomized(t *testing.T) {
	// The central equivalence property for SCC: after random batches, the
	// maintained partition equals Tarjan's recomputation and every internal
	// invariant (ranks, counters, registry, lowlink certificates) holds.
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(25)
		g := graph.New()
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i), "x")
		}
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		batch := randomMutation(rng, g, 15)

		sBatch := Build(g.Clone(), nil)
		if _, err := sBatch.Apply(batch); err != nil {
			t.Fatalf("seed %d: Apply: %v", seed, err)
		}
		if err := sBatch.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: IncSCC: %v", seed, err)
		}

		sUnit := Build(g.Clone(), nil)
		if _, err := sUnit.ApplyUnitwise(batch); err != nil {
			t.Fatalf("seed %d: ApplyUnitwise: %v", seed, err)
		}
		if err := sUnit.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: IncSCCn: %v", seed, err)
		}

		dyn := BuildDyn(g.Clone(), nil)
		if err := dyn.Apply(batch); err != nil {
			t.Fatalf("seed %d: DynSCC: %v", seed, err)
		}
		if err := dyn.Check(); err != nil {
			t.Fatalf("seed %d: DynSCC: %v", seed, err)
		}

		if !partitionsEqual(sBatch.ComponentsSorted(), sUnit.ComponentsSorted()) {
			t.Fatalf("seed %d: IncSCC and IncSCCn disagree", seed)
		}
	}
}

func TestLongUpdateSequence(t *testing.T) {
	// Many consecutive unit updates with invariant checks along the way:
	// this exercises repeated splits/merges and the rank registry.
	rng := rand.New(rand.NewSource(42))
	g := graph.New()
	n := 18
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i), "x")
	}
	for i := 0; i < 30; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	s := mustState(t, g)
	for step := 0; step < 300; step++ {
		v := graph.NodeID(rng.Intn(n))
		w := graph.NodeID(rng.Intn(n))
		if g.HasEdge(v, w) {
			if _, err := s.ApplyDelete(graph.Del(v, w)); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		} else {
			if _, err := s.ApplyInsert(graph.Ins(v, w)); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		if step%25 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaAccumulation(t *testing.T) {
	// A merge followed by a split within one batch must not report the
	// transient component.
	g := mkGraph(4, [][2]int64{{0, 1}, {1, 0}, {2, 3}, {3, 2}})
	s := mustState(t, g)
	batch := graph.Batch{
		graph.Ins(1, 2), graph.Ins(3, 0), // merge all four
		graph.Del(1, 2), // split again
	}
	delta, err := s.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Normalized batch cancels nothing here; final state: {0,1} and {2,3}
	// with edge 3→0. Output partition is unchanged overall.
	if s.NumComponents() != 2 {
		t.Fatalf("components = %d", s.NumComponents())
	}
	// The delta must net out: any added component must currently exist.
	for _, c := range delta.Added {
		id, ok := s.CompOf(c[0])
		if !ok {
			t.Fatalf("added component %v does not exist", c)
		}
		if len(s.MembersOf(id)) != len(c) {
			t.Fatalf("added component %v stale", c)
		}
	}
}

func TestRelativeBoundednessSmoke(t *testing.T) {
	// IncSCC's work on a rank-respecting insertion must not scale with |G|:
	// the affected area is empty, so the meter should stay flat while the
	// graph grows by orders of magnitude.
	run := func(extra int) int {
		g := graph.New()
		g.AddNode(0, "x")
		g.AddNode(1, "x")
		for i := 0; i < extra; i++ {
			id := graph.NodeID(10 + i)
			g.AddNode(id, "x")
			if i > 0 {
				g.AddEdge(id-1, id)
			}
		}
		s := Build(g, nil)
		m := &cost.Meter{}
		s.meter = m
		if _, err := s.ApplyInsert(graph.Ins(1, 0)); err != nil {
			// Depending on build order ranks may already satisfy the edge;
			// in either case the insert must succeed.
			t.Fatal(err)
		}
		return m.Total()
	}
	small := run(10)
	big := run(5000)
	// The affected window is tiny in both cases; allow a small constant
	// wobble but nothing proportional to |G|.
	if big > small+16 {
		t.Fatalf("inter insert cost grew with |G|: %d vs %d", small, big)
	}
}

func TestCondensationAndTopologicalOrder(t *testing.T) {
	g := paperGraph()
	s := mustState(t, g)
	gc := s.Condensation()
	if gc.NumNodes() != s.NumComponents() {
		t.Fatalf("condensation nodes = %d, want %d", gc.NumNodes(), s.NumComponents())
	}
	// The condensation must be a DAG: Tarjan on it gives only singletons.
	for _, comp := range Components(gc) {
		if len(comp) > 1 {
			t.Fatalf("condensation has a cycle: %v", comp)
		}
	}
	// Topological order: every contracted edge goes forward.
	order := s.TopologicalComponents()
	pos := make(map[CompID]int, len(order))
	for i, c := range order {
		pos[c] = i
	}
	gc.Edges(func(e graph.Edge) bool {
		if pos[CompID(e.From)] >= pos[CompID(e.To)] {
			t.Fatalf("edge (%d,%d) violates topological order", e.From, e.To)
		}
		return true
	})
	// It stays valid after updates.
	if _, err := s.ApplyInsert(graph.Ins(14, 13)); err != nil {
		t.Fatal(err)
	}
	order = s.TopologicalComponents()
	if len(order) != s.NumComponents() {
		t.Fatalf("order misses components")
	}
}
