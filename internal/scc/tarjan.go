// Package scc implements strongly connected component maintenance after
// Fan, Hu & Tian (SIGMOD 2017, Section 5.3): Tarjan's batch algorithm [43]
// extended with the auxiliary structures the paper maintains (num, lowlink,
// DFS-tree parents, edge classification, a contracted graph G_c with edge
// counters and topological ranks), and the relatively bounded incremental
// algorithms IncSCC+ (Fig. 7), IncSCC− and batch IncSCC, plus the DynSCC
// baseline used in the experiments.
package scc

import "sort"

// Result carries everything a Tarjan run produces: the components in
// completion order (reverse topological w.r.t. the condensation), and per
// node the visit number, lowlink, DFS-tree parent and subtree extent.
type Result[K comparable] struct {
	// Comps lists the strongly connected components in the order Tarjan
	// emits them: a component appears only after every component it can
	// reach, i.e. reverse topological order.
	Comps [][]K
	// Num is the DFS visit order (preorder), starting at 1.
	Num map[K]int
	// Low is Tarjan's lowlink.
	Low map[K]int
	// Parent is the DFS-tree parent; roots of DFS trees are absent.
	Parent map[K]K
	// Desc is the largest Num in the node's DFS subtree; with Num it gives
	// the preorder interval used to classify edges.
	Desc map[K]int
}

// Run performs an iterative Tarjan over the given nodes; succ enumerates
// direct successors. Nodes are explored in slice order, which makes runs
// deterministic when callers pass sorted nodes and sorted successors.
func Run[K comparable](nodes []K, succ func(v K, yield func(w K) bool)) *Result[K] {
	r := &Result[K]{
		Num:    make(map[K]int, len(nodes)),
		Low:    make(map[K]int, len(nodes)),
		Parent: make(map[K]K),
		Desc:   make(map[K]int, len(nodes)),
	}
	index := 1
	var stack []K
	onStack := make(map[K]bool, len(nodes))

	type frame struct {
		v     K
		succs []K
		i     int
	}
	var frames []frame

	visit := func(v K) {
		r.Num[v] = index
		r.Low[v] = index
		index++
		stack = append(stack, v)
		onStack[v] = true
		var ss []K
		succ(v, func(w K) bool {
			ss = append(ss, w)
			return true
		})
		frames = append(frames, frame{v: v, succs: ss})
	}

	for _, root := range nodes {
		if _, seen := r.Num[root]; seen {
			continue
		}
		visit(root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			descended := false
			for f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if _, seen := r.Num[w]; !seen {
					r.Parent[w] = f.v
					visit(w)
					descended = true
					break
				}
				if onStack[w] && r.Num[w] < r.Low[f.v] {
					r.Low[f.v] = r.Num[w]
				}
			}
			if descended {
				continue
			}
			// f.v is finished.
			v := f.v
			frames = frames[:len(frames)-1]
			r.Desc[v] = index - 1
			if r.Low[v] == r.Num[v] {
				var comp []K
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				r.Comps = append(r.Comps, comp)
			}
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if r.Low[v] < r.Low[p.v] {
					r.Low[p.v] = r.Low[v]
				}
			}
		}
	}
	return r
}

// EdgeType classifies edge (v, w) relative to the DFS forest of the run,
// following Tarjan's taxonomy quoted in Section 5.3 of the paper.
type EdgeType int8

// Edge classes.
const (
	TreeArc      EdgeType = iota // leads to a newly discovered node
	Frond                        // runs from a descendant to an ancestor
	ReverseFrond                 // runs from an ancestor to a descendant
	CrossLink                    // runs between unrelated subtrees
)

func (t EdgeType) String() string {
	switch t {
	case TreeArc:
		return "tree-arc"
	case Frond:
		return "frond"
	case ReverseFrond:
		return "reverse-frond"
	case CrossLink:
		return "cross-link"
	}
	return "unknown"
}

// EdgeType classifies the edge (v, w); both nodes must have been visited.
func (r *Result[K]) EdgeType(v, w K) EdgeType {
	if p, ok := r.Parent[w]; ok && p == v {
		return TreeArc
	}
	nv, nw := r.Num[v], r.Num[w]
	switch {
	case nw < nv && nv <= r.Desc[w]:
		return Frond
	case nv < nw && nw <= r.Desc[v]:
		return ReverseFrond
	default:
		return CrossLink
	}
}

// CompsSorted returns the components with members sorted and the list
// ordered by smallest member: the canonical form used to compare outputs.
func (r *Result[K]) CompsSorted(less func(a, b K) bool) [][]K {
	out := make([][]K, len(r.Comps))
	for i, c := range r.Comps {
		cc := make([]K, len(c))
		copy(cc, c)
		sort.Slice(cc, func(x, y int) bool { return less(cc[x], cc[y]) })
		out[i] = cc
	}
	sort.Slice(out, func(x, y int) bool { return less(out[x][0], out[y][0]) })
	return out
}
