package scc

import (
	"math/rand"
	"testing"

	"incgraph/internal/graph"
)

// TestNoRepairEquivalence verifies that disabling the tree-arc re-parenting
// fast path (the ablation switch) changes performance only — outputs and
// invariants must be identical to the default configuration.
func TestNoRepairEquivalence(t *testing.T) {
	for seed := int64(200); seed < 212; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(15)
		g := graph.New()
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i), "x")
		}
		for i := 0; i < 3*n; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		batch := randomMutation(rng, g, 20)

		a := Build(g.Clone(), nil)
		if _, err := a.Apply(batch); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b := Build(g.Clone(), nil)
		b.SetTreeArcRepair(false)
		if _, err := b.Apply(batch); err != nil {
			t.Fatalf("seed %d (norepair): %v", seed, err)
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("seed %d (norepair): %v", seed, err)
		}
		if !partitionsEqual(a.ComponentsSorted(), b.ComponentsSorted()) {
			t.Fatalf("seed %d: repair ablation changed the output", seed)
		}
	}
}

// TestRepairedTreeStaysSound drives long unit-update sequences on a graph
// with one big cyclic component so the tree-arc repair path fires often,
// then audits the full state.
func TestRepairedTreeStaysSound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 40
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i), "x")
	}
	// Two interleaved cycles → one robust scc.
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+7)%n))
	}
	s := mustState(t, g)
	if s.NumComponents() != 1 {
		t.Fatalf("setup: want one scc")
	}
	for step := 0; step < 400; step++ {
		v := graph.NodeID(rng.Intn(n))
		w := graph.NodeID(rng.Intn(n))
		if v == w {
			continue
		}
		var err error
		if g.HasEdge(v, w) {
			_, err = s.ApplyDelete(graph.Del(v, w))
		} else {
			_, err = s.ApplyInsert(graph.Ins(v, w))
		}
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step%40 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaTrackerTransients ensures delta bookkeeping nets out across
// merge+split+merge chains inside one batch.
func TestDeltaTrackerTransients(t *testing.T) {
	g := mkGraph(6, [][2]int64{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {4, 5}, {5, 4}})
	s := mustState(t, g)
	batch := graph.Batch{
		graph.Ins(1, 2), graph.Ins(3, 0), // merge {0,1} and {2,3}
		graph.Ins(3, 4), graph.Ins(5, 2), // absorb {4,5}
	}
	delta, err := s.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.NumComponents() != 1 {
		t.Fatalf("want single merged component, have %v", s.ComponentsSorted())
	}
	if len(delta.Added) != 1 || len(delta.Added[0]) != 6 {
		t.Fatalf("delta.Added = %v", delta.Added)
	}
	if len(delta.Removed) != 3 {
		t.Fatalf("delta.Removed = %v", delta.Removed)
	}
}
