package scc

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"incgraph/internal/cost"
	"incgraph/internal/graph"
)

// CompID identifies a strongly connected component (a node of the
// contracted graph G_c). IDs are minted fresh on every merge/split, so a
// CompID never changes meaning.
type CompID int64

// State is the incrementally maintained SCC state: the partition of G into
// components, the per-node Tarjan structures (num, lowlink, DFS parent,
// subtree extent — local to each component), and the contracted graph G_c
// with per-edge multiplicity counters and topological ranks.
//
// Rank invariant: for every edge (x, y) of G_c, rank(x) > rank(y). This is
// the "r(v) > r(v′) if (v, v′) is a cross-link in G_c" invariant of Section
// 5.3, maintained by the Pearce–Kelly-style window reallocation of IncSCC+.
type State struct {
	g       *graph.Graph
	comp    map[graph.NodeID]CompID
	members map[CompID]map[graph.NodeID]struct{}
	gcOut   map[CompID]map[CompID]int
	gcIn    map[CompID]map[CompID]int
	rank    map[CompID]float64
	reg     rankRegistry
	// Per-node Tarjan structures, numbered locally per component.
	num    map[graph.NodeID]int
	low    map[graph.NodeID]int
	parent map[graph.NodeID]graph.NodeID // DFS parent within the component
	desc   map[graph.NodeID]int
	// dirty marks components whose num/lowlink structures are stale after
	// intra-component insertions. Insertions cannot change the partition,
	// so the refresh is deferred until a deletion needs the certificate —
	// collapsing k insertions followed by a deletion into one scoped
	// Tarjan pass.
	dirty map[CompID]bool
	// noRepair disables the tree-arc re-parenting fast path of IncSCC−
	// (every tree-arc deletion then runs a component-scoped Tarjan). It
	// exists for the ablation benchmark; see SetTreeArcRepair.
	noRepair bool
	next     CompID
	meter    *cost.Meter
}

// Build runs Tarjan once over g and constructs the maintained state.
// The meter may be nil.
func Build(g *graph.Graph, meter *cost.Meter) *State {
	s := &State{
		g:       g,
		comp:    make(map[graph.NodeID]CompID, g.NumNodes()),
		members: make(map[CompID]map[graph.NodeID]struct{}),
		gcOut:   make(map[CompID]map[CompID]int),
		gcIn:    make(map[CompID]map[CompID]int),
		rank:    make(map[CompID]float64),
		num:     make(map[graph.NodeID]int, g.NumNodes()),
		low:     make(map[graph.NodeID]int, g.NumNodes()),
		parent:  make(map[graph.NodeID]graph.NodeID),
		desc:    make(map[graph.NodeID]int, g.NumNodes()),
		dirty:   make(map[CompID]bool),
		meter:   meter,
	}
	// Tarjan needs the global ascending node order; collect it per shard
	// across the worker pool (identical output to NodesSorted). The DFS
	// itself stays sequential — IncSCC's certificate is order-dependent.
	res := Run(g.NodesSortedParallel(), func(v graph.NodeID, yield func(graph.NodeID) bool) {
		g.Successors(v, yield)
	})
	meter.AddNodes(g.NumNodes())
	meter.AddEdges(g.NumEdges())
	// Components arrive in reverse topological order; the output index is
	// the initial topological rank ("the order of the scc ... in the output
	// sequence of Tarjan").
	for i, comp := range res.Comps {
		id := s.next
		s.next++
		set := make(map[graph.NodeID]struct{}, len(comp))
		for _, v := range comp {
			set[v] = struct{}{}
			s.comp[v] = id
		}
		s.members[id] = set
		s.gcOut[id] = make(map[CompID]int)
		s.gcIn[id] = make(map[CompID]int)
		s.rank[id] = float64(i)
		s.reg.insert(float64(i))
	}
	// Adopt the global run's structures; they are consistent within each
	// component (local refreshes later renumber per component).
	for v, n := range res.Num {
		s.num[v] = n
		s.low[v] = res.Low[v]
		s.desc[v] = res.Desc[v]
	}
	for v, p := range res.Parent {
		if s.comp[v] == s.comp[p] {
			s.parent[v] = p
		}
	}
	// Contracted-graph edge counters.
	g.Edges(func(e graph.Edge) bool {
		cv, cw := s.comp[e.From], s.comp[e.To]
		if cv != cw {
			s.gcOut[cv][cw]++
			s.gcIn[cw][cv]++
		}
		return true
	})
	return s
}

// Components computes SCC(G) from scratch with Tarjan: the batch baseline.
func Components(g *graph.Graph) [][]graph.NodeID {
	res := Run(g.NodesSorted(), func(v graph.NodeID, yield func(graph.NodeID) bool) {
		g.Successors(v, yield)
	})
	return res.CompsSorted(func(a, b graph.NodeID) bool { return a < b })
}

// Graph returns the underlying graph (shared, mutated by Apply*).
func (s *State) Graph() *graph.Graph { return s.g }

// NumComponents returns |SCC(G)|.
func (s *State) NumComponents() int { return len(s.members) }

// CompOf returns the component of v; ok is false when v is absent.
func (s *State) CompOf(v graph.NodeID) (CompID, bool) {
	c, ok := s.comp[v]
	return c, ok
}

// SameComp reports whether v and w are in the same component.
func (s *State) SameComp(v, w graph.NodeID) bool {
	cv, okv := s.comp[v]
	cw, okw := s.comp[w]
	return okv && okw && cv == cw
}

// Rank returns the topological rank of component c.
func (s *State) Rank(c CompID) float64 { return s.rank[c] }

// MembersOf returns the sorted members of component c.
func (s *State) MembersOf(c CompID) []graph.NodeID {
	return sortedMembers(s.members[c])
}

func sortedMembers(set map[graph.NodeID]struct{}) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ComponentsSorted returns the current partition in canonical form:
// members sorted, components ordered by smallest member.
func (s *State) ComponentsSorted() [][]graph.NodeID {
	out := make([][]graph.NodeID, 0, len(s.members))
	for _, set := range s.members {
		out = append(out, sortedMembers(set))
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// WriteAnswer serializes SCC(G) in canonical text form: one line per
// component, "comp <v1> <v2> ...", members ascending, components ordered
// by smallest member. Identical partitions produce identical bytes
// whatever update path produced them; the durability layer's
// recovery-parity checks and the incgraphd answer dumps rely on this.
func (s *State) WriteAnswer(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range s.ComponentsSorted() {
		if _, err := bw.WriteString("comp"); err != nil {
			return err
		}
		for _, v := range c {
			if _, err := fmt.Fprintf(bw, " %d", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SetTreeArcRepair toggles the tree-arc re-parenting fast path (on by
// default). The ablation experiment of the harness measures its effect.
func (s *State) SetTreeArcRepair(enabled bool) { s.noRepair = !enabled }

// NumLow returns the maintained (num, lowlink) of v, local to v's
// component's most recent Tarjan pass.
func (s *State) NumLow(v graph.NodeID) (num, low int) { return s.num[v], s.low[v] }

// CheckInvariants audits the whole state against a fresh Tarjan run:
// partition, contracted-graph counters, rank invariant and registry.
// Tests call it after every mutation batch.
func (s *State) CheckInvariants() error {
	// Partition must match a fresh batch run.
	want := Components(s.g)
	got := s.ComponentsSorted()
	if len(want) != len(got) {
		return fmt.Errorf("scc: %d components, batch says %d", len(got), len(want))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			return fmt.Errorf("scc: component %d size %d, batch says %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				return fmt.Errorf("scc: component %d differs at %d: %d vs %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	// comp/members duals.
	count := 0
	for c, set := range s.members {
		for v := range set {
			if s.comp[v] != c {
				return fmt.Errorf("scc: node %d in members of %d but comp says %d", v, c, s.comp[v])
			}
			count++
		}
	}
	if count != s.g.NumNodes() || len(s.comp) != s.g.NumNodes() {
		return fmt.Errorf("scc: membership covers %d of %d nodes", count, s.g.NumNodes())
	}
	// G_c counters recomputed from scratch.
	wantOut := make(map[CompID]map[CompID]int)
	s.g.Edges(func(e graph.Edge) bool {
		cv, cw := s.comp[e.From], s.comp[e.To]
		if cv != cw {
			m := wantOut[cv]
			if m == nil {
				m = make(map[CompID]int)
				wantOut[cv] = m
			}
			m[cw]++
		}
		return true
	})
	for c, out := range s.gcOut {
		for o, n := range out {
			if n <= 0 {
				return fmt.Errorf("scc: non-positive counter %d on gc edge (%d,%d)", n, c, o)
			}
			if wantOut[c][o] != n {
				return fmt.Errorf("scc: gc edge (%d,%d) counter %d, want %d", c, o, n, wantOut[c][o])
			}
			if s.gcIn[o][c] != n {
				return fmt.Errorf("scc: gc in/out counters disagree on (%d,%d)", c, o)
			}
		}
	}
	for c, out := range wantOut {
		for o, n := range out {
			if s.gcOut[c][o] != n {
				return fmt.Errorf("scc: missing gc edge (%d,%d) (want counter %d)", c, o, n)
			}
		}
	}
	// Rank invariant and uniqueness.
	seen := make(map[float64]CompID, len(s.rank))
	for c := range s.members {
		r, ok := s.rank[c]
		if !ok {
			return fmt.Errorf("scc: component %d has no rank", c)
		}
		if prev, dup := seen[r]; dup {
			return fmt.Errorf("scc: duplicate rank %g on %d and %d", r, prev, c)
		}
		seen[r] = c
	}
	for c, out := range s.gcOut {
		for o := range out {
			if s.rank[c] <= s.rank[o] {
				return fmt.Errorf("scc: rank invariant broken on gc edge (%d,%d): %g <= %g",
					c, o, s.rank[c], s.rank[o])
			}
		}
	}
	if len(s.rank) != len(s.members) || len(s.gcOut) != len(s.members) || len(s.gcIn) != len(s.members) {
		return fmt.Errorf("scc: gc maps out of sync with members")
	}
	// Registry must hold exactly the rank values.
	if err := s.reg.check(seen); err != nil {
		return err
	}
	// Local Tarjan structures: num/low present for every node and lowlink
	// certifies strong connectivity (low < num for every non-root member of
	// a multi-node component).
	for v := range s.comp {
		if _, ok := s.num[v]; !ok {
			return fmt.Errorf("scc: node %d missing num", v)
		}
		if _, ok := s.low[v]; !ok {
			return fmt.Errorf("scc: node %d missing lowlink", v)
		}
	}
	return nil
}

// rankRegistry keeps the sorted multiset (in fact set) of live rank values,
// so splits can place part ranks strictly between the split component's
// rank and the next rank below it.
type rankRegistry struct {
	vals []float64 // sorted ascending
}

func (r *rankRegistry) insert(v float64) {
	i := sort.SearchFloat64s(r.vals, v)
	r.vals = append(r.vals, 0)
	copy(r.vals[i+1:], r.vals[i:])
	r.vals[i] = v
}

func (r *rankRegistry) remove(v float64) {
	i := sort.SearchFloat64s(r.vals, v)
	if i < len(r.vals) && r.vals[i] == v {
		r.vals = append(r.vals[:i], r.vals[i+1:]...)
	}
}

// predecessor returns the largest registered value strictly below v,
// or v-1 when none exists.
func (r *rankRegistry) predecessor(v float64) float64 {
	i := sort.SearchFloat64s(r.vals, v)
	if i == 0 {
		return v - 1
	}
	return r.vals[i-1]
}

// max returns the largest registered value, or 0 when empty.
func (r *rankRegistry) max() float64 {
	if len(r.vals) == 0 {
		return 0
	}
	return r.vals[len(r.vals)-1]
}

func (r *rankRegistry) check(live map[float64]CompID) error {
	if len(r.vals) != len(live) {
		return fmt.Errorf("scc: registry has %d ranks, live set has %d", len(r.vals), len(live))
	}
	for i, v := range r.vals {
		if i > 0 && r.vals[i-1] >= v {
			return fmt.Errorf("scc: registry not strictly sorted at %d", i)
		}
		if _, ok := live[v]; !ok {
			return fmt.Errorf("scc: registry value %g not live", v)
		}
	}
	return nil
}

// Condensation returns the current contracted graph G_c as a graph whose
// nodes are component IDs (labeled with the decimal member count) and whose
// edges are the contracted edges; multiplicities are dropped. The result is
// a snapshot — later updates do not affect it.
func (s *State) Condensation() *graph.Graph {
	out := graph.New()
	for c, set := range s.members {
		out.AddNode(graph.NodeID(c), fmt.Sprintf("%d", len(set)))
	}
	for c, adj := range s.gcOut {
		for o := range adj {
			out.AddEdge(graph.NodeID(c), graph.NodeID(o))
		}
	}
	return out
}

// TopologicalComponents returns the component IDs sorted by descending
// rank: a valid topological order of the condensation (every contracted
// edge goes from an earlier to a later element).
func (s *State) TopologicalComponents() []CompID {
	out := make([]CompID, 0, len(s.members))
	for c := range s.members {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return s.rank[out[i]] > s.rank[out[j]] })
	return out
}
