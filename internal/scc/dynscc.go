package scc

import (
	"fmt"
	"sort"

	"incgraph/internal/cost"
	"incgraph/internal/graph"
)

// DynSCC is the dynamic-SCC comparison baseline of the paper's experiments
// (a combination of the incremental algorithm of Haeupler et al. [26] and
// the decremental algorithm of Łącki [32]). We implement a simplified
// stand-in with the same interface and the characteristic cost profile the
// paper observes: it maintains its reachability structures with full
// (unpruned) searches over the contracted graph even when the output is
// stable, and always re-runs a component-scoped Tarjan on intra-component
// deletions. See DESIGN.md §5(4).
type DynSCC struct {
	g       *graph.Graph
	comp    map[graph.NodeID]CompID
	members map[CompID]map[graph.NodeID]struct{}
	gcOut   map[CompID]map[CompID]int
	gcIn    map[CompID]map[CompID]int
	next    CompID
	meter   *cost.Meter
}

// BuildDyn constructs the baseline state with one Tarjan pass.
func BuildDyn(g *graph.Graph, meter *cost.Meter) *DynSCC {
	d := &DynSCC{
		g:       g,
		comp:    make(map[graph.NodeID]CompID, g.NumNodes()),
		members: make(map[CompID]map[graph.NodeID]struct{}),
		gcOut:   make(map[CompID]map[CompID]int),
		gcIn:    make(map[CompID]map[CompID]int),
		meter:   meter,
	}
	res := Run(g.NodesSorted(), func(v graph.NodeID, yield func(graph.NodeID) bool) {
		g.Successors(v, yield)
	})
	for _, comp := range res.Comps {
		id := d.next
		d.next++
		set := make(map[graph.NodeID]struct{}, len(comp))
		for _, v := range comp {
			set[v] = struct{}{}
			d.comp[v] = id
		}
		d.members[id] = set
		d.gcOut[id] = make(map[CompID]int)
		d.gcIn[id] = make(map[CompID]int)
	}
	g.Edges(func(e graph.Edge) bool {
		cv, cw := d.comp[e.From], d.comp[e.To]
		if cv != cw {
			d.gcOut[cv][cw]++
			d.gcIn[cw][cv]++
		}
		return true
	})
	return d
}

// Apply processes a batch one unit at a time (the baseline has no batch
// optimization).
func (d *DynSCC) Apply(batch graph.Batch) error {
	for _, u := range batch {
		var err error
		if u.Op == graph.Insert {
			err = d.insert(u)
		} else {
			err = d.delete(u)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (d *DynSCC) insert(u graph.Update) error {
	for _, end := range []struct {
		v graph.NodeID
		l string
	}{{u.From, u.FromLabel}, {u.To, u.ToLabel}} {
		if !d.g.HasNode(end.v) {
			d.g.AddNode(end.v, end.l)
			id := d.next
			d.next++
			d.comp[end.v] = id
			d.members[id] = map[graph.NodeID]struct{}{end.v: {}}
			d.gcOut[id] = make(map[CompID]int)
			d.gcIn[id] = make(map[CompID]int)
		}
	}
	if err := d.g.Apply(u); err != nil {
		return err
	}
	cv, cw := d.comp[u.From], d.comp[u.To]
	if cv == cw {
		return nil
	}
	fresh := d.gcOut[cv][cw] == 0
	d.gcOut[cv][cw]++
	d.gcIn[cw][cv]++
	if !fresh {
		return nil
	}
	// Unpruned forward search from cw: the "maintenance even when stable"
	// cost of the baseline.
	fwd := d.bfs(cw, true)
	if !fwd[cv] {
		return nil
	}
	bwd := d.bfs(cv, false)
	var cycle []CompID
	for c := range fwd {
		if bwd[c] {
			cycle = append(cycle, c)
		}
	}
	d.merge(cycle)
	return nil
}

func (d *DynSCC) bfs(start CompID, fwd bool) map[CompID]bool {
	seen := map[CompID]bool{start: true}
	queue := []CompID{start}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		d.meter.AddNodes(1)
		adj := d.gcOut[c]
		if !fwd {
			adj = d.gcIn[c]
		}
		for o := range adj {
			d.meter.AddEdges(1)
			if !seen[o] {
				seen[o] = true
				queue = append(queue, o)
			}
		}
	}
	return seen
}

func (d *DynSCC) merge(cycle []CompID) {
	cycleSet := make(map[CompID]bool, len(cycle))
	for _, c := range cycle {
		cycleSet[c] = true
	}
	id := d.next
	d.next++
	set := make(map[graph.NodeID]struct{})
	newOut := make(map[CompID]int)
	newIn := make(map[CompID]int)
	for _, c := range cycle {
		for o, n := range d.gcOut[c] {
			delete(d.gcIn[o], c)
			if !cycleSet[o] {
				newOut[o] += n
			}
		}
		for i, n := range d.gcIn[c] {
			delete(d.gcOut[i], c)
			if !cycleSet[i] {
				newIn[i] += n
			}
		}
		for v := range d.members[c] {
			set[v] = struct{}{}
			d.comp[v] = id
		}
		delete(d.members, c)
		delete(d.gcOut, c)
		delete(d.gcIn, c)
	}
	d.members[id] = set
	d.gcOut[id] = newOut
	d.gcIn[id] = newIn
	for o, n := range newOut {
		d.gcIn[o][id] = n
	}
	for i, n := range newIn {
		d.gcOut[i][id] = n
	}
	d.meter.AddEntries(len(set))
}

func (d *DynSCC) delete(u graph.Update) error {
	if err := d.g.Apply(u); err != nil {
		return err
	}
	cv, cw := d.comp[u.From], d.comp[u.To]
	if cv != cw {
		if n := d.gcOut[cv][cw]; n > 1 {
			d.gcOut[cv][cw] = n - 1
			d.gcIn[cw][cv] = n - 1
		} else {
			delete(d.gcOut[cv], cw)
			delete(d.gcIn[cw], cv)
		}
		return nil
	}
	// Always recompute the touched component.
	set := d.members[cv]
	nodes := sortedMembers(set)
	d.meter.AddNodes(len(nodes))
	res := Run(nodes, func(v graph.NodeID, yield func(graph.NodeID) bool) {
		d.g.Successors(v, func(w graph.NodeID) bool {
			d.meter.AddEdges(1)
			if _, ok := set[w]; ok {
				return yield(w)
			}
			return true
		})
	})
	if len(res.Comps) == 1 {
		return nil
	}
	// Split: replace cv by the parts and rebuild incident counters.
	for o := range d.gcOut[cv] {
		delete(d.gcIn[o], cv)
	}
	for i := range d.gcIn[cv] {
		delete(d.gcOut[i], cv)
	}
	delete(d.gcOut, cv)
	delete(d.gcIn, cv)
	delete(d.members, cv)
	for _, comp := range res.Comps {
		id := d.next
		d.next++
		ns := make(map[graph.NodeID]struct{}, len(comp))
		for _, v := range comp {
			ns[v] = struct{}{}
			d.comp[v] = id
		}
		d.members[id] = ns
		d.gcOut[id] = make(map[CompID]int)
		d.gcIn[id] = make(map[CompID]int)
	}
	for v := range set {
		nv := d.comp[v]
		d.g.Successors(v, func(w graph.NodeID) bool {
			if cw := d.comp[w]; cw != nv {
				d.gcOut[nv][cw]++
				d.gcIn[cw][nv]++
			}
			return true
		})
		d.g.Predecessors(v, func(p graph.NodeID) bool {
			if _, internal := set[p]; internal {
				return true
			}
			if cp := d.comp[p]; cp != nv {
				d.gcOut[cp][nv]++
				d.gcIn[nv][cp]++
			}
			return true
		})
	}
	return nil
}

// ComponentsSorted returns the partition in canonical form.
func (d *DynSCC) ComponentsSorted() [][]graph.NodeID {
	out := make([][]graph.NodeID, 0, len(d.members))
	for _, set := range d.members {
		out = append(out, sortedMembers(set))
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// NumComponents returns the current component count.
func (d *DynSCC) NumComponents() int { return len(d.members) }

// Check verifies the partition against a fresh Tarjan run.
func (d *DynSCC) Check() error {
	want := Components(d.g)
	got := d.ComponentsSorted()
	if len(want) != len(got) {
		return fmt.Errorf("dynscc: %d components, batch says %d", len(got), len(want))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			return fmt.Errorf("dynscc: component %d size mismatch", i)
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				return fmt.Errorf("dynscc: component %d differs", i)
			}
		}
	}
	return nil
}
